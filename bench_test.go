// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, regenerating the corresponding experiment and reporting its
// headline quantities as custom metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package blitzcoin

import (
	"context"
	"strings"
	"testing"

	"blitzcoin/internal/experiments"
	"blitzcoin/internal/scaling"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/workload"
)

// metric sanitizes a label for use as a benchmark metric unit (no spaces).
func metric(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "-"), " ", "_")
}

// benchDims are the mesh dimensions of the emulator sweeps (N = d*d up to
// 400, the paper's largest emulated SoC).
var benchDims = []int{4, 8, 12, 16, 20}

var bctx = context.Background()

// BenchmarkFig01_ScalabilityTrends regenerates the motivation plot:
// response-time laws against the activity-change interval Tw/N.
func BenchmarkFig01_ScalabilityTrends(b *testing.B) {
	var rows []experiments.Fig01Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig01([]float64{10, 100, 1000}, []float64{1, 5, 20})
	}
	supported := 0
	for _, r := range rows {
		if r.Supported {
			supported++
		}
	}
	b.ReportMetric(float64(supported), "supported-points")
}

// BenchmarkFig03_OneWayVsFourWay regenerates the exchange-technique
// comparison: cycles and packets to convergence at Err < 1.5.
func BenchmarkFig03_OneWayVsFourWay(b *testing.B) {
	var rows []experiments.ConvergenceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig03(bctx, benchDims, 5, 1)
	}
	for _, r := range rows {
		if r.D == 20 {
			b.ReportMetric(r.MeanCycles, metric(r.Label, "cycles@d20"))
			b.ReportMetric(r.MeanPackets, metric(r.Label, "packets@d20"))
		}
	}
}

// BenchmarkFig04_BCvsTokenSmart regenerates the BlitzCoin vs TokenSmart
// convergence comparison: BC scales with sqrt(N), TS with N.
func BenchmarkFig04_BCvsTokenSmart(b *testing.B) {
	var rows []experiments.Fig04Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig04(bctx, benchDims, 5, 1)
	}
	var bc20, ts20 float64
	for _, r := range rows {
		if r.D == 20 {
			if r.Label == "BC" {
				bc20 = r.MeanCycles
			} else {
				ts20 = r.MeanCycles
			}
		}
	}
	b.ReportMetric(bc20, "BC-cycles@d20")
	b.ReportMetric(ts20, "TS-cycles@d20")
	if bc20 > 0 {
		b.ReportMetric(ts20/bc20, "TS/BC-ratio@d20")
	}
}

// BenchmarkFig06_DynamicTiming regenerates the dynamic-timing ablation at
// Err < 1.0.
func BenchmarkFig06_DynamicTiming(b *testing.B) {
	var rows []experiments.ConvergenceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig06(bctx, benchDims, 5, 1)
	}
	for _, r := range rows {
		if r.D == 20 {
			b.ReportMetric(r.MeanCycles, metric(r.Label, "cycles@d20"))
			b.ReportMetric(r.MeanPackets, metric(r.Label, "packets@d20"))
		}
	}
}

// BenchmarkFig07_RandomPairingError regenerates the residual-error
// histograms with and without random pairing for N = 100 and 400.
func BenchmarkFig07_RandomPairingError(b *testing.B) {
	var rows []experiments.Fig07Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig07(bctx, []int{100, 400}, 10, 1)
	}
	for _, r := range rows {
		label := "nopair"
		if r.RandomPairing {
			label = "pair"
		}
		if r.N == 400 {
			b.ReportMetric(r.MeanWorst, metric(label, "worstErr@N400"))
		}
	}
}

// BenchmarkFig08_Heterogeneity regenerates the heterogeneity sweep:
// start_error and convergence time vs the number of accelerator types.
func BenchmarkFig08_Heterogeneity(b *testing.B) {
	var rows []experiments.ConvergenceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig08(bctx, []int{8, 16}, []int{1, 4, 8}, 5, 1)
	}
	for _, r := range rows {
		if r.D == 16 {
			b.ReportMetric(r.MeanCycles, metric(r.Label, "cycles@d16"))
			b.ReportMetric(r.MeanStartErr, metric(r.Label, "startErr@d16"))
		}
	}
}

// BenchmarkFig13_PowerCurves regenerates the accelerator characterization.
func BenchmarkFig13_PowerCurves(b *testing.B) {
	var pts []experiments.Fig13Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig13()
	}
	b.ReportMetric(float64(len(pts)), "operating-points")
}

// BenchmarkFig16_PowerTraces3x3 regenerates the 3x3 power-trace runs
// (WL-Par at 120 mW, WL-Dep at 60 mW) across BC, BC-C, and C-RR.
func BenchmarkFig16_PowerTraces3x3(b *testing.B) {
	var rows []experiments.SoCRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig16(bctx, 1, nil)
	}
	for _, r := range rows {
		if r.BudgetMW == 120 {
			b.ReportMetric(r.Res.UtilizationPct(), metric(r.Scheme, "util@120mW"))
		}
	}
}

// BenchmarkFig17_Exec3x3 regenerates the 3x3 execution/response comparison.
func BenchmarkFig17_Exec3x3(b *testing.B) {
	var rows []experiments.SoCRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig17(bctx, 1)
	}
	report3SchemeRatios(b, rows, 120, "av-parallel-x3")
}

// BenchmarkFig18_Exec4x4 regenerates the 4x4 execution/response comparison.
func BenchmarkFig18_Exec4x4(b *testing.B) {
	var rows []experiments.SoCRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig18(bctx, 1)
	}
	report3SchemeRatios(b, rows, 450, "cv-parallel-x3")
}

// report3SchemeRatios extracts the BC-vs-baseline throughput and response
// ratios for one (budget, workload) cell.
func report3SchemeRatios(b *testing.B, rows []experiments.SoCRow, budget float64, wl string) {
	b.Helper()
	get := func(scheme string) *soc.Result {
		for _, r := range rows {
			if r.Scheme == scheme && r.BudgetMW == budget && r.Workload == wl {
				return &r.Res
			}
		}
		return nil
	}
	bc, bcc, crr := get("BC"), get("BC-C"), get("C-RR")
	if bc == nil || bcc == nil || crr == nil {
		b.Fatal("missing scheme rows")
	}
	b.ReportMetric(bc.ExecMicros(), "BC-exec-us")
	b.ReportMetric(100*(crr.ExecMicros()-bc.ExecMicros())/crr.ExecMicros(), "BC-vs-CRR-speedup-%")
	b.ReportMetric(100*(bcc.ExecMicros()-bc.ExecMicros())/bcc.ExecMicros(), "BC-vs-BCC-speedup-%")
	if bcm := bc.MeanResponseMicros(); bcm > 0 {
		b.ReportMetric(crr.MeanResponseMicros()/bcm, "resp-CRR/BC")
		b.ReportMetric(bcc.MeanResponseMicros()/bcm, "resp-BCC/BC")
	}
}

// BenchmarkFig19_SiliconProxy regenerates the silicon utilization and
// throughput-vs-static measurements on the 6x6 PM cluster.
func BenchmarkFig19_SiliconProxy(b *testing.B) {
	var rows []experiments.SiliconRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig19(bctx, 200, 1)
	}
	for _, r := range rows {
		if r.Accelerators == 7 {
			b.ReportMetric(r.UtilizationPct, "util-7acc-%")
			b.ReportMetric(r.ThroughputGainPct, "gain-vs-static-7acc-%")
		}
	}
}

// BenchmarkFig20_ResponseTransition regenerates the activity-transition
// response comparison on the 6x6 prototype.
func BenchmarkFig20_ResponseTransition(b *testing.B) {
	var rows []experiments.Fig20Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig20(bctx, 200, 1)
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanResponseUs, metric(r.Scheme, "resp-us"))
	}
}

// BenchmarkFig21_NMax fits the scaling models from measured responses and
// projects maximum supported SoC sizes.
func BenchmarkFig21_NMax(b *testing.B) {
	var models map[string]scaling.Model
	for i := 0; i < b.N; i++ {
		models = experiments.FitScalingModels(bctx, 1)
	}
	bc, okBC := models["BC"]
	crr, okCRR := models["C-RR"]
	if !okBC || !okCRR {
		b.Fatal("fit missing schemes")
	}
	b.ReportMetric(bc.Tau, "tauBC-us")
	b.ReportMetric(bc.NMax(7000), "BC-Nmax@7ms")
	b.ReportMetric(bc.NMax(7000)/crr.NMax(7000), "Nmax-BC/CRR@7ms")
}

// BenchmarkFig21_PMOverhead projects the PM-time fraction at Tw = 10 ms.
func BenchmarkFig21_PMOverhead(b *testing.B) {
	models := scaling.PaperModels()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = models["BC"].OverheadFraction(100, 10000)
	}
	b.ReportMetric(100*frac, "BC-overhead-%@N100")
	b.ReportMetric(100*models["C-RR"].OverheadFraction(100, 10000), "CRR-overhead-%@N100")
}

// BenchmarkTable1_Comparison regenerates the cross-design comparison.
func BenchmarkTable1_Comparison(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(bctx, 1)
	}
	for _, r := range rows {
		b.ReportMetric(r.ResponseUs, metric(r.Reference, "resp-us@N13"))
	}
}

// BenchmarkTableAPvsRP regenerates the allocation-strategy comparison of
// Sec. VI-A.
func BenchmarkTableAPvsRP(b *testing.B) {
	var rows []experiments.APvsRPRow
	for i := 0; i < b.N; i++ {
		rows = experiments.APvsRP(bctx, []float64{60, 120}, 1)
	}
	for _, r := range rows {
		if r.BudgetMW == 60 {
			b.ReportMetric(r.RPImprovementPct, "RP-gain-%@60mW")
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationPairingPeriod sweeps the random-pairing cadence around
// the paper's choice of one random pairing every 16 exchanges.
func BenchmarkAblationPairingPeriod(b *testing.B) {
	var out map[int]float64
	for i := 0; i < b.N; i++ {
		out = map[int]float64{}
		for _, every := range []int{4, 16, 64} {
			var sum float64
			const trials = 5
			for s := uint64(0); s < trials; s++ {
				res := SimulateExchange(ExchangeOptions{
					Dim: 10, Torus: true, RandomPairing: true,
					RandomPairingEvery: every,
					Init:               InitHotspot, Seed: 500 + s,
				})
				sum += float64(res.ConvergenceCycles) / trials
			}
			out[every] = sum
		}
	}
	b.ReportMetric(out[4], "cycles@every4")
	b.ReportMetric(out[16], "cycles@every16")
	b.ReportMetric(out[64], "cycles@every64")
}

// BenchmarkAblationWrapAround compares torus wrap-around neighbors against
// an open mesh (Sec. III-D, Fig. 5).
func BenchmarkAblationWrapAround(b *testing.B) {
	var torus, open float64
	for i := 0; i < b.N; i++ {
		torus, open = 0, 0
		const trials = 5
		for s := uint64(0); s < trials; s++ {
			rt := SimulateExchange(ExchangeOptions{
				Dim: 12, Torus: true, RandomPairing: true, Init: InitHotspot, Seed: 100 + s,
			})
			ro := SimulateExchange(ExchangeOptions{
				Dim: 12, Torus: false, RandomPairing: true, Init: InitHotspot, Seed: 100 + s,
			})
			torus += float64(rt.ConvergenceCycles) / trials
			open += float64(ro.ConvergenceCycles) / trials
		}
	}
	b.ReportMetric(torus, "torus-cycles@d12")
	b.ReportMetric(open, "open-cycles@d12")
}

// BenchmarkAblationCoinBits compares the effect of the per-tile target
// granularity (the 6-bit / 64-level choice of Sec. IV-A vs coarse 2-5
// level schemes of prior art) on the residual allocation error.
func BenchmarkAblationCoinBits(b *testing.B) {
	var fine, coarse float64
	for i := 0; i < b.N; i++ {
		rf := SimulateExchange(ExchangeOptions{
			Dim: 8, Torus: true, RandomPairing: true, TargetPerTile: 63,
			Init: InitRandom, Seed: 9,
		})
		rc := SimulateExchange(ExchangeOptions{
			Dim: 8, Torus: true, RandomPairing: true, TargetPerTile: 4,
			Init: InitRandom, Seed: 9,
		})
		// Residual error relative to the target scale: fine-grained coins
		// resolve allocations far more precisely.
		fine = rf.FinalErr / 63
		coarse = rc.FinalErr / 4
	}
	b.ReportMetric(100*fine, "relative-err-%@64levels")
	b.ReportMetric(100*coarse, "relative-err-%@4levels")
}

// BenchmarkAblationThermalCap measures the cost of the hotspot guard
// (Sec. III-B): a feasible neighborhood cap versus no cap.
func BenchmarkAblationThermalCap(b *testing.B) {
	var free, capped float64
	for i := 0; i < b.N; i++ {
		rf := SimulateExchange(ExchangeOptions{
			Dim: 8, Torus: true, RandomPairing: true, Init: InitHotspot,
			TargetPerTile: 16, CoinsPerTile: 8, Seed: 77,
		})
		rc := SimulateExchange(ExchangeOptions{
			Dim: 8, Torus: true, RandomPairing: true, Init: InitHotspot,
			TargetPerTile: 16, CoinsPerTile: 8, ThermalCap: 60, Seed: 77,
		})
		free = float64(rf.ConvergenceCycles)
		capped = float64(rc.ConvergenceCycles)
	}
	b.ReportMetric(free, "cycles-uncapped")
	b.ReportMetric(capped, "cycles-thermal60")
}

// BenchmarkContentionRobustness measures convergence under competing
// plane-5 traffic.
func BenchmarkContentionRobustness(b *testing.B) {
	var rows []experiments.ContentionRow
	for i := 0; i < b.N; i++ {
		rows = experiments.ContentionStudy(bctx, 12, []int{0, 100}, 3, 1)
	}
	b.ReportMetric(rows[0].MeanCycles, "cycles-quiet")
	b.ReportMetric(rows[1].MeanCycles, "cycles-bg100")
}

// BenchmarkNoPMOverhead measures BlitzCoin's intrusiveness against the
// ideal no-PM execution (the FFT No-PM comparison of Sec. VI-C).
func BenchmarkNoPMOverhead(b *testing.B) {
	var r experiments.NoPMRow
	for i := 0; i < b.N; i++ {
		r = experiments.NoPMOverhead(1)
	}
	b.ReportMetric(r.OverheadPct, "overhead-%")
}

// BenchmarkExchangeThroughput measures raw emulator performance: simulated
// NoC cycles per wall-clock second for a 400-tile SoC (useful when sizing
// larger studies).
func BenchmarkExchangeThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateExchange(ExchangeOptions{
			Dim: 20, Torus: true, RandomPairing: true, Init: InitHotspot,
			Seed: uint64(i),
		})
	}
}

// BenchmarkExchangeThroughput64x64 demonstrates the SoA core's headroom
// beyond the paper's largest emulated SoC: a 4096-tile hotspot exchange,
// an order of magnitude past the 400-tile sweeps. Not gated by benchcheck
// (no committed baseline predates it); it documents how far the emulator
// scales on one core.
func BenchmarkExchangeThroughput64x64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateExchange(ExchangeOptions{
			Dim: 64, Torus: true, RandomPairing: true, Init: InitHotspot,
			Seed: uint64(i),
		})
	}
}

// BenchmarkSoCRunThroughput measures full-SoC simulation performance for
// one 3x3 workload run.
func BenchmarkSoCRunThroughput(b *testing.B) {
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 3)
	for i := 0; i < b.N; i++ {
		r := soc.New(soc.SoC3x3(120, soc.SchemeBC, uint64(i)))
		r.Run(g)
	}
}
