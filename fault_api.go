package blitzcoin

import (
	"blitzcoin/internal/fault"
	"blitzcoin/internal/sim"
)

// TileFaultAt schedules a per-tile fault activation at an absolute
// simulation time in NoC cycles.
type TileFaultAt struct {
	Tile    int
	AtCycle uint64
}

// LinkFaultAt schedules a fail-stop of the mesh link between two adjacent
// tiles; both directions fail.
type LinkFaultAt struct {
	A, B    int
	AtCycle uint64
}

// SlowFaultAt schedules a fail-slow activation: from AtCycle on, the
// tile's exchange FSM runs Factor (> 1) times slower.
type SlowFaultAt struct {
	Tile    int
	AtCycle uint64
	Factor  float64
}

// FaultOptions declares a deterministic fault model for a simulation: random
// per-packet faults on the PM plane (drop, duplicate, delay) plus scheduled
// structural faults (tile fail-stop, stuck coin counters, fail-slow tiles,
// fail-stop links). The zero value injects nothing. Supplying a non-nil
// enabled model automatically hardens the exchange protocol — timeouts with
// retry, lock watchdog, dead-neighbor pruning, and a periodic coin-
// conservation audit — so the run survives the injected damage. A given
// (FaultOptions, Seed) pair reproduces a bit-identical fault schedule.
type FaultOptions struct {
	// Seed drives the per-packet random faults, independently of the
	// simulation seed.
	Seed uint64
	// DropRate, DupRate and DelayRate are per-packet probabilities on the
	// PM plane (plane 5).
	DropRate  float64
	DupRate   float64
	DelayRate float64
	// DelayMaxCycles bounds the extra delivery delay; 0 selects 64 cycles.
	DelayMaxCycles uint64

	// KillTiles fail-stops tiles: the tile's PM logic dies and packets
	// addressed to it vanish.
	KillTiles []TileFaultAt
	// StuckCounters freeze tiles' coin registers, silently leaking or
	// duplicating coins until the conservation audit repairs the pool.
	StuckCounters []TileFaultAt
	// FailSlow stretches tiles' exchange cadence by a factor.
	FailSlow []SlowFaultAt
	// FailLinks fail-stops mesh links.
	FailLinks []LinkFaultAt
}

// toInternal maps the public fault model onto the internal config.
func (o *FaultOptions) toInternal() *fault.Config {
	if o == nil {
		return nil
	}
	fc := &fault.Config{
		Seed:      o.Seed,
		DropRate:  o.DropRate,
		DupRate:   o.DupRate,
		DelayRate: o.DelayRate,
		DelayMax:  sim.Cycles(o.DelayMaxCycles),
	}
	for _, f := range o.KillTiles {
		fc.TileKills = append(fc.TileKills, fault.TileFault{Tile: f.Tile, At: f.AtCycle})
	}
	for _, f := range o.StuckCounters {
		fc.StuckCounters = append(fc.StuckCounters, fault.TileFault{Tile: f.Tile, At: f.AtCycle})
	}
	for _, f := range o.FailSlow {
		fc.SlowTiles = append(fc.SlowTiles, fault.SlowFault{Tile: f.Tile, At: f.AtCycle, Factor: f.Factor})
	}
	for _, f := range o.FailLinks {
		fc.LinkFails = append(fc.LinkFails, fault.LinkFault{A: f.A, B: f.B, At: f.AtCycle})
	}
	return fc
}
