package blitzcoin

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// shardTestRequests are the shardable request shapes of the v1 API plus
// an unshardable figure, all sized for test runtime.
func shardTestRequests() map[string]Request {
	return map[string]Request{
		"exchange": {Trials: 6, Exchange: &ExchangeOptions{
			Dim: 4, Torus: true, RandomPairing: true, Seed: 9,
		}},
		"fig7": {Figure: &FigureOptions{
			Name: "7", Ns: []int{16}, Trials: 3, Seed: 2,
		}},
		"faults": {Figure: &FigureOptions{
			Name: "faults", Dims: []int{4}, DropRates: []float64{0, 0.02}, Trials: 3, Seed: 3,
		}},
	}
}

// splitUnits tiles [0, units) into k contiguous ranges, the same split
// the cluster coordinator plans.
func splitUnits(units, k int) [][2]int {
	if k > units {
		k = units
	}
	base, rem := units/k, units%k
	var out [][2]int
	at := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{at, at + size})
		at += size
	}
	return out
}

// clearShards zeroes the shard-provenance annotation so merged and
// single-node results can be compared byte-for-byte.
func clearShards(res *Result) {
	switch {
	case res.Exchange != nil:
		res.Exchange.Meta.Shards = 0
	case res.SoC != nil:
		res.SoC.Meta.Shards = 0
	case res.Figure != nil:
		res.Figure.Meta.Shards = 0
	}
}

func TestShardUnits(t *testing.T) {
	reqs := shardTestRequests()
	if u, err := reqs["exchange"].ShardUnits(); err != nil || u != 6 {
		t.Fatalf("exchange units = %d, %v; want 6", u, err)
	}
	// Fig. 7 pairs each n with pairing off and on: 1 n x 2 pairings x 3
	// trials.
	if u, err := reqs["fig7"].ShardUnits(); err != nil || u != 6 {
		t.Fatalf("fig7 units = %d, %v; want 6", u, err)
	}
	// Fault study: 1 dim x 2 drop rates x 3 trials.
	if u, err := reqs["faults"].ShardUnits(); err != nil || u != 6 {
		t.Fatalf("faults units = %d, %v; want 6", u, err)
	}
	// Figures without a shard decomposition are one indivisible unit.
	if u, err := (Request{Figure: &FigureOptions{Name: "13"}}).ShardUnits(); err != nil || u != 1 {
		t.Fatalf("figure 13 units = %d, %v; want 1", u, err)
	}
	if _, err := (Request{}).ShardUnits(); err == nil {
		t.Fatal("invalid request: want error")
	}
}

// TestMergeShardsByteIdentical is the determinism gate of the sharding
// surface: splitting any shardable request 1, 2, or 4 ways and merging
// must reproduce the single-node result byte-for-byte.
func TestMergeShardsByteIdentical(t *testing.T) {
	ctx := context.Background()
	for name, req := range shardTestRequests() {
		req := req
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := Execute(ctx, req)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			units, err := req.ShardUnits()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4} {
				var shards []*ShardResult
				for _, r := range splitUnits(units, k) {
					s, err := ExecuteShard(ctx, req, r[0], r[1])
					if err != nil {
						t.Fatalf("ExecuteShard[%d,%d): %v", r[0], r[1], err)
					}
					// A wire round trip must not perturb the payload
					// (float64 JSON encoding round-trips exactly).
					b, err := json.Marshal(s)
					if err != nil {
						t.Fatal(err)
					}
					var wired ShardResult
					if err := json.Unmarshal(b, &wired); err != nil {
						t.Fatal(err)
					}
					shards = append(shards, &wired)
				}
				merged, err := MergeShards(req, shards)
				if err != nil {
					t.Fatalf("MergeShards k=%d: %v", k, err)
				}
				if got := merged.Kind; got != want.Kind {
					t.Fatalf("k=%d: kind %q, want %q", k, got, want.Kind)
				}
				wantShards := len(shards)
				var gotShards int
				switch {
				case merged.Exchange != nil:
					gotShards = merged.Exchange.Meta.Shards
				case merged.Figure != nil:
					gotShards = merged.Figure.Meta.Shards
				}
				if gotShards != wantShards {
					t.Fatalf("k=%d: meta shards %d, want %d", k, gotShards, wantShards)
				}
				clearShards(merged)
				gotJSON, err := json.Marshal(merged)
				if err != nil {
					t.Fatal(err)
				}
				if string(gotJSON) != string(wantJSON) {
					t.Fatalf("k=%d: merged result differs from single-node\n got: %s\nwant: %s", k, gotJSON, wantJSON)
				}
			}
		})
	}
}

// TestMergeShardsUnshardable checks the single-unit path: the whole
// result rides in the shard and merges to itself.
func TestMergeShardsUnshardable(t *testing.T) {
	ctx := context.Background()
	req := Request{Figure: &FigureOptions{Name: "13"}}
	s, err := ExecuteShard(ctx, req, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Whole == nil {
		t.Fatal("unshardable shard should carry the whole result")
	}
	merged, err := MergeShards(req, []*ShardResult{s})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Figure == nil || merged.Figure.Meta.Shards != 1 {
		t.Fatalf("merged = %+v; want figure with Meta.Shards 1", merged)
	}
}

func TestExecuteShardRangeValidation(t *testing.T) {
	ctx := context.Background()
	req := shardTestRequests()["exchange"]
	for _, r := range [][2]int{{-1, 2}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := ExecuteShard(ctx, req, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d): want error", r[0], r[1])
		}
	}
	if _, err := ExecuteShard(ctx, Request{}, 0, 1); err == nil {
		t.Error("invalid request: want error")
	}
}

func TestMergeShardsTilingValidation(t *testing.T) {
	ctx := context.Background()
	req := shardTestRequests()["exchange"]
	a, err := ExecuteShard(ctx, req, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteShard(ctx, req, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// A partial overlap is not an exact duplicate and cannot tile.
	c, err := ExecuteShard(ctx, req, 1, 4)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]*ShardResult{
		"gap":             {a},
		"partial overlap": {a, c, b},
		"nil shard":       {a, nil},
		"no shards":       {},
		"duplicated gap":  {b, b}, // deduped to {b}: still a gap at 0
	}
	for name, shards := range cases {
		if _, err := MergeShards(req, shards); err == nil {
			t.Errorf("%s: want error", name)
		}
	}

	// Exact duplicates — what a lost speculation race delivers — are
	// discarded and the merge succeeds.
	if _, err := MergeShards(req, []*ShardResult{a, b, a}); err != nil {
		t.Errorf("exact duplicate shard should merge: %v", err)
	}

	// A shard computed for different options must be refused by hash.
	other := shardTestRequests()["exchange"]
	other.Exchange.Seed++
	foreign, err := ExecuteShard(ctx, other, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MergeShards(req, []*ShardResult{foreign, b})
	if err == nil || !strings.Contains(err.Error(), "options") {
		t.Errorf("foreign shard: got %v, want options-hash error", err)
	}

	// A shard whose row count disagrees with its range must be refused.
	short := *a
	short.Exchange = short.Exchange[:2]
	if _, err := MergeShards(req, []*ShardResult{&short, b}); err == nil {
		t.Error("short shard: want error")
	}
}

func TestClusterOptionsNormalizeValidate(t *testing.T) {
	o := ClusterOptions{}.Normalized()
	if o.ShardsPerWorker != 2 || o.MaxInflight != 2 || o.MaxAttempts != 4 ||
		o.RetryBackoffMillis != 100 || o.HeartbeatMillis != 1000 ||
		o.EvictAfterMillis != 5000 || o.ShardTimeoutMillis != 600_000 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.SpeculationPercentile != 0.95 || o.SpeculationFactor != 1.5 || o.SpeculationMinSamples != 3 {
		t.Fatalf("speculation defaults = %+v", o)
	}
	if err := (ClusterOptions{}).Validate(); err != nil {
		t.Fatalf("zero value should validate: %v", err)
	}
	if err := (ClusterOptions{Shards: -1}).Validate(); err == nil {
		t.Fatal("negative shards: want error")
	}
	if err := (ClusterOptions{Workers: []string{""}}).Validate(); err == nil {
		t.Fatal("empty worker URL: want error")
	}
	if err := (ClusterOptions{StealUnit: -1}).Validate(); err == nil {
		t.Fatal("negative steal unit: want error")
	}
	if err := (ClusterOptions{SpeculationPercentile: 1.5}).Validate(); err == nil {
		t.Fatal("percentile above 1: want error")
	}
	if err := (ClusterOptions{SpeculationFactor: 0.5}).Validate(); err == nil {
		t.Fatal("speculation factor below 1: want error")
	}
}

// FuzzMergeShards hammers the merge with the exact garbage a speculating
// work-stealing scheduler can produce: duplicated, out-of-order,
// overlapping, and missing shard completions in arbitrary combinations.
// The invariant under fuzz is one-sided soundness — whenever MergeShards
// accepts a multiset, its rows must be byte-identical to the single-node
// result; anything that cannot be deduplicated into an exact tiling must
// be refused.
func FuzzMergeShards(f *testing.F) {
	ctx := context.Background()
	req := shardTestRequests()["exchange"] // 6 shard units
	want, err := Execute(ctx, req)
	if err != nil {
		f.Fatal(err)
	}
	clearShards(want)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		f.Fatal(err)
	}
	// The shard pool: every contiguous split a coordinator could plan for
	// k = 1, 2, 3, 6, plus one deliberately overlapping range.
	var pool []*ShardResult
	for _, k := range []int{1, 2, 3, 6} {
		for _, r := range splitUnits(6, k) {
			s, err := ExecuteShard(ctx, req, r[0], r[1])
			if err != nil {
				f.Fatal(err)
			}
			pool = append(pool, s)
		}
	}
	overlapping, err := ExecuteShard(ctx, req, 1, 4)
	if err != nil {
		f.Fatal(err)
	}
	pool = append(pool, overlapping)

	f.Add([]byte{0})                         // whole-range shard alone
	f.Add([]byte{1, 2})                      // clean 2-way tiling
	f.Add([]byte{2, 1})                      // out of order
	f.Add([]byte{1, 1, 2})                   // duplicate completion
	f.Add([]byte{1, 12, 2})                  // partial overlap injected
	f.Add([]byte{6, 7, 8, 9, 10, 11, 6, 11}) // 6-way with dup head and tail
	f.Fuzz(func(t *testing.T, sel []byte) {
		if len(sel) > 24 {
			sel = sel[:24]
		}
		shards := make([]*ShardResult, 0, len(sel))
		distinct := make(map[[2]int]bool)
		for _, b := range sel {
			s := pool[int(b)%len(pool)]
			shards = append(shards, s)
			distinct[[2]int{s.Lo, s.Hi}] = true
		}
		merged, err := MergeShards(req, shards)
		if err != nil {
			return // refused multisets are fine; only acceptance is audited
		}
		var gotShards int
		if merged.Exchange != nil {
			gotShards = merged.Exchange.Meta.Shards
		}
		if gotShards != len(distinct) {
			t.Fatalf("meta shards %d, want %d distinct ranges", gotShards, len(distinct))
		}
		clearShards(merged)
		gotJSON, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("accepted merge differs from single-node\n got: %s\nwant: %s", gotJSON, wantJSON)
		}
	})
}
