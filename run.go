package blitzcoin

import (
	"context"
	"fmt"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/trace"
	"blitzcoin/internal/workload"
)

// Execute runs a Request and returns its Result — the single entry point
// behind the blitzd daemon. Unlike the direct SimulateExchange/RunSoC
// calls, which panic on invalid options, Execute validates first and
// converts any residual panic (e.g. a workload that needs an accelerator
// the platform lacks) into an error, so a serialized request can never
// crash a server. The context cancels exchange sweeps between trials and
// figure sweeps between runs; a cancelled Execute returns ctx.Err()
// rather than a partial result.
//
// Execute also publishes live progress: if the context carries no
// trace.Stream it opens one on the default bus keyed by the request's
// canonical hash and emits the sweep lifecycle (sweep-start, per-trial
// progress, sweep-done/sweep-failed). With no subscribers the publishes
// are single atomic loads — results are byte-identical either way.
func Execute(ctx context.Context, req Request) (res *Result, err error) {
	n := req.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	hash, err := n.CanonicalHash()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if st := trace.FromContext(ctx); !st.Active() {
		st = trace.NewStream(trace.Default(), hash)
		ctx = trace.NewContext(ctx, st)
		units := executeUnits(n)
		// Registered before the recover defer (LIFO), so it observes the
		// panic-converted err and reports sweep-failed for it.
		defer func() {
			if err != nil {
				st.SweepFailed()
			} else {
				st.SweepDone(units)
			}
		}()
		st.SweepStart(units)
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("blitzcoin: %v", p)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	switch n.Kind {
	case KindExchange:
		sweepRes := runExchangeSweep(ctx, n, hash)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Result{Kind: KindExchange, Exchange: sweepRes}, nil
	case KindSoC:
		r := runSoC(*n.SoC, trace.FromContext(ctx))
		r.Meta.OptionsHash = hash
		return &Result{Kind: KindSoC, SoC: &r}, nil
	case KindCustomSoC:
		r, err := runCustomSoC(*n.CustomSoC, trace.FromContext(ctx))
		if err != nil {
			return nil, err
		}
		r.Meta.OptionsHash = hash
		return &Result{Kind: KindCustomSoC, SoC: &r}, nil
	case KindFigure:
		f, err := RunFigure(ctx, *n.Figure)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f.Meta.OptionsHash = hash
		return &Result{Kind: KindFigure, Figure: &f}, nil
	}
	return nil, fmt.Errorf("blitzcoin: unknown request kind %q", n.Kind)
}

// executeUnits sizes a request for the sweep-start event: trial count for
// exchange sweeps, one unit for single-run kinds.
func executeUnits(n Request) int {
	if n.Kind == KindExchange && n.Trials > 0 {
		return n.Trials
	}
	return 1
}

// runExchangeSweep fans a normalized exchange request out over its trials
// on the shared worker pool and folds the rows in trial order, so the
// aggregate is byte-identical at any parallelism.
func runExchangeSweep(ctx context.Context, n Request, hash string) *ExchangeSweepResult {
	rows := exchangeShardRows(ctx, n, 0, n.Trials)
	return foldExchangeSweep(newMeta(n.Exchange.Seed, hash), n.Trials, rows)
}

// exchangeShardRows computes the trial rows [lo, hi) of a normalized
// exchange request, each trial's seed derived from its global trial index
// (seed + t*7919). The full range reproduces the single-node sweep; a
// sub-range is the shard a cluster worker serves.
func exchangeShardRows(ctx context.Context, n Request, lo, hi int) []ExchangeResult {
	base := *n.Exchange
	st := trace.FromContext(ctx)
	total := n.Trials
	return sweep.MapRange(ctx, lo, hi, 0, func(t int) ExchangeResult {
		st.TrialStart(t, total)
		o := base
		o.Seed = base.Seed + uint64(t)*7919
		r := SimulateExchange(o)
		st.TrialDone(t, total, r.Converged, r.ConvergenceMicros)
		if r.Converged {
			st.Convergence(t, r.ConvergenceMicros)
			st.Point("convergence_micros", uint64(t), r.ConvergenceMicros)
		}
		return r
	})
}

// foldExchangeSweep reduces trial rows (already in trial order) into the
// sweep aggregate. Sharded merges reuse it over concatenated shard rows,
// which keeps clustered aggregates byte-identical to local ones.
func foldExchangeSweep(meta ResultMeta, trials int, rows []ExchangeResult) *ExchangeSweepResult {
	out := &ExchangeSweepResult{
		Meta:   meta,
		Trials: trials,
		Rows:   rows,
	}
	var convMicros, convPackets, exch, finalErr float64
	for _, r := range rows {
		if r.Converged {
			out.Converged++
			convMicros += r.ConvergenceMicros
			convPackets += float64(r.PacketsToConvergence)
			exch += float64(r.Exchanges)
		}
		if r.CoinsConserved {
			out.Conserved++
		}
		finalErr += r.FinalErr
	}
	if out.Converged > 0 {
		out.MeanConvergenceMicros = convMicros / float64(out.Converged)
		out.MeanPacketsToConvergence = convPackets / float64(out.Converged)
		out.MeanExchanges = exch / float64(out.Converged)
	}
	if len(rows) > 0 {
		out.MeanFinalErr = finalErr / float64(len(rows))
	}
	return out
}

// SimulateExchange runs the BlitzCoin coin-exchange algorithm on a
// simulated 2D-mesh NoC and reports its convergence behavior. It panics on
// invalid options (negative dimensions, unknown mode); Validate reports
// the same conditions as an error.
func SimulateExchange(o ExchangeOptions) ExchangeResult {
	o = o.Normalized()
	if err := o.Validate(); err != nil {
		panic(err.Error())
	}

	cfg := coin.Config{
		Mesh:               mesh.Square(o.Dim, o.Torus),
		RefreshInterval:    32,
		DynamicTiming:      o.DynamicTiming,
		RandomPairing:      o.RandomPairing,
		RandomPairingEvery: o.RandomPairingEvery,
		Threshold:          o.Threshold,
		ThermalCap:         o.ThermalCap,
		StopAtConvergence:  true,
		Faults:             o.Faults.toInternal(),
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		cfg.StopAtConvergence = false
		cfg.MaxCycles = 400_000
	}
	switch o.Mode {
	case OneWay:
		cfg.Mode = coin.OneWay
	case FourWay:
		cfg.Mode = coin.FourWay
	}

	src := rng.New(o.Seed)
	n := cfg.Mesh.N()
	var maxes []int64
	if o.AccelTypes > 1 {
		maxes = coin.HeterogeneousMaxes(src, n, o.AccelTypes, o.TargetPerTile/int64(o.AccelTypes)+1)
	} else {
		maxes = coin.UniformMaxes(n, o.TargetPerTile)
	}
	pool := int64(n) * o.CoinsPerTile
	var a coin.Assignment
	switch o.Init {
	case InitRandom:
		a = coin.RandomAssignment(src, maxes, pool)
	case InitUniform:
		a = coin.UniformRandomAssignment(src, maxes)
	case InitHotspot:
		a = coin.HotspotAssignment(src, maxes, pool)
	}

	e := coin.NewEmulator(cfg, src)
	e.Init(a)
	res := e.Run()
	return ExchangeResult{
		Meta:                 newMeta(o.Seed, canonicalHash(string(KindExchange), o)),
		Converged:            res.Converged,
		ConvergenceCycles:    res.ConvergenceCycles,
		ConvergenceMicros:    res.ConvergenceMicros(),
		PacketsToConvergence: res.PacketsToConvergence,
		StartErr:             res.StartErr,
		FinalErr:             res.FinalErr,
		WorstTileErr:         res.WorstTileErr,
		TotalPackets:         res.TotalPackets,
		Exchanges:            res.Exchanges,
		ThermalRejects:       e.ThermalRejects(),
		CoinsConserved:       res.Conserved(),
		Dropped:              res.Dropped,
		Retries:              res.Retries,
		LocksBroken:          res.LocksBroken,
		NeighborsPruned:      res.NbrsPruned,
		TilesDead:            res.TilesDead,
		AuditRepairs:         res.AuditRepairs,
		PoolViolation:        res.PoolViolation,
	}
}

// lookupWorkload resolves a workload name.
func lookupWorkload(name Workload) *workload.Graph {
	switch name {
	case AVParallel:
		return workload.AutonomousVehicleParallel()
	case AVDependent:
		return workload.AutonomousVehicleDependent()
	case CVParallel:
		return workload.ComputerVisionParallel()
	case CVDependent:
		return workload.ComputerVisionDependent()
	case Silicon7:
		return workload.SevenAcceleratorSilicon()
	case Silicon7Par:
		return workload.SevenAcceleratorParallel()
	}
	panic(fmt.Sprintf("blitzcoin: unknown workload %q", name))
}

// lookupScheme resolves a scheme name.
func lookupScheme(s Scheme) soc.Scheme {
	switch s {
	case BC:
		return soc.SchemeBC
	case BCC:
		return soc.SchemeBCC
	case CRR:
		return soc.SchemeCRR
	case TS:
		return soc.SchemeTS
	case PT:
		return soc.SchemePT
	case Static:
		return soc.SchemeStatic
	}
	panic(fmt.Sprintf("blitzcoin: unknown scheme %q", s))
}

// RunSoC executes a workload on a BlitzCoin-enabled SoC simulation and
// reports execution time, PM response times, and power statistics. It
// panics on unknown platform, scheme, or workload names, and on workloads
// that need accelerators the platform lacks; Validate reports the name
// errors as an error.
func RunSoC(o SoCOptions) SoCResult {
	return runSoC(o, trace.Stream{})
}

// runSoC is RunSoC with a live stream: the runner's power recorder mirrors
// every series point onto the stream's bus. A zero stream is inert.
func runSoC(o SoCOptions, st trace.Stream) SoCResult {
	o = o.Normalized()
	if err := o.Validate(); err != nil {
		panic(err.Error())
	}
	scheme := lookupScheme(o.Scheme)

	var cfg soc.Config
	switch o.SoC {
	case "3x3":
		cfg = soc.SoC3x3(o.BudgetMW, scheme, o.Seed)
	case "4x4":
		cfg = soc.SoC4x4(o.BudgetMW, scheme, o.Seed)
	case "6x6":
		cfg = soc.SoC6x6(o.BudgetMW, scheme, o.Seed)
	}
	if o.AbsoluteProportional {
		cfg.Strategy = soc.AbsoluteProportional
	}
	cfg.Faults = o.Faults.toInternal()
	cfg.Stream = st

	g := lookupWorkload(o.Workload)
	if o.Repeat > 1 {
		g = workload.Repeat(g, o.Repeat)
	}
	res := soc.New(cfg).Run(g)
	out := newSoCResult(res)
	out.Meta = newMeta(o.Seed, canonicalHash(string(KindSoC), o))
	return out
}

// newSoCResult flattens the internal result into the public shape.
func newSoCResult(res soc.Result) SoCResult {
	return SoCResult{
		SoC:                  res.SoC,
		Scheme:               res.Scheme,
		Strategy:             res.Strategy,
		Workload:             res.Workload,
		Completed:            res.Completed,
		ExecMicros:           res.ExecMicros(),
		MeanResponseMicros:   res.MeanResponseMicros(),
		MedianResponseMicros: res.MedianResponseMicros(),
		MaxResponseMicros:    res.MaxResponseMicros(),
		ResponsesRecorded:    len(res.Responses),
		AvgPowerMW:           res.AvgPowerMW,
		PeakPowerMW:          res.PeakPowerMW,
		BudgetMW:             res.BudgetMW,
		UtilizationPct:       res.UtilizationPct(),
		ActivityChanges:      res.ActivityChanges,
		TilesKilled:          res.TilesKilled,
		TasksRequeued:        res.TasksRequeued,
		res:                  res,
	}
}

// build assembles the custom platform and workload, reporting the first
// inconsistency. It backs both Validate and RunCustomSoC.
func (o CustomSoCOptions) build() (soc.Config, *workload.Graph, error) {
	o = o.Normalized()
	if o.W <= 0 || o.H <= 0 {
		return soc.Config{}, nil, fmt.Errorf("blitzcoin: invalid grid %dx%d", o.W, o.H)
	}
	if len(o.Tiles) != o.W*o.H {
		return soc.Config{}, nil, fmt.Errorf("blitzcoin: %d tiles for a %dx%d grid", len(o.Tiles), o.W, o.H)
	}
	if !knownScheme(o.Scheme) {
		return soc.Config{}, nil, fmt.Errorf("blitzcoin: unknown scheme %q", o.Scheme)
	}

	tiles := make([]soc.TileConfig, len(o.Tiles))
	for i, ts := range o.Tiles {
		switch ts.Kind {
		case "cpu":
			tiles[i] = soc.TileConfig{Kind: soc.TileCPU}
		case "mem":
			tiles[i] = soc.TileConfig{Kind: soc.TileMem}
		case "io":
			tiles[i] = soc.TileConfig{Kind: soc.TileIO}
		case "spm":
			tiles[i] = soc.TileConfig{Kind: soc.TileSPM}
		case "accel":
			tiles[i] = soc.TileConfig{Kind: soc.TileAccel, Accel: ts.Accel}
		case "accel-nopm":
			tiles[i] = soc.TileConfig{Kind: soc.TileAccelNoPM, Accel: ts.Accel}
		case "", "empty":
			tiles[i] = soc.TileConfig{Kind: soc.TileEmpty}
		default:
			return soc.Config{}, nil, fmt.Errorf("blitzcoin: tile %d has unknown kind %q", i, ts.Kind)
		}
	}

	cfg := soc.Config{
		Name:     o.Name,
		Mesh:     mesh.New(o.W, o.H, o.Torus),
		Tiles:    tiles,
		BudgetMW: o.BudgetMW,
		Scheme:   lookupScheme(o.Scheme),
		Strategy: soc.RelativeProportional,
		Seed:     o.Seed,
	}
	if o.AbsoluteProportional {
		cfg.Strategy = soc.AbsoluteProportional
	}
	if err := cfg.Validate(); err != nil {
		return soc.Config{}, nil, err
	}

	if len(o.Tasks) == 0 {
		return soc.Config{}, nil, fmt.Errorf("blitzcoin: custom SoC needs at least one task")
	}
	g := &workload.Graph{Name: o.Name + "-workload"}
	for i, t := range o.Tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("task-%d", i)
		}
		g.Tasks = append(g.Tasks, workload.Task{
			ID: i, Name: name, Accel: t.Accel, WorkCycles: t.WorkCycles,
			Deps: append([]int(nil), t.Deps...),
		})
	}
	if err := g.Validate(); err != nil {
		return soc.Config{}, nil, err
	}
	if o.Repeat > 1 {
		g = workload.Repeat(g, o.Repeat)
	}
	for _, task := range g.Tasks {
		found := false
		for _, tc := range tiles {
			if tc.Kind == soc.TileAccel && tc.Accel == task.Accel {
				found = true
				break
			}
		}
		if !found {
			return soc.Config{}, nil, fmt.Errorf("blitzcoin: workload needs accelerator %q, absent from the layout", task.Accel)
		}
	}
	return cfg, g, nil
}

// RunCustomSoC assembles and runs the described platform. Errors report
// invalid layouts or workloads; simulation itself is deterministic for the
// given seed.
func RunCustomSoC(o CustomSoCOptions) (SoCResult, error) {
	return runCustomSoC(o, trace.Stream{})
}

// runCustomSoC is RunCustomSoC with a live stream (see runSoC).
func runCustomSoC(o CustomSoCOptions, st trace.Stream) (SoCResult, error) {
	o = o.Normalized()
	cfg, g, err := o.build()
	if err != nil {
		return SoCResult{}, err
	}
	cfg.Stream = st
	res := soc.New(cfg).Run(g)
	out := newSoCResult(res)
	out.Meta = newMeta(o.Seed, canonicalHash(string(KindCustomSoC), o))
	return out, nil
}

// RandomWorkload generates a seeded random DAG over the given accelerator
// types, for stress-testing custom platforms.
func RandomWorkload(seed uint64, n int, accels []string, minWork, maxWork float64, maxDeps int) []TaskSpec {
	g := workload.RandomDAG(rng.New(seed), n, accels, minWork, maxWork, maxDeps)
	out := make([]TaskSpec, len(g.Tasks))
	for i, t := range g.Tasks {
		out[i] = TaskSpec{
			Name: t.Name, Accel: t.Accel, WorkCycles: t.WorkCycles,
			Deps: append([]int(nil), t.Deps...),
		}
	}
	return out
}

// toInternal maps the public fault model onto the internal config.
func (o *FaultOptions) toInternal() *fault.Config {
	if o == nil {
		return nil
	}
	fc := &fault.Config{
		Seed:      o.Seed,
		DropRate:  o.DropRate,
		DupRate:   o.DupRate,
		DelayRate: o.DelayRate,
		DelayMax:  sim.Cycles(o.DelayMaxCycles),
	}
	for _, f := range o.KillTiles {
		fc.TileKills = append(fc.TileKills, fault.TileFault{Tile: f.Tile, At: f.AtCycle})
	}
	for _, f := range o.StuckCounters {
		fc.StuckCounters = append(fc.StuckCounters, fault.TileFault{Tile: f.Tile, At: f.AtCycle})
	}
	for _, f := range o.FailSlow {
		fc.SlowTiles = append(fc.SlowTiles, fault.SlowFault{Tile: f.Tile, At: f.AtCycle, Factor: f.Factor})
	}
	for _, f := range o.FailLinks {
		fc.LinkFails = append(fc.LinkFails, fault.LinkFault{A: f.A, B: f.B, At: f.AtCycle})
	}
	return fc
}
