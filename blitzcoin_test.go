package blitzcoin

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateExchangeDefaultsConverge(t *testing.T) {
	res := SimulateExchange(ExchangeOptions{RandomPairing: true, Torus: true, Seed: 1})
	if !res.Converged {
		t.Fatalf("default exchange did not converge: %+v", res)
	}
	if !res.CoinsConserved {
		t.Fatal("coin pool not conserved")
	}
	if res.ConvergenceMicros <= 0 || res.PacketsToConvergence == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestSimulateExchangeSqrtScaling(t *testing.T) {
	// The headline claim: quadrupling N grows convergence time far less
	// than 4x.
	run := func(d int) float64 {
		var sum float64
		for s := uint64(0); s < 5; s++ {
			r := SimulateExchange(ExchangeOptions{
				Dim: d, Torus: true, RandomPairing: true, Seed: 100 + s,
			})
			if !r.Converged {
				t.Fatalf("d=%d did not converge", d)
			}
			sum += float64(r.ConvergenceCycles)
		}
		return sum / 5
	}
	if ratio := run(16) / run(8); ratio > 3.2 {
		t.Fatalf("convergence ratio %.2f for 4x tiles, want about 2", ratio)
	}
}

func TestSimulateExchangeModesAndInits(t *testing.T) {
	for _, mode := range []ExchangeMode{OneWay, FourWay} {
		for _, init := range []InitDistribution{InitRandom, InitUniform, InitHotspot} {
			res := SimulateExchange(ExchangeOptions{
				Dim: 6, Torus: true, Mode: mode, Init: init,
				RandomPairing: true, Seed: 7,
			})
			if !res.Converged {
				t.Fatalf("mode=%s init=%s did not converge", mode, init)
			}
		}
	}
}

func TestSimulateExchangeHeterogeneous(t *testing.T) {
	homo := SimulateExchange(ExchangeOptions{
		Dim: 10, Torus: true, RandomPairing: true, AccelTypes: 1, Seed: 3,
	})
	hetero := SimulateExchange(ExchangeOptions{
		Dim: 10, Torus: true, RandomPairing: true, AccelTypes: 8, Seed: 3,
	})
	if !homo.Converged || !hetero.Converged {
		t.Fatal("runs did not converge")
	}
}

func TestSimulateExchangePanicsOnBadOptions(t *testing.T) {
	for name, opts := range map[string]ExchangeOptions{
		"tiny mesh": {Dim: 1},
		"bad mode":  {Mode: "3-way"},
		"bad init":  {Init: "corner"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			SimulateExchange(opts)
		}()
	}
}

func TestRunSoCDefaults(t *testing.T) {
	res := RunSoC(SoCOptions{Seed: 1})
	if !res.Completed {
		t.Fatalf("default run incomplete: %s", res.String())
	}
	if res.Scheme != "BC" || res.SoC != "soc-3x3" {
		t.Fatalf("unexpected defaults: %s", res.String())
	}
	if res.UtilizationPct < 50 {
		t.Fatalf("suspiciously low utilization: %s", res.String())
	}
}

func TestRunSoCAllPlatformsAndSchemes(t *testing.T) {
	for _, socName := range []string{"3x3", "4x4", "6x6"} {
		for _, scheme := range []Scheme{BC, BCC, CRR, Static} {
			res := RunSoC(SoCOptions{SoC: socName, Scheme: scheme, Repeat: 1, Seed: 2})
			if !res.Completed {
				t.Fatalf("%s/%s incomplete", socName, scheme)
			}
		}
	}
}

func TestRunSoCBlitzCoinBeatsCRR(t *testing.T) {
	bc := RunSoC(SoCOptions{Scheme: BC, Seed: 5})
	crr := RunSoC(SoCOptions{Scheme: CRR, Seed: 5})
	if bc.ExecMicros >= crr.ExecMicros {
		t.Fatalf("BC %.1fus not faster than C-RR %.1fus", bc.ExecMicros, crr.ExecMicros)
	}
	if bc.MedianResponseMicros >= crr.MedianResponseMicros {
		t.Fatalf("BC response %.2fus not below C-RR %.2fus",
			bc.MedianResponseMicros, crr.MedianResponseMicros)
	}
}

func TestRunSoCPowerTraceCSV(t *testing.T) {
	res := RunSoC(SoCOptions{Repeat: 1, Seed: 1})
	var buf bytes.Buffer
	if err := res.WritePowerTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "cycle,") {
		t.Fatalf("csv malformed: %d lines, header %q", len(lines), lines[0])
	}
}

func TestRunSoCPanicsOnUnknowns(t *testing.T) {
	for name, opts := range map[string]SoCOptions{
		"bad soc":      {SoC: "9x9"},
		"bad scheme":   {Scheme: "MAGIC"},
		"bad workload": {Workload: "crypto-mining"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			RunSoC(opts)
		}()
	}
}

func TestScalingModelAPI(t *testing.T) {
	models := PaperScalingModels()
	byName := map[string]ScalingModel{}
	for _, m := range models {
		byName[m.Name] = m
	}
	bc, ok := byName["BC"]
	if !ok || bc.Law != "O(sqrt(N))" {
		t.Fatalf("BC model missing or wrong law: %+v", byName)
	}
	// Paper: BC supports about 1000 accelerators at Tw = 7 ms.
	if n := bc.NMax(7000); n < 900 || n > 1200 {
		t.Fatalf("BC NMax(7ms) = %.0f", n)
	}
	// Fig. 21 right: BC's overhead at N=100, Tw=10ms is 2%.
	if f := bc.OverheadFraction(100, 10000); f < 0.015 || f > 0.025 {
		t.Fatalf("BC overhead = %v, want about 0.02", f)
	}
}

func TestFitScalingAPI(t *testing.T) {
	m := FitScaling("X", "O(N)", []float64{2, 4, 8}, []float64{2, 4, 8})
	if m.TauMicros != 1 {
		t.Fatalf("tau = %v, want 1", m.TauMicros)
	}
	if got := m.Response(16); got != 16 {
		t.Fatalf("Response(16) = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad law did not panic")
			}
		}()
		FitScaling("X", "O(log N)", []float64{1}, []float64{1})
	}()
}

func TestAcceleratorCurveAPI(t *testing.T) {
	pts, err := AcceleratorCurve("NVDLA")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("curve too sparse: %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FMHz <= pts[i-1].FMHz || pts[i].PmW <= pts[i-1].PmW {
			t.Fatal("curve not monotone")
		}
	}
	if _, err := AcceleratorCurve("TPU"); err == nil {
		t.Fatal("unknown accelerator should error")
	}
}

func TestCyclesToMicros(t *testing.T) {
	if got := CyclesToMicros(800); got != 1 {
		t.Fatalf("800 cycles = %v us", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := RunSoC(SoCOptions{Seed: 9, Repeat: 1})
	b := RunSoC(SoCOptions{Seed: 9, Repeat: 1})
	if a.ExecMicros != b.ExecMicros || a.AvgPowerMW != b.AvgPowerMW {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}
