#!/bin/sh
# tenant_smoke.sh — end-to-end smoke test of multi-tenant blitzd and the
# disk-backed result store:
#   1. start blitzd with a two-tenant key file (alice generous, bob tiny),
#      a store directory, and a results ledger;
#   2. a keyless request is rejected 401; alice computes a sweep (cached,
#      persisted, ledgered); bob exhausts his rate limit and gets 429 +
#      Retry-After while alice keeps being served;
#   3. restart blitzd on the same store directory and assert the sweep is
#      served from disk byte-identically — blitzctl -verify proves the
#      served bytes hash to the pre-restart ledger entry, and
#      blitzd_sweep_rows_total stays 0 (zero engine executions).
# Exits non-zero on any failure. No curl dependency; blitzctl is the client.
set -eu

workdir=$(mktemp -d)
trap 'status=$?; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null; wait 2>/dev/null || true; rm -rf "$workdir"; exit $status' EXIT INT TERM

echo "tenant-smoke: building blitzd and blitzctl"
go build -o "$workdir/blitzd" ./cmd/blitzd
go build -o "$workdir/blitzctl" ./cmd/blitzctl

cat >"$workdir/keys.json" <<'EOF'
{
  "tenants": [
    {"name": "alice", "key": "alice-secret"},
    {"name": "bob", "key": "bob-secret", "rate_per_sec": 0.001, "burst": 1, "priority": "batch"}
  ]
}
EOF

start_daemon() {
    rm -f "$workdir/addr"
    "$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/addr" \
        -keys "$workdir/keys.json" -store "$workdir/store" \
        -ledger "$workdir/ledger.jsonl" -ledger-batch 1 \
        >"$workdir/blitzd.out" 2>>"$workdir/blitzd.log" &
    daemon_pid=$!
    i=0
    while [ ! -s "$workdir/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "tenant-smoke: daemon never came up" >&2
            cat "$workdir/blitzd.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(cat "$workdir/addr")
}

stop_daemon() {
    kill -INT "$daemon_pid"
    i=0
    while kill -0 "$daemon_pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "tenant-smoke: daemon ignored SIGINT" >&2
            exit 1
        fi
        sleep 0.1
    done
    daemon_pid=""
}

start_daemon
echo "tenant-smoke: blitzd on $addr (keys + store + ledger)"

sweep() {
    # $1: api key (empty = keyless)
    BLITZ_API_KEY="$1" "$workdir/blitzctl" -addr "$addr" -exchange -dim 4 -trials 2 -seed 1
}

echo "tenant-smoke: keyless request must be rejected 401"
if out=$(sweep "" 2>&1); then
    echo "tenant-smoke: keyless request served: $out" >&2
    exit 1
fi
case "$out" in
*unauthorized*) ;;
*) echo "tenant-smoke: keyless rejection not surfaced as unauthorized: $out" >&2; exit 1 ;;
esac

echo "tenant-smoke: alice computes the sweep"
first=$(sweep alice-secret)
case "$first" in
*'"cached": false'*) ;;
*) echo "tenant-smoke: alice's first response not a cache miss: $first" >&2; exit 1 ;;
esac

echo "tenant-smoke: bob's first request is served, the second throttled"
sweep bob-secret >/dev/null
if out=$(sweep bob-secret 2>&1); then
    echo "tenant-smoke: bob over his rate limit was served" >&2
    exit 1
fi
case "$out" in
*throttled*'retry in'*) ;;
*) echo "tenant-smoke: bob's 429 not surfaced with Retry-After: $out" >&2; exit 1 ;;
esac

echo "tenant-smoke: alice is still served while bob is throttled"
second=$(sweep alice-secret)
case "$second" in
*'"cached": true'*) ;;
*) echo "tenant-smoke: alice's repeat not served from cache: $second" >&2; exit 1 ;;
esac

metrics=$(BLITZ_API_KEY=alice-secret "$workdir/blitzctl" -addr "$addr" -metrics)
echo "$metrics" | grep -q 'blitzd_tenant_rejects_total{tenant="bob",reason="rate"} 1' || {
    echo "tenant-smoke: bob's rate rejection not counted" >&2
    echo "$metrics" | grep blitzd_tenant >&2
    exit 1
}
echo "$metrics" | grep -q 'blitzd_unauthenticated_total 1' || {
    echo "tenant-smoke: 401 not counted" >&2
    exit 1
}
echo "$metrics" | grep -q 'blitzd_store_writes_total 1' || {
    echo "tenant-smoke: computed sweep not persisted to the store" >&2
    echo "$metrics" | grep blitzd_store >&2
    exit 1
}

echo "tenant-smoke: restarting blitzd on the same store directory"
stop_daemon
start_daemon
echo "tenant-smoke: blitzd back on $addr"

echo "tenant-smoke: sweep must be served from disk, byte-identically, with zero executions"
third=$(BLITZ_API_KEY=alice-secret "$workdir/blitzctl" -addr "$addr" \
    -exchange -dim 4 -trials 2 -seed 1 -verify 2>"$workdir/verify.log")
case "$third" in
*'"cached": true'*'"tier": "disk"'*) ;;
*) echo "tenant-smoke: post-restart response not a disk hit: $third" >&2; exit 1 ;;
esac
grep -q 'ledger verification OK' "$workdir/verify.log" || {
    # The disk-served bytes must still hash to the SHA the pre-restart
    # ledger recorded — the byte-identity proof.
    echo "tenant-smoke: ledger verification of the disk-served result failed" >&2
    cat "$workdir/verify.log" >&2
    exit 1
}

# The served result and the pre-restart result must be the same bytes.
first_result=$(printf '%s' "$first" | sed -n 's/.*"result"://p')
third_result=$(printf '%s' "$third" | sed -n 's/.*"result"://p')
[ "$first_result" = "$third_result" ] || {
    echo "tenant-smoke: post-restart result bytes differ" >&2
    exit 1
}

metrics=$(BLITZ_API_KEY=alice-secret "$workdir/blitzctl" -addr "$addr" -metrics)
echo "$metrics" | grep -q '^blitzd_sweep_rows_total 0$' || {
    echo "tenant-smoke: restarted daemon executed the engine (sweep rows != 0):" >&2
    echo "$metrics" | grep blitzd_sweep_rows >&2
    exit 1
}
echo "$metrics" | grep -q '^blitzd_store_hits_total 1$' || {
    echo "tenant-smoke: disk hit not counted:" >&2
    echo "$metrics" | grep blitzd_store >&2
    exit 1
}

stop_daemon
echo "tenant-smoke: OK"
