#!/bin/sh
# lint_smoke.sh — end-to-end check that the wave-2 blitzlint analyzers
# actually fire. The unit fixtures under internal/lint/testdata pin each
# analyzer's behavior in isolation; this script instead drives the real
# binary — loader, scoping config, directive pass, exit status — against the
# deliberately broken module in scripts/lintsmoke and asserts that every
# concurrency/resource code is reported exactly once. A silently-disabled
# analyzer (bad scope list, dropped registration) fails here even though the
# clean main module would still lint green.
set -eu

cd "$(dirname "$0")/.."

if out=$(go run ./cmd/blitzlint -root scripts/lintsmoke \
	-analyzers goroleak,ctxflow,lockorder,errdrop ./... 2>&1); then
	echo "lint_smoke: blitzlint exited 0 against the broken fixture" >&2
	printf '%s\n' "$out" >&2
	exit 1
fi

fail=0
for code in G001 G002 C001 C002 L001 L002 L003 R001; do
	n=$(printf '%s\n' "$out" | grep -c " $code: ") || true
	if [ "$n" != 1 ]; then
		echo "lint_smoke: code $code fired $n time(s), want exactly 1" >&2
		fail=1
	fi
done

# The total pins that nothing beyond the eight seeded violations fired.
if ! printf '%s\n' "$out" | grep -q '^blitzlint: 8 diagnostic(s), 0 suppressed$'; then
	echo "lint_smoke: unexpected summary line" >&2
	fail=1
fi

if [ "$fail" != 0 ]; then
	printf '%s\n' "$out" >&2
	exit 1
fi
echo "lint_smoke: all 8 wave-2 codes fired exactly once"
