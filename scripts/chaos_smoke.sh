#!/bin/sh
# chaos_smoke.sh — end-to-end chaos drill for the elastic cluster: boot a
# coordinator and three blitzd workers, one of them fail-slow via the
# -chaos fault plan (internal/fault driven at the transport layer), run a
# fine-grained work-stealing sweep, hard-kill a healthy worker mid-sweep,
# and assert the merged rows are still byte-identical to single-node
# execution. Also probes /readyz and checks the speculation metrics
# surfaced on the coordinator. No curl/jq dependency; blitzctl is the
# client.
set -eu

workdir=$(mktemp -d)
cleanup() {
    status=$?
    for pid in "${w1_pid:-}" "${w2_pid:-}" "${w3_pid:-}" "${coord_pid:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

echo "chaos-smoke: building blitzd and blitzctl"
go build -o "$workdir/blitzd" ./cmd/blitzd
go build -o "$workdir/blitzctl" ./cmd/blitzctl

wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos-smoke: $2 never came up" >&2
            cat "$workdir"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/w1.addr" >"$workdir/w1.out" 2>"$workdir/w1.log" &
w1_pid=$!
"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/w2.addr" >"$workdir/w2.out" 2>"$workdir/w2.log" &
w2_pid=$!
# Worker 3 is fail-slow from the first request: its chaos layer stretches
# every shard's service time 30x, so speculation must rescue whatever it
# holds for the sweep to finish in sane time.
"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/w3.addr" \
    -chaos '{"fail_slow":[{"tile":3,"factor":30}]}' -chaos-tile 3 \
    >"$workdir/w3.out" 2>"$workdir/w3.log" &
w3_pid=$!
w1=$(wait_addr "$workdir/w1.addr" "worker 1")
w2=$(wait_addr "$workdir/w2.addr" "worker 2")
w3=$(wait_addr "$workdir/w3.addr" "worker 3 (fail-slow)")
echo "chaos-smoke: workers on $w1 $w2 $w3 (w3 fail-slow x30)"

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/coord.addr" \
    -coordinator -cluster-workers "http://$w1,http://$w2,http://$w3" \
    -steal-unit 1 -heartbeat 200ms -evict-after 2s \
    >"$workdir/coord.out" 2>"$workdir/coord.log" &
coord_pid=$!
coord=$(wait_addr "$workdir/coord.addr" "coordinator")
echo "chaos-smoke: coordinator on $coord"

echo "chaos-smoke: readiness probe"
"$workdir/blitzctl" -addr "$coord" -ready >"$workdir/ready.json" || {
    echo "chaos-smoke: coordinator not ready with three live workers" >&2
    cat "$workdir/ready.json" >&2
    exit 1
}
grep -q '"status": "ready"' "$workdir/ready.json" || {
    echo "chaos-smoke: /readyz body lacks ready status" >&2
    cat "$workdir/ready.json" >&2
    exit 1
}

# lines extracts the figure's report rows from a response envelope; both
# single-node and cluster responses come from the same encoder, so the
# extracted blocks must be byte-identical.
lines() {
    awk '/"lines": \[/{f=1;next} f&&/\]/{exit} f{print}'
}

cat >"$workdir/sweep.json" <<'JSON'
{"figure": {"name": "7", "trials": 240, "ns": [36], "seed": 13}}
JSON

echo "chaos-smoke: single-node baseline (worker 1)"
"$workdir/blitzctl" -addr "$w1" -req "$workdir/sweep.json" | lines >"$workdir/single.lines"

echo "chaos-smoke: cluster sweep under chaos, hard-killing worker 2 mid-sweep"
"$workdir/blitzctl" -addr "$coord" -req "$workdir/sweep.json" >"$workdir/cluster.out" &
sweep_pid=$!
sleep 1
kill -9 "$w2_pid" 2>/dev/null || true
w2_pid=""
wait "$sweep_pid" || {
    echo "chaos-smoke: clustered sweep failed under chaos" >&2
    cat "$workdir/coord.log" >&2
    exit 1
}
lines <"$workdir/cluster.out" >"$workdir/cluster.lines"
diff -u "$workdir/single.lines" "$workdir/cluster.lines" || {
    echo "chaos-smoke: rows differ from single-node under chaos" >&2
    exit 1
}

echo "chaos-smoke: checking the coordinator noticed the hard kill"
"$workdir/blitzctl" -addr "$coord" -cluster >"$workdir/status.json" || true
grep -q "http://$w2" "$workdir/status.json" || {
    echo "chaos-smoke: killed worker missing from status" >&2
    cat "$workdir/status.json" >&2
    exit 1
}
grep -A2 "http://$w2" "$workdir/status.json" | grep -q '"alive": false' || {
    # The kill may land between heartbeats right at sweep end; give the
    # prober a moment before declaring failure.
    sleep 1
    "$workdir/blitzctl" -addr "$coord" -cluster | grep -A2 "http://$w2" | grep -q '"alive": false' || {
        echo "chaos-smoke: killed worker still marked alive" >&2
        exit 1
    }
}

echo "chaos-smoke: checking the scheduling telemetry"
grep -q '"shard_latency_p50_millis"' "$workdir/status.json" || {
    echo "chaos-smoke: cluster status lacks shard latency quantiles" >&2
    cat "$workdir/status.json" >&2
    exit 1
}
metrics=$("$workdir/blitzctl" -addr "$coord" -metrics)
for m in blitzd_cluster_shards_dispatched_total blitzd_cluster_shards_speculated_total blitzd_cluster_queue_depth; do
    echo "$metrics" | grep -q "^$m" || {
        echo "chaos-smoke: coordinator /metrics missing $m" >&2
        exit 1
    }
done

echo "chaos-smoke: OK"
