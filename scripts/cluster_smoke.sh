#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the distributed sweep
# cluster: boot a coordinator and two blitzd workers, run a Fig. 7 request
# through the cluster, and diff its rows against single-node execution
# (they must be byte-identical). Then run a bigger sweep, hard-kill one
# worker mid-sweep, and assert the re-dispatched result still matches
# single-node rows and the coordinator marked the worker dead.
# No curl/jq dependency; blitzctl is the client.
set -eu

workdir=$(mktemp -d)
cleanup() {
    status=$?
    for pid in "${w1_pid:-}" "${w2_pid:-}" "${coord_pid:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building blitzd and blitzctl"
go build -o "$workdir/blitzd" ./cmd/blitzd
go build -o "$workdir/blitzctl" ./cmd/blitzctl

wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: $2 never came up" >&2
            cat "$workdir"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/w1.addr" >"$workdir/w1.out" 2>"$workdir/w1.log" &
w1_pid=$!
"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/w2.addr" >"$workdir/w2.out" 2>"$workdir/w2.log" &
w2_pid=$!
w1=$(wait_addr "$workdir/w1.addr" "worker 1")
w2=$(wait_addr "$workdir/w2.addr" "worker 2")
echo "cluster-smoke: workers on $w1 $w2"

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/coord.addr" \
    -coordinator -cluster-workers "http://$w1,http://$w2" \
    -shards 6 -heartbeat 200ms -evict-after 2s \
    >"$workdir/coord.out" 2>"$workdir/coord.log" &
coord_pid=$!
coord=$(wait_addr "$workdir/coord.addr" "coordinator")
echo "cluster-smoke: coordinator on $coord"

# lines extracts the figure's report rows from a response envelope; both
# single-node and cluster responses come from the same encoder, so the
# extracted blocks must be byte-identical.
lines() {
    awk '/"lines": \[/{f=1;next} f&&/\]/{exit} f{print}'
}

cat >"$workdir/small.json" <<'JSON'
{"figure": {"name": "7", "trials": 24, "ns": [36], "seed": 7}}
JSON

echo "cluster-smoke: single-node baseline (worker 1)"
"$workdir/blitzctl" -addr "$w1" -req "$workdir/small.json" >"$workdir/small.single"
lines <"$workdir/small.single" >"$workdir/small.single.lines"

echo "cluster-smoke: same figure through the cluster (6 shards)"
"$workdir/blitzctl" -addr "$coord" -req "$workdir/small.json" >"$workdir/small.cluster"
grep -q '"shards": 6' "$workdir/small.cluster" || {
    echo "cluster-smoke: merged result does not record 6 shards" >&2
    exit 1
}
lines <"$workdir/small.cluster" >"$workdir/small.cluster.lines"
diff -u "$workdir/small.single.lines" "$workdir/small.cluster.lines" || {
    echo "cluster-smoke: clustered rows differ from single-node" >&2
    exit 1
}

cat >"$workdir/big.json" <<'JSON'
{"figure": {"name": "7", "trials": 600, "ns": [36], "seed": 11}}
JSON

echo "cluster-smoke: single-node baseline for the failover sweep"
"$workdir/blitzctl" -addr "$w1" -req "$workdir/big.json" | lines >"$workdir/big.single.lines"

echo "cluster-smoke: start the failover sweep, then hard-kill worker 2"
"$workdir/blitzctl" -addr "$coord" -req "$workdir/big.json" >"$workdir/big.cluster" &
sweep_pid=$!
sleep 1
kill -9 "$w2_pid" 2>/dev/null || true
w2_pid=""
wait "$sweep_pid" || {
    echo "cluster-smoke: clustered sweep failed after the worker kill" >&2
    cat "$workdir/coord.log" >&2
    exit 1
}
lines <"$workdir/big.cluster" >"$workdir/big.cluster.lines"
diff -u "$workdir/big.single.lines" "$workdir/big.cluster.lines" || {
    echo "cluster-smoke: rows differ after killing a worker mid-sweep" >&2
    exit 1
}

echo "cluster-smoke: checking the coordinator noticed the death"
status=$("$workdir/blitzctl" -addr "$coord" -cluster)
echo "$status" | grep -q "http://$w2" || {
    echo "cluster-smoke: killed worker missing from status: $status" >&2
    exit 1
}
echo "$status" | grep -A2 "http://$w2" | grep -q '"alive": false' || {
    # The kill may land between heartbeats right at sweep end; give the
    # prober a moment before declaring failure.
    sleep 1
    "$workdir/blitzctl" -addr "$coord" -cluster | grep -A2 "http://$w2" | grep -q '"alive": false' || {
        echo "cluster-smoke: killed worker still marked alive" >&2
        exit 1
    }
}

metrics=$("$workdir/blitzctl" -addr "$coord" -metrics)
echo "$metrics" | grep -q '^blitzd_cluster_shards_dispatched_total' || {
    echo "cluster-smoke: cluster metrics missing from coordinator /metrics" >&2
    exit 1
}

echo "cluster-smoke: OK"
