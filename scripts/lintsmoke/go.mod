module blitzcoin

go 1.22
