// Package cluster is half of the deliberately broken fixture module that
// scripts/lint_smoke.sh lints end-to-end. Each function below violates
// exactly one blitzlint wave-2 rule; the module path mirrors the real repo
// so the analyzers' package scoping applies. The root build never compiles
// this module — it is reachable only through `blitzlint -root`.
package cluster

import (
	"sync"
	"time"
)

type node struct{ mu sync.Mutex }

type pool struct{ mu sync.Mutex }

// lockBoth nests the two mutexes in the committed order, so the golden's
// first entry is observed and stays clean.
func lockBoth(n *node, p *pool) {
	n.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	n.mu.Unlock()
}

// inverted acquires the same pair in the opposite order: exactly one L001.
func inverted(n *node, p *pool) {
	p.mu.Lock()
	n.mu.Lock()
	n.mu.Unlock()
	p.mu.Unlock()
}

// sleepHeld blocks while holding a mutex: exactly one L002. It takes no
// context parameter, so ctxflow stays quiet here.
func sleepHeld(n *node) {
	n.mu.Lock()
	time.Sleep(time.Millisecond)
	n.mu.Unlock()
}

// spawn launches a goroutine that mentions no context, channel, or
// WaitGroup: exactly one G001.
func spawn() {
	go func() {
		for i := 0; i < 1000; i++ {
			busy(i)
		}
	}()
}

func busy(int) {}

// tick leaks its ticker — no Stop, no escape via return: exactly one G002.
func tick() {
	t := time.NewTicker(time.Second)
	<-t.C
}
