// Package server is the request-path half of the broken fixture module; see
// the cluster half for the goroutine and lock-order rules.
package server

import (
	"context"
	"os"
	"time"
)

// stall sleeps inside a context-aware function — uninterruptible even
// though ctx is consulted afterwards: exactly one C001.
func stall(ctx context.Context) error {
	time.Sleep(time.Millisecond)
	return ctx.Err()
}

// mint creates a root context below the process entry point: exactly one
// C002.
func mint() context.Context {
	return context.Background()
}

// drop discards the Close error on a writable file: exactly one R001.
func drop(f *os.File) {
	f.Close()
}
