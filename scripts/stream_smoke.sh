#!/bin/sh
# stream_smoke.sh — end-to-end smoke test of the live-telemetry surface:
# build blitzd + blitzctl, start the daemon with a results ledger, follow
# a figure sweep live over SSE (-stream) and audit the served result
# against the ledger's Merkle proof (-verify), hard-kill a subscriber
# mid-stream and assert the daemon shrugs it off, and check a follower
# of a cached hash gets the synthetic sweep-done. Exits non-zero on any
# failure. No curl dependency; blitzctl is the SSE client.
set -eu

workdir=$(mktemp -d)
trap 'status=$?; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null; [ -n "${victim_pid:-}" ] && kill "$victim_pid" 2>/dev/null; wait 2>/dev/null || true; rm -rf "$workdir"; exit $status' EXIT INT TERM

echo "stream-smoke: building blitzd and blitzctl"
go build -o "$workdir/blitzd" ./cmd/blitzd
go build -o "$workdir/blitzctl" ./cmd/blitzctl

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/addr" \
    -ledger "$workdir/ledger.jsonl" \
    >"$workdir/blitzd.out" 2>"$workdir/blitzd.log" &
daemon_pid=$!

i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "stream-smoke: daemon never came up" >&2
        cat "$workdir/blitzd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/addr")
echo "stream-smoke: blitzd on $addr (ledger at $workdir/ledger.jsonl)"

echo "stream-smoke: streaming a Fig. 7 sweep and verifying it against the ledger"
"$workdir/blitzctl" -addr "$addr" -figure 7 -trials 20 -seed 1 -stream -verify \
    >"$workdir/env1.json" 2>"$workdir/stream1.log"

for ev in sweep-start trial-start series-point trial-done sweep-done; do
    grep -q "stream $ev" "$workdir/stream1.log" || {
        echo "stream-smoke: no $ev event in the stream:" >&2
        cat "$workdir/stream1.log" >&2
        exit 1
    }
done
grep -q 'ledger verification OK' "$workdir/stream1.log" || {
    echo "stream-smoke: ledger verification did not pass:" >&2
    cat "$workdir/stream1.log" >&2
    exit 1
}

echo "stream-smoke: killing a subscriber mid-stream"
"$workdir/blitzctl" -addr "$addr" -figure 7 -trials 20 -seed 2 -stream \
    >"$workdir/env2.json" 2>"$workdir/stream2.log" &
victim_pid=$!
i=0
while ! grep -q 'stream trial-' "$workdir/stream2.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "stream-smoke: victim stream never saw a trial event" >&2
        cat "$workdir/stream2.log" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$victim_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
victim_pid=""

# The daemon must survive the abrupt disconnect and finish the sweep:
# re-requesting with -verify serves (cached or coalesced) and audits.
kill -0 "$daemon_pid" || {
    echo "stream-smoke: daemon died after subscriber kill" >&2
    cat "$workdir/blitzd.log" >&2
    exit 1
}
"$workdir/blitzctl" -addr "$addr" -figure 7 -trials 20 -seed 2 -verify \
    >"$workdir/env3.json" 2>"$workdir/verify3.log"
grep -q 'ledger verification OK' "$workdir/verify3.log" || {
    echo "stream-smoke: post-kill verification failed:" >&2
    cat "$workdir/verify3.log" >&2
    exit 1
}

echo "stream-smoke: following a cached hash yields the synthetic sweep-done"
hash=$(sed -n 's/.*"request_hash": "\([0-9a-f]*\)".*/\1/p' "$workdir/env1.json" | head -1)
[ -n "$hash" ] || { echo "stream-smoke: no request_hash in envelope" >&2; exit 1; }
"$workdir/blitzctl" -addr "$addr" -stream -hash "$hash" 2>"$workdir/stream4.log"
grep -q 'stream sweep-done.*"cached":true' "$workdir/stream4.log" || {
    echo "stream-smoke: cached follow did not get the synthetic done:" >&2
    cat "$workdir/stream4.log" >&2
    exit 1
}

metrics=$("$workdir/blitzctl" -addr "$addr" -metrics)
echo "$metrics" | grep -q '^blitzd_ledger_entries 2$' || {
    echo "stream-smoke: ledger entries metric not 2:" >&2
    echo "$metrics" | grep blitzd_ledger >&2
    exit 1
}
events=$(echo "$metrics" | sed -n 's/^blitzd_stream_events_total \([0-9]*\)$/\1/p')
[ -n "$events" ] && [ "$events" -gt 0 ] || {
    echo "stream-smoke: no streamed events counted (got '$events')" >&2
    exit 1
}
[ -s "$workdir/ledger.jsonl" ] || {
    echo "stream-smoke: ledger file empty" >&2
    exit 1
}

echo "stream-smoke: graceful shutdown"
kill -INT "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "stream-smoke: daemon ignored SIGINT" >&2
        exit 1
    fi
    sleep 0.1
done
daemon_pid=""

echo "stream-smoke: OK"
