#!/bin/sh
# server_smoke.sh — end-to-end smoke test of the blitzd daemon:
# build blitzd + blitzctl, start the daemon on an ephemeral port, issue the
# same exchange request twice through blitzctl, and assert the second one
# was served from the cache (envelope says cached, metrics count a hit).
# Exits non-zero on any failure. No curl dependency; blitzctl is the client.
set -eu

workdir=$(mktemp -d)
trap 'status=$?; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null; wait 2>/dev/null || true; rm -rf "$workdir"; exit $status' EXIT INT TERM

echo "server-smoke: building blitzd and blitzctl"
go build -o "$workdir/blitzd" ./cmd/blitzd
go build -o "$workdir/blitzctl" ./cmd/blitzctl

"$workdir/blitzd" -addr 127.0.0.1:0 -addrfile "$workdir/addr" >"$workdir/blitzd.out" 2>"$workdir/blitzd.log" &
daemon_pid=$!

# Wait for the daemon to write its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: daemon never came up" >&2
        cat "$workdir/blitzd.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$workdir/addr")
echo "server-smoke: blitzd on $addr"

req() {
    "$workdir/blitzctl" -addr "$addr" -exchange -dim 4 -trials 2 -seed 1
}

echo "server-smoke: first request (computes)"
first=$(req)
case "$first" in
*'"cached": false'*) ;;
*) echo "server-smoke: first response not a cache miss: $first" >&2; exit 1 ;;
esac

echo "server-smoke: second request (must hit the cache)"
second=$(req)
case "$second" in
*'"cached": true'*) ;;
*) echo "server-smoke: second response not served from cache: $second" >&2; exit 1 ;;
esac

metrics=$("$workdir/blitzctl" -addr "$addr" -metrics)
echo "$metrics" | grep -q '^blitzd_cache_hits_total 1$' || {
    echo "server-smoke: cache-hit metric not 1:" >&2
    echo "$metrics" | grep blitzd_cache >&2
    exit 1
}
echo "$metrics" | grep -q 'blitzd_requests_total{kind="exchange",status="ok"} 2' || {
    echo "server-smoke: request counter not 2" >&2
    exit 1
}

echo "server-smoke: graceful shutdown"
kill -INT "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server-smoke: daemon ignored SIGINT" >&2
        exit 1
    fi
    sleep 0.1
done
daemon_pid=""

echo "server-smoke: OK"
