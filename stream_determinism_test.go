package blitzcoin

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"blitzcoin/internal/trace"
)

// TestExecuteDeterministicUnderSubscribers is the determinism gate for
// the event bus: simulation results must be byte-identical whether zero
// subscribers or many (including a starved one that forces drops) are
// attached to the default bus. Events are observation, never feedback.
func TestExecuteDeterministicUnderSubscribers(t *testing.T) {
	req := Request{
		Trials: 4,
		Exchange: &ExchangeOptions{
			Dim: 4, Torus: true, RandomPairing: true, Seed: 7,
		},
	}
	hash, err := req.Normalized().CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}

	run := func() []byte {
		res, err := Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Baseline: no subscribers (the allocation-free fast path).
	baseline := run()

	// Attach a healthy subscriber, a key-filtered one, and a deliberately
	// starved one (buffer 1, never read until the end) so the drop-oldest
	// policy engages.
	healthy := trace.Default().Subscribe(hash, 1024)
	defer healthy.Close()
	all := trace.Default().Subscribe("", 1024)
	defer all.Close()
	starved := trace.Default().Subscribe(hash, 1)
	defer starved.Close()

	subscribed := run()

	if !bytes.Equal(baseline, subscribed) {
		t.Fatalf("subscribers changed the result:\n  0 subs: %s\n  3 subs: %s", baseline, subscribed)
	}

	// The healthy subscriber really observed the sweep.
	var sawStart, sawDone bool
	var n int
drain:
	for {
		select {
		case ev := <-healthy.Events():
			n++
			switch ev.Type {
			case trace.EventSweepStart:
				sawStart = true
			case trace.EventSweepDone:
				sawDone = true
			}
		default:
			break drain
		}
	}
	if !sawStart || !sawDone || n < 2+2*4 {
		t.Fatalf("healthy subscriber saw %d events (start=%v done=%v); want full sweep", n, sawStart, sawDone)
	}
	// The starved subscriber dropped events without affecting anything.
	if starved.Dropped() == 0 {
		t.Fatal("starved subscriber dropped nothing; drop-oldest path untested")
	}
}
