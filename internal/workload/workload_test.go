package workload

import (
	"testing"
)

func allGraphs() []*Graph {
	return []*Graph{
		AutonomousVehicleParallel(),
		AutonomousVehicleDependent(),
		ComputerVisionParallel(),
		ComputerVisionDependent(),
		SevenAcceleratorSilicon(),
		SiliconSubset(3),
		SiliconSubset(4),
		SiliconSubset(5),
	}
}

func TestAllBuiltinsValidate(t *testing.T) {
	for _, g := range allGraphs() {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestParallelScenariosHaveNoDeps(t *testing.T) {
	for _, g := range []*Graph{AutonomousVehicleParallel(), ComputerVisionParallel()} {
		for _, task := range g.Tasks {
			if len(task.Deps) != 0 {
				t.Fatalf("%s: WL-Par task %q has dependencies", g.Name, task.Name)
			}
		}
	}
}

func TestDependentScenariosHaveDeps(t *testing.T) {
	for _, g := range []*Graph{AutonomousVehicleDependent(), ComputerVisionDependent()} {
		any := false
		for _, task := range g.Tasks {
			if len(task.Deps) > 0 {
				any = true
			}
		}
		if !any {
			t.Fatalf("%s: WL-Dep scenario has no dependencies", g.Name)
		}
	}
}

func TestAVParallelMatchesSoC(t *testing.T) {
	// The 3x3 SoC has 3 FFT, 2 Viterbi, 1 NVDLA tiles (Fig. 12).
	counts := AutonomousVehicleParallel().AccelCounts()
	if counts["FFT"] != 3 || counts["Viterbi"] != 2 || counts["NVDLA"] != 1 {
		t.Fatalf("accelerator mix = %v", counts)
	}
}

func TestCVParallelMatchesSoC(t *testing.T) {
	// The 4x4 SoC has 13 accelerator tiles.
	g := ComputerVisionParallel()
	if len(g.Tasks) != 13 {
		t.Fatalf("task count = %d, want 13", len(g.Tasks))
	}
	counts := g.AccelCounts()
	if counts["Vision"] != 4 || counts["GEMM"] != 5 || counts["Conv2D"] != 4 {
		t.Fatalf("accelerator mix = %v", counts)
	}
}

func TestSiliconWorkloadUsesSevenAccelerators(t *testing.T) {
	g := SevenAcceleratorSilicon()
	if len(g.Tasks) != 7 {
		t.Fatalf("task count = %d, want 7", len(g.Tasks))
	}
	counts := g.AccelCounts()
	if counts["NVDLA"] != 1 || counts["FFT"] != 2 || counts["Viterbi"] != 4 {
		t.Fatalf("mix = %v, want 1 NVDLA + 2 FFT + 4 Viterbi", counts)
	}
}

func TestReadyRespectsDeps(t *testing.T) {
	g := AutonomousVehicleDependent()
	done := map[int]bool{}
	ready := g.Ready(done)
	// Initially: both frame-0 FFTs and the frame-0 Viterbi RX.
	if len(ready) != 3 {
		t.Fatalf("initial ready = %v", ready)
	}
	// Completing the FFTs unlocks the NVDLA.
	done[0], done[1] = true, true
	found := false
	for _, id := range g.Ready(done) {
		if g.Tasks[id].Name == "f0-nvdla" {
			found = true
		}
	}
	if !found {
		t.Fatal("NVDLA not ready after its FFT deps completed")
	}
}

func TestCriticalPathVsTotalWork(t *testing.T) {
	for _, g := range allGraphs() {
		cp := g.CriticalPathWork()
		tot := g.TotalWork()
		if cp <= 0 || cp > tot {
			t.Fatalf("%s: critical path %v vs total %v", g.Name, cp, tot)
		}
	}
	// A pure parallel graph's critical path is its longest single task.
	g := AutonomousVehicleParallel()
	var maxTask float64
	for _, task := range g.Tasks {
		if task.WorkCycles > maxTask {
			maxTask = task.WorkCycles
		}
	}
	if g.CriticalPathWork() != maxTask {
		t.Fatalf("parallel critical path %v, want %v", g.CriticalPathWork(), maxTask)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := &Graph{Name: "cyclic", Tasks: []Task{
		{ID: 0, Name: "a", Accel: "FFT", WorkCycles: 1, Deps: []int{1}},
		{ID: 1, Name: "b", Accel: "FFT", WorkCycles: 1, Deps: []int{0}},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateCatchesBadDeps(t *testing.T) {
	g := &Graph{Name: "bad", Tasks: []Task{
		{ID: 0, Name: "a", Accel: "FFT", WorkCycles: 1, Deps: []int{7}},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("dangling dependency not detected")
	}
	g = &Graph{Name: "selfdep", Tasks: []Task{
		{ID: 0, Name: "a", Accel: "FFT", WorkCycles: 1, Deps: []int{0}},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("self dependency not detected")
	}
	g = &Graph{Name: "nowork", Tasks: []Task{
		{ID: 0, Name: "a", Accel: "FFT", WorkCycles: 0},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("zero work not detected")
	}
}

func TestRepeatChainsIterations(t *testing.T) {
	g := Repeat(AutonomousVehicleParallel(), 3)
	if len(g.Tasks) != 18 {
		t.Fatalf("repeated task count = %d", len(g.Tasks))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Iteration 1 roots must depend on iteration 0 sinks: the critical
	// path must now span all three iterations.
	single := AutonomousVehicleParallel().CriticalPathWork()
	if cp := g.CriticalPathWork(); cp != 3*single {
		t.Fatalf("repeated critical path %v, want %v", cp, 3*single)
	}
}

func TestRepeatPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Repeat(g,0) did not panic")
		}
	}()
	Repeat(AutonomousVehicleParallel(), 0)
}

func TestSiliconSubsetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SiliconSubset(9) did not panic")
		}
	}()
	SiliconSubset(9)
}
