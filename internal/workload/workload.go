// Package workload describes the applications evaluated on the BlitzCoin
// SoCs (Sec. V-B, Fig. 14) as directed acyclic graphs of accelerator tasks.
//
// Two dataflow scenarios are modeled:
//
//   - Workload-Parallel (WL-Par): all accelerators run concurrently with no
//     data dependencies between tasks;
//   - Workload-Dependent (WL-Dep): tasks depend on one or more tasks on
//     other accelerators, as in a realistic application; only a subset of
//     tiles runs concurrently, which is why the paper evaluates WL-Dep at
//     half the WL-Par power budget.
//
// Two applications are provided, matching the evaluated SoCs (Fig. 12): an
// autonomous-vehicle application for the 3x3 SoC (FFT depth estimation,
// Viterbi vehicle-to-vehicle communication, NVDLA object detection — the
// Mini-ERA workload of [76]) and a computer-vision application for the 4x4
// SoC (Vision preprocessing, Conv2D feature extraction, GEMM
// classification).
package workload

import (
	"fmt"

	"blitzcoin/internal/rng"
)

// Task is one accelerator invocation.
type Task struct {
	ID    int
	Name  string
	Accel string // accelerator type: FFT, Viterbi, NVDLA, GEMM, Conv2D, Vision
	// WorkCycles is the task's length in accelerator clock cycles at
	// whatever frequency the tile runs; duration = WorkCycles / F.
	WorkCycles float64
	// Deps lists task IDs that must complete before this task starts.
	Deps []int
}

// Graph is a DAG of tasks. Build with the constructors and check with
// Validate; task IDs equal slice indices.
type Graph struct {
	Name  string
	Tasks []Task
}

// Validate checks ID consistency, dependency existence, positive work, and
// acyclicity.
func (g *Graph) Validate() error {
	for i, t := range g.Tasks {
		if t.ID != i {
			return fmt.Errorf("workload %s: task %d has ID %d", g.Name, i, t.ID)
		}
		if t.WorkCycles <= 0 {
			return fmt.Errorf("workload %s: task %q has non-positive work", g.Name, t.Name)
		}
		if t.Accel == "" {
			return fmt.Errorf("workload %s: task %q has no accelerator type", g.Name, t.Name)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= len(g.Tasks) {
				return fmt.Errorf("workload %s: task %q depends on unknown task %d", g.Name, t.Name, d)
			}
			if d == i {
				return fmt.Errorf("workload %s: task %q depends on itself", g.Name, t.Name)
			}
		}
	}
	// Kahn's algorithm detects cycles.
	indeg := make([]int, len(g.Tasks))
	for _, t := range g.Tasks {
		for range t.Deps {
			indeg[t.ID]++
		}
	}
	queue := []int{}
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	adj := make([][]int, len(g.Tasks)) // dep -> dependents
	for _, t := range g.Tasks {
		for _, d := range t.Deps {
			adj[d] = append(adj[d], t.ID)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != len(g.Tasks) {
		return fmt.Errorf("workload %s: dependency cycle", g.Name)
	}
	return nil
}

// Ready returns the IDs of tasks whose dependencies are all in done and that
// are not themselves in done, in ID order.
func (g *Graph) Ready(done map[int]bool) []int {
	var out []int
	for _, t := range g.Tasks {
		if done[t.ID] {
			continue
		}
		ok := true
		for _, d := range t.Deps {
			if !done[d] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t.ID)
		}
	}
	return out
}

// TotalWork returns the sum of all task work in cycles.
func (g *Graph) TotalWork() float64 {
	var w float64
	for _, t := range g.Tasks {
		w += t.WorkCycles
	}
	return w
}

// CriticalPathWork returns the work along the longest dependency chain —
// the lower bound on execution time at Fmax (scaled by 1/Fmax).
func (g *Graph) CriticalPathWork() float64 {
	memo := make([]float64, len(g.Tasks))
	computed := make([]bool, len(g.Tasks))
	var longest func(i int) float64
	longest = func(i int) float64 {
		if computed[i] {
			return memo[i]
		}
		var best float64
		for _, d := range g.Tasks[i].Deps {
			if v := longest(d); v > best {
				best = v
			}
		}
		memo[i] = best + g.Tasks[i].WorkCycles
		computed[i] = true
		return memo[i]
	}
	var max float64
	for i := range g.Tasks {
		if v := longest(i); v > max {
			max = v
		}
	}
	return max
}

// AccelCounts returns how many tasks target each accelerator type.
func (g *Graph) AccelCounts() map[string]int {
	out := map[string]int{}
	for _, t := range g.Tasks {
		out[t.Accel]++
	}
	return out
}

// spec is a shorthand used by the builders.
type spec struct {
	name  string
	accel string
	work  float64
	deps  []int
}

func build(name string, specs []spec) *Graph {
	g := &Graph{Name: name}
	for i, s := range specs {
		g.Tasks = append(g.Tasks, Task{
			ID: i, Name: s.name, Accel: s.accel, WorkCycles: s.work, Deps: s.deps,
		})
	}
	if err := g.Validate(); err != nil {
		panic(err) // builders are package-internal: a failure is a bug
	}
	return g
}

// Task work sizes, in accelerator cycles. At the hundreds-of-MHz clocks of
// Fig. 13 these give per-task durations in the hundreds of microseconds,
// matching the ~2500 us RTL simulations of the artifact.
const (
	fftWork     = 45e3 // one depth-estimation FFT batch
	viterbiWork = 36e3 // one V2V decode window
	nvdlaWork   = 60e3 // one detection inference
	visionWork  = 36e3 // noise filter + hist-eq + DWT on one frame
	convWork    = 56e3 // one conv-layer batch
	gemmWork    = 48e3 // one FC/classifier batch
)

// AutonomousVehicleParallel returns the WL-Par scenario of the 3x3 SoC: all
// six accelerators (3 FFT, 2 Viterbi, 1 NVDLA) run concurrently.
func AutonomousVehicleParallel() *Graph {
	return build("av-parallel", []spec{
		{"fft-radar-0", "FFT", fftWork, nil},
		{"fft-radar-1", "FFT", fftWork, nil},
		{"fft-radar-2", "FFT", fftWork, nil},
		{"vit-v2v-rx0", "Viterbi", viterbiWork, nil},
		{"vit-v2v-rx1", "Viterbi", viterbiWork, nil},
		{"nvdla-detect", "NVDLA", nvdlaWork, nil},
	})
}

// AutonomousVehicleDependent returns the WL-Dep scenario of the 3x3 SoC
// (Fig. 14 right): radar FFTs feed object detection, whose output gates the
// outgoing V2V messages, across two consecutive frames.
func AutonomousVehicleDependent() *Graph {
	return build("av-dependent", []spec{
		// Frame 0.
		{"f0-fft-0", "FFT", fftWork, nil},
		{"f0-fft-1", "FFT", fftWork, nil},
		{"f0-vit-rx", "Viterbi", viterbiWork, nil},
		{"f0-nvdla", "NVDLA", nvdlaWork, []int{0, 1}},
		{"f0-vit-tx", "Viterbi", viterbiWork, []int{2, 3}},
		// Frame 1 begins after frame 0's detection.
		{"f1-fft-0", "FFT", fftWork, []int{3}},
		{"f1-fft-1", "FFT", fftWork, []int{3}},
		{"f1-vit-rx", "Viterbi", viterbiWork, []int{4}},
		{"f1-nvdla", "NVDLA", nvdlaWork, []int{5, 6}},
		{"f1-vit-tx", "Viterbi", viterbiWork, []int{7, 8}},
	})
}

// ComputerVisionParallel returns the WL-Par scenario of the 4x4 SoC: 13
// concurrent tasks, one per accelerator tile (4 Vision, 5 GEMM, 4 Conv2D).
func ComputerVisionParallel() *Graph {
	var specs []spec
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{fmt.Sprintf("vision-%d", i), "Vision", visionWork, nil})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{fmt.Sprintf("conv-%d", i), "Conv2D", convWork, nil})
	}
	for i := 0; i < 5; i++ {
		specs = append(specs, spec{fmt.Sprintf("gemm-%d", i), "GEMM", gemmWork, nil})
	}
	return build("cv-parallel", specs)
}

// ComputerVisionDependent returns the WL-Dep scenario of the 4x4 SoC: a
// night-vision/denoise/classify pipeline where each frame's Vision
// preprocessing feeds Conv2D feature extraction and then GEMM
// classification.
func ComputerVisionDependent() *Graph {
	var specs []spec
	// Four camera streams preprocess in parallel.
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{fmt.Sprintf("vision-%d", i), "Vision", visionWork, nil})
	}
	// Each stream's conv depends on its preprocessing.
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{fmt.Sprintf("conv-%d", i), "Conv2D", convWork, []int{i}})
	}
	// Classification: one GEMM per stream plus a fusion GEMM over all.
	for i := 0; i < 4; i++ {
		specs = append(specs, spec{fmt.Sprintf("gemm-%d", i), "GEMM", gemmWork, []int{4 + i}})
	}
	specs = append(specs, spec{"gemm-fuse", "GEMM", gemmWork, []int{8, 9, 10, 11}})
	return build("cv-dependent", specs)
}

// SevenAcceleratorParallel returns the concurrent variant of the silicon
// workload: all seven accelerators of the PM cluster active at once, the
// phase over which the paper measures the 97% budget utilization (Fig. 19
// top shows the seven tiles running simultaneously with staggered ends).
func SevenAcceleratorParallel() *Graph {
	return build("silicon-7acc-par", []spec{
		{"fft-0", "FFT", fftWork, nil},
		{"fft-1", "FFT", fftWork, nil},
		{"vit-0", "Viterbi", viterbiWork, nil},
		{"vit-1", "Viterbi", viterbiWork, nil},
		{"nvdla", "NVDLA", nvdlaWork, nil},
		{"vit-2", "Viterbi", viterbiWork, nil},
		{"vit-3", "Viterbi", viterbiWork, nil},
	})
}

// SevenAcceleratorSilicon returns the workload measured on the fabricated
// 12 nm SoC (Sec. V-D): one NVDLA, two FFT, and four Viterbi accelerators in
// the PM cluster, invoked by one CVA6 core. Dependencies follow the
// autonomous-vehicle structure.
func SevenAcceleratorSilicon() *Graph {
	return build("silicon-7acc", []spec{
		{"fft-0", "FFT", fftWork, nil},
		{"fft-1", "FFT", fftWork, nil},
		{"vit-0", "Viterbi", viterbiWork, nil},
		{"vit-1", "Viterbi", viterbiWork, nil},
		{"nvdla", "NVDLA", nvdlaWork, []int{0, 1}},
		{"vit-2", "Viterbi", viterbiWork, []int{2, 4}},
		{"vit-3", "Viterbi", viterbiWork, []int{3, 4}},
	})
}

// SiliconSubset returns the n-accelerator variants (n = 3, 4, 5) of the
// silicon workload used for the throughput comparison of Sec. VI-C.
func SiliconSubset(n int) *Graph {
	switch n {
	case 3:
		return build("silicon-3acc", []spec{
			{"fft-0", "FFT", fftWork, nil},
			{"vit-0", "Viterbi", viterbiWork, nil},
			{"nvdla", "NVDLA", nvdlaWork, []int{0}},
		})
	case 4:
		return build("silicon-4acc", []spec{
			{"fft-0", "FFT", fftWork, nil},
			{"fft-1", "FFT", fftWork, nil},
			{"vit-0", "Viterbi", viterbiWork, nil},
			{"nvdla", "NVDLA", nvdlaWork, []int{0, 1}},
		})
	case 5:
		return build("silicon-5acc", []spec{
			{"fft-0", "FFT", fftWork, nil},
			{"fft-1", "FFT", fftWork, nil},
			{"vit-0", "Viterbi", viterbiWork, nil},
			{"nvdla", "NVDLA", nvdlaWork, []int{0, 1}},
			{"vit-1", "Viterbi", viterbiWork, []int{2, 3}},
		})
	default:
		panic(fmt.Sprintf("workload: no %d-accelerator silicon subset", n))
	}
}

// RandomDAG generates a seeded random workload over the given accelerator
// types: n tasks with work drawn uniformly from [minWork, maxWork] and up
// to maxDeps backward dependencies each (guaranteeing acyclicity by only
// depending on earlier task IDs). Used for stress-testing the SoC harness
// beyond the paper's fixed applications.
func RandomDAG(src *rng.Source, n int, accels []string, minWork, maxWork float64, maxDeps int) *Graph {
	if n <= 0 || len(accels) == 0 || minWork <= 0 || maxWork < minWork || maxDeps < 0 {
		panic("workload: invalid RandomDAG parameters")
	}
	g := &Graph{Name: fmt.Sprintf("random-%d", n)}
	for i := 0; i < n; i++ {
		t := Task{
			ID:         i,
			Name:       fmt.Sprintf("rand-%d", i),
			Accel:      accels[src.Intn(len(accels))],
			WorkCycles: minWork + src.Float64()*(maxWork-minWork),
		}
		if i > 0 && maxDeps > 0 {
			nd := src.Intn(maxDeps + 1)
			seen := map[int]bool{}
			for k := 0; k < nd; k++ {
				d := src.Intn(i)
				if !seen[d] {
					seen[d] = true
					t.Deps = append(t.Deps, d)
				}
			}
		}
		g.Tasks = append(g.Tasks, t)
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Repeat chains k copies of g sequentially: every task of copy i+1 that has
// no dependencies acquires a dependency on every sink of copy i, modeling
// back-to-back frames.
func Repeat(g *Graph, k int) *Graph {
	if k <= 0 {
		panic("workload: Repeat needs k >= 1")
	}
	out := &Graph{Name: fmt.Sprintf("%s-x%d", g.Name, k)}
	n := len(g.Tasks)
	// Sinks of one copy: tasks no other task depends on.
	isDep := make([]bool, n)
	for _, t := range g.Tasks {
		for _, d := range t.Deps {
			isDep[d] = true
		}
	}
	var sinks []int
	for i := range g.Tasks {
		if !isDep[i] {
			sinks = append(sinks, i)
		}
	}
	for c := 0; c < k; c++ {
		base := c * n
		for _, t := range g.Tasks {
			nt := Task{
				ID:         base + t.ID,
				Name:       fmt.Sprintf("i%d-%s", c, t.Name),
				Accel:      t.Accel,
				WorkCycles: t.WorkCycles,
			}
			for _, d := range t.Deps {
				nt.Deps = append(nt.Deps, base+d)
			}
			if c > 0 && len(t.Deps) == 0 {
				prev := (c - 1) * n
				for _, s := range sinks {
					nt.Deps = append(nt.Deps, prev+s)
				}
			}
			out.Tasks = append(out.Tasks, nt)
		}
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}
