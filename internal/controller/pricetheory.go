package controller

import (
	"math"

	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// PriceTheory is a simplified implementation of the hierarchical
// price-theory-based power manager of Muthukaruppan et al. [81]
// (Sec. VI-D): tiles are grouped into clusters, each with a cluster manager;
// a periodic market clearing gathers per-cluster demand bids, a central
// market assigns cluster budgets in proportion to the bids, and cluster
// managers then distribute their budgets to tiles. The two-level hierarchy
// gives sub-linear scaling, but every clearing still traverses a
// centralized market, and the paper's comparison (Fig. 21) shows it several
// times slower than BlitzCoin even after hardware-implementation scaling.
type PriceTheory struct {
	base
	net *noc.Network

	clusters   [][]int // specs indices per cluster
	mgrs       []int   // manager tile (mesh index) per cluster
	marketTile int
	procCycles sim.Cycles
	epoch      sim.Cycles

	pendingResponse bool
	started         bool
}

// PTConfig parameterizes the scheme.
type PTConfig struct {
	// ClusterSize groups consecutive specs; zero selects ceil(sqrt(N)), the
	// balanced two-level hierarchy.
	ClusterSize int
	// MarketTile hosts the central market (the controller CPU tile).
	MarketTile int
	// ProcCycles is the per-message software handling cost at the managers
	// and market; zero selects 400 cycles (0.5 us), calibrated to the
	// hardware-scaled response times the paper derives from [81].
	ProcCycles sim.Cycles
	// EpochCycles separates market clearings; zero selects twice the
	// clearing latency (the market runs back-to-back with slack).
	EpochCycles sim.Cycles
}

// NewPriceTheory builds the hierarchical controller.
func NewPriceTheory(k *sim.Kernel, net *noc.Network, specs []TileSpec, budgetMW float64, cfg PTConfig) *PriceTheory {
	c := &PriceTheory{
		base:       newBase("PT", k, specs, budgetMW),
		net:        net,
		marketTile: cfg.MarketTile,
		procCycles: cfg.ProcCycles,
		epoch:      cfg.EpochCycles,
	}
	if c.procCycles == 0 {
		c.procCycles = 400
	}
	size := cfg.ClusterSize
	if size == 0 {
		size = int(math.Ceil(math.Sqrt(float64(len(specs)))))
	}
	for start := 0; start < len(specs); start += size {
		end := start + size
		if end > len(specs) {
			end = len(specs)
		}
		idxs := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idxs = append(idxs, i)
		}
		c.clusters = append(c.clusters, idxs)
		// The first tile of each cluster hosts its manager.
		c.mgrs = append(c.mgrs, specs[start].Tile)
	}
	if c.epoch == 0 {
		c.epoch = 2 * c.clearingLatency()
	}
	return c
}

// clearingLatency models one full market clearing:
//
//  1. gather: cluster managers poll their tiles sequentially, clusters in
//     parallel (max over clusters);
//  2. market: the central market collects each cluster bid sequentially and
//     computes prices;
//  3. scatter: managers distribute allocations sequentially within the
//     cluster, clusters in parallel.
//
// With ~sqrt(N) clusters of ~sqrt(N) tiles this is O(sqrt(N)) like
// BlitzCoin, but with software-scale constants and a serialized market.
func (c *PriceTheory) clearingLatency() sim.Cycles {
	var gather sim.Cycles
	for ci, idxs := range c.clusters {
		var t sim.Cycles
		for _, i := range idxs {
			rt := 2 * c.net.UnicastLatencyLowerBound(c.mgrs[ci], c.specs[i].Tile)
			t += rt + c.procCycles
		}
		if t > gather {
			gather = t
		}
	}
	var market sim.Cycles
	for ci := range c.clusters {
		rt := 2 * c.net.UnicastLatencyLowerBound(c.marketTile, c.mgrs[ci])
		market += rt + c.procCycles
	}
	scatter := gather // symmetric distribution pass
	return gather + market + scatter
}

// Start launches the periodic market.
func (c *PriceTheory) Start() {
	if c.started {
		return
	}
	c.started = true
	var clear func()
	clear = func() {
		lat := c.clearingLatency()
		c.kernel.Schedule(lat, func() {
			c.apply()
			if c.pendingResponse {
				c.markResponded()
				c.pendingResponse = false
			}
		})
		c.kernel.Schedule(c.epoch, clear)
	}
	c.kernel.Schedule(1, clear)
}

// SetTarget registers a bid change; it takes effect at the next clearing.
func (c *PriceTheory) SetTarget(tile int, mw float64) {
	c.targets[c.mustIndex(tile)] = mw
	c.markChange()
	c.pendingResponse = true
}

// apply performs the two-level proportional allocation.
func (c *PriceTheory) apply() {
	// Cluster demands.
	demands := make([]float64, len(c.clusters))
	var total float64
	for ci, idxs := range c.clusters {
		for _, i := range idxs {
			demands[ci] += c.targets[i]
		}
		total += demands[ci]
	}
	if total == 0 {
		for i := range c.specs {
			c.setAlloc(i, 0)
		}
		return
	}
	for ci, idxs := range c.clusters {
		clusterBudget := c.budget * demands[ci] / total
		sub := make([]TileSpec, len(idxs))
		subT := make([]float64, len(idxs))
		for k, i := range idxs {
			sub[k] = c.specs[i]
			subT[k] = c.targets[i]
		}
		shares := proportionalShares(sub, subT, clusterBudget)
		for k, i := range idxs {
			c.setAlloc(i, shares[k])
		}
	}
}

// NumClusters returns the hierarchy width, for tests.
func (c *PriceTheory) NumClusters() int { return len(c.clusters) }
