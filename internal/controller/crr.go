package controller

import (
	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// CRR is the Centralized-Round-Robin baseline (Sec. V-C), a simplified
// version of the centralized controller of Mantovani et al. [42]: the
// controller monitors tile status and uses a round-robin scheme to decide
// which tiles run at maximum (V, F) under the global power cap; the other
// active tiles run at minimum (V, F). The grant set rotates periodically for
// fairness. Allocation is therefore discrete (max or min), which is what
// limits C-RR's throughput relative to the fine-grained schemes
// (Sec. VI-A).
type CRR struct {
	base
	net        *noc.Network
	ctrlTile   int
	procCycles sim.Cycles
	rotation   sim.Cycles

	cursor  int // round-robin start position
	running bool
	rerun   bool
	started bool
}

// CRRConfig parameterizes the baseline.
type CRRConfig struct {
	CtrlTile int
	// ProcCycles is the firmware cost per tile; zero selects 240 cycles,
	// landing the N=13 response in the measured 3.7-6.4 us band.
	ProcCycles sim.Cycles
	// RotationCycles is the fairness rotation period; zero selects
	// 40000 cycles (50 us).
	RotationCycles sim.Cycles
}

// NewCRR builds the baseline controller.
func NewCRR(k *sim.Kernel, net *noc.Network, specs []TileSpec, budgetMW float64, cfg CRRConfig) *CRR {
	c := &CRR{
		base:       newBase("C-RR", k, specs, budgetMW),
		net:        net,
		ctrlTile:   cfg.CtrlTile,
		procCycles: cfg.ProcCycles,
		rotation:   cfg.RotationCycles,
	}
	if c.procCycles == 0 {
		c.procCycles = 240
	}
	if c.rotation == 0 {
		c.rotation = 40000
	}
	return c
}

// Start begins the periodic fairness rotation.
func (c *CRR) Start() {
	if c.started {
		return
	}
	c.started = true
	var rotate func()
	rotate = func() {
		c.cursor = (c.cursor + 1) % len(c.specs)
		if !c.running {
			// Rotations are routine (not activity-triggered), so they do
			// not reset the response-time clock.
			c.startRound(false)
		}
		c.kernel.Schedule(c.rotation, rotate)
	}
	c.kernel.Schedule(c.rotation, rotate)
}

// SetTarget records the activity change and triggers a grant recomputation.
func (c *CRR) SetTarget(tile int, mw float64) {
	c.targets[c.mustIndex(tile)] = mw
	c.markChange()
	if c.running {
		c.rerun = true
		return
	}
	c.startRound(true)
}

// grants computes the greedy round-robin allocation (Table I lists C-RR's
// allocation as "greedy"): the budget first covers every active tile's Pmin
// floor; then, walking round-robin from the rotating cursor, each active
// tile greedily takes as much of the remaining budget as it can use, up to
// its Pmax. Early tiles in the rotation run at or near maximum (V, F) while
// late ones stay at minimum — the discrete, rotation-granularity allocation
// whose throughput cost Sec. VI-A quantifies.
func (c *CRR) grants() []float64 {
	out := make([]float64, len(c.specs))
	remaining := c.budget
	for i, t := range c.targets {
		if t > 0 {
			out[i] = c.specs[i].PMinMW
			remaining -= c.specs[i].PMinMW
		}
	}
	for k := 0; k < len(c.specs); k++ {
		i := (c.cursor + k) % len(c.specs)
		if c.targets[i] <= 0 || remaining <= 0 {
			continue
		}
		step := c.specs[i].PMaxMW - c.specs[i].PMinMW
		if step > remaining {
			step = remaining
		}
		out[i] += step
		remaining -= step
	}
	return out
}

// startRound models the controller sweep, as in BC-C: sequential polling
// plus sequential grant updates. fromChange marks rounds triggered by an
// activity change, which are the ones timed as "response".
func (c *CRR) startRound(fromChange bool) {
	c.running = true
	var t sim.Cycles
	for _, s := range c.specs {
		rt := 2 * c.net.UnicastLatencyLowerBound(c.ctrlTile, s.Tile)
		t += rt + c.procCycles
	}
	send := t + c.procCycles
	for i, s := range c.specs {
		i, s := i, s
		lat := c.net.UnicastLatencyLowerBound(c.ctrlTile, s.Tile)
		c.kernel.Schedule(send+lat, func() {
			c.setAlloc(i, c.grants()[i])
		})
		send += c.procCycles / 4
	}
	c.kernel.Schedule(send, func() {
		if fromChange {
			c.markResponded()
		}
		c.running = false
		if c.rerun {
			c.rerun = false
			c.startRound(true)
		}
	})
}
