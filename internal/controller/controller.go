// Package controller implements the power-allocation controllers evaluated
// in the paper: the centralized baselines C-RR and BC-C (Sec. V-C), the
// decentralized ring-based TokenSmart (Sec. III-C), the hierarchical
// price-theory scheme PT (Sec. VI-D), and the static allocation used as the
// silicon baseline (Sec. VI-C). BlitzCoin itself is the coin-exchange
// emulator of package coin; the SoC harness adapts it to the same interface.
//
// Every controller allocates a global power budget across accelerator
// tiles, reacting to activity changes (task start/end) with its own latency
// dynamics, which it models with messages over the simulated NoC — that is
// what makes the response-time comparison meaningful.
package controller

import (
	"fmt"

	"blitzcoin/internal/sim"
)

// TileSpec describes one managed accelerator tile.
type TileSpec struct {
	// Tile is the mesh index of the tile.
	Tile int
	// PMaxMW and PMinMW bound the tile's operating power range.
	PMaxMW, PMinMW float64
}

// Controller is the interface every power-management scheme implements.
type Controller interface {
	// Name returns the scheme's short name as used in the paper's figures.
	Name() string
	// Start schedules the controller's periodic behavior; call once after
	// construction.
	Start()
	// SetTarget reports an activity change on a tile: the tile now wants
	// the given power target in mW (0 = inactive, relinquish allocation).
	SetTarget(tile int, mw float64)
	// AllocationMW returns the tile's current allocation.
	AllocationMW(tile int) float64
	// OnAllocation registers the observer invoked on allocation changes.
	OnAllocation(fn func(tile int, mw float64))
	// LastResponseCycles returns the scheme-defined response time of the
	// most recently completed reallocation: the time from the triggering
	// activity change until the allocation of every tile was adjusted.
	LastResponseCycles() sim.Cycles
	// ResponseSamples returns every recorded response time, in order.
	ResponseSamples() []sim.Cycles
	// BudgetMW returns the global cap the controller enforces.
	BudgetMW() float64
}

// base carries the bookkeeping shared by all controllers.
type base struct {
	name    string
	kernel  *sim.Kernel
	specs   []TileSpec
	byTile  map[int]int // mesh index -> specs index
	budget  float64
	targets []float64 // desired power per tile (0 = inactive)
	allocs  []float64 // current allocation per tile

	onAlloc      func(tile int, mw float64)
	lastChangeAt sim.Cycles
	lastResponse sim.Cycles
	responses    []sim.Cycles
}

func newBase(name string, k *sim.Kernel, specs []TileSpec, budgetMW float64) base {
	if budgetMW <= 0 {
		panic(fmt.Sprintf("controller: non-positive budget %v", budgetMW))
	}
	if len(specs) == 0 {
		panic("controller: no tiles to manage")
	}
	b := base{
		name:    name,
		kernel:  k,
		specs:   specs,
		byTile:  make(map[int]int, len(specs)),
		budget:  budgetMW,
		targets: make([]float64, len(specs)),
		allocs:  make([]float64, len(specs)),
	}
	for i, s := range specs {
		if s.PMaxMW <= 0 || s.PMinMW < 0 || s.PMinMW > s.PMaxMW {
			panic(fmt.Sprintf("controller: invalid tile spec %+v", s))
		}
		if _, dup := b.byTile[s.Tile]; dup {
			panic(fmt.Sprintf("controller: duplicate tile %d", s.Tile))
		}
		b.byTile[s.Tile] = i
	}
	return b
}

func (b *base) Name() string      { return b.name }
func (b *base) BudgetMW() float64 { return b.budget }

func (b *base) OnAllocation(fn func(tile int, mw float64)) { b.onAlloc = fn }

func (b *base) AllocationMW(tile int) float64 {
	return b.allocs[b.mustIndex(tile)]
}

func (b *base) LastResponseCycles() sim.Cycles { return b.lastResponse }

func (b *base) mustIndex(tile int) int {
	i, ok := b.byTile[tile]
	if !ok {
		panic(fmt.Sprintf("controller: tile %d is not managed", tile))
	}
	return i
}

// setAlloc applies an allocation and notifies the observer.
func (b *base) setAlloc(idx int, mw float64) {
	if b.allocs[idx] == mw {
		return
	}
	b.allocs[idx] = mw
	if b.onAlloc != nil {
		b.onAlloc(b.specs[idx].Tile, mw)
	}
}

// markChange records the activity-change instant for response measurement.
func (b *base) markChange() { b.lastChangeAt = b.kernel.Now() }

// markResponded records completion of the reallocation triggered by the
// last change.
func (b *base) markResponded() {
	b.lastResponse = b.kernel.Now() - b.lastChangeAt
	b.responses = append(b.responses, b.lastResponse)
}

// ResponseSamples returns every recorded response time, in order.
func (b *base) ResponseSamples() []sim.Cycles { return b.responses }

// TotalAllocationMW returns the current sum of allocations, which every
// scheme must keep at or below the budget.
func (b *base) TotalAllocationMW() float64 {
	var t float64
	for _, a := range b.allocs {
		t += a
	}
	return t
}

// proportionalShares computes each active tile's share of the budget in
// proportion to its target, capped at the tile's PMax; freed headroom from
// capped tiles is re-spread over the rest. This is the allocation rule both
// BlitzCoin and BC-C implement (Sec. V-C: "the frequency of each tile is set
// in proportion to the ratio of the tile's target power to the whole SoC's
// power").
func proportionalShares(specs []TileSpec, targets []float64, budget float64) []float64 {
	out := make([]float64, len(specs))
	capped := make([]bool, len(specs))
	remaining := budget
	for {
		var sumT float64
		for i, t := range targets {
			if t > 0 && !capped[i] {
				sumT += t
			}
		}
		if sumT == 0 {
			break
		}
		overflow := false
		for i, t := range targets {
			if t <= 0 || capped[i] {
				continue
			}
			share := remaining * t / sumT
			if share >= specs[i].PMaxMW {
				out[i] = specs[i].PMaxMW
				capped[i] = true
				remaining -= specs[i].PMaxMW
				overflow = true
			}
		}
		if !overflow {
			for i, t := range targets {
				if t > 0 && !capped[i] {
					out[i] = remaining * t / sumT
				}
			}
			break
		}
	}
	return out
}
