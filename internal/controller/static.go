package controller

import "blitzcoin/internal/sim"

// Static is the no-reallocation baseline used for the silicon throughput
// comparison (Sec. VI-C): the budget is split across all managed tiles
// once, in proportion to each tile's maximum power, and never adjusted.
// Idle tiles waste their share; busy tiles cannot borrow it — that stranded
// budget is exactly what BlitzCoin's redistribution recovers.
type Static struct {
	base
}

// NewStatic builds the static allocator.
func NewStatic(k *sim.Kernel, specs []TileSpec, budgetMW float64) *Static {
	return &Static{base: newBase("Static", k, specs, budgetMW)}
}

// Start applies the one-time proportional split, capped per tile at PMax.
func (c *Static) Start() {
	var sum float64
	for _, s := range c.specs {
		sum += s.PMaxMW
	}
	for i, s := range c.specs {
		mw := c.budget * s.PMaxMW / sum
		if mw > s.PMaxMW {
			mw = s.PMaxMW
		}
		c.setAlloc(i, mw)
	}
}

// SetTarget records the target but never reallocates; the response time of
// a static scheme is zero by definition (it never responds).
func (c *Static) SetTarget(tile int, mw float64) {
	c.targets[c.mustIndex(tile)] = mw
}
