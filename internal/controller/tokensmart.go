package controller

import (
	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// TokenSmart is the ring-based decentralized token scheme of Shah et
// al. [43] (Sec. III-C). The pool of available power tokens is passed
// sequentially around a ring of tiles. In the default greedy mode, each tile
// the pool visits takes enough tokens to satisfy its own target. When a tile
// has been starved for a specified duration, the global policy switches to a
// fair mode that targets an equal token count in each active tile, then
// reverts. Although decentralized, the sequential token passing makes the
// convergence time scale with N, and the greedy/fair oscillation produces
// the long-tail outliers of Fig. 4.
type TokenSmart struct {
	base
	net *noc.Network

	tokenValue float64 // mW per token
	total      int64   // total tokens (budget / tokenValue)
	held       []int64
	pool       int64

	pos        int // ring position (index into specs)
	fair       bool
	fairLeft   int   // revolutions of fair mode remaining
	starve     []int // consecutive starved revolutions per tile
	movedInRev bool

	pendingResponse bool
	revCount        uint64 // completed revolutions
	eligibleRev     uint64 // first revolution allowed to complete a response
	visitProc       sim.Cycles
	started         bool
	tsCfg           TSConfig
}

// TSConfig parameterizes TokenSmart.
type TSConfig struct {
	// TotalTokens quantizes the budget; zero selects 256.
	TotalTokens int64
	// VisitProcCycles is the per-tile token-handling time; zero selects
	// 150 cycles, landing the N=13 response near the measured 2.9 us.
	VisitProcCycles sim.Cycles
	// StarveRevolutions triggers fair mode; zero selects 2.
	StarveRevolutions int
	// FairRevolutions is how long fair mode lasts; zero selects 4.
	FairRevolutions int
}

func (c *TSConfig) defaults() {
	if c.TotalTokens == 0 {
		c.TotalTokens = 256
	}
	if c.VisitProcCycles == 0 {
		c.VisitProcCycles = 150
	}
	if c.StarveRevolutions == 0 {
		c.StarveRevolutions = 2
	}
	if c.FairRevolutions == 0 {
		c.FairRevolutions = 4
	}
}

// NewTokenSmart builds the scheme over the managed tiles; the ring order is
// the order of specs (callers pass a snake order so consecutive ring tiles
// are mesh-adjacent).
func NewTokenSmart(k *sim.Kernel, net *noc.Network, specs []TileSpec, budgetMW float64, cfg TSConfig) *TokenSmart {
	cfg.defaults()
	c := &TokenSmart{
		base:       newBase("TS", k, specs, budgetMW),
		net:        net,
		tokenValue: budgetMW / float64(cfg.TotalTokens),
		total:      cfg.TotalTokens,
		held:       make([]int64, len(specs)),
		pool:       cfg.TotalTokens,
		starve:     make([]int, len(specs)),
		visitProc:  cfg.VisitProcCycles,
	}
	c.tsCfg = cfg
	return c
}

// Start launches the circulating token pool.
func (c *TokenSmart) Start() {
	if c.started {
		return
	}
	c.started = true
	c.scheduleHop()
}

// SetTarget records a tile's new power target; the circulating pool will
// absorb the change over the following revolutions.
func (c *TokenSmart) SetTarget(tile int, mw float64) {
	c.targets[c.mustIndex(tile)] = mw
	c.markChange()
	c.pendingResponse = true
	// A response needs at least one full revolution to serve the change
	// and a further quiet revolution to confirm stability.
	c.eligibleRev = c.revCount + 2
}

// needTokens returns tile i's desired token count in the current mode.
func (c *TokenSmart) needTokens(i int) int64 {
	if c.targets[i] <= 0 {
		return 0
	}
	if c.fair {
		active := int64(0)
		for _, t := range c.targets {
			if t > 0 {
				active++
			}
		}
		return c.total / active
	}
	want := int64(c.targets[i]/c.tokenValue + 0.5)
	capTokens := int64(c.specs[i].PMaxMW / c.tokenValue)
	if want > capTokens {
		want = capTokens
	}
	return want
}

// visit applies the greedy/fair take-release rule at ring position pos.
func (c *TokenSmart) visit() {
	i := c.pos
	need := c.needTokens(i)
	switch {
	case c.held[i] > need:
		c.pool += c.held[i] - need
		c.held[i] = need
		c.movedInRev = true
	case c.held[i] < need:
		take := need - c.held[i]
		if take > c.pool {
			take = c.pool
		}
		if take > 0 {
			c.pool -= take
			c.held[i] += take
			c.movedInRev = true
		}
	}
	c.setAlloc(i, float64(c.held[i])*c.tokenValue)
}

// scheduleHop advances the pool to the next tile after the NoC hop latency
// plus the visit processing time.
func (c *TokenSmart) scheduleHop() {
	next := (c.pos + 1) % len(c.specs)
	hop := c.net.UnicastLatencyLowerBound(c.specs[c.pos].Tile, c.specs[next].Tile)
	c.kernel.Schedule(hop+c.visitProc, func() {
		c.pos = next
		c.visit()
		if c.pos == len(c.specs)-1 {
			c.endRevolution()
		}
		c.scheduleHop()
	})
}

// endRevolution runs the once-per-revolution policy: starvation accounting,
// greedy/fair switching, and response-time completion detection.
func (c *TokenSmart) endRevolution() {
	anyStarved := false
	for i := range c.specs {
		if c.targets[i] > 0 && c.held[i] < c.needTokens(i) {
			c.starve[i]++
			if c.starve[i] >= c.tsCfg.StarveRevolutions {
				anyStarved = true
			}
		} else {
			c.starve[i] = 0
		}
	}
	switch {
	case c.fair:
		c.fairLeft--
		if c.fairLeft <= 0 {
			c.fair = false
			for i := range c.starve {
				c.starve[i] = 0
			}
		}
	case anyStarved:
		c.fair = true
		c.fairLeft = c.tsCfg.FairRevolutions
	}
	c.revCount++
	if c.pendingResponse && c.revCount >= c.eligibleRev && !c.movedInRev && !c.fair {
		c.markResponded()
		c.pendingResponse = false
	}
	c.movedInRev = false
}

// PoolTokens returns the tokens currently unallocated, for tests.
func (c *TokenSmart) PoolTokens() int64 { return c.pool }

// FairMode reports whether the global policy is currently in fair mode.
func (c *TokenSmart) FairMode() bool { return c.fair }
