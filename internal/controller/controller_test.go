package controller

import (
	"math"
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// testRig builds a kernel, network, and n managed tiles (indices 1..n on a
// mesh big enough to hold them plus a controller at tile 0).
func testRig(n int) (*sim.Kernel, *noc.Network, []TileSpec) {
	k := &sim.Kernel{}
	d := 2
	for d*d < n+1 {
		d++
	}
	net := noc.New(k, mesh.Square(d, false), noc.DefaultConfig())
	specs := make([]TileSpec, n)
	for i := range specs {
		specs[i] = TileSpec{Tile: i + 1, PMaxMW: 100, PMinMW: 10}
	}
	return k, net, specs
}

func sumAlloc(c Controller, specs []TileSpec) float64 {
	var t float64
	for _, s := range specs {
		t += c.AllocationMW(s.Tile)
	}
	return t
}

func TestProportionalSharesBasic(t *testing.T) {
	specs := []TileSpec{{Tile: 0, PMaxMW: 100}, {Tile: 1, PMaxMW: 100}}
	got := proportionalShares(specs, []float64{60, 30}, 90)
	if math.Abs(got[0]-60) > 1e-9 || math.Abs(got[1]-30) > 1e-9 {
		t.Fatalf("shares = %v", got)
	}
}

func TestProportionalSharesScalesDown(t *testing.T) {
	specs := []TileSpec{{Tile: 0, PMaxMW: 100}, {Tile: 1, PMaxMW: 100}}
	got := proportionalShares(specs, []float64{80, 40}, 60)
	if math.Abs(got[0]-40) > 1e-9 || math.Abs(got[1]-20) > 1e-9 {
		t.Fatalf("shares = %v", got)
	}
}

func TestProportionalSharesWaterFilling(t *testing.T) {
	// A capped tile's overflow is re-spread over the rest.
	specs := []TileSpec{{Tile: 0, PMaxMW: 30}, {Tile: 1, PMaxMW: 200}}
	got := proportionalShares(specs, []float64{100, 100}, 120)
	if math.Abs(got[0]-30) > 1e-9 {
		t.Fatalf("capped share = %v, want 30", got[0])
	}
	if math.Abs(got[1]-90) > 1e-9 {
		t.Fatalf("respread share = %v, want 90", got[1])
	}
}

func TestProportionalSharesAllInactive(t *testing.T) {
	specs := []TileSpec{{Tile: 0, PMaxMW: 30}}
	got := proportionalShares(specs, []float64{0}, 100)
	if got[0] != 0 {
		t.Fatalf("inactive share = %v", got[0])
	}
}

func TestBCCAllocatesProportionallyAfterRound(t *testing.T) {
	k, net, specs := testRig(4)
	c := NewBCC(k, net, specs, 100, BCCConfig{CtrlTile: 0})
	c.Start()
	c.SetTarget(1, 60)
	c.SetTarget(2, 30)
	k.Run(1 << 22)
	a1, a2 := c.AllocationMW(1), c.AllocationMW(2)
	if a1 <= a2 || a2 <= 0 {
		t.Fatalf("allocations %v/%v not proportional", a1, a2)
	}
	if total := sumAlloc(c, specs); total > 100+1e-9 {
		t.Fatalf("budget exceeded: %v", total)
	}
	if c.LastResponseCycles() == 0 {
		t.Fatal("response time not recorded")
	}
}

func TestBCCResponseScalesWithN(t *testing.T) {
	// BC-C is O(N): doubling tiles roughly doubles the response time.
	resp := func(n int) float64 {
		k, net, specs := testRig(n)
		c := NewBCC(k, net, specs, 1000, BCCConfig{CtrlTile: 0})
		c.Start()
		c.SetTarget(1, 50)
		k.Run(1 << 22)
		return float64(c.LastResponseCycles())
	}
	r6, r12 := resp(6), resp(12)
	if ratio := r12 / r6; ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("BC-C response ratio for 2x tiles = %.2f, want about 2", ratio)
	}
}

func TestBCCResponseMicrosecondBand(t *testing.T) {
	// Table I: BC-C response 3.8-8.0 us at N=13.
	k, net, specs := testRig(13)
	c := NewBCC(k, net, specs, 1000, BCCConfig{CtrlTile: 0})
	c.Start()
	c.SetTarget(1, 50)
	k.Run(1 << 22)
	us := sim.CyclesToMicros(c.LastResponseCycles())
	if us < 2 || us > 12 {
		t.Fatalf("BC-C response %.2f us at N=13, want a few us", us)
	}
}

func TestBCCRerunCoalescesMidRoundChanges(t *testing.T) {
	k, net, specs := testRig(4)
	c := NewBCC(k, net, specs, 100, BCCConfig{CtrlTile: 0})
	c.Start()
	c.SetTarget(1, 60)
	// Mid-round second change: must still end with both targets served.
	k.Run(100)
	c.SetTarget(2, 60)
	k.Run(1 << 22)
	if c.AllocationMW(2) <= 0 {
		t.Fatalf("second change lost: alloc=%v", c.AllocationMW(2))
	}
}

func TestCRRGreedyGrantsUnderCap(t *testing.T) {
	k, net, specs := testRig(4)
	// Budget fits one full Pmax grant, a partial greedy grant, and two
	// Pmin floors: floors 4x10 = 40, then greedily +90 and +10.
	c := NewCRR(k, net, specs, 140, CRRConfig{CtrlTile: 0})
	c.Start()
	for i := 1; i <= 4; i++ {
		c.SetTarget(i, 100)
	}
	k.Run(1 << 16)
	maxCount, minCount, midCount := 0, 0, 0
	for _, s := range specs {
		switch a := c.AllocationMW(s.Tile); {
		case a == 100:
			maxCount++
		case a == 10:
			minCount++
		case a > 10 && a < 100:
			midCount++
		default:
			t.Fatalf("C-RR allocation %v out of range", a)
		}
	}
	if maxCount != 1 || minCount != 2 || midCount != 1 {
		t.Fatalf("grants: %d max, %d min, %d partial; want 1/2/1", maxCount, minCount, midCount)
	}
	if total := sumAlloc(c, specs); total > 140+1e-9 {
		t.Fatalf("cap exceeded: %v", total)
	}
}

func TestCRRRotationMovesGrant(t *testing.T) {
	k, net, specs := testRig(3)
	c := NewCRR(k, net, specs, 120, CRRConfig{CtrlTile: 0, RotationCycles: 10000})
	c.Start()
	for i := 1; i <= 3; i++ {
		c.SetTarget(i, 100)
	}
	k.Run(1 << 14)
	granted := func() int {
		for _, s := range specs {
			if c.AllocationMW(s.Tile) == 100 {
				return s.Tile
			}
		}
		return -1
	}
	first := granted()
	if first == -1 {
		t.Fatal("no tile granted Pmax")
	}
	// After a few rotation periods the grant must have moved.
	moved := false
	for i := 0; i < 5 && !moved; i++ {
		k.Run(k.Now() + 10000 + 8000)
		if granted() != first {
			moved = true
		}
	}
	if !moved {
		t.Fatal("round-robin grant never rotated")
	}
}

func TestTokenSmartConvergesGreedy(t *testing.T) {
	k, net, specs := testRig(4)
	c := NewTokenSmart(k, net, specs, 100, TSConfig{})
	c.Start()
	c.SetTarget(1, 50)
	c.SetTarget(2, 25)
	k.Run(1 << 18)
	a1, a2 := c.AllocationMW(1), c.AllocationMW(2)
	if math.Abs(a1-50) > 2 || math.Abs(a2-25) > 2 {
		t.Fatalf("TS allocations %v/%v, want about 50/25", a1, a2)
	}
	if total := sumAlloc(c, specs); total > 100+1e-9 {
		t.Fatalf("budget exceeded: %v", total)
	}
	if c.LastResponseCycles() == 0 {
		t.Fatal("TS response not recorded")
	}
}

func TestTokenSmartReleasesOnDeactivation(t *testing.T) {
	k, net, specs := testRig(3)
	c := NewTokenSmart(k, net, specs, 90, TSConfig{})
	c.Start()
	c.SetTarget(1, 90)
	k.Run(1 << 18)
	before := c.AllocationMW(1)
	c.SetTarget(1, 0)
	c.SetTarget(2, 90)
	k.Run(1 << 20)
	if c.AllocationMW(1) != 0 {
		t.Fatalf("deactivated tile kept %v mW", c.AllocationMW(1))
	}
	if c.AllocationMW(2) < before-2 {
		t.Fatalf("tokens not transferred: %v", c.AllocationMW(2))
	}
}

func TestTokenSmartFairModeOnStarvation(t *testing.T) {
	k, net, specs := testRig(3)
	c := NewTokenSmart(k, net, specs, 90, TSConfig{StarveRevolutions: 2, FairRevolutions: 2})
	c.Start()
	// Tile 1 grabs everything; then tiles 2 and 3 demand more than
	// remains, starving them into fair mode.
	c.SetTarget(1, 90)
	k.Run(1 << 18)
	c.SetTarget(2, 90)
	c.SetTarget(3, 90)
	sawFair := false
	for i := 0; i < 64 && !sawFair; i++ {
		k.Run(k.Now() + 2000)
		if c.FairMode() {
			sawFair = true
		}
	}
	if !sawFair {
		t.Fatal("starvation never triggered fair mode")
	}
}

func TestTokenSmartResponseScalesWithN(t *testing.T) {
	resp := func(n int) float64 {
		k, net, specs := testRig(n)
		c := NewTokenSmart(k, net, specs, 1000, TSConfig{})
		c.Start()
		k.Run(1 << 16) // let the pool circulate
		c.SetTarget(1, 100)
		k.Run(1 << 22)
		return float64(c.LastResponseCycles())
	}
	r6, r12 := resp(6), resp(12)
	if ratio := r12 / r6; ratio < 1.4 {
		t.Fatalf("TS response ratio %.2f for 2x tiles, want near-linear growth", ratio)
	}
}

func TestPriceTheoryAllocatesAtClearing(t *testing.T) {
	k, net, specs := testRig(9)
	// Scarce budget (120 < 150 demand) so proportional favoring is visible.
	c := NewPriceTheory(k, net, specs, 120, PTConfig{MarketTile: 0})
	c.Start()
	c.SetTarget(1, 100)
	c.SetTarget(5, 50)
	k.Run(1 << 22)
	a1, a5 := c.AllocationMW(1), c.AllocationMW(5)
	if a1 <= 0 || a5 <= 0 {
		t.Fatalf("PT allocations %v/%v", a1, a5)
	}
	if a1 <= a5 {
		t.Fatalf("PT did not favor larger bid: %v vs %v", a1, a5)
	}
	if total := sumAlloc(c, specs); total > 120+1e-9 {
		t.Fatalf("budget exceeded: %v", total)
	}
	if c.LastResponseCycles() == 0 {
		t.Fatal("PT response not recorded")
	}
	if c.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3 for 9 tiles", c.NumClusters())
	}
}

func TestPriceTheorySlowerThanBCC(t *testing.T) {
	// PT's software-scale constants make it slower than the hardware
	// centralized controller at small N (Table I context).
	n := 13
	k1, net1, specs1 := testRig(n)
	bcc := NewBCC(k1, net1, specs1, 1000, BCCConfig{CtrlTile: 0})
	bcc.Start()
	bcc.SetTarget(1, 50)
	k1.Run(1 << 22)

	k2, net2, specs2 := testRig(n)
	pt := NewPriceTheory(k2, net2, specs2, 1000, PTConfig{MarketTile: 0})
	pt.Start()
	pt.SetTarget(1, 50)
	k2.Run(1 << 22)

	if pt.LastResponseCycles() <= bcc.LastResponseCycles() {
		t.Fatalf("PT (%d) should respond slower than BC-C (%d) at N=13",
			pt.LastResponseCycles(), bcc.LastResponseCycles())
	}
}

func TestStaticProportionalSplitAndZeroResponse(t *testing.T) {
	k, _, specs := testRig(4)
	c := NewStatic(k, specs, 200)
	c.Start()
	// Equal PMax across the rig: the proportional split is equal here.
	for _, s := range specs {
		if got := c.AllocationMW(s.Tile); math.Abs(got-50) > 1e-9 {
			t.Fatalf("static share %v, want 50", got)
		}
	}
	c.SetTarget(1, 100)
	k.Run(1 << 16)
	if c.AllocationMW(1) != 50 {
		t.Fatal("static allocation changed on activity")
	}
	if c.LastResponseCycles() != 0 {
		t.Fatal("static response should be 0")
	}
}

func TestStaticProportionalFavorsBigTiles(t *testing.T) {
	k := &sim.Kernel{}
	specs := []TileSpec{{Tile: 0, PMaxMW: 20, PMinMW: 1}, {Tile: 1, PMaxMW: 180, PMinMW: 1}}
	c := NewStatic(k, specs, 100)
	c.Start()
	if got := c.AllocationMW(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("small tile got %v, want 10", got)
	}
	if got := c.AllocationMW(1); math.Abs(got-90) > 1e-9 {
		t.Fatalf("big tile got %v, want 90", got)
	}
}

func TestBaseValidation(t *testing.T) {
	k := &sim.Kernel{}
	for _, tc := range []struct {
		name  string
		specs []TileSpec
		mw    float64
	}{
		{"no tiles", nil, 100},
		{"bad budget", []TileSpec{{Tile: 0, PMaxMW: 10}}, 0},
		{"bad range", []TileSpec{{Tile: 0, PMaxMW: 10, PMinMW: 20}}, 100},
		{"dup tiles", []TileSpec{{Tile: 0, PMaxMW: 10}, {Tile: 0, PMaxMW: 10}}, 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewStatic(k, tc.specs, tc.mw)
		}()
	}
}

func TestOnAllocationObserver(t *testing.T) {
	k, net, specs := testRig(3)
	c := NewBCC(k, net, specs, 100, BCCConfig{CtrlTile: 0})
	events := map[int]float64{}
	c.OnAllocation(func(tile int, mw float64) { events[tile] = mw })
	c.Start()
	c.SetTarget(1, 50)
	k.Run(1 << 22)
	if events[1] <= 0 {
		t.Fatalf("observer not notified: %v", events)
	}
}
