package controller

import (
	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// BCC is BlitzCoin-Centralized (Sec. V-C): the same proportional
// power-allocation policy as BlitzCoin, but computed by a centralized
// controller that must poll each tile and push each tile's new setting
// sequentially over the NoC. Each tile still has its own oscillator for
// decentralized frequency actuation, but control and state determination
// are centralized, so the response time scales as O(N).
type BCC struct {
	base
	net      *noc.Network
	ctrlTile int
	// procCycles is the controller's firmware processing time per tile
	// (poll handling plus state computation).
	procCycles sim.Cycles

	running bool // a reallocation round is in flight
	rerun   bool // a change arrived mid-round; run again
}

// BCCConfig parameterizes the centralized controller.
type BCCConfig struct {
	// CtrlTile is the mesh index hosting the on-chip controller (the CPU
	// tile in the evaluated SoCs).
	CtrlTile int
	// ProcCycles is the per-tile firmware processing cost; zero selects
	// the default 240 cycles (0.3 us at 800 MHz), which lands the N=13
	// response in the paper's measured 3.8-8.0 us band.
	ProcCycles sim.Cycles
}

// NewBCC builds the controller. The network is used to model the
// sequential poll/update message traffic.
func NewBCC(k *sim.Kernel, net *noc.Network, specs []TileSpec, budgetMW float64, cfg BCCConfig) *BCC {
	c := &BCC{
		base:       newBase("BC-C", k, specs, budgetMW),
		net:        net,
		ctrlTile:   cfg.CtrlTile,
		procCycles: cfg.ProcCycles,
	}
	if c.procCycles == 0 {
		c.procCycles = 240
	}
	return c
}

// Start is a no-op: BC-C is purely reactive to activity changes.
func (c *BCC) Start() {}

// SetTarget records the tile's new power target and triggers a centralized
// reallocation round.
func (c *BCC) SetTarget(tile int, mw float64) {
	c.targets[c.mustIndex(tile)] = mw
	c.markChange()
	if c.running {
		c.rerun = true
		return
	}
	c.startRound()
}

// startRound models the controller's sequential sweep: for each managed
// tile, a poll round-trip plus firmware processing; then the allocation
// computation; then a sequential update push to each tile. Allocations take
// effect as each update is delivered.
func (c *BCC) startRound() {
	c.running = true
	// Phase 1: sequential polling. Each tile costs a round-trip to the
	// controller tile plus processing.
	var t sim.Cycles
	for _, s := range c.specs {
		rt := 2 * c.net.UnicastLatencyLowerBound(c.ctrlTile, s.Tile)
		t += rt + c.procCycles
	}
	// Phase 2: compute shares (one processing quantum), then sequential
	// updates, each landing one message latency after its send slot.
	shares := func() []float64 {
		return proportionalShares(c.specs, c.targets, c.budget)
	}
	send := t + c.procCycles
	for i, s := range c.specs {
		i, s := i, s
		lat := c.net.UnicastLatencyLowerBound(c.ctrlTile, s.Tile)
		c.kernel.Schedule(send+lat, func() {
			c.setAlloc(i, shares()[i])
		})
		send += c.procCycles / 4 // update issue rate
	}
	c.kernel.Schedule(send, func() {
		c.markResponded()
		c.running = false
		if c.rerun {
			c.rerun = false
			c.startRound()
		}
	})
}
