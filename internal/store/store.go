// Package store is blitzd's disk tier: a content-addressed result store
// beneath the in-memory LRU. Results are already content-addressed by
// canonical options hash + engine version, so a blob written once is
// valid forever for that engine — the store just makes the mapping
// durable across restarts and shareable between cluster workers pointed
// at the same directory.
//
// Layout: each entry is a pair of files under a two-hex-char fan-out
// directory, named by the SHA-256 of (engine, key):
//
//	<dir>/<ab>/<digest>.blob  — the marshaled result bytes, verbatim
//	<dir>/<ab>/<digest>.json  — sidecar: key, engine, kind, blob SHA-256, size
//
// Writes are atomic (temp file + fsync + rename, blob before sidecar, so
// a crash can orphan a blob but never a sidecar pointing at garbage).
// Reads verify the blob's SHA-256 against the sidecar and evict corrupt
// pairs. On boot the directory is scanned into an in-memory index in the
// background — requests arriving mid-warm fall back to a direct path
// probe, so a freshly restarted daemon serves its old results
// immediately. The store is size-bounded: least-recently-used entries
// (boot order: file modification time) are deleted once the byte bound is
// exceeded.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Meta is the sidecar an entry's blob is described by.
type Meta struct {
	// Key is the cache key the blob is stored under (canonical options
	// hash, optionally range-extended for shard results).
	Key string `json:"key"`
	// Engine is the engine version that produced the blob; the store only
	// serves entries matching its own engine.
	Engine string `json:"engine"`
	// Kind labels the result ("exchange", "figure", "soc-shard", ...).
	Kind string `json:"kind"`
	// SHA256 is the hex digest of the blob bytes, verified on every read.
	SHA256 string `json:"sha256"`
	// Size is the blob length in bytes.
	Size int64 `json:"size"`
}

// Stats is a snapshot of the store's counters and gauges for /metrics.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Writes    uint64
	Evictions uint64
	Corrupt   uint64
	Errors    uint64
	Entries   int
	Bytes     int64
	Warmed    bool
}

// entry is one indexed blob.
type entry struct {
	key    string
	digest string
	size   int64
}

// Store is the disk tier. All methods are safe for concurrent use;
// Close waits for the background warm scan.
type Store struct {
	dir      string
	engine   string
	maxBytes int64
	log      *slog.Logger

	mu     sync.Mutex
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // digest -> element
	bytes  int64
	warmed bool

	hits, misses, writes, evictions, corrupt, errs uint64

	warmWG sync.WaitGroup
}

// Open creates (if needed) and indexes a store directory for the given
// engine version. maxBytes <= 0 disables the size bound. The directory
// scan runs in the background; Get falls back to direct disk probes
// until it finishes, so serving can start immediately.
func Open(dir, engine string, maxBytes int64, log *slog.Logger) (*Store, error) {
	if log == nil {
		log = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		engine:   engine,
		maxBytes: maxBytes,
		log:      log,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	s.warmWG.Add(1)
	go s.warm()
	return s, nil
}

// Close waits for the warm scan to finish. No other shutdown work is
// needed: every write is already durable when Put returns.
func (s *Store) Close() {
	s.warmWG.Wait()
}

// digest names the file pair for a (engine, key) pair. Keys are hashed so
// range-extended shard keys (hash:lo-hi) and any future key shapes are
// always safe file names, and a new engine version addresses a disjoint
// namespace in the same directory.
func (s *Store) digest(key string) string {
	sum := sha256.Sum256([]byte(s.engine + "\x00" + key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest+".blob")
}

func (s *Store) sidecarPath(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest+".json")
}

// Get returns the stored bytes for key, verifying them against the
// sidecar digest. Before the warm scan completes, an index miss falls
// through to a direct disk probe so restarts serve immediately.
func (s *Store) Get(key string) ([]byte, bool) {
	digest := s.digest(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[digest]; ok {
		e := el.Value.(*entry)
		b, err := s.readVerifyLocked(e.digest)
		if err != nil {
			s.log.Warn("store entry dropped", "key", shortKey(key), "error", err)
			s.removeLocked(el)
			s.corrupt++
			s.misses++
			return nil, false
		}
		s.ll.MoveToFront(el)
		s.hits++
		return b, true
	}
	if !s.warmed {
		// The boot scan hasn't reached this entry yet (or hasn't started);
		// probe the disk directly and index what we find.
		if b, size, err := s.probeLocked(digest); err == nil {
			el := s.ll.PushFront(&entry{key: key, digest: digest, size: size})
			s.items[digest] = el
			s.bytes += size
			s.hits++
			return b, true
		}
	}
	s.misses++
	return nil, false
}

// probeLocked reads and verifies a pair straight off the disk.
func (s *Store) probeLocked(digest string) ([]byte, int64, error) {
	meta, err := s.readSidecar(s.sidecarPath(digest))
	if err != nil {
		return nil, 0, err
	}
	if meta.Engine != s.engine {
		return nil, 0, fmt.Errorf("store: engine %s, want %s", meta.Engine, s.engine)
	}
	b, err := s.readVerifyLocked(digest)
	if err != nil {
		return nil, 0, err
	}
	return b, int64(len(b)), nil
}

// readVerifyLocked reads a blob and checks it against its sidecar.
func (s *Store) readVerifyLocked(digest string) ([]byte, error) {
	meta, err := s.readSidecar(s.sidecarPath(digest))
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.blobPath(digest))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != meta.SHA256 {
		return nil, fmt.Errorf("store: blob %s corrupt: sha %s, sidecar says %s", digest[:12], got[:12], meta.SHA256[:12])
	}
	return b, nil
}

// readSidecar parses one sidecar file.
func (s *Store) readSidecar(path string) (Meta, error) {
	var meta Meta
	b, err := os.ReadFile(path)
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return meta, fmt.Errorf("store: sidecar %s: %w", filepath.Base(path), err)
	}
	return meta, nil
}

// Put durably stores bytes under key: blob first, then sidecar, each via
// temp file + fsync + rename, so a reader (or a crash) never observes a
// half-written pair. Re-putting a key overwrites it. Errors are returned
// for logging but the daemon treats the disk tier as best-effort — a
// failed Put never fails the sweep that produced the bytes.
func (s *Store) Put(key, kind string, b []byte) error {
	digest := s.digest(key)
	sum := sha256.Sum256(b)
	meta := Meta{
		Key:    key,
		Engine: s.engine,
		Kind:   kind,
		SHA256: hex.EncodeToString(sum[:]),
		Size:   int64(len(b)),
	}
	sidecar, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: encoding sidecar: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(s.dir, digest[:2]), 0o755); err != nil {
		s.countError()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeAtomic(s.blobPath(digest), b); err != nil {
		s.countError()
		return err
	}
	if err := s.writeAtomic(s.sidecarPath(digest), sidecar); err != nil {
		s.countError()
		return err
	}

	s.mu.Lock()
	if el, ok := s.items[digest]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(b)) - e.size
		e.size = int64(len(b))
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: key, digest: digest, size: int64(len(b))})
		s.items[digest] = el
		s.bytes += int64(len(b))
	}
	s.writes++
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// writeAtomic writes data to path via a temp file in the same directory,
// fsyncs, and renames into place.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, fmt.Sprintf("tmp-%d-*", os.Getpid()))
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
			s.log.Warn("store temp cleanup", "path", tmp, "error", err)
		}
	}
	if _, err := f.Write(data); err != nil {
		if cerr := f.Close(); cerr != nil {
			s.log.Warn("store temp close", "path", tmp, "error", cerr)
		}
		cleanup()
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			s.log.Warn("store temp close", "path", tmp, "error", cerr)
		}
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: closing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("store: publishing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// gcLocked deletes least-recently-used entries until the byte bound
// holds, never evicting the most recent entry.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		tail := s.ll.Back()
		if tail == nil || tail == s.ll.Front() {
			return
		}
		s.removeLocked(tail)
		s.evictions++
	}
}

// removeLocked unlinks an entry from the index and deletes its files.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.digest)
	s.bytes -= e.size
	for _, p := range []string{s.blobPath(e.digest), s.sidecarPath(e.digest)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			s.errs++
			s.log.Warn("store remove", "path", p, "error", err)
		}
	}
}

// warm scans the directory into the index: sidecars are read oldest-first
// so the LRU order after a restart approximates the order entries were
// last written, orphan blobs and stale temp files are swept, and the byte
// bound is enforced once the scan completes. Entries Put or probed while
// the scan ran are left where concurrent use placed them.
func (s *Store) warm() {
	defer func() {
		s.mu.Lock()
		s.warmed = true
		s.gcLocked()
		s.mu.Unlock()
		s.warmWG.Done()
	}()

	type found struct {
		meta    Meta
		digest  string
		modTime time.Time
	}
	var scanned []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		switch {
		case strings.HasPrefix(name, "tmp-"):
			// A crashed write's residue — but never this process's own
			// in-flight temp files (Put can race the warm scan).
			if !strings.HasPrefix(name, fmt.Sprintf("tmp-%d-", os.Getpid())) {
				if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
					s.log.Warn("store temp sweep", "path", path, "error", err)
				}
			}
			return nil
		case !strings.HasSuffix(name, ".json"):
			return nil
		}
		meta, err := s.readSidecar(path)
		if err != nil {
			s.log.Warn("store sidecar unreadable", "path", path, "error", err)
			return nil
		}
		digest := strings.TrimSuffix(name, ".json")
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if _, err := os.Stat(s.blobPath(digest)); err != nil {
			// Sidecar without blob: remove the stray (blob-before-sidecar
			// write order makes this unreachable short of manual tampering).
			s.log.Warn("store sidecar without blob", "path", path)
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				s.log.Warn("store sidecar sweep", "path", path, "error", err)
			}
			return nil
		}
		scanned = append(scanned, found{meta: meta, digest: digest, modTime: info.ModTime()})
		return nil
	})
	if err != nil {
		s.log.Warn("store warm scan", "dir", s.dir, "error", err)
	}

	// Oldest first: pushing each to the front leaves the newest at the
	// front, so GC evicts stale engines and old results first.
	sort.Slice(scanned, func(i, j int) bool { return scanned[i].modTime.Before(scanned[j].modTime) })
	indexed := 0
	s.mu.Lock()
	for _, f := range scanned {
		if _, ok := s.items[f.digest]; ok {
			continue // a concurrent Put or probe got here first
		}
		el := s.ll.PushFront(&entry{key: f.meta.Key, digest: f.digest, size: f.meta.Size})
		s.items[f.digest] = el
		s.bytes += f.meta.Size
		indexed++
	}
	total, bytes := s.ll.Len(), s.bytes
	s.mu.Unlock()
	s.log.Info("store warm", "dir", s.dir, "indexed", indexed, "entries", total, "bytes", bytes)
}

func (s *Store) countError() {
	s.mu.Lock()
	s.errs++
	s.mu.Unlock()
}

// Stats snapshots the counters for /metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Writes:    s.writes,
		Evictions: s.evictions,
		Corrupt:   s.corrupt,
		Errors:    s.errs,
		Entries:   s.ll.Len(),
		Bytes:     s.bytes,
		Warmed:    s.warmed,
	}
}

// shortKey abbreviates a key for log lines.
func shortKey(k string) string {
	if len(k) > 16 {
		return k[:16]
	}
	return k
}
