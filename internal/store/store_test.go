package store

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
}

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, "test-engine", maxBytes, quiet())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	blob := []byte(`{"rows":[1,2,3]}`)
	if err := s.Put("hash-1", "exchange", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("hash-1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want the stored bytes", got, ok)
	}
	if _, ok := s.Get("hash-2"); ok {
		t.Fatal("Get returned a miss key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	// No temp-file residue after a clean write.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "tmp-*"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}

func TestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	blob := []byte(`{"meta":{"options_hash":"abc"}}`)
	if err := s.Put("hash-1", "figure", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	// A new store over the same directory serves the same bytes, both
	// before the warm scan finishes (direct probe) and after.
	s2 := openT(t, dir, 0)
	got, ok := s2.Get("hash-1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("restart Get = %q, %v", got, ok)
	}
	s2.Close() // wait for warm
	got, ok = s2.Get("hash-1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("post-warm Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 || !st.Warmed {
		t.Errorf("post-warm stats = %+v", st)
	}
}

func TestEngineNamespacing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "engine-1", 0, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("hash-1", "exchange", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, "engine-2", 0, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("hash-1"); ok {
		t.Fatal("engine-2 store served an engine-1 blob")
	}
}

func TestCorruptBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("hash-1", "exchange", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip the blob on disk behind the store's back.
	digest := s.digest("hash-1")
	if err := os.WriteFile(s.blobPath(digest), []byte("evil bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("hash-1"); ok {
		t.Fatal("Get served a corrupt blob")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// The pair is gone from disk too.
	if _, err := os.Stat(s.blobPath(digest)); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still on disk: %v", err)
	}
}

func TestGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	blob := bytes.Repeat([]byte("x"), 100)
	s := openT(t, dir, 250) // fits two 100-byte blobs, not three
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("hash-%d", i), "exchange", blob); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("hash-0"); ok {
		t.Fatal("oldest entry survived GC")
	}
	for _, k := range []string{"hash-1", "hash-2"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted, want newest two kept", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > 250 {
		t.Errorf("stats = %+v", st)
	}

	// Touching hash-1 then inserting another entry evicts hash-2, not
	// the freshly used hash-1.
	if _, ok := s.Get("hash-1"); !ok {
		t.Fatal("hash-1 missing")
	}
	if err := s.Put("hash-3", "exchange", blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("hash-2"); ok {
		t.Fatal("LRU eviction ignored recency")
	}
	if _, ok := s.Get("hash-1"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestWarmGCAndOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	blob := bytes.Repeat([]byte("y"), 100)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("hash-%d", i), "exchange", blob); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Simulate a crashed write: a stray temp file and an orphan blob.
	if err := os.WriteFile(filepath.Join(dir, "tmp-crashed"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "ff")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, strings.Repeat("f", 64)+".blob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen with a bound that only fits two entries: warm must index,
	// then GC down to the bound.
	s2 := openT(t, dir, 250)
	s2.Close()
	st := s2.Stats()
	if st.Entries != 2 || st.Bytes > 250 {
		t.Errorf("post-warm stats = %+v, want 2 entries within 250 bytes", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-crashed")); !os.IsNotExist(err) {
		t.Error("temp residue survived the warm sweep")
	}
}

// TestWarmConcurrentWithTraffic races the boot scan against incoming
// gets and puts — the shape of a daemon restarted under live traffic.
// Run under -race this is the boot/request data-race gate.
func TestWarmConcurrentWithTraffic(t *testing.T) {
	dir := t.TempDir()
	seed := openT(t, dir, 0)
	blob := bytes.Repeat([]byte("z"), 64)
	const preloaded = 50
	for i := 0; i < preloaded; i++ {
		if err := seed.Put(fmt.Sprintf("old-%d", i), "exchange", blob); err != nil {
			t.Fatal(err)
		}
	}
	seed.Close()

	s := openT(t, dir, 0) // warm scan races the traffic below
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < preloaded; i++ {
				if b, ok := s.Get(fmt.Sprintf("old-%d", i)); !ok || !bytes.Equal(b, blob) {
					t.Errorf("goroutine %d: old-%d = %v, %v", g, i, len(b), ok)
					return
				}
				if err := s.Put(fmt.Sprintf("new-%d-%d", g, i), "exchange", blob); err != nil {
					t.Errorf("goroutine %d: put: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	st := s.Stats()
	if want := preloaded + 8*preloaded; st.Entries != want {
		t.Errorf("entries = %d, want %d", st.Entries, want)
	}
}

func TestPutOverwrite(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("hash-1", "exchange", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("hash-1", "exchange", []byte("second, longer")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("hash-1")
	if !ok || string(got) != "second, longer" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("second, longer")) {
		t.Errorf("stats after overwrite = %+v", st)
	}
}
