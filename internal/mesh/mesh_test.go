package mesh

import (
	"testing"
	"testing/quick"
)

func TestIndexCoordRoundTrip(t *testing.T) {
	m := New(5, 3, false)
	for i := 0; i < m.N(); i++ {
		if got := m.Index(m.Coord(i)); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, m.Coord(i), got)
		}
	}
}

func TestOpenMeshCornerNeighborCounts(t *testing.T) {
	m := New(4, 4, false)
	counts := map[int]int{}
	for i := 0; i < m.N(); i++ {
		counts[len(m.Neighbors(i))]++
	}
	// 4 corners with 2 neighbors, 8 edges with 3, 4 interior with 4.
	if counts[2] != 4 || counts[3] != 8 || counts[4] != 4 {
		t.Fatalf("neighbor count histogram = %v", counts)
	}
}

func TestTorusEveryTileHasFourNeighbors(t *testing.T) {
	// Wrap-around (Fig. 5): edge/corner tiles get the same number of
	// neighbors as interior tiles.
	m := New(3, 3, true)
	for i := 0; i < m.N(); i++ {
		if got := len(m.Neighbors(i)); got != 4 {
			t.Fatalf("tile %d has %d neighbors, want 4", i, got)
		}
	}
}

func TestFig5WrapAroundExample(t *testing.T) {
	// Fig. 5 (left): on the 3x3 grid, tile 0's neighbors are 1, 2, 3 and 6.
	m := New(3, 3, true)
	got := map[int]bool{}
	for _, n := range m.Neighbors(0) {
		got[n] = true
	}
	for _, want := range []int{1, 2, 3, 6} {
		if !got[want] {
			t.Fatalf("tile 0 neighbors = %v, want {1,2,3,6}", m.Neighbors(0))
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// If j is a neighbor of i, then i is a neighbor of j.
	for _, torus := range []bool{false, true} {
		m := New(6, 5, torus)
		for i := 0; i < m.N(); i++ {
			for _, j := range m.Neighbors(i) {
				back := false
				for _, k := range m.Neighbors(j) {
					if k == i {
						back = true
						break
					}
				}
				if !back {
					t.Fatalf("torus=%v: %d->%d not symmetric", torus, i, j)
				}
			}
		}
	}
}

func TestTorusSelfLoopSuppressed(t *testing.T) {
	// On a 1-wide mesh, wrap would point at the tile itself; no neighbor.
	m := New(1, 4, true)
	for i := 0; i < m.N(); i++ {
		for _, n := range m.Neighbors(i) {
			if n == i {
				t.Fatalf("tile %d lists itself as neighbor", i)
			}
		}
	}
}

func TestDistinctNeighborsOn2xN(t *testing.T) {
	// On a 2-wide torus, East and West wrap to the same tile.
	m := New(2, 4, true)
	if got := len(m.Neighbors(0)); got != 4 {
		t.Fatalf("raw neighbors = %d, want 4 (ports)", got)
	}
	if got := len(m.DistinctNeighbors(0)); got != 3 {
		t.Fatalf("distinct neighbors = %d, want 3", got)
	}
}

func TestHopDistanceOpenMesh(t *testing.T) {
	m := New(4, 4, false)
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 3, 3},
		{0, 15, 6},
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := m.HopDistance(c.a, c.b); got != c.want {
			t.Fatalf("HopDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopDistanceTorusShortcut(t *testing.T) {
	m := New(4, 4, true)
	// 0 -> 3 is 1 hop westward around the wrap.
	if got := m.HopDistance(0, 3); got != 1 {
		t.Fatalf("torus HopDistance(0,3) = %d, want 1", got)
	}
	// 0 -> 15 (opposite corner) is 2 on a 4x4 torus.
	if got := m.HopDistance(0, 15); got != 2 {
		t.Fatalf("torus HopDistance(0,15) = %d, want 2", got)
	}
}

func TestHopDistanceProperties(t *testing.T) {
	m := New(7, 5, true)
	f := func(a, b uint8) bool {
		i, j := int(a)%m.N(), int(b)%m.N()
		d := m.HopDistance(i, j)
		// Symmetry, identity, and diameter bound.
		return d == m.HopDistance(j, i) &&
			(d == 0) == (i == j) &&
			d <= m.MaxHopDistance()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	for _, torus := range []bool{false, true} {
		m := New(5, 6, torus)
		f := func(a, b, c uint8) bool {
			i, j, k := int(a)%m.N(), int(b)%m.N(), int(c)%m.N()
			return m.HopDistance(i, k) <= m.HopDistance(i, j)+m.HopDistance(j, k)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("torus=%v: %v", torus, err)
		}
	}
}

func TestXYRouteLengthMatchesHopDistance(t *testing.T) {
	for _, torus := range []bool{false, true} {
		m := New(6, 4, torus)
		for a := 0; a < m.N(); a++ {
			for b := 0; b < m.N(); b++ {
				r := m.XYRoute(a, b)
				if len(r) != m.HopDistance(a, b)+1 {
					t.Fatalf("torus=%v route %d->%d len %d, want %d",
						torus, a, b, len(r), m.HopDistance(a, b)+1)
				}
				if r[0] != a || r[len(r)-1] != b {
					t.Fatalf("route %d->%d endpoints wrong: %v", a, b, r)
				}
				// Each step must be a neighbor hop.
				for i := 1; i < len(r); i++ {
					if m.HopDistance(r[i-1], r[i]) != 1 {
						t.Fatalf("route %v step %d not adjacent", r, i)
					}
				}
			}
		}
	}
}

func TestMaxHopDistance(t *testing.T) {
	if got := New(4, 4, false).MaxHopDistance(); got != 6 {
		t.Fatalf("open 4x4 diameter = %d, want 6", got)
	}
	if got := New(4, 4, true).MaxHopDistance(); got != 4 {
		t.Fatalf("torus 4x4 diameter = %d, want 4", got)
	}
}

func TestInvalidConstructionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,3) did not panic")
		}
	}()
	New(0, 3, false)
}

func TestDirectionString(t *testing.T) {
	want := map[Direction]string{North: "N", East: "E", South: "S", West: "W"}
	for d, s := range want {
		if d.String() != s {
			t.Fatalf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
}

func TestSquare(t *testing.T) {
	m := Square(20, true)
	if m.N() != 400 {
		t.Fatalf("Square(20) N = %d, want 400 (paper's largest emulated SoC)", m.N())
	}
}
