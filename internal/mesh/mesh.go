// Package mesh models the 2D-mesh tile grid of a BlitzCoin SoC.
//
// BlitzCoin targets 2D-mesh NoC architectures (Sec. IV): tiles are arranged
// on a WxH grid, and each tile exchanges coins with its north, south, east,
// and west neighbors. Section III-D extends the neighbor definition with
// wrap-around so edge and corner tiles reach the same number of neighbors as
// interior tiles (Fig. 5); this package implements both the open-mesh and the
// torus (wrap-around) neighbor rules, plus the XY hop distance used to
// time packet delivery on the NoC.
package mesh

import "fmt"

// Direction identifies one of the four mesh neighbors.
type Direction int

// The four cardinal directions, in the round-robin order the 1-way exchange
// rotates through (Algorithm 2).
const (
	North Direction = iota
	East
	South
	West
	numDirections
)

// NumDirections is the number of cardinal neighbor directions.
const NumDirections = int(numDirections)

// String returns the direction's single-letter name as used in the paper.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Coord is a tile position on the grid; X grows east, Y grows south.
type Coord struct {
	X, Y int
}

// Mesh is a WxH tile grid. Torus selects wrap-around neighbor semantics.
// The zero value is an empty mesh; use New.
type Mesh struct {
	W, H  int
	Torus bool
}

// New returns a WxH mesh. It panics on non-positive dimensions, which always
// indicate a configuration bug.
func New(w, h int, torus bool) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", w, h))
	}
	return Mesh{W: w, H: h, Torus: torus}
}

// Square returns a d x d mesh, the shape used throughout the paper's
// scalability studies, where d = sqrt(N).
func Square(d int, torus bool) Mesh { return New(d, d, torus) }

// N returns the number of tiles.
func (m Mesh) N() int { return m.W * m.H }

// Index converts a coordinate to a tile index in row-major order.
func (m Mesh) Index(c Coord) int {
	if !m.InBounds(c) {
		panic(fmt.Sprintf("mesh: coordinate %+v out of %dx%d bounds", c, m.W, m.H))
	}
	return c.Y*m.W + c.X
}

// Coord converts a tile index back to its coordinate.
func (m Mesh) Coord(i int) Coord {
	if i < 0 || i >= m.N() {
		panic(fmt.Sprintf("mesh: index %d out of range (N=%d)", i, m.N()))
	}
	return Coord{X: i % m.W, Y: i / m.W}
}

// InBounds reports whether c lies on the grid.
func (m Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// step moves one hop in direction d without wrapping.
func step(c Coord, d Direction) Coord {
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	}
	return c
}

// Neighbor returns the tile index one hop from tile i in direction d.
// On an open mesh, ok is false when the move falls off the edge; on a torus
// the move wraps and ok is always true — unless the wrap would return the
// tile itself (a 1-wide dimension), which is reported as no neighbor.
func (m Mesh) Neighbor(i int, d Direction) (int, bool) {
	c := step(m.Coord(i), d)
	if m.Torus {
		c.X = mod(c.X, m.W)
		c.Y = mod(c.Y, m.H)
		j := m.Index(c)
		if j == i {
			return 0, false
		}
		return j, true
	}
	if !m.InBounds(c) {
		return 0, false
	}
	return m.Index(c), true
}

// Neighbors returns the indices of all distinct neighbors of tile i, in
// direction order N, E, S, W, skipping missing ones. On a torus, opposite
// directions can wrap to the same tile (when a dimension is 2); duplicates
// are kept, matching the hardware's four neighbor ports, except self-loops.
func (m Mesh) Neighbors(i int) []int {
	out := make([]int, 0, NumDirections)
	for d := North; d < numDirections; d++ {
		if j, ok := m.Neighbor(i, d); ok {
			out = append(out, j)
		}
	}
	return out
}

// DistinctNeighbors returns Neighbors(i) with duplicates removed, preserving
// order. Used by the behavioral emulator where a pair exchange with the same
// tile twice per rotation would double-count packets.
func (m Mesh) DistinctNeighbors(i int) []int {
	return m.AppendDistinctNeighbors(i, make([]int, 0, NumDirections))
}

// AppendDistinctNeighbors appends tile i's distinct neighbors to out (in
// direction order, duplicates and self-loops skipped) and returns the
// extended slice. Passing a stack buffer of capacity NumDirections makes the
// per-tile neighbor walk allocation-free — constructors that visit every
// tile of a large mesh use this instead of DistinctNeighbors.
func (m Mesh) AppendDistinctNeighbors(i int, out []int) []int {
	start := len(out)
	for d := North; d < numDirections; d++ {
		j, ok := m.Neighbor(i, d)
		if !ok {
			continue
		}
		dup := false
		for _, o := range out[start:] {
			if o == j {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, j)
		}
	}
	return out
}

// mod returns the least non-negative residue of a mod n.
func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// axisDist returns the hop distance along one axis of length n, honoring
// wrap-around when torus is set.
func axisDist(a, b, n int, torus bool) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if torus && n-d < d {
		d = n - d
	}
	return d
}

// HopDistance returns the number of NoC hops between tiles a and b under XY
// (dimension-ordered) routing. On a torus, each axis takes the shorter way
// around.
func (m Mesh) HopDistance(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return axisDist(ca.X, cb.X, m.W, m.Torus) + axisDist(ca.Y, cb.Y, m.H, m.Torus)
}

// MaxHopDistance returns the network diameter in hops.
func (m Mesh) MaxHopDistance() int {
	if m.Torus {
		return m.W/2 + m.H/2
	}
	return (m.W - 1) + (m.H - 1)
}

// stepAxis advances cur one hop toward target along an axis of length n,
// taking the shorter way around on a torus (ties go forward). It returns the
// new coordinate and whether the hop was in the +1 direction.
func (m Mesh) stepAxis(cur, target, n int) (int, bool) {
	if m.Torus {
		fwd := mod(target-cur, n)
		if fwd <= n-fwd {
			return mod(cur+1, n), true
		}
		return mod(cur-1, n), false
	}
	if target > cur {
		return cur + 1, true
	}
	return cur - 1, false
}

// XYRoute returns the sequence of tile indices from a to b (inclusive of
// both) under XY routing: X first, then Y, taking the shorter wrap on a
// torus. The route length is HopDistance(a,b)+1.
func (m Mesh) XYRoute(a, b int) []int {
	route := []int{a}
	cur := a
	for cur != b {
		cur, _ = m.NextHopXY(cur, b)
		route = append(route, cur)
	}
	return route
}

// NextHopXY returns the next tile on the XY route from cur toward dst and the
// link direction of that hop, without materializing the route. The direction
// is the one the hardware's port selection resolves to: when a 2-wide torus
// axis makes both ports reach the same tile, X hops use East and Y hops use
// North (the first match in N, E, S, W port order).
//
// It panics when cur == dst; a zero-hop packet has no next hop.
func (m Mesh) NextHopXY(cur, dst int) (int, Direction) {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cc.X != cd.X {
		nx, fwd := m.stepAxis(cc.X, cd.X, m.W)
		cc.X = nx
		if fwd {
			return m.Index(cc), East
		}
		return m.Index(cc), West
	}
	if cc.Y != cd.Y {
		ny, fwd := m.stepAxis(cc.Y, cd.Y, m.H)
		cc.Y = ny
		if !fwd || (m.Torus && m.H == 2) {
			return m.Index(cc), North
		}
		return m.Index(cc), South
	}
	panic(fmt.Sprintf("mesh: NextHopXY(%d, %d): already at destination", cur, dst))
}
