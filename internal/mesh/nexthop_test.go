package mesh

import "testing"

// referenceDirection resolves a single hop's link direction the way the
// original NoC model did: scan the four ports in N, E, S, W order and return
// the first whose Neighbor is the hop target.
func referenceDirection(t *testing.T, m Mesh, from, to int) Direction {
	t.Helper()
	for d := North; d < numDirections; d++ {
		if j, ok := m.Neighbor(from, d); ok && j == to {
			return d
		}
	}
	t.Fatalf("%dx%d torus=%v: %d -> %d is not a single hop", m.W, m.H, m.Torus, from, to)
	return 0
}

// NextHopXY must walk exactly the XYRoute path, and each hop's direction
// must match the N/E/S/W port scan — including the 2-wide torus axes where
// both ports reach the same tile and the scan order decides.
func TestNextHopXYMatchesXYRouteAndPortScan(t *testing.T) {
	shapes := []struct {
		w, h  int
		torus bool
	}{
		{3, 3, false}, {3, 3, true},
		{4, 4, true}, {5, 3, false}, {3, 5, true},
		{2, 2, true}, {2, 4, true}, {4, 2, true}, {2, 3, false},
		{1, 6, false}, {6, 1, true},
	}
	for _, s := range shapes {
		m := New(s.w, s.h, s.torus)
		for a := 0; a < m.N(); a++ {
			for b := 0; b < m.N(); b++ {
				if a == b {
					continue
				}
				route := m.XYRoute(a, b)
				cur := a
				for i := 1; i < len(route); i++ {
					next, dir := m.NextHopXY(cur, b)
					if next != route[i] {
						t.Fatalf("%dx%d torus=%v %d->%d hop %d: next = %d, route says %d",
							s.w, s.h, s.torus, a, b, i, next, route[i])
					}
					if want := referenceDirection(t, m, cur, next); dir != want {
						t.Fatalf("%dx%d torus=%v hop %d->%d: direction = %v, port scan says %v",
							s.w, s.h, s.torus, cur, next, dir, want)
					}
					cur = next
				}
				if cur != b {
					t.Fatalf("%dx%d torus=%v: walk from %d ended at %d, want %d",
						s.w, s.h, s.torus, a, cur, b)
				}
			}
		}
	}
}

func TestNextHopXYPanicsAtDestination(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextHopXY(i, i) did not panic")
		}
	}()
	New(3, 3, true).NextHopXY(4, 4)
}
