package mesh

import "testing"

func FuzzRouteConsistency(f *testing.F) {
	f.Add(uint8(4), uint8(4), true, uint8(0), uint8(15))
	f.Add(uint8(3), uint8(5), false, uint8(2), uint8(11))
	f.Fuzz(func(t *testing.T, w, h uint8, torus bool, a, b uint8) {
		W := int(w%8) + 1
		H := int(h%8) + 1
		m := New(W, H, torus)
		i := int(a) % m.N()
		j := int(b) % m.N()
		d := m.HopDistance(i, j)
		route := m.XYRoute(i, j)
		if len(route) != d+1 {
			t.Fatalf("route length %d, distance %d", len(route), d)
		}
		if route[0] != i || route[len(route)-1] != j {
			t.Fatalf("route endpoints %d..%d, want %d..%d",
				route[0], route[len(route)-1], i, j)
		}
		for k := 1; k < len(route); k++ {
			if m.HopDistance(route[k-1], route[k]) != 1 {
				t.Fatalf("non-adjacent step in route %v", route)
			}
		}
		if d > m.MaxHopDistance() {
			t.Fatalf("distance %d beyond diameter %d", d, m.MaxHopDistance())
		}
	})
}
