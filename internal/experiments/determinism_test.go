package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"blitzcoin/internal/sweep"
)

// renderRows flattens an experiment's output to the exact text a CLI would
// print, so "identical rows" means byte-identical user-visible output.
func renderRows[T fmt.Stringer](rows []T) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// withParallelism runs f under a temporary sweep default.
func withParallelism(p int, f func() string) string {
	sweep.SetDefaultParallelism(p)
	defer sweep.SetDefaultParallelism(0)
	return f()
}

// The sweep engine's core contract: because every trial's RNG derives from
// the trial index and accumulation is serial in index order, the rendered
// rows of every figure are byte-identical at parallelism 1, 4, and 8.
// Under `go test -race` this also exercises the worker pool for data races
// across the emulator, NoC, kernel, and SoC layers.
func TestSweepParallelismDoesNotChangeRows(t *testing.T) {
	cases := []struct {
		name string
		run  func() string
	}{
		{"Fig03", func() string {
			return renderRows(Fig03(context.Background(), []int{4, 8}, 6, 1))
		}},
		{"Fig07", func() string {
			rows := Fig07(context.Background(), []int{100}, 6, 1)
			var b strings.Builder
			for _, r := range rows {
				b.WriteString(r.String())
				b.WriteByte('\n')
				b.WriteString(r.Hist.String()) // histograms must match bin-for-bin
			}
			return b.String()
		}},
		{"FaultStudy", func() string {
			return renderRows(FaultStudy(context.Background(), []int{6}, []float64{0, 0.01}, 4, 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := withParallelism(1, tc.run)
			for _, p := range []int{4, 8} {
				if got := withParallelism(p, tc.run); got != serial {
					t.Errorf("parallelism %d changed the rows:\n--- serial ---\n%s--- parallel ---\n%s",
						p, serial, got)
				}
			}
		})
	}
}
