package experiments

import (
	"context"
	"fmt"

	"blitzcoin/internal/soc"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/workload"
)

// Table1Row is one design's summary in the cross-design comparison
// (Table I).
type Table1Row struct {
	Strategy   string
	Reference  string
	Control    string
	PowerCap   bool
	DVFSScope  string
	Allocation string
	DomainsN   string
	Levels     int
	ResponseUs float64 // measured at N=13 (the 4x4 SoC)
	Scaling    string
}

// String renders the row in a fixed-width table format.
func (r Table1Row) String() string {
	cap := "No"
	if r.PowerCap {
		cap = "Yes"
	}
	return fmt.Sprintf("%-10s %-9s %-13s %-4s %-14s %-18s %-7s %3d %14.2fus@N=13 %s",
		r.Strategy, r.Reference, r.Control, cap, r.DVFSScope, r.Allocation,
		r.DomainsN, r.Levels, r.ResponseUs, r.Scaling)
}

// Table1 measures the response time of each implemented scheme on the
// 13-accelerator 4x4 SoC and assembles the comparison table. The paper's
// measured bands at N=13: BC 0.39-0.77 us, BC-C 3.8-8.0 us, C-RR
// 3.7-6.4 us, TS 2.9 us.
func Table1(ctx context.Context, seed uint64) []Table1Row {
	g := workload.Repeat(workload.ComputerVisionParallel(), 3)
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR, soc.SchemeTS, soc.SchemePT}
	// The mean includes the instant already-at-target responses that
	// would pull a median to zero for BC.
	means := sweep.Map(ctx, len(schemes), 0, func(i int) float64 {
		return soc.New(soc.SoC4x4(450, schemes[i], seed)).Run(g).MeanResponseMicros()
	})
	resp := map[soc.Scheme]float64{}
	for i, s := range schemes {
		resp[s] = means[i]
	}
	return []Table1Row{
		{
			Strategy: "BlitzCoin", Reference: "BC", Control: "Decentralized",
			PowerCap: true, DVFSScope: "Heterogeneous", Allocation: "Equal/proportional",
			DomainsN: "4-400", Levels: 64, ResponseUs: resp[soc.SchemeBC], Scaling: "O(sqrt(N))",
		},
		{
			Strategy: "BlitzCoin", Reference: "BC-C", Control: "Centralized",
			PowerCap: true, DVFSScope: "Heterogeneous", Allocation: "Proportional",
			DomainsN: "6-13", Levels: 64, ResponseUs: resp[soc.SchemeBCC], Scaling: "O(N)",
		},
		{
			Strategy: "Round robin", Reference: "C-RR", Control: "Centralized",
			PowerCap: true, DVFSScope: "Heterogeneous", Allocation: "Greedy",
			DomainsN: "6-13", Levels: 64, ResponseUs: resp[soc.SchemeCRR], Scaling: "O(N)",
		},
		{
			Strategy: "Fair-greedy", Reference: "TS", Control: "Decentralized",
			PowerCap: true, DVFSScope: "Heterogeneous", Allocation: "Greedy/equal",
			DomainsN: "4-400", Levels: 64, ResponseUs: resp[soc.SchemeTS], Scaling: "O(N)",
		},
		{
			Strategy: "Price theory", Reference: "PT", Control: "Hierarchical",
			PowerCap: true, DVFSScope: "Clusters", Allocation: "Bidding",
			DomainsN: "4-256", Levels: 64, ResponseUs: resp[soc.SchemePT], Scaling: "sub-linear",
		},
	}
}
