package experiments

import (
	"context"
	"fmt"
	"io"

	"blitzcoin/internal/controller"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/power"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/scaling"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/workload"
)

// tokenSmartConvergence measures TokenSmart's time to redistribute tokens
// after every tile of a dxd mesh posts a random demand at cycle 0 — the
// TS side of Fig. 4. The per-visit cost is set low (20 cycles) so the
// comparison isolates the sequential-ring structure rather than firmware
// constants.
func tokenSmartConvergence(d int, seed uint64) sim.Cycles {
	k := &sim.Kernel{}
	m := mesh.Square(d, true)
	net := noc.New(k, m, noc.DefaultConfig())
	src := rng.New(seed)
	specs := make([]controller.TileSpec, m.N())
	for i := range specs {
		specs[i] = controller.TileSpec{Tile: snakeIndex(m, i), PMaxMW: 100, PMinMW: 5}
	}
	ts := controller.NewTokenSmart(k, net, specs, float64(m.N())*30,
		controller.TSConfig{VisitProcCycles: 20, TotalTokens: int64(m.N()) * 16})
	ts.Start()
	for _, s := range specs {
		ts.SetTarget(s.Tile, 10+float64(src.Intn(90)))
	}
	k.RunUntil(func() bool { return ts.LastResponseCycles() != 0 }, 0)
	return ts.LastResponseCycles()
}

// snakeIndex maps a linear ring position to a mesh index following a
// boustrophedon path, so consecutive ring neighbors are mesh-adjacent.
func snakeIndex(m mesh.Mesh, pos int) int {
	row := pos / m.W
	col := pos % m.W
	if row%2 == 1 {
		col = m.W - 1 - col
	}
	return row*m.W + col
}

// SoCRow is one (scheme, budget, workload) measurement of Figs. 17/18.
type SoCRow struct {
	SoC      string
	Scheme   string
	BudgetMW float64
	Workload string
	Res      soc.Result
}

// String renders the row.
func (r SoCRow) String() string {
	return fmt.Sprintf("%-10s %-6s %5.0fmW %-16s exec=%9.1fus resp(mean)=%7.2fus util=%5.1f%%",
		r.SoC, r.Scheme, r.BudgetMW, r.Workload,
		r.Res.ExecMicros(), r.Res.MeanResponseMicros(), r.Res.UtilizationPct())
}

// evalSchemes runs one workload across schemes at one budget. The schemes
// fan out across the sweep pool: every run owns a private kernel/network/RNG
// and the workload graph is read-only, so the runs are independent and the
// returned rows keep the schemes' order.
func evalSchemes(ctx context.Context, mk func(s soc.Scheme) soc.Config, g *workload.Graph, schemes []soc.Scheme) []SoCRow {
	return sweep.Map(ctx, len(schemes), 0, func(i int) SoCRow {
		cfg := mk(schemes[i])
		res := soc.New(cfg).Run(g)
		return SoCRow{
			SoC: cfg.Name, Scheme: res.Scheme, BudgetMW: cfg.BudgetMW,
			Workload: g.Name, Res: res,
		}
	})
}

// repeat3 lengthens a workload to several frames so that steady-state
// behavior, not startup, dominates — as in the artifact's ~2500 us runs.
func repeat3(g *workload.Graph) *workload.Graph { return workload.Repeat(g, 3) }

// Fig17 reproduces the 3x3 SoC evaluation: execution time and response
// time for WL-Par and WL-Dep at 120 and 60 mW (30% and 15% of combined
// power), across BC, BC-C, and C-RR.
func Fig17(ctx context.Context, seed uint64) []SoCRow {
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR}
	var rows []SoCRow
	for _, budget := range []float64{120, 60} {
		budget := budget
		mk := func(s soc.Scheme) soc.Config { return soc.SoC3x3(budget, s, seed) }
		rows = append(rows, evalSchemes(ctx, mk, repeat3(workload.AutonomousVehicleParallel()), schemes)...)
		rows = append(rows, evalSchemes(ctx, mk, repeat3(workload.AutonomousVehicleDependent()), schemes)...)
	}
	return rows
}

// Fig18 reproduces the 4x4 SoC evaluation: WL-Par at 450 and 900 mW (33%
// and 66% of combined power) and WL-Dep at 450 mW.
func Fig18(ctx context.Context, seed uint64) []SoCRow {
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR}
	var rows []SoCRow
	for _, budget := range []float64{450, 900} {
		budget := budget
		mk := func(s soc.Scheme) soc.Config { return soc.SoC4x4(budget, s, seed) }
		rows = append(rows, evalSchemes(ctx, mk, repeat3(workload.ComputerVisionParallel()), schemes)...)
	}
	mk := func(s soc.Scheme) soc.Config { return soc.SoC4x4(450, s, seed) }
	rows = append(rows, evalSchemes(ctx, mk, repeat3(workload.ComputerVisionDependent()), schemes)...)
	return rows
}

// APvsRPRow compares allocation strategies (Sec. VI-A).
type APvsRPRow struct {
	BudgetMW           float64
	APExecUs, RPExecUs float64
	RPImprovementPct   float64
}

// String renders the row.
func (r APvsRPRow) String() string {
	return fmt.Sprintf("budget=%3.0fmW AP=%9.1fus RP=%9.1fus RP-gain=%.1f%%",
		r.BudgetMW, r.APExecUs, r.RPExecUs, r.RPImprovementPct)
}

// APvsRP measures the throughput advantage of the Relative Proportional
// allocation over Absolute Proportional on the 3x3 SoC (paper: 3.0-4.1%
// for budgets from 60 to 120 mW).
func APvsRP(ctx context.Context, budgets []float64, seed uint64) []APvsRPRow {
	g := repeat3(workload.AutonomousVehicleParallel())
	// Fan out over (budget, strategy) pairs so the AP and RP runs of one
	// budget also overlap, then pair them back up in order.
	execUs := sweep.Map(ctx, 2*len(budgets), 0, func(i int) float64 {
		cfg := soc.SoC3x3(budgets[i/2], soc.SchemeBC, seed)
		cfg.Strategy = soc.AbsoluteProportional
		if i%2 == 1 {
			cfg.Strategy = soc.RelativeProportional
		}
		return soc.New(cfg).Run(g).ExecMicros()
	})
	var rows []APvsRPRow
	for i, b := range budgets {
		ap, rp := execUs[2*i], execUs[2*i+1]
		rows = append(rows, APvsRPRow{
			BudgetMW:         b,
			APExecUs:         ap,
			RPExecUs:         rp,
			RPImprovementPct: 100 * (ap - rp) / ap,
		})
	}
	return rows
}

// Fig16 runs the power-trace experiments of the 3x3 SoC (WL-Par at 120 mW,
// WL-Dep at 60 mW) for BC, BC-C, and C-RR, writing one CSV per run to w if
// non-nil and returning the rows.
func Fig16(ctx context.Context, seed uint64, csv func(name string) io.Writer) []SoCRow {
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR}
	runs := []struct {
		budget float64
		g      *workload.Graph
	}{
		{120, repeat3(workload.AutonomousVehicleParallel())},
		{60, repeat3(workload.AutonomousVehicleDependent())},
	}
	// Fan the (run, scheme) grid out in one sweep; the CSV side effects then
	// replay serially in grid order so the files are written exactly as the
	// nested loops wrote them.
	rows := sweep.Map(ctx, len(runs)*len(schemes), 0, func(i int) SoCRow {
		rn, s := runs[i/len(schemes)], schemes[i%len(schemes)]
		cfg := soc.SoC3x3(rn.budget, s, seed)
		res := soc.New(cfg).Run(rn.g)
		return SoCRow{SoC: cfg.Name, Scheme: res.Scheme,
			BudgetMW: rn.budget, Workload: rn.g.Name, Res: res}
	})
	if csv != nil {
		for _, row := range rows {
			name := fmt.Sprintf("fig16_%s_%.0fmW_%s.csv", row.Scheme, row.BudgetMW, row.Workload)
			if w := csv(name); w != nil {
				if err := row.Res.Recorder.WriteCSV(w); err != nil {
					panic(err)
				}
			}
		}
	}
	return rows
}

// SiliconRow is one silicon-proxy measurement (Fig. 19).
type SiliconRow struct {
	Accelerators      int
	Scheme            string
	ExecUs            float64
	UtilizationPct    float64
	ThroughputGainPct float64 // vs static allocation
	MeanResponseUs    float64
}

// String renders the row.
func (r SiliconRow) String() string {
	return fmt.Sprintf("%d-acc %-6s exec=%9.1fus util=%5.1f%% gain-vs-static=%5.1f%% resp=%.2fus",
		r.Accelerators, r.Scheme, r.ExecUs, r.UtilizationPct, r.ThroughputGainPct, r.MeanResponseUs)
}

// Fig19 reproduces the silicon measurements on the 6x6 prototype's PM
// cluster: budget utilization and throughput improvement over static
// allocation for the 7, 5, 4, and 3-accelerator workloads (paper: 27%, 26%,
// 26%, 19% with 97% utilization).
func Fig19(ctx context.Context, budgetMW float64, seed uint64) []SiliconRow {
	sizes := []int{7, 5, 4, 3}
	// Fan out over (size, scheme) pairs — even index BC, odd index the
	// static baseline of the same size — then pair them back up in order.
	results := sweep.Map(ctx, 2*len(sizes), 0, func(i int) soc.Result {
		n := sizes[i/2]
		var g *workload.Graph
		if n == 7 {
			// The utilization/throughput phase is measured while all
			// seven accelerators run concurrently.
			g = workload.SevenAcceleratorParallel()
		} else {
			g = workload.SiliconSubset(n)
		}
		g = workload.Repeat(g, 3)
		scheme := soc.SchemeBC
		if i%2 == 1 {
			scheme = soc.SchemeStatic
		}
		return soc.New(soc.SoC6x6(budgetMW, scheme, seed)).Run(g)
	})
	var rows []SiliconRow
	for i, n := range sizes {
		bc, st := results[2*i], results[2*i+1]
		rows = append(rows, SiliconRow{
			Accelerators:      n,
			Scheme:            "BC",
			ExecUs:            bc.ExecMicros(),
			UtilizationPct:    bc.UtilizationPct(),
			ThroughputGainPct: 100 * (st.ExecMicros() - bc.ExecMicros()) / st.ExecMicros(),
			MeanResponseUs:    bc.MeanResponseMicros(),
		})
	}
	return rows
}

// Fig20Row is one scheme's response to the end-of-NVDLA activity
// transition (Fig. 20; paper: BC 0.68 us, BC-C 1.4 us, C-RR 15.3 us).
type Fig20Row struct {
	Scheme         string
	MeanResponseUs float64
	MaxResponseUs  float64
}

// String renders the row.
func (r Fig20Row) String() string {
	return fmt.Sprintf("%-6s resp(mean)=%6.2fus resp(max)=%6.2fus", r.Scheme, r.MeanResponseUs, r.MaxResponseUs)
}

// Fig20 measures the coin-exchange response on the 6x6 prototype for the
// 7-accelerator workload across BC, BC-C, and C-RR.
func Fig20(ctx context.Context, budgetMW float64, seed uint64) []Fig20Row {
	g := workload.Repeat(workload.SevenAcceleratorSilicon(), 2)
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR}
	return sweep.Map(ctx, len(schemes), 0, func(i int) Fig20Row {
		res := soc.New(soc.SoC6x6(budgetMW, schemes[i], seed)).Run(g)
		return Fig20Row{
			Scheme:         res.Scheme,
			MeanResponseUs: res.MeanResponseMicros(),
			MaxResponseUs:  res.MaxResponseMicros(),
		}
	})
}

// FitScalingModels fits the response-time laws of Sec. V-E from measured
// SoC responses at N = 6 (3x3), N = 13 (4x4), and N = 7 (6x6 PM cluster),
// mirroring how the paper derives tau_BC, tau_BCC, tau_CRR (Sec. VI-D).
func FitScalingModels(ctx context.Context, seed uint64) map[string]scaling.Model {
	schemes := []soc.Scheme{soc.SchemeBC, soc.SchemeBCC, soc.SchemeCRR, soc.SchemeTS, soc.SchemePT}
	sizes := []float64{6, 13, 7}
	// The full (scheme, SoC) measurement grid fans out in one sweep; the
	// point lists then accumulate serially in grid order, matching the
	// nested loops.
	type fitResult struct {
		scheme string
		n      float64
		respUs float64
	}
	results := sweep.Map(ctx, len(schemes)*len(sizes), 0, func(i int) fitResult {
		s := schemes[i/len(sizes)]
		var cfg soc.Config
		var g *workload.Graph
		switch i % len(sizes) {
		case 0:
			cfg, g = soc.SoC3x3(120, s, seed), repeat3(workload.AutonomousVehicleParallel())
		case 1:
			cfg, g = soc.SoC4x4(450, s, seed), repeat3(workload.ComputerVisionParallel())
		default:
			cfg, g = soc.SoC6x6(200, s, seed), workload.Repeat(workload.SevenAcceleratorSilicon(), 2)
		}
		res := soc.New(cfg).Run(g)
		return fitResult{scheme: res.Scheme, n: sizes[i%len(sizes)], respUs: res.MeanResponseMicros()}
	})
	points := map[string][]scaling.Point{}
	for _, r := range results {
		if r.respUs > 0 {
			points[r.scheme] = append(points[r.scheme], scaling.Point{N: r.n, Response: r.respUs})
		}
	}
	out := map[string]scaling.Model{}
	laws := map[string]scaling.Law{
		"BC": scaling.Sqrt, "BC-C": scaling.Linear, "C-RR": scaling.Linear,
		"TS": scaling.Linear, "PT": scaling.Sqrt,
	}
	for name, pts := range points {
		out[name] = scaling.Fit(name, laws[name], pts)
	}
	return out
}

// Fig21Row is one (scheme, Tw) projection.
type Fig21Row struct {
	Scheme      string
	TwMs        float64
	NMax        float64
	OverheadPct float64 // at N=100, Tw=10ms when TwMs == 10
}

// Fig21 projects maximum supported SoC sizes (left) and PM-overhead
// fractions at Tw = 10 ms (right) for the fitted models.
func Fig21(models map[string]scaling.Model, twsMs []float64) []Fig21Row {
	var rows []Fig21Row
	for _, tw := range twsMs {
		for _, name := range []string{"BC", "BC-C", "C-RR", "TS", "PT"} {
			m, ok := models[name]
			if !ok {
				continue
			}
			rows = append(rows, Fig21Row{
				Scheme:      name,
				TwMs:        tw,
				NMax:        m.NMax(tw * 1000),
				OverheadPct: 100 * m.OverheadFraction(100, 10_000),
			})
		}
	}
	return rows
}

// Fig13Point dumps one accelerator operating point for the
// characterization plot.
type Fig13Point struct {
	Accel string
	V     float64
	FMHz  float64
	PmW   float64
}

// Fig13 returns every accelerator's characterized operating points.
func Fig13() []Fig13Point {
	var out []Fig13Point
	for _, name := range []string{"FFT", "Viterbi", "NVDLA", "GEMM", "Conv2D", "Vision"} {
		c := power.Catalog()[name]
		for _, p := range c.Points {
			out = append(out, Fig13Point{Accel: name, V: p.V, FMHz: p.FMHz, PmW: p.PmW})
		}
	}
	return out
}

// Fig01Row is one point of the motivation plot: response-time trends vs the
// activity-change interval.
type Fig01Row struct {
	Scheme     string
	N          float64
	ResponseUs float64
	TwMs       float64
	IntervalUs float64 // Tw/N
	Supported  bool
}

// Fig01 generates the scalability-motivation series of Fig. 1 for the
// software-centralized, hardware-centralized, and decentralized schemes.
func Fig01(ns []float64, twsMs []float64) []Fig01Row {
	models := scaling.PaperModels()
	var rows []Fig01Row
	for _, name := range []string{"SW", "BC-C", "BC"} {
		m := models[name]
		for _, n := range ns {
			for _, tw := range twsMs {
				rows = append(rows, Fig01Row{
					Scheme:     name,
					N:          n,
					ResponseUs: m.Response(n),
					TwMs:       tw,
					IntervalUs: scaling.PhaseInterval(tw*1000, n),
					Supported:  m.Supported(n, tw*1000),
				})
			}
		}
	}
	return rows
}
