package experiments

import (
	"context"
	"testing"
)

// The acceptance cell of the robustness extension: on the 10x10 torus at 1%
// PM-plane drops, every trial converges (Err < 1.5) with the pool conserved,
// and the recovery counters show the machinery actually worked for it.
func TestFaultStudyAcceptanceCell(t *testing.T) {
	rows := FaultStudy(context.Background(), []int{10}, []float64{0, 0.01}, 3, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	clean, lossy := rows[0], rows[1]
	for _, r := range rows {
		if r.Converged != r.Trials {
			t.Fatalf("drop=%.2f: only %d/%d converged", r.DropRate, r.Converged, r.Trials)
		}
		if r.Conserved != r.Trials {
			t.Fatalf("drop=%.2f: only %d/%d conserved the pool", r.DropRate, r.Conserved, r.Trials)
		}
	}
	if lossy.MeanDropped == 0 || lossy.MeanRetries == 0 {
		t.Fatalf("1%% cell injected no faults: %s", lossy)
	}
	if clean.MeanDropped != 0 || clean.MeanRetries != 0 {
		t.Fatalf("0%% cell saw faults: %s", clean)
	}
	// Loss costs time but not convergence: graceful, not cliff-edge.
	if lossy.MeanCycles > clean.MeanCycles*10 {
		t.Fatalf("drop collapse: %v -> %v cycles", clean.MeanCycles, lossy.MeanCycles)
	}
}

// Degraded mode degrades gracefully: every kill count completes the
// workload, re-queues the interrupted tasks, and holds the cap excursion
// within the recovery bound the soc tests establish.
func TestDegradedSoCGracefulDegradation(t *testing.T) {
	rows := DegradedSoC(context.Background(), 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Res.TilesKilled != r.Kills {
			t.Fatalf("kills=%d but TilesKilled=%d", r.Kills, r.Res.TilesKilled)
		}
		if !r.Res.Completed {
			t.Fatalf("kills=%d: workload did not complete: %s", r.Kills, r.Res.String())
		}
		if r.Exc20 > 2_000 {
			t.Fatalf("kills=%d: >20%% cap excursion for %d cycles", r.Kills, r.Exc20)
		}
	}
	// Losing tiles costs makespan; it must not gain it.
	if rows[3].Res.ExecCycles <= rows[0].Res.ExecCycles {
		t.Fatalf("3 kills faster than healthy: %d <= %d cycles",
			rows[3].Res.ExecCycles, rows[0].Res.ExecCycles)
	}
	if rows[3].Res.TasksRequeued == 0 {
		t.Fatal("3 kills re-queued no tasks")
	}
}
