// Package experiments orchestrates the paper's evaluation: one entry point
// per table or figure, each returning structured rows that the CLI tools
// print and the benchmarks regenerate. EXPERIMENTS.md records the measured
// outputs next to the paper's numbers.
package experiments

import (
	"context"
	"fmt"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/stats"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/trace"
)

// ConvergenceRow is one point of a convergence-scaling experiment
// (Figs. 3, 4, 6, 8).
type ConvergenceRow struct {
	Label                   string
	D                       int // mesh dimension, N = D*D
	N                       int
	Trials                  int
	MeanCycles, MeanPackets float64
	P95Cycles               float64
	MaxCycles               float64
	MeanStartErr            float64
	Converged               int // how many trials converged
}

// String renders the row.
func (r ConvergenceRow) String() string {
	return fmt.Sprintf("%-22s d=%2d N=%3d trials=%d cycles(mean)=%8.0f cycles(p95)=%8.0f packets(mean)=%9.0f startErr=%6.1f conv=%d/%d",
		r.Label, r.D, r.N, r.Trials, r.MeanCycles, r.P95Cycles, r.MeanPackets, r.MeanStartErr, r.Converged, r.Trials)
}

// runConvergence executes trials of the coin emulator with the given
// configuration mutator and initialization, collecting convergence stats.
func runConvergence(ctx context.Context, label string, d, trials int, seed uint64,
	mut func(*coin.Config), initFn func(src *rng.Source, n int) coin.Assignment) ConvergenceRow {

	cfg := coin.Config{
		Mesh:              mesh.Square(d, true),
		Mode:              coin.OneWay,
		RefreshInterval:   32,
		RandomPairing:     true,
		Threshold:         1.5,
		StopAtConvergence: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	// Each trial derives its RNG from the trial index alone, so the fan-out
	// is order-independent; the stats are then accumulated serially in trial
	// order, making the row bit-identical to the serial loop at any
	// parallelism.
	type trialResult struct {
		startErr        float64
		converged       bool
		cycles, packets float64
	}
	st := trace.FromContext(ctx)
	results := sweep.Map(ctx, trials, 0, func(t int) trialResult {
		st.TrialStart(t, trials)
		src := rng.New(seed + uint64(t)*7919)
		e := coin.NewEmulator(cfg, src)
		e.Init(initFn(src, cfg.Mesh.N()))
		res := e.Run()
		micros := res.ConvergenceMicros()
		st.TrialDone(t, trials, res.Converged, micros)
		if res.Converged {
			st.Convergence(t, micros)
		}
		return trialResult{
			startErr:  res.StartErr,
			converged: res.Converged,
			cycles:    float64(res.ConvergenceCycles),
			packets:   float64(res.PacketsToConvergence),
		}
	})
	var cyc, pkt stats.Sample
	var startErr stats.Running
	converged := 0
	for _, r := range results {
		startErr.Add(r.startErr)
		if r.converged {
			converged++
			cyc.Add(r.cycles)
			pkt.Add(r.packets)
		}
	}
	row := ConvergenceRow{
		Label: label, D: d, N: d * d, Trials: trials,
		MeanStartErr: startErr.Mean(), Converged: converged,
	}
	if cyc.N() > 0 {
		row.MeanCycles = cyc.Mean()
		row.P95Cycles = cyc.Quantile(0.95)
		row.MaxCycles = cyc.Max()
		row.MeanPackets = pkt.Mean()
	}
	return row
}

// hotspotInit is the standard initialization of the scaling experiments:
// the coin pool concentrated in one region, modeling the state right after
// a large activity change (see coin.HotspotAssignment).
func hotspotInit(src *rng.Source, n int) coin.Assignment {
	maxes := coin.UniformMaxes(n, 32)
	return coin.HotspotAssignment(src, maxes, int64(n)*16)
}

// Fig03 compares the 1-way and 4-way exchange techniques: packets and NoC
// cycles to convergence (Err < 1.5) across SoC dimensions, averaged over
// random initializations.
func Fig03(ctx context.Context, ds []int, trials int, seed uint64) []ConvergenceRow {
	var rows []ConvergenceRow
	for _, d := range ds {
		rows = append(rows, runConvergence(ctx, "1-way", d, trials, seed,
			func(c *coin.Config) { c.Mode = coin.OneWay }, hotspotInit))
	}
	for _, d := range ds {
		rows = append(rows, runConvergence(ctx, "4-way", d, trials, seed,
			func(c *coin.Config) { c.Mode = coin.FourWay }, hotspotInit))
	}
	return rows
}

// uniformInit draws every tile's initial coins uniformly in [0, max]: the
// per-tile random initialization whose local imbalances dynamic timing
// resolves fastest (converged areas stop chattering, converging areas
// accelerate below the base refresh rate).
func uniformInit(src *rng.Source, n int) coin.Assignment {
	return coin.UniformRandomAssignment(src, coin.UniformMaxes(n, 32))
}

// Fig06 compares conventional 1-way exchange against 1-way with dynamic
// timing (Err < 1.0): dynamic timing reduces both convergence time and
// total packets.
func Fig06(ctx context.Context, ds []int, trials int, seed uint64) []ConvergenceRow {
	var rows []ConvergenceRow
	for _, d := range ds {
		rows = append(rows, runConvergence(ctx, "1-way conventional", d, trials, seed,
			func(c *coin.Config) { c.Threshold = 1.0 }, uniformInit))
	}
	for _, d := range ds {
		rows = append(rows, runConvergence(ctx, "1-way dynamic", d, trials, seed,
			func(c *coin.Config) { c.Threshold = 1.0; c.DynamicTiming = true }, uniformInit))
	}
	return rows
}

// Fig08 sweeps the degree of heterogeneity (number of distinct accelerator
// types) and the SoC dimension, reporting convergence time and the initial
// error (start_error grows with heterogeneity, lengthening convergence).
func Fig08(ctx context.Context, ds []int, accTypes []int, trials int, seed uint64) []ConvergenceRow {
	var rows []ConvergenceRow
	for _, at := range accTypes {
		at := at
		for _, d := range ds {
			label := fmt.Sprintf("accType=%d", at)
			rows = append(rows, runConvergence(ctx, label, d, trials, seed, nil,
				func(src *rng.Source, n int) coin.Assignment {
					maxes := coin.HeterogeneousMaxes(src, n, at, 8)
					var sum int64
					for _, m := range maxes {
						sum += m
					}
					return coin.HotspotAssignment(src, maxes, sum/2)
				}))
		}
	}
	return rows
}

// Fig07Row is one histogram of worst-case residual error (Fig. 7).
type Fig07Row struct {
	N             int
	RandomPairing bool
	Trials        int
	Hist          *stats.Histogram
	MeanWorst     float64
	MaxWorst      float64
	WithinOneCoin int // trials whose worst tile error stayed below 1.5 coins
}

// String renders the row summary.
func (r Fig07Row) String() string {
	return fmt.Sprintf("N=%d pairing=%-5v trials=%d worstErr(mean)=%.2f worstErr(max)=%.2f within1coin=%d/%d",
		r.N, r.RandomPairing, r.Trials, r.MeanWorst, r.MaxWorst, r.WithinOneCoin, r.Trials)
}

// Fig07Point is one cell of the Fig. 7 sweep: a mesh size with random
// pairing off or on. Fig07Points fixes the cell order (sizes in input
// order, pairing false before true) that Fig07Assemble's flattened trial
// layout depends on.
type Fig07Point struct {
	D             int  `json:"d"`
	RandomPairing bool `json:"random_pairing"`
}

// Fig07Points expands the tile counts into the figure's cell list.
func Fig07Points(ns []int) []Fig07Point {
	var points []Fig07Point
	for _, n := range ns {
		d := 1
		for d*d < n {
			d++
		}
		for _, pairing := range []bool{false, true} {
			points = append(points, Fig07Point{D: d, RandomPairing: pairing})
		}
	}
	return points
}

// Fig07Trial runs one trial of a Fig. 7 cell and returns its worst-case
// residual per-tile error. The trial's RNG derives from the trial index
// alone, so any machine computing (p, trial, seed) gets the same value —
// the property distributed shards rely on.
func Fig07Trial(p Fig07Point, trial int, seed uint64) float64 {
	d := p.D
	cfg := coin.Config{
		Mesh:            mesh.Square(d, true),
		Mode:            coin.OneWay,
		RefreshInterval: 32,
		RandomPairing:   p.RandomPairing,
		Threshold:       1.0,
		// Run to quiescence: residual error is the subject. The
		// cycle bound cuts off the long tail of last-coin
		// shuffling at large N without affecting the residual.
		StopAtConvergence: false,
		MaxCycles:         400_000,
	}
	src := rng.New(seed + uint64(trial)*104729)
	e := coin.NewEmulator(cfg, src)
	// Sparse activity: half the tiles active, which is what
	// makes neighbor-only exchange deadlock-prone.
	maxes := make([]int64, d*d)
	for i := range maxes {
		if src.Bool() {
			maxes[i] = 32
		}
	}
	e.Init(coin.HotspotAssignment(src, maxes, int64(d*d)*8))
	return e.Run().WorstTileErr
}

// Fig07Assemble folds the flattened per-trial values — point-major, trial
// order within each point, exactly len(points)*trials long — into the
// figure rows. Because the fold walks values in index order, assembling
// shard-computed values is byte-identical to a local run.
func Fig07Assemble(points []Fig07Point, trials int, worstErrs []float64) []Fig07Row {
	rows := make([]Fig07Row, 0, len(points))
	for pi, p := range points {
		row := Fig07Row{N: p.D * p.D, RandomPairing: p.RandomPairing, Trials: trials,
			Hist: stats.NewHistogram(0, 16, 64)}
		var worst stats.Running
		for _, w := range worstErrs[pi*trials : (pi+1)*trials] {
			row.Hist.Add(w)
			worst.Add(w)
			if w < 1.5 {
				row.WithinOneCoin++
			}
		}
		row.MeanWorst = worst.Mean()
		row.MaxWorst = worst.Max()
		rows = append(rows, row)
	}
	return rows
}

// Fig07 measures the residual (post-quiescence) worst-case per-tile error
// with and without random pairing, for N = 100 and 400: without pairing,
// deadlocked local minima leave tiles off target; with pairing everything
// converges to the 1-coin quantization limit.
func Fig07(ctx context.Context, ns []int, trials int, seed uint64) []Fig07Row {
	points := Fig07Points(ns)
	st := trace.FromContext(ctx)
	total := len(points) * trials
	worstErrs := make([]float64, 0, total)
	for pi, p := range points {
		base := pi * trials
		worstErrs = append(worstErrs, sweep.Map(ctx, trials, 0, func(t int) float64 {
			st.TrialStart(base+t, total)
			w := Fig07Trial(p, t, seed)
			st.TrialDone(base+t, total, true, 0)
			st.Point("worst_tile_err", uint64(base+t), w)
			return w
		})...)
	}
	return Fig07Assemble(points, trials, worstErrs)
}

// Fig04Row compares BlitzCoin and TokenSmart convergence (Fig. 4).
type Fig04Row struct {
	Label      string
	D, N       int
	Trials     int
	MeanCycles float64
	P95Cycles  float64
	MaxCycles  float64
}

// String renders the row.
func (r Fig04Row) String() string {
	return fmt.Sprintf("%-4s d=%2d N=%3d trials=%d cycles mean=%9.0f p95=%9.0f max=%9.0f",
		r.Label, r.D, r.N, r.Trials, r.MeanCycles, r.P95Cycles, r.MaxCycles)
}

// Fig04 runs BlitzCoin and the ring-based TokenSmart from random
// initial allocations and compares time to convergence. BC scales with
// sqrt(N); TS's sequential token passing scales with N and its greedy/fair
// oscillation produces long-tail outliers.
func Fig04(ctx context.Context, ds []int, trials int, seed uint64) []Fig04Row {
	var rows []Fig04Row
	for _, d := range ds {
		cr := runConvergence(ctx, "BC", d, trials, seed, nil, hotspotInit)
		rows = append(rows, Fig04Row{Label: "BC", D: d, N: d * d, Trials: trials,
			MeanCycles: cr.MeanCycles, P95Cycles: cr.P95Cycles, MaxCycles: cr.MaxCycles})
	}
	for _, d := range ds {
		cycles := sweep.Map(ctx, trials, 0, func(t int) float64 {
			return float64(tokenSmartConvergence(d, seed+uint64(t)*37))
		})
		var cyc stats.Sample
		for _, c := range cycles {
			cyc.Add(c)
		}
		rows = append(rows, Fig04Row{Label: "TS", D: d, N: d * d, Trials: trials,
			MeanCycles: cyc.Mean(), P95Cycles: cyc.Quantile(0.95), MaxCycles: cyc.Max()})
	}
	return rows
}
