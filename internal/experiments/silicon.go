package experiments

import (
	"context"
	"fmt"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/power"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/trace"
	"blitzcoin/internal/workload"
)

// CoinSnapshotRow is one tile's allocation before and after convergence —
// the Fig. 19 (bottom left) plot.
type CoinSnapshotRow struct {
	Tile      int
	Accel     string
	TargetMax int64
	Before    int64
	After     int64
	Residual  float64 // |after - fair target|
}

// String renders the row.
func (r CoinSnapshotRow) String() string {
	return fmt.Sprintf("tile %2d %-8s max=%2d before=%2d after=%2d residual=%.2f",
		r.Tile, r.Accel, r.TargetMax, r.Before, r.After, r.Residual)
}

// Fig19Coins reproduces the coin-redistribution measurement of Fig. 19
// (bottom left): starting from a random allocation on the 6x6 prototype's
// PM cluster, the seven active tiles' coins converge to their targets with
// residual error below one coin.
func Fig19Coins(budgetMW float64, seed uint64) []CoinSnapshotRow {
	m := mesh.New(6, 6, true)
	src := rng.New(seed)
	cfg := coin.Config{
		Mesh:            m,
		Mode:            coin.OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.0,
	}
	e := coin.NewEmulator(cfg, src)

	// The seven active tiles of the silicon workload, their targets from
	// the accelerator characterizations, quantized like the SoC harness.
	cat := power.Catalog()
	cv := cat["NVDLA"].PMax() / 63
	type tileSpec struct {
		tile  int
		accel string
	}
	actives := []tileSpec{
		{0, "NVDLA"}, {1, "FFT"}, {2, "FFT"},
		{4, "Viterbi"}, {5, "Viterbi"}, {6, "Viterbi"}, {7, "Viterbi"},
	}
	maxes := make([]int64, m.N())
	for _, a := range actives {
		maxes[a.tile] = int64(cat[a.accel].PMax()/cv + 0.5)
	}
	pool := int64(budgetMW/cv + 0.5)
	assignment := coin.RandomAssignment(src, maxes, pool)

	before := make([]int64, m.N())
	copy(before, assignment.Has)

	e.Init(assignment)
	res := e.Run()
	if !res.Converged {
		panic("experiments: Fig19Coins did not converge")
	}
	has, _ := e.Snapshot()

	var sumMax int64
	for _, mx := range maxes {
		sumMax += mx
	}
	var rows []CoinSnapshotRow
	for _, a := range actives {
		fair := float64(pool) * float64(maxes[a.tile]) / float64(sumMax)
		resid := float64(has[a.tile]) - fair
		if resid < 0 {
			resid = -resid
		}
		rows = append(rows, CoinSnapshotRow{
			Tile: a.tile, Accel: a.accel, TargetMax: maxes[a.tile],
			Before: before[a.tile], After: has[a.tile], Residual: resid,
		})
	}
	return rows
}

// Fig20Trace records the per-tile coin counts over time across an activity
// transition — the actual plot of Fig. 20: after the system converges for
// the 7-accelerator workload, the NVDLA task ends (its max drops to 0) and
// its coins redistribute to the remaining active tiles. The returned
// recorder holds one series per active tile plus the NVDLA tile; the
// response time is the interval from the transition to re-convergence.
func Fig20Trace(budgetMW float64, seed uint64) (*trace.Recorder, sim.Cycles) {
	m := mesh.New(6, 6, true)
	src := rng.New(seed)
	cfg := coin.Config{
		Mesh:            m,
		Mode:            coin.OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.0,
		// Hardware-consistent response semantics, as in the SoC harness:
		// the transition is answered when every still-active tile is
		// within a coin of its (raised) usable target.
		CoinCap:     63,
		DeficitOnly: true,
	}
	e := coin.NewEmulator(cfg, src)

	cat := power.Catalog()
	cv := cat["NVDLA"].PMax() / 63
	tiles := []struct {
		tile  int
		accel string
	}{
		{0, "NVDLA"}, {1, "FFT"}, {2, "FFT"},
		{4, "Viterbi"}, {5, "Viterbi"}, {6, "Viterbi"}, {7, "Viterbi"},
	}
	maxes := make([]int64, m.N())
	for _, t := range tiles {
		maxes[t.tile] = int64(cat[t.accel].PMax()/cv + 0.5)
	}
	pool := int64(budgetMW/cv + 0.5)

	rec := trace.NewRecorder()
	names := map[int]string{}
	for _, t := range tiles {
		names[t.tile] = fmt.Sprintf("t%02d-%s", t.tile, t.accel)
	}
	e.SetOnChange(func(tile int, has int64) {
		if name, ok := names[tile]; ok {
			rec.Series(name).Record(e.Kernel().Now(), float64(has))
		}
	})

	a := coin.ConvergedAssignment(maxes, pool)
	e.Init(a)
	for _, t := range tiles {
		rec.Series(names[t.tile]).Record(0, float64(a.Has[t.tile]))
	}
	e.Run() // settle from the converged start (records baseline)

	// The transition: NVDLA's task ends.
	e.SetMax(0, 0)
	e.Run()
	return rec, e.ResponseCycles()
}

// NoPMRow reports the PM-overhead check of Sec. VI-C: an accelerator run
// under BlitzCoin with ample budget performs within a hair of the same
// accelerator without power management (the FFT No-PM baseline tile).
type NoPMRow struct {
	Accel       string
	NoPMExecUs  float64 // analytic: work at Fmax, no PM logic
	BCExecUs    float64 // measured under BlitzCoin with ample budget
	OverheadPct float64
}

// String renders the row.
func (r NoPMRow) String() string {
	return fmt.Sprintf("%-5s no-PM=%8.2fus BC=%8.2fus overhead=%.2f%%",
		r.Accel, r.NoPMExecUs, r.BCExecUs, r.OverheadPct)
}

// NoPMOverhead measures BlitzCoin's intrusiveness: a single FFT task on
// the 3x3 SoC with a budget generous enough that the tile should reach
// Fmax, compared against the ideal no-PM execution (work / Fmax). The
// paper measures < 2% difference between the PM and No-PM FFT tiles.
func NoPMOverhead(seed uint64) NoPMRow {
	g := workload.SiliconSubset(3) // FFT -> NVDLA chain with one Viterbi
	// Ideal: every task at its accelerator's Fmax, honoring the DAG.
	cat := power.Catalog()
	memo := make([]float64, len(g.Tasks))
	var finish func(i int) float64
	finish = func(i int) float64 {
		if memo[i] != 0 {
			return memo[i]
		}
		var start float64
		for _, d := range g.Tasks[i].Deps {
			if f := finish(d); f > start {
				start = f
			}
		}
		memo[i] = start + g.Tasks[i].WorkCycles/cat[g.Tasks[i].Accel].FMax()
		return memo[i]
	}
	var ideal float64
	for i := range g.Tasks {
		if f := finish(i); f > ideal {
			ideal = f
		}
	}

	// Measured: ample budget (the combined Pmax) so allocation never
	// constrains frequency; any slowdown is PM machinery (actuation
	// settling, coin transport).
	cfg := soc.SoC3x3(400, soc.SchemeBC, seed)
	res := soc.New(cfg).Run(g)
	if !res.Completed {
		panic("experiments: NoPMOverhead run incomplete")
	}
	bc := res.ExecMicros()
	return NoPMRow{
		Accel:       "FFT",
		NoPMExecUs:  ideal,
		BCExecUs:    bc,
		OverheadPct: 100 * (bc - ideal) / ideal,
	}
}

// ContentionRow reports the NoC-contention robustness study: coin-exchange
// convergence while synthetic register/interrupt traffic competes for
// plane 5 (the scenario behind the transient negative counts of
// Sec. IV-A).
type ContentionRow struct {
	BackgroundPktPerKCycle int // injected background packets per 1000 cycles per tile
	MeanCycles             float64
	MeanPackets            float64
	Converged              int
	Trials                 int
}

// String renders the row.
func (r ContentionRow) String() string {
	return fmt.Sprintf("bg=%3d pkts/kcycle/tile cycles(mean)=%8.0f packets(mean)=%9.0f conv=%d/%d",
		r.BackgroundPktPerKCycle, r.MeanCycles, r.MeanPackets, r.Converged, r.Trials)
}

// ContentionStudy sweeps background plane-5 traffic rates and measures the
// impact on convergence: the coin exchange must degrade gracefully, not
// collapse, when register traffic shares its plane.
func ContentionStudy(ctx context.Context, d int, rates []int, trials int, seed uint64) []ContentionRow {
	var rows []ContentionRow
	for _, rate := range rates {
		row := ContentionRow{BackgroundPktPerKCycle: rate, Trials: trials}
		results := sweep.Map(ctx, trials, 0, func(tr int) coin.Result {
			src := rng.New(seed + uint64(tr)*131)
			cfg := coin.Config{
				Mesh:              mesh.Square(d, true),
				Mode:              coin.OneWay,
				RefreshInterval:   32,
				RandomPairing:     true,
				Threshold:         1.5,
				StopAtConvergence: true,
			}
			k := &sim.Kernel{}
			net := noc.New(k, cfg.Mesh, noc.DefaultConfig())
			e := coin.NewEmulatorOn(k, net, cfg, src.Split())

			// Background traffic: each tile injects register accesses to
			// random destinations at the given rate. The packets share
			// plane 5 with the coin messages, creating real link and
			// ejection contention. (Handlers are owned by the emulator;
			// background packets are addressed to it but carry KindOther
			// semantics — the emulator must tolerate them, like the real
			// FSM ignores non-coin register traffic.)
			bgsrc := src.Split()
			n := cfg.Mesh.N()
			if rate > 0 {
				// rate is packets per 1000 cycles per tile, so the SoC
				// injects rate*n/1000 packets per cycle. A fractional
				// accumulator meters that precisely: every tick (4 cycles)
				// owes rate*n/250 packets.
				const tick = sim.Cycles(4)
				perTick := float64(rate) * float64(n) * float64(tick) / 1000.0
				owed := 0.0
				var inject func()
				inject = func() {
					owed += perTick
					for ; owed >= 1; owed-- {
						from := bgsrc.Intn(n)
						to := bgsrc.Intn(n)
						if to == from {
							continue
						}
						// Plane-5 register access contends with coins.
						net.Send(&noc.Packet{
							Plane: noc.PlanePM,
							Kind:  noc.KindRegAccess,
							Src:   from,
							Dst:   to,
						})
					}
					k.Schedule(tick, inject)
				}
				k.Schedule(1, inject)
			}

			maxes := coin.UniformMaxes(n, 32)
			e.Init(coin.HotspotAssignment(src.Split(), maxes, int64(n)*16))
			return e.Run()
		})
		var cyc, pkt float64
		for _, res := range results {
			if res.Converged {
				row.Converged++
				cyc += float64(res.ConvergenceCycles)
				pkt += float64(res.PacketsToConvergence)
			}
		}
		if row.Converged > 0 {
			row.MeanCycles = cyc / float64(row.Converged)
			row.MeanPackets = pkt / float64(row.Converged)
		}
		rows = append(rows, row)
	}
	return rows
}
