package experiments

import (
	"context"
	"fmt"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/stats"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/workload"
)

// FaultRow is one point of the fault-resilience sweep: a (mesh size,
// drop rate) cell of the hardened coin exchange run to quiescence.
type FaultRow struct {
	D, N     int
	DropRate float64
	Trials   int

	Converged int // trials whose error crossed the threshold
	Conserved int // trials that ended with the pool exactly conserved

	MeanCycles   float64 // convergence time over converged trials
	P95Cycles    float64
	MeanFinalErr float64
	MeanDropped  float64 // PM-plane packets lost per trial
	MeanRetries  float64 // exchanges abandoned by timeout and retried
	MeanRepairs  float64 // conservation audits that repaired a residue
}

// String renders the row.
func (r FaultRow) String() string {
	return fmt.Sprintf("d=%2d N=%3d drop=%4.1f%% trials=%d conv=%d/%d conserved=%d/%d cycles(mean)=%8.0f cycles(p95)=%8.0f finalErr=%5.2f dropped=%7.1f retries=%7.1f repairs=%5.1f",
		r.D, r.N, 100*r.DropRate, r.Trials, r.Converged, r.Trials,
		r.Conserved, r.Trials, r.MeanCycles, r.P95Cycles,
		r.MeanFinalErr, r.MeanDropped, r.MeanRetries, r.MeanRepairs)
}

// FaultStudy sweeps PM-plane packet-drop rate against mesh size: the
// hardened 1-way exchange must keep converging (Err < 1.5) and keep the
// coin pool conserved as the plane gets lossier. The acceptance point of
// the robustness extension is the d=10, 1% cell. Runs go to quiescence
// (not first crossing) so the conservation audit's end-of-run verdict is
// part of every trial.
func FaultStudy(ctx context.Context, ds []int, dropRates []float64, trials int, seed uint64) []FaultRow {
	points := FaultPoints(ds, dropRates)
	results := make([]FaultTrial, 0, len(points)*trials)
	for _, p := range points {
		results = append(results, sweep.Map(ctx, trials, 0, func(t int) FaultTrial {
			return FaultStudyTrial(p, t, seed)
		})...)
	}
	return FaultAssemble(points, trials, results)
}

// FaultPoint is one (mesh size, drop rate) cell of the fault study.
// FaultPoints fixes the cell order (sizes outer, rates inner) that
// FaultAssemble's flattened trial layout depends on.
type FaultPoint struct {
	D        int     `json:"d"`
	DropRate float64 `json:"drop_rate"`
}

// FaultPoints expands the sweep axes into the study's cell list.
func FaultPoints(ds []int, dropRates []float64) []FaultPoint {
	var points []FaultPoint
	for _, d := range ds {
		for _, rate := range dropRates {
			points = append(points, FaultPoint{D: d, DropRate: rate})
		}
	}
	return points
}

// FaultTrial is the reduction-relevant outcome of one fault-study trial,
// flattened to plain exported fields so a shard can ship it over the wire
// (Go's JSON encoding round-trips these values exactly).
type FaultTrial struct {
	Converged         bool    `json:"converged"`
	ConvergenceCycles uint64  `json:"convergence_cycles"`
	Conserved         bool    `json:"conserved"`
	FinalErr          float64 `json:"final_err"`
	Dropped           uint64  `json:"dropped"`
	Retries           uint64  `json:"retries"`
	AuditRepairs      uint64  `json:"audit_repairs"`
}

// FaultStudyTrial runs one hardened-exchange trial of a fault-study cell.
// Both the simulation and fault RNG streams derive from the trial index
// alone, so any machine computing (p, trial, seed) gets the same outcome.
func FaultStudyTrial(p FaultPoint, trial int, seed uint64) FaultTrial {
	cfg := coin.Config{
		Mesh:            mesh.Square(p.D, true),
		Mode:            coin.OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.5,
		MaxCycles:       400_000,
		// Harden even the zero-drop baseline so every cell of
		// the sweep pays the same protocol overhead and the
		// rate column is the only variable.
		Harden: true,
		Faults: &fault.Config{
			Seed:     seed + uint64(trial)*2741 + uint64(p.D),
			DropRate: p.DropRate,
		},
	}
	src := rng.New(seed + uint64(trial)*7919)
	e := coin.NewEmulator(cfg, src)
	e.Init(hotspotInit(src, cfg.Mesh.N()))
	res := e.Run()
	return FaultTrial{
		Converged:         res.Converged,
		ConvergenceCycles: res.ConvergenceCycles,
		Conserved:         res.Conserved(),
		FinalErr:          res.FinalErr,
		Dropped:           res.Dropped,
		Retries:           res.Retries,
		AuditRepairs:      res.AuditRepairs,
	}
}

// FaultAssemble folds the flattened per-trial outcomes — point-major,
// trial order within each point, exactly len(points)*trials long — into
// the study rows, walking values in index order so shard-computed trials
// assemble byte-identically to a local run.
func FaultAssemble(points []FaultPoint, trials int, results []FaultTrial) []FaultRow {
	rows := make([]FaultRow, 0, len(points))
	for pi, p := range points {
		row := FaultRow{D: p.D, N: p.D * p.D, DropRate: p.DropRate, Trials: trials}
		var cyc stats.Sample
		var finalErr, dropped, retries, repairs stats.Running
		for _, res := range results[pi*trials : (pi+1)*trials] {
			if res.Converged {
				row.Converged++
				cyc.Add(float64(res.ConvergenceCycles))
			}
			if res.Conserved {
				row.Conserved++
			}
			finalErr.Add(res.FinalErr)
			dropped.Add(float64(res.Dropped))
			retries.Add(float64(res.Retries))
			repairs.Add(float64(res.AuditRepairs))
		}
		if cyc.N() > 0 {
			row.MeanCycles = cyc.Mean()
			row.P95Cycles = cyc.Quantile(0.95)
		}
		row.MeanFinalErr = finalErr.Mean()
		row.MeanDropped = dropped.Mean()
		row.MeanRetries = retries.Mean()
		row.MeanRepairs = repairs.Mean()
		rows = append(rows, row)
	}
	return rows
}

// DegradedRow is one point of the degraded-mode SoC study: the 3x3 SoC
// under BlitzCoin with K tiles fail-stopped mid-workload.
type DegradedRow struct {
	Kills int
	Res   soc.Result
	// Excursion20 is the longest span the survivors held total power more
	// than 20% above the cap — the recovery-bound metric.
	Exc20 sim.Cycles
	Exc35 sim.Cycles
}

// String renders the row.
func (r DegradedRow) String() string {
	return fmt.Sprintf("kills=%d exec=%8.1fus completed=%-5v requeued=%2d avgP=%6.1fmW peak=%6.1fmW exc20=%5d exc35=%5d",
		r.Kills, r.Res.ExecMicros(), r.Res.Completed, r.Res.TasksRequeued,
		r.Res.AvgPowerMW, r.Res.PeakPowerMW, r.Exc20, r.Exc35)
}

// degradedKills is the kill schedule of the degraded-mode study: two FFTs
// and a Viterbi, staggered so each kill lands mid-task, leaving at least
// one tile of every accelerator type alive.
var degradedKills = []fault.TileFault{
	{Tile: 1, At: 60_000},  // FFT
	{Tile: 3, At: 100_000}, // Viterbi
	{Tile: 7, At: 140_000}, // FFT
}

// DegradedSoC kills 0..3 of the 3x3 SoC's nine tiles mid-workload and
// reports makespan, task re-queues, and the longest cap excursion. The
// workload still completes on the survivors, and the excursion stays
// bounded: the hardened exchange prunes the dead neighbors and the audit
// re-mints their stranded coins back into the live pool.
func DegradedSoC(ctx context.Context, seed uint64) []DegradedRow {
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 4)
	return sweep.Map(ctx, len(degradedKills)+1, 0, func(k int) DegradedRow {
		cfg := soc.SoC3x3(120, soc.SchemeBC, seed)
		if k > 0 {
			cfg.Faults = &fault.Config{TileKills: degradedKills[:k]}
		}
		res := soc.New(cfg).Run(g)
		return DegradedRow{
			Kills: k,
			Res:   res,
			Exc20: res.LongestCapExcursion(0.20),
			Exc35: res.LongestCapExcursion(0.35),
		}
	})
}
