package experiments

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"blitzcoin/internal/mesh"
)

// Small-parameter integration runs of every experiment, asserting the
// paper-shape properties the full-size runs exhibit.

var tctx = context.Background()

func TestFig03ShapesHold(t *testing.T) {
	rows := Fig03(tctx, []int{6, 12}, 5, 1)
	byLabel := map[string][]ConvergenceRow{}
	for _, r := range rows {
		byLabel[r.Label] = append(byLabel[r.Label], r)
	}
	for _, label := range []string{"1-way", "4-way"} {
		rs := byLabel[label]
		if len(rs) != 2 {
			t.Fatalf("%s rows = %d", label, len(rs))
		}
		for _, r := range rs {
			if r.Converged != r.Trials {
				t.Fatalf("%s d=%d: only %d/%d converged", label, r.D, r.Converged, r.Trials)
			}
		}
		// Convergence grows sub-linearly: 4x tiles, < 3.5x time.
		if ratio := rs[1].MeanCycles / rs[0].MeanCycles; ratio > 3.5 {
			t.Fatalf("%s: time ratio %.2f for 4x tiles", label, ratio)
		}
	}
	// 1-way needs fewer packets than 4-way at the same size.
	if byLabel["1-way"][1].MeanPackets >= byLabel["4-way"][1].MeanPackets {
		t.Fatal("1-way should use fewer packets than 4-way")
	}
}

func TestFig04TokenSmartScalesLinearly(t *testing.T) {
	rows := Fig04(tctx, []int{8, 16}, 5, 1)
	var bc, ts []Fig04Row
	for _, r := range rows {
		if r.Label == "BC" {
			bc = append(bc, r)
		} else {
			ts = append(ts, r)
		}
	}
	// TS time ratio for 4x tiles should approach 4 (linear in N); BC's
	// should stay near 2 (linear in d).
	tsRatio := ts[1].MeanCycles / ts[0].MeanCycles
	bcRatio := bc[1].MeanCycles / bc[0].MeanCycles
	if tsRatio < 2.5 {
		t.Fatalf("TS ratio %.2f, want near 4 (O(N))", tsRatio)
	}
	if bcRatio > tsRatio {
		t.Fatalf("BC (%.2f) should scale better than TS (%.2f)", bcRatio, tsRatio)
	}
	// And TS is slower in absolute terms at every size.
	for i := range bc {
		if bc[i].MeanCycles >= ts[i].MeanCycles {
			t.Fatalf("BC not faster than TS at d=%d", bc[i].D)
		}
	}
}

func TestFig06DynamicTimingWins(t *testing.T) {
	rows := Fig06(tctx, []int{12}, 10, 1)
	var conv, dyn ConvergenceRow
	for _, r := range rows {
		if strings.Contains(r.Label, "dynamic") {
			dyn = r
		} else {
			conv = r
		}
	}
	if dyn.MeanCycles >= conv.MeanCycles {
		t.Fatalf("dynamic timing slower: %v vs %v cycles", dyn.MeanCycles, conv.MeanCycles)
	}
	if dyn.MeanPackets >= conv.MeanPackets {
		t.Fatalf("dynamic timing chattier: %v vs %v packets", dyn.MeanPackets, conv.MeanPackets)
	}
}

func TestFig07RandomPairingEliminatesDeadlock(t *testing.T) {
	rows := Fig07(tctx, []int{100}, 10, 1)
	var with, without Fig07Row
	for _, r := range rows {
		if r.RandomPairing {
			with = r
		} else {
			without = r
		}
	}
	if with.MeanWorst >= 2 {
		t.Fatalf("with pairing, residual %.2f coins", with.MeanWorst)
	}
	if without.MeanWorst < 5*with.MeanWorst {
		t.Fatalf("without pairing should be much worse: %.2f vs %.2f",
			without.MeanWorst, with.MeanWorst)
	}
	if with.WithinOneCoin != with.Trials {
		t.Fatalf("with pairing only %d/%d within one coin", with.WithinOneCoin, with.Trials)
	}
}

func TestFig08HeterogeneityMonotone(t *testing.T) {
	rows := Fig08(tctx, []int{8}, []int{1, 8}, 5, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MeanStartErr <= rows[0].MeanStartErr {
		t.Fatal("start error did not grow with heterogeneity")
	}
	if rows[1].MeanCycles <= rows[0].MeanCycles {
		t.Fatal("convergence did not lengthen with heterogeneity")
	}
}

func TestFig13CoversAllAccelerators(t *testing.T) {
	pts := Fig13()
	seen := map[string]int{}
	for _, p := range pts {
		seen[p.Accel]++
		if p.V <= 0 || p.FMHz <= 0 || p.PmW <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("accelerators covered = %v", seen)
	}
}

func TestFig16WritesTraces(t *testing.T) {
	bufs := map[string]*bytes.Buffer{}
	rows := Fig16(tctx, 1, func(name string) io.Writer {
		b := &bytes.Buffer{}
		bufs[name] = b
		return b
	})
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 schemes x 2 scenarios)", len(rows))
	}
	if len(bufs) != 6 {
		t.Fatalf("trace files = %d", len(bufs))
	}
	for name, b := range bufs {
		if !strings.HasPrefix(b.String(), "cycle,") {
			t.Fatalf("%s: malformed CSV", name)
		}
	}
}

func TestFig17BlitzCoinWinsEveryCell(t *testing.T) {
	rows := Fig17(tctx, 1)
	type key struct {
		budget float64
		wl     string
	}
	cells := map[key]map[string]SoCRow{}
	for _, r := range rows {
		k := key{r.BudgetMW, r.Workload}
		if cells[k] == nil {
			cells[k] = map[string]SoCRow{}
		}
		cells[k][r.Scheme] = r
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for k, c := range cells {
		bc, crr := c["BC"], c["C-RR"]
		if bc.Res.ExecCycles >= crr.Res.ExecCycles {
			t.Fatalf("%v: BC %v not faster than C-RR %v", k,
				bc.Res.ExecMicros(), crr.Res.ExecMicros())
		}
		if bc.Res.MeanResponseMicros() >= c["BC-C"].Res.MeanResponseMicros() {
			t.Fatalf("%v: BC response not fastest", k)
		}
	}
}

func TestFig19UtilizationAndGains(t *testing.T) {
	rows := Fig19(tctx, 200, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputGainPct <= 0 {
			t.Fatalf("%d-acc: BC not faster than static (%.1f%%)",
				r.Accelerators, r.ThroughputGainPct)
		}
	}
	// The concurrent 7-accelerator phase uses most of the budget.
	if rows[0].UtilizationPct < 70 {
		t.Fatalf("7-acc utilization %.1f%%, want high", rows[0].UtilizationPct)
	}
}

func TestFig20OrderingHolds(t *testing.T) {
	rows := Fig20(tctx, 200, 1)
	byScheme := map[string]Fig20Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	bc := byScheme["BC"].MeanResponseUs
	if bc <= 0 {
		t.Fatal("BC recorded no responses")
	}
	if bc >= byScheme["BC-C"].MeanResponseUs || bc >= byScheme["C-RR"].MeanResponseUs {
		t.Fatalf("BC (%.2fus) not fastest: %+v", bc, rows)
	}
}

func TestFig21FitMatchesPaperShape(t *testing.T) {
	models := FitScalingModels(tctx, 1)
	bc, ok := models["BC"]
	if !ok {
		t.Fatal("BC not fitted")
	}
	// tau_BC within a factor of ~3 of the paper's 0.20 us.
	if bc.Tau < 0.06 || bc.Tau > 0.7 {
		t.Fatalf("tau_BC = %.3f us, want near 0.20", bc.Tau)
	}
	// BC supports several times more accelerators than the centralized
	// schemes at Tw = 7 ms.
	for _, name := range []string{"BC-C", "C-RR"} {
		m, ok := models[name]
		if !ok {
			t.Fatalf("%s not fitted", name)
		}
		if ratio := bc.NMax(7000) / m.NMax(7000); ratio < 3 {
			t.Fatalf("BC/%s Nmax ratio %.1f, want >> 1", name, ratio)
		}
	}
}

func TestFig01SupportBoundary(t *testing.T) {
	rows := Fig01([]float64{10, 1000}, []float64{20})
	for _, r := range rows {
		// Support must match the definition T(N) < Tw/N exactly.
		want := r.ResponseUs < r.IntervalUs
		if r.Supported != want {
			t.Fatalf("inconsistent support flag: %+v", r)
		}
	}
}

func TestTable1RowsComplete(t *testing.T) {
	rows := Table1(tctx, 1)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	var bcResp float64
	for _, r := range rows {
		if r.ResponseUs <= 0 {
			t.Fatalf("%s: no response measured", r.Reference)
		}
		if r.Reference == "BC" {
			bcResp = r.ResponseUs
		}
		if len(r.String()) == 0 {
			t.Fatal("empty row render")
		}
	}
	for _, r := range rows {
		if r.Reference != "BC" && r.ResponseUs <= bcResp {
			t.Fatalf("%s response %.2f not slower than BC %.2f",
				r.Reference, r.ResponseUs, bcResp)
		}
	}
}

func TestAPvsRPDirection(t *testing.T) {
	rows := APvsRP(tctx, []float64{60, 120}, 1)
	for _, r := range rows {
		if r.RPImprovementPct <= 0 {
			t.Fatalf("RP not better at %v mW: %+v", r.BudgetMW, r)
		}
	}
}

func TestFig19CoinsConvergeWithinOneCoin(t *testing.T) {
	rows := Fig19Coins(200, 1)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 active tiles", len(rows))
	}
	for _, r := range rows {
		if r.Residual >= 1.5 {
			t.Fatalf("tile %d residual %.2f coins, want < 1.5", r.Tile, r.Residual)
		}
		if r.After == r.Before && r.Residual > 1 {
			t.Fatalf("tile %d never moved", r.Tile)
		}
	}
}

func TestNoPMOverheadSmall(t *testing.T) {
	r := NoPMOverhead(1)
	// Paper: < 2% difference between PM and No-PM tiles. Our PM machinery
	// adds actuation settling at task start; allow a slightly wider band.
	if r.OverheadPct < 0 || r.OverheadPct > 8 {
		t.Fatalf("PM overhead %.2f%%, want small: %+v", r.OverheadPct, r)
	}
}

func TestContentionGracefulDegradation(t *testing.T) {
	// Rates below NoC saturation; the CLI also sweeps the saturated
	// regime, where convergence slows by orders of magnitude but still
	// completes.
	rows := ContentionStudy(tctx, 8, []int{0, 30, 100}, 3, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Converged != r.Trials {
			t.Fatalf("bg=%d: only %d/%d converged", r.BackgroundPktPerKCycle, r.Converged, r.Trials)
		}
	}
	// Heavy background traffic may slow convergence but not by orders of
	// magnitude.
	if rows[2].MeanCycles > rows[0].MeanCycles*10 {
		t.Fatalf("contention collapse: %v -> %v cycles", rows[0].MeanCycles, rows[2].MeanCycles)
	}
}

func TestSnakeIndexAdjacency(t *testing.T) {
	m := mesh.Square(4, false)
	for pos := 1; pos < 16; pos++ {
		a, b := snakeIndex(m, pos-1), snakeIndex(m, pos)
		if m.HopDistance(a, b) != 1 {
			t.Fatalf("snake positions %d,%d map to non-adjacent tiles %d,%d", pos-1, pos, a, b)
		}
	}
}

func TestFig20TraceTransition(t *testing.T) {
	rec, resp := Fig20Trace(200, 1)
	us := float64(resp) / 800
	// The paper measures 0.68 us for this exact transition on silicon;
	// our model lands within a factor of ~3.
	if us <= 0 || us > 2.5 {
		t.Fatalf("transition response %.2f us, want sub-microsecond scale", us)
	}
	// NVDLA relinquishes everything; survivors gain.
	nvdla := rec.Series("t00-NVDLA")
	if nvdla.Last() > 1 {
		t.Fatalf("NVDLA kept %.0f coins after its task ended", nvdla.Last())
	}
	first := nvdla.At(0)
	if first <= 0 {
		t.Fatal("NVDLA trace lacks the pre-transition allocation")
	}
	gained := 0
	for _, name := range rec.Names() {
		if name == "t00-NVDLA" {
			continue
		}
		s := rec.Series(name)
		if s.Last() > s.At(0) {
			gained++
		}
	}
	if gained < 4 {
		t.Fatalf("only %d tiles gained coins from the redistribution", gained)
	}
}
