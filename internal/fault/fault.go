// Package fault is the deterministic fault-injection subsystem of the
// robustness extension. BlitzCoin's central claim (Sec. III, Sec. VI) is
// that decentralization removes the single point of failure of centralized
// power managers; this package supplies the perturbations that claim must be
// tested against, in the spirit of fault-aware DPM co-simulation: message
// loss, duplication and delay on the PM plane, fail-stop links, fail-stop
// and fail-slow tiles, and stuck coin counters.
//
// Every fault is seeded and scheduled, so a (config, seed) pair reproduces a
// bit-identical fault schedule across runs — the same "same seed, same run"
// convention the Monte Carlo experiments rest on. The injector itself is
// passive: the NoC consults it per packet (PacketVerdict), and the timed
// faults (kills, stuck counters, slow-downs, link failures) are armed as
// discrete events on the simulation kernel, notifying whichever models
// registered interest.
package fault

import (
	"fmt"
	"sort"

	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
)

// TileFault schedules a per-tile fault activation.
type TileFault struct {
	Tile int
	At   sim.Cycles
}

// SlowFault schedules a fail-slow activation: from At on, the tile's
// exchange FSM runs Factor times slower (its intervals stretch by Factor).
type SlowFault struct {
	Tile   int
	At     sim.Cycles
	Factor float64 // > 1
}

// LinkFault schedules a fail-stop of the mesh link between two adjacent
// tiles. Both directions fail: a broken physical channel carries nothing
// either way. Packets routed across the link after At are dropped.
type LinkFault struct {
	A, B int
	At   sim.Cycles
}

// Config declares one run's fault model. The zero value injects nothing.
type Config struct {
	// Seed drives the per-packet random faults. Two runs with the same
	// Config (and the same traffic) see the same fault schedule.
	Seed uint64

	// Plane selects the NoC plane targeted by the random packet faults
	// below; PM traffic rides plane 5. Negative means "all planes".
	// The zero value targets plane 5 via DefaultPlane in withDefaults.
	Plane int

	// DropRate, DupRate and DelayRate are per-packet probabilities on the
	// target plane. Dropped packets vanish in the fabric; duplicated ones
	// deliver twice; delayed ones arrive up to DelayMax cycles late.
	DropRate  float64
	DupRate   float64
	DelayRate float64
	// DelayMax bounds the extra delivery delay; zero selects 64 cycles.
	DelayMax sim.Cycles

	// TileKills fail-stops tiles: from At on, the tile's PM logic is dead —
	// it initiates nothing and packets addressed to it vanish.
	TileKills []TileFault
	// StuckCounters freeze tiles' coin registers at their value at At:
	// subsequent updates are absorbed, silently leaking (or duplicating)
	// coins until the conservation audit repairs the pool.
	StuckCounters []TileFault
	// SlowTiles apply fail-slow factors to tiles' exchange cadence.
	SlowTiles []SlowFault
	// LinkFails fail-stops mesh links.
	LinkFails []LinkFault
}

// DefaultPlane is the PM plane (plane 5) targeted when Config.Plane is 0.
const DefaultPlane = 5

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.DupRate > 0 || c.DelayRate > 0 ||
		len(c.TileKills) > 0 || len(c.StuckCounters) > 0 ||
		len(c.SlowTiles) > 0 || len(c.LinkFails) > 0
}

// withDefaults normalizes the config and panics on invalid settings.
func (c Config) withDefaults() Config {
	if c.DropRate < 0 || c.DropRate > 1 || c.DupRate < 0 || c.DupRate > 1 ||
		c.DelayRate < 0 || c.DelayRate > 1 {
		panic(fmt.Sprintf("fault: rates must be probabilities: drop=%v dup=%v delay=%v",
			c.DropRate, c.DupRate, c.DelayRate))
	}
	if c.Plane == 0 {
		c.Plane = DefaultPlane
	}
	if c.DelayMax == 0 {
		c.DelayMax = 64
	}
	for _, s := range c.SlowTiles {
		if s.Factor <= 1 {
			panic(fmt.Sprintf("fault: fail-slow factor %v must be > 1", s.Factor))
		}
	}
	return c
}

// Stats counts the faults actually injected during a run.
type Stats struct {
	Drops     uint64 // random per-packet drops
	Dups      uint64
	Delays    uint64
	LinkDrops uint64 // packets lost on failed links
	DeadDrops uint64 // packets addressed to dead tiles
	Killed    int    // tiles fail-stopped so far
	Stuck     int    // counters frozen so far
	Slowed    int
	LinksDown int
}

// Verdict is the injector's ruling on one packet at send time.
type Verdict struct {
	// Drop discards the packet: it is charged injection but never delivers.
	Drop bool
	// Dup delivers the packet twice (the duplicate one cycle behind).
	Dup bool
	// ExtraDelay postpones delivery by the given number of cycles.
	ExtraDelay sim.Cycles
}

// Injector evaluates the fault model. Build with NewInjector, register any
// listeners, attach it to the NoC, then Arm it on the simulation kernel.
type Injector struct {
	cfg Config
	src *rng.Source

	deadTiles  map[int]bool
	stuckTiles map[int]bool
	slowTiles  map[int]float64
	deadLinks  map[[2]int]bool

	onKill  []func(tile int)
	onStuck []func(tile int)
	onSlow  []func(tile int, factor float64)

	armed bool
	stats Stats
}

// NewInjector builds an injector for the given fault model.
func NewInjector(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:        cfg,
		src:        rng.New(cfg.Seed),
		deadTiles:  make(map[int]bool),
		stuckTiles: make(map[int]bool),
		slowTiles:  make(map[int]float64),
		deadLinks:  make(map[[2]int]bool),
	}
}

// Config returns the normalized fault model.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// OnTileKill registers a callback for tile fail-stop activations. Multiple
// listeners (e.g. the coin emulator and the SoC runner) may register; they
// fire in registration order.
func (in *Injector) OnTileKill(fn func(tile int)) { in.onKill = append(in.onKill, fn) }

// OnStuckCounter registers a callback for coin-register freeze activations.
func (in *Injector) OnStuckCounter(fn func(tile int)) { in.onStuck = append(in.onStuck, fn) }

// OnFailSlow registers a callback for fail-slow activations.
func (in *Injector) OnFailSlow(fn func(tile int, factor float64)) {
	in.onSlow = append(in.onSlow, fn)
}

// Arm schedules every timed fault on the kernel. Call exactly once, after
// all listeners are registered and before the simulation runs.
func (in *Injector) Arm(k *sim.Kernel) {
	if in.armed {
		panic("fault: injector armed twice")
	}
	in.armed = true
	// Sort each schedule by (time, tile) so arming order — and therefore
	// same-cycle event order — is independent of config slice order.
	kills := append([]TileFault(nil), in.cfg.TileKills...)
	sort.Slice(kills, func(i, j int) bool {
		if kills[i].At != kills[j].At {
			return kills[i].At < kills[j].At
		}
		return kills[i].Tile < kills[j].Tile
	})
	for _, f := range kills {
		f := f
		k.At(f.At, func() { in.killTile(f.Tile) })
	}
	stuck := append([]TileFault(nil), in.cfg.StuckCounters...)
	sort.Slice(stuck, func(i, j int) bool {
		if stuck[i].At != stuck[j].At {
			return stuck[i].At < stuck[j].At
		}
		return stuck[i].Tile < stuck[j].Tile
	})
	for _, f := range stuck {
		f := f
		k.At(f.At, func() { in.stickCounter(f.Tile) })
	}
	slows := append([]SlowFault(nil), in.cfg.SlowTiles...)
	sort.Slice(slows, func(i, j int) bool {
		if slows[i].At != slows[j].At {
			return slows[i].At < slows[j].At
		}
		return slows[i].Tile < slows[j].Tile
	})
	for _, f := range slows {
		f := f
		k.At(f.At, func() { in.slowTile(f.Tile, f.Factor) })
	}
	links := append([]LinkFault(nil), in.cfg.LinkFails...)
	sort.Slice(links, func(i, j int) bool {
		if links[i].At != links[j].At {
			return links[i].At < links[j].At
		}
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	for _, f := range links {
		f := f
		k.At(f.At, func() { in.failLink(f.A, f.B) })
	}
}

func (in *Injector) killTile(tile int) {
	if in.deadTiles[tile] {
		return
	}
	in.deadTiles[tile] = true
	in.stats.Killed++
	for _, fn := range in.onKill {
		fn(tile)
	}
}

func (in *Injector) stickCounter(tile int) {
	if in.stuckTiles[tile] {
		return
	}
	in.stuckTiles[tile] = true
	in.stats.Stuck++
	for _, fn := range in.onStuck {
		fn(tile)
	}
}

func (in *Injector) slowTile(tile int, factor float64) {
	in.slowTiles[tile] = factor
	in.stats.Slowed++
	for _, fn := range in.onSlow {
		fn(tile, factor)
	}
}

func (in *Injector) failLink(a, b int) {
	in.deadLinks[[2]int{a, b}] = true
	in.deadLinks[[2]int{b, a}] = true
	in.stats.LinksDown++
}

// TileDead reports whether a tile has fail-stopped.
func (in *Injector) TileDead(tile int) bool { return in.deadTiles[tile] }

// LinkFailed reports whether the directed link a->b has fail-stopped.
func (in *Injector) LinkFailed(a, b int) bool { return in.deadLinks[[2]int{a, b}] }

// PacketVerdict rules on one packet about to enter the network. route is
// the tile-index path including both endpoints. The ruling consumes random
// draws only for the rate faults on the targeted plane, so fault-free
// planes see no RNG churn and the schedule is reproducible.
func (in *Injector) PacketVerdict(plane, src, dst int, route []int) Verdict {
	var v Verdict
	// Fail-stop tiles: a dead destination swallows everything sent to it.
	if in.deadTiles[dst] {
		in.stats.DeadDrops++
		v.Drop = true
		return v
	}
	// Fail-stop links: a packet whose XY route crosses a dead link is lost
	// in the fabric.
	for i := 1; i < len(route); i++ {
		if in.deadLinks[[2]int{route[i-1], route[i]}] {
			in.stats.LinkDrops++
			v.Drop = true
			return v
		}
	}
	if plane != in.cfg.Plane && in.cfg.Plane >= 0 {
		return v
	}
	if in.cfg.DropRate > 0 && in.src.Float64() < in.cfg.DropRate {
		in.stats.Drops++
		v.Drop = true
		return v
	}
	if in.cfg.DupRate > 0 && in.src.Float64() < in.cfg.DupRate {
		in.stats.Dups++
		v.Dup = true
	}
	if in.cfg.DelayRate > 0 && in.src.Float64() < in.cfg.DelayRate {
		in.stats.Delays++
		v.ExtraDelay = 1 + sim.Cycles(in.src.Int63n(int64(in.cfg.DelayMax)))
	}
	return v
}
