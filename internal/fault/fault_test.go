package fault

import (
	"testing"

	"blitzcoin/internal/sim"
)

// Two injectors with the same config must rule identically on the same
// packet sequence — the seeded-determinism convention of DESIGN.md.
func TestVerdictDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.05}
	a := NewInjector(cfg)
	b := NewInjector(cfg)
	route := []int{0, 1, 2}
	for i := 0; i < 5000; i++ {
		va := a.PacketVerdict(5, 0, 2, route)
		vb := b.PacketVerdict(5, 0, 2, route)
		if va != vb {
			t.Fatalf("packet %d: verdicts diverged: %+v vs %+v", i, va, vb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Drops == 0 || a.Stats().Dups == 0 || a.Stats().Delays == 0 {
		t.Fatalf("expected some of each fault over 5000 packets: %+v", a.Stats())
	}
}

// Rate faults target only the configured plane; other planes never consume
// RNG draws, so their traffic cannot perturb the fault schedule.
func TestVerdictPlaneFilter(t *testing.T) {
	in := NewInjector(Config{Seed: 7, DropRate: 0.5})
	route := []int{0, 1}
	for i := 0; i < 1000; i++ {
		if v := in.PacketVerdict(0, 0, 1, route); v != (Verdict{}) {
			t.Fatalf("plane 0 packet got verdict %+v", v)
		}
	}
	if in.Stats().Drops != 0 {
		t.Fatalf("plane filter leaked drops: %+v", in.Stats())
	}
	// Negative plane targets everything.
	all := NewInjector(Config{Seed: 7, Plane: -1, DropRate: 0.5})
	drops := 0
	for i := 0; i < 1000; i++ {
		if all.PacketVerdict(0, 0, 1, route).Drop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("plane=-1 drop rate off: %d/1000", drops)
	}
}

func TestScheduledFaults(t *testing.T) {
	k := &sim.Kernel{}
	in := NewInjector(Config{
		TileKills:     []TileFault{{Tile: 3, At: 100}, {Tile: 1, At: 50}},
		StuckCounters: []TileFault{{Tile: 2, At: 60}},
		SlowTiles:     []SlowFault{{Tile: 4, At: 70, Factor: 2}},
		LinkFails:     []LinkFault{{A: 0, B: 1, At: 80}},
	})
	var kills, stucks []int
	var slows []int
	in.OnTileKill(func(tile int) { kills = append(kills, tile) })
	in.OnStuckCounter(func(tile int) { stucks = append(stucks, tile) })
	in.OnFailSlow(func(tile int, f float64) {
		if f != 2 {
			t.Fatalf("factor %v", f)
		}
		slows = append(slows, tile)
	})
	in.Arm(k)

	k.Run(55)
	if in.TileDead(3) || !in.TileDead(1) {
		t.Fatalf("at 55: dead(1)=%v dead(3)=%v", in.TileDead(1), in.TileDead(3))
	}
	if in.LinkFailed(0, 1) {
		t.Fatal("link failed early")
	}
	k.Run(200)
	if !in.TileDead(3) || !in.LinkFailed(0, 1) || !in.LinkFailed(1, 0) {
		t.Fatal("scheduled faults did not all fire")
	}
	if len(kills) != 2 || kills[0] != 1 || kills[1] != 3 {
		t.Fatalf("kill order %v", kills)
	}
	if len(stucks) != 1 || stucks[0] != 2 || len(slows) != 1 || slows[0] != 4 {
		t.Fatalf("stuck %v slow %v", stucks, slows)
	}
	st := in.Stats()
	if st.Killed != 2 || st.Stuck != 1 || st.Slowed != 1 || st.LinksDown != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Dead destinations and failed links drop packets regardless of plane.
func TestStructuralDrops(t *testing.T) {
	k := &sim.Kernel{}
	in := NewInjector(Config{
		TileKills: []TileFault{{Tile: 9, At: 10}},
		LinkFails: []LinkFault{{A: 4, B: 5, At: 10}},
	})
	in.Arm(k)
	k.Run(20)

	if v := in.PacketVerdict(0, 0, 9, []int{0, 9}); !v.Drop {
		t.Fatal("packet to dead tile not dropped")
	}
	if v := in.PacketVerdict(2, 3, 6, []int{3, 4, 5, 6}); !v.Drop {
		t.Fatal("packet across failed link not dropped")
	}
	if v := in.PacketVerdict(2, 6, 3, []int{6, 5, 4, 3}); !v.Drop {
		t.Fatal("reverse direction of failed link not dropped")
	}
	if v := in.PacketVerdict(2, 0, 3, []int{0, 3}); v.Drop {
		t.Fatal("healthy route dropped")
	}
	st := in.Stats()
	if st.DeadDrops != 1 || st.LinkDrops != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// Arming order must not depend on config slice order: same-cycle faults are
// sorted by tile.
func TestArmOrderIndependence(t *testing.T) {
	run := func(kills []TileFault) []int {
		k := &sim.Kernel{}
		in := NewInjector(Config{TileKills: kills})
		var order []int
		in.OnTileKill(func(tile int) { order = append(order, tile) })
		in.Arm(k)
		k.Run(100)
		return order
	}
	a := run([]TileFault{{Tile: 5, At: 10}, {Tile: 2, At: 10}, {Tile: 8, At: 10}})
	b := run([]TileFault{{Tile: 8, At: 10}, {Tile: 5, At: 10}, {Tile: 2, At: 10}})
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lengths %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orders differ: %v vs %v", a, b)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad rate", func() { NewInjector(Config{DropRate: 1.5}) })
	mustPanic("bad factor", func() { NewInjector(Config{SlowTiles: []SlowFault{{Tile: 0, Factor: 0.5}}}) })
	mustPanic("double arm", func() {
		in := NewInjector(Config{})
		k := &sim.Kernel{}
		in.Arm(k)
		in.Arm(k)
	})
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{DropRate: 0.01}).Enabled() {
		t.Fatal("drop config reports disabled")
	}
}
