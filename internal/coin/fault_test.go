package coin

import (
	"testing"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/rng"
)

// runFaulted builds, initializes, and runs an emulator with the given fault
// model, returning both the result and the emulator for state inspection.
func runFaulted(t *testing.T, cfg Config, fc *fault.Config, seed uint64, coinsPerTile int64) (Result, *Emulator) {
	t.Helper()
	cfg.Faults = fc
	src := rng.New(seed)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	maxes := UniformMaxes(n, 32)
	a := RandomAssignment(src, maxes, int64(n)*coinsPerTile)
	e.Init(a)
	return e.Run(), e
}

// Acceptance criterion: with a 1% plane-5 drop rate on a 10x10 torus, the
// hardened emulator still converges (Err < 1.5) and the pool is exactly
// conserved once the audit has repaired the leaked coins.
func TestConvergesUnderOnePercentDrops10x10(t *testing.T) {
	cfg := baseConfig(10)
	cfg.MaxCycles = 400_000
	res, e := runFaulted(t, cfg, &fault.Config{Seed: 1, DropRate: 0.01}, 1, 16)
	if res.Dropped == 0 {
		t.Fatalf("fault model injected no drops: %+v", res)
	}
	if res.FinalErr >= 1.5 {
		t.Fatalf("did not converge under drops: FinalErr=%v (%+v)", res.FinalErr, res)
	}
	if !res.Conserved() {
		t.Fatalf("pool not conserved after repair: violation=%d minted=%d burned=%d",
			res.PoolViolation, res.CoinsMinted, res.CoinsBurned)
	}
	if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
		t.Fatalf("stranded flags at end of run: busy=%d locked=%d", busy, locked)
	}
}

// Killing tiles mid-run must not break the survivors: the audit re-mints the
// dead tiles' stranded coins onto live tiles, the error metric re-converges
// over the survivors, and no flag stays stuck.
func TestTileKillRecovery(t *testing.T) {
	for _, mode := range []Mode{OneWay, FourWay} {
		cfg := baseConfig(5)
		cfg.Mode = mode
		cfg.MaxCycles = 300_000
		fc := &fault.Config{
			TileKills: []fault.TileFault{{Tile: 6, At: 3000}, {Tile: 12, At: 5000}, {Tile: 18, At: 5000}},
		}
		res, e := runFaulted(t, cfg, fc, 3, 10)
		if res.TilesDead != 3 {
			t.Fatalf("%v: TilesDead=%d, want 3", mode, res.TilesDead)
		}
		if !res.Conserved() {
			t.Fatalf("%v: pool not repaired after kills: violation=%d minted=%d",
				mode, res.PoolViolation, res.CoinsMinted)
		}
		if res.CoinsMinted == 0 {
			t.Fatalf("%v: kills strand coins, audit should have minted: %+v", mode, res)
		}
		if res.FinalErr >= cfg.Threshold {
			t.Fatalf("%v: survivors did not re-converge: FinalErr=%v", mode, res.FinalErr)
		}
		if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
			t.Fatalf("%v: stranded flags: busy=%d locked=%d", mode, busy, locked)
		}
		if !e.TileDead(6) || !e.TileDead(12) || !e.TileDead(18) {
			t.Fatalf("%v: kill schedule did not apply", mode)
		}
	}
}

// A 4-way center that dies can leave joined neighbors locked; the watchdog
// must free them so the run still quiesces cleanly.
func TestFourWayLockWatchdog(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Mode = FourWay
	cfg.RandomPairing = false
	cfg.MaxCycles = 200_000
	// Kill several tiles at staggered times to maximize the chance some die
	// exactly between collecting status replies and pushing updates.
	fc := &fault.Config{
		TileKills: []fault.TileFault{
			{Tile: 1, At: 1111}, {Tile: 6, At: 2222}, {Tile: 11, At: 3333},
		},
		DropRate: 0.05, Seed: 7,
	}
	res, e := runFaulted(t, cfg, fc, 4, 12)
	if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
		t.Fatalf("stranded flags despite watchdog: busy=%d locked=%d (%+v)", busy, locked, res)
	}
	if !res.Conserved() {
		t.Fatalf("pool not repaired: violation=%d", res.PoolViolation)
	}
}

// Duplicated update packets apply their delta twice, drifting the pool; the
// audit must repair the drift so the global cap is re-enforced. A hotspot
// start keeps nonzero deltas flowing across the whole mesh, so duplications
// are guaranteed to strike coin-carrying packets (a converged mesh only
// exchanges zero-delta keep-alives, which duplicate harmlessly).
func TestDuplicationBurned(t *testing.T) {
	cfg := baseConfig(5)
	cfg.MaxCycles = 200_000
	cfg.Faults = &fault.Config{Seed: 5, DupRate: 0.25}
	src := rng.New(5)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	e.Init(HotspotAssignment(src, UniformMaxes(n, 32), int64(n)*10))
	res := e.Run()
	if e.NetworkStats().Duplicated == 0 {
		t.Fatalf("fault model injected no duplicates: %+v", res)
	}
	if res.AuditRepairs == 0 {
		t.Fatalf("duplicated coin-carrying packets should trigger audit repairs: %+v", res)
	}
	if !res.Conserved() {
		t.Fatalf("pool not repaired after duplication: violation=%d minted=%d burned=%d",
			res.PoolViolation, res.CoinsMinted, res.CoinsBurned)
	}
}

// A stuck coin register absorbs updates silently; the audit repairs the
// drift on its peers and the run still ends conserved.
func TestStuckCounterAudited(t *testing.T) {
	cfg := baseConfig(4)
	cfg.MaxCycles = 150_000
	fc := &fault.Config{StuckCounters: []fault.TileFault{{Tile: 5, At: 500}}}
	res, _ := runFaulted(t, cfg, fc, 6, 10)
	if !res.Conserved() {
		t.Fatalf("pool not repaired around stuck register: violation=%d", res.PoolViolation)
	}
}

// Link fail-stop: traffic reroutes nowhere (XY routing is static), so
// affected exchanges time out and the partners are eventually pruned. The
// pool must stay conserved and no tile may stay busy forever.
func TestLinkFailureRecovery(t *testing.T) {
	cfg := baseConfig(4)
	cfg.MaxCycles = 200_000
	fc := &fault.Config{LinkFails: []fault.LinkFault{
		{A: 5, B: 6, At: 2000}, {A: 9, B: 10, At: 2000},
	}}
	res, e := runFaulted(t, cfg, fc, 7, 10)
	if !res.Conserved() {
		t.Fatalf("pool not conserved under link failure: violation=%d", res.PoolViolation)
	}
	if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
		t.Fatalf("stranded flags: busy=%d locked=%d", busy, locked)
	}
}

// Delay faults stress the timeout machinery: late acks must be recognized as
// stale without losing their coins.
func TestDelayedPacketsConserve(t *testing.T) {
	cfg := baseConfig(5)
	cfg.MaxCycles = 200_000
	fc := &fault.Config{Seed: 9, DelayRate: 0.2, DelayMax: 512}
	res, e := runFaulted(t, cfg, fc, 8, 10)
	if !res.Conserved() {
		t.Fatalf("pool not conserved under delays: violation=%d", res.PoolViolation)
	}
	if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
		t.Fatalf("stranded flags: busy=%d locked=%d", busy, locked)
	}
	if res.FinalErr >= cfg.Threshold {
		t.Fatalf("did not converge under delays: FinalErr=%v", res.FinalErr)
	}
}

// Fail-slow tiles stretch their exchange cadence but must not break
// convergence or conservation.
func TestFailSlowTiles(t *testing.T) {
	cfg := baseConfig(4)
	cfg.MaxCycles = 200_000
	fc := &fault.Config{SlowTiles: []fault.SlowFault{
		{Tile: 3, At: 100, Factor: 8}, {Tile: 10, At: 100, Factor: 8},
	}}
	res, _ := runFaulted(t, cfg, fc, 10, 10)
	if !res.Conserved() {
		t.Fatalf("pool not conserved with fail-slow tiles: violation=%d", res.PoolViolation)
	}
	if res.FinalErr >= cfg.Threshold {
		t.Fatalf("did not converge with fail-slow tiles: FinalErr=%v", res.FinalErr)
	}
}

// Satellite: seeded-determinism regression. The same fault seed must
// reproduce bit-identical fault schedules and Result counters across runs —
// the "same seed, same run" convention extended to the fault layer.
func TestSeededFaultDeterminism(t *testing.T) {
	run := func() Result {
		cfg := baseConfig(6)
		cfg.MaxCycles = 150_000
		fc := &fault.Config{
			Seed:      42,
			DropRate:  0.02,
			DupRate:   0.01,
			DelayRate: 0.01,
			// All fault times are below the quiescence window (64x32 = 2048
			// cycles), so they are guaranteed to fire before the run can end.
			TileKills: []fault.TileFault{{Tile: 7, At: 1000}, {Tile: 20, At: 1800}},
			LinkFails: []fault.LinkFault{{A: 14, B: 15, At: 800}},
		}
		res, _ := runFaulted(t, cfg, fc, 99, 12)
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical fault seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.TilesDead != 2 {
		t.Fatalf("fault schedule did not execute: %+v", a)
	}
}

// Hardening must be inert when no faults are configured: a hardened-off run
// and the historical emulator path produce identical results (covered by
// TestDeterministicRuns), and a zero-fault injector must not change them
// either, because the injector draws from its own RNG stream.
func TestZeroFaultConfigMatchesHealthyRun(t *testing.T) {
	healthy := runOnce(t, baseConfig(5), 11, 10)
	cfg := baseConfig(5)
	// A nil-fault config attaches nothing: identical by construction.
	cfg.Faults = &fault.Config{}
	res := runOnce2(t, cfg, 11, 10)
	if healthy != res {
		t.Fatalf("zero-fault config perturbed the run:\n%+v\n%+v", healthy, res)
	}
}

func runOnce2(t *testing.T, cfg Config, seed uint64, coinsPerTile int64) Result {
	t.Helper()
	src := rng.New(seed)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	maxes := UniformMaxes(n, 32)
	a := RandomAssignment(src, maxes, int64(n)*coinsPerTile)
	e.Init(a)
	return e.Run()
}
