package coin

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 4}, {5, 2, 3}, {4, 2, 2}, {-7, 2, -4}, {-5, 2, -3},
		{0, 5, 0}, {9, 3, 3}, {10, 4, 3}, {11, 4, 3}, {-10, 4, -3},
	}
	for _, c := range cases {
		if got := roundDiv(c.a, c.b); got != c.want {
			t.Fatalf("roundDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRoundDivPanicsOnBadDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("roundDiv(1,0) did not panic")
		}
	}()
	roundDiv(1, 0)
}

func TestPairSplitFig2Example(t *testing.T) {
	// Fig. 2 illustrates one pass from a center tile with has:max of 3:8.
	// With a partner at 5:4 (ratio 1.25 vs 0.375), total 8 coins over
	// total max 12 gives targets 5.33 and 2.67.
	newI, newJ := PairSplit(3, 8, 5, 4)
	if newI+newJ != 8 {
		t.Fatalf("sum not conserved: %d+%d", newI, newJ)
	}
	if newI != 5 || newJ != 3 {
		t.Fatalf("split = %d,%d want 5,3", newI, newJ)
	}
}

func TestPairSplitInactivePartner(t *testing.T) {
	// A tile whose execution ended has max=0 and must relinquish all coins
	// (Sec. III-A).
	newI, newJ := PairSplit(4, 0, 2, 8)
	if newI != 0 || newJ != 6 {
		t.Fatalf("inactive i: got %d,%d want 0,6", newI, newJ)
	}
	newI, newJ = PairSplit(4, 8, 2, 0)
	if newI != 6 || newJ != 0 {
		t.Fatalf("inactive j: got %d,%d want 6,0", newI, newJ)
	}
	newI, newJ = PairSplit(4, 0, 2, 0)
	if newI != 4 || newJ != 2 {
		t.Fatalf("both inactive: got %d,%d want unchanged 4,2", newI, newJ)
	}
}

func TestPairSplitConservationProperty(t *testing.T) {
	f := func(hi, hj int16, mi, mj uint8) bool {
		newI, newJ := PairSplit(int64(hi), int64(mi), int64(hj), int64(mj))
		return newI+newJ == int64(hi)+int64(hj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPairSplitRatioEqualization(t *testing.T) {
	// After a split of non-negative coins between two active tiles, the
	// ratios differ by at most the 1-coin quantization.
	f := func(hi, hj uint16, mi, mj uint8) bool {
		if mi == 0 || mj == 0 {
			return true
		}
		newI, newJ := PairSplit(int64(hi), int64(mi), int64(hj), int64(mj))
		ri := float64(newI) / float64(mi)
		rj := float64(newJ) / float64(mj)
		// The worst quantization error on each side is 0.5/max, scaled up
		// by the ideal-vs-rounded coin: allow one coin of slack per side.
		tol := 1.0/float64(mi) + 1.0/float64(mj)
		return math.Abs(ri-rj) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPairSplitBetweenness(t *testing.T) {
	// Sec. III-E: the final ratio beta' lies between the initial ratios.
	f := func(hi, hj uint16, mi, mj uint8) bool {
		if mi == 0 || mj == 0 {
			return true
		}
		bi := float64(hi) / float64(mi)
		bj := float64(hj) / float64(mj)
		lo, hi2 := math.Min(bi, bj), math.Max(bi, bj)
		newI, _ := PairSplit(int64(hi), int64(mi), int64(hj), int64(mj))
		bp := float64(newI) / float64(mi)
		slack := 1.0 / float64(mi) // one-coin rounding
		return bp >= lo-slack && bp <= hi2+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPairSplitErrorMonotonicityProperty(t *testing.T) {
	// The analytical core of Sec. III-E: with alpha held at the global
	// ratio of the pair, the summed error E_i + E_j never increases by
	// more than the quantization slack (exactly non-increasing in the
	// continuous case; rounding can add at most one coin of error).
	f := func(hi, hj uint16, mi, mj uint8) bool {
		sumHas := int64(hi) + int64(hj)
		sumMax := int64(mi) + int64(mj)
		before := TileError(int64(hi), int64(mi), sumHas, sumMax) +
			TileError(int64(hj), int64(mj), sumHas, sumMax)
		newI, newJ := PairSplit(int64(hi), int64(mi), int64(hj), int64(mj))
		after := TileError(newI, int64(mi), sumHas, sumMax) +
			TileError(newJ, int64(mj), sumHas, sumMax)
		return after <= before+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestPairSplitNegativeTransient(t *testing.T) {
	// Transient negative counts (Sec. IV-A sign bit) must not break the
	// arithmetic or conservation.
	newI, newJ := PairSplit(-3, 4, 9, 4)
	if newI+newJ != 6 {
		t.Fatalf("negative transient: sum %d, want 6", newI+newJ)
	}
	if newI != 3 || newJ != 3 {
		t.Fatalf("split = %d,%d want 3,3", newI, newJ)
	}
}

func TestGroupSplitConservesAndEqualizes(t *testing.T) {
	has := []int64{3, 5, 0, 8, 4} // center first
	max := []int64{8, 4, 4, 4, 4}
	out := GroupSplit(has, max)
	var sum int64
	for _, v := range out {
		sum += v
	}
	if sum != 20 {
		t.Fatalf("sum = %d, want 20", sum)
	}
	// alpha = 20/24; targets: center 6.67, neighbors 3.33.
	for i, v := range out {
		target := 20.0 * float64(max[i]) / 24.0
		if math.Abs(float64(v)-target) > 1.0 {
			t.Fatalf("tile %d got %d, target %.2f", i, v, target)
		}
	}
}

func TestGroupSplitAllInactive(t *testing.T) {
	has := []int64{3, 1, 2}
	out := GroupSplit(has, []int64{0, 0, 0})
	for i := range has {
		if out[i] != has[i] {
			t.Fatalf("all-inactive split changed allocation: %v", out)
		}
	}
}

func TestGroupSplitConservationProperty(t *testing.T) {
	f := func(h0, h1, h2, h3, h4 int16, m0, m1, m2, m3, m4 uint8) bool {
		has := []int64{int64(h0), int64(h1), int64(h2), int64(h3), int64(h4)}
		max := []int64{int64(m0), int64(m1), int64(m2), int64(m3), int64(m4)}
		var want int64
		for _, h := range has {
			want += h
		}
		out := GroupSplit(has, max)
		var got int64
		for _, v := range out {
			got += v
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestGroupSplitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched GroupSplit did not panic")
		}
	}()
	GroupSplit([]int64{1}, []int64{1, 2})
}

func TestGlobalError(t *testing.T) {
	// Perfectly proportional allocation has zero error.
	mean, worst := GlobalError([]int64{2, 4, 6}, []int64{1, 2, 3})
	if mean != 0 || worst != 0 {
		t.Fatalf("proportional: mean=%v worst=%v", mean, worst)
	}
	// All coins on one of two equal tiles: alpha=1, targets 4,4 -> errors 4,4.
	mean, worst = GlobalError([]int64{8, 0}, []int64{4, 4})
	if mean != 4 || worst != 4 {
		t.Fatalf("skewed: mean=%v worst=%v", mean, worst)
	}
	// Empty is zero.
	if m, w := GlobalError(nil, nil); m != 0 || w != 0 {
		t.Fatalf("empty: %v %v", m, w)
	}
}

func TestTargetZeroSumMax(t *testing.T) {
	if Target(5, 100, 0) != 0 {
		t.Fatal("target with sumMax=0 should be 0")
	}
}
