package coin

import (
	"testing"
	"testing/quick"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
)

// TestChurnConservationProperty drives the emulator through arbitrary
// sequences of activity changes interleaved with running time, and checks
// the invariant the whole design rests on: the coin pool is conserved
// exactly no matter how the targets churn.
func TestChurnConservationProperty(t *testing.T) {
	f := func(seed uint16, script []uint16) bool {
		cfg := Config{
			Mesh:            mesh.Square(4, true),
			Mode:            OneWay,
			RefreshInterval: 32,
			RandomPairing:   true,
			DynamicTiming:   true,
			Threshold:       1.0,
			QuiesceWindow:   1024,
			MaxCycles:       100000,
		}
		src := rng.New(uint64(seed) + 1)
		e := NewEmulator(cfg, src)
		n := cfg.Mesh.N()
		const pool = 128
		e.Init(RandomAssignment(src, UniformMaxes(n, 16), pool))

		for _, op := range script {
			tile := int(op) % n
			max := int64(op>>4) % 64
			e.SetMax(tile, max)
			// Let the fabric react for a random-ish slice of time.
			e.Kernel().Run(e.Kernel().Now() + sim1 + uint64(op%977))
		}
		res := e.Run()
		return res.CoinsEnd == pool && res.Conserved()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sim1 keeps the churn slices non-zero.
const sim1 = 16

// TestChurnEventuallyReconverges: after arbitrary churn stops, the system
// settles back to an allocation whose deficit error is below threshold.
func TestChurnEventuallyReconverges(t *testing.T) {
	cfg := Config{
		Mesh:            mesh.Square(5, true),
		Mode:            OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.0,
		CoinCap:         63,
		DeficitOnly:     true,
	}
	src := rng.New(77)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	e.Init(RandomAssignment(src, make([]int64, n), 126)) // all idle at start

	churn := rng.New(123)
	for i := 0; i < 40; i++ {
		tile := churn.Intn(n)
		var max int64
		if churn.Bool() {
			max = 10 + churn.Int63n(50)
		}
		e.SetMax(tile, max)
		e.Kernel().Run(e.Kernel().Now() + 200)
	}
	// Ensure at least one tile is active at the end so convergence is
	// nontrivial.
	e.SetMax(0, 40)
	res := e.Run()
	if !res.Converged {
		t.Fatalf("did not reconverge after churn: %+v", res)
	}
	if res.CoinsEnd != 126 {
		t.Fatalf("pool leaked: %d", res.CoinsEnd)
	}
	if !res.Conserved() {
		t.Fatalf("pool violation %d after churn", res.PoolViolation)
	}
}

// TestChurnNegativeTransientsRecover: transient negative counts (the
// underflow case of Sec. IV-A) may appear during churn but never persist
// into the quiesced state.
func TestChurnNegativeTransientsRecover(t *testing.T) {
	cfg := Config{
		Mesh:            mesh.Square(4, true),
		Mode:            OneWay,
		RefreshInterval: 8, // aggressive exchanges increase collision odds
		RandomPairing:   true,
		Threshold:       1.0,
	}
	src := rng.New(5)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	e.Init(RandomAssignment(src, UniformMaxes(n, 32), int64(n)*16))

	churn := rng.New(9)
	for i := 0; i < 30; i++ {
		e.SetMax(churn.Intn(n), churn.Int63n(64))
		e.Kernel().Run(e.Kernel().Now() + 64)
	}
	e.Run()
	has, _ := e.Snapshot()
	for i, h := range has {
		if h < 0 {
			t.Fatalf("tile %d quiesced with negative count %d", i, h)
		}
	}
}
