package coin

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
)

// The coin message types travel as noc.CoinMsg, stored inline in the packet
// (no payload boxing):
//
//   - request (KindCoinRequest): a 4-way center asks a neighbor for status.
//     Seq identifies the center's attempt so late replies to a timed-out
//     attempt are discarded.
//   - status (KindCoinStatus): a tile's (Has, Max) state. Reply distinguishes
//     a 4-way status reply from a 1-way exchange initiation; Nack means the
//     responder is mid-exchange and refuses to join the group — the conflict
//     case the paper notes the 4-way arithmetic needs synchronization
//     primitives for (Sec. III-B).
//   - update (KindCoinUpdate): a signed coin transfer. Expressing updates as
//     deltas — rather than absolute counts — makes the protocol conserve
//     coins exactly even when exchanges interleave; the transient negative
//     counts this can produce are the ones the hardware's sign bit absorbs
//     (Sec. IV-A). Ack marks the completion of a 1-way initiation, as opposed
//     to a 4-way delta push (which also releases the responder's
//     participation lock); Seq lets a hardened initiator ignore an ack for an
//     exchange it already timed out.

// maxNbrs is the mesh degree: a tile has at most four distinct neighbors, so
// all per-neighbor state lives in fixed-size slot ranges indexed by the
// neighbor's position in N/E/S/W order — no maps on the exchange hot path.
const maxNbrs = 4

// Per-tile status flags, packed one byte per tile in Emulator.flags.
const (
	// fBusy: an initiated exchange is in flight.
	fBusy uint8 = 1 << iota
	// fLocked: this tile has reported its status to a 4-way center and must
	// hold its coin count frozen until the center's update arrives — the
	// synchronization barrier Sec. III-B attributes to the 4-way technique.
	fLocked
	// fPendActive: a 4-way attempt is collecting status replies.
	fPendActive
	// fDead: fail-stopped — initiates nothing, absorbs nothing.
	fDead
	// fStuck: coin register frozen — setHas is a silent no-op.
	fStuck
	// fPruned: some partner (near or far) was tombstoned, which is what
	// bounds the random-pairing search loops.
	fPruned
)

// Result summarizes one emulator run.
type Result struct {
	// Converged reports whether the global error crossed Threshold.
	Converged bool
	// ConvergenceCycles is the time of the first threshold crossing.
	ConvergenceCycles sim.Cycles
	// PacketsToConvergence counts NoC packets sent up to that crossing.
	PacketsToConvergence uint64
	// StartErr is the global error of the initial assignment.
	StartErr float64
	// FinalErr and WorstTileErr are measured at the end of the run.
	FinalErr     float64
	WorstTileErr float64
	// EndCycles is when the run stopped (convergence, quiescence, or the
	// MaxCycles bound).
	EndCycles sim.Cycles
	// TotalPackets counts all NoC packets sent during the run.
	TotalPackets uint64
	// Exchanges counts initiated exchanges across all tiles.
	Exchanges uint64
	// CoinsStart and CoinsEnd are the pool totals; CoinsEnd sums live
	// tiles only. They must match for a quiesced healthy run
	// (conservation); under faults the audit restores the match.
	CoinsStart, CoinsEnd int64
	// PoolViolation is CoinsStart minus the live pool at the end of the
	// run: nonzero means coins leaked (positive) or were duplicated
	// (negative) and the audit had not yet repaired the residue.
	PoolViolation int64

	// Fault and recovery counters (all zero on a healthy run).
	Dropped      uint64 // PM-plane packets lost in the fabric
	Retries      uint64 // exchanges abandoned by timeout and retried
	LocksBroken  uint64 // participation locks freed by the watchdog
	NbrsPruned   int    // partners removed from pairing sets as dead
	TilesDead    int    // tiles fail-stopped during the run
	AuditRepairs uint64 // audits that found and repaired a discrepancy
	CoinsMinted  int64  // coins re-minted by the audit (leak repair)
	CoinsBurned  int64  // coins burned by the audit (duplication repair)
}

// Conserved reports whether the coin pool ended exactly conserved: every
// coin of the initial assignment is accounted for on a live tile. Healthy
// runs must always conserve; faulted runs must re-conserve once the audit
// has repaired the last fault's damage.
func (r Result) Conserved() bool { return r.PoolViolation == 0 }

// ConvergenceMicros returns the convergence time in microseconds at the
// 800 MHz NoC clock.
func (r Result) ConvergenceMicros() float64 {
	return sim.CyclesToMicros(r.ConvergenceCycles)
}

// Emulator runs the coin-exchange algorithm over a simulated NoC. It mirrors
// the paper's Python emulator, with timing expressed in NoC cycles.
//
// # Memory layout
//
// Per-tile state is struct-of-arrays: each field lives in a flat array
// indexed by tile id, and per-neighbor state in flat [maxNbrs*n] tables
// indexed by tile*maxNbrs+slot. The exchange hot loop therefore streams
// over contiguous same-typed memory (the has/max registers it actually
// touches) instead of striding across fat per-tile structs, and the arrays
// of one element type share a single slab allocation. Events reach the
// emulator as typed kernel ops carrying (tile, x) — no per-event closures
// anywhere on the tick/timeout/watchdog chains.
type Emulator struct {
	cfg    Config
	kernel *sim.Kernel
	net    *noc.Network
	src    *rng.Source
	n      int // tile count

	// Hot per-tile state, one entry per tile (views of shared slabs).
	has, max []int64
	// interval is the dynamic-timing exchange interval.
	interval []sim.Cycles
	// seqNo numbers each tile's initiated exchanges; acks and 4-way replies
	// echo it so responses to a timed-out attempt are recognizably stale.
	// lockSeq epochs the participation lock so a stale watchdog never
	// breaks a newer lock.
	seqNo, lockSeq []uint64
	flags          []uint8
	// pendMask has a bit per neighbor slot that answered the in-flight
	// 4-way attempt; nbrDeadMask tombstones pruned neighbor slots (slots
	// are never removed, so any held index stays valid); nbrSeenMask marks
	// slots that have reported a coin count.
	pendMask, nbrDeadMask, nbrSeenMask []uint8
	// slow is the fail-slow factor (> 1 stretches intervals), 0 if none.
	slow []float64
	// errTerms caches each live tile's convergence-metric contribution.
	errTerms []float64

	// Small per-tile counters and cursors. rr is the round-robin slot
	// cursor; srOffset the PairShiftRegister state; zeroStreak counts
	// consecutive unproductive exchanges (dynamic timing); curPartner the
	// 1-way partner of the in-flight exchange; lockFrom the 4-way center
	// holding our participation lock; pendWant the reply count a 4-way
	// attempt waits for; exchCnt the initiated-exchange count driving the
	// random-pairing cadence; nbrCount/liveNbrs the total and
	// not-tombstoned neighbor slot counts.
	rr, srOffset, zeroStreak       []int32
	curPartner, lockFrom, pendWant []int32
	exchCnt, nbrCount, liveNbrs    []int32

	// Flat [maxNbrs*n] neighbor-slot tables, indexed tile*maxNbrs+slot.
	// nbrs[i*maxNbrs : i*maxNbrs+nbrCount[i]] are tile i's distinct
	// neighbors in N/E/S/W order. nbrHas caches the last coin count
	// observed from each slot (from status messages), the information the
	// thermal guard consults — the hardware gets this for free, it is the
	// same status traffic the exchange already carries. nbrFailCnt counts
	// consecutive strikes for liveness pruning. pend collects 4-way status
	// replies; the storage is reused across attempts.
	nbrs       []int32
	nbrHas     []int64
	nbrFailCnt []int32
	pend       []noc.CoinMsg

	// Far-partner liveness (random pairing can strike non-neighbor
	// partners): lazy per-tile maps, nil until a failure is recorded, so
	// healthy runs pay nothing.
	farFail []map[int]int
	farDead []map[int]bool

	sumHas, sumMax int64
	activeCount    int // live tiles with max > 0
	liveCount      int // tiles not fail-stopped
	alpha          float64
	errSum         float64

	converged   bool
	convergedAt sim.Cycles
	pktsAtConv  uint64

	lastMovement   sim.Cycles
	lastChangeFrom sim.Cycles // time of the last SetMax/Init, for response time
	busyCount      int
	// nonzeroInFlight counts update packets carrying a nonzero delta that
	// have been sent but not yet delivered. Quiescence requires it to be
	// zero so a run never stops with coins mid-transfer.
	nonzeroInFlight int
	exchanges       uint64
	thermalRejects  uint64
	initialized     bool

	// hardened enables the recovery machinery. When off, none of the
	// timeout/watchdog/audit events are ever scheduled, so healthy runs
	// remain bit-identical to the unhardened emulator.
	hardened    bool
	injector    *fault.Injector
	armInjector bool // this emulator owns the injector and arms it at Init
	// frozen suppresses new exchange initiations during the end-of-run
	// settle phase, so stranded flags are distinguishable from keep-alive
	// transients.
	frozen bool

	// inFlightDelta sums the deltas of update packets actually travelling
	// the fabric: poolTarget == live sum + inFlightDelta is the audited
	// conservation invariant.
	inFlightDelta int64
	poolTarget    int64
	lockedCount   int
	retries       uint64
	locksBroken   uint64
	nbrsPruned    int
	tilesDead     int
	auditRepairs  uint64
	coinsMinted   int64
	coinsBurned   int64

	// onChange, when set, observes every applied coin-count change. The
	// SoC harness uses it to drive each tile's LUT and UVFR regulator.
	onChange func(tile int, has int64)
	// onConverged, when set, observes each convergence event with the
	// response time since the triggering activity change (or Init).
	onConverged func(response sim.Cycles)

	// Typed kernel ops: every exchange tick, retry timeout, lock watchdog,
	// and audit travels the event queue as a 16-byte (op, tile, x) event —
	// no per-event closure allocation, no indirect interface call. The
	// hardened trio is registered lazily (registerHardenedOps) so healthy
	// runs don't pay for handlers that are never scheduled.
	opTick, opTimeout, opWatchdog, opAudit sim.OpCode

	// gatherHas/gatherMax are reusable scratch for the 4-way group split.
	gatherHas, gatherMax []int64
	// auditCands is reusable scratch for the audit's repair ordering.
	auditCands []auditCand
}

// NewEmulator builds an emulator for cfg, drawing randomness from src. It
// owns a private kernel and network.
func NewEmulator(cfg Config, src *rng.Source) *Emulator {
	cfg = cfg.withDefaults()
	k := &sim.Kernel{}
	e := NewEmulatorOn(k, noc.New(k, cfg.Mesh, cfg.NoC), cfg, src)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		e.AttachFaults(fault.NewInjector(*cfg.Faults))
		e.armInjector = true
	}
	return e
}

// NewEmulatorOn builds an emulator over an existing kernel and network, for
// harnesses (like the full-SoC simulator) that share the clock with other
// models. The network's mesh must match cfg.Mesh, and the emulator claims
// the PM-plane handler of every tile.
func NewEmulatorOn(k *sim.Kernel, net *noc.Network, cfg Config, src *rng.Source) *Emulator {
	cfg = cfg.withDefaults()
	if net.Mesh() != cfg.Mesh {
		panic("coin: network mesh does not match config mesh")
	}
	n := cfg.Mesh.N()
	e := &Emulator{
		cfg:    cfg,
		kernel: k,
		net:    net,
		src:    src,
		n:      n,
	}

	// Carve every per-tile array of one element type out of a single slab:
	// five allocations cover all hot state, and arrays the exchange loop
	// touches together are contiguous.
	i64 := make([]int64, (2+maxNbrs)*n+2*(1+maxNbrs))
	e.has = i64[:n:n]
	e.max = i64[n : 2*n : 2*n]
	e.nbrHas = i64[2*n : (2+maxNbrs)*n : (2+maxNbrs)*n]
	g := (2 + maxNbrs) * n
	e.gatherHas = i64[g : g : g+1+maxNbrs]
	e.gatherMax = i64[g+1+maxNbrs : g+1+maxNbrs : g+2*(1+maxNbrs)]

	i32 := make([]int32, (2*maxNbrs+9)*n)
	carve := func(k int) (s []int32) {
		s, i32 = i32[:k*n:k*n], i32[k*n:]
		return s
	}
	e.nbrs = carve(maxNbrs)
	e.nbrFailCnt = carve(maxNbrs)
	e.rr = carve(1)
	e.srOffset = carve(1)
	e.zeroStreak = carve(1)
	e.curPartner = carve(1)
	e.lockFrom = carve(1)
	e.pendWant = carve(1)
	e.exchCnt = carve(1)
	e.nbrCount = carve(1)
	e.liveNbrs = carve(1)

	u64 := make([]uint64, 3*n)
	e.interval = u64[:n:n]
	e.seqNo = u64[n : 2*n : 2*n]
	e.lockSeq = u64[2*n:]

	u8 := make([]uint8, 4*n)
	e.flags = u8[:n:n]
	e.pendMask = u8[n : 2*n : 2*n]
	e.nbrDeadMask = u8[2*n : 3*n : 3*n]
	e.nbrSeenMask = u8[3*n:]

	f64 := make([]float64, 2*n)
	e.slow = f64[:n:n]
	e.errTerms = f64[n:]

	e.pend = make([]noc.CoinMsg, maxNbrs*n)

	handler := func(p *noc.Packet) { e.onPacket(p.Dst, p) }
	var nbuf [maxNbrs]int
	for i := 0; i < n; i++ {
		for _, nb := range cfg.Mesh.AppendDistinctNeighbors(i, nbuf[:0]) {
			e.nbrs[i*maxNbrs+int(e.nbrCount[i])] = int32(nb)
			e.nbrCount[i]++
		}
		e.liveNbrs[i] = e.nbrCount[i]
		e.interval[i] = cfg.RefreshInterval
		e.srOffset[i] = 1
		e.net.SetHandler(i, noc.PlanePM, handler)
	}
	e.opTick = k.RegisterOp(func(tile int32, _ uint64) { e.tick(int(tile)) })
	e.hardened = cfg.Harden
	if e.hardened {
		e.registerHardenedOps()
	}
	return e
}

// registerHardenedOps installs the recovery machinery's typed event
// handlers. Idempotent; called when hardening turns on (construction or
// AttachFaults) so unhardened runs never register them.
func (e *Emulator) registerHardenedOps() {
	if e.opTimeout != 0 {
		return
	}
	e.opTimeout = e.kernel.RegisterOp(func(tile int32, x uint64) { e.exchangeTimeout(int(tile), x) })
	e.opWatchdog = e.kernel.RegisterOp(func(tile int32, x uint64) { e.lockWatchdog(int(tile), x) })
	e.opAudit = e.kernel.RegisterOp(func(int32, uint64) { e.audit() })
}

// AttachFaults wires a fault injector into the emulator: the network
// consults it per packet, and the emulator reacts to tile kills, stuck coin
// registers, and fail-slow activations. Attaching an injector turns the
// recovery machinery on. Call before Init; the caller arms the injector
// (NewEmulator with cfg.Faults does both itself).
func (e *Emulator) AttachFaults(in *fault.Injector) {
	if e.initialized {
		panic("coin: AttachFaults after Init")
	}
	e.hardened = true
	e.registerHardenedOps()
	e.injector = in
	e.net.AttachFaults(in)
	in.OnTileKill(e.killTile)
	in.OnStuckCounter(func(i int) { e.flags[i] |= fStuck })
	in.OnFailSlow(func(i int, f float64) { e.slow[i] = f })
}

// Faults returns the attached injector, or nil.
func (e *Emulator) Faults() *fault.Injector { return e.injector }

// slotOf returns tile i's neighbor-slot index of tile j, or -1 when j is
// not a neighbor.
func (e *Emulator) slotOf(i, j int) int {
	base := i * maxNbrs
	for s := 0; s < int(e.nbrCount[i]); s++ {
		if int(e.nbrs[base+s]) == j {
			return s
		}
	}
	return -1
}

// nextRRPartner advances tile i's round-robin cursor to the next live
// neighbor and returns it, or -1 when every neighbor is tombstoned. With no
// tombstones the visit sequence is exactly the pre-tombstone emulator's.
func (e *Emulator) nextRRPartner(i int) int {
	nc := int(e.nbrCount[i])
	if e.liveNbrs[i] == 0 || nc == 0 {
		return -1
	}
	for k := 0; k < nc; k++ {
		s := int(e.rr[i]) % nc
		e.rr[i]++
		if e.nbrDeadMask[i]&(1<<s) == 0 {
			return int(e.nbrs[i*maxNbrs+s])
		}
	}
	return -1
}

// observeNeighbor records a neighbor's reported coin count for the thermal
// guard.
func (e *Emulator) observeNeighbor(i, from int, has int64) {
	if e.cfg.ThermalCap <= 0 {
		return
	}
	if s := e.slotOf(i, from); s >= 0 {
		e.nbrHas[i*maxNbrs+s] = has
		e.nbrSeenMask[i] |= 1 << s
	}
}

// neighborhoodLoad returns the tile's own count plus the last observed
// counts of its neighbors — the quantity the thermal cap bounds.
func (e *Emulator) neighborhoodLoad(i int) int64 {
	load := e.has[i]
	base := i * maxNbrs
	seen := e.nbrSeenMask[i]
	for s := 0; s < int(e.nbrCount[i]); s++ {
		if seen&(1<<s) != 0 {
			load += e.nbrHas[base+s]
		}
	}
	return load
}

// NeighborhoodLoad exposes the thermal-guard quantity for tile i, for
// tests and monitoring. With the guard disabled it computes the exact sum
// of the tile's and its neighbors' current counts.
func (e *Emulator) NeighborhoodLoad(i int) int64 {
	if e.cfg.ThermalCap > 0 {
		return e.neighborhoodLoad(i)
	}
	load := e.has[i]
	base := i * maxNbrs
	for s := 0; s < int(e.nbrCount[i]); s++ {
		load += e.has[e.nbrs[base+s]]
	}
	return load
}

// thermalClamp limits the coins tile i may accept in an exchange that
// would move it from has[i] to proposed, returning the allowed new count.
// Giving coins away is never restricted.
func (e *Emulator) thermalClamp(i int, proposed int64) int64 {
	if e.cfg.ThermalCap <= 0 || proposed <= e.has[i] {
		return proposed
	}
	headroom := e.cfg.ThermalCap - e.neighborhoodLoad(i)
	if headroom < 0 {
		headroom = 0
	}
	if gain := proposed - e.has[i]; gain > headroom {
		e.thermalRejects++
		return e.has[i] + headroom
	}
	return proposed
}

// Init loads the initial assignment and schedules the first exchange of each
// tile at a random phase within one refresh interval, breaking lockstep as
// independent hardware FSMs would.
func (e *Emulator) Init(a Assignment) {
	a.validate(e.n)
	if e.initialized {
		panic("coin: Init called twice; create a new Emulator per run")
	}
	e.initialized = true
	copy(e.has, a.Has)
	copy(e.max, a.Max)
	for _, h := range a.Has {
		e.poolTarget += h
	}
	if e.armInjector {
		e.injector.Arm(e.kernel)
	}
	e.recomputeError()
	e.checkConvergence()
	for i := 0; i < e.n; i++ {
		phase := sim.Cycles(e.src.Int63n(int64(e.cfg.RefreshInterval))) + 1
		e.kernel.ScheduleOp(phase, e.opTick, int32(i), 0)
	}
	if e.hardened {
		e.kernel.ScheduleOp(e.cfg.AuditInterval, e.opAudit, 0, 0)
	}
}

// errTerm computes one tile's contribution to the convergence metric under
// the configured cap and deficit rules.
func (e *Emulator) errTerm(has, max int64) float64 {
	target := e.alpha * float64(max)
	if e.cfg.CoinCap > 0 && target > float64(e.cfg.CoinCap) {
		target = float64(e.cfg.CoinCap)
	}
	if e.cfg.DeficitOnly {
		// A tile cannot use more than its own max: under budget abundance
		// (alpha > 1) it is satisfied once it can run at full target power.
		if target > float64(max) {
			target = float64(max)
		}
		if d := target - float64(has); d > 0 {
			return d
		}
		return 0
	}
	return math.Abs(float64(has) - target)
}

// recomputeError rebuilds the incremental error state from scratch. The
// coin pool is conserved and targets only change through SetMax, so alpha is
// constant between recomputations and per-exchange updates stay O(1).
func (e *Emulator) recomputeError() {
	e.sumHas, e.sumMax, e.activeCount, e.liveCount = 0, 0, 0, 0
	for i := 0; i < e.n; i++ {
		if e.flags[i]&fDead != 0 {
			continue
		}
		e.liveCount++
		e.sumHas += e.has[i]
		e.sumMax += e.max[i]
		if e.max[i] > 0 {
			e.activeCount++
		}
	}
	if e.sumMax > 0 {
		e.alpha = float64(e.sumHas) / float64(e.sumMax)
	} else {
		e.alpha = 0
	}
	e.errSum = 0
	for i := 0; i < e.n; i++ {
		if e.flags[i]&fDead != 0 {
			e.errTerms[i] = 0
			continue
		}
		e.errTerms[i] = e.errTerm(e.has[i], e.max[i])
		e.errSum += e.errTerms[i]
	}
}

// GlobalErr returns the current global error E: the mean per-tile error in
// the paper's symmetric mode, or the mean per-active-tile deficit in
// deficit-only mode (so the threshold reads "average active tile within one
// coin of its usable target" regardless of how many idle tiles surround
// them).
func (e *Emulator) GlobalErr() float64 {
	if e.cfg.DeficitOnly {
		n := e.activeCount
		if n == 0 {
			n = 1
		}
		return e.errSum / float64(n)
	}
	n := e.liveCount
	if n == 0 {
		n = 1
	}
	return e.errSum / float64(n)
}

// setHas applies a coin-count change and maintains the error metric,
// movement clock, and convergence detection.
func (e *Emulator) setHas(i int, v int64) {
	// A stuck coin register silently absorbs writes — the fault the audit
	// exists to detect. A dead tile's register is gone entirely.
	if e.flags[i]&(fStuck|fDead) != 0 {
		return
	}
	if e.has[i] == v {
		return
	}
	e.has[i] = v
	nt := e.errTerm(v, e.max[i])
	e.errSum += nt - e.errTerms[i]
	e.errTerms[i] = nt
	e.lastMovement = e.kernel.Now()
	e.checkConvergence()
	if e.onChange != nil {
		e.onChange(i, v)
	}
}

// SetOnChange registers an observer for applied coin-count changes.
func (e *Emulator) SetOnChange(fn func(tile int, has int64)) { e.onChange = fn }

// Has returns tile i's current coin count.
func (e *Emulator) Has(i int) int64 { return e.has[i] }

// Max returns tile i's current target.
func (e *Emulator) Max(i int) int64 { return e.max[i] }

func (e *Emulator) checkConvergence() {
	if !e.converged && e.GlobalErr() < e.cfg.Threshold {
		e.converged = true
		e.convergedAt = e.kernel.Now()
		e.pktsAtConv = e.net.Stats().Sent
		if e.onConverged != nil {
			e.onConverged(e.convergedAt - e.lastChangeFrom)
		}
	}
}

// SetOnConverged registers an observer for convergence events; it receives
// the response time relative to the last activity change.
func (e *Emulator) SetOnConverged(fn func(response sim.Cycles)) { e.onConverged = fn }

// SetMax changes a tile's target at runtime — the start or end of a
// workload phase (Sec. III-A: max is set when execution begins and 0 when it
// ends). It re-arms convergence detection so the next crossing measures the
// response to this activity change.
func (e *Emulator) SetMax(tile int, max int64) {
	if max < 0 {
		panic("coin: negative max")
	}
	// A dead tile has no target: its FSM is gone and its max is already
	// excluded from the error metric.
	if e.flags[tile]&fDead != 0 {
		return
	}
	e.max[tile] = max
	e.recomputeError()
	e.converged = false
	e.convergedAt = 0
	e.lastChangeFrom = e.kernel.Now()
	e.lastMovement = e.kernel.Now()
	// The activity change resets the tile's dynamic-timing back-off and
	// triggers an immediate exchange: the start/end of execution is
	// precisely the event the FSM reacts to (Sec. III-A), so it does not
	// wait out a steady-state interval.
	e.interval[tile] = e.cfg.RefreshInterval
	if e.initialized && e.flags[tile]&(fBusy|fLocked) == 0 {
		e.kernel.ScheduleOp(1, e.opTick, int32(tile), 0)
	}
	e.checkConvergence()
}

// ResponseCycles returns the cycles from the last SetMax (or Init) to the
// following convergence, or 0 if not yet converged.
func (e *Emulator) ResponseCycles() sim.Cycles {
	if !e.converged {
		return 0
	}
	return e.convergedAt - e.lastChangeFrom
}

// Snapshot returns copies of the current has and max vectors.
func (e *Emulator) Snapshot() (has, max []int64) {
	has = make([]int64, e.n)
	max = make([]int64, e.n)
	copy(has, e.has)
	copy(max, e.max)
	return has, max
}

// Kernel exposes the simulation clock, mainly for harnesses that interleave
// activity changes with Run.
func (e *Emulator) Kernel() *sim.Kernel { return e.kernel }

// ThermalRejects returns how many exchanges were clamped by the thermal
// hotspot guard.
func (e *Emulator) ThermalRejects() uint64 { return e.thermalRejects }

// FlagCounts returns how many tiles are currently mid-exchange (busy) and
// participation-locked. After a hardened Run both must be zero: the timeout
// and watchdog machinery exists precisely so no fault strands a flag.
func (e *Emulator) FlagCounts() (busy, locked int) { return e.busyCount, e.lockedCount }

// TileDead reports whether tile i has fail-stopped.
func (e *Emulator) TileDead(i int) bool { return e.flags[i]&fDead != 0 }

// NetworkStats returns the NoC statistics so far.
func (e *Emulator) NetworkStats() noc.Stats { return e.net.Stats() }

// tick is one exchange attempt by tile i. The next tick reschedules at the
// interval in effect when this one fired (matching the hardware's periodic
// FSM), after any packets this attempt pushed — so intra-cycle event order
// is exactly the schedule order.
func (e *Emulator) tick(i int) {
	// A dead tile's FSM is gone: stop the tick chain entirely.
	if e.flags[i]&fDead != 0 {
		return
	}
	d := e.effInterval(i)
	e.tickAttempt(i)
	e.kernel.ScheduleOp(d, e.opTick, int32(i), 0)
}

// tickAttempt is the body of one exchange attempt. A tile whose previous
// exchange is still in flight skips this slot, as the hardware FSM would.
func (e *Emulator) tickAttempt(i int) {
	// Frozen: the end-of-run settle phase stops new initiations so in-flight
	// exchanges can drain; the tick chain stays alive for later Run calls.
	if e.frozen {
		return
	}
	if e.flags[i]&(fBusy|fLocked) != 0 || e.liveNbrs[i] == 0 {
		return
	}
	useRandom := e.cfg.RandomPairing && (int(e.exchCnt[i])+1)%e.cfg.RandomPairingEvery == 0
	// A tile in the relinquish state — execution ended (max 0) but coins
	// still held — gains nothing from neighbors that are also idle, so it
	// seeks a taker anywhere on the SoC every exchange. This is what
	// returns orphaned coins to newly active tiles quickly.
	if e.cfg.RandomPairing && e.max[i] == 0 && e.has[i] > 0 {
		useRandom = true
	}
	e.exchCnt[i]++
	e.exchanges++
	if e.cfg.Mode == FourWay && !useRandom {
		e.startFourWay(i)
		return
	}
	partner := e.choosePartner(i, useRandom)
	if partner < 0 {
		// Every candidate partner is known dead; keep ticking — the audit
		// still rebalances the pool around this tile.
		return
	}
	e.startOneWay(i, partner)
}

// effInterval is the tile's exchange interval with any fail-slow stretch.
func (e *Emulator) effInterval(i int) sim.Cycles {
	if e.slow[i] > 1 {
		return sim.Cycles(float64(e.interval[i]) * e.slow[i])
	}
	return e.interval[i]
}

// sendUpdate emits a coin-update packet and tracks nonzero deltas in flight.
// Only packets the fabric actually carries are counted: this accounting is
// the simulator's omniscient view (used for quiescence detection and the
// conservation audit), not information available to any tile's FSM.
func (e *Emulator) sendUpdate(src, dst int, delta int64, ack bool, seq uint64) {
	sent := e.net.SendCoin(noc.PlanePM, noc.KindCoinUpdate, src, dst,
		noc.CoinMsg{Delta: delta, Ack: ack, Seq: seq})
	if sent && delta != 0 {
		e.nonzeroInFlight++
		e.inFlightDelta += delta
	}
}

// choosePartner returns tile i's next exchange partner: the round-robin
// neighbor, or a non-neighbor under random pairing. Partners pruned as dead
// are excluded; -1 means no live candidate exists.
func (e *Emulator) choosePartner(i int, random bool) int {
	if !random {
		return e.nextRRPartner(i)
	}
	n := e.n
	// Small meshes can have every other tile as a neighbor; fall back to
	// the round-robin neighbor.
	if int(e.nbrCount[i]) >= n-1 {
		return e.nextRRPartner(i)
	}
	var farDead map[int]bool
	if e.farDead != nil {
		farDead = e.farDead[i]
	}
	// With pruned partners the search loops need a bound: liveness is
	// local knowledge, and a heavily damaged mesh may leave no eligible
	// non-neighbor. The bound only engages once something was pruned, so
	// healthy runs keep the original draw sequence exactly.
	bounded := e.flags[i]&fPruned != 0
	switch e.cfg.Pairing {
	case PairShiftRegister:
		// Walk the offset register until it lands on a non-neighbor. The
		// register visits every offset, guaranteeing any (a, b) pair with
		// opposing errors is eventually paired (Sec. III-E).
		for tries := 0; ; tries++ {
			j := (i + int(e.srOffset[i])) % n
			e.srOffset[i] = e.srOffset[i]%int32(n-1) + 1
			if j != i && e.slotOf(i, j) < 0 && !farDead[j] {
				return j
			}
			if bounded && tries >= n {
				return e.nextRRPartner(i)
			}
		}
	default: // PairUniform
		for tries := 0; ; tries++ {
			j := e.src.Intn(n)
			if j != i && e.slotOf(i, j) < 0 && !farDead[j] {
				return j
			}
			if bounded && tries >= 4*n {
				return e.nextRRPartner(i)
			}
		}
	}
}

// startOneWay initiates Algorithm 2 with the chosen partner: send our
// status; the partner computes the split, applies its side, and returns our
// delta. Two messages per exchange — 8 per four-neighbor rotation.
func (e *Emulator) startOneWay(i, partner int) {
	e.flags[i] |= fBusy
	e.busyCount++
	e.seqNo[i]++
	e.curPartner[i] = int32(partner)
	e.net.SendCoin(noc.PlanePM, noc.KindCoinStatus, i, partner,
		noc.CoinMsg{Has: e.has[i], Max: e.max[i], Seq: e.seqNo[i]})
	e.armExchangeTimeout(i)
}

// startFourWay initiates Algorithm 1: request status from every live
// neighbor, then split the group's coins. Three messages per neighbor — 12
// per exchange on an interior tile.
func (e *Emulator) startFourWay(i int) {
	e.flags[i] |= fBusy | fPendActive
	e.busyCount++
	e.seqNo[i]++
	e.pendMask[i] = 0
	e.pendWant[i] = e.liveNbrs[i]
	base := i * maxNbrs
	for s := 0; s < int(e.nbrCount[i]); s++ {
		if e.nbrDeadMask[i]&(1<<s) == 0 {
			e.net.SendCoin(noc.PlanePM, noc.KindCoinRequest, i, int(e.nbrs[base+s]),
				noc.CoinMsg{Seq: e.seqNo[i]})
		}
	}
	e.armExchangeTimeout(i)
}

// armExchangeTimeout schedules the hardened initiator's retry timer for the
// exchange the tile just started.
func (e *Emulator) armExchangeTimeout(i int) {
	if !e.hardened {
		return
	}
	e.kernel.ScheduleOp(e.cfg.ExchangeTimeout, e.opTimeout, int32(i), e.seqNo[i])
}

// exchangeTimeout abandons an exchange whose completion never arrived:
// release busy so the tile's FSM is not stranded, back its interval off, and
// strike the silent partner(s) for liveness tracking. Any late ack is
// recognized as stale by its sequence number; any late delta still applies
// (deltas always conserve), and the audit repairs whatever was lost in the
// fabric.
func (e *Emulator) exchangeTimeout(i int, seq uint64) {
	if e.flags[i]&fDead != 0 || e.flags[i]&fBusy == 0 || e.seqNo[i] != seq {
		return
	}
	e.retries++
	if e.flags[i]&fPendActive != 0 {
		// Release the neighbors that did join the group with zero-delta
		// updates, and strike the ones that never answered. Tombstoning
		// never moves slots, so this iteration is safe against the pruning
		// strikePartner may do mid-loop.
		base := i * maxNbrs
		for s := 0; s < int(e.nbrCount[i]); s++ {
			if e.nbrDeadMask[i]&(1<<s) != 0 {
				continue
			}
			switch {
			case e.pendMask[i]&(1<<s) == 0:
				e.strikePartner(i, int(e.nbrs[base+s]))
			case !e.pend[base+s].Nack:
				e.sendUpdate(i, int(e.nbrs[base+s]), 0, false, seq)
			}
		}
		e.flags[i] &^= fPendActive
		e.pendMask[i] = 0
	} else {
		e.strikePartner(i, int(e.curPartner[i]))
	}
	e.flags[i] &^= fBusy
	e.busyCount--
	// Exponential retry back-off: a tile facing a lossy or partitioned
	// fabric slows down instead of spamming it.
	ni := sim.Cycles(float64(e.interval[i]) * e.cfg.RetryBackoff)
	if ni > e.cfg.MaxInterval {
		ni = e.cfg.MaxInterval
	}
	e.interval[i] = ni
}

// strikePartner records a timed-out exchange against a partner; after
// NeighborDeadAfter consecutive strikes the partner is pruned from the
// tile's pairing sets (wrap-around partners take over). Neighbor partners
// are tombstoned in place — their slot index stays valid for any iteration
// or reply in flight — and non-neighbor partners (random pairing) go to the
// lazy far maps.
func (e *Emulator) strikePartner(i, partner int) {
	if partner < 0 {
		return
	}
	if s := e.slotOf(i, partner); s >= 0 {
		e.nbrFailCnt[i*maxNbrs+s]++
		if int(e.nbrFailCnt[i*maxNbrs+s]) < e.cfg.NeighborDeadAfter || e.nbrDeadMask[i]&(1<<s) != 0 {
			return
		}
		e.nbrDeadMask[i] |= 1 << s
		e.liveNbrs[i]--
		e.flags[i] |= fPruned
		e.nbrsPruned++
		return
	}
	if e.farFail == nil {
		e.farFail = make([]map[int]int, e.n)
		e.farDead = make([]map[int]bool, e.n)
	}
	if e.farFail[i] == nil {
		e.farFail[i] = make(map[int]int)
	}
	e.farFail[i][partner]++
	if e.farFail[i][partner] < e.cfg.NeighborDeadAfter {
		return
	}
	if e.farDead[i] == nil {
		e.farDead[i] = make(map[int]bool)
	}
	if !e.farDead[i][partner] {
		e.farDead[i][partner] = true
		e.flags[i] |= fPruned
		e.nbrsPruned++
	}
}

// onPacket dispatches a delivered PM-plane packet.
func (e *Emulator) onPacket(tile int, p *noc.Packet) {
	// A packet can be in flight when its destination fail-stops: the dead
	// tile absorbs it. The omniscient in-flight accounting still settles —
	// the coins it carried are gone, which the audit detects and re-mints.
	if e.flags[tile]&fDead != 0 {
		if p.Kind == noc.KindCoinUpdate {
			if d := p.Coin.Delta; d != 0 && !p.Dup {
				e.nonzeroInFlight--
				e.inFlightDelta -= d
			}
		}
		return
	}
	switch p.Kind {
	case noc.KindCoinRequest:
		seq := p.Coin.Seq
		// 4-way: join the center's group if free, else refuse. Joining
		// freezes our coin count until the center's update releases us.
		if e.flags[tile]&(fBusy|fLocked) != 0 {
			e.net.SendCoin(noc.PlanePM, noc.KindCoinStatus, tile, p.Src,
				noc.CoinMsg{Reply: true, Nack: true, Seq: seq})
			return
		}
		e.lockTile(tile, p.Src)
		e.net.SendCoin(noc.PlanePM, noc.KindCoinStatus, tile, p.Src,
			noc.CoinMsg{Has: e.has[tile], Max: e.max[tile], Reply: true, Seq: seq})
	case noc.KindCoinStatus:
		if p.Coin.Reply {
			e.onFourWayStatus(tile, p.Src, p.Coin)
		} else {
			e.onOneWayInitiate(tile, p.Src, p.Coin)
		}
	case noc.KindCoinUpdate:
		msg := p.Coin
		// A fault-injected duplicate applies its delta twice — that IS the
		// fault — but the fabric accounting settles only once.
		if msg.Delta != 0 && !p.Dup {
			e.nonzeroInFlight--
			e.inFlightDelta -= msg.Delta
		}
		e.setHas(tile, e.has[tile]+msg.Delta)
		if msg.Ack {
			// Completion of our 1-way initiation. The sequence check
			// rejects a late ack for an attempt the timeout already
			// abandoned (its delta above still applied — conservation).
			if e.flags[tile]&fBusy != 0 && e.flags[tile]&fPendActive == 0 && msg.Seq == e.seqNo[tile] {
				e.flags[tile] &^= fBusy
				e.busyCount--
				if s := e.slotOf(tile, p.Src); s >= 0 {
					e.nbrFailCnt[tile*maxNbrs+s] = 0
				} else if e.farFail != nil && e.farFail[tile] != nil {
					delete(e.farFail[tile], p.Src)
				}
				e.adjustTiming(tile, msg.Delta)
			}
		} else {
			// A 4-way center's push releases our participation lock; a
			// productive push also resets our back-off so the activity
			// ripple propagates at full speed (Sec. III-D). Hardened: only
			// the lock's owner may release it, so a straggler push from a
			// center we already gave up on can't break a newer lock.
			if !e.hardened || e.flags[tile]&fLocked == 0 || int(e.lockFrom[tile]) == p.Src {
				e.unlockTile(tile)
			}
			e.adjustTiming(tile, msg.Delta)
		}
	case noc.KindRegAccess, noc.KindInterrupt, noc.KindOther:
		// Non-coin plane-5 traffic (CSR accesses, interrupts) shares the
		// plane but is handled by the NoC-domain socket, not the FSM; it
		// only contends for bandwidth.
	default:
		panic(fmt.Sprintf("coin: unexpected packet kind %v", p.Kind))
	}
}

// lockTile freezes tile i's coins on behalf of a 4-way center. Hardened, a
// watchdog frees the lock if the center dies before its update arrives.
func (e *Emulator) lockTile(i, center int) {
	e.flags[i] |= fLocked
	e.lockFrom[i] = int32(center)
	e.lockSeq[i]++
	e.lockedCount++
	if e.hardened {
		e.kernel.ScheduleOp(e.cfg.LockTimeout, e.opWatchdog, int32(i), e.lockSeq[i])
	}
}

// unlockTile releases tile i's participation lock if held.
func (e *Emulator) unlockTile(i int) {
	if e.flags[i]&fLocked != 0 {
		e.flags[i] &^= fLocked
		e.lockedCount--
	}
}

// lockWatchdog frees a tile whose 4-way center died (or whose release was
// lost in the fabric): without it the tile would refuse every exchange
// forever. The lock epoch guards against breaking a newer lock.
func (e *Emulator) lockWatchdog(i int, lockSeq uint64) {
	if e.flags[i]&fDead != 0 || e.flags[i]&fLocked == 0 || e.lockSeq[i] != lockSeq {
		return
	}
	e.unlockTile(i)
	e.locksBroken++
	// The center is suspect: strike it so a repeatedly dying or silent
	// center is eventually pruned from our pairing sets.
	e.strikePartner(i, int(e.lockFrom[i]))
}

// onOneWayInitiate runs the receiver side of Algorithm 2: split against the
// initiator's reported state, apply our half, return theirs as a delta.
func (e *Emulator) onOneWayInitiate(i, from int, msg noc.CoinMsg) {
	// A locked tile's coins are spoken for by a 4-way center; refuse the
	// exchange with a zero-coin ack so the initiator completes cleanly.
	if e.flags[i]&fLocked != 0 {
		e.sendUpdate(i, from, 0, true, msg.Seq)
		return
	}
	e.observeNeighbor(i, from, msg.Has)
	newI, newJ := PairSplit(msg.Has, msg.Max, e.has[i], e.max[i])
	// The hardware coin register cannot hold more than the cap; the
	// residue of a clamped transfer stays with the partner, conserving the
	// pool.
	if cap := e.cfg.CoinCap; cap > 0 {
		total := newI + newJ
		if newI > cap {
			newI = cap
			newJ = total - cap
		} else if newJ > cap {
			newJ = cap
			newI = total - cap
		}
	}
	// Thermal hotspot guard: refuse coins beyond the neighborhood cap;
	// the refused residue stays with the initiator.
	{
		total := newI + newJ
		clamped := e.thermalClamp(i, newJ)
		if clamped != newJ {
			newJ = clamped
			newI = total - newJ
		}
	}
	deltaI := newI - msg.Has
	deltaJ := newJ - e.has[i]
	// A stuck register cannot apply its side of the split: sending the
	// initiator its full delta anyway would double those coins. Refuse the
	// exchange instead (zero-delta ack); the drifted residue from splits
	// that already happened is the audit's problem, not new exchanges'.
	if e.flags[i]&fStuck != 0 {
		e.sendUpdate(i, from, 0, true, msg.Seq)
		return
	}
	e.setHas(i, newJ)
	e.sendUpdate(i, from, deltaI, true, msg.Seq)
	// The receiver also observes whether the exchange was productive, so
	// both parties' dynamic timing reacts — a coin wave travelling across
	// the mesh keeps every tile it touches at the fast exchange rate.
	e.adjustTiming(i, deltaJ)
}

// onFourWayStatus collects a neighbor's reply; when all polled neighbors
// have answered, compute the group split and push each neighbor's delta.
func (e *Emulator) onFourWayStatus(i, from int, msg noc.CoinMsg) {
	slot := e.slotOf(i, from)
	if e.flags[i]&fPendActive == 0 || msg.Seq != e.seqNo[i] || slot < 0 {
		// Stale reply: the attempt it answers was completed, aborted, or
		// abandoned by timeout. Hardened, a non-nack straggler gets an
		// immediate zero-delta release — the responder locked itself for
		// nothing and should not have to wait for its watchdog.
		if e.hardened && !msg.Nack && msg.Seq != e.seqNo[i] {
			e.sendUpdate(i, from, 0, false, msg.Seq)
		}
		return
	}
	base := i * maxNbrs
	if !msg.Nack {
		e.observeNeighbor(i, from, msg.Has)
		e.nbrFailCnt[base+slot] = 0
	}
	e.pend[base+slot] = msg
	e.pendMask[i] |= 1 << slot
	if bits.OnesCount8(e.pendMask[i]) < int(e.pendWant[i]) {
		return
	}
	// If any neighbor refused, abort: release the ones that did join with
	// zero-delta updates and retry on a later tick. This is the conflict
	// resolution that makes overlapping group exchanges safe. Slots are
	// visited in N/E/S/W order, so the release-packet order — and thus NoC
	// contention — is identical between identically seeded runs.
	nc := int(e.nbrCount[i])
	anyNack := false
	for s := 0; s < nc; s++ {
		if e.pendMask[i]&(1<<s) != 0 && e.pend[base+s].Nack {
			anyNack = true
			break
		}
	}
	if anyNack {
		for s := 0; s < nc; s++ {
			if e.pendMask[i]&(1<<s) != 0 && !e.pend[base+s].Nack {
				e.sendUpdate(i, int(e.nbrs[base+s]), 0, false, e.seqNo[i])
			}
		}
		e.flags[i] &^= fPendActive | fBusy
		e.pendMask[i] = 0
		e.busyCount--
		e.adjustTiming(i, 0)
		return
	}
	has := append(e.gatherHas[:0], e.has[i])
	max := append(e.gatherMax[:0], e.max[i])
	for s := 0; s < nc; s++ {
		if e.pendMask[i]&(1<<s) != 0 {
			has = append(has, e.pend[base+s].Has)
			max = append(max, e.pend[base+s].Max)
		}
	}
	out := GroupSplit(has, max)
	var moved int64
	e.setHas(i, out[0])
	moved += abs64(out[0] - has[0])
	k := 0
	for s := 0; s < nc; s++ {
		if e.pendMask[i]&(1<<s) == 0 {
			continue
		}
		k++
		delta := out[k] - has[k]
		moved += abs64(delta)
		e.sendUpdate(i, int(e.nbrs[base+s]), delta, false, e.seqNo[i])
	}
	e.flags[i] &^= fPendActive | fBusy
	e.pendMask[i] = 0
	e.busyCount--
	e.adjustTiming(i, moved)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// killTile fail-stops a tile (injector callback): its FSM halts, its flags
// release, and its coins leave the live pool — stranded budget the audit
// re-mints onto survivors, so the full power budget stays allocatable.
// The kill counts as an activity change: convergence re-arms and the next
// threshold crossing measures the re-convergence after the fault.
func (e *Emulator) killTile(i int) {
	if e.flags[i]&fDead != 0 {
		return
	}
	e.flags[i] |= fDead
	e.tilesDead++
	if e.flags[i]&fBusy != 0 {
		e.flags[i] &^= fBusy
		e.busyCount--
	}
	e.unlockTile(i)
	e.flags[i] &^= fPendActive
	e.pendMask[i] = 0
	e.recomputeError()
	e.converged = false
	e.convergedAt = 0
	e.lastChangeFrom = e.kernel.Now()
	e.lastMovement = e.kernel.Now()
	e.checkConvergence()
}

// audit is the periodic distributed coin-conservation check: compare the
// live pool (plus deltas still travelling the fabric) against the initial
// pool, then re-mint the leak or burn the surplus against each tile's local
// target. In hardware each tile would fold its (has, max) into a spanning
// accumulation wave on the PM plane; the emulator computes the same sums
// directly. Repairs apply deterministically: most-deficient tiles receive
// minted coins first, most-surplus tiles burn first, ties broken by index.
func (e *Emulator) audit() {
	if e.liveCount > 0 {
		e.runAudit()
	}
	e.kernel.ScheduleOp(e.cfg.AuditInterval, e.opAudit, 0, 0)
}

// auditCand is one audit repair candidate: a live tile with a working
// register, ranked by how far below its local target it sits.
type auditCand struct {
	id   int
	need float64 // target minus has: positive wants coins
}

func (e *Emulator) runAudit() {
	var liveSum int64
	for i := 0; i < e.n; i++ {
		if e.flags[i]&fDead == 0 {
			liveSum += e.has[i]
		}
	}
	diff := e.poolTarget - liveSum - e.inFlightDelta
	if diff == 0 {
		return
	}
	e.auditRepairs++
	// Candidates: live tiles with working registers. A stuck register
	// cannot be repaired in place; its drift is repaired on its peers.
	if e.auditCands == nil {
		e.auditCands = make([]auditCand, 0, e.liveCount)
	}
	cands := e.auditCands[:0]
	for i := 0; i < e.n; i++ {
		if e.flags[i]&(fDead|fStuck) != 0 {
			continue
		}
		target := e.alpha * float64(e.max[i])
		if e.cfg.CoinCap > 0 && target > float64(e.cfg.CoinCap) {
			target = float64(e.cfg.CoinCap)
		}
		cands = append(cands, auditCand{id: i, need: target - float64(e.has[i])})
	}
	e.auditCands = cands
	if len(cands) == 0 {
		return
	}
	if diff > 0 {
		// Leak: re-mint onto the most deficient tiles, respecting the cap.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].need != cands[b].need {
				return cands[a].need > cands[b].need
			}
			return cands[a].id < cands[b].id
		})
		remaining := diff
		for _, c := range cands {
			if remaining == 0 {
				break
			}
			grant := remaining
			if e.cfg.CoinCap > 0 {
				if room := e.cfg.CoinCap - e.has[c.id]; room < grant {
					grant = room
				}
			}
			if grant <= 0 {
				continue
			}
			e.setHas(c.id, e.has[c.id]+grant)
			e.coinsMinted += grant
			remaining -= grant
		}
		// Any residue (every tile at cap) waits for the next audit.
	} else {
		// Duplication: burn the surplus from the most over-target tiles.
		// This is what re-enforces the global power cap after a fault
		// created coins from thin air.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].need != cands[b].need {
				return cands[a].need < cands[b].need
			}
			return cands[a].id < cands[b].id
		})
		remaining := -diff
		for _, c := range cands {
			if remaining == 0 {
				break
			}
			take := remaining
			if e.has[c.id] < take {
				take = e.has[c.id]
			}
			if take <= 0 {
				continue
			}
			e.setHas(c.id, e.has[c.id]-take)
			e.coinsBurned += take
			remaining -= take
		}
	}
}

// adjustTiming applies the dynamic-timing rule (Sec. III-D): zero-coin
// exchanges back off multiplicatively by Lambda, but only once a full
// rotation's worth of consecutive exchanges was unproductive — a tile that
// is still converging probes empty neighbors half the time, and stalling it
// on the first miss would slow the transient it exists to speed up.
// Productive exchanges shrink the interval by ShrinkK down to the base
// refresh interval (with the default ShrinkK this is a snap back to base).
func (e *Emulator) adjustTiming(i int, moved int64) {
	if !e.cfg.DynamicTiming {
		return
	}
	if moved == 0 {
		// A relinquishing tile keeps probing at full rate until its
		// orphaned coins find a taker.
		if e.max[i] == 0 && e.has[i] > 0 {
			e.interval[i] = e.cfg.RefreshInterval
			return
		}
		e.zeroStreak[i]++
		if e.zeroStreak[i] < 4 {
			return
		}
		ni := sim.Cycles(float64(e.interval[i]) * e.cfg.Lambda)
		if ni > e.cfg.MaxInterval {
			ni = e.cfg.MaxInterval
		}
		e.interval[i] = ni
	} else {
		e.zeroStreak[i] = 0
		// Snap a backed-off tile to the base rate, then accelerate below
		// it: converging regions exchange faster than the base rate.
		ni := e.interval[i]
		if ni > e.cfg.RefreshInterval {
			ni = e.cfg.RefreshInterval
		}
		if ni > e.cfg.MinInterval+e.cfg.ShrinkK {
			ni -= e.cfg.ShrinkK
		} else {
			ni = e.cfg.MinInterval
		}
		e.interval[i] = ni
	}
}

// Run executes the emulator until convergence (when StopAtConvergence),
// quiescence, or the MaxCycles bound, and returns the run summary.
func (e *Emulator) Run() Result {
	if !e.initialized {
		panic("coin: Run before Init")
	}
	has, max := e.Snapshot()
	startErr, _ := GlobalError(has, max)
	var coinsStart int64
	for _, h := range has {
		coinsStart += h
	}

	// MaxCycles is a per-Run budget so activity-change experiments can
	// chain SetMax and Run repeatedly.
	deadline := e.kernel.Now() + e.cfg.MaxCycles
	stop := func() bool {
		now := e.kernel.Now()
		if now >= deadline {
			return true
		}
		if e.cfg.StopAtConvergence && e.converged {
			return true
		}
		// Quiescent: no coin has moved for a full window and no nonzero
		// transfer is in flight. Zero-coin keep-alive chatter continues in
		// steady state and must not prevent the run from ending.
		if e.nonzeroInFlight == 0 && now-e.lastMovement > e.cfg.QuiesceWindow {
			return true
		}
		return false
	}
	e.kernel.RunUntil(stop, 0)
	// A deadline stop can leave transfers in flight; drain them so the
	// reported pool is conserved. The event budget bounds the drain even
	// if the model misbehaves.
	if e.nonzeroInFlight > 0 {
		e.kernel.RunUntil(func() bool { return e.nonzeroInFlight == 0 }, 1<<20)
	}
	// Hardened runs settle before reporting: freeze new exchange initiation
	// and let the in-flight work drain. Every busy flag has an armed timeout
	// and every lock has a watchdog, so the drain is bounded by
	// LockTimeout plus flight time — a flag that survives it is genuinely
	// stranded, not a keep-alive transient. A final audit then repairs any
	// damage postdating the last periodic one.
	if e.hardened {
		e.frozen = true
		if e.busyCount > 0 || e.lockedCount > 0 || e.nonzeroInFlight > 0 {
			e.kernel.RunUntil(func() bool {
				return e.busyCount == 0 && e.lockedCount == 0 && e.nonzeroInFlight == 0
			}, 1<<20)
		}
		e.runAudit()
		e.frozen = false
	}

	has, max = e.Snapshot()
	finalErr, worst := e.liveGlobalError(has, max)
	var coinsEnd int64
	for i, h := range has {
		if e.flags[i]&fDead == 0 {
			coinsEnd += h
		}
	}
	r := Result{
		Converged:            e.converged,
		ConvergenceCycles:    e.convergedAt,
		PacketsToConvergence: e.pktsAtConv,
		StartErr:             startErr,
		FinalErr:             finalErr,
		WorstTileErr:         worst,
		EndCycles:            e.kernel.Now(),
		TotalPackets:         e.net.Stats().Sent,
		Exchanges:            e.exchanges,
		CoinsStart:           coinsStart,
		CoinsEnd:             coinsEnd,
		PoolViolation:        e.poolTarget - coinsEnd - e.inFlightDelta,
		Dropped:              e.net.Stats().PerPlaneDropped[noc.PlanePM],
		Retries:              e.retries,
		LocksBroken:          e.locksBroken,
		NbrsPruned:           e.nbrsPruned,
		TilesDead:            e.tilesDead,
		AuditRepairs:         e.auditRepairs,
		CoinsMinted:          e.coinsMinted,
		CoinsBurned:          e.coinsBurned,
	}
	return r
}

// liveGlobalError computes the end-of-run error over live tiles only: a
// fail-stopped tile has neither a target nor a register to be wrong.
func (e *Emulator) liveGlobalError(has, max []int64) (float64, float64) {
	if e.tilesDead == 0 {
		return GlobalError(has, max)
	}
	lh := make([]int64, 0, e.liveCount)
	lm := make([]int64, 0, e.liveCount)
	for i := range has {
		if e.flags[i]&fDead == 0 {
			lh = append(lh, has[i])
			lm = append(lm, max[i])
		}
	}
	return GlobalError(lh, lm)
}
