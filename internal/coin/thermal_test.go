package coin

import (
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
)

// thermalRig runs a hotspot scenario: every tile active, all coins in one
// corner, so without a guard the hotspot neighborhood would briefly hold
// nearly the whole pool.
func thermalRig(t *testing.T, cap int64, seed uint64) (*Emulator, Result) {
	t.Helper()
	cfg := Config{
		Mesh:            mesh.Square(6, true),
		Mode:            OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.0,
		ThermalCap:      cap,
	}
	src := rng.New(seed)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	e.Init(HotspotAssignment(src, UniformMaxes(n, 16), int64(n)*8))
	res := e.Run()
	return e, res
}

func TestThermalCapConservesCoins(t *testing.T) {
	_, res := thermalRig(t, 60, 1)
	if res.CoinsStart != res.CoinsEnd {
		t.Fatalf("thermal guard broke conservation: %d -> %d", res.CoinsStart, res.CoinsEnd)
	}
}

func TestThermalCapBoundsNeighborhoods(t *testing.T) {
	// After quiescence, no 5-tile neighborhood may exceed the cap (the
	// guard acts on observed counts, so allow one coin of staleness).
	const cap = 60
	e, _ := thermalRig(t, cap, 2)
	has, _ := e.Snapshot()
	for i := range has {
		if load := e.NeighborhoodLoad(i); load > cap+1 {
			t.Fatalf("tile %d neighborhood load %d exceeds cap %d", i, load, cap)
		}
	}
}

func TestThermalCapRejectsRecorded(t *testing.T) {
	e, _ := thermalRig(t, 40, 3)
	if e.ThermalRejects() == 0 {
		t.Fatal("a tight cap on a hotspot init should record rejects")
	}
	// A loose cap never triggers.
	e2, _ := thermalRig(t, 1<<30, 3)
	if e2.ThermalRejects() != 0 {
		t.Fatalf("loose cap recorded %d rejects", e2.ThermalRejects())
	}
}

func TestThermalCapStillConvergesWhenFeasible(t *testing.T) {
	// The fair allocation is 8 coins per tile, so a 5-tile neighborhood
	// holds 40 at equilibrium; a cap of 60 leaves room and the system
	// still converges.
	_, res := thermalRig(t, 60, 4)
	if !res.Converged {
		t.Fatalf("feasible thermal cap prevented convergence: %+v", res)
	}
}

func TestThermalDisabledMatchesBaseline(t *testing.T) {
	// Cap 0 disables the guard entirely; results equal the unguarded run.
	run := func(cap int64) Result {
		cfg := Config{
			Mesh:            mesh.Square(5, true),
			Mode:            OneWay,
			RefreshInterval: 32,
			RandomPairing:   true,
			Threshold:       1.5,
			ThermalCap:      cap,
		}
		src := rng.New(9)
		e := NewEmulator(cfg, src)
		n := cfg.Mesh.N()
		e.Init(RandomAssignment(src, UniformMaxes(n, 16), int64(n)*8))
		return e.Run()
	}
	a := run(0)
	b := run(1 << 40) // effectively unbounded
	if a.ConvergenceCycles != b.ConvergenceCycles || a.FinalErr != b.FinalErr {
		t.Fatalf("unbounded cap changed behavior: %+v vs %+v", a, b)
	}
}

func TestThermalCapSlowsButDoesNotDeadlockTightCase(t *testing.T) {
	// An infeasibly tight cap (below the fair neighborhood load) cannot
	// converge to the fair allocation, but must not break conservation or
	// livelock the emulator.
	e, res := thermalRig(t, 20, 5)
	if res.CoinsStart != res.CoinsEnd {
		t.Fatalf("conservation broken: %+v", res)
	}
	has, _ := e.Snapshot()
	var total int64
	for _, h := range has {
		total += h
	}
	if total != res.CoinsEnd {
		t.Fatal("snapshot disagrees with result")
	}
}
