// Package coin implements the BlitzCoin coin-exchange algorithm (Sec. III).
//
// Each tile holds an integer number of power units ("coins", has) and a
// target (max) proportional to its maximum power. Tiles repeatedly perform
// local exchanges that equalize the has/max ratio between participants while
// conserving the total coin count, so the fixed SoC-wide budget diffuses to
// the allocation target. The package provides:
//
//   - the pure exchange arithmetic (PairSplit for the 1-way technique of
//     Algorithm 2, GroupSplit for the 4-way technique of Algorithm 1);
//   - a cycle-driven behavioral emulator over the simulated NoC, with the
//     paper's three optimizations: dynamic timing (exponential back-off),
//     wrap-around neighbors, and random pairing (Sec. III-D);
//   - error metrics and convergence detection (Sec. III-E).
package coin

// roundDiv returns a/b rounded to the nearest integer (half away from
// zero). b must be positive. It works for negative a, which occurs for the
// transient negative coin counts discussed in Sec. IV-A.
func roundDiv(a, b int64) int64 {
	if b <= 0 {
		panic("coin: roundDiv requires positive divisor")
	}
	if a >= 0 {
		return (2*a + b) / (2 * b)
	}
	return -((-2*a + b) / (2 * b))
}

// PairSplit computes the fair re-division of coins between two tiles with
// coin counts hasI, hasJ and targets maxI, maxJ, such that both end at the
// same has/max ratio up to the 1-coin quantization. The sum is conserved
// exactly. Tiles with max 0 (inactive) relinquish all coins to the partner;
// if both are inactive, nothing moves.
func PairSplit(hasI, maxI, hasJ, maxJ int64) (newI, newJ int64) {
	if maxI < 0 || maxJ < 0 {
		panic("coin: negative max")
	}
	total := hasI + hasJ
	switch {
	case maxI == 0 && maxJ == 0:
		return hasI, hasJ
	case maxI == 0:
		return 0, total
	case maxJ == 0:
		return total, 0
	}
	newI = roundDiv(total*maxI, maxI+maxJ)
	newJ = total - newI
	// Only move coins when the exchange strictly reduces the pair's
	// deviation from the ideal split. Without this rule, two tiles whose
	// ideal shares have a .5 fraction (e.g. 8 and 9 coins on equal maxes)
	// trade the remainder coin forever — churn the hardware avoids because
	// an exchange that cannot improve the ratio match is a no-op. The
	// comparison is integer-exact, scaled by summax.
	summax := maxI + maxJ
	before := abs64(hasI*summax-total*maxI) + abs64(hasJ*summax-total*maxJ)
	after := abs64(newI*summax-total*maxI) + abs64(newJ*summax-total*maxJ)
	if after >= before {
		return hasI, hasJ
	}
	return newI, newJ
}

// floorDiv returns floor(a/b) for positive b and any a.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// GroupSplit computes the 4-way fair allocation among a center tile and its
// neighbors (Algorithm 1): the group's coins are apportioned in proportion
// to max using the largest-remainder method, so every tile lands within one
// coin of its ideal share and the total is preserved exactly. has and max
// are parallel slices with the center at index 0. Tiles with max 0 receive
// 0 (their coins flow to the others); if all maxes are 0, the input
// allocation is returned unchanged.
func GroupSplit(has, max []int64) []int64 {
	if len(has) != len(max) || len(has) == 0 {
		panic("coin: GroupSplit slice mismatch")
	}
	var total, summax int64
	for i := range has {
		if max[i] < 0 {
			panic("coin: negative max")
		}
		total += has[i]
		summax += max[i]
	}
	out := make([]int64, len(has))
	if summax == 0 {
		copy(out, has)
		return out
	}
	// Floor shares, then hand the leftover coins to the tiles with the
	// largest fractional remainders (ties to the lower index, matching a
	// deterministic hardware priority encoder).
	rems := make([]int64, len(has))
	var assigned int64
	for i := range has {
		if max[i] == 0 {
			continue
		}
		prod := total * max[i]
		out[i] = floorDiv(prod, summax)
		rems[i] = prod - out[i]*summax
		assigned += out[i]
	}
	for left := total - assigned; left > 0; left-- {
		best := -1
		for i := range rems {
			if max[i] == 0 {
				continue
			}
			if best < 0 || rems[i] > rems[best] {
				best = i
			}
		}
		out[best]++
		rems[best] = -1
	}
	// As in PairSplit, only rebalance when it strictly reduces the group's
	// total deviation from the ideal shares (integer-exact, scaled by
	// summax); otherwise report no movement to avoid remainder churn.
	var before, after int64
	for i := range has {
		before += abs64(has[i]*summax - total*max[i])
		after += abs64(out[i]*summax - total*max[i])
	}
	if after >= before {
		copy(out, has)
	}
	return out
}

// Target returns the ideal (real-valued) coin count of a tile under the
// global convergence ratio alpha = sum(has)/sum(max): target_i =
// alpha*max_i. With summax == 0 every target is 0.
func Target(maxI, sumHas, sumMax int64) float64 {
	if sumMax == 0 {
		return 0
	}
	return float64(sumHas) * float64(maxI) / float64(sumMax)
}

// TileError returns E_i = |has_i - alpha*max_i| (Sec. III-E).
func TileError(hasI, maxI, sumHas, sumMax int64) float64 {
	d := float64(hasI) - Target(maxI, sumHas, sumMax)
	if d < 0 {
		return -d
	}
	return d
}

// GlobalError returns E = (1/N) * sum_i |has_i - alpha*max_i|, the paper's
// convergence metric, along with the worst per-tile error.
func GlobalError(has, max []int64) (mean, worst float64) {
	if len(has) != len(max) {
		panic("coin: GlobalError slice mismatch")
	}
	if len(has) == 0 {
		return 0, 0
	}
	var sumHas, sumMax int64
	for i := range has {
		sumHas += has[i]
		sumMax += max[i]
	}
	var total float64
	for i := range has {
		e := TileError(has[i], max[i], sumHas, sumMax)
		total += e
		if e > worst {
			worst = e
		}
	}
	return total / float64(len(has)), worst
}
