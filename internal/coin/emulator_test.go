package coin

import (
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
)

// baseConfig returns a small, fast emulator configuration for tests.
func baseConfig(d int) Config {
	return Config{
		Mesh:            mesh.Square(d, true),
		Mode:            OneWay,
		RefreshInterval: 32,
		RandomPairing:   true,
		Threshold:       1.5,
	}
}

func runOnce(t *testing.T, cfg Config, seed uint64, coinsPerTile int64) Result {
	t.Helper()
	src := rng.New(seed)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	maxes := UniformMaxes(n, 32)
	a := RandomAssignment(src, maxes, int64(n)*coinsPerTile)
	e.Init(a)
	return e.Run()
}

func TestOneWayConvergesOnSmallMesh(t *testing.T) {
	cfg := baseConfig(4)
	cfg.StopAtConvergence = true
	res := runOnce(t, cfg, 1, 16)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.ConvergenceCycles == 0 || res.PacketsToConvergence == 0 {
		t.Fatalf("no work recorded: %+v", res)
	}
}

func TestFourWayConvergesOnSmallMesh(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Mode = FourWay
	cfg.StopAtConvergence = true
	res := runOnce(t, cfg, 2, 16)
	if !res.Converged {
		t.Fatalf("4-way did not converge: %+v", res)
	}
}

func TestCoinConservationAcrossRun(t *testing.T) {
	for _, mode := range []Mode{OneWay, FourWay} {
		for seed := uint64(0); seed < 5; seed++ {
			cfg := baseConfig(5)
			cfg.Mode = mode
			res := runOnce(t, cfg, seed, 10)
			if res.CoinsStart != res.CoinsEnd {
				t.Fatalf("%v seed %d: coins %d -> %d (not conserved)",
					mode, seed, res.CoinsStart, res.CoinsEnd)
			}
			if !res.Conserved() {
				t.Fatalf("%v seed %d: pool violation %d on a healthy run",
					mode, seed, res.PoolViolation)
			}
		}
	}
}

func TestQuiescedRunReachesQuantizationError(t *testing.T) {
	// With random pairing enabled, every tile converges to the target
	// within the 1-coin quantization limit (Fig. 7, red histograms).
	cfg := baseConfig(5)
	res := runOnce(t, cfg, 3, 16)
	if res.WorstTileErr >= 2.0 {
		t.Fatalf("worst tile error %.2f, want < 2 coins", res.WorstTileErr)
	}
	if res.FinalErr >= 1.0 {
		t.Fatalf("final global error %.2f, want < 1", res.FinalErr)
	}
}

func TestHomogeneousUniformTargetWithinOneCoin(t *testing.T) {
	// Equal maxes and a pool divisible by N: every tile converges to the
	// equal split within the 1-coin quantization limit (Fig. 7 / Fig. 19:
	// residual error due to quantization of about one coin).
	cfg := baseConfig(4)
	cfg.Threshold = 0.5
	src := rng.New(7)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	a := RandomAssignment(src, UniformMaxes(n, 8), int64(n)*4)
	e.Init(a)
	res := e.Run()
	if res.CoinsEnd != int64(n)*4 {
		t.Fatalf("pool not conserved: %+v", res)
	}
	has, _ := e.Snapshot()
	for i, h := range has {
		if h < 3 || h > 5 {
			t.Fatalf("tile %d holds %d coins, want 4 +/- 1 (res %+v)", i, h, res)
		}
	}
}

func TestDeadlockWithoutRandomPairing(t *testing.T) {
	// Construct the deadlock of Sec. III-E: an active tile surrounded by
	// inactive tiles cannot reach the rest of the SoC without random
	// pairing. On an open (non-torus) 5x5 mesh, tile 12 (center) is
	// isolated by a ring of max=0 tiles; surplus coins on tile 0 can never
	// flow to it through neighbors-only exchanges... but inactive tiles
	// relinquish coins yet cannot hold targets, so the error stalls at a
	// local minimum.
	m := mesh.New(5, 5, false)
	maxes := make([]int64, 25)
	for i := range maxes {
		maxes[i] = 16
	}
	// Ring around center tile 12: indices 6,7,8,11,13,16,17,18 inactive.
	for _, i := range []int{6, 7, 8, 11, 13, 16, 17, 18} {
		maxes[i] = 0
	}
	has := make([]int64, 25)
	has[0] = 160 // all coins far from the center

	mk := func(pairing bool) Result {
		cfg := Config{
			Mesh:            m,
			Mode:            OneWay,
			RefreshInterval: 32,
			RandomPairing:   pairing,
			Threshold:       1.0,
			MaxCycles:       400000,
		}
		e := NewEmulator(cfg, rng.New(11))
		hc := make([]int64, len(has))
		copy(hc, has)
		e.Init(Assignment{Max: maxes, Has: hc})
		return e.Run()
	}

	without := mk(false)
	with := mk(true)
	if with.WorstTileErr >= without.WorstTileErr && without.WorstTileErr > 2 {
		t.Fatalf("random pairing did not improve residual error: with=%.2f without=%.2f",
			with.WorstTileErr, without.WorstTileErr)
	}
	if with.FinalErr >= 1.5 {
		t.Fatalf("with random pairing, final error %.2f still high", with.FinalErr)
	}
}

func TestShiftRegisterPairingAlsoConverges(t *testing.T) {
	cfg := baseConfig(5)
	cfg.Pairing = PairShiftRegister
	res := runOnce(t, cfg, 13, 12)
	if res.FinalErr >= 1.5 {
		t.Fatalf("shift-register pairing residual error %.2f", res.FinalErr)
	}
}

func TestDynamicTimingReducesSteadyStatePackets(t *testing.T) {
	// Fig. 6: dynamic timing reduces total packet exchanges because
	// already-converged regions stop generating traffic.
	run := func(dynamic bool) Result {
		cfg := baseConfig(6)
		cfg.DynamicTiming = dynamic
		cfg.Threshold = 1.0
		src := rng.New(17)
		e := NewEmulator(cfg, src)
		n := cfg.Mesh.N()
		a := RandomAssignment(src, UniformMaxes(n, 32), int64(n)*16)
		e.Init(a)
		return e.Run()
	}
	conv := run(false)
	dyn := run(true)
	if !conv.Converged || !dyn.Converged {
		t.Fatalf("runs did not converge: %+v / %+v", conv, dyn)
	}
	if dyn.TotalPackets >= conv.TotalPackets {
		t.Fatalf("dynamic timing sent %d packets, conventional %d — expected fewer",
			dyn.TotalPackets, conv.TotalPackets)
	}
}

func TestConvergenceScalesSubLinearly(t *testing.T) {
	// Fig. 3's headline: time to convergence scales ~ sqrt(N), i.e. with
	// d, not with N. Quadrupling the tile count (d: 4 -> 8) must grow the
	// convergence time far less than 4x.
	avg := func(d int) float64 {
		var sum float64
		const trials = 5
		for s := uint64(0); s < trials; s++ {
			cfg := baseConfig(d)
			cfg.StopAtConvergence = true
			res := runOnce(t, cfg, 100+s, 16)
			if !res.Converged {
				t.Fatalf("d=%d seed=%d did not converge", d, s)
			}
			sum += float64(res.ConvergenceCycles)
		}
		return sum / trials
	}
	t4 := avg(4)
	t8 := avg(8)
	if ratio := t8 / t4; ratio > 3.5 {
		t.Fatalf("time ratio for 4x tiles = %.2f, want sub-linear (<3.5)", ratio)
	}
}

func TestSetMaxTriggersRedistribution(t *testing.T) {
	// Activity change: after convergence, ending one tile's execution
	// (max -> 0) must redistribute its coins and re-converge.
	cfg := baseConfig(4)
	cfg.QuiesceWindow = 4096
	// Tight threshold so the SetMax disturbance (E = 1.0 on this config)
	// re-arms convergence detection rather than passing immediately.
	cfg.Threshold = 0.5
	src := rng.New(19)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	maxes := UniformMaxes(n, 16)
	e.Init(ConvergedAssignment(maxes, int64(n)*8))
	res := e.Run()
	if !res.Converged {
		t.Fatalf("converged start not detected: %+v", res)
	}
	e.SetMax(0, 0)
	res = e.Run()
	has, _ := e.Snapshot()
	if has[0] > 1 {
		t.Fatalf("tile 0 still holds %d coins after deactivation", has[0])
	}
	if e.ResponseCycles() == 0 {
		t.Fatal("response time not recorded after SetMax")
	}
	if res.CoinsEnd != int64(n)*8 {
		t.Fatalf("pool changed: %d", res.CoinsEnd)
	}
	if !res.Conserved() {
		t.Fatalf("pool violation %d after SetMax churn", res.PoolViolation)
	}
}

func TestHeterogeneousMaxesProperties(t *testing.T) {
	src := rng.New(23)
	maxes := HeterogeneousMaxes(src, 100, 4, 8)
	counts := map[int64]int{}
	for _, m := range maxes {
		counts[m]++
	}
	if len(counts) != 4 {
		t.Fatalf("distinct levels = %d, want 4", len(counts))
	}
	for _, lv := range []int64{8, 16, 24, 32} {
		if counts[lv] != 25 {
			t.Fatalf("level %d count = %d, want 25", lv, counts[lv])
		}
	}
}

func TestHeterogeneityIncreasesStartError(t *testing.T) {
	// Fig. 8: higher accType means larger start_error for the same pool.
	src := rng.New(29)
	n := 100
	startErr := func(accTypes int) float64 {
		maxes := HeterogeneousMaxes(src.Split(), n, accTypes, 8)
		a := RandomAssignment(src.Split(), maxes, int64(n)*8)
		e, _ := GlobalError(a.Has, a.Max)
		return e
	}
	e1 := startErr(1)
	e8 := startErr(8)
	if e8 <= e1 {
		t.Fatalf("start error did not grow with heterogeneity: acc1=%.2f acc8=%.2f", e1, e8)
	}
}

func TestConvergedAssignmentIsExact(t *testing.T) {
	maxes := []int64{4, 8, 12, 0}
	a := ConvergedAssignment(maxes, 24)
	if a.TotalCoins() != 24 {
		t.Fatalf("pool = %d", a.TotalCoins())
	}
	if a.Has[3] != 0 {
		t.Fatalf("inactive tile got %d coins", a.Has[3])
	}
	mean, _ := GlobalError(a.Has, a.Max)
	if mean >= 1.0 {
		t.Fatalf("converged assignment error %.2f", mean)
	}
}

func TestRunBeforeInitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run before Init did not panic")
		}
	}()
	NewEmulator(baseConfig(3), rng.New(1)).Run()
}

func TestDoubleInitPanics(t *testing.T) {
	cfg := baseConfig(3)
	src := rng.New(1)
	e := NewEmulator(cfg, src)
	n := cfg.Mesh.N()
	a := RandomAssignment(src, UniformMaxes(n, 8), 32)
	e.Init(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Init did not panic")
		}
	}()
	e.Init(a)
}

func TestModeString(t *testing.T) {
	if OneWay.String() != "1-way" || FourWay.String() != "4-way" {
		t.Fatal("mode names wrong")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := baseConfig(4)
	cfg.StopAtConvergence = true
	a := runOnce(t, cfg, 42, 16)
	b := runOnce(t, cfg, 42, 16)
	if a != b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}
