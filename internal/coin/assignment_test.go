package coin

import (
	"testing"

	"blitzcoin/internal/rng"
)

func TestRandomAssignmentPoolExact(t *testing.T) {
	src := rng.New(1)
	a := RandomAssignment(src, UniformMaxes(25, 16), 400)
	if a.TotalCoins() != 400 {
		t.Fatalf("pool = %d, want 400", a.TotalCoins())
	}
	if a.TotalMax() != 400 {
		t.Fatalf("total max = %d, want 400", a.TotalMax())
	}
}

func TestUniformRandomAssignmentBounds(t *testing.T) {
	src := rng.New(2)
	maxes := []int64{0, 8, 16, 32}
	a := UniformRandomAssignment(src, maxes)
	if a.Has[0] != 0 {
		t.Fatalf("inactive tile drew %d coins", a.Has[0])
	}
	for i, h := range a.Has {
		if h < 0 || h > maxes[i] {
			t.Fatalf("tile %d has %d out of [0,%d]", i, h, maxes[i])
		}
	}
}

func TestHotspotAssignmentConcentrated(t *testing.T) {
	src := rng.New(3)
	n := 100
	a := HotspotAssignment(src, UniformMaxes(n, 16), 1600)
	if a.TotalCoins() != 1600 {
		t.Fatalf("pool = %d", a.TotalCoins())
	}
	k := n/16 + 1
	var inCluster int64
	for i := 0; i < k; i++ {
		inCluster += a.Has[i]
	}
	if inCluster != 1600 {
		t.Fatalf("cluster holds %d of 1600 coins", inCluster)
	}
	for i := k; i < n; i++ {
		if a.Has[i] != 0 {
			t.Fatalf("tile %d outside hotspot has %d coins", i, a.Has[i])
		}
	}
}

func TestHotspotScalesWithDimension(t *testing.T) {
	// The hotspot initialization is what exposes the O(sqrt(N)) transport
	// scaling: convergence time grows roughly linearly in d, far slower
	// than N.
	avg := func(d int) float64 {
		var sum float64
		const trials = 10
		for s := 0; s < trials; s++ {
			cfg := baseConfig(d)
			cfg.StopAtConvergence = true
			src := rng.New(uint64(7777*d + s))
			e := NewEmulator(cfg, src)
			n := cfg.Mesh.N()
			maxes := UniformMaxes(n, 32)
			e.Init(HotspotAssignment(src, maxes, int64(n)*16))
			r := e.Run()
			if !r.Converged {
				t.Fatalf("d=%d s=%d not converged", d, s)
			}
			sum += float64(r.ConvergenceCycles)
		}
		return sum / trials
	}
	t8, t16 := avg(8), avg(16)
	ratio := t16 / t8
	// d doubles, N quadruples: the ratio should sit near 2 (linear in d),
	// clearly below 4 (linear in N).
	if ratio > 3 {
		t.Fatalf("hotspot convergence ratio %.2f for 2x dimension, want about 2", ratio)
	}
	if ratio < 1.05 {
		t.Fatalf("hotspot convergence ratio %.2f: no growth with d at all", ratio)
	}
}

func TestAssignmentValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative has did not panic")
		}
	}()
	a := Assignment{Max: []int64{1}, Has: []int64{-1}}
	a.validate(1)
}
