package coin

import (
	"fmt"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
)

// Mode selects the exchange technique of Sec. III-B.
type Mode int

const (
	// OneWay exchanges coins with one neighbor at a time, rotating
	// round-robin (Algorithm 2). This is the preferred embodiment: 8
	// messages per rotation, pairwise-only transfers, simple arithmetic.
	OneWay Mode = iota
	// FourWay exchanges with all four neighbors at once (Algorithm 1):
	// request + status + update per neighbor, 12 messages per exchange.
	FourWay
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case OneWay:
		return "1-way"
	case FourWay:
		return "4-way"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// PairingMode selects how random-pairing partners are chosen (Sec. III-D/E).
type PairingMode int

const (
	// PairUniform picks a uniformly random non-neighbor tile. This is the
	// emulator's model of the paper's "random pairing with a tile other
	// than one of its neighbors".
	PairUniform PairingMode = iota
	// PairShiftRegister cycles deterministically through all non-neighbor
	// tiles, matching the hardware implementation: "a shift-register that
	// eventually pairs all non-neighboring tiles", which bounds the time
	// to resolve any deadlock (Sec. III-E).
	PairShiftRegister
)

// Config parameterizes one emulator run.
type Config struct {
	// Mesh is the tile grid. Set Mesh.Torus for wrap-around neighbors.
	Mesh mesh.Mesh
	// Mode selects 1-way or 4-way exchange.
	Mode Mode

	// RefreshInterval is refreshCount: the base number of cycles between
	// exchange attempts by one tile.
	RefreshInterval sim.Cycles

	// DynamicTiming enables the exponential back-off of Sec. III-D: an
	// exchange that moves zero coins scales the tile's interval up by
	// Lambda; a productive exchange shrinks it by ShrinkK, floored at
	// RefreshInterval.
	DynamicTiming bool
	// Lambda is the back-off factor (> 1). Zero selects the default 2.
	Lambda float64
	// ShrinkK is the additive interval decrease on a productive exchange.
	// A productive exchange first snaps a backed-off tile to the base
	// refresh interval and then keeps shrinking it by ShrinkK per
	// productive exchange, down to MinInterval — this is the
	// "reduced refresh interval" of Sec. III-D that makes actively
	// converging regions exchange faster than the conservative base rate.
	// Zero selects RefreshInterval/2.
	ShrinkK sim.Cycles
	// MinInterval floors the accelerated interval. Zero selects
	// RefreshInterval/8 (at least 2 cycles).
	MinInterval sim.Cycles
	// MaxInterval caps the backed-off interval. Zero selects the default
	// 8x RefreshInterval: deep sleeps would starve the random-pairing
	// cadence (which counts exchanges, not cycles) and delay the wake-up
	// of quiet regions when a coin wave arrives, costing more time than
	// the saved packets are worth.
	MaxInterval sim.Cycles

	// RandomPairing enables intermittent exchanges with non-neighbor
	// tiles, which eliminates local-minimum deadlocks (Sec. III-E).
	RandomPairing bool
	// RandomPairingEvery is the cadence in exchanges; the paper found
	// once every 16 exchanges sufficient. Zero selects 16.
	RandomPairingEvery int
	// Pairing selects the partner-selection rule.
	Pairing PairingMode

	// Threshold is the convergence criterion on the global error Err.
	// The paper uses 1.5 (Fig. 3), 1.0 (Fig. 6); must be positive.
	Threshold float64

	// MaxCycles bounds the run. Zero selects a generous default scaled to
	// the mesh diameter.
	MaxCycles sim.Cycles
	// QuiesceWindow: the run also ends once no coins have moved for this
	// many cycles and no exchange is in flight. Zero selects a default of
	// 64x RefreshInterval (or MaxInterval when dynamic timing is on).
	QuiesceWindow sim.Cycles
	// StopAtConvergence ends the run at the first threshold crossing
	// instead of running to quiescence. Convergence-time experiments
	// (Figs. 3, 4, 6) use this; residual-error experiments (Fig. 7) run
	// to quiescence.
	StopAtConvergence bool

	// CoinCap, when positive, models the hardware coin register width: no
	// tile accepts coins beyond the cap in an exchange (the residue stays
	// with the partner), and per-tile targets are clamped to the cap. The
	// implementation's 6-bit counter corresponds to a cap of 63
	// (Sec. IV-A). Zero means unlimited, the algorithm-level setting of
	// the Sec. III experiments.
	CoinCap int64

	// ThermalCap, when positive, enables the local hotspot guard of
	// Sec. III-B: a tile rejects incoming coins from an exchange when its
	// own count plus its neighbors' (last observed) counts would exceed
	// the cap, bounding the power density of any 5-tile neighborhood.
	// Rejected coins stay with the exchange partner, so the pool is still
	// conserved. Zero disables the guard.
	ThermalCap int64

	// DeficitOnly switches the convergence metric from the paper's
	// symmetric per-tile error |has - alpha*max| to a deficit-only error
	// max(0, target - has). The SoC harness uses this: when the budget
	// exceeds what active tiles can hold, the surplus parks on idle tiles
	// and is not a power-allocation error — the LUT clamps at Fmax anyway.
	DeficitOnly bool

	// NoC sets network timing. Zero value selects noc.DefaultConfig.
	NoC noc.Config

	// Faults, when non-nil, injects the given fault model into the
	// emulator's private network (NewEmulator only; NewEmulatorOn harnesses
	// build their own injector and call AttachFaults). A non-nil Faults
	// implies Harden.
	Faults *fault.Config

	// Harden enables the recovery machinery — exchange timeouts with
	// retry back-off, the participation-lock watchdog, neighbor-liveness
	// pruning, and the periodic coin-conservation audit — even without an
	// injected fault model. Healthy runs leave it off: the watchdog and
	// audit events would perturb the event interleaving, and the seed
	// experiments must stay bit-identical.
	Harden bool

	// ExchangeTimeout is how long an initiator waits for its exchange to
	// complete before releasing busy and retrying. Zero selects four
	// worst-case network round trips plus two refresh intervals, so a
	// merely-delayed reply almost never races the timeout.
	ExchangeTimeout sim.Cycles
	// LockTimeout is the participation-lock watchdog: a tile locked by a
	// 4-way center frees itself after this long, surviving a center that
	// died mid-exchange. Zero selects 2x ExchangeTimeout.
	LockTimeout sim.Cycles
	// RetryBackoff scales a tile's interval up after each timed-out
	// exchange (capped at MaxInterval), so a partitioned tile does not spam
	// the fabric. Zero selects 2.
	RetryBackoff float64
	// NeighborDeadAfter is how many consecutive timed-out exchanges with
	// the same partner mark it dead and prune it from the round-robin and
	// random-pairing sets. Zero selects 4.
	NeighborDeadAfter int
	// AuditInterval is the period of the distributed coin-conservation
	// audit, which re-mints leaked coins and burns duplicated ones against
	// each tile's local target. Zero selects 8x RefreshInterval, so the
	// pool is repaired within a bounded number of refresh intervals after
	// any fault.
	AuditInterval sim.Cycles
}

// withDefaults returns cfg with zero fields replaced by defaults and panics
// on invalid settings.
func (cfg Config) withDefaults() Config {
	if cfg.Mesh.N() == 0 {
		panic("coin: config has empty mesh")
	}
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 32
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 2
	}
	if cfg.Lambda <= 1 {
		panic("coin: Lambda must be > 1")
	}
	if cfg.MaxInterval == 0 {
		cfg.MaxInterval = 8 * cfg.RefreshInterval
	}
	if cfg.ShrinkK == 0 {
		cfg.ShrinkK = cfg.RefreshInterval / 2
	}
	if cfg.MinInterval == 0 {
		cfg.MinInterval = cfg.RefreshInterval / 8
		if cfg.MinInterval < 2 {
			cfg.MinInterval = 2
		}
	}
	if cfg.RandomPairingEvery == 0 {
		cfg.RandomPairingEvery = 16
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 1.5
	}
	if cfg.Threshold < 0 {
		panic("coin: negative threshold")
	}
	if cfg.MaxCycles == 0 {
		diam := sim.Cycles(cfg.Mesh.MaxHopDistance() + 1)
		cfg.MaxCycles = 4096 * cfg.RefreshInterval * diam
	}
	if cfg.QuiesceWindow == 0 {
		w := 64 * cfg.RefreshInterval
		if cfg.DynamicTiming && 4*cfg.MaxInterval > w {
			w = 4 * cfg.MaxInterval
		}
		cfg.QuiesceWindow = w
	}
	if cfg.NoC.HopLatency == 0 && cfg.NoC.RouterLatency == 0 {
		cfg.NoC = noc.DefaultConfig()
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		cfg.Harden = true
	}
	if cfg.ExchangeTimeout == 0 {
		diam := sim.Cycles(cfg.Mesh.MaxHopDistance())
		cfg.ExchangeTimeout = 4*(cfg.NoC.RouterLatency+cfg.NoC.HopLatency*diam) + 2*cfg.RefreshInterval
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 2 * cfg.ExchangeTimeout
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 2
	}
	if cfg.RetryBackoff <= 1 {
		panic("coin: RetryBackoff must be > 1")
	}
	if cfg.NeighborDeadAfter == 0 {
		cfg.NeighborDeadAfter = 4
	}
	if cfg.AuditInterval == 0 {
		cfg.AuditInterval = 8 * cfg.RefreshInterval
	}
	return cfg
}
