package coin

import (
	"fmt"

	"blitzcoin/internal/rng"
)

// Assignment is an initial condition for an emulator run: per-tile targets
// and per-tile starting coin counts.
type Assignment struct {
	Max []int64
	Has []int64
}

// TotalCoins returns the (conserved) coin pool size.
func (a Assignment) TotalCoins() int64 {
	var t int64
	for _, h := range a.Has {
		t += h
	}
	return t
}

// TotalMax returns the sum of targets.
func (a Assignment) TotalMax() int64 {
	var t int64
	for _, m := range a.Max {
		t += m
	}
	return t
}

// validate panics on malformed assignments.
func (a Assignment) validate(n int) {
	if len(a.Max) != n || len(a.Has) != n {
		panic(fmt.Sprintf("coin: assignment size %d/%d, mesh has %d tiles",
			len(a.Max), len(a.Has), n))
	}
	for i := range a.Max {
		if a.Max[i] < 0 || a.Has[i] < 0 {
			panic("coin: negative initial max/has")
		}
	}
}

// UniformMaxes returns n equal targets, the Absolute Proportional (AP)
// allocation strategy where every tile is assigned the same power target.
func UniformMaxes(n int, max int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = max
	}
	return out
}

// HeterogeneousMaxes assigns each of n tiles one of accTypes distinct target
// levels, modeling SoCs with increasing degrees of heterogeneity (Fig. 8:
// accType 1 is fully homogeneous; larger values mean more accelerator
// types). Type k (0-based) gets target base*(k+1); tiles are assigned types
// round-robin and then shuffled so type placement is random, as in the
// paper's Monte Carlo runs.
func HeterogeneousMaxes(src *rng.Source, n, accTypes int, base int64) []int64 {
	if accTypes <= 0 || accTypes > n {
		panic(fmt.Sprintf("coin: accTypes %d out of range for %d tiles", accTypes, n))
	}
	if base <= 0 {
		panic("coin: base target must be positive")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base * int64(i%accTypes+1)
	}
	src.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// RandomAssignment distributes totalCoins uniformly at random across the n
// tiles (each coin lands on an independently chosen tile), modeling the
// random initializations of the Monte Carlo experiments. The targets are
// taken as given.
func RandomAssignment(src *rng.Source, maxes []int64, totalCoins int64) Assignment {
	if totalCoins < 0 {
		panic("coin: negative coin pool")
	}
	has := make([]int64, len(maxes))
	for c := int64(0); c < totalCoins; c++ {
		has[src.Intn(len(maxes))]++
	}
	maxCopy := make([]int64, len(maxes))
	copy(maxCopy, maxes)
	return Assignment{Max: maxCopy, Has: has}
}

// UniformRandomAssignment draws each tile's initial coins independently and
// uniformly from [0, max_i]. The pool size follows from the draw. This
// produces per-tile-scale initial error (mean max/4 per tile) that local
// exchanges absorb quickly.
func UniformRandomAssignment(src *rng.Source, maxes []int64) Assignment {
	has := make([]int64, len(maxes))
	for i, m := range maxes {
		if m > 0 {
			has[i] = src.Int63n(m + 1)
		}
	}
	maxCopy := make([]int64, len(maxes))
	copy(maxCopy, maxes)
	return Assignment{Max: maxCopy, Has: has}
}

// HotspotAssignment concentrates totalCoins on a small cluster of tiles (the
// first ceil(n/16), at least 1), modeling the system state right after a
// large activity change: the coins freed by finished workloads sit in one
// region and must diffuse across the mesh. This is the initialization whose
// convergence time exposes the O(sqrt(N)) transport scaling of Figs. 3-4:
// coins must travel a distance proportional to the mesh dimension d.
func HotspotAssignment(src *rng.Source, maxes []int64, totalCoins int64) Assignment {
	if totalCoins < 0 {
		panic("coin: negative coin pool")
	}
	n := len(maxes)
	k := n/16 + 1
	has := make([]int64, n)
	for c := int64(0); c < totalCoins; c++ {
		has[src.Intn(k)]++
	}
	maxCopy := make([]int64, n)
	copy(maxCopy, maxes)
	return Assignment{Max: maxCopy, Has: has}
}

// ConvergedAssignment returns the allocation a converged system would hold:
// has_i = round(alpha*max_i) with the remainder spread over the first tiles.
// Used as the "from equilibrium" starting point of activity-change
// experiments.
func ConvergedAssignment(maxes []int64, totalCoins int64) Assignment {
	n := len(maxes)
	has := make([]int64, n)
	var sumMax int64
	for _, m := range maxes {
		sumMax += m
	}
	if sumMax > 0 {
		var assigned int64
		for i, m := range maxes {
			has[i] = totalCoins * m / sumMax
			assigned += has[i]
		}
		// Distribute the integer remainder one coin at a time over active
		// tiles so the pool size is exact.
		for i := 0; assigned < totalCoins && n > 0; i = (i + 1) % n {
			if maxes[i] > 0 {
				has[i]++
				assigned++
			}
		}
	}
	maxCopy := make([]int64, n)
	copy(maxCopy, maxes)
	return Assignment{Max: maxCopy, Has: has}
}
