package coin

import (
	"testing"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/rng"
)

// Native fuzz targets: the seed corpus runs under plain `go test`; run with
// `go test -fuzz=FuzzPairSplit ./internal/coin` to explore further.

func FuzzPairSplit(f *testing.F) {
	f.Add(int64(3), int64(8), int64(5), int64(4))
	f.Add(int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(-3), int64(4), int64(9), int64(4))
	f.Add(int64(1<<20), int64(63), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, hasI, maxI, hasJ, maxJ int64) {
		// Constrain to the domain PairSplit promises to handle: any has
		// (including transient negatives), non-negative max, and products
		// that fit int64 (the hardware works in 7-bit registers; the
		// emulator's headroom is vastly larger but not unbounded).
		if maxI < 0 || maxJ < 0 || maxI > 1<<20 || maxJ > 1<<20 {
			t.Skip()
		}
		if hasI > 1<<30 || hasI < -(1<<30) || hasJ > 1<<30 || hasJ < -(1<<30) {
			t.Skip()
		}
		newI, newJ := PairSplit(hasI, maxI, hasJ, maxJ)
		if newI+newJ != hasI+hasJ {
			t.Fatalf("conservation broken: (%d,%d) -> (%d,%d)", hasI, hasJ, newI, newJ)
		}
		// Inactive tiles never end up holding coins after an exchange
		// with an active partner.
		if maxI == 0 && maxJ > 0 && newI != 0 {
			t.Fatalf("inactive tile kept %d coins", newI)
		}
	})
}

// FuzzFaultChurn drives a hardened emulator through an arbitrary interleaving
// of fault injection (drops, duplicates, tile kills, link failures, a stuck
// register) and SetMax target churn, and checks the self-healing invariants
// the recovery machinery promises: whatever the schedule, the run ends with
// the coin pool exactly conserved (after audit repair) and with no tile
// stranded busy or locked.
func FuzzFaultChurn(f *testing.F) {
	f.Add(uint16(1), []byte{0x10, 0x80, 0xF3, 0x22})
	f.Add(uint16(7), []byte{})
	f.Add(uint16(42), []byte{9, 200, 33, 121, 7, 54, 255, 0})
	f.Add(uint16(1000), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Fuzz(func(t *testing.T, seed uint16, script []byte) {
		if len(script) > 24 {
			script = script[:24] // bound the run length
		}
		cfg := baseConfig(4)
		if seed%2 == 1 {
			cfg.Mode = FourWay
		}
		cfg.MaxCycles = 150_000
		n := cfg.Mesh.N()
		fc := &fault.Config{
			Seed:     uint64(seed) + 1,
			DropRate: float64(seed%8) / 200, // 0 .. 3.5%
			DupRate:  float64(seed%5) / 200, // 0 .. 2%
		}
		// Derive a bounded structural-fault schedule from the script: at most
		// two kills, two link failures, and one stuck register, so most of
		// the mesh survives and the audit always has repair candidates.
		var kills, links int
		for i, b := range script {
			at := 100 + 150*uint64(i) + uint64(b)
			tile := int(b) % n
			switch {
			case i%5 == 1 && kills < 2:
				fc.TileKills = append(fc.TileKills, fault.TileFault{Tile: tile, At: at})
				kills++
			case i%5 == 3 && links < 2:
				fc.LinkFails = append(fc.LinkFails, fault.LinkFault{A: tile, B: (tile + 1) % n, At: at})
				links++
			case i == 10:
				fc.StuckCounters = []fault.TileFault{{Tile: tile, At: at}}
			}
		}
		cfg.Faults = fc
		// The script can derive an all-zero fault config; force hardening on
		// so the no-stranded-flags guarantee (which only hardened runs make)
		// is always under test.
		cfg.Harden = true

		src := rng.New(uint64(seed) + 1)
		e := NewEmulator(cfg, src)
		e.Init(RandomAssignment(src, UniformMaxes(n, 16), int64(n)*8))
		for _, b := range script {
			e.SetMax(int(b)%n, int64(b>>3)%32)
			// Let the fabric (and any armed faults) react for a slice.
			e.Kernel().Run(e.Kernel().Now() + 32 + uint64(b)*3)
		}
		res := e.Run()
		if !res.Conserved() {
			t.Fatalf("pool not repaired: violation=%d (%+v)", res.PoolViolation, res)
		}
		if busy, locked := e.FlagCounts(); busy != 0 || locked != 0 {
			t.Fatalf("stranded flags at quiescence: busy=%d locked=%d (%+v)", busy, locked, res)
		}
	})
}

func FuzzGroupSplit(f *testing.F) {
	f.Add(int64(3), int64(5), int64(0), int64(8), int64(4), int64(8), int64(4), int64(4), int64(4), int64(4))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, h0, h1, h2, h3, h4, m0, m1, m2, m3, m4 int64) {
		has := []int64{h0, h1, h2, h3, h4}
		max := []int64{m0, m1, m2, m3, m4}
		var total int64
		for i := range has {
			if max[i] < 0 || max[i] > 1<<16 {
				t.Skip()
			}
			if has[i] > 1<<24 || has[i] < -(1<<24) {
				t.Skip()
			}
			total += has[i]
		}
		out := GroupSplit(has, max)
		var got int64
		for i, v := range out {
			got += v
			if max[i] == 0 && v != 0 {
				// Inactive tiles receive nothing; their input either
				// stayed (all-inactive case) or flowed out.
				allInactive := true
				for _, m := range max {
					if m > 0 {
						allInactive = false
					}
				}
				if !allInactive {
					t.Fatalf("inactive tile %d assigned %d", i, v)
				}
			}
		}
		if got != total {
			t.Fatalf("conservation broken: %d -> %d", total, got)
		}
	})
}
