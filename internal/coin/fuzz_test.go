package coin

import "testing"

// Native fuzz targets: the seed corpus runs under plain `go test`; run with
// `go test -fuzz=FuzzPairSplit ./internal/coin` to explore further.

func FuzzPairSplit(f *testing.F) {
	f.Add(int64(3), int64(8), int64(5), int64(4))
	f.Add(int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(-3), int64(4), int64(9), int64(4))
	f.Add(int64(1<<20), int64(63), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, hasI, maxI, hasJ, maxJ int64) {
		// Constrain to the domain PairSplit promises to handle: any has
		// (including transient negatives), non-negative max, and products
		// that fit int64 (the hardware works in 7-bit registers; the
		// emulator's headroom is vastly larger but not unbounded).
		if maxI < 0 || maxJ < 0 || maxI > 1<<20 || maxJ > 1<<20 {
			t.Skip()
		}
		if hasI > 1<<30 || hasI < -(1<<30) || hasJ > 1<<30 || hasJ < -(1<<30) {
			t.Skip()
		}
		newI, newJ := PairSplit(hasI, maxI, hasJ, maxJ)
		if newI+newJ != hasI+hasJ {
			t.Fatalf("conservation broken: (%d,%d) -> (%d,%d)", hasI, hasJ, newI, newJ)
		}
		// Inactive tiles never end up holding coins after an exchange
		// with an active partner.
		if maxI == 0 && maxJ > 0 && newI != 0 {
			t.Fatalf("inactive tile kept %d coins", newI)
		}
	})
}

func FuzzGroupSplit(f *testing.F) {
	f.Add(int64(3), int64(5), int64(0), int64(8), int64(4), int64(8), int64(4), int64(4), int64(4), int64(4))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, h0, h1, h2, h3, h4, m0, m1, m2, m3, m4 int64) {
		has := []int64{h0, h1, h2, h3, h4}
		max := []int64{m0, m1, m2, m3, m4}
		var total int64
		for i := range has {
			if max[i] < 0 || max[i] > 1<<16 {
				t.Skip()
			}
			if has[i] > 1<<24 || has[i] < -(1<<24) {
				t.Skip()
			}
			total += has[i]
		}
		out := GroupSplit(has, max)
		var got int64
		for i, v := range out {
			got += v
			if max[i] == 0 && v != 0 {
				// Inactive tiles receive nothing; their input either
				// stayed (all-inactive case) or flowed out.
				allInactive := true
				for _, m := range max {
					if m > 0 {
						allInactive = false
					}
				}
				if !allInactive {
					t.Fatalf("inactive tile %d assigned %d", i, v)
				}
			}
		}
		if got != total {
			t.Fatalf("conservation broken: %d -> %d", total, got)
		}
	})
}
