package coin

import (
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/rng"
)

// strikeCfg is a hardened 4-way config that prunes a partner on its first
// silent timeout, so a single exchangeTimeout exercises the pruning path for
// every struck neighbor at once.
func strikeCfg() Config {
	return Config{
		Mesh:              mesh.Square(3, false),
		Mode:              FourWay,
		Harden:            true,
		NeighborDeadAfter: 1,
	}
}

// Regression test: strikePartner used to delete the struck partner from the
// neighbor slice in place while exchangeTimeout was ranging over that same
// slice, shifting the not-yet-visited elements under the iteration — so of
// four silent neighbors only alternate ones were struck. Tombstoning must
// prune all four in one timeout pass, without invalidating any slot index.
func TestTimeoutStrikesEverySilentNeighbor(t *testing.T) {
	e := NewEmulator(strikeCfg(), rng.New(1))
	center := 4 // interior tile of the 3x3: four distinct neighbors
	ts := &e.tiles[center]
	if ts.nbrCount != 4 {
		t.Fatalf("center has %d neighbor slots, want 4", ts.nbrCount)
	}
	e.startFourWay(ts)
	if !ts.busy || !ts.pendActive {
		t.Fatal("startFourWay did not mark the exchange in flight")
	}
	e.exchangeTimeout(center, ts.seq)

	if ts.liveNbrs != 0 {
		t.Fatalf("liveNbrs = %d after all-silent timeout, want 0", ts.liveNbrs)
	}
	for s := 0; s < ts.nbrCount; s++ {
		if !ts.nbrDead[s] {
			t.Fatalf("neighbor slot %d (tile %d) not tombstoned", s, ts.nbrs[s])
		}
	}
	if e.nbrsPruned != 4 {
		t.Fatalf("nbrsPruned = %d, want 4", e.nbrsPruned)
	}
	// Tombstones must not move or remove slots: any held index stays valid.
	if ts.nbrCount != 4 {
		t.Fatalf("nbrCount = %d after pruning, want 4 (slots are never deleted)", ts.nbrCount)
	}
	if ts.busy {
		t.Fatal("timeout left the center busy")
	}
}

// A partial timeout must strike only the silent neighbors and release the
// joined (non-nack) ones with a zero-delta update.
func TestTimeoutPartialAnswersStrikeOnlySilent(t *testing.T) {
	e := NewEmulator(strikeCfg(), rng.New(1))
	center := 4
	ts := &e.tiles[center]
	e.startFourWay(ts)
	joined, nacked := ts.nbrs[0], ts.nbrs[1]
	e.onFourWayStatus(ts, joined, noc.CoinMsg{Has: 3, Max: 8, Reply: true, Seq: ts.seq})
	e.onFourWayStatus(ts, nacked, noc.CoinMsg{Reply: true, Nack: true, Seq: ts.seq})

	sentBefore := e.net.Stats().Sent
	e.exchangeTimeout(center, ts.seq)
	if e.nbrsPruned != 2 {
		t.Fatalf("nbrsPruned = %d, want 2 (the two silent neighbors)", e.nbrsPruned)
	}
	if ts.nbrDead[0] || ts.nbrDead[1] {
		t.Fatal("an answering neighbor was tombstoned")
	}
	if !ts.nbrDead[2] || !ts.nbrDead[3] {
		t.Fatal("a silent neighbor was not tombstoned")
	}
	// Exactly one release packet: the joined neighbor. The nack'd one never
	// locked itself and must not be released.
	if got := e.net.Stats().Sent - sentBefore; got != 1 {
		t.Fatalf("timeout sent %d packets, want 1 (zero-delta release to the joined neighbor)", got)
	}
}

// The round-robin cursor must skip tombstoned slots and keep cycling the
// survivors in slot order.
func TestNextRRPartnerSkipsTombstones(t *testing.T) {
	ts := tileState{nbrs: [maxNbrs]int{10, 11, 12, 13}, nbrCount: 4, liveNbrs: 4}
	ts.nbrDead[1] = true
	ts.liveNbrs--
	want := []int{10, 12, 13, 10, 12, 13}
	for i, w := range want {
		if got := ts.nextRRPartner(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	for s := range ts.nbrDead {
		ts.nbrDead[s] = true
	}
	ts.liveNbrs = 0
	if got := ts.nextRRPartner(); got != -1 {
		t.Fatalf("all-dead draw = %d, want -1", got)
	}
}
