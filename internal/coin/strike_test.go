package coin

import (
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/rng"
)

// strikeCfg is a hardened 4-way config that prunes a partner on its first
// silent timeout, so a single exchangeTimeout exercises the pruning path for
// every struck neighbor at once.
func strikeCfg() Config {
	return Config{
		Mesh:              mesh.Square(3, false),
		Mode:              FourWay,
		Harden:            true,
		NeighborDeadAfter: 1,
	}
}

// Regression test: strikePartner used to delete the struck partner from the
// neighbor slice in place while exchangeTimeout was ranging over that same
// slice, shifting the not-yet-visited elements under the iteration — so of
// four silent neighbors only alternate ones were struck. Tombstoning must
// prune all four in one timeout pass, without invalidating any slot index.
func TestTimeoutStrikesEverySilentNeighbor(t *testing.T) {
	e := NewEmulator(strikeCfg(), rng.New(1))
	center := 4 // interior tile of the 3x3: four distinct neighbors
	if e.nbrCount[center] != 4 {
		t.Fatalf("center has %d neighbor slots, want 4", e.nbrCount[center])
	}
	e.startFourWay(center)
	if e.flags[center]&fBusy == 0 || e.flags[center]&fPendActive == 0 {
		t.Fatal("startFourWay did not mark the exchange in flight")
	}
	e.exchangeTimeout(center, e.seqNo[center])

	if e.liveNbrs[center] != 0 {
		t.Fatalf("liveNbrs = %d after all-silent timeout, want 0", e.liveNbrs[center])
	}
	for s := 0; s < int(e.nbrCount[center]); s++ {
		if e.nbrDeadMask[center]&(1<<s) == 0 {
			t.Fatalf("neighbor slot %d (tile %d) not tombstoned", s, e.nbrs[center*maxNbrs+s])
		}
	}
	if e.nbrsPruned != 4 {
		t.Fatalf("nbrsPruned = %d, want 4", e.nbrsPruned)
	}
	// Tombstones must not move or remove slots: any held index stays valid.
	if e.nbrCount[center] != 4 {
		t.Fatalf("nbrCount = %d after pruning, want 4 (slots are never deleted)", e.nbrCount[center])
	}
	if e.flags[center]&fBusy != 0 {
		t.Fatal("timeout left the center busy")
	}
}

// A partial timeout must strike only the silent neighbors and release the
// joined (non-nack) ones with a zero-delta update.
func TestTimeoutPartialAnswersStrikeOnlySilent(t *testing.T) {
	e := NewEmulator(strikeCfg(), rng.New(1))
	center := 4
	e.startFourWay(center)
	base := center * maxNbrs
	joined, nacked := int(e.nbrs[base]), int(e.nbrs[base+1])
	e.onFourWayStatus(center, joined, noc.CoinMsg{Has: 3, Max: 8, Reply: true, Seq: e.seqNo[center]})
	e.onFourWayStatus(center, nacked, noc.CoinMsg{Reply: true, Nack: true, Seq: e.seqNo[center]})

	sentBefore := e.net.Stats().Sent
	e.exchangeTimeout(center, e.seqNo[center])
	if e.nbrsPruned != 2 {
		t.Fatalf("nbrsPruned = %d, want 2 (the two silent neighbors)", e.nbrsPruned)
	}
	if e.nbrDeadMask[center]&0b11 != 0 {
		t.Fatal("an answering neighbor was tombstoned")
	}
	if e.nbrDeadMask[center]&0b1100 != 0b1100 {
		t.Fatal("a silent neighbor was not tombstoned")
	}
	// Exactly one release packet: the joined neighbor. The nack'd one never
	// locked itself and must not be released.
	if got := e.net.Stats().Sent - sentBefore; got != 1 {
		t.Fatalf("timeout sent %d packets, want 1 (zero-delta release to the joined neighbor)", got)
	}
}

// The round-robin cursor must skip tombstoned slots and keep cycling the
// survivors in slot order.
func TestNextRRPartnerSkipsTombstones(t *testing.T) {
	e := NewEmulator(strikeCfg(), rng.New(1))
	center := 4
	base := center * maxNbrs
	nbrs := [maxNbrs]int{10, 11, 12, 13}
	for s, nb := range nbrs {
		e.nbrs[base+s] = int32(nb)
	}
	e.nbrDeadMask[center] = 1 << 1
	e.liveNbrs[center]--
	want := []int{10, 12, 13, 10, 12, 13}
	for i, w := range want {
		if got := e.nextRRPartner(center); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
	e.nbrDeadMask[center] = 0b1111
	e.liveNbrs[center] = 0
	if got := e.nextRRPartner(center); got != -1 {
		t.Fatalf("all-dead draw = %d, want -1", got)
	}
}
