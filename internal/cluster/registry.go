package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"blitzcoin"
)

// worker is one registry entry: a blitzd worker the coordinator may
// dispatch shards to.
type worker struct {
	url string
	// static workers come from the coordinator's -workers list: they are
	// never removed, only marked dead, and revive on a successful probe.
	// Joined workers (POST /v1/cluster/join) are evicted outright once
	// unreachable past the eviction window.
	static bool
	alive  bool
	// draining workers accept no new shards; once their inflight count
	// reaches zero the autoscaler's drain hook decommissions them.
	draining bool
	// lastSeen is the last successful probe or join; eviction measures
	// from here.
	lastSeen time.Time
	// idleSince is when inflight last dropped to zero; the autoscaler
	// drains joined workers idle past its window.
	idleSince time.Time
	// inflight counts shards currently dispatched to this worker; bounded
	// by ClusterOptions.MaxInflight (backpressure).
	inflight int

	// Scheduling counters, surfaced per worker in /v1/cluster/status and
	// /metrics.
	steals     uint64 // shards picked up after another worker's failed attempt
	specWins   uint64 // speculative copies that finished first
	specLosses uint64 // speculative or primary copies beaten by the other copy
}

// registry is the coordinator's worker table. All acquisition is
// non-blocking: the sweep scheduler polls for slots on its wake loop
// instead of parking on a condition variable, which keeps elastic
// membership (join, eviction, drain) from ever wedging a dispatcher.
type registry struct {
	mu      sync.Mutex
	workers map[string]*worker
}

func newRegistry(static []string) *registry {
	r := &registry{workers: make(map[string]*worker, len(static))}
	now := time.Now()
	for _, u := range static {
		// Optimistically alive: the first dispatch may beat the first
		// heartbeat, and a transport error demotes the worker anyway.
		r.workers[u] = &worker{url: u, static: true, alive: true, lastSeen: now, idleSince: now}
	}
	return r
}

// tryAcquire reserves an in-flight slot on the least-loaded live,
// non-draining worker whose URL is not in exclude, without blocking.
// It returns the worker URL and ok=true on success; anyAlive reports
// whether any live worker exists at all (excluded or saturated ones
// included), so the caller can distinguish "try again shortly" from
// "the cluster is empty".
func (r *registry) tryAcquire(maxInflight int, exclude map[string]bool) (url string, ok, anyAlive bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *worker
	for _, w := range r.workers {
		if !w.alive {
			continue
		}
		anyAlive = true
		if w.draining || w.inflight >= maxInflight || exclude[w.url] {
			continue
		}
		if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.url < best.url) {
			best = w
		}
	}
	if best == nil {
		return "", false, anyAlive
	}
	best.inflight++
	return best.url, true, true
}

// release returns an in-flight slot.
func (r *registry) release(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil && w.inflight > 0 {
		w.inflight--
		if w.inflight == 0 {
			w.idleSince = time.Now()
		}
	}
	r.mu.Unlock()
}

// markDead demotes a worker after a transport failure so the next
// dispatch avoids it immediately instead of waiting for the heartbeat to
// notice. A later successful probe revives it.
func (r *registry) markDead(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil && w.alive {
		w.alive = false
	}
	r.mu.Unlock()
}

// markAlive records a successful probe or join. Joining clears any drain
// mark: a worker that re-registers wants traffic again.
func (r *registry) markAlive(url string, static bool) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil {
		now := time.Now()
		w = &worker{url: url, static: static, idleSince: now}
		r.workers[url] = w
	}
	w.alive = true
	w.lastSeen = time.Now()
	r.mu.Unlock()
}

// rejoin is markAlive for explicit joins: it additionally clears the
// draining mark so a re-registered worker takes traffic again.
func (r *registry) rejoin(url string) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil {
		now := time.Now()
		w = &worker{url: url, idleSince: now}
		r.workers[url] = w
	}
	w.alive = true
	w.draining = false
	w.lastSeen = time.Now()
	r.mu.Unlock()
}

// beginDrain marks a worker as draining: it keeps its in-flight shards
// but is skipped by acquisition. Reports whether the worker exists.
func (r *registry) beginDrain(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return false
	}
	w.draining = true
	return true
}

// finishDrain removes a draining worker once nothing is in flight on it.
// Reports whether the worker was removed (false while shards remain).
func (r *registry) finishDrain(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[url]
	if w == nil {
		return true
	}
	if !w.draining || w.inflight > 0 {
		return false
	}
	delete(r.workers, url)
	return true
}

// addSteal credits url with picking up a shard another worker failed.
func (r *registry) addSteal(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil {
		w.steals++
	}
	r.mu.Unlock()
}

// addSpecWin credits url's speculative copy with finishing first.
func (r *registry) addSpecWin(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil {
		w.specWins++
	}
	r.mu.Unlock()
}

// addSpecLoss records that url's copy of a speculated shard was beaten.
func (r *registry) addSpecLoss(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil {
		w.specLosses++
	}
	r.mu.Unlock()
}

// evictStale demotes workers unreachable past the eviction window:
// static workers stay listed as dead, joined workers are removed.
func (r *registry) evictStale(window time.Duration) (evicted []string) {
	cutoff := time.Now().Add(-window)
	r.mu.Lock()
	for url, w := range r.workers {
		if w.lastSeen.After(cutoff) {
			continue
		}
		if w.static {
			w.alive = false
			continue
		}
		delete(r.workers, url)
		evicted = append(evicted, url)
	}
	r.mu.Unlock()
	return evicted
}

// urls returns every registered worker URL, sorted.
func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for u := range r.workers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// aliveCount reports the number of live, non-draining workers.
func (r *registry) aliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.alive && !w.draining {
			n++
		}
	}
	return n
}

// WorkerStatus is one row of the /v1/cluster/status worker table.
type WorkerStatus struct {
	URL      string `json:"url"`
	Static   bool   `json:"static"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining"`
	Inflight int    `json:"inflight"`
	// LastSeenMillisAgo is the age of the last successful probe or join.
	LastSeenMillisAgo int64 `json:"last_seen_millis_ago"`
	// IdleMillis is how long the worker has had nothing in flight
	// (0 while busy); the autoscaler drains joined workers idle too long.
	IdleMillis int64 `json:"idle_millis"`
	// Scheduling counters: shards stolen from failed peers, and
	// speculative-copy outcomes.
	Steals            uint64 `json:"steals"`
	SpeculativeWins   uint64 `json:"speculative_wins"`
	SpeculativeLosses uint64 `json:"speculative_losses"`
}

func (r *registry) snapshot() []WorkerStatus {
	now := time.Now()
	r.mu.Lock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		idle := int64(0)
		if w.inflight == 0 {
			idle = now.Sub(w.idleSince).Milliseconds()
		}
		out = append(out, WorkerStatus{
			URL:               w.url,
			Static:            w.static,
			Alive:             w.alive,
			Draining:          w.draining,
			Inflight:          w.inflight,
			LastSeenMillisAgo: now.Sub(w.lastSeen).Milliseconds(),
			IdleMillis:        idle,
			Steals:            w.steals,
			SpeculativeWins:   w.specWins,
			SpeculativeLosses: w.specLosses,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// joinBody is the wire form of POST /v1/cluster/join.
type joinBody struct {
	URL string `json:"url"`
}

// HandleJoin serves POST /v1/cluster/join: idempotent worker
// self-registration that doubles as a keepalive.
func (c *Coordinator) HandleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST {\"url\": ...}"})
		return
	}
	var body joinBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil || body.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"url\": \"http://host:port\"}"})
		return
	}
	c.registry.rejoin(body.URL)
	c.log.Info("cluster join", "worker", body.URL)
	writeJSON(w, http.StatusOK, map[string]string{"status": "joined", "url": body.URL})
}

// StatusBody is the response of GET /v1/cluster/status.
type StatusBody struct {
	EngineVersion       string         `json:"engine_version"`
	Workers             []WorkerStatus `json:"workers"`
	QueueDepth          int64          `json:"queue_depth"`
	RunningShards       int64          `json:"running_shards"`
	ShardsDispatched    uint64         `json:"shards_dispatched"`
	ShardsRetried       uint64         `json:"shards_retried"`
	ShardsFailed        uint64         `json:"shards_failed"`
	ShardsSpeculated    uint64         `json:"shards_speculated"`
	SpeculativeWins     uint64         `json:"speculative_wins"`
	DuplicatesDiscarded uint64         `json:"duplicates_discarded"`
	SweepsMerged        uint64         `json:"sweeps_merged"`
	// ShardLatencyP50Millis / P99Millis summarize recent completed-shard
	// service latencies (the window the speculation threshold is
	// derived from); 0 until any shard completes.
	ShardLatencyP50Millis float64 `json:"shard_latency_p50_millis"`
	ShardLatencyP99Millis float64 `json:"shard_latency_p99_millis"`
}

// HandleStatus serves GET /v1/cluster/status.
func (c *Coordinator) HandleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	p50, p99 := c.latencyQuantiles()
	writeJSON(w, http.StatusOK, StatusBody{
		EngineVersion:         blitzcoin.EngineVersion,
		Workers:               c.registry.snapshot(),
		QueueDepth:            c.queueDepth.Load(),
		RunningShards:         c.runningShards.Load(),
		ShardsDispatched:      c.dispatched.Load(),
		ShardsRetried:         c.retried.Load(),
		ShardsFailed:          c.failed.Load(),
		ShardsSpeculated:      c.speculated.Load(),
		SpeculativeWins:       c.specWins.Load(),
		DuplicatesDiscarded:   c.dupDiscarded.Load(),
		SweepsMerged:          c.merged.Load(),
		ShardLatencyP50Millis: p50 * 1000,
		ShardLatencyP99Millis: p99 * 1000,
	})
}

// WriteMetrics appends the cluster section of /metrics: shard counters,
// scheduler gauges, latency quantiles, and per-worker series.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("blitzd_cluster_shards_dispatched_total", "Shard dispatches sent to workers (including retries and speculative copies).", c.dispatched.Load())
	counter("blitzd_cluster_shards_retried_total", "Shard dispatches retried after a worker failure.", c.retried.Load())
	counter("blitzd_cluster_shards_failed_total", "Shards that exhausted every dispatch attempt.", c.failed.Load())
	counter("blitzd_cluster_shards_speculated_total", "Speculative straggler copies launched.", c.speculated.Load())
	counter("blitzd_cluster_speculative_wins_total", "Speculative copies that finished before the original.", c.specWins.Load())
	counter("blitzd_cluster_duplicates_discarded_total", "Late or duplicate shard completions discarded idempotently.", c.dupDiscarded.Load())
	counter("blitzd_cluster_sweeps_merged_total", "Distributed sweeps merged successfully.", c.merged.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_queue_depth Shards waiting for a worker slot.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_queue_depth gauge")
	fmt.Fprintf(w, "blitzd_cluster_queue_depth %d\n", c.queueDepth.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_running_shards Shard copies currently executing on workers.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_running_shards gauge")
	fmt.Fprintf(w, "blitzd_cluster_running_shards %d\n", c.runningShards.Load())
	p50, p99 := c.latencyQuantiles()
	fmt.Fprintln(w, "# HELP blitzd_cluster_shard_latency_seconds Recent completed-shard service latency quantiles.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_shard_latency_seconds gauge")
	fmt.Fprintf(w, "blitzd_cluster_shard_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "blitzd_cluster_shard_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintln(w, "# HELP blitzd_cluster_worker_up Worker liveness (1 alive, 0 dead) by worker URL.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_worker_up gauge")
	snap := c.registry.snapshot()
	for _, ws := range snap {
		up := 0
		if ws.Alive {
			up = 1
		}
		fmt.Fprintf(w, "blitzd_cluster_worker_up{worker=%q} %d\n", ws.URL, up)
	}
	fmt.Fprintln(w, "# HELP blitzd_cluster_worker_steals_total Shards a worker picked up after another worker's failed attempt.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_worker_steals_total counter")
	for _, ws := range snap {
		fmt.Fprintf(w, "blitzd_cluster_worker_steals_total{worker=%q} %d\n", ws.URL, ws.Steals)
	}
	fmt.Fprintln(w, "# HELP blitzd_cluster_worker_spec_wins_total Speculative copies a worker won.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_worker_spec_wins_total counter")
	for _, ws := range snap {
		fmt.Fprintf(w, "blitzd_cluster_worker_spec_wins_total{worker=%q} %d\n", ws.URL, ws.SpeculativeWins)
	}
	fmt.Fprintln(w, "# HELP blitzd_cluster_worker_spec_losses_total Copies on a worker beaten by the other copy of a speculated shard.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_worker_spec_losses_total counter")
	for _, ws := range snap {
		fmt.Fprintf(w, "blitzd_cluster_worker_spec_losses_total{worker=%q} %d\n", ws.URL, ws.SpeculativeLosses)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //blitzlint:allow R001 response encode: the only failure mode is a disconnected client, which the status handler cannot act on
}
