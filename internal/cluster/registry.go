package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"blitzcoin"
)

// worker is one registry entry: a blitzd worker the coordinator may
// dispatch shards to.
type worker struct {
	url string
	// static workers come from the coordinator's -workers list: they are
	// never removed, only marked dead, and revive on a successful probe.
	// Joined workers (POST /v1/cluster/join) are evicted outright once
	// unreachable past the eviction window.
	static bool
	alive  bool
	// lastSeen is the last successful probe or join; eviction measures
	// from here.
	lastSeen time.Time
	// inflight counts shards currently dispatched to this worker; bounded
	// by ClusterOptions.MaxInflight (backpressure).
	inflight int
}

// registry is the coordinator's worker table plus the condition variable
// dispatchers wait on when every live worker is at its in-flight bound.
type registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
}

func newRegistry(static []string) *registry {
	r := &registry{workers: make(map[string]*worker, len(static))}
	r.cond = sync.NewCond(&r.mu)
	now := time.Now()
	for _, u := range static {
		// Optimistically alive: the first dispatch may beat the first
		// heartbeat, and a transport error demotes the worker anyway.
		r.workers[u] = &worker{url: u, static: true, alive: true, lastSeen: now}
	}
	return r
}

// errNoWorkers fails a dispatch fast when the registry holds no live
// worker at all (rather than blocking until one joins).
var errNoWorkers = fmt.Errorf("cluster: no live workers")

// acquire reserves an in-flight slot on the least-loaded live worker,
// blocking while all live workers are saturated. It fails fast with
// errNoWorkers when no worker is live, and with ctx.Err() when the sweep
// is cancelled (the caller broadcasts on cancellation).
func (r *registry) acquire(ctx context.Context, maxInflight int) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		var best *worker
		anyAlive := false
		for _, w := range r.workers {
			if !w.alive {
				continue
			}
			anyAlive = true
			if w.inflight >= maxInflight {
				continue
			}
			if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.url < best.url) {
				best = w
			}
		}
		if best != nil {
			best.inflight++
			return best.url, nil
		}
		if !anyAlive {
			return "", errNoWorkers
		}
		r.cond.Wait()
	}
}

// release returns an in-flight slot and wakes blocked dispatchers.
func (r *registry) release(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil && w.inflight > 0 {
		w.inflight--
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// markDead demotes a worker after a transport failure so the next
// dispatch avoids it immediately instead of waiting for the heartbeat to
// notice. A later successful probe revives it.
func (r *registry) markDead(url string) {
	r.mu.Lock()
	if w := r.workers[url]; w != nil && w.alive {
		w.alive = false
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// markAlive records a successful probe or join.
func (r *registry) markAlive(url string, static bool) {
	r.mu.Lock()
	w := r.workers[url]
	if w == nil {
		w = &worker{url: url, static: static}
		r.workers[url] = w
	}
	w.alive = true
	w.lastSeen = time.Now()
	r.mu.Unlock()
	r.cond.Broadcast()
}

// evictStale demotes workers unreachable past the eviction window:
// static workers stay listed as dead, joined workers are removed.
func (r *registry) evictStale(window time.Duration) (evicted []string) {
	cutoff := time.Now().Add(-window)
	r.mu.Lock()
	for url, w := range r.workers {
		if w.lastSeen.After(cutoff) {
			continue
		}
		if w.static {
			w.alive = false
			continue
		}
		delete(r.workers, url)
		evicted = append(evicted, url)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	return evicted
}

// urls returns every registered worker URL, sorted.
func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for u := range r.workers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// aliveCount reports the number of live workers.
func (r *registry) aliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// WorkerStatus is one row of the /v1/cluster/status worker table.
type WorkerStatus struct {
	URL      string `json:"url"`
	Static   bool   `json:"static"`
	Alive    bool   `json:"alive"`
	Inflight int    `json:"inflight"`
	// LastSeenMillisAgo is the age of the last successful probe or join.
	LastSeenMillisAgo int64 `json:"last_seen_millis_ago"`
}

func (r *registry) snapshot() []WorkerStatus {
	now := time.Now()
	r.mu.Lock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerStatus{
			URL:               w.url,
			Static:            w.static,
			Alive:             w.alive,
			Inflight:          w.inflight,
			LastSeenMillisAgo: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// joinBody is the wire form of POST /v1/cluster/join.
type joinBody struct {
	URL string `json:"url"`
}

// HandleJoin serves POST /v1/cluster/join: idempotent worker
// self-registration that doubles as a keepalive.
func (c *Coordinator) HandleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST {\"url\": ...}"})
		return
	}
	var body joinBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil || body.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"url\": \"http://host:port\"}"})
		return
	}
	c.registry.markAlive(body.URL, false)
	c.log.Info("cluster join", "worker", body.URL)
	writeJSON(w, http.StatusOK, map[string]string{"status": "joined", "url": body.URL})
}

// StatusBody is the response of GET /v1/cluster/status.
type StatusBody struct {
	EngineVersion    string         `json:"engine_version"`
	Workers          []WorkerStatus `json:"workers"`
	ShardsDispatched uint64         `json:"shards_dispatched"`
	ShardsRetried    uint64         `json:"shards_retried"`
	ShardsFailed     uint64         `json:"shards_failed"`
	SweepsMerged     uint64         `json:"sweeps_merged"`
}

// HandleStatus serves GET /v1/cluster/status.
func (c *Coordinator) HandleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, StatusBody{
		EngineVersion:    blitzcoin.EngineVersion,
		Workers:          c.registry.snapshot(),
		ShardsDispatched: c.dispatched.Load(),
		ShardsRetried:    c.retried.Load(),
		ShardsFailed:     c.failed.Load(),
		SweepsMerged:     c.merged.Load(),
	})
}

// WriteMetrics appends the cluster section of /metrics: shard counters
// plus a per-worker liveness gauge.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	fmt.Fprintln(w, "# HELP blitzd_cluster_shards_dispatched_total Shard dispatches sent to workers (including retries).")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_shards_dispatched_total counter")
	fmt.Fprintf(w, "blitzd_cluster_shards_dispatched_total %d\n", c.dispatched.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_shards_retried_total Shard dispatches retried after a worker failure.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_shards_retried_total counter")
	fmt.Fprintf(w, "blitzd_cluster_shards_retried_total %d\n", c.retried.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_shards_failed_total Shards that exhausted every dispatch attempt.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_shards_failed_total counter")
	fmt.Fprintf(w, "blitzd_cluster_shards_failed_total %d\n", c.failed.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_sweeps_merged_total Distributed sweeps merged successfully.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_sweeps_merged_total counter")
	fmt.Fprintf(w, "blitzd_cluster_sweeps_merged_total %d\n", c.merged.Load())
	fmt.Fprintln(w, "# HELP blitzd_cluster_worker_up Worker liveness (1 alive, 0 dead) by worker URL.")
	fmt.Fprintln(w, "# TYPE blitzd_cluster_worker_up gauge")
	for _, ws := range c.registry.snapshot() {
		up := 0
		if ws.Alive {
			up = 1
		}
		fmt.Fprintf(w, "blitzd_cluster_worker_up{worker=%q} %d\n", ws.URL, up)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}
