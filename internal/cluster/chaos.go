package cluster

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"blitzcoin"
	"blitzcoin/internal/fault"
	"blitzcoin/internal/sim"
)

// Chaos drives the repo's deterministic fault model (internal/fault) at
// the cluster transport layer: the same Config that perturbs the NoC's
// PM plane in simulation here perturbs a worker's HTTP surface. The
// mapping treats the coordinator as tile 0 and the wrapped worker as a
// tile of the operator's choosing, with a logical clock that advances one
// sim cycle per intercepted request — so a (config, seed) pair reproduces
// a bit-identical chaos schedule for a given request sequence, exactly
// the "same seed, same run" convention the rest of the repo rests on.
//
// Faults translate as:
//
//   - TileKills[tile]     — the worker crashes: every request at or after
//     At (including one already executing) tears its connection down.
//   - SlowTiles[tile]     — fail-slow: service time stretches by Factor.
//   - LinkFails{0,tile}   — heartbeat partition: all traffic between
//     coordinator and worker is dropped while the worker stays healthy.
//   - DropRate            — a request vanishes (connection torn down).
//   - DupRate             — the request packet delivered twice: the
//     handler runs an extra, discarded time (idempotency exercise).
//   - DelayRate/DelayMax  — delivery delayed; one cycle sleeps chaosCycle.
type Chaos struct {
	inj  *fault.Injector
	kern *sim.Kernel
	tile int
	log  *slog.Logger

	mu    sync.Mutex
	clock sim.Cycles
	slow  float64
}

// chaosCoordTile is the tile index the coordinator plays in the
// transport mapping.
const chaosCoordTile = 0

// chaosCycle is the wall-clock length of one ExtraDelay cycle.
const chaosCycle = time.Millisecond

// NewChaos builds a chaos layer for one worker from the public fault
// options (the same shape the sweep API takes), assigning the worker the
// given tile index (must not be 0, the coordinator's).
func NewChaos(opts blitzcoin.FaultOptions, tile int, log *slog.Logger) *Chaos {
	if log == nil {
		log = slog.Default()
	}
	cfg := fault.Config{
		Seed:      opts.Seed,
		Plane:     -1, // the transport has no planes; every request is PM traffic
		DropRate:  opts.DropRate,
		DupRate:   opts.DupRate,
		DelayRate: opts.DelayRate,
		DelayMax:  sim.Cycles(opts.DelayMaxCycles),
	}
	for _, f := range opts.KillTiles {
		cfg.TileKills = append(cfg.TileKills, fault.TileFault{Tile: f.Tile, At: f.AtCycle})
	}
	for _, f := range opts.FailSlow {
		cfg.SlowTiles = append(cfg.SlowTiles, fault.SlowFault{Tile: f.Tile, At: f.AtCycle, Factor: f.Factor})
	}
	for _, f := range opts.FailLinks {
		cfg.LinkFails = append(cfg.LinkFails, fault.LinkFault{A: f.A, B: f.B, At: f.AtCycle})
	}
	c := &Chaos{
		inj:  fault.NewInjector(cfg),
		kern: &sim.Kernel{},
		tile: tile,
		log:  log,
		slow: 1,
	}
	c.inj.OnFailSlow(func(t int, factor float64) {
		if t == c.tile {
			c.slow = factor // mu already held by the ticking caller
		}
	})
	c.inj.Arm(c.kern)
	return c
}

// Stats exposes the injected-fault counters.
func (c *Chaos) Stats() fault.Stats { return c.inj.Stats() }

// verdict advances the logical clock one cycle and rules on the request.
func (c *Chaos) verdict() (v fault.Verdict, dead bool, slow float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.kern.Run(c.clock)
	if c.inj.TileDead(c.tile) || c.inj.LinkFailed(chaosCoordTile, c.tile) {
		return fault.Verdict{Drop: true}, c.inj.TileDead(c.tile), c.slow
	}
	return c.inj.PacketVerdict(fault.DefaultPlane, chaosCoordTile, c.tile,
		[]int{chaosCoordTile, c.tile}), false, c.slow
}

// deadNow re-checks fail-stop after a handler ran: a kill that fired
// while the request executed still tears the connection down, which is
// what "crash mid-shard" means at this layer.
func (c *Chaos) deadNow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj.TileDead(c.tile)
}

// sleepOrGone sleeps for d or until the request's client disconnects.
func sleepOrGone(r *http.Request, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-r.Context().Done():
	}
}

// discardWriter swallows the duplicate delivery of a dup-verdict request.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

// bufferWriter holds the response until the post-handler fail-stop check
// passes, so a mid-request kill can still abort the connection instead of
// leaking a half-real response.
type bufferWriter struct {
	h      http.Header
	status int
	body   []byte
}

func newBufferWriter() *bufferWriter {
	return &bufferWriter{h: make(http.Header), status: http.StatusOK}
}

func (b *bufferWriter) Header() http.Header { return b.h }
func (b *bufferWriter) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}
func (b *bufferWriter) WriteHeader(status int) { b.status = status }

func (b *bufferWriter) flush(w http.ResponseWriter) {
	for k, vs := range b.h {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	w.Write(b.body) //nolint:errcheck // client gone is the only failure
}

// Wrap applies the chaos layer to a handler. Observability endpoints
// (/metrics, /readyz, /debug/*) pass through untouched so an operator can
// watch the experiment from outside the blast radius; everything else —
// shards, sweeps, health probes — rides the faulty transport.
func (c *Chaos) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/metrics", r.URL.Path == "/readyz",
			len(r.URL.Path) >= 7 && r.URL.Path[:7] == "/debug/":
			next.ServeHTTP(w, r)
			return
		}
		v, dead, slow := c.verdict()
		if dead || v.Drop {
			// A dropped packet never answers: tear the connection down so
			// the coordinator sees a transport error, not a clean HTTP one.
			panic(http.ErrAbortHandler)
		}
		if v.ExtraDelay > 0 {
			sleepOrGone(r, time.Duration(v.ExtraDelay)*chaosCycle)
		}
		if v.Dup {
			// The request packet delivered twice: run the handler once into
			// the void. The worker's cache/coalescing must make this free.
			// The body is buffered so both deliveries read the full payload.
			payload, err := io.ReadAll(r.Body)
			if err == nil {
				dup := r.Clone(r.Context())
				dup.Body = io.NopCloser(bytes.NewReader(payload))
				r.Body = io.NopCloser(bytes.NewReader(payload))
				next.ServeHTTP(&discardWriter{h: make(http.Header)}, dup)
			}
		}
		start := time.Now()
		buf := newBufferWriter()
		next.ServeHTTP(buf, r)
		if slow > 1 {
			// Fail-slow: stretch the observed service time by the factor.
			// Abandoned requests (a cancelled speculation loser) stop
			// stalling immediately — the connection is dead anyway.
			sleepOrGone(r, time.Duration(float64(time.Since(start))*(slow-1)))
		}
		if c.deadNow() {
			panic(http.ErrAbortHandler)
		}
		buf.flush(w)
	})
}
