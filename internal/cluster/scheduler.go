package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"blitzcoin"
	"blitzcoin/internal/trace"
)

// schedTick bounds how long the dispatch loop sleeps between scans when
// no completion wakes it: backoff expiries, newly joined workers, and
// straggler checks are all noticed within one tick.
const schedTick = 5 * time.Millisecond

// copyInfo is one dispatched copy of a shard (the original attempt or a
// speculative re-execution).
type copyInfo struct {
	url         string
	speculative bool
	cancel      context.CancelFunc
}

// shardState tracks one planned shard through the scheduler: queued,
// running (possibly as two copies once speculated), or done. All fields
// are guarded by the owning sched's mutex.
type shardState struct {
	idx int
	sr  shardRange
	// attempts counts failed dispatch attempts; the shard fails the sweep
	// once it reaches MaxAttempts with no copy still running.
	attempts int
	// lastWorker is the worker of the most recent failed attempt; a retry
	// landing elsewhere counts as a steal.
	lastWorker string
	// notBefore gates re-dispatch after a failure (full-jitter backoff).
	notBefore time.Time
	// started is when the oldest currently-running copy was launched;
	// straggler detection measures from here.
	started time.Time
	// speculated is set once a second copy has been launched; at most two
	// copies of a shard ever run.
	speculated bool
	done       bool
	copies     map[int]*copyInfo
}

// sched runs one sweep: a work-queue of fine-grained shards that idle
// workers pull from, plus speculative re-execution of stragglers.
// Completion is first-result-wins — the losing copy is cancelled and any
// duplicate or late completion is discarded idempotently, which is safe
// because shard rows are byte-identical wherever they run.
type sched struct {
	c      *Coordinator
	ctx    context.Context
	cancel context.CancelFunc
	norm   blitzcoin.Request
	hash   string
	// st publishes shard dispatch/completion events on the coordinator's
	// bus (zero value inert). Set by Coordinator.Run after newSched.
	st trace.Stream

	mu        sync.Mutex
	states    []*shardState
	pending   []int // indices of shards waiting for a worker slot, FIFO
	results   []*blitzcoin.ShardResult
	remaining int
	firstErr  error
	// latencies holds this sweep's completed-shard service times
	// (seconds); the speculation threshold is a percentile of these.
	latencies []float64
	copySeq   int
	// noLiveSince marks when dispatch first found no live worker at all;
	// the sweep only fails once that has persisted past noLiveGrace, so a
	// momentary blip (a missed probe, the instant between a death and the
	// heartbeat reviving a peer) doesn't kill the whole sweep.
	noLiveSince time.Time

	wake chan struct{}
}

func newSched(ctx context.Context, c *Coordinator, norm blitzcoin.Request, hash string, ranges []shardRange) *sched {
	ctx, cancel := context.WithCancel(ctx)
	s := &sched{
		c:         c,
		ctx:       ctx,
		cancel:    cancel,
		norm:      norm,
		hash:      hash,
		states:    make([]*shardState, len(ranges)),
		results:   make([]*blitzcoin.ShardResult, len(ranges)),
		remaining: len(ranges),
		wake:      make(chan struct{}, 1),
	}
	for i, sr := range ranges {
		s.states[i] = &shardState{idx: i, sr: sr, copies: make(map[int]*copyInfo)}
		s.pending = append(s.pending, i)
	}
	c.queueDepth.Add(int64(len(s.pending)))
	return s
}

// signal wakes the dispatch loop without blocking.
func (s *sched) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run drives the sweep to completion and returns the shard results in
// index order. On any failure the remaining copies are cancelled; losers
// observe done/cancellation and release their worker slots on their own.
func (s *sched) run() ([]*blitzcoin.ShardResult, error) {
	defer func() {
		s.cancel()
		s.mu.Lock()
		s.c.queueDepth.Add(int64(-len(s.pending)))
		s.pending = nil
		s.mu.Unlock()
	}()
	ticker := time.NewTicker(schedTick)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		if s.firstErr != nil {
			err := s.firstErr
			s.mu.Unlock()
			return nil, err
		}
		if s.remaining == 0 {
			results := s.results
			s.mu.Unlock()
			return results, nil
		}
		s.dispatchLocked()
		s.speculateLocked()
		s.mu.Unlock()
		select {
		case <-s.ctx.Done():
			s.mu.Lock()
			if s.firstErr == nil {
				s.firstErr = s.ctx.Err()
			}
			err := s.firstErr
			s.mu.Unlock()
			return nil, err
		case <-s.wake:
		case <-ticker.C:
		}
	}
}

// dispatchLocked hands pending shards to idle workers: each scan pulls
// the oldest dispatchable shard and places it on the least-loaded live
// worker, so a worker that frees up effectively steals the next unit of
// queued work regardless of any static plan.
func (s *sched) dispatchLocked() {
	now := time.Now()
	for i := 0; i < len(s.pending); {
		st := s.states[s.pending[i]]
		if st.done {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.c.queueDepth.Add(-1)
			continue
		}
		if now.Before(st.notBefore) {
			i++
			continue
		}
		url, ok, anyAlive := s.c.registry.tryAcquire(s.c.opts.MaxInflight, nil)
		if anyAlive {
			s.noLiveSince = time.Time{}
		}
		if !ok {
			if !anyAlive {
				// No live worker at all. Don't block forever, but don't
				// fail on a blip either: give the heartbeat (or a join, or
				// an autoscaler spawn) a grace window to produce a worker
				// before declaring the sweep dead.
				if s.noLiveSince.IsZero() {
					s.noLiveSince = now
				} else if now.Sub(s.noLiveSince) >= s.noLiveGrace() {
					s.c.failed.Add(1)
					s.failLocked(fmt.Errorf("cluster: shard [%d,%d): no live workers for %v", st.sr.lo, st.sr.hi, s.noLiveGrace()))
					return
				}
				return
			}
			// Every live worker is saturated; the next completion,
			// heartbeat revival, or join frees a slot within one tick.
			return
		}
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		s.c.queueDepth.Add(-1)
		if st.attempts > 0 && st.lastWorker != "" && url != st.lastWorker {
			s.c.registry.addSteal(url)
		}
		s.launchLocked(st, url, false)
	}
}

// noLiveGrace is how long dispatch tolerates an empty live-worker set
// before failing the sweep: two heartbeat rounds (so one missed probe
// never kills a sweep), with a one-second floor.
func (s *sched) noLiveGrace() time.Duration {
	grace := 2 * time.Duration(s.c.opts.HeartbeatMillis) * time.Millisecond
	if grace < time.Second {
		grace = time.Second
	}
	return grace
}

// speculateLocked re-dispatches stragglers: once the queue is drained and
// enough shards have completed to estimate a latency distribution, any
// single-copy shard running longer than SpeculationFactor times the
// SpeculationPercentile latency gets a second copy on a different worker.
func (s *sched) speculateLocked() {
	if s.c.opts.NoSpeculation || len(s.pending) != 0 {
		return
	}
	threshold, ok := s.thresholdLocked()
	if !ok {
		return
	}
	now := time.Now()
	for _, st := range s.states {
		if st.done || st.speculated || len(st.copies) != 1 {
			continue
		}
		if now.Sub(st.started) < threshold {
			continue
		}
		exclude := make(map[string]bool, 1)
		for _, ci := range st.copies {
			exclude[ci.url] = true
		}
		url, ok, _ := s.c.registry.tryAcquire(s.c.opts.MaxInflight, exclude)
		if !ok {
			return // no second worker free; retry next scan
		}
		s.launchLocked(st, url, true)
		s.c.log.Info("cluster speculating straggler",
			"lo", st.sr.lo, "hi", st.sr.hi, "worker", url,
			"running_for", now.Sub(st.started), "threshold", threshold)
	}
}

// thresholdLocked derives the straggler threshold from this sweep's
// completed-shard latencies; ok is false until SpeculationMinSamples
// shards have finished.
func (s *sched) thresholdLocked() (time.Duration, bool) {
	if len(s.latencies) < s.c.opts.SpeculationMinSamples {
		return 0, false
	}
	sorted := append([]float64(nil), s.latencies...)
	sort.Float64s(sorted)
	p := percentile(sorted, s.c.opts.SpeculationPercentile)
	return time.Duration(p * s.c.opts.SpeculationFactor * float64(time.Second)), true
}

// percentile reads quantile q from ascending sorted using the
// nearest-rank method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// launchLocked starts one copy of a shard on url (slot already acquired).
func (s *sched) launchLocked(st *shardState, url string, speculative bool) {
	s.copySeq++
	id := s.copySeq
	cctx, cancel := context.WithCancel(s.ctx)
	st.copies[id] = &copyInfo{url: url, speculative: speculative, cancel: cancel}
	if len(st.copies) == 1 {
		st.started = time.Now()
	}
	s.c.dispatched.Add(1)
	s.c.runningShards.Add(1)
	s.st.ShardDispatch(st.sr.lo, st.sr.hi, url)
	if speculative {
		st.speculated = true
		s.c.speculated.Add(1)
	}
	go func() {
		start := time.Now()
		shard, err := s.c.postShard(cctx, url, s.norm, s.hash, st.sr)
		cancel()
		s.c.registry.release(url)
		s.c.runningShards.Add(-1)
		s.complete(st, id, url, shard, err, time.Since(start), speculative)
	}()
}

// complete applies one copy's outcome. First success wins the shard:
// remaining copies are cancelled and their eventual completions (success
// or cancellation error alike) are discarded here idempotently.
func (s *sched) complete(st *shardState, id int, url string, shard *blitzcoin.ShardResult, err error, elapsed time.Duration, speculative bool) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		s.signal()
	}()
	delete(st.copies, id)

	if err == nil {
		if st.done {
			// The other copy already won; this byte-identical duplicate is
			// dropped before it can reach the merge. The loss was already
			// charged when the winner cancelled the remaining copies.
			s.c.dupDiscarded.Add(1)
			return
		}
		st.done = true
		s.results[st.idx] = shard
		s.remaining--
		s.latencies = append(s.latencies, elapsed.Seconds())
		s.c.recordShardLatency(elapsed.Seconds())
		s.st.ShardDone(st.sr.lo, st.sr.hi, url, elapsed.Seconds(), true)
		if st.speculated {
			if speculative {
				s.c.specWins.Add(1)
				s.c.registry.addSpecWin(url)
			}
			for _, ci := range st.copies {
				ci.cancel()
				s.c.registry.addSpecLoss(ci.url)
			}
		}
		return
	}

	if st.done || s.ctx.Err() != nil {
		// A cancelled loser, or the sweep is already ending: the outcome
		// no longer matters.
		return
	}
	if pe, ok := err.(permanentError); ok {
		s.c.failed.Add(1)
		s.failLocked(fmt.Errorf("cluster: shard [%d,%d) on %s: %w", st.sr.lo, st.sr.hi, url, pe.err))
		return
	}
	st.attempts++
	st.lastWorker = url
	s.c.log.Warn("cluster shard dispatch failed",
		"worker", url, "lo", st.sr.lo, "hi", st.sr.hi, "attempt", st.attempts, "error", err)
	if len(st.copies) > 0 {
		// The shard's other copy is still running and may yet win; only
		// when it too fails does the shard re-enter the queue.
		return
	}
	if st.attempts >= s.c.opts.MaxAttempts {
		s.c.failed.Add(1)
		s.failLocked(fmt.Errorf("cluster: shard [%d,%d) failed after %d attempts: %w", st.sr.lo, st.sr.hi, st.attempts, err))
		return
	}
	s.c.retried.Add(1)
	delay := fullJitterBackoff(time.Duration(s.c.opts.RetryBackoffMillis)*time.Millisecond, st.attempts)
	if ra, ok := err.(retryAfterError); ok && ra.after > delay {
		// The worker asked for a longer pause than our backoff would give
		// it (throttling, draining): honor the Retry-After hint.
		delay = ra.after
	}
	st.notBefore = time.Now().Add(delay)
	s.pending = append(s.pending, st.idx)
	s.c.queueDepth.Add(1)
}

// failLocked records the sweep's first fatal error and cancels every
// outstanding copy.
func (s *sched) failLocked(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
	for _, st := range s.states {
		for _, ci := range st.copies {
			ci.cancel()
		}
	}
}

// fullJitterBackoff returns a uniform random delay in [0, base<<(attempt-1))
// — "full jitter", so the retries queued while a worker was down spread
// out instead of thundering back onto it on the same tick. The window is
// capped at 1024x base.
func fullJitterBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 10 {
		shift = 10
	}
	window := base << shift
	return time.Duration(rand.Int64N(int64(window)))
}
