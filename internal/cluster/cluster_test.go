package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blitzcoin"
	"blitzcoin/internal/server"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorker starts a real blitzd worker (full server stack) for the
// coordinator to dispatch to.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newCoordinator(t *testing.T, opts blitzcoin.ClusterOptions) *Coordinator {
	t.Helper()
	c, err := New(Config{Options: opts, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// clusterTestRequests are the determinism-gate workloads: Fig. 7 and the
// fault study, sized for test runtime.
func clusterTestRequests() map[string]blitzcoin.Request {
	return map[string]blitzcoin.Request{
		"fig7": {Figure: &blitzcoin.FigureOptions{
			Name: "7", Ns: []int{16}, Trials: 6, Seed: 2,
		}},
		"faults": {Figure: &blitzcoin.FigureOptions{
			Name: "faults", Dims: []int{4}, DropRates: []float64{0, 0.02}, Trials: 3, Seed: 3,
		}},
	}
}

func resultLines(t *testing.T, res *blitzcoin.Result) []string {
	t.Helper()
	if res == nil || res.Figure == nil {
		t.Fatalf("result carries no figure: %+v", res)
	}
	return res.Figure.Lines
}

func sameLines(t *testing.T, got, want []string, label string) {
	t.Helper()
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("%s: rows differ from single-node\n got: %s\nwant: %s", label, gotJSON, wantJSON)
	}
}

// TestClusterByteIdenticalAtShardCounts is the cluster half of the
// determinism gate: a sweep dispatched across real workers at shard
// counts 1, 2, and 4 returns rows byte-identical to local execution.
func TestClusterByteIdenticalAtShardCounts(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	for name, req := range clusterTestRequests() {
		req := req
		t.Run(name, func(t *testing.T) {
			want, err := blitzcoin.Execute(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4} {
				c := newCoordinator(t, blitzcoin.ClusterOptions{
					Workers: []string{w1.URL, w2.URL},
					Shards:  k,
				})
				got, err := c.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if got.Figure.Meta.Shards != k {
					t.Fatalf("k=%d: meta shards %d", k, got.Figure.Meta.Shards)
				}
				sameLines(t, resultLines(t, got), resultLines(t, want), name)
			}
		})
	}
}

// TestClusterWorkerDeathMidSweep kills one of three workers mid-sweep
// (its connection drops while serving its first shard) and checks the
// coordinator re-dispatches the lost shards to the survivors with rows
// still byte-identical to single-node execution.
func TestClusterWorkerDeathMidSweep(t *testing.T) {
	good1, good2 := newWorker(t), newWorker(t)

	// The dying worker behaves like a healthy peer until its first shard
	// arrives, then drops that connection and every later one (healthz
	// included) — what the coordinator sees when a worker process is
	// killed while computing.
	backend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	h := backend.Handler()
	var killed atomic.Bool
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() || strings.HasPrefix(r.URL.Path, "/v1/shard") {
			killed.Store(true)
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)

	req := clusterTestRequests()["fig7"]
	want, err := blitzcoin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:            []string{good1.URL, good2.URL, dying.URL},
		Shards:             6,
		RetryBackoffMillis: 10,
	})
	got, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameLines(t, resultLines(t, got), resultLines(t, want), "after worker death")
	if c.retried.Load() == 0 {
		t.Error("expected at least one shard retry after the worker died")
	}
	for _, ws := range c.registry.snapshot() {
		if ws.URL == dying.URL && ws.Alive {
			t.Error("dying worker should be marked dead after transport failures")
		}
	}
}

// TestClusterSlowWorkerRedispatch checks the shard timeout: a hung worker
// turns into a retry on a live one instead of wedging the sweep.
func TestClusterSlowWorkerRedispatch(t *testing.T) {
	good := newWorker(t)

	backend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	h := backend.Handler()
	stop := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/shard") {
			// Hang until the coordinator gives up (or the test ends).
			select {
			case <-r.Context().Done():
			case <-stop:
			}
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(hung.Close)
	t.Cleanup(func() { close(stop) }) // LIFO: unblock handlers before Close waits on them

	req := clusterTestRequests()["faults"]
	want, err := blitzcoin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:            []string{good.URL, hung.URL},
		Shards:             2,
		ShardTimeoutMillis: 200,
		RetryBackoffMillis: 10,
	})
	got, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameLines(t, resultLines(t, got), resultLines(t, want), "after hung worker")
	if c.retried.Load() == 0 {
		t.Error("expected the hung worker's shard to be re-dispatched")
	}
}

// TestClusterEviction checks the liveness machinery: unreachable joined
// workers are removed after the eviction window, unreachable static
// workers stay listed as dead, and a dead static worker revives on a
// successful probe.
func TestClusterEviction(t *testing.T) {
	// 127.0.0.1:1 is reserved and refuses connections immediately.
	deadStatic := "http://127.0.0.1:1"
	deadJoined := "http://127.0.0.1:2"
	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:          []string{deadStatic},
		HeartbeatMillis:  20,
		EvictAfterMillis: 60,
	})

	// Join a worker that immediately stops answering.
	jr := httptest.NewRequest(http.MethodPost, "/v1/cluster/join",
		strings.NewReader(`{"url":"`+deadJoined+`"}`))
	rw := httptest.NewRecorder()
	c.HandleJoin(rw, jr)
	if rw.Code != http.StatusOK {
		t.Fatalf("join: %d %s", rw.Code, rw.Body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := c.registry.snapshot()
		staticDead, joinedGone := false, true
		for _, ws := range snap {
			if ws.URL == deadStatic && !ws.Alive {
				staticDead = true
			}
			if ws.URL == deadJoined {
				joinedGone = false
			}
		}
		if staticDead && joinedGone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eviction incomplete: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Revival: a static worker that comes back is probed alive again.
	live := newWorker(t)
	c2 := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:         []string{live.URL},
		HeartbeatMillis: 20,
	})
	c2.registry.markDead(live.URL)
	deadline = time.Now().Add(5 * time.Second)
	for c2.registry.aliveCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("static worker never revived after a successful probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterNoLiveWorkers checks the fail-fast path: a sweep with every
// worker dead errors instead of blocking.
func TestClusterNoLiveWorkers(t *testing.T) {
	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:            []string{"http://127.0.0.1:1"},
		RetryBackoffMillis: 1,
	})
	req := blitzcoin.Request{Trials: 2, Exchange: &blitzcoin.ExchangeOptions{
		Dim: 4, Torus: true, RandomPairing: true, Seed: 1,
	}}
	if _, err := c.Run(context.Background(), req); err == nil {
		t.Fatal("want error with no live workers")
	}
}

// TestClusterEngineMismatch checks version pinning: a worker reporting a
// different engine version is never dispatched to.
func TestClusterEngineMismatch(t *testing.T) {
	// A proxy to a real worker that lies about its engine version.
	real := newWorker(t)
	mismatched := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"status":"ok","engine_version":"0-other"}`) //nolint:errcheck
			return
		}
		httputil.NewSingleHostReverseProxy(mustParse(t, real.URL)).ServeHTTP(w, r)
	}))
	t.Cleanup(mismatched.Close)

	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:         []string{mismatched.URL},
		HeartbeatMillis: 20,
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.registry.aliveCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("mismatched-engine worker should be demoted by the heartbeat")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJoinLoop checks worker self-registration end to end through a
// coordinator-mode server.
func TestJoinLoop(t *testing.T) {
	c := newCoordinator(t, blitzcoin.ClusterOptions{HeartbeatMillis: 50})
	srv := server.New(server.Config{Logger: quietLogger(), Run: c.Run, Cluster: c})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var joined atomic.Bool
	go func() {
		JoinLoop(ctx, nil, ts.URL, "http://worker.example:8425", 20*time.Millisecond, quietLogger())
		joined.Store(true)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, ws := range c.registry.snapshot() {
			if ws.URL == "http://worker.example:8425" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never appeared in the registry")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	deadline = time.Now().Add(5 * time.Second)
	for !joined.Load() {
		if time.Now().After(deadline) {
			t.Fatal("JoinLoop did not stop on context cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustParse(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}
