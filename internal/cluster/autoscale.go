package cluster

import (
	"context"
	"time"
)

// ScaleHooks are the environment's callbacks for elastic membership. The
// coordinator decides when to scale; the hooks know how (exec a local
// blitzd, call a cloud API, tell an operator).
type ScaleHooks struct {
	// Spawn starts one new worker and returns its base URL. The worker is
	// expected to keep itself registered (JoinLoop); the autoscaler also
	// registers the returned URL optimistically so the first heartbeat can
	// confirm it without waiting for the worker's own join.
	Spawn func(ctx context.Context) (string, error)
	// Drain decommissions a worker. It is called only after the
	// coordinator stopped routing shards to the worker and every shard
	// already in flight on it has finished — a drain never loses work.
	Drain func(ctx context.Context, url string) error
}

// AutoscaleConfig tunes the Autoscale loop. The zero value of each field
// takes the default noted on it.
type AutoscaleConfig struct {
	Hooks ScaleHooks
	// MinWorkers is the floor of live workers (default 1). Static workers
	// count toward it but are never drained.
	MinWorkers int
	// MaxWorkers caps Spawn calls (default 8).
	MaxWorkers int
	// BacklogPerWorker is the scale-up trigger: when queued plus running
	// shards exceed BacklogPerWorker per live worker, one worker is
	// spawned per evaluation (default 4).
	BacklogPerWorker int
	// IdleAfter is how long a joined worker must sit with nothing in
	// flight before it is drained (default 30s).
	IdleAfter time.Duration
	// Interval is the evaluation cadence (default 1s).
	Interval time.Duration
}

func (cfg AutoscaleConfig) withDefaults() AutoscaleConfig {
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = 8
	}
	if cfg.BacklogPerWorker <= 0 {
		cfg.BacklogPerWorker = 4
	}
	if cfg.IdleAfter <= 0 {
		cfg.IdleAfter = 30 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return cfg
}

// Autoscale runs the elastic-membership loop until ctx ends: spawn
// workers while backlog builds, drain joined workers that sit idle.
// Blocking — run it in a goroutine.
func (c *Coordinator) Autoscale(ctx context.Context, cfg AutoscaleConfig) {
	cfg = cfg.withDefaults()
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.autoscaleOnce(ctx, cfg)
	}
}

// autoscaleOnce performs one evaluation: finish pending drains, then
// scale up under backlog or mark one idle worker for drain.
func (c *Coordinator) autoscaleOnce(ctx context.Context, cfg AutoscaleConfig) {
	snap := c.registry.snapshot()
	alive := 0
	for _, ws := range snap {
		if ws.Alive && !ws.Draining {
			alive++
		}
	}

	// Complete drains whose inflight count reached zero: the hook
	// decommissions the process, then the registry forgets the worker. A
	// failed hook leaves the worker draining for the next evaluation.
	for _, ws := range snap {
		if !ws.Draining || ws.Inflight > 0 {
			continue
		}
		if cfg.Hooks.Drain != nil {
			if err := cfg.Hooks.Drain(ctx, ws.URL); err != nil {
				c.log.Warn("cluster drain hook failed", "worker", ws.URL, "error", err)
				continue
			}
		}
		if c.registry.finishDrain(ws.URL) {
			c.log.Info("cluster worker drained", "worker", ws.URL)
		}
	}

	backlog := c.queueDepth.Load() + c.runningShards.Load()
	needUp := alive < cfg.MinWorkers ||
		(backlog > int64(cfg.BacklogPerWorker)*int64(alive) && alive < cfg.MaxWorkers)
	if needUp && cfg.Hooks.Spawn != nil && alive < cfg.MaxWorkers {
		url, err := cfg.Hooks.Spawn(ctx)
		if err != nil {
			c.log.Warn("cluster spawn hook failed", "error", err)
			return
		}
		c.registry.rejoin(url)
		c.log.Info("cluster worker spawned", "worker", url, "backlog", backlog, "alive", alive)
		return
	}

	// Scale down: drain at most one joined, idle worker per evaluation,
	// never below the floor and never a static worker.
	if alive <= cfg.MinWorkers || backlog > 0 {
		return
	}
	for _, ws := range snap {
		if ws.Static || !ws.Alive || ws.Draining || ws.Inflight > 0 {
			continue
		}
		if time.Duration(ws.IdleMillis)*time.Millisecond < cfg.IdleAfter {
			continue
		}
		if c.registry.beginDrain(ws.URL) {
			c.log.Info("cluster draining idle worker", "worker", ws.URL, "idle_millis", ws.IdleMillis)
		}
		return
	}
}
