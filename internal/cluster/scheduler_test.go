package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blitzcoin"
	"blitzcoin/internal/server"
)

// newSlowWorker starts a worker whose /v1/shard calls are held for delay
// (context-aware) before the real computation runs — a fail-slow node
// that still answers health probes promptly.
func newSlowWorker(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	backend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	h := backend.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/shard") {
			// Drain the body before stalling: the net/http server only
			// watches for client aborts once the body has been consumed,
			// and a cancelled speculation loser must unblock immediately.
			payload, err := io.ReadAll(r.Body)
			if err != nil {
				return
			}
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(payload))
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterSpeculationBeatsStraggler is the tentpole's core scenario: a
// fail-slow worker holds a shard far past the completed-shard latency
// threshold, the scheduler launches a speculative copy on a healthy
// worker, the copy wins, and the rows stay byte-identical to single-node
// execution.
func TestClusterSpeculationBeatsStraggler(t *testing.T) {
	const stall = 30 * time.Second // would dominate the sweep without speculation
	fast := newWorker(t)
	slow := newSlowWorker(t, stall)

	req := clusterTestRequests()["fig7"]
	want, err := blitzcoin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:   []string{fast.URL, slow.URL},
		StealUnit: 1, // fine-grained: every trial unit its own shard
	})
	start := time.Now()
	got, err := c.Run(context.Background(), req)
	makespan := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	sameLines(t, resultLines(t, got), resultLines(t, want), "speculated sweep")
	if c.speculated.Load() == 0 || c.specWins.Load() == 0 {
		t.Errorf("speculated=%d wins=%d; want both > 0", c.speculated.Load(), c.specWins.Load())
	}
	if makespan >= stall {
		t.Errorf("makespan %v bounded by the straggler's %v stall", makespan, stall)
	}
	// The healthy worker's speculative wins are credited per worker.
	var fastWins uint64
	for _, ws := range c.registry.snapshot() {
		if ws.URL == fast.URL {
			fastWins = ws.SpeculativeWins
		}
	}
	if fastWins == 0 {
		t.Error("healthy worker shows no speculative wins in the registry snapshot")
	}
}

// TestClusterNoSpeculationKnob checks the off switch: with speculation
// disabled nothing is ever re-dispatched early, however slow a worker is
// relative to its peers.
func TestClusterNoSpeculationKnob(t *testing.T) {
	fast := newWorker(t)
	slow := newSlowWorker(t, 300*time.Millisecond)

	req := clusterTestRequests()["faults"]
	want, err := blitzcoin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:       []string{fast.URL, slow.URL},
		StealUnit:     1,
		NoSpeculation: true,
	})
	got, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameLines(t, resultLines(t, got), resultLines(t, want), "no-speculation sweep")
	if c.speculated.Load() != 0 {
		t.Errorf("speculated=%d with NoSpeculation set", c.speculated.Load())
	}
}

// TestSchedulerDuplicateCompletionIdempotent drives the first-result-wins
// rule directly: both copies of a speculated shard complete successfully,
// and the second byte-identical result is discarded without disturbing
// the merge inputs or the win/loss accounting.
func TestSchedulerDuplicateCompletionIdempotent(t *testing.T) {
	c := newCoordinator(t, blitzcoin.ClusterOptions{Workers: []string{"http://w1", "http://w2"}})
	req := clusterTestRequests()["fig7"].Normalized()
	hash, err := req.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(context.Background(), c, req, hash, []shardRange{{0, 1}, {1, 2}})
	defer s.cancel()

	st := s.states[0]
	st.speculated = true
	st.copies[1] = &copyInfo{url: "http://w1", cancel: func() {}}
	st.copies[2] = &copyInfo{url: "http://w2", speculative: true, cancel: func() {}}

	first := &blitzcoin.ShardResult{Lo: 0, Hi: 1}
	dup := &blitzcoin.ShardResult{Lo: 0, Hi: 1}
	// The speculative copy wins...
	s.complete(st, 2, "http://w2", first, nil, 10*time.Millisecond, true)
	// ...and the original's completion arrives late.
	s.complete(st, 1, "http://w1", dup, nil, 15*time.Millisecond, false)

	if s.results[0] != first {
		t.Error("winner's result was displaced by the duplicate")
	}
	if s.remaining != 1 {
		t.Errorf("remaining = %d, want 1 (only shard 0 completed)", s.remaining)
	}
	if c.dupDiscarded.Load() != 1 {
		t.Errorf("duplicates discarded = %d, want 1", c.dupDiscarded.Load())
	}
	if c.specWins.Load() != 1 {
		t.Errorf("speculative wins = %d, want 1", c.specWins.Load())
	}
	var w1Losses, w2Wins uint64
	for _, ws := range c.registry.snapshot() {
		switch ws.URL {
		case "http://w1":
			w1Losses = ws.SpeculativeLosses
		case "http://w2":
			w2Wins = ws.SpeculativeWins
		}
	}
	if w1Losses != 1 || w2Wins != 1 {
		t.Errorf("per-worker accounting: w1 losses=%d (want 1), w2 wins=%d (want 1)", w1Losses, w2Wins)
	}
}

// TestPlanStealUnit checks the fine-grained planning knob: StealUnit
// bounds the units per shard and overrides the static shard counts.
func TestPlanStealUnit(t *testing.T) {
	c := newCoordinator(t, blitzcoin.ClusterOptions{
		Workers:   []string{"http://w1"},
		Shards:    2, // overridden by StealUnit
		StealUnit: 1,
	})
	ranges := c.plan(6)
	if len(ranges) != 6 {
		t.Fatalf("StealUnit=1 over 6 units planned %d shards, want 6", len(ranges))
	}
	for i, r := range ranges {
		if r.hi-r.lo != 1 || r.lo != i {
			t.Fatalf("shard %d = [%d,%d), want [%d,%d)", i, r.lo, r.hi, i, i+1)
		}
	}
	c2 := newCoordinator(t, blitzcoin.ClusterOptions{Workers: []string{"http://w1"}, StealUnit: 4})
	if got := len(c2.plan(6)); got != 2 {
		t.Fatalf("StealUnit=4 over 6 units planned %d shards, want ceil(6/4)=2", got)
	}
}

// TestFullJitterBackoff checks the satellite fix: every delay is uniform
// in [0, base<<(attempt-1)) with the window capped, so no two retries are
// pinned to the same tick.
func TestFullJitterBackoff(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 14; attempt++ {
		window := base << 10
		if attempt <= 11 {
			window = base << (attempt - 1)
		}
		for i := 0; i < 100; i++ {
			d := fullJitterBackoff(base, attempt)
			if d < 0 || d >= window {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, window)
			}
		}
	}
	if d := fullJitterBackoff(0, 3); d != 0 {
		t.Fatalf("zero base should yield zero delay, got %v", d)
	}
}

// TestCoordinatorReadiness checks the readiness surface the autoscaler
// and /readyz consume.
func TestCoordinatorReadiness(t *testing.T) {
	w := newWorker(t)
	c := newCoordinator(t, blitzcoin.ClusterOptions{Workers: []string{w.URL}})
	cr := c.Readiness()
	if !cr.Ready || cr.AliveWorkers != 1 {
		t.Fatalf("readiness with a live worker = %+v", cr)
	}
	c.registry.markDead(w.URL)
	if cr := c.Readiness(); cr.Ready || cr.AliveWorkers != 0 {
		t.Fatalf("readiness with all workers dead = %+v", cr)
	}
	c.registry.markAlive(w.URL, true)
	c.registry.beginDrain(w.URL)
	if cr := c.Readiness(); cr.Ready || cr.DrainingWorkers != 1 {
		t.Fatalf("readiness with the only worker draining = %+v", cr)
	}
}
