// Package cluster distributes blitzcoin Monte-Carlo sweeps across blitzd
// workers. A Coordinator splits a request's flattened trial axis into
// contiguous [lo, hi) shards, dispatches them to workers over POST
// /v1/shard, and merges the shard rows in index order with
// blitzcoin.MergeShards — so a clustered sweep returns rows byte-identical
// to single-node execution at any shard count, even after a mid-sweep
// worker death forces re-dispatch.
//
// Worker liveness is tracked two ways: a heartbeat loop probes every
// registered worker's /healthz on a fixed cadence (evicting workers
// unreachable past the eviction window), and a transport failure during
// dispatch demotes the worker immediately so the shard's retry lands
// elsewhere. Workers register statically (the coordinator's -workers
// list) or dynamically (POST /v1/cluster/join, kept fresh by JoinLoop).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blitzcoin"
	"blitzcoin/internal/server"
)

// Config configures a Coordinator.
type Config struct {
	// Options are the cluster knobs (workers, shard planning, retry,
	// liveness). Normalized and validated by New.
	Options blitzcoin.ClusterOptions
	// Logger receives worker state transitions and dispatch failures.
	// Default: slog.Default().
	Logger *slog.Logger
	// Client performs every worker HTTP call. Default: a fresh
	// http.Client (per-call timeouts come from contexts).
	Client *http.Client
}

// Coordinator dispatches distributed sweeps. Its Run method has the
// server.RunFunc shape, so a coordinator blitzd is an ordinary blitzd
// whose compute function fans out instead of computing locally.
type Coordinator struct {
	opts     blitzcoin.ClusterOptions
	log      *slog.Logger
	client   *http.Client
	registry *registry

	dispatched atomic.Uint64
	retried    atomic.Uint64
	failed     atomic.Uint64
	merged     atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// New builds a Coordinator and starts its heartbeat loop.
func New(cfg Config) (*Coordinator, error) {
	opts := cfg.Options.Normalized()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{
		opts:     opts,
		log:      cfg.Logger,
		client:   cfg.Client,
		registry: newRegistry(opts.Workers),
		stop:     make(chan struct{}),
	}
	c.done.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// Close stops the heartbeat loop. In-flight Runs are unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.done.Wait()
}

// heartbeatLoop probes every registered worker on the heartbeat cadence
// and evicts workers unreachable past the eviction window.
func (c *Coordinator) heartbeatLoop() {
	defer c.done.Done()
	interval := time.Duration(c.opts.HeartbeatMillis) * time.Millisecond
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.probeAll(interval)
		for _, url := range c.registry.evictStale(time.Duration(c.opts.EvictAfterMillis) * time.Millisecond) {
			c.log.Warn("cluster worker evicted", "worker", url)
		}
	}
}

// probeAll probes every worker's /healthz concurrently, bounded by the
// heartbeat interval.
func (c *Coordinator) probeAll(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, url := range c.registry.urls() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if c.probe(ctx, url) {
				c.registry.markAlive(url, true)
			} else {
				c.registry.markDead(url)
			}
		}(url)
	}
	wg.Wait()
}

// probe reports whether a worker answers /healthz with a matching engine
// version. A mismatched engine is treated as dead: merging rows computed
// by a different engine would silently break determinism.
func (c *Coordinator) probe(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var body struct {
		Status        string `json:"status"`
		EngineVersion string `json:"engine_version"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
		return false
	}
	if body.EngineVersion != blitzcoin.EngineVersion {
		c.log.Warn("cluster worker engine mismatch",
			"worker", url, "worker_engine", body.EngineVersion, "coordinator_engine", blitzcoin.EngineVersion)
		return false
	}
	return true
}

// shardRange is one planned dispatch unit.
type shardRange struct{ lo, hi int }

// plan splits [0, units) into contiguous ranges: the explicit Shards
// count when set, else ShardsPerWorker per live worker, clamped to the
// unit count and floored at one.
func (c *Coordinator) plan(units int) []shardRange {
	k := c.opts.Shards
	if k <= 0 {
		alive := c.registry.aliveCount()
		if alive < 1 {
			alive = 1
		}
		k = c.opts.ShardsPerWorker * alive
	}
	if k > units {
		k = units
	}
	if k < 1 {
		k = 1
	}
	base, rem := units/k, units%k
	out := make([]shardRange, 0, k)
	at := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, shardRange{at, at + size})
		at += size
	}
	return out
}

// Run executes a request across the cluster: plan shards, dispatch them
// with per-shard retry, merge in index order. It satisfies
// server.RunFunc, so it plugs directly into a blitzd Server.
func (c *Coordinator) Run(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
	norm := req.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	hash, err := norm.CanonicalHash()
	if err != nil {
		return nil, err
	}
	units, err := norm.ShardUnits()
	if err != nil {
		return nil, err
	}
	ranges := c.plan(units)

	// Dispatchers block in registry.acquire when all live workers are
	// saturated; wake them when the sweep is cancelled or fails.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	wake := make(chan struct{})
	defer close(wake)
	go func() {
		select {
		case <-ctx.Done():
			c.registry.cond.Broadcast()
		case <-wake:
		}
	}()

	shards := make([]*blitzcoin.ShardResult, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, sr := range ranges {
		wg.Add(1)
		go func(i int, sr shardRange) {
			defer wg.Done()
			shard, err := c.dispatchShard(ctx, norm, hash, sr)
			if err != nil {
				errs[i] = err
				cancel() // one lost shard fails the sweep; stop the rest
				return
			}
			shards[i] = shard
		}(i, sr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res, err := blitzcoin.MergeShards(norm, shards)
	if err != nil {
		return nil, err
	}
	c.merged.Add(1)
	return res, nil
}

// permanentError marks a dispatch failure retrying cannot fix (the worker
// rejected the request itself, e.g. 400 or an options-hash 409).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }

// dispatchShard runs one shard to completion: acquire the least-loaded
// live worker, POST the shard, and on failure retry on the survivors with
// exponential backoff, up to MaxAttempts.
func (c *Coordinator) dispatchShard(ctx context.Context, norm blitzcoin.Request, hash string, sr shardRange) (*blitzcoin.ShardResult, error) {
	backoff := time.Duration(c.opts.RetryBackoffMillis) * time.Millisecond
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retried.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		url, err := c.registry.acquire(ctx, c.opts.MaxInflight)
		if err != nil {
			c.failed.Add(1)
			return nil, fmt.Errorf("cluster: shard [%d,%d): %w", sr.lo, sr.hi, err)
		}
		c.dispatched.Add(1)
		shard, err := c.postShard(ctx, url, norm, hash, sr)
		c.registry.release(url)
		if err == nil {
			return shard, nil
		}
		if pe, ok := err.(permanentError); ok {
			c.failed.Add(1)
			return nil, fmt.Errorf("cluster: shard [%d,%d) on %s: %w", sr.lo, sr.hi, url, pe.err)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		c.log.Warn("cluster shard dispatch failed",
			"worker", url, "lo", sr.lo, "hi", sr.hi, "attempt", attempt, "error", err)
	}
	c.failed.Add(1)
	return nil, fmt.Errorf("cluster: shard [%d,%d) failed after %d attempts: %w", sr.lo, sr.hi, c.opts.MaxAttempts, lastErr)
}

// postShard performs one POST /v1/shard call under the shard timeout. A
// transport failure (connection refused, timeout, torn body) demotes the
// worker so the retry immediately avoids it; the heartbeat revives the
// worker if it comes back.
func (c *Coordinator) postShard(ctx context.Context, url string, norm blitzcoin.Request, hash string, sr shardRange) (*blitzcoin.ShardResult, error) {
	body, err := json.Marshal(blitzcoin.ShardRequest{Request: norm, Lo: sr.lo, Hi: sr.hi, OptionsHash: hash})
	if err != nil {
		return nil, permanentError{fmt.Errorf("encoding shard request: %w", err)}
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(c.opts.ShardTimeoutMillis)*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.registry.markDead(url)
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.registry.markDead(url)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("worker returned %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The worker understood us and said no (bad request, options
			// hash conflict): every worker runs the same code, so retrying
			// elsewhere cannot succeed.
			return nil, permanentError{err}
		}
		return nil, err
	}
	var envelope server.ShardResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		c.registry.markDead(url)
		return nil, fmt.Errorf("decoding shard envelope: %w", err)
	}
	var shard blitzcoin.ShardResult
	if err := json.Unmarshal(envelope.Shard, &shard); err != nil {
		return nil, permanentError{fmt.Errorf("decoding shard result: %w", err)}
	}
	return &shard, nil
}

// JoinLoop registers selfURL with a coordinator and keeps the
// registration fresh on the given cadence until ctx ends — the worker
// half of dynamic membership. Failures are logged and retried on the next
// tick; the loop never gives up while the context lives.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration, log *slog.Logger) {
	if client == nil {
		client = &http.Client{}
	}
	if log == nil {
		log = slog.Default()
	}
	join := func() {
		body, _ := json.Marshal(joinBody{URL: selfURL})
		callCtx, cancel := context.WithTimeout(ctx, interval)
		defer cancel()
		req, err := http.NewRequestWithContext(callCtx, http.MethodPost, coordinatorURL+"/v1/cluster/join", bytes.NewReader(body))
		if err != nil {
			log.Warn("cluster join failed", "coordinator", coordinatorURL, "error", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			log.Warn("cluster join failed", "coordinator", coordinatorURL, "error", err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // keepalive best effort
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Warn("cluster join rejected", "coordinator", coordinatorURL, "status", resp.StatusCode)
		}
	}
	join()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			join()
		}
	}
}
