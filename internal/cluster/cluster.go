// Package cluster distributes blitzcoin Monte-Carlo sweeps across blitzd
// workers. A Coordinator splits a request's flattened trial axis into
// fine-grained [lo, hi) shards, feeds them through a work-stealing
// scheduler (idle workers pull the next queued shard; stragglers are
// speculatively re-executed on a second worker, first completion wins),
// and merges the shard rows in index order with blitzcoin.MergeShards —
// so a clustered sweep returns rows byte-identical to single-node
// execution at any shard count, even after a mid-sweep worker death or a
// duplicate completion from a speculation race.
//
// Worker liveness is tracked two ways: a heartbeat loop probes every
// registered worker's /healthz on a fixed cadence (evicting workers
// unreachable past the eviction window), and a transport failure during
// dispatch demotes the worker immediately so the shard's retry lands
// elsewhere. Workers register statically (the coordinator's -workers
// list) or dynamically (POST /v1/cluster/join, kept fresh by JoinLoop);
// an Autoscaler can add workers under backlog and drain idle ones.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blitzcoin"
	"blitzcoin/internal/server"
	"blitzcoin/internal/trace"
)

// Config configures a Coordinator.
type Config struct {
	// Options are the cluster knobs (workers, shard planning, retry,
	// liveness, speculation). Normalized and validated by New.
	Options blitzcoin.ClusterOptions
	// Logger receives worker state transitions and dispatch failures.
	// Default: slog.Default().
	Logger *slog.Logger
	// Client performs every worker HTTP call. Default: a fresh
	// http.Client (per-call timeouts come from contexts).
	Client *http.Client
	// Bus receives the coordinator-side live events of every distributed
	// sweep: the sweep lifecycle plus shard dispatch/completion, keyed by
	// the request's canonical hash — the bridge that lets a coordinator's
	// /v1/stream follow a cluster sweep. Default: trace.Default().
	Bus *trace.Bus
}

// latencyWindow bounds the ring of recent completed-shard latencies the
// /metrics quantiles are computed over.
const latencyWindow = 1024

// Coordinator dispatches distributed sweeps. Its Run method has the
// server.RunFunc shape, so a coordinator blitzd is an ordinary blitzd
// whose compute function fans out instead of computing locally.
type Coordinator struct {
	opts     blitzcoin.ClusterOptions
	log      *slog.Logger
	client   *http.Client
	registry *registry
	bus      *trace.Bus

	dispatched   atomic.Uint64
	retried      atomic.Uint64
	failed       atomic.Uint64
	speculated   atomic.Uint64
	specWins     atomic.Uint64
	dupDiscarded atomic.Uint64
	merged       atomic.Uint64

	// queueDepth and runningShards are scheduler gauges across every
	// in-flight sweep, surfaced by /readyz for autoscaling decisions.
	queueDepth    atomic.Int64
	runningShards atomic.Int64

	// latencies is a ring of recent completed-shard service times
	// (seconds) across sweeps, for the /metrics p50/p99 gauges.
	latMu     sync.Mutex
	latencies []float64
	latNext   int

	// baseCtx is the coordinator's lifetime: health probes derive their
	// per-round timeouts from it, so Close interrupts an in-flight probe
	// fan-out instead of waiting out its timeout.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// New builds a Coordinator and starts its heartbeat loop.
func New(cfg Config) (*Coordinator, error) {
	opts := cfg.Options.Normalized()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Bus == nil {
		cfg.Bus = trace.Default()
	}
	// The coordinator's lifecycle root: New has no caller context (the
	// coordinator is constructed once at process startup and owns its own
	// background loops), so this is the one place the package mints one.
	ctx, cancel := context.WithCancel(context.Background()) //blitzlint:allow C002 coordinator lifetime root: constructed at process startup, cancelled by Close
	c := &Coordinator{
		opts:       opts,
		log:        cfg.Logger,
		client:     cfg.Client,
		registry:   newRegistry(opts.Workers),
		bus:        cfg.Bus,
		baseCtx:    ctx,
		baseCancel: cancel,
		stop:       make(chan struct{}),
	}
	c.done.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// Close stops the heartbeat loop and cancels any in-flight health probes.
// In-flight Runs are unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.baseCancel()
	})
	c.done.Wait()
}

// recordShardLatency feeds the cross-sweep latency ring.
func (c *Coordinator) recordShardLatency(seconds float64) {
	c.latMu.Lock()
	if len(c.latencies) < latencyWindow {
		c.latencies = append(c.latencies, seconds)
	} else {
		c.latencies[c.latNext] = seconds
		c.latNext = (c.latNext + 1) % latencyWindow
	}
	c.latMu.Unlock()
}

// latencyQuantiles returns the p50 and p99 of recent completed-shard
// latencies in seconds (zeros before any shard completes).
func (c *Coordinator) latencyQuantiles() (p50, p99 float64) {
	c.latMu.Lock()
	sorted := append([]float64(nil), c.latencies...)
	c.latMu.Unlock()
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Float64s(sorted)
	return percentile(sorted, 0.50), percentile(sorted, 0.99)
}

// Readiness reports the coordinator's scheduling state for /readyz: the
// cluster is ready when at least one live, non-draining worker can take
// shards.
func (c *Coordinator) Readiness() server.ClusterReadiness {
	snap := c.registry.snapshot()
	cr := server.ClusterReadiness{
		QueueDepth:     c.queueDepth.Load(),
		RunningShards:  c.runningShards.Load(),
		WorkerInflight: make(map[string]int, len(snap)),
	}
	for _, ws := range snap {
		if ws.Alive && !ws.Draining {
			cr.AliveWorkers++
		}
		if ws.Draining {
			cr.DrainingWorkers++
		}
		cr.WorkerInflight[ws.URL] = ws.Inflight
	}
	cr.Ready = cr.AliveWorkers > 0
	return cr
}

// heartbeatLoop probes every registered worker on the heartbeat cadence
// and evicts workers unreachable past the eviction window.
func (c *Coordinator) heartbeatLoop() {
	defer c.done.Done()
	interval := time.Duration(c.opts.HeartbeatMillis) * time.Millisecond
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.probeAll(interval)
		for _, url := range c.registry.evictStale(time.Duration(c.opts.EvictAfterMillis) * time.Millisecond) {
			c.log.Warn("cluster worker evicted", "worker", url)
		}
	}
}

// probeAll probes every worker's /healthz concurrently, bounded by the
// heartbeat interval.
func (c *Coordinator) probeAll(timeout time.Duration) {
	ctx, cancel := context.WithTimeout(c.baseCtx, timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, url := range c.registry.urls() {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if c.probe(ctx, url) {
				c.registry.markAlive(url, true)
			} else {
				c.registry.markDead(url)
			}
		}(url)
	}
	wg.Wait()
}

// probe reports whether a worker answers /healthz with a matching engine
// version. A mismatched engine is treated as dead: merging rows computed
// by a different engine would silently break determinism.
func (c *Coordinator) probe(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var body struct {
		Status        string `json:"status"`
		EngineVersion string `json:"engine_version"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
		return false
	}
	if body.EngineVersion != blitzcoin.EngineVersion {
		c.log.Warn("cluster worker engine mismatch",
			"worker", url, "worker_engine", body.EngineVersion, "coordinator_engine", blitzcoin.EngineVersion)
		return false
	}
	return true
}

// shardRange is one planned dispatch unit.
type shardRange struct{ lo, hi int }

// plan splits [0, units) into contiguous ranges. StealUnit, when set,
// wins: ceil(units/StealUnit) shards of at most StealUnit units each —
// fine-grained so the work-stealing queue can rebalance around slow
// workers. Otherwise the explicit Shards count when set, else
// ShardsPerWorker per live worker; always clamped to the unit count and
// floored at one.
func (c *Coordinator) plan(units int) []shardRange {
	var k int
	switch {
	case c.opts.StealUnit > 0:
		k = (units + c.opts.StealUnit - 1) / c.opts.StealUnit
	case c.opts.Shards > 0:
		k = c.opts.Shards
	default:
		alive := c.registry.aliveCount()
		if alive < 1 {
			alive = 1
		}
		k = c.opts.ShardsPerWorker * alive
	}
	if k > units {
		k = units
	}
	if k < 1 {
		k = 1
	}
	base, rem := units/k, units%k
	out := make([]shardRange, 0, k)
	at := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, shardRange{at, at + size})
		at += size
	}
	return out
}

// Run executes a request across the cluster: plan fine-grained shards,
// schedule them with work-stealing and speculative straggler
// re-execution, merge in index order. It satisfies server.RunFunc, so it
// plugs directly into a blitzd Server.
func (c *Coordinator) Run(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
	norm := req.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	hash, err := norm.CanonicalHash()
	if err != nil {
		return nil, err
	}
	units, err := norm.ShardUnits()
	if err != nil {
		return nil, err
	}
	// The coordinator owns the sweep's lifecycle events; workers publish
	// only trial progress on their own buses. Shard dispatch/completion
	// events flow from the scheduler through the same stream.
	st := trace.NewStream(c.bus, hash)
	st.SweepStart(units)
	sched := newSched(ctx, c, norm, hash, c.plan(units))
	sched.st = st
	shards, err := sched.run()
	if err != nil {
		st.SweepFailed()
		return nil, err
	}
	res, err := blitzcoin.MergeShards(norm, shards)
	if err != nil {
		st.SweepFailed()
		return nil, err
	}
	c.merged.Add(1)
	st.SweepDone(units)
	return res, nil
}

// permanentError marks a dispatch failure retrying cannot fix (the worker
// rejected the request itself, e.g. 400 or an options-hash 409).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }

// retryAfterError marks a dispatch failure the worker asked us to retry
// later — a 429 (rate/quota throttling) or 503 (draining, admission queue
// full) carrying a Retry-After hint. The scheduler holds the shard back
// at least that long instead of hammering the throttling worker.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e retryAfterError) Error() string { return e.err.Error() }

// parseRetryAfter reads a Retry-After header's delta-seconds form; the
// HTTP-date form (rare, and never emitted by blitzd) yields zero.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// postShard performs one POST /v1/shard call under the shard timeout. A
// transport failure (connection refused, timeout, torn body) demotes the
// worker so the retry immediately avoids it — unless the caller's context
// was cancelled, which happens to the losing copy of every speculation
// race and says nothing about the worker's health. The heartbeat revives
// a demoted worker when it answers again.
func (c *Coordinator) postShard(ctx context.Context, url string, norm blitzcoin.Request, hash string, sr shardRange) (*blitzcoin.ShardResult, error) {
	body, err := json.Marshal(blitzcoin.ShardRequest{Request: norm, Lo: sr.lo, Hi: sr.hi, OptionsHash: hash})
	if err != nil {
		return nil, permanentError{fmt.Errorf("encoding shard request: %w", err)}
	}
	callCtx, cancel := context.WithTimeout(ctx, time.Duration(c.opts.ShardTimeoutMillis)*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.registry.markDead(url)
		}
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			c.registry.markDead(url)
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("worker returned %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			// Throttled or draining — transient by definition, and the
			// worker says when to come back. Retryable with its hint.
			return nil, retryAfterError{err, parseRetryAfter(resp.Header.Get("Retry-After"))}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			// The worker understood us and said no (bad request, options
			// hash conflict): every worker runs the same code, so retrying
			// elsewhere cannot succeed.
			return nil, permanentError{err}
		}
		return nil, err
	}
	var envelope server.ShardResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		if ctx.Err() == nil {
			c.registry.markDead(url)
		}
		return nil, fmt.Errorf("decoding shard envelope: %w", err)
	}
	var shard blitzcoin.ShardResult
	if err := json.Unmarshal(envelope.Shard, &shard); err != nil {
		return nil, permanentError{fmt.Errorf("decoding shard result: %w", err)}
	}
	return &shard, nil
}

// JoinLoop registers selfURL with a coordinator and keeps the
// registration fresh on the given cadence until ctx ends — the worker
// half of dynamic membership. Failures are logged and retried on the next
// tick; the loop never gives up while the context lives.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, selfURL string, interval time.Duration, log *slog.Logger) {
	if client == nil {
		client = &http.Client{}
	}
	if log == nil {
		log = slog.Default()
	}
	join := func() {
		body, _ := json.Marshal(joinBody{URL: selfURL})
		callCtx, cancel := context.WithTimeout(ctx, interval)
		defer cancel()
		req, err := http.NewRequestWithContext(callCtx, http.MethodPost, coordinatorURL+"/v1/cluster/join", bytes.NewReader(body))
		if err != nil {
			log.Warn("cluster join failed", "coordinator", coordinatorURL, "error", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			log.Warn("cluster join failed", "coordinator", coordinatorURL, "error", err)
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			log.Warn("cluster join response drain failed", "coordinator", coordinatorURL, "error", err)
		}
		if err := resp.Body.Close(); err != nil {
			log.Warn("cluster join response close failed", "coordinator", coordinatorURL, "error", err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Warn("cluster join rejected", "coordinator", coordinatorURL, "status", resp.StatusCode)
		}
	}
	join()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			join()
		}
	}
}
