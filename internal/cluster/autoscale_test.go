package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"blitzcoin"
)

// TestAutoscaleSpawnUnderBacklog checks the scale-up trigger: queued
// work beyond BacklogPerWorker per live worker spawns exactly one worker
// per evaluation, up to MaxWorkers.
func TestAutoscaleSpawnUnderBacklog(t *testing.T) {
	w := newWorker(t)
	c := newCoordinator(t, blitzcoin.ClusterOptions{Workers: []string{w.URL}})
	var spawned []string
	cfg := AutoscaleConfig{
		Hooks: ScaleHooks{
			Spawn: func(ctx context.Context) (string, error) {
				url := fmt.Sprintf("http://spawned-%d", len(spawned))
				spawned = append(spawned, url)
				return url, nil
			},
		},
		MaxWorkers:       2,
		BacklogPerWorker: 4,
	}.withDefaults()

	// No backlog: no spawn.
	c.autoscaleOnce(context.Background(), cfg)
	if len(spawned) != 0 {
		t.Fatalf("spawned %v with no backlog", spawned)
	}

	// Backlog past the per-worker threshold: one spawn per evaluation.
	c.queueDepth.Store(10)
	c.autoscaleOnce(context.Background(), cfg)
	if len(spawned) != 1 {
		t.Fatalf("spawned %v, want exactly one worker", spawned)
	}
	found := false
	for _, ws := range c.registry.snapshot() {
		if ws.URL == spawned[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("spawned worker not registered optimistically")
	}

	// At MaxWorkers the backlog no longer spawns.
	c.autoscaleOnce(context.Background(), cfg)
	if len(spawned) != 1 {
		t.Fatalf("spawned %v past MaxWorkers=2", spawned)
	}
}

// TestAutoscaleDrainIdleWorker checks scale-down never loses work: an
// idle joined worker is first marked draining (excluded from dispatch but
// keeping its inflight shards), and the drain hook only fires once
// nothing is in flight on it.
func TestAutoscaleDrainIdleWorker(t *testing.T) {
	static := newWorker(t)
	c := newCoordinator(t, blitzcoin.ClusterOptions{Workers: []string{static.URL}})
	joined := "http://joined-worker"
	c.registry.rejoin(joined)

	var drained []string
	cfg := AutoscaleConfig{
		Hooks: ScaleHooks{
			Drain: func(ctx context.Context, url string) error {
				drained = append(drained, url)
				return nil
			},
		},
		MinWorkers: 1,
		IdleAfter:  10 * time.Millisecond,
	}.withDefaults()

	// Give the joined worker an inflight shard, then let it idle past the
	// window: it must not be drained while the shard runs.
	url, ok, _ := c.registry.tryAcquire(2, map[string]bool{static.URL: true})
	if !ok || url != joined {
		t.Fatalf("acquire on joined worker: %q, %v", url, ok)
	}
	time.Sleep(20 * time.Millisecond)
	c.autoscaleOnce(context.Background(), cfg)
	if len(drained) != 0 {
		t.Fatalf("drained %v while a shard was in flight", drained)
	}
	for _, ws := range c.registry.snapshot() {
		if ws.URL == joined && ws.Draining {
			t.Fatal("busy worker marked draining")
		}
	}

	// Release and idle out: first evaluation marks it draining, the next
	// one decommissions it.
	c.registry.release(joined)
	time.Sleep(20 * time.Millisecond)
	c.autoscaleOnce(context.Background(), cfg)
	draining := false
	for _, ws := range c.registry.snapshot() {
		if ws.URL == joined && ws.Draining {
			draining = true
		}
	}
	if !draining {
		t.Fatal("idle joined worker never marked draining")
	}
	if _, ok, _ := c.registry.tryAcquire(2, map[string]bool{static.URL: true}); ok {
		t.Fatal("draining worker still acquirable")
	}
	c.autoscaleOnce(context.Background(), cfg)
	if len(drained) != 1 || drained[0] != joined {
		t.Fatalf("drain hook calls = %v, want [%s]", drained, joined)
	}
	for _, ws := range c.registry.snapshot() {
		if ws.URL == joined {
			t.Fatal("drained worker still registered")
		}
	}
	// The static worker is never drained, whatever its idle time.
	c.autoscaleOnce(context.Background(), cfg)
	for _, ws := range c.registry.snapshot() {
		if ws.URL == static.URL && ws.Draining {
			t.Fatal("static worker marked draining")
		}
	}
}

// TestAutoscaleRejoinClearsDrain checks that a draining worker that
// re-registers (its JoinLoop still runs) takes traffic again.
func TestAutoscaleRejoinClearsDrain(t *testing.T) {
	c := newCoordinator(t, blitzcoin.ClusterOptions{Workers: nil})
	c.registry.rejoin("http://w")
	c.registry.beginDrain("http://w")
	if _, ok, _ := c.registry.tryAcquire(2, nil); ok {
		t.Fatal("draining worker acquirable")
	}
	c.registry.rejoin("http://w")
	if _, ok, _ := c.registry.tryAcquire(2, nil); !ok {
		t.Fatal("rejoined worker should be acquirable again")
	}
}
