package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"blitzcoin"
	"blitzcoin/internal/server"
)

// newChaosWorker starts a real worker behind a Chaos layer playing the
// given tile.
func newChaosWorker(t *testing.T, opts blitzcoin.FaultOptions, tile int) (*httptest.Server, *Chaos) {
	t.Helper()
	backend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	ch := NewChaos(opts, tile, quietLogger())
	ts := httptest.NewServer(ch.Wrap(backend.Handler()))
	t.Cleanup(ts.Close)
	return ts, ch
}

// chaosSweep runs one clustered sweep against the given workers and
// asserts the rows are byte-identical to single-node execution.
func chaosSweep(t *testing.T, opts blitzcoin.ClusterOptions, label string) *Coordinator {
	t.Helper()
	req := clusterTestRequests()["fig7"]
	want, err := blitzcoin.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	c := newCoordinator(t, opts)
	got, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	sameLines(t, resultLines(t, got), resultLines(t, want), label)
	return c
}

// TestChaosFailSlowWorker injects a fail-slow fault through the chaos
// transport: the afflicted worker's service time stretches 40x from the
// first request on, and the sweep still completes byte-identical because
// speculation re-executes whatever the slow node holds.
func TestChaosFailSlowWorker(t *testing.T) {
	healthy := newWorker(t)
	slow, ch := newChaosWorker(t, blitzcoin.FaultOptions{
		FailSlow: []blitzcoin.SlowFault{{Tile: 2, AtCycle: 0, Factor: 40}},
	}, 2)
	chaosSweep(t, blitzcoin.ClusterOptions{
		Workers:   []string{healthy.URL, slow.URL},
		StealUnit: 1,
	}, "fail-slow chaos")
	if ch.Stats().Slowed != 1 {
		t.Errorf("chaos stats: slowed = %d, want 1", ch.Stats().Slowed)
	}
}

// TestChaosCrashMidShard fail-stops a worker partway into the sweep: the
// chaos clock kills tile 3 a few requests in, so shards already accepted
// die with the connection and must be re-dispatched to the survivors.
func TestChaosCrashMidShard(t *testing.T) {
	h1, h2 := newWorker(t), newWorker(t)
	crashing, _ := newChaosWorker(t, blitzcoin.FaultOptions{
		KillTiles: []blitzcoin.TileFault{{Tile: 3, AtCycle: 3}},
	}, 3)
	c := chaosSweep(t, blitzcoin.ClusterOptions{
		Workers:            []string{h1.URL, h2.URL, crashing.URL},
		StealUnit:          1,
		RetryBackoffMillis: 10,
	}, "crash mid-shard chaos")
	for _, ws := range c.registry.snapshot() {
		if ws.URL == crashing.URL && ws.Alive {
			t.Error("crashed worker still marked alive after the sweep")
		}
	}
}

// TestChaosHeartbeatPartition fails the coordinator-worker link a few
// requests in: the worker process stays healthy but every probe and
// shard vanishes in the fabric, which must look exactly like a death —
// demotion, re-dispatch, byte-identical rows.
func TestChaosHeartbeatPartition(t *testing.T) {
	healthy := newWorker(t)
	partitioned, _ := newChaosWorker(t, blitzcoin.FaultOptions{
		FailLinks: []blitzcoin.LinkFault{{A: chaosCoordTile, B: 2, AtCycle: 2}},
	}, 2)
	c := chaosSweep(t, blitzcoin.ClusterOptions{
		Workers:            []string{healthy.URL, partitioned.URL},
		StealUnit:          1,
		HeartbeatMillis:    50,
		RetryBackoffMillis: 10,
	}, "heartbeat partition chaos")
	for _, ws := range c.registry.snapshot() {
		if ws.URL == partitioned.URL && ws.Alive {
			t.Error("partitioned worker still marked alive")
		}
	}
}

// TestChaosPacketFaults turns on random drop, duplication, and delay on
// one worker's transport — the duplicate path in particular delivers
// shard requests twice, exercising worker-side idempotency — and the
// rows still match single-node execution.
func TestChaosPacketFaults(t *testing.T) {
	healthy := newWorker(t)
	noisy, ch := newChaosWorker(t, blitzcoin.FaultOptions{
		Seed:           7,
		DropRate:       0.2,
		DupRate:        0.4,
		DelayRate:      0.4,
		DelayMaxCycles: 8,
	}, 2)
	chaosSweep(t, blitzcoin.ClusterOptions{
		Workers:            []string{healthy.URL, noisy.URL},
		StealUnit:          1,
		RetryBackoffMillis: 10,
	}, "packet chaos")
	st := ch.Stats()
	if st.Drops+st.Dups+st.Delays == 0 {
		t.Error("packet chaos injected nothing across the whole sweep")
	}
}

// TestChaosFailSlowMakespan is the scheduling acceptance gate: with one
// fail-slow worker in the pool, speculative re-execution keeps the sweep
// makespan within 1.5x of the all-healthy run at the same worker count
// (plus scheduler slack), where without speculation the slow node's
// stall would bound the sweep.
func TestChaosFailSlowMakespan(t *testing.T) {
	req := clusterTestRequests()["fig7"]
	run := func(opts blitzcoin.ClusterOptions) time.Duration {
		t.Helper()
		c := newCoordinator(t, opts)
		start := time.Now()
		if _, err := c.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Baseline: three healthy workers.
	h1, h2, h3 := newWorker(t), newWorker(t), newWorker(t)
	healthy := run(blitzcoin.ClusterOptions{
		Workers:   []string{h1.URL, h2.URL, h3.URL},
		StealUnit: 1,
	})

	// Same worker count, but one node stalls every shard for far longer
	// than the whole healthy sweep.
	const stall = 20 * time.Second
	slow := newSlowWorker(t, stall)
	speculated := run(blitzcoin.ClusterOptions{
		Workers:   []string{h1.URL, h2.URL, slow.URL},
		StealUnit: 1,
	})

	// The absolute slack absorbs speculation-trigger latency (the
	// threshold only arms after SpeculationMinSamples completions) and CI
	// scheduling noise; it is tiny next to the injected stall.
	limit := healthy*3/2 + 2*time.Second
	if speculated > limit {
		t.Fatalf("fail-slow makespan %v exceeds %v (1.5x healthy %v + slack)", speculated, limit, healthy)
	}
	if speculated >= stall {
		t.Fatalf("fail-slow makespan %v is bounded by the straggler stall %v", speculated, stall)
	}
}

// BenchmarkClusterFailSlowSweep measures distributed sweep makespan with
// one fail-slow worker and speculation on — the headline scheduling
// number of the elastic cluster.
func BenchmarkClusterFailSlowSweep(b *testing.B) {
	backend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	h1 := httptest.NewServer(backend.Handler())
	defer h1.Close()
	backend2 := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	h2 := httptest.NewServer(backend2.Handler())
	defer h2.Close()
	slowBackend := server.New(server.Config{Workers: 4, Logger: quietLogger()})
	slowChaos := NewChaos(blitzcoin.FaultOptions{
		FailSlow: []blitzcoin.SlowFault{{Tile: 2, AtCycle: 0, Factor: 25}},
	}, 2, quietLogger())
	slow := httptest.NewServer(slowChaos.Wrap(slowBackend.Handler()))
	defer slow.Close()

	c, err := New(Config{
		Options: blitzcoin.ClusterOptions{
			Workers:   []string{h1.URL, h2.URL, slow.URL},
			StealUnit: 1,
		},
		Logger: quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	req := blitzcoin.Request{Figure: &blitzcoin.FigureOptions{
		Name: "7", Ns: []int{16}, Trials: 6, Seed: 2,
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed so worker caches don't turn later iterations into
		// pure HTTP round-trips.
		req.Figure.Seed = uint64(i + 1)
		if _, err := c.Run(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
