// Package stats provides the statistical helpers used by the Monte Carlo
// experiments: running moments (Welford), percentiles, and fixed-width
// histograms like the residual-error histograms of Fig. 7.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates count, mean, and variance incrementally using
// Welford's algorithm, plus min and max. The zero value is ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Sample collects raw observations for percentile queries. The zero value is
// ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the observations sorted ascending. The returned slice is
// owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	return s.xs
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// between order statistics. It panics on an empty sample or out-of-range q.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	xs := s.Values()
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean, or 0 if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation. It panics on an empty sample.
func (s *Sample) Max() float64 {
	xs := s.Values()
	return xs[len(xs)-1]
}

// Min returns the smallest observation. It panics on an empty sample.
func (s *Sample) Min() float64 {
	return s.Values()[0]
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); samples outside
// the range are clamped into the first/last bucket so that totals are
// preserved (matching the paper's worst-case-error histograms, which have a
// bounded domain).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	overLo int
	overHi int
	rawxs  Sample
}

// NewHistogram returns a histogram of n buckets over [lo, hi). It panics on
// a degenerate range or bucket count.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x %d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	h.total++
	h.rawxs.Add(x)
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
		h.overLo++
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
		h.overHi++
	}
	h.Counts[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Clamped returns how many samples fell below Lo and at-or-above Hi.
func (h *Histogram) Clamped() (below, above int) { return h.overLo, h.overHi }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// MaxSample returns the largest recorded value (before clamping); panics if
// empty.
func (h *Histogram) MaxSample() float64 { return h.rawxs.Max() }

// String renders a compact ASCII histogram, one line per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(empty histogram)\n"
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(40 * float64(c) / float64(peak)))
		fmt.Fprintf(&b, "%8.3f |%-40s %d\n", h.BucketCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Summary holds the common per-experiment aggregate the CLI tools print.
type Summary struct {
	Mean, StdDev, Min, Median, P95, Max float64
	N                                   int
}

// Summarize computes a Summary from a Sample.
func Summarize(s *Sample) Summary {
	if s.N() == 0 {
		return Summary{}
	}
	var r Running
	for _, x := range s.Values() {
		r.Add(x)
	}
	return Summary{
		Mean:   r.Mean(),
		StdDev: r.StdDev(),
		Min:    r.Min(),
		Median: s.Median(),
		P95:    s.Quantile(0.95),
		Max:    r.Max(),
		N:      s.N(),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}
