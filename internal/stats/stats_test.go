package stats

import (
	"math"
	"testing"
	"testing/quick"

	"blitzcoin/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", r.Mean())
	}
	// Population variance of this classic set is 4; unbiased is 32/7.
	if !almostEq(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	r.Add(3)
	if r.Variance() != 0 || r.Mean() != 3 {
		t.Fatalf("single sample: mean=%v var=%v", r.Mean(), r.Variance())
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	src := rng.New(1)
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		var r Running
		for i := range xs {
			xs[i] = src.NormFloat64() * 10
			r.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(m)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return almostEq(r.Mean(), mean, 1e-9) && almostEq(r.Variance(), ss/float64(m-1), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); !almostEq(got, 50.5, 1e-9) {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.95); !almostEq(got, 95.05, 1e-9) {
		t.Fatalf("p95 = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	src := rng.New(2)
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(src.Float64() * 100)
	}
	f := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	var s Sample
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		s.Quantile(0.5)
	}()
	s.Add(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range q did not panic")
			}
		}()
		s.Quantile(1.5)
	}()
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, c)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	if !almostEq(h.BucketCenter(0), 0.5, 1e-12) {
		t.Fatalf("center(0) = %v", h.BucketCenter(0))
	}
	if !almostEq(h.Fraction(3), 0.1, 1e-12) {
		t.Fatalf("fraction(3) = %v", h.Fraction(3))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(0.5)
	below, above := h.Clamped()
	if below != 1 || above != 1 {
		t.Fatalf("clamped = %d,%d", below, above)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.MaxSample() != 2 {
		t.Fatalf("MaxSample = %v", h.MaxSample())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	if h.String() != "(empty histogram)\n" {
		t.Fatalf("empty render = %q", h.String())
	}
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	if s := h.String(); len(s) == 0 {
		t.Fatal("histogram render empty")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	sum := Summarize(&s)
	if sum.N != 10 || !almostEq(sum.Mean, 5.5, 1e-12) || sum.Min != 1 || sum.Max != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.String()) == 0 {
		t.Fatal("summary string empty")
	}
	if got := Summarize(&Sample{}); got.N != 0 {
		t.Fatalf("empty summarize = %+v", got)
	}
}

func TestSampleMinMaxMean(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(-1)
	s.Add(7)
	if s.Min() != -1 || s.Max() != 7 || !almostEq(s.Mean(), 3, 1e-12) {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}
