package lint

import (
	"path/filepath"
	"testing"
)

// TestLockOrderFixture pins L001 (inversion and undeclared edge), L002
// (direct and transitive blocking while held), and L003 (stale golden
// entry) against the fixture's committed lockorder.txt.
func TestLockOrderFixture(t *testing.T) {
	pkg := loadFixture(t, "lockorder")
	goldenDir := filepath.Join("testdata", "src", "lockorder")
	res := runAnalyzer(t, NewLockOrder(goldenDir, func(string) bool { return true }), pkg)
	checkGolden(t, "lockorder", formatDiags(res.Active))
}

// TestLockOrderWriteGolden regenerates the golden from the fixture and
// re-runs: the order diagnostics (L001/L003) must disappear while the
// blocking ones (L002) survive — `make lint-update` cannot launder a
// sleep-under-lock.
func TestLockOrderWriteGolden(t *testing.T) {
	pkg := loadFixture(t, "lockorder")
	tmp := t.TempDir()
	all := func(string) bool { return true }
	if err := NewLockOrder(tmp, all).WriteGolden([]*Package{pkg}); err != nil {
		t.Fatalf("write golden: %v", err)
	}
	res := runAnalyzer(t, NewLockOrder(tmp, all), pkg)
	var l002 int
	for _, d := range res.Active {
		switch d.Code {
		case "L001", "L003":
			t.Errorf("order diagnostic survived regeneration: %s", d)
		case "L002":
			l002++
		}
	}
	if l002 == 0 {
		t.Error("L002 blocking-while-held findings must survive golden regeneration")
	}
}

// TestLockOrderMissingGolden pins the bootstrap diagnostic: observed edges
// with no committed golden ask for `make lint-update`.
func TestLockOrderMissingGolden(t *testing.T) {
	pkg := loadFixture(t, "lockorder")
	res := runAnalyzer(t, NewLockOrder(t.TempDir(), func(string) bool { return true }), pkg)
	found := false
	for _, d := range res.Active {
		if d.Code == "L003" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing golden not reported; active = %v", formatDiags(res.Active))
	}
}
