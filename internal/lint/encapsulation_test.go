package lint

import "testing"

func TestEncapsulationGolden(t *testing.T) {
	pkg := loadFixture(t, "encapsulation")
	a := NewEncapsulation("blitzcoin/internal/coin", "Result", coinBudgetFields)
	res := runAnalyzer(t, a, pkg)
	checkGolden(t, "encapsulation", formatDiags(res.Active))
}

// TestEncapsulationOwnerExempt verifies the owning package itself may write
// the ledger: the analyzer skips packages whose path matches the owner.
func TestEncapsulationOwnerExempt(t *testing.T) {
	pkg := loadFixture(t, "encapsulation")
	a := NewEncapsulation(pkg.Path, "Result", coinBudgetFields)
	res := runAnalyzer(t, a, pkg)
	if len(res.Active) != 0 {
		t.Errorf("owner-exempt run reported %d diagnostics: %v", len(res.Active), formatDiags(res.Active))
	}
}
