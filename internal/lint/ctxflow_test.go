package lint

import "testing"

// TestCtxflowFixture pins C001 (blocking work a received context cannot
// interrupt) and C002 (root contexts minted in scope).
func TestCtxflowFixture(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	all := func(string) bool { return true }
	res := runAnalyzer(t, NewCtxflow(all, all), pkg)
	checkGolden(t, "ctxflow", formatDiags(res.Active))
}

// TestCtxflowMintScopeIndependent pins that C001 and C002 scopes gate
// independently: with minting out of scope only the blocking findings
// remain.
func TestCtxflowMintScopeIndependent(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	all := func(string) bool { return true }
	none := func(string) bool { return false }
	ds, err := NewCtxflow(all, none).Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Code == "C002" {
			t.Errorf("C002 reported with minting out of scope: %s", d)
		}
	}
	ds, err = NewCtxflow(none, all).Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Code == "C001" {
			t.Errorf("C001 reported with blocking out of scope: %s", d)
		}
	}
}
