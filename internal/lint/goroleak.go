package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Goroleak flags goroutines with no way to learn they should exit and
// tickers/timers that can never be stopped. A work-stealing cluster that
// "serves heavy traffic" leaks goroutines and OS timers exactly here: a
// `go` statement whose closure loops forever, or a time.Ticker created on a
// path that never reaches Stop.
//
//	G001  `go` statement whose function has no cancellation path: neither
//	      the spawned body nor the call mentions a context, a channel, or a
//	      WaitGroup
//	G002  time.NewTicker/time.NewTimer result never stopped (no x.Stop()
//	      reachable in the creating function and x does not escape via
//	      return)
//
// The check is a heuristic over mentions, not a liveness proof: any
// context/channel/WaitGroup reference counts as a cancellation path. That
// deliberately errs toward silence — the goal is catching the goroutine
// that references nothing cancellable at all.
type Goroleak struct {
	scope func(string) bool
}

// NewGoroleak returns the analyzer limited to packages where scope returns
// true.
func NewGoroleak(scope func(string) bool) *Goroleak {
	return &Goroleak{scope: scope}
}

func (*Goroleak) Name() string { return "goroleak" }

func (g *Goroleak) Run(pkgs []*Package) ([]Diagnostic, error) {
	decls := indexFuncDecls(pkgs, g.scope)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !g.scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if d, ok := g.checkGo(pkg, decls, n); ok {
						diags = append(diags, d)
					}
				case *ast.FuncDecl:
					if n.Body != nil {
						diags = append(diags, g.checkTimers(pkg, n.Body)...)
					}
				}
				return true
			})
		}
	}
	return diags, nil
}

// checkGo judges one `go` statement: the spawned function (closure body or
// resolved named callee) or the call itself must mention a cancellation
// path.
func (g *Goroleak) checkGo(pkg *Package, decls map[string]declBody, gs *ast.GoStmt) (Diagnostic, bool) {
	call := gs.Call
	callMentions := func() bool {
		for _, a := range call.Args {
			if mentionsCancellation(pkg, a) {
				return true
			}
		}
		return mentionsCancellation(pkg, call.Fun)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if mentionsCancellation(pkg, lit.Body) || callMentions() {
			return Diagnostic{}, false
		}
		return g.g001(pkg, gs, "closure"), true
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		if db, ok := decls[fn.FullName()]; ok {
			if mentionsCancellation(db.pkg, db.decl.Body) || callMentions() {
				return Diagnostic{}, false
			}
			return g.g001(pkg, gs, fn.Name()), true
		}
	}
	// Callee body not in the load (stdlib, function value): judge the call.
	if callMentions() {
		return Diagnostic{}, false
	}
	return g.g001(pkg, gs, "callee"), true
}

func (g *Goroleak) g001(pkg *Package, gs *ast.GoStmt, what string) Diagnostic {
	return Diagnostic{
		Analyzer: g.Name(), Code: "G001", Pos: pkg.Fset.Position(gs.Pos()),
		Message: fmt.Sprintf("goroutine has no cancellation path: %s mentions no context, channel, or WaitGroup", what),
	}
}

// mentionsCancellation reports whether any expression under n has a
// context, channel, or WaitGroup type.
func mentionsCancellation(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isCancellationType(exprType(pkg, e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkTimers flags ticker/timer locals created in body that neither reach
// a Stop call nor escape via return (G002).
func (g *Goroleak) checkTimers(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		var kind string
		switch {
		case funcIs(fn, "time", "NewTicker"):
			kind = "time.Ticker"
		case funcIs(fn, "time", "NewTimer"), funcIs(fn, "time", "AfterFunc"):
			kind = "time.Timer"
		default:
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || stopReachable(pkg, body, obj) {
			return true
		}
		diags = append(diags, Diagnostic{
			Analyzer: g.Name(), Code: "G002", Pos: pkg.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("%s %q is never stopped: no %s.Stop() in this function and it does not escape", kind, id.Name, id.Name),
		})
		return true
	})
	return diags
}

// stopReachable reports whether obj (a ticker/timer variable) has a
// <obj>.Stop() mention anywhere in body, or escapes the function by being
// returned (the caller then owns the Stop).
func stopReachable(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pkg.Info.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Stop" && usesObj(n.X) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
