package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package: the syntax trees the
// analyzers walk plus the go/types results they resolve names against.
type Package struct {
	Path  string // import path, e.g. blitzcoin/internal/coin
	Dir   string // absolute source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -export -deps -json` in dir for the given patterns
// and returns every package in the transitive build, with export-data paths
// populated (building anything stale as a side effect).
func goList(dir string, patterns ...string) (map[string]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	pkgs := map[string]*listPackage{}
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs[p.ImportPath] = &p
	}
	return pkgs, nil
}

// exportLookup adapts a go-list export map into the lookup function the gc
// importer wants, lazily resolving paths (e.g. stdlib packages a fixture
// imports that the module itself does not) with extra `go list` calls.
type exportLookup struct {
	dir     string
	exports map[string]string // import path -> export data file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	if f, ok := l.exports[path]; ok && f != "" {
		return os.Open(f)
	}
	extra, err := goList(l.dir, path)
	if err != nil {
		return nil, fmt.Errorf("lint: no export data for %q: %v", path, err)
	}
	for p, lp := range extra {
		if lp.Export != "" {
			l.exports[p] = lp.Export
		}
	}
	if f, ok := l.exports[path]; ok && f != "" {
		return os.Open(f)
	}
	return nil, fmt.Errorf("lint: no export data for %q", path)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load parses and type-checks the packages matched by patterns, rooted at
// the module directory dir. Only non-test Go files are loaded: test files
// legitimately use wall clocks and ad-hoc randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	all, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lookup := &exportLookup{dir: dir, exports: map[string]string{}}
	var roots []*listPackage
	for path, p := range all {
		if p.Export != "" {
			lookup.exports[path] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			roots = append(roots, p)
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup.lookup)
	var pkgs []*Package
	for _, p := range roots {
		lp, err := typeCheckDir(p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	sortPackages(pkgs)
	return pkgs, nil
}

// LoadFixture type-checks a standalone fixture directory (outside the
// module's package graph, e.g. under testdata) as import path "fixture",
// resolving its imports through the module rooted at moduleDir. Analyzer
// golden tests use this to feed a package in and assert diagnostics out.
func LoadFixture(moduleDir, fixtureDir string) (*Package, error) {
	ents, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	lookup := &exportLookup{dir: moduleDir, exports: map[string]string{}}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup.lookup)
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		return nil, err
	}
	return typeCheckDir("fixture", abs, files, imp)
}

// typeCheckDir parses the named files in dir and type-checks them as one
// package with the given importer.
func typeCheckDir(path, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func sortPackages(pkgs []*Package) {
	for i := 1; i < len(pkgs); i++ {
		for j := i; j > 0 && pkgs[j-1].Path > pkgs[j].Path; j-- {
			pkgs[j-1], pkgs[j] = pkgs[j], pkgs[j-1]
		}
	}
}
