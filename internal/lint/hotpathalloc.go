package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotPathAlloc guards the de-allocated exchange hot path: it compiles the
// hot-path packages with `go build -gcflags=-m`, parses the compiler's
// escape-analysis verdicts, and diffs them against the committed
// lint/escape_allow.txt golden. A new heap escape fails the build
// immediately instead of waiting for benchcheck to notice the allocs/op
// regression.
//
//	H001  a heap escape the golden does not allow
//	H002  a golden entry the compiler no longer reports (stale; regenerate
//	      with `make lint-update` so the allowlist stays tight)
//
// Entries are keyed by (file, compiler message) with line numbers stripped,
// so unrelated edits above an allowed escape do not churn the golden. The
// corollary: a second escape of an identical expression in the same file is
// masked by the first's entry — distinct messages are still caught.
type HotPathAlloc struct {
	moduleDir string
	goldenDir string
	packages  []string

	// compile is swappable so golden tests can feed canned compiler output.
	compile func() (string, error)
}

// NewHotPathAlloc returns the analyzer for the given hot-path package
// patterns, run from moduleDir, diffing against goldenDir/escape_allow.txt.
func NewHotPathAlloc(moduleDir, goldenDir string, packages []string) *HotPathAlloc {
	a := &HotPathAlloc{moduleDir: moduleDir, goldenDir: goldenDir, packages: packages}
	a.compile = a.goBuild
	return a
}

func (*HotPathAlloc) Name() string { return "hotpathalloc" }

// SetCompileOutput overrides the compiler invocation with canned output
// (golden tests only).
func (a *HotPathAlloc) SetCompileOutput(out string) {
	a.compile = func() (string, error) { return out, nil }
}

// goldenPath is the committed allowlist location.
func (a *HotPathAlloc) goldenPath() string { return filepath.Join(a.goldenDir, "escape_allow.txt") }

// goBuild compiles the hot-path packages with escape-analysis diagnostics.
// The build cache replays -m output, so warm runs are cheap.
func (a *HotPathAlloc) goBuild() (string, error) {
	args := append([]string{"build", "-gcflags=-m=1"}, a.packages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = a.moduleDir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, buf.String())
	}
	return buf.String(), nil
}

// escapeLine matches one compiler escape verdict:
//
//	internal/coin/emulator.go:261:7: &Emulator{...} escapes to heap
//	internal/noc/noc.go:312:3: moved to heap: dup
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// escape is one observed heap escape.
type escape struct {
	file      string // path as the compiler printed it (moduleDir-relative)
	line, col int
	message   string
}

// key is the stable identity an allowlist entry matches on.
func (e escape) key() string { return e.file + ": " + e.message }

// parseEscapes extracts escape verdicts from compiler output, keeping the
// first position seen for each distinct (file, message) key.
func parseEscapes(out string) []escape {
	seen := map[string]bool{}
	var escapes []escape
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		e := escape{file: m[1], line: ln, col: col, message: m[4]}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		escapes = append(escapes, e)
	}
	sort.Slice(escapes, func(i, j int) bool { return escapes[i].key() < escapes[j].key() })
	return escapes
}

// readAllow parses the golden allowlist: one key per line, '#' comments and
// blank lines ignored. Returns key -> golden line number.
func (a *HotPathAlloc) readAllow() (map[string]int, error) {
	data, err := os.ReadFile(a.goldenPath())
	if os.IsNotExist(err) {
		return map[string]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	allow := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = i + 1
	}
	return allow, nil
}

func (a *HotPathAlloc) Run(_ []*Package) ([]Diagnostic, error) {
	out, err := a.compile()
	if err != nil {
		return nil, err
	}
	escapes := parseEscapes(out)
	allow, err := a.readAllow()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	matched := map[string]bool{}
	for _, e := range escapes {
		if _, ok := allow[e.key()]; ok {
			matched[e.key()] = true
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(), Code: "H001",
			Pos: token.Position{
				Filename: filepath.Join(a.moduleDir, e.file),
				Line:     e.line, Column: e.col,
			},
			Message: "new heap escape on the exchange hot path: " + e.message +
				" (allow it in lint/escape_allow.txt via `make lint-update` only with a benchmark justification)",
		})
	}
	for key, line := range allow {
		if !matched[key] {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(), Code: "H002",
				Pos:     token.Position{Filename: a.goldenPath(), Line: line, Column: 1},
				Message: "stale escape allowlist entry (compiler no longer reports it): " + key + "; regenerate with `make lint-update`",
			})
		}
	}
	return diags, nil
}

// WriteGolden regenerates the allowlist from a fresh compile.
func (a *HotPathAlloc) WriteGolden() error {
	out, err := a.compile()
	if err != nil {
		return err
	}
	escapes := parseEscapes(out)
	var b strings.Builder
	b.WriteString("# blitzlint hotpathalloc golden: every heap escape the exchange hot path\n")
	b.WriteString("# is allowed to make. One `file: compiler message` per line; regenerate\n")
	b.WriteString("# with `make lint-update` and justify additions with a benchmark.\n")
	for _, e := range escapes {
		b.WriteString(e.key())
		b.WriteByte('\n')
	}
	if err := os.MkdirAll(a.goldenDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(a.goldenPath(), []byte(b.String()), 0o644)
}
