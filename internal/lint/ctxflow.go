package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow enforces context discipline in the serving layer: a function that
// accepts a context must let that context interrupt its blocking work, and
// nothing below the process entry points may mint a fresh root context —
// that is how a worker keeps probing a coordinator that already shut down.
//
//	C001  blocking call — time.Sleep, a select-less channel send/receive/
//	      range, or (*http.Client).Do — inside a function that receives a
//	      context.Context but never consults it (time.Sleep is flagged even
//	      when the context is consulted elsewhere: it cannot be interrupted)
//	C002  context.Background()/context.TODO() minted inside a package below
//	      the entry points instead of propagating the caller's ctx
//
// Closure and `go` bodies are separate execution contexts and are skipped
// by the C001 scan; goroleak owns goroutine lifetimes.
type Ctxflow struct {
	blockScope func(string) bool // packages subject to C001
	mintScope  func(string) bool // packages where C002 forbids fresh roots
}

// NewCtxflow returns the analyzer with independent scopes for the blocking
// check (C001) and the background-mint check (C002).
func NewCtxflow(blockScope, mintScope func(string) bool) *Ctxflow {
	return &Ctxflow{blockScope: blockScope, mintScope: mintScope}
}

func (*Ctxflow) Name() string { return "ctxflow" }

func (c *Ctxflow) Run(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if c.mintScope(pkg.Path) {
			diags = append(diags, c.checkMints(pkg)...)
		}
		if c.blockScope(pkg.Path) {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
						diags = append(diags, c.checkCtxFunc(pkg, fd)...)
					}
				}
			}
		}
	}
	return diags, nil
}

// checkMints reports every context.Background()/context.TODO() call (C002).
func (c *Ctxflow) checkMints(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if funcIs(fn, "context", "Background") || funcIs(fn, "context", "TODO") {
				diags = append(diags, Diagnostic{
					Analyzer: c.Name(), Code: "C002", Pos: pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("context.%s() minted below the entry points; propagate the caller's ctx", fn.Name()),
				})
			}
			return true
		})
	}
	return diags
}

// checkCtxFunc applies C001 to one declared function: if it receives a
// context, its blocking calls must be interruptible by that context.
func (c *Ctxflow) checkCtxFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	ctxParams, hasCtx := contextParams(pkg, fd)
	if !hasCtx {
		return nil
	}
	consulted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && ctxParams[pkg.Info.Uses[id]] {
			consulted = true
		}
		return !consulted
	})
	var diags []Diagnostic
	for _, op := range collectBlocking(pkg, fd.Body) {
		if op.sleep {
			diags = append(diags, Diagnostic{
				Analyzer: c.Name(), Code: "C001", Pos: pkg.Fset.Position(op.pos),
				Message: "time.Sleep in a context-aware function cannot be interrupted; select on a timer and ctx.Done() instead",
			})
			continue
		}
		if consulted {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: c.Name(), Code: "C001", Pos: pkg.Fset.Position(op.pos),
			Message: fmt.Sprintf("%s in a function that receives a context it never consults", op.what),
		})
	}
	return diags
}

// contextParams returns the set of context-typed parameter objects of fd,
// and whether fd has any context parameter at all (named or not — an
// unnamed context can never be consulted).
func contextParams(pkg *Package, fd *ast.FuncDecl) (map[types.Object]bool, bool) {
	params := map[types.Object]bool{}
	hasCtx := false
	for _, field := range fd.Type.Params.List {
		if !isContextType(exprType(pkg, field.Type)) {
			continue
		}
		hasCtx = true
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params, hasCtx
}

// blockingOp is one potentially-blocking operation found in a function
// body.
type blockingOp struct {
	pos   token.Pos
	what  string
	sleep bool
}

// collectBlocking walks body for blocking operations, skipping closure and
// `go` bodies (separate execution contexts) and the comm clauses of select
// statements (a select is how channel ops become interruptible; its case
// bodies are still scanned).
func collectBlocking(pkg *Package, body *ast.BlockStmt) []blockingOp {
	var ops []blockingOp
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					ast.Inspect(s, visit)
				}
			}
			return false
		case *ast.SendStmt:
			ops = append(ops, blockingOp{pos: n.Arrow, what: "blocking channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ops = append(ops, blockingOp{pos: n.OpPos, what: "blocking channel receive"})
			}
		case *ast.RangeStmt:
			if t := exprType(pkg, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ops = append(ops, blockingOp{pos: n.For, what: "blocking range over channel"})
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, n)
			switch {
			case funcIs(fn, "time", "Sleep"):
				ops = append(ops, blockingOp{pos: n.Pos(), what: "time.Sleep", sleep: true})
			case isHTTPDo(fn):
				ops = append(ops, blockingOp{pos: n.Pos(), what: "(*http.Client).Do"})
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return ops
}
