package lint

// Shared type predicates for the wave-2 concurrency analyzers (goroleak,
// ctxflow, lockorder, errdrop). Everything resolves through go/types so
// renamed imports, embedded receivers, and method values are all seen for
// what they are.

import (
	"go/ast"
	"go/types"
)

// exprType resolves the static type of e, falling back to the identifier
// use/def maps for bare names.
func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamedType(t, "context", "Context")
}

// isCancellationType reports whether a value of type t gives a goroutine a
// way to learn it should stop: a context, a channel of any direction, or a
// WaitGroup tying it to a collector.
func isCancellationType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = deref(t)
	if isNamedType(t, "context", "Context") || isNamedType(t, "sync", "WaitGroup") {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// calleeFunc resolves the function or method a call expression invokes,
// unwrapping parentheses and generic instantiations. Returns nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcIs reports whether fn is the package-level function pkgPath.name.
func funcIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// recvIs reports whether fn is a method whose receiver (after deref) is the
// named type pkgPath.name.
func recvIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(deref(sig.Recv().Type()), pkgPath, name)
}

// isHTTPDo reports whether fn is (*net/http.Client).Do.
func isHTTPDo(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Do" && recvIs(fn, "net/http", "Client")
}

// isWaitGroupWait reports whether fn is (*sync.WaitGroup).Wait.
func isWaitGroupWait(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Wait" && recvIs(fn, "sync", "WaitGroup")
}

// declIndex maps each declared function/method in the loaded packages to
// its syntax, so analyzers can judge a named callee by its body. Keys are
// types.Func.FullName() strings, not object pointers: every package is
// type-checked separately, so the object a call site resolves to (loaded
// from export data) is distinct from the object the callee's own package
// defines — only the full name is stable across the two.
type declBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func indexFuncDecls(pkgs []*Package, scope func(string) bool) map[string]declBody {
	idx := map[string]declBody{}
	for _, pkg := range pkgs {
		if scope != nil && !scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn.FullName()] = declBody{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return idx
}
