package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// APILock freezes the root package's exported surface. The v1 API is a
// compatibility promise: blitzd clients serialize Requests against it and
// cached Results outlive processes. The analyzer renders every exported
// name — funcs, consts, vars, types with their exported struct fields and
// JSON tags, and exported methods — into a canonical text form and diffs it
// against the committed lint/api_v1.txt golden.
//
//	A001  the surface drifted while EngineVersion stayed put — an
//	      unversioned breaking change
//	A002  the golden is missing or stale relative to a deliberate
//	      EngineVersion bump — regenerate with `make lint-update`
type APILock struct {
	rootPath  string
	goldenDir string
}

// NewAPILock returns the analyzer locking rootPath's surface against
// goldenDir/api_v1.txt.
func NewAPILock(rootPath, goldenDir string) *APILock {
	return &APILock{rootPath: rootPath, goldenDir: goldenDir}
}

func (*APILock) Name() string { return "apilock" }

func (a *APILock) goldenPath() string { return filepath.Join(a.goldenDir, "api_v1.txt") }

// engineVersionOf reads the root package's EngineVersion constant value.
func engineVersionOf(pkg *Package) (string, token.Position) {
	obj := pkg.Types.Scope().Lookup("EngineVersion")
	c, ok := obj.(*types.Const)
	if !ok {
		return "", token.Position{}
	}
	return strings.Trim(c.Val().ExactString(), `"`), pkg.Fset.Position(obj.Pos())
}

func (a *APILock) findRoot(pkgs []*Package) *Package {
	for _, p := range pkgs {
		if p.Path == a.rootPath {
			return p
		}
	}
	return nil
}

func (a *APILock) Run(pkgs []*Package) ([]Diagnostic, error) {
	root := a.findRoot(pkgs)
	if root == nil {
		return nil, nil // surface not in this load; nothing to check
	}
	surface := Surface(root)
	engine, enginePos := engineVersionOf(root)
	if enginePos.Filename == "" {
		enginePos = root.Fset.Position(root.Files[0].Pos())
	}

	data, err := os.ReadFile(a.goldenPath())
	if os.IsNotExist(err) {
		return []Diagnostic{{
			Analyzer: a.Name(), Code: "A002", Pos: enginePos,
			Message: "missing API golden " + a.goldenPath() + "; generate it with `make lint-update`",
		}}, nil
	}
	if err != nil {
		return nil, err
	}
	goldenEngine, goldenBody := parseAPIGolden(string(data))
	if goldenBody == surface && goldenEngine == engine {
		return nil, nil
	}
	if goldenBody == surface {
		return []Diagnostic{{
			Analyzer: a.Name(), Code: "A002", Pos: enginePos,
			Message: fmt.Sprintf("EngineVersion is %q but the API golden records %q; regenerate with `make lint-update`", engine, goldenEngine),
		}}, nil
	}
	delta := diffLines(goldenBody, surface, 6)
	if goldenEngine == engine {
		return []Diagnostic{{
			Analyzer: a.Name(), Code: "A001", Pos: enginePos,
			Message: "exported API surface drifted without an EngineVersion bump:\n" + delta +
				"\n\tbump EngineVersion and run `make lint-update`, or revert the change",
		}}, nil
	}
	return []Diagnostic{{
		Analyzer: a.Name(), Code: "A002", Pos: enginePos,
		Message: fmt.Sprintf("EngineVersion bumped %q -> %q but the API golden is stale:\n%s\n\trun `make lint-update` to regenerate %s",
			goldenEngine, engine, delta, a.goldenPath()),
	}}, nil
}

// WriteGolden regenerates the API golden from the loaded root package.
func (a *APILock) WriteGolden(pkgs []*Package) error {
	root := a.findRoot(pkgs)
	if root == nil {
		return fmt.Errorf("apilock: package %s not loaded", a.rootPath)
	}
	engine, _ := engineVersionOf(root)
	var b strings.Builder
	b.WriteString("# blitzlint apilock golden: the frozen exported surface of package " + a.rootPath + ".\n")
	b.WriteString("# Changing it requires an EngineVersion bump and `make lint-update`.\n")
	b.WriteString("engine " + engine + "\n")
	b.WriteString(Surface(root))
	if err := os.MkdirAll(a.goldenDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(a.goldenPath(), []byte(b.String()), 0o644)
}

// parseAPIGolden splits the golden into the recorded engine version and the
// surface body.
func parseAPIGolden(data string) (engine, body string) {
	var lines []string
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if v, ok := strings.CutPrefix(line, "engine "); ok && engine == "" {
			engine = strings.TrimSpace(v)
			continue
		}
		lines = append(lines, line)
	}
	return engine, strings.TrimLeft(strings.Join(lines, "\n"), "\n")
}

// Surface renders pkg's exported API in a canonical, diff-friendly text
// form: one line per const/var/func/type, indented lines for exported
// struct fields (with tags) and exported methods, everything sorted by
// name. Unexported names and fields are invisible — they are not surface.
func Surface(pkg *Package) string {
	qual := func(p *types.Package) string {
		if p == pkg.Types {
			return ""
		}
		return p.Name()
	}
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		if !token.IsExported(name) {
			continue
		}
		switch obj := scope.Lookup(name).(type) {
		case *types.Const:
			fmt.Fprintf(&b, "const %s %s = %s\n", name, types.TypeString(obj.Type(), qual), obj.Val().ExactString())
		case *types.Var:
			fmt.Fprintf(&b, "var %s %s\n", name, types.TypeString(obj.Type(), qual))
		case *types.Func:
			fmt.Fprintf(&b, "func %s%s\n", name, signatureString(obj.Type().(*types.Signature), qual))
		case *types.TypeName:
			writeTypeSurface(&b, obj, qual)
		}
	}
	return b.String()
}

// signatureString renders a signature without the leading "func" keyword.
func signatureString(sig *types.Signature, qual types.Qualifier) string {
	return strings.TrimPrefix(types.TypeString(sig, qual), "func")
}

func writeTypeSurface(b *strings.Builder, obj *types.TypeName, qual types.Qualifier) {
	name := obj.Name()
	if obj.IsAlias() {
		fmt.Fprintf(b, "type %s = %s\n", name, types.TypeString(obj.Type(), qual))
		return
	}
	named := obj.Type().(*types.Named)
	switch u := named.Underlying().(type) {
	case *types.Struct:
		fmt.Fprintf(b, "type %s struct\n", name)
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			line := fmt.Sprintf("\tfield %s %s", f.Name(), types.TypeString(f.Type(), qual))
			if tag := u.Tag(i); tag != "" {
				line += " `" + tag + "`"
			}
			b.WriteString(line + "\n")
		}
	case *types.Interface:
		fmt.Fprintf(b, "type %s interface\n", name)
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if !m.Exported() {
				continue
			}
			fmt.Fprintf(b, "\tmethod %s%s\n", m.Name(), signatureString(m.Type().(*types.Signature), qual))
		}
		return // interface methods are the whole surface
	default:
		fmt.Fprintf(b, "type %s %s\n", name, types.TypeString(u, qual))
	}
	// Exported methods on the named type (value and pointer receivers).
	var methods []string
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() {
			continue
		}
		sig := m.Type().(*types.Signature)
		recv := types.TypeString(sig.Recv().Type(), qual)
		methods = append(methods, fmt.Sprintf("\tmethod (%s) %s%s", recv, m.Name(), signatureString(sig, qual)))
	}
	sort.Strings(methods)
	for _, m := range methods {
		b.WriteString(m + "\n")
	}
}

// diffLines renders up to max differing lines between two line-oriented
// texts, in a compact -old/+new form (a set diff ordered by the new text;
// enough to name what changed without a full diff engine).
func diffLines(old, new string, max int) string {
	oldSet := map[string]bool{}
	for _, l := range strings.Split(old, "\n") {
		oldSet[l] = true
	}
	newSet := map[string]bool{}
	for _, l := range strings.Split(new, "\n") {
		newSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(old, "\n") {
		if l != "" && !newSet[l] {
			out = append(out, "\t- "+strings.TrimSpace(l))
		}
	}
	for _, l := range strings.Split(new, "\n") {
		if l != "" && !oldSet[l] {
			out = append(out, "\t+ "+strings.TrimSpace(l))
		}
	}
	if len(out) > max {
		out = append(out[:max], fmt.Sprintf("\t... and %d more changed line(s)", len(out)-max))
	}
	return strings.Join(out, "\n")
}
