package lint

import (
	"path/filepath"
	"testing"
)

// TestTreeClean runs the full production analyzer set over the real module:
// the committed tree must lint clean, and the committed goldens must match
// what the compiler and type-checker report today. This is the same gate
// `make lint` applies, kept in go test so `go test ./internal/lint/...`
// exercises the loader end to end.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	dir := moduleDir(t)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	res, err := Run(DefaultAnalyzers(dir, filepath.Join(dir, "lint")), pkgs)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range res.Active {
		t.Errorf("tree not clean: %s", d)
	}
}

// TestRunSortsDiagnostics pins the deterministic output order the CLI and
// goldens rely on.
func TestRunSortsDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Code: "B", Pos: position("b.go", 2, 1)},
		{Code: "B", Pos: position("a.go", 9, 3)},
		{Code: "A", Pos: position("a.go", 9, 3)},
		{Code: "C", Pos: position("a.go", 1, 1)},
	}
	sortDiagnostics(ds)
	want := []string{"C", "A", "B", "B"}
	for i, d := range ds {
		if d.Code != want[i] {
			t.Fatalf("order %d = %s, want %s", i, d.Code, want[i])
		}
	}
}
