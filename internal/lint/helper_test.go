package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// position builds a token.Position for table-driven directive tests.
func position(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// moduleDir locates the repository root (the directory holding go.mod), so
// fixture type-checking resolves blitzcoin/internal/... imports.
func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", dir, err)
	}
	return dir
}

// loadFixture type-checks testdata/src/<name> as a standalone package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadFixture(moduleDir(t), filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

// formatDiags renders diagnostics in the golden form the expect.txt files
// use: basename:line:col: CODE.
func formatDiags(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%s:%d:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Code)
	}
	return out
}

// checkGolden compares formatted diagnostics against the fixture's
// expect.txt (one `file:line:col: CODE` per line).
func checkGolden(t *testing.T, fixture string, got []string) {
	t.Helper()
	path := filepath.Join("testdata", "src", fixture, "expect.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var want []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			want = append(want, line)
		}
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics mismatch for %s\n got:\n  %s\nwant:\n  %s",
			fixture, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// runAnalyzer runs one analyzer through the full Run pipeline (directives
// applied) over a single fixture package.
func runAnalyzer(t *testing.T, a Analyzer, pkg *Package) *Result {
	t.Helper()
	res, err := Run([]Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name(), err)
	}
	return res
}
