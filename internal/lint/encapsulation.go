package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Encapsulation protects the coin-conservation ledger: the fields of
// coin.Result that together encode "every coin is accounted for" may only
// be written by internal/coin itself. A write anywhere else forges the
// Conserved() verdict the fault-injection tests and the audit depend on.
//
//	E001  assignment, compound assignment, increment/decrement,
//	      composite-literal initialization, or address-taking of a
//	      protected budget field outside the owning package
type Encapsulation struct {
	ownerPath string
	typeName  string
	fields    map[string]bool
}

// NewEncapsulation returns the analyzer protecting the named fields of
// ownerPath.typeName from writes outside ownerPath.
func NewEncapsulation(ownerPath, typeName string, fields []string) *Encapsulation {
	m := make(map[string]bool, len(fields))
	for _, f := range fields {
		m[f] = true
	}
	return &Encapsulation{ownerPath: ownerPath, typeName: typeName, fields: m}
}

func (*Encapsulation) Name() string { return "encapsulation" }

func (a *Encapsulation) Run(pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Path == a.ownerPath {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok && a.isProtected(pkg, sel) {
							out = append(out, a.diag(pkg, sel, "write to"))
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := n.X.(*ast.SelectorExpr); ok && a.isProtected(pkg, sel) {
						out = append(out, a.diag(pkg, sel, "increment/decrement of"))
					}
				case *ast.UnaryExpr:
					if n.Op != token.AND {
						return true
					}
					if sel, ok := n.X.(*ast.SelectorExpr); ok && a.isProtected(pkg, sel) {
						out = append(out, a.diag(pkg, sel, "address taken of"))
					}
				case *ast.CompositeLit:
					out = append(out, a.checkLit(pkg, n)...)
				}
				return true
			})
		}
	}
	return out, nil
}

func (a *Encapsulation) diag(pkg *Package, n ast.Node, what string) Diagnostic {
	return Diagnostic{
		Analyzer: a.Name(), Code: "E001",
		Pos: pkg.Fset.Position(n.Pos()),
		Message: what + " a coin-budget field outside " + a.ownerPath +
			"; the conservation ledger is owned by the emulator and its audit",
	}
}

// isProtected reports whether sel resolves to one of the protected fields
// declared in the owner package (embedding included: the field object's
// package is where the field is declared, not where it is reached from).
func (a *Encapsulation) isProtected(pkg *Package, sel *ast.SelectorExpr) bool {
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	obj := s.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == a.ownerPath && a.fields[obj.Name()]
}

// checkLit flags composite literals of the protected type that initialize a
// budget field — constructing a forged Result is as bad as mutating one.
func (a *Encapsulation) checkLit(pkg *Package, lit *ast.CompositeLit) []Diagnostic {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return nil
	}
	named, ok := deref(tv.Type).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != a.ownerPath || obj.Name() != a.typeName {
		return nil
	}
	var out []Diagnostic
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: every field is set, budget ones included.
			out = append(out, a.diag(pkg, el, "positional composite literal sets"))
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && a.fields[id.Name] {
			out = append(out, a.diag(pkg, kv, "composite literal sets"))
		}
	}
	return out
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
