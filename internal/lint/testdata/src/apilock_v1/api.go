// Package fixture is the frozen v1 surface for the apilock golden tests.
package fixture

// EngineVersion names the simulation semantics of this fixture.
const EngineVersion = "1"

// Point is an exported type with a mixed field set.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
	z int
}

// Norm1 is an exported method.
func (p Point) Norm1() int { return abs(p.X) + abs(p.Y) }

// Hello greets.
func Hello(name string) string { return "hello " + name }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ = Point{}.z
