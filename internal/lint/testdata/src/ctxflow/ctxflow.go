// Package fixture exercises the ctxflow analyzer: blocking work in a
// context-receiving function must be interruptible by that context (C001),
// and no root context may be minted below the entry points (C002).
package fixture

import (
	"context"
	"net/http"
	"time"
)

// Blind receives a context it never consults: every blocking operation is
// flagged.
func Blind(ctx context.Context, ch chan int, client *http.Client, req *http.Request) {
	ch <- 1
	<-ch
	client.Do(req)
}

// Guarded makes the channel ops interruptible via select: clean.
func Guarded(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// Sleepy consults its context elsewhere, but time.Sleep can never be
// interrupted: still flagged.
func Sleepy(ctx context.Context) {
	select {
	case <-ctx.Done():
		return
	default:
	}
	time.Sleep(time.Millisecond)
}

// Drain ranges over a channel it cannot cancel out of.
func Drain(ctx context.Context, ch chan int) {
	for range ch {
	}
}

// NoCtx has no context parameter: ctxflow has nothing to enforce.
func NoCtx(ch chan int) {
	ch <- 1
	<-ch
}

// SpawnsWorker blocks only inside a spawned closure, which is a separate
// execution context (goroleak territory): clean for C001.
func SpawnsWorker(ctx context.Context, ch chan int) {
	go func() {
		<-ch
	}()
	<-ctx.Done()
}

// Mint creates root contexts below the entry points.
func Mint() context.Context {
	_ = context.TODO()
	return context.Background()
}
