// Package fixture exercises the seedflow analyzer: sweep.Map trial
// closures must derive their RNG from internal/rng seeded by the trial
// index, and must not capture a shared stream.
package fixture

import (
	"context"

	"blitzcoin/internal/rng"
	"blitzcoin/internal/sweep"
)

// Good derives a private stream from the trial index.
func Good(ctx context.Context, seed uint64) []float64 {
	return sweep.Map(ctx, 8, 0, func(t int) float64 {
		src := rng.New(seed + uint64(t)*7919)
		return src.Float64()
	})
}

// SharedCapture reuses one stream across trials: results depend on which
// worker draws first.
func SharedCapture(ctx context.Context, seed uint64) []float64 {
	shared := rng.New(seed)
	return sweep.Map(ctx, 8, 0, func(t int) float64 {
		_ = t
		return shared.Float64()
	})
}

// IndexFreeSeed reseeds every trial identically.
func IndexFreeSeed(ctx context.Context, seed uint64) []float64 {
	return sweep.Map(ctx, 8, 0, func(t int) float64 {
		_ = t
		src := rng.New(seed)
		return src.Float64()
	})
}
