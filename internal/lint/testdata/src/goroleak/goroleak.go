// Package fixture exercises the goroleak analyzer: every spawned goroutine
// needs a cancellation path (G001) and every ticker/timer needs a reachable
// Stop (G002). It also exercises the allow-directive machinery against the
// new codes: a justified allow suppresses, a reason-less one is X002, and a
// stale one is X001.
package fixture

import (
	"context"
	"sync"
	"time"
)

func work() {}

// Leaky spawns a closure that mentions nothing cancellable.
func Leaky() {
	go func() {
		for {
			work()
		}
	}()
}

// CtxBound consults a context: clean.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ChanBound watches a done channel: clean.
func ChanBound(done chan struct{}) {
	go func() {
		<-done
	}()
}

// Grouped ties the goroutine to a WaitGroup: clean.
func Grouped(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

// NamedLeak spawns a named function judged by its own body: spin has no
// cancellation path.
func NamedLeak() {
	go spin()
}

func spin() {
	for {
		work()
	}
}

// NamedBound spawns a named function whose body waits on a channel: clean.
func NamedBound(stop chan struct{}) {
	go waiter(stop)
}

func waiter(stop chan struct{}) {
	<-stop
}

// AllowedLeak is suppressed by a justified directive (counted, not active).
func AllowedLeak() {
	//blitzlint:allow G001 fixture: detached by design to exercise suppression accounting
	go func() {
		work()
	}()
}

// ReasonlessAllow is malformed: no reason after the code (X002). The leak
// itself stays active.
func ReasonlessAllow() {
	//blitzlint:allow G001
	go func() {
		work()
	}()
}

// StaleAllow allows a G002 that no longer exists on the next line (X001).
func StaleAllow() {
	//blitzlint:allow G002 fixture: nothing here creates a ticker any more
	work()
}

// TickerLeak never stops its ticker.
func TickerLeak() {
	t := time.NewTicker(time.Second)
	_ = t
}

// TickerStopped defers the Stop: clean.
func TickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

// TimerLeak reads the timer but never stops it.
func TimerLeak() {
	t := time.NewTimer(time.Second)
	<-t.C
}

// TimerEscapes hands ownership to the caller: clean.
func TimerEscapes() *time.Timer {
	t := time.NewTimer(time.Second)
	return t
}
