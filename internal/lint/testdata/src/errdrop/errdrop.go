// Package fixture exercises the errdrop analyzer: statement-position calls
// that silently discard an error from the close/flush/write paths (R001).
package fixture

import (
	"io"
	"os"
)

type sink struct{ f *os.File }

// Drop discards the Close error.
func Drop(s *sink) {
	s.f.Close()
}

// Checked handles it: clean.
func Checked(s *sink) error {
	return s.f.Close()
}

// Deliberate uses the documented `_ =` escape hatch: clean.
func Deliberate(s *sink) {
	_ = s.f.Close()
}

// DeferDrop defers a write-side Close: flushing errors vanish.
func DeferDrop(s *sink) {
	defer s.f.Close()
}

// ReadSide defers a Close on an io.ReadCloser: idiomatic cleanup, clean.
func ReadSide(rc io.ReadCloser) {
	defer rc.Close()
}

func emit() error { return nil }

// SoleError drops a call whose only result is an error.
func SoleError() {
	emit()
}

// MultiResult drops a (n, error) call whose name is not watched: clean —
// only the watched-name set or sole-error calls are flagged.
func MultiResult(w io.Writer, b []byte) {
	w.Write(b)
}

// Allowed is suppressed with a justified directive (counted, not active).
func Allowed(s *sink) {
	s.f.Close() //blitzlint:allow R001 fixture: intentional drop to exercise suppression accounting
}

// SyncDrop discards a watched-name error with multiple callers unaffected.
func SyncDrop(s *sink) {
	s.f.Sync()
}
