// Package fixture exercises the //blitzlint:allow directive: a justified
// suppression, a stale directive with no matching diagnostic, and a
// malformed directive with no reason.
package fixture

import "time"

// Allowed reads the wall clock with an explicit justification.
func Allowed() time.Time {
	//blitzlint:allow D001 fixture exercises suppression
	return time.Now()
}

//blitzlint:allow D001 stale: nothing on the next line violates
func Clean() int { return 1 }

// Malformed suppressions (no reason) do not suppress and are reported.
func Malformed() time.Time {
	//blitzlint:allow D001
	return time.Now()
}
