// Package fixture exercises the lockorder analyzer: nested mutex
// acquisitions must follow the committed lockorder.txt golden (L001/L003)
// and nothing may block while holding a lock (L002).
package fixture

import (
	"sync"
	"time"
)

type server struct{ mu sync.Mutex }
type store struct{ mu sync.Mutex }
type gauge struct{ mu sync.RWMutex }

type app struct {
	srv *server
	st  *store
	g   *gauge
}

// LockBoth nests the store lock under the server lock through a helper
// call — the committed order, clean.
func (a *app) LockBoth() {
	a.srv.mu.Lock()
	defer a.srv.mu.Unlock()
	a.useStore()
}

func (a *app) useStore() {
	a.st.mu.Lock()
	a.st.mu.Unlock()
}

// Reversed inverts the committed server -> store order.
func (a *app) Reversed() {
	a.st.mu.Lock()
	a.srv.mu.Lock()
	a.srv.mu.Unlock()
	a.st.mu.Unlock()
}

// Undeclared nests the gauge read-lock under the server lock; the edge is
// not committed in the golden.
func (a *app) Undeclared() {
	a.srv.mu.Lock()
	a.g.mu.RLock()
	a.g.mu.RUnlock()
	a.srv.mu.Unlock()
}

// Sleepy blocks directly while holding the server lock.
func (a *app) Sleepy() {
	a.srv.mu.Lock()
	time.Sleep(time.Millisecond)
	a.srv.mu.Unlock()
}

// TransSleep blocks through a call chain while holding the store lock.
func (a *app) TransSleep() {
	a.st.mu.Lock()
	nap()
	a.st.mu.Unlock()
}

func nap() {
	time.Sleep(time.Millisecond)
}

// Signal is a select with a default while holding: never parks, clean.
func (a *app) Signal(ch chan struct{}) {
	a.srv.mu.Lock()
	select {
	case ch <- struct{}{}:
	default:
	}
	a.srv.mu.Unlock()
}
