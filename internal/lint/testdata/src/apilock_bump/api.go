// Package fixture makes the same surface change as apilock_drift but
// bumps EngineVersion, so the only complaint is the stale golden.
package fixture

// EngineVersion is bumped for the deliberate surface change.
const EngineVersion = "2"

// Point is an exported type with a mixed field set.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
	z int
}

// Norm1 is an exported method.
func (p Point) Norm1() int { return abs(p.X) + abs(p.Y) }

// Hello grew a parameter: a breaking signature change.
func Hello(name string, loud bool) string { return "hello " + name }

// Goodbye is new exported surface.
func Goodbye() string { return "bye" }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ = Point{}.z
