// Package fixture exercises the encapsulation analyzer: the coin-budget
// fields of coin.Result may only be written by internal/coin itself.
package fixture

import "blitzcoin/internal/coin"

// Forge mutates the conservation ledger from outside the owner package.
func Forge(r *coin.Result) {
	r.PoolViolation = 0
	r.CoinsEnd++
	p := &r.CoinsMinted
	_ = p
	r.Converged = true // not a budget field: allowed
}

// Construct forges a conserved-looking Result wholesale.
func Construct() coin.Result {
	return coin.Result{CoinsStart: 5}
}

// Read-only access to the ledger is fine.
func Inspect(r coin.Result) int64 {
	return r.CoinsStart - r.CoinsEnd
}
