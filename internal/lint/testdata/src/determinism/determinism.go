// Package fixture exercises the determinism analyzer: wall-clock reads,
// global math/rand draws, and order-sensitive sinks inside map ranges,
// alongside the two sanctioned idioms (per-key accumulation and
// collect-then-sort).
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Rows appends ordered output directly from a map range.
func Rows(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	return rows
}

// Stamp reads the wall clock and the global generator.
func Stamp() int64 {
	t := time.Now()
	_ = time.Since(t)
	return rand.Int63()
}

// SortedKeys is the sanctioned collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerKey is the sanctioned per-key accumulation idiom.
func PerKey(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// PrintAll prints in iteration order.
func PrintAll(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// FillSlice writes slice elements in iteration order.
func FillSlice(m map[string]int, out []int) {
	i := 0
	for _, v := range m {
		out[i] = v
		i++
	}
}
