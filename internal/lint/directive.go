package lint

import (
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive comment marker. The full form is
//
//	//blitzlint:allow <CODE> <reason...>
//
// placed either on the offending line (trailing comment) or on the line
// immediately above it. The reason is mandatory: a suppression with no
// stated justification is treated as malformed and reported.
const allowPrefix = "//blitzlint:allow"

// directive is one parsed allow comment.
type directive struct {
	pos    token.Position // position of the comment itself
	code   string         // diagnostic code being allowed, e.g. D001
	reason string         // free-text justification (must be non-empty)
	used   bool           // set when a diagnostic matched it
}

// collectDirectives scans every file's comments for blitzlint:allow
// directives.
func collectDirectives(pkgs []*Package) []*directive {
	var dirs []*directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
					code, reason, _ := strings.Cut(rest, " ")
					dirs = append(dirs, &directive{
						pos:    pkg.Fset.Position(c.Pos()),
						code:   code,
						reason: strings.TrimSpace(reason),
					})
				}
			}
		}
	}
	return dirs
}

// applyDirectives partitions raw diagnostics into suppressed and active
// according to the allow directives, and appends X001 diagnostics for
// malformed or stale directives so they cannot silently rot.
func applyDirectives(raw []Diagnostic, dirs []*directive) *Result {
	res := &Result{}
	for _, d := range raw {
		if dir := matchDirective(dirs, d); dir != nil {
			dir.used = true
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Active = append(res.Active, d)
	}
	for _, dir := range dirs {
		switch {
		case dir.code == "" || dir.reason == "":
			res.Active = append(res.Active, Diagnostic{
				Analyzer: "directive",
				Code:     "X002",
				Pos:      dir.pos,
				Message:  "malformed allow directive: want //blitzlint:allow <CODE> <reason>",
			})
		case !dir.used:
			res.Active = append(res.Active, Diagnostic{
				Analyzer: "directive",
				Code:     "X001",
				Pos:      dir.pos,
				Message:  "stale allow directive: no " + dir.code + " diagnostic on this or the next line",
			})
		}
	}
	return res
}

// matchDirective finds an allow directive covering d: same file, same code,
// on the diagnostic's line or the line immediately above.
func matchDirective(dirs []*directive, d Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.code != d.Code || dir.reason == "" {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}
