package lint

import "testing"

func TestSeedflowGolden(t *testing.T) {
	pkg := loadFixture(t, "seedflow")
	res := runAnalyzer(t, NewSeedflow(), pkg)
	checkGolden(t, "seedflow", formatDiags(res.Active))
}
