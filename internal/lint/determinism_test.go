package lint

import "testing"

func TestDeterminismGolden(t *testing.T) {
	pkg := loadFixture(t, "determinism")
	res := runAnalyzer(t, NewDeterminism(nil), pkg)
	checkGolden(t, "determinism", formatDiags(res.Active))
	if len(res.Suppressed) != 0 {
		t.Errorf("unexpected suppressions: %v", res.Suppressed)
	}
}

// TestDeterminismScope pins the production scoping: simulation packages are
// patrolled, the serving layer and CLIs are allowlisted for wall-clock use.
func TestDeterminismScope(t *testing.T) {
	for path, want := range map[string]bool{
		"blitzcoin":                      true,
		"blitzcoin/internal/coin":        true,
		"blitzcoin/internal/sweep":       true,
		"blitzcoin/internal/experiments": true,
		"blitzcoin/internal/server":      false,
		"blitzcoin/cmd/blitzd":           false,
		"blitzcoin/cmd/blitzsim":         false,
		"blitzcoin/internal/lint":        false,
	} {
		if got := SimScope(path); got != want {
			t.Errorf("SimScope(%q) = %v, want %v", path, got, want)
		}
	}
}
