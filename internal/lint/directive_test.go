package lint

import (
	"strings"
	"testing"
)

// TestDirectiveGolden pins the full directive contract on one fixture:
// a justified allow suppresses its diagnostic, a stale allow is reported
// as X001, and a reason-less allow is reported as X002 and suppresses
// nothing.
func TestDirectiveGolden(t *testing.T) {
	pkg := loadFixture(t, "directive")
	res := runAnalyzer(t, NewDeterminism(nil), pkg)
	checkGolden(t, "directive", formatDiags(res.Active))

	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %d, want 1 (%v)", len(res.Suppressed), formatDiags(res.Suppressed))
	}
	if d := res.Suppressed[0]; d.Code != "D001" {
		t.Errorf("suppressed diagnostic code = %s, want D001", d.Code)
	}
}

// TestDirectiveSummaryCountsSuppressed verifies suppressed findings stay
// visible: the summary line carries the count and per-code breakdown.
func TestDirectiveSummaryCountsSuppressed(t *testing.T) {
	pkg := loadFixture(t, "directive")
	res := runAnalyzer(t, NewDeterminism(nil), pkg)
	sum := res.Summary()
	if !strings.Contains(sum, "1 suppressed") {
		t.Errorf("summary %q does not count the suppression", sum)
	}
	if !strings.Contains(sum, "D001 x1") {
		t.Errorf("summary %q does not break down suppressions by code", sum)
	}
	if !res.Failed() {
		t.Error("stale + malformed directives must fail the run")
	}
}

// TestDirectiveSameLine verifies a trailing same-line comment suppresses.
func TestDirectiveSameLine(t *testing.T) {
	raw := []Diagnostic{{Analyzer: "determinism", Code: "D001",
		Pos: position("a.go", 10, 5), Message: "m"}}
	dirs := []*directive{{pos: position("a.go", 10, 40), code: "D001", reason: "same line"}}
	res := applyDirectives(raw, dirs)
	if len(res.Suppressed) != 1 || len(res.Active) != 0 {
		t.Errorf("same-line directive: suppressed=%d active=%d, want 1/0",
			len(res.Suppressed), len(res.Active))
	}
}

// TestDirectiveWrongCode verifies an allow for a different code does not
// suppress and is itself stale.
func TestDirectiveWrongCode(t *testing.T) {
	raw := []Diagnostic{{Analyzer: "determinism", Code: "D001",
		Pos: position("a.go", 10, 5), Message: "m"}}
	dirs := []*directive{{pos: position("a.go", 9, 1), code: "D002", reason: "mismatched"}}
	res := applyDirectives(raw, dirs)
	if len(res.Suppressed) != 0 {
		t.Error("mismatched code must not suppress")
	}
	var sawStale, sawOriginal bool
	for _, d := range res.Active {
		switch d.Code {
		case "X001":
			sawStale = true
		case "D001":
			sawOriginal = true
		}
	}
	if !sawStale || !sawOriginal {
		t.Errorf("want original D001 and stale X001, got %v", formatDiags(res.Active))
	}
}
