package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cannedOutput is a miniature -gcflags=-m transcript: two escapes, inlining
// noise, and a duplicate verdict that must collapse into one key.
const cannedOutput = `# blitzcoin/internal/coin
internal/coin/emulator.go:10:5: make([]int64, n) escapes to heap
internal/coin/emulator.go:20:7: allowed thing escapes to heap
internal/coin/emulator.go:30:5: can inline roundDiv
internal/coin/emulator.go:44:5: make([]int64, n) escapes to heap
internal/noc/noc.go:12:3: moved to heap: dup
`

func newCannedAnalyzer(t *testing.T, allowlist string) *HotPathAlloc {
	t.Helper()
	dir := t.TempDir()
	if allowlist != "" {
		if err := os.WriteFile(filepath.Join(dir, "escape_allow.txt"), []byte(allowlist), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	a := NewHotPathAlloc("/mod", dir, nil)
	a.SetCompileOutput(cannedOutput)
	return a
}

func TestHotPathAllocGolden(t *testing.T) {
	a := newCannedAnalyzer(t, `# comment
internal/coin/emulator.go: allowed thing escapes to heap
internal/noc/noc.go: moved to heap: dup
internal/coin/gone.go: stale entry escapes to heap
`)
	ds, err := a.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	sortDiagnostics(ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.Code+" "+filepath.Base(d.Pos.Filename))
	}
	// Sorted by path: the module file precedes the temp-dir golden.
	want := []string{
		"H001 emulator.go",      // the unallowed make([]int64, n)
		"H002 escape_allow.txt", // stale gone.go entry
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
	// The new-escape diagnostic carries the first occurrence's position.
	for _, d := range ds {
		if d.Code == "H001" && d.Pos.Line != 10 {
			t.Errorf("H001 at line %d, want first occurrence line 10", d.Pos.Line)
		}
	}
}

func TestHotPathAllocCleanDiff(t *testing.T) {
	a := newCannedAnalyzer(t, `internal/coin/emulator.go: make([]int64, n) escapes to heap
internal/coin/emulator.go: allowed thing escapes to heap
internal/noc/noc.go: moved to heap: dup
`)
	ds, err := a.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("clean diff reported %d diagnostics", len(ds))
	}
}

// TestHotPathAllocWriteGolden verifies -update writes the deduplicated,
// sorted key set.
func TestHotPathAllocWriteGolden(t *testing.T) {
	a := newCannedAnalyzer(t, "")
	if err := a.WriteGolden(); err != nil {
		t.Fatal(err)
	}
	ds, err := a.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("fresh golden still reports %v", formatDiags(ds))
	}
	data, err := os.ReadFile(filepath.Join(a.goldenDir, "escape_allow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			keys = append(keys, line)
		}
	}
	want := []string{
		"internal/coin/emulator.go: allowed thing escapes to heap",
		"internal/coin/emulator.go: make([]int64, n) escapes to heap",
		"internal/noc/noc.go: moved to heap: dup",
	}
	if strings.Join(keys, "\n") != strings.Join(want, "\n") {
		t.Errorf("golden keys:\n%s\nwant:\n%s", strings.Join(keys, "\n"), strings.Join(want, "\n"))
	}
}

func TestParseEscapesDedup(t *testing.T) {
	escapes := parseEscapes(cannedOutput)
	if len(escapes) != 3 {
		t.Fatalf("parsed %d escapes, want 3 deduplicated", len(escapes))
	}
}
