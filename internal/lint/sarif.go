package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, the format GitHub code scanning ingests. Active
// diagnostics become error-level results; suppressed ones are included with
// an in-source suppression record so the dashboard shows them as reviewed
// rather than silently dropping them.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// sarifRuleDescriptions gives each stable code a one-line description for
// the rules catalog. Codes missing here still render (the code itself is
// the description), so a new analyzer cannot break SARIF output.
var sarifRuleDescriptions = map[string]string{
	"D001": "wall-clock read in a deterministic simulation package",
	"D002": "global math/rand use in a deterministic simulation package",
	"D003": "order-dependent map iteration in a deterministic simulation package",
	"S001": "sweep trial closure draws randomness not derived from the trial index",
	"S002": "sweep trial closure captures a stateful RNG across trials",
	"H001": "new heap escape on the exchange hot path (not in escape_allow.txt)",
	"H002": "stale escape_allow.txt entry",
	"E001": "coin budget field written outside internal/coin",
	"A001": "exported API surface drifted without an EngineVersion bump",
	"A002": "API golden missing or stale relative to EngineVersion",
	"G001": "goroutine with no cancellation path (no context, channel, or WaitGroup)",
	"G002": "time.Ticker/time.Timer created without a reachable Stop",
	"C001": "blocking call in a function that receives a context it does not consult",
	"C002": "context.Background()/TODO() minted below the entry points",
	"L001": "mutex acquisition order diverges from the committed lockorder golden",
	"L002": "blocking operation while a mutex is held",
	"L003": "stale lockorder golden entry",
	"R001": "discarded error from a close/flush/write-path call",
	"X001": "stale blitzlint:allow directive",
	"X002": "malformed blitzlint:allow directive",
}

// WriteSARIF renders res as a SARIF 2.1.0 log. File paths are emitted
// relative to moduleDir (forward-slashed) so GitHub can anchor annotations
// to repository files.
func WriteSARIF(w io.Writer, moduleDir string, res *Result) error {
	codes := map[string]bool{}
	for _, d := range res.Active {
		codes[d.Code] = true
	}
	for _, d := range res.Suppressed {
		codes[d.Code] = true
	}
	var rules []sarifRule
	for code := range codes {
		desc := sarifRuleDescriptions[code]
		if desc == "" {
			desc = code
		}
		rules = append(rules, sarifRule{ID: code, ShortDescription: sarifMessage{Text: desc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(res.Active)+len(res.Suppressed))
	for _, d := range res.Active {
		results = append(results, sarifFromDiag(moduleDir, d, nil))
	}
	for _, d := range res.Suppressed {
		results = append(results, sarifFromDiag(moduleDir, d, []sarifSuppression{{Kind: "inSource"}}))
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "blitzlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

func sarifFromDiag(moduleDir string, d Diagnostic, sup []sarifSuppression) sarifResult {
	uri := d.Pos.Filename
	if rel, err := filepath.Rel(moduleDir, uri); err == nil && !strings.HasPrefix(rel, "..") {
		uri = rel
	}
	uri = filepath.ToSlash(uri)
	line := d.Pos.Line
	if line < 1 {
		line = 1
	}
	level := "error"
	if len(sup) > 0 {
		level = "note"
	}
	return sarifResult{
		RuleID:  d.Code,
		Level:   level,
		Message: sarifMessage{Text: d.Message + " (" + d.Analyzer + ")"},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: uri},
				Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
			},
		}},
		Suppressions: sup,
	}
}
