package lint

import (
	"go/ast"
	"go/types"
)

// Seedflow enforces the sweep engine's seeding contract: a sweep.Map trial
// closure computes the same result no matter which worker runs it, which
// holds only if every random draw inside the closure derives from the trial
// index alone.
//
//	S001  the closure captures (and uses) a *rng.Source or *rand.Rand
//	      declared outside itself — a shared stream makes trial results
//	      depend on scheduling order
//	S002  the closure constructs a Source with rng.New(seed) whose seed
//	      expression never mentions the trial index parameter — every trial
//	      then replays the same stream, or worse, a config-captured seed
//	      hides a cross-trial dependency
type Seedflow struct {
	sweepPath string
	rngPath   string
}

// NewSeedflow returns the analyzer with the production package bindings.
func NewSeedflow() *Seedflow {
	return &Seedflow{
		sweepPath: "blitzcoin/internal/sweep",
		rngPath:   "blitzcoin/internal/rng",
	}
}

func (*Seedflow) Name() string { return "seedflow" }

func (a *Seedflow) Run(pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !a.isSweepMap(pkg, call) || len(call.Args) != 4 {
					return true
				}
				fn, ok := call.Args[3].(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, a.checkClosure(pkg, fn)...)
				return true
			})
		}
	}
	return out, nil
}

// isSweepMap reports whether call invokes sweep.Map (the generic worker-pool
// fan-out; the instantiated object resolves to the same func).
func (a *Seedflow) isSweepMap(pkg *Package, call *ast.CallExpr) bool {
	fun := call.Fun
	if ix, ok := fun.(*ast.IndexExpr); ok { // explicit instantiation Map[T]
		fun = ix.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == a.sweepPath && obj.Name() == "Map"
}

// trialParam returns the object of the closure's trial-index parameter.
func trialParam(pkg *Package, fn *ast.FuncLit) types.Object {
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return nil
	}
	names := fn.Type.Params.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return pkg.Info.Defs[names[0]]
}

func (a *Seedflow) checkClosure(pkg *Package, fn *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	trial := trialParam(pkg, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj, ok := pkg.Info.Uses[n].(*types.Var)
			if !ok || obj.IsField() {
				return true
			}
			// Captured variable: declared outside the closure literal.
			if obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End() {
				return true
			}
			if a.isRNGType(obj.Type()) {
				out = append(out, Diagnostic{
					Analyzer: a.Name(), Code: "S001",
					Pos: pkg.Fset.Position(n.Pos()),
					Message: "sweep.Map trial closure captures shared RNG " + n.Name +
						"; derive a private stream with rng.New seeded by the trial index",
				})
			}
		case *ast.CallExpr:
			if !a.isRNGNew(pkg, n) {
				return true
			}
			if trial == nil || !mentionsObject(pkg, n.Args, trial) {
				out = append(out, Diagnostic{
					Analyzer: a.Name(), Code: "S002",
					Pos: pkg.Fset.Position(n.Pos()),
					Message: "rng.New seed inside a sweep.Map trial closure does not depend on the trial index" +
						"; every trial replays the same stream",
				})
			}
		}
		return true
	})
	return out
}

// isRNGType reports whether t is one of the generator types that must not
// be shared across trials: rng.Source or math/rand's Rand (v1 or v2),
// possibly behind a pointer.
func (a *Seedflow) isRNGType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case a.rngPath:
		return obj.Name() == "Source" || obj.Name() == "Stream"
	case "math/rand", "math/rand/v2":
		return obj.Name() == "Rand"
	}
	return false
}

// isRNGNew reports whether call is rng.New(...).
func (a *Seedflow) isRNGNew(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == a.rngPath && obj.Name() == "New"
}

// mentionsObject reports whether any expression in exprs references obj.
func mentionsObject(pkg *Package, exprs []ast.Expr, obj types.Object) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}
