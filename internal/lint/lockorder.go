package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder enforces a committed global mutex-acquisition order. Deadlock
// freedom in the coordinator/scheduler/trace-bus triangle depends on every
// nested acquisition following one partial order; that order lives in the
// lint/lockorder.txt golden as `A -> B` lines and this analyzer diffs the
// tree against it.
//
//	L001  observed nested acquisition `A -> B` not in the golden — either a
//	      genuine inversion (the reverse edge is committed) or a new nesting
//	      that must be reviewed and added via `make lint-update`
//	L002  blocking operation (time.Sleep, select-less channel op, select
//	      without default, (*http.Client).Do, WaitGroup.Wait) — directly or
//	      through a call chain — while a mutex is held
//	L003  golden entry whose nesting no longer occurs anywhere — stale,
//	      regenerate with `make lint-update`
//
// Mutexes are identified structurally as pkg.Type.field (or pkg.var for
// package-level locks); local mutex variables are invisible to the order.
// The analysis is a linear walk per function with a held-set — `defer
// Unlock` pins the mutex to function end — plus a transitive closure over
// the in-scope call graph. Closure and `go` bodies run on other goroutines
// (or at unlock-protected call sites) and are excluded.
type LockOrder struct {
	goldenDir string
	scope     func(string) bool
}

// NewLockOrder returns the analyzer checking packages where scope returns
// true against goldenDir/lockorder.txt.
func NewLockOrder(goldenDir string, scope func(string) bool) *LockOrder {
	return &LockOrder{goldenDir: goldenDir, scope: scope}
}

func (*LockOrder) Name() string { return "lockorder" }

func (l *LockOrder) goldenPath() string { return filepath.Join(l.goldenDir, "lockorder.txt") }

// lockEdge is one nested acquisition: to locked while from is held.
type lockEdge struct{ from, to string }

func (e lockEdge) String() string { return e.from + " -> " + e.to }

// lockCall is a call made with locks held; lockBlock a blocking operation.
// Callees are identified by types.Func.FullName() — stable across the
// per-package type-checks, unlike object pointers.
type lockCall struct {
	callee string // FullName of the callee
	name   string // short display name
	held   []string
	pos    token.Pos
}

type lockBlock struct {
	what string
	held []string
	pos  token.Pos
}

// lockFact is the per-function summary the transitive passes consume.
type lockFact struct {
	acquires map[string]bool
	edges    map[lockEdge]token.Pos
	calls    []lockCall
	blocks   []lockBlock
}

type lockAnalysis struct {
	order []string // deterministic function order (FullName keys)
	facts map[string]*lockFact
	pkgs  map[string]*Package
	trans map[string]map[string]bool // transitive may-acquire sets
}

func (l *LockOrder) Run(pkgs []*Package) ([]Diagnostic, error) {
	an := l.analyze(pkgs)
	edges := an.observedEdges()
	var diags []Diagnostic

	// L002: blocking while held, directly or through a call chain.
	blocking := an.transBlocking()
	for _, fn := range an.order {
		fact := an.facts[fn]
		fset := an.pkgs[fn].Fset
		for _, b := range fact.blocks {
			if len(b.held) > 0 {
				diags = append(diags, Diagnostic{
					Analyzer: l.Name(), Code: "L002", Pos: fset.Position(b.pos),
					Message: fmt.Sprintf("%s while holding %s", b.what, strings.Join(b.held, ", ")),
				})
			}
		}
		for _, c := range fact.calls {
			if len(c.held) == 0 {
				continue
			}
			if desc := an.describeBlocking(blocking, c.callee, map[string]bool{}); desc != "" {
				diags = append(diags, Diagnostic{
					Analyzer: l.Name(), Code: "L002", Pos: fset.Position(c.pos),
					Message: fmt.Sprintf("call to %s blocks (%s) while holding %s", c.name, desc, strings.Join(c.held, ", ")),
				})
			}
		}
	}

	// Self-edges are deadlocks regardless of any golden.
	var plain []lockEdge
	for e := range edges {
		if e.from == e.to {
			diags = append(diags, Diagnostic{
				Analyzer: l.Name(), Code: "L001", Pos: edges[e].pos,
				Message: fmt.Sprintf("mutex %s re-acquired while already held — self-deadlock", e.from),
			})
			continue
		}
		plain = append(plain, e)
	}
	sort.Slice(plain, func(i, j int) bool { return plain[i].String() < plain[j].String() })

	golden, goldenLines, err := l.readGolden()
	if os.IsNotExist(err) {
		if len(plain) > 0 {
			diags = append(diags, Diagnostic{
				Analyzer: l.Name(), Code: "L003",
				Pos:     token.Position{Filename: l.goldenPath(), Line: 1, Column: 1},
				Message: fmt.Sprintf("missing lockorder golden %s; generate it with `make lint-update`", l.goldenPath()),
			})
		}
		return diags, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range plain {
		if golden[e] {
			continue
		}
		msg := fmt.Sprintf("undeclared lock-order edge %s; review the nesting and regenerate with `make lint-update`", e)
		if golden[lockEdge{from: e.to, to: e.from}] {
			msg = fmt.Sprintf("lock order inversion: %s acquired while holding %s, but the committed order is %s -> %s",
				e.to, e.from, e.to, e.from)
		}
		diags = append(diags, Diagnostic{
			Analyzer: l.Name(), Code: "L001", Pos: edges[e].pos, Message: msg,
		})
	}
	for _, ge := range goldenLines {
		if _, ok := edges[ge.edge]; ok && ge.edge.from != ge.edge.to {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: l.Name(), Code: "L003",
			Pos:     token.Position{Filename: l.goldenPath(), Line: ge.line, Column: 1},
			Message: fmt.Sprintf("stale lockorder golden entry %q: this nesting no longer occurs; regenerate with `make lint-update`", ge.edge),
		})
	}
	return diags, nil
}

// WriteGolden regenerates lint/lockorder.txt from the observed edges.
func (l *LockOrder) WriteGolden(pkgs []*Package) error {
	edges := l.analyze(pkgs).observedEdges()
	var lines []string
	for e := range edges {
		if e.from != e.to {
			lines = append(lines, e.String())
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# blitzlint lockorder golden: the committed global mutex acquisition\n")
	b.WriteString("# order. One `A -> B` line per allowed nested acquisition (B locked while\n")
	b.WriteString("# A is held). Regenerate with `make lint-update` after a reviewed change.\n")
	for _, ln := range lines {
		b.WriteString(ln + "\n")
	}
	if err := os.MkdirAll(l.goldenDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(l.goldenPath(), []byte(b.String()), 0o644)
}

type goldenEdge struct {
	edge lockEdge
	line int
}

func (l *LockOrder) readGolden() (map[lockEdge]bool, []goldenEdge, error) {
	data, err := os.ReadFile(l.goldenPath())
	if err != nil {
		return nil, nil, err
	}
	set := map[lockEdge]bool{}
	var lines []goldenEdge
	for i, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		from, to, ok := strings.Cut(ln, " -> ")
		if !ok {
			continue
		}
		e := lockEdge{from: strings.TrimSpace(from), to: strings.TrimSpace(to)}
		set[e] = true
		lines = append(lines, goldenEdge{edge: e, line: i + 1})
	}
	return set, lines, nil
}

// analyze walks every in-scope function once and computes the transitive
// may-acquire closure over the call graph.
func (l *LockOrder) analyze(pkgs []*Package) *lockAnalysis {
	an := &lockAnalysis{
		facts: map[string]*lockFact{},
		pkgs:  map[string]*Package{},
		trans: map[string]map[string]bool{},
	}
	for _, pkg := range pkgs {
		if !l.scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &lockWalker{pkg: pkg, fact: &lockFact{
					acquires: map[string]bool{},
					edges:    map[lockEdge]token.Pos{},
				}}
				w.stmt(fd.Body)
				key := fn.FullName()
				an.order = append(an.order, key)
				an.facts[key] = w.fact
				an.pkgs[key] = pkg
			}
		}
	}
	for fn, fact := range an.facts {
		set := map[string]bool{}
		for id := range fact.acquires {
			set[id] = true
		}
		an.trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, fact := range an.facts {
			for _, c := range fact.calls {
				for id := range an.trans[c.callee] {
					if !an.trans[fn][id] {
						an.trans[fn][id] = true
						changed = true
					}
				}
			}
		}
	}
	return an
}

// edgePos carries the first position an edge was observed at.
type edgePos struct{ pos token.Position }

// observedEdges merges direct edges with call-derived ones: a call made
// with H held reaches every mutex the callee may transitively acquire.
func (an *lockAnalysis) observedEdges() map[lockEdge]edgePos {
	edges := map[lockEdge]edgePos{}
	add := func(e lockEdge, p token.Position) {
		if _, ok := edges[e]; !ok {
			edges[e] = edgePos{pos: p}
		}
	}
	for _, fn := range an.order {
		fact := an.facts[fn]
		fset := an.pkgs[fn].Fset
		var keys []lockEdge
		for e := range fact.edges {
			keys = append(keys, e)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, e := range keys {
			add(e, fset.Position(fact.edges[e]))
		}
		for _, c := range fact.calls {
			if len(c.held) == 0 {
				continue
			}
			var tos []string
			for id := range an.trans[c.callee] {
				tos = append(tos, id)
			}
			sort.Strings(tos)
			for _, to := range tos {
				for _, h := range c.held {
					add(lockEdge{from: h, to: to}, fset.Position(c.pos))
				}
			}
		}
	}
	return edges
}

// transBlocking computes which functions may block, directly or via calls.
func (an *lockAnalysis) transBlocking() map[string]bool {
	blocking := map[string]bool{}
	for fn, fact := range an.facts {
		if len(fact.blocks) > 0 {
			blocking[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fact := range an.facts {
			if blocking[fn] {
				continue
			}
			for _, c := range fact.calls {
				if blocking[c.callee] {
					blocking[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return blocking
}

// describeBlocking renders the blocking chain rooted at fn ("" if fn cannot
// block). Deterministic: first direct block, else the first call in body
// order whose callee blocks.
func (an *lockAnalysis) describeBlocking(blocking map[string]bool, fn string, seen map[string]bool) string {
	if !blocking[fn] || seen[fn] {
		return ""
	}
	seen[fn] = true
	fact := an.facts[fn]
	if fact == nil {
		return ""
	}
	if len(fact.blocks) > 0 {
		return fact.blocks[0].what
	}
	for _, c := range fact.calls {
		if d := an.describeBlocking(blocking, c.callee, seen); d != "" {
			return c.name + ": " + d
		}
	}
	return ""
}

// lockWalker does the linear per-function walk with a held-set. The walk is
// flow-insensitive across branches (a lock taken in an if-arm is considered
// held afterwards) — the tree keeps lock/unlock pairs straight-line, and
// over-approximating held-ness only adds edges, never hides one.
type lockWalker struct {
	pkg  *Package
	fact *lockFact
	held []string
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			w.stmt(t)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.block("blocking channel send", s.Arrow)
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferStmt(s)
	case *ast.GoStmt:
		// Spawned body runs on another goroutine with its own held-set.
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		if t := exprType(w.pkg, s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.block("blocking range over channel", s.For)
			}
		}
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		// A select with a default never blocks; without one it parks the
		// goroutine until a case is ready.
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			for _, t := range cc.Body {
				w.stmt(t)
			}
		}
		if !hasDefault {
			w.block("select without default", s.Select)
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, cl := range s.Body.List {
			for _, t := range cl.(*ast.CaseClause).Body {
				w.stmt(t)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, cl := range s.Body.List {
			for _, t := range cl.(*ast.CaseClause).Body {
				w.stmt(t)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// expr scans an expression for calls and channel receives, skipping
// closures.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block("blocking channel receive", n.OpPos)
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// deferStmt: a deferred Unlock pins the mutex to function end (held-set
// untouched so later acquisitions still order after it); every other defer
// runs at an unknown point during unwinding and is skipped.
func (w *lockWalker) deferStmt(s *ast.DeferStmt) {
	if id, method, ok := w.mutexOp(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
		_ = id
		return
	}
}

func (w *lockWalker) call(c *ast.CallExpr) {
	if id, method, ok := w.mutexOp(c); ok {
		switch method {
		case "Lock", "RLock":
			w.acquire(id, c.Pos())
		case "Unlock", "RUnlock":
			w.release(id)
		}
		return
	}
	fn := calleeFunc(w.pkg, c)
	switch {
	case fn == nil:
	case funcIs(fn, "time", "Sleep"):
		w.block("time.Sleep", c.Pos())
	case isHTTPDo(fn):
		w.block("(*http.Client).Do", c.Pos())
	case isWaitGroupWait(fn):
		w.block("sync.WaitGroup.Wait", c.Pos())
	default:
		w.fact.calls = append(w.fact.calls, lockCall{
			callee: fn.FullName(), name: fn.Name(),
			held: append([]string(nil), w.held...), pos: c.Pos(),
		})
	}
}

// mutexOp resolves c as a Lock/Unlock/RLock/RUnlock call on a structurally
// identifiable sync.Mutex/RWMutex. The identity "" means a mutex we cannot
// name (a local variable) — those are ignored.
func (w *lockWalker) mutexOp(c *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := deref(exprType(w.pkg, sel.X))
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return "", "", false
	}
	return mutexIdentity(w.pkg, sel.X), sel.Sel.Name, true
}

// mutexIdentity names a mutex expression structurally: owner-type field
// access becomes pkg.Type.field, a package-level var becomes pkg.var.
func mutexIdentity(pkg *Package, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		owner, ok := deref(exprType(pkg, x.X)).(*types.Named)
		if !ok || owner.Obj().Pkg() == nil {
			return ""
		}
		return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + x.Sel.Name
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return ""
		}
		return obj.Pkg().Name() + "." + x.Name
	}
	return ""
}

func (w *lockWalker) acquire(id string, pos token.Pos) {
	if id == "" {
		return
	}
	for _, h := range w.held {
		e := lockEdge{from: h, to: id}
		if _, ok := w.fact.edges[e]; !ok {
			w.fact.edges[e] = pos
		}
	}
	w.fact.acquires[id] = true
	w.held = append(w.held, id)
}

func (w *lockWalker) release(id string) {
	if id == "" {
		return
	}
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == id {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *lockWalker) block(what string, pos token.Pos) {
	w.fact.blocks = append(w.fact.blocks, lockBlock{
		what: what, held: append([]string(nil), w.held...), pos: pos,
	})
}
