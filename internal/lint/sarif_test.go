package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF pins the SARIF 2.1.0 shape GitHub code scanning consumes:
// one run, a rules catalog covering every reported code, error-level
// results for active diagnostics, and in-source suppression records for
// allowed ones.
func TestWriteSARIF(t *testing.T) {
	res := &Result{
		Active: []Diagnostic{
			{Analyzer: "goroleak", Code: "G001", Pos: position("/mod/internal/server/server.go", 12, 3), Message: "leaky goroutine"},
			{Analyzer: "lockorder", Code: "L001", Pos: position("/mod/internal/cluster/cluster.go", 40, 2), Message: "inverted order"},
		},
		Suppressed: []Diagnostic{
			{Analyzer: "errdrop", Code: "R001", Pos: position("/mod/internal/server/server.go", 99, 2), Message: "dropped encode"},
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", res); err != nil {
		t.Fatalf("write sarif: %v", err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string `json:"ruleId"`
				Level        string `json:"level"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "blitzlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	gotRules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		gotRules[r.ID] = true
	}
	for _, want := range []string{"G001", "L001", "R001"} {
		if !gotRules[want] {
			t.Errorf("rules catalog missing %s", want)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3 (2 active + 1 suppressed)", len(run.Results))
	}
	for _, r := range run.Results[:2] {
		if r.Level != "error" || len(r.Suppressions) != 0 {
			t.Errorf("active result %s: level %q suppressions %d", r.RuleID, r.Level, len(r.Suppressions))
		}
	}
	sup := run.Results[2]
	if sup.RuleID != "R001" || len(sup.Suppressions) != 1 || sup.Suppressions[0].Kind != "inSource" {
		t.Errorf("suppressed result mis-rendered: %+v", sup)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/server/server.go" || loc.Region.StartLine != 12 {
		t.Errorf("location = %q:%d, want module-relative internal/server/server.go:12",
			loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
	if strings.Contains(buf.String(), "/mod/") {
		t.Error("absolute module paths leaked into the SARIF output")
	}
}
