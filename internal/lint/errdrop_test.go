package lint

import (
	"strings"
	"testing"
)

// TestErrDropFixture pins R001: discarded close/flush/write-path errors,
// the `_ =` escape hatch, and the read-side defer-Close exemption.
func TestErrDropFixture(t *testing.T) {
	pkg := loadFixture(t, "errdrop")
	res := runAnalyzer(t, NewErrDrop(func(string) bool { return true }), pkg)
	checkGolden(t, "errdrop", formatDiags(res.Active))

	if len(res.Suppressed) != 1 || res.Suppressed[0].Code != "R001" {
		t.Errorf("suppressed = %v, want exactly one R001", formatDiags(res.Suppressed))
	}
}

// TestErrDropCustomNames pins that the watched-name set is configurable
// for multi-result calls: the default set leaves io.Writer.Write (two
// results) alone, while watching "Write" flags it. Sole-error drops are
// flagged under any name set.
func TestErrDropCustomNames(t *testing.T) {
	pkg := loadFixture(t, "errdrop")
	ds, err := NewErrDrop(func(string) bool { return true }, "Write").Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	var write, soleError int
	for _, d := range ds {
		if strings.HasPrefix(d.Message, "Write") {
			write++
		}
		if strings.HasPrefix(d.Message, "emit") {
			soleError++
		}
	}
	if write != 1 {
		t.Errorf("Write drops flagged = %d, want 1 when Write is watched", write)
	}
	if soleError != 1 {
		t.Errorf("sole-error drops flagged = %d, want 1 regardless of the name set", soleError)
	}
}
