package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenFromV1 regenerates the apilock golden from the frozen v1 fixture
// into a temp dir, returning the golden dir.
func goldenFromV1(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	v1 := loadFixture(t, "apilock_v1")
	if err := NewAPILock(v1.Path, dir).WriteGolden([]*Package{v1}); err != nil {
		t.Fatalf("write golden: %v", err)
	}
	return dir
}

func apilockCodes(t *testing.T, fixture, goldenDir string) []string {
	t.Helper()
	pkg := loadFixture(t, fixture)
	res := runAnalyzer(t, NewAPILock(pkg.Path, goldenDir), pkg)
	codes := make([]string, len(res.Active))
	for i, d := range res.Active {
		codes[i] = d.Code
	}
	return codes
}

func TestAPILockCleanSurface(t *testing.T) {
	dir := goldenFromV1(t)
	if codes := apilockCodes(t, "apilock_v1", dir); len(codes) != 0 {
		t.Errorf("unchanged surface reported %v", codes)
	}
}

func TestAPILockDriftWithoutBump(t *testing.T) {
	dir := goldenFromV1(t)
	codes := apilockCodes(t, "apilock_drift", dir)
	if len(codes) != 1 || codes[0] != "A001" {
		t.Fatalf("drift without bump reported %v, want [A001]", codes)
	}
	// The diagnostic must name what changed.
	pkg := loadFixture(t, "apilock_drift")
	res := runAnalyzer(t, NewAPILock(pkg.Path, dir), pkg)
	msg := res.Active[0].Message
	for _, want := range []string{"Goodbye", "Hello"} {
		if !strings.Contains(msg, want) {
			t.Errorf("A001 message does not name changed symbol %s:\n%s", want, msg)
		}
	}
}

func TestAPILockBumpWantsRegen(t *testing.T) {
	dir := goldenFromV1(t)
	codes := apilockCodes(t, "apilock_bump", dir)
	if len(codes) != 1 || codes[0] != "A002" {
		t.Fatalf("bumped engine with stale golden reported %v, want [A002]", codes)
	}
}

func TestAPILockMissingGolden(t *testing.T) {
	codes := apilockCodes(t, "apilock_v1", t.TempDir())
	if len(codes) != 1 || codes[0] != "A002" {
		t.Fatalf("missing golden reported %v, want [A002]", codes)
	}
}

// TestAPILockRegenAfterBump verifies the escape hatch: after a deliberate
// change plus lint-update, the analyzer is satisfied again.
func TestAPILockRegenAfterBump(t *testing.T) {
	dir := goldenFromV1(t)
	bump := loadFixture(t, "apilock_bump")
	a := NewAPILock(bump.Path, dir)
	if err := a.WriteGolden([]*Package{bump}); err != nil {
		t.Fatalf("regen golden: %v", err)
	}
	res := runAnalyzer(t, a, bump)
	if len(res.Active) != 0 {
		t.Errorf("regenerated golden still reports %v", formatDiags(res.Active))
	}
}

// TestSurfaceRendering pins the canonical form: sorted names, exported
// fields with tags, unexported names invisible.
func TestSurfaceRendering(t *testing.T) {
	v1 := loadFixture(t, "apilock_v1")
	s := Surface(v1)
	want := `const EngineVersion untyped string = "1"
func Hello(name string) string
type Point struct
	field X int ` + "`json:\"x\"`" + `
	field Y int ` + "`json:\"y\"`" + `
	method (Point) Norm1() int
`
	if s != want {
		t.Errorf("surface mismatch:\n got:\n%s\nwant:\n%s", s, want)
	}
	if strings.Contains(s, "abs") || strings.Contains(s, " z ") {
		t.Error("unexported names leaked into the surface")
	}
}

// TestGoldenParsing round-trips the header format.
func TestGoldenParsing(t *testing.T) {
	dir := goldenFromV1(t)
	data, err := os.ReadFile(filepath.Join(dir, "api_v1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	engine, body := parseAPIGolden(string(data))
	if engine != "1" {
		t.Errorf("parsed engine %q, want 1", engine)
	}
	if !strings.HasPrefix(body, "const EngineVersion") {
		t.Errorf("parsed body starts %q", body[:min(40, len(body))])
	}
}
