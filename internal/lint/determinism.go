package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism forbids the three ways a simulation package silently breaks
// byte-identical sweep rows:
//
//	D001  reading the wall clock (time.Now, time.Since, and friends) — a
//	      simulation's only clock is the kernel's cycle counter
//	D002  drawing from math/rand's process-global generator — components
//	      take an explicit *rng.Source derived from the experiment seed
//	D003  ranging over a map while feeding an order-sensitive sink (append
//	      to a slice, slice element writes, printing/encoding) — Go's map
//	      iteration order is deliberately randomized, so anything ordered
//	      that it produces differs run to run
//
// Two idioms are recognized as order-insensitive and not flagged:
// per-key accumulation (`byKey[k] = append(byKey[k], v)`), and
// collect-then-sort, where the appended-to slice is canonicalized by a
// sort.*/slices.Sort* call after the range statement ends.
type Determinism struct {
	scope func(pkgPath string) bool
}

// NewDeterminism returns the analyzer restricted to packages for which
// scope returns true (production: the simulation packages, with the server
// and CLIs allowlisted for wall-clock use).
func NewDeterminism(scope func(string) bool) *Determinism {
	return &Determinism{scope: scope}
}

func (*Determinism) Name() string { return "determinism" }

// wallClockFuncs are the package time functions that read the wall clock or
// schedule against it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global generator. Explicitly constructed
// generators (rand.New, rand.NewSource) are not globals and are left to the
// seedflow analyzer.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func (a *Determinism) Run(pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if a.scope != nil && !a.scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			sorted := collectSortCalls(pkg, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if d, ok := a.checkSelector(pkg, n); ok {
						out = append(out, d)
					}
				case *ast.RangeStmt:
					out = append(out, a.checkMapRange(pkg, n, sorted)...)
				}
				return true
			})
		}
	}
	return out, nil
}

// pkgOf resolves a selector base to an imported package path, or "".
func pkgOf(pkg *Package, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

func (a *Determinism) checkSelector(pkg *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	switch pkgOf(pkg, sel.X) {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			return Diagnostic{
				Analyzer: a.Name(), Code: "D001",
				Pos:     pkg.Fset.Position(sel.Pos()),
				Message: "wall-clock call time." + sel.Sel.Name + " in simulation package " + pkg.Path + "; use the kernel cycle counter",
			}, true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			return Diagnostic{
				Analyzer: a.Name(), Code: "D002",
				Pos:     pkg.Fset.Position(sel.Pos()),
				Message: "global math/rand call rand." + sel.Sel.Name + "; derive a *rng.Source from the experiment seed instead",
			}, true
		}
	}
	return Diagnostic{}, false
}

// sortCall records a slice variable passed to a canonicalizing sort.
type sortCall struct {
	obj types.Object
	pos token.Pos
}

// collectSortCalls finds sort.Strings/Ints/Float64s/Slice/SliceStable/Sort
// and slices.Sort* calls whose first argument is a plain variable; an append
// into that variable inside an earlier map range is order-insensitive
// because the sort canonicalizes it.
func collectSortCalls(pkg *Package, f *ast.File) []sortCall {
	var calls []sortCall
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgOf(pkg, sel.X) {
		case "sort":
			switch sel.Sel.Name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			if !strings.HasPrefix(sel.Sel.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				calls = append(calls, sortCall{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	return calls
}

// sortedAfter reports whether obj is sort-canonicalized after pos.
func sortedAfter(sorted []sortCall, obj types.Object, pos token.Pos) bool {
	for _, s := range sorted {
		if s.obj == obj && s.pos > pos {
			return true
		}
	}
	return false
}

// checkMapRange flags order-sensitive sinks inside a range over a map.
func (a *Determinism) checkMapRange(pkg *Package, rng *ast.RangeStmt, sorted []sortCall) []Diagnostic {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Diagnostic
	report := func(n ast.Node, what string) {
		out = append(out, Diagnostic{
			Analyzer: a.Name(), Code: "D003",
			Pos:     pkg.Fset.Position(n.Pos()),
			Message: what + " inside a map range: iteration order is randomized, so ordered output differs run to run",
		})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && a.isSliceWrite(pkg, ix) {
					report(lhs, "slice element write")
					continue
				}
				// append() feeding anything but a per-key map slot is
				// ordered by iteration — unless a later sort
				// canonicalizes the slice.
				if i < len(n.Rhs) && isAppendCall(pkg, n.Rhs[i]) && !isMapIndex(pkg, lhs) {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil && sortedAfter(sorted, obj, rng.End()) {
							continue
						}
					}
					report(n.Rhs[i], "append")
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := orderedSinkCall(pkg, call); ok {
					report(call, name+" call")
				}
			}
			return true
		}
		return true
	})
	return out
}

func (a *Determinism) isSliceWrite(pkg *Package, ix *ast.IndexExpr) bool {
	tv, ok := pkg.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

func isAppendCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isMapIndex(pkg *Package, e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pkg.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderedSinkCall recognizes calls that emit ordered output: the fmt print
// family and Write*/Encode* methods (encoders, builders, buffers, writers).
func orderedSinkCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkgOf(pkg, sel.X) == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	// Method calls on some receiver value.
	if pkg.Info.Selections[sel] == nil {
		return "", false
	}
	if name == "Encode" || name == "Write" || name == "WriteString" ||
		name == "WriteByte" || name == "WriteRune" {
		return "." + name, true
	}
	return "", false
}
