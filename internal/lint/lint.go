// Package lint is blitzlint: a domain-aware static-analysis suite that
// mechanically enforces the repo's hard-won invariants — byte-identical
// sweep rows at any parallelism, a de-allocated exchange hot path, a frozen
// versioned v1 API surface, and leak/deadlock-free concurrency in the
// long-running daemon and cluster packages — at compile time, before
// `make verify` ever runs a simulation.
//
// The suite is stdlib-only (go/ast, go/parser, go/types; packages are loaded
// through `go list -export` and the gc export-data importer) and ships nine
// analyzers:
//
//	determinism   D001-D003  wall-clock, global math/rand, and order-dependent
//	                         map iteration in the simulation packages
//	seedflow      S001-S002  sweep.Map trial closures must derive RNG from
//	                         internal/rng seeded by the trial index
//	hotpathalloc  H001-H002  new heap escapes in the exchange path, diffed
//	                         against the lint/escape_allow.txt golden
//	encapsulation E001       direct writes to coin-budget fields outside
//	                         internal/coin (protects Result.Conserved())
//	apilock       A001-A002  exported-surface drift of the root package
//	                         against lint/api_v1.txt without an EngineVersion
//	                         bump
//	goroleak      G001-G002  goroutines with no cancellation path; tickers
//	                         and timers that can never be stopped
//	ctxflow       C001-C002  uninterruptible blocking in context-aware
//	                         functions; context.Background() minted below
//	                         the entry points
//	lockorder     L001-L003  mutex nesting diffed against the committed
//	                         lint/lockorder.txt order; blocking while held
//	errdrop       R001       discarded errors on close/flush/append paths
//
// Findings can additionally be rendered as a SARIF 2.1.0 log (WriteSARIF)
// for CI code scanning, with in-source suppressions preserved.
//
// A diagnostic is suppressed by an explicit directive on the offending line
// or the line immediately above:
//
//	//blitzlint:allow D001 reason the server intentionally reports wall time
//
// Suppressed diagnostics are still counted and surfaced in the run summary,
// and an allow directive that matches no diagnostic is itself reported as
// stale (X001) so dead suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer, a stable machine-readable code, a
// position, and a human-readable message.
type Diagnostic struct {
	Analyzer string
	Code     string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form every
// tool (editor, CI annotation, grep) understands.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message, d.Analyzer)
}

// Analyzer is one domain check. Run inspects the loaded packages and returns
// raw diagnostics; the Runner applies allow directives afterwards.
type Analyzer interface {
	Name() string
	Run(pkgs []*Package) ([]Diagnostic, error)
}

// Result is the outcome of a Runner pass: the diagnostics that remain after
// suppression, the ones an allow directive silenced (still counted), and any
// stale directives (reported in Active as X001).
type Result struct {
	Active     []Diagnostic
	Suppressed []Diagnostic
}

// Failed reports whether the run should fail the build.
func (r *Result) Failed() bool { return len(r.Active) > 0 }

// Summary is the one-line account of the run, including the suppressed
// count so silenced findings stay visible.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blitzlint: %d diagnostic(s), %d suppressed", len(r.Active), len(r.Suppressed))
	if len(r.Suppressed) > 0 {
		counts := map[string]int{}
		for _, d := range r.Suppressed {
			counts[d.Code]++
		}
		codes := make([]string, 0, len(counts))
		for c := range counts {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		parts := make([]string, len(codes))
		for i, c := range codes {
			parts[i] = fmt.Sprintf("%s x%d", c, counts[c])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	return b.String()
}

// Run executes every analyzer over pkgs, applies the //blitzlint:allow
// directives collected from the package sources, and reports stale
// directives. Diagnostics are returned sorted by position then code.
func Run(analyzers []Analyzer, pkgs []*Package) (*Result, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		ds, err := a.Run(pkgs)
		if err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name(), err)
		}
		raw = append(raw, ds...)
	}
	dirs := collectDirectives(pkgs)
	res := applyDirectives(raw, dirs)
	sortDiagnostics(res.Active)
	sortDiagnostics(res.Suppressed)
	return res, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
}
