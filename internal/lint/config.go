package lint

import "strings"

// Production scope for the blitzcoin module: which packages each analyzer
// patrols. Fixture tests construct analyzers with their own scopes, so none
// of this is hard-wired into the analyzers themselves.

// simPackages are the simulation packages where determinism is an invariant:
// a stray wall-clock read or global-rand draw here silently breaks
// byte-identical sweep rows.
var simPackages = []string{
	"blitzcoin",
	"blitzcoin/internal/coin",
	"blitzcoin/internal/sim",
	"blitzcoin/internal/noc",
	"blitzcoin/internal/soc",
	"blitzcoin/internal/mesh",
	"blitzcoin/internal/workload",
	"blitzcoin/internal/experiments",
	"blitzcoin/internal/sweep",
	"blitzcoin/internal/stats",
	"blitzcoin/internal/fault",
	"blitzcoin/internal/rng",
	"blitzcoin/internal/power",
	"blitzcoin/internal/scaling",
	"blitzcoin/internal/trace",
	"blitzcoin/internal/uvfr",
	"blitzcoin/internal/core",
	"blitzcoin/internal/controller",
	"blitzcoin/internal/cpuproxy",
}

// wallClockAllowed are the packages that legitimately observe wall time:
// the serving layer (request latency metrics) and the CLIs (progress
// reporting). Everything under cmd/ is allowed by prefix.
var wallClockAllowed = []string{
	"blitzcoin/internal/server",
	"blitzcoin/cmd/",
}

// hotPathPackages form the exchange hot path de-allocated in PR 2; a new
// heap escape here regresses allocs/op long before benchcheck notices.
var hotPathPackages = []string{
	"./internal/coin",
	"./internal/noc",
	"./internal/sim",
}

// coinBudgetFields are the coin.Result fields that together encode pool
// conservation; writing them outside internal/coin forges the
// Conserved() verdict.
var coinBudgetFields = []string{
	"CoinsStart", "CoinsEnd", "PoolViolation", "CoinsMinted", "CoinsBurned",
}

// concurrencyPackages are the goroutine- and lock-heavy serving-layer
// packages the wave-2 analyzers (goroleak G00x, ctxflow C001, errdrop via
// errDropPackages) patrol: the work-stealing cluster, the daemon, the trace
// bus, the results ledger, and the parallel sweep driver. cmd/ stays out —
// entry points legitimately own detached lifetimes.
var concurrencyPackages = []string{
	"blitzcoin/internal/cluster",
	"blitzcoin/internal/server",
	"blitzcoin/internal/trace",
	"blitzcoin/internal/ledger",
	"blitzcoin/internal/sweep",
	"blitzcoin/internal/tenant",
	"blitzcoin/internal/store",
}

// ctxMintPackages are the packages where minting a fresh root context
// (C002) is forbidden: everything here is reached from an entry point that
// already owns a context, so a Background() below it detaches work from
// shutdown.
var ctxMintPackages = []string{
	"blitzcoin/internal/cluster",
	"blitzcoin/internal/server",
	"blitzcoin/internal/trace",
	"blitzcoin/internal/tenant",
	"blitzcoin/internal/store",
}

// lockOrderPackages are the packages whose named mutexes participate in the
// committed global acquisition order (lint/lockorder.txt): the scheduler/
// coordinator/registry locks, the trace bus they publish into, and the
// tenancy admission/quota locks.
var lockOrderPackages = []string{
	"blitzcoin/internal/cluster",
	"blitzcoin/internal/trace",
	"blitzcoin/internal/tenant",
	"blitzcoin/internal/store",
}

// errDropPackages are the packages where a silently dropped Close/Flush/
// Encode/Append error loses data a client already believes durable.
var errDropPackages = []string{
	"blitzcoin/internal/cluster",
	"blitzcoin/internal/server",
	"blitzcoin/internal/ledger",
	"blitzcoin/internal/trace",
	"blitzcoin/internal/tenant",
	"blitzcoin/internal/store",
}

// inList returns a scope predicate matching exactly the listed paths.
func inList(paths []string) func(string) bool {
	return func(p string) bool {
		for _, q := range paths {
			if p == q {
				return true
			}
		}
		return false
	}
}

// ConcurrencyScope reports whether path is patrolled by the goroleak and
// ctxflow analyzers under the production configuration.
func ConcurrencyScope(path string) bool { return inList(concurrencyPackages)(path) }

// SimScope reports whether path is a simulation package subject to the
// determinism analyzer under the production configuration.
func SimScope(path string) bool {
	for _, allow := range wallClockAllowed {
		if path == allow || strings.HasPrefix(path, allow) {
			return false
		}
	}
	for _, p := range simPackages {
		if path == p {
			return true
		}
	}
	return false
}

// DefaultAnalyzers returns the production analyzer set for the module
// rooted at moduleDir. goldenDir is where the apilock and hotpathalloc
// goldens live (conventionally <moduleDir>/lint).
func DefaultAnalyzers(moduleDir, goldenDir string) []Analyzer {
	return []Analyzer{
		NewDeterminism(SimScope),
		NewSeedflow(),
		NewHotPathAlloc(moduleDir, goldenDir, hotPathPackages),
		NewEncapsulation("blitzcoin/internal/coin", "Result", coinBudgetFields),
		NewAPILock("blitzcoin", goldenDir),
		NewGoroleak(ConcurrencyScope),
		NewCtxflow(ConcurrencyScope, inList(ctxMintPackages)),
		NewLockOrder(goldenDir, inList(lockOrderPackages)),
		NewErrDrop(inList(errDropPackages)),
	}
}
