package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrDrop flags silently discarded errors on the resource and write paths:
// a dropped Close on the ledger file loses the fsync verdict, a dropped
// Encode means a truncated HTTP response nobody noticed.
//
//	R001  call statement discarding an error result from a flush/close/
//	      write-path function: either the callee's name is in the watched
//	      set (Close, Flush, Sync, Encode, Append) or its only result is an
//	      error (e.g. an SSE write helper)
//
// `_ = x.Close()` is the deliberate-discard escape hatch and is never
// flagged; `defer rc.Close()` on an io.ReadCloser is idiomatic read-side
// cleanup and is also exempt. Everything else wants handling, `_ =`, or a
// //blitzlint:allow R001 with a reason.
type ErrDrop struct {
	scope func(string) bool
	names map[string]bool
}

// errDropNames is the default watched-name set: close/flush/sync resource
// releases plus the ledger and HTTP write paths.
var errDropNames = []string{"Close", "Flush", "Sync", "Encode", "Append"}

// NewErrDrop returns the analyzer limited to packages where scope returns
// true, watching names (defaults to errDropNames when empty).
func NewErrDrop(scope func(string) bool, names ...string) *ErrDrop {
	if len(names) == 0 {
		names = errDropNames
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return &ErrDrop{scope: scope, names: set}
}

func (*ErrDrop) Name() string { return "errdrop" }

func (e *ErrDrop) Run(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !e.scope(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						if d, ok := e.check(pkg, call, false); ok {
							diags = append(diags, d)
						}
					}
				case *ast.DeferStmt:
					if d, ok := e.check(pkg, n.Call, true); ok {
						diags = append(diags, d)
					}
				}
				return true
			})
		}
	}
	return diags, nil
}

// check judges one statement-position call whose results are all discarded.
func (e *ErrDrop) check(pkg *Package, call *ast.CallExpr, deferred bool) (Diagnostic, bool) {
	sig, ok := exprType(pkg, call.Fun).(*types.Signature)
	if !ok {
		return Diagnostic{}, false // builtin, conversion, or unresolved
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return Diagnostic{}, false
	}
	name := ""
	if fn := calleeFunc(pkg, call); fn != nil {
		name = fn.Name()
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	}
	if !e.names[name] && res.Len() != 1 {
		return Diagnostic{}, false
	}
	if deferred && name == "Close" && readSideClose(pkg, call) {
		return Diagnostic{}, false
	}
	what := name
	if what == "" {
		what = "call"
	}
	return Diagnostic{
		Analyzer: e.Name(), Code: "R001", Pos: pkg.Fset.Position(call.Pos()),
		Message: fmt.Sprintf("%s error discarded; handle it, discard explicitly with `_ =`, or add an allow directive", what),
	}, true
}

// readSideClose reports whether call is a Close on a value statically typed
// io.ReadCloser — the `defer resp.Body.Close()` idiom, where the read path
// already surfaced any transport error.
func readSideClose(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isNamedType(deref(exprType(pkg, sel.X)), "io", "ReadCloser")
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
