package lint

import (
	"fmt"
	"testing"
)

// TestGoroleakFixture pins G001/G002 behavior and the allow-directive
// interaction for the new codes: a justified allow suppresses (but is
// counted), a reason-less one is X002, and a stale one is X001.
func TestGoroleakFixture(t *testing.T) {
	pkg := loadFixture(t, "goroleak")
	res := runAnalyzer(t, NewGoroleak(func(string) bool { return true }), pkg)
	checkGolden(t, "goroleak", formatDiags(res.Active))

	if len(res.Suppressed) != 1 || res.Suppressed[0].Code != "G001" {
		t.Errorf("suppressed = %v, want exactly one G001", formatDiags(res.Suppressed))
	}
	want := fmt.Sprintf("blitzlint: %d diagnostic(s), 1 suppressed (G001 x1)", len(res.Active))
	if got := res.Summary(); got != want {
		t.Errorf("summary = %q: suppressed finding must stay visible in the count", got)
	}
}

// TestGoroleakOutOfScope pins that the scope predicate gates the analyzer.
func TestGoroleakOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "goroleak")
	a := NewGoroleak(func(string) bool { return false })
	ds, err := a.Run([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics", len(ds))
	}
}
