package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProofRoundTrip: every proof generated for every leaf of trees of
// size 1..33 verifies against the root — the property check behind the
// path-generation/verification pair.
func TestProofRoundTrip(t *testing.T) {
	l, err := Open("", 4)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 33; n++ {
		key := fmt.Sprintf("hash-%04d", n)
		seq, root, err := l.Append(key, "6", fmt.Sprintf("sha-%04d", n))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(n) {
			t.Fatalf("append %d: seq %d", n, seq)
		}
		if root == "" {
			t.Fatalf("append %d: empty root", n)
		}
		// Every entry so far must still prove against the new head.
		for m := 1; m <= n; m++ {
			p, err := l.Proof(fmt.Sprintf("hash-%04d", m), "6")
			if err != nil {
				t.Fatalf("proof %d/%d: %v", m, n, err)
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("verify %d of %d: %v", m, n, err)
			}
			if p.Root != root {
				t.Fatalf("proof %d/%d: root %s, head %s", m, n, p.Root, root)
			}
		}
	}
}

// TestProofTamperDetection: altering any field of a valid proof breaks
// verification.
func TestProofTamperDetection(t *testing.T) {
	l, _ := Open("", 0)
	for i := 1; i <= 10; i++ {
		if _, _, err := l.Append(fmt.Sprintf("h%d", i), "6", fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := l.Proof("h4", "6")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}

	mutations := map[string]func(Proof) Proof{
		"result sha": func(p Proof) Proof { p.ResultSHA = "forged"; return p },
		"key":        func(p Proof) Proof { p.Key = "other"; return p },
		"engine":     func(p Proof) Proof { p.Engine = "5"; return p },
		"seq":        func(p Proof) Proof { p.Seq = 5; return p },
		"tree size":  func(p Proof) Proof { p.TreeSize = 4; return p },
		"root":       func(p Proof) Proof { p.Root = strings.Repeat("ab", 32); return p },
		"path":       func(p Proof) Proof { p.Path = p.Path[:len(p.Path)-1]; return p },
	}
	for name, mut := range mutations {
		if err := mut(p).Verify(); err == nil {
			t.Errorf("tampered %s verified", name)
		}
	}
}

// TestLedgerReopenReplays: entries and seals survive a close/reopen, and
// proofs keep verifying.
func TestLedgerReopenReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if _, _, err := l.Append(fmt.Sprintf("h%d", i), "6", fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, rootBefore := l.Root()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, 3)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if n := l2.Size(); n != 7 {
		t.Fatalf("reopened size %d", n)
	}
	if _, root := l2.Root(); root != rootBefore {
		t.Fatalf("root drifted across reopen: %s vs %s", root, rootBefore)
	}
	p, err := l2.Proof("h2", "6")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("reopened proof: %v", err)
	}
}

// TestLedgerFileTamperDetected: editing a sealed entry in place makes the
// next Open fail seal verification.
func TestLedgerFileTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, _, err := l.Append(fmt.Sprintf("h%d", i), "6", fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"result_sha":"s2"`, `"result_sha":"sX"`, 1)
	if tampered == string(raw) {
		t.Fatal("test did not find the entry to tamper")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 2); err == nil || !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("tampered ledger opened: err=%v", err)
	}
}

// TestAppendDeduplicatesIdenticalResult: re-appending the same
// (key, engine, sha) returns the original sequence without growing the
// tree; a different sha for the same key appends a new entry that
// supersedes the old one for proofs.
func TestAppendDeduplicatesIdenticalResult(t *testing.T) {
	l, _ := Open("", 0)
	seq1, _, err := l.Append("h", "6", "s")
	if err != nil {
		t.Fatal(err)
	}
	seq2, _, err := l.Append("h", "6", "s")
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != seq2 || l.Size() != 1 {
		t.Fatalf("duplicate append: seqs %d/%d, size %d", seq1, seq2, l.Size())
	}
	seq3, _, err := l.Append("h", "6", "different")
	if err != nil {
		t.Fatal(err)
	}
	if seq3 != 2 || l.Size() != 2 {
		t.Fatalf("superseding append: seq %d, size %d", seq3, l.Size())
	}
	p, err := l.Proof("h", "6")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq != seq3 || p.ResultSHA != "different" {
		t.Fatalf("proof serves stale entry: %+v", p)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}
