package ledger

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// DefaultBatch is the default seal cadence: a seal record (size + tree
// head) is written after every DefaultBatch appends, and on Close.
const DefaultBatch = 8

// Entry is one appended result: which options (by canonical hash), which
// engine, and the SHA-256 of the canonical result JSON it produced.
type Entry struct {
	// Seq is the 1-based append position; the Merkle leaf index is Seq-1.
	Seq uint64 `json:"seq"`
	// Key is the canonical options hash of the request.
	Key string `json:"key"`
	// Engine is the EngineVersion that computed the result.
	Engine string `json:"engine"`
	// ResultSHA is the hex SHA-256 of the result's canonical JSON (ledger
	// provenance fields cleared; see blitzcoin.CanonicalResultSHA).
	ResultSHA string `json:"result_sha"`
}

// leafData is the entry's canonical leaf encoding. Newlines are safe
// separators: keys and hashes are hex, engine versions never contain one.
func (e Entry) leafData() []byte {
	return []byte(e.Key + "\n" + e.Engine + "\n" + e.ResultSHA)
}

// record is one JSONL line of the ledger file: an entry or a seal.
type record struct {
	Entry *Entry `json:"entry,omitempty"`
	Seal  *seal  `json:"seal,omitempty"`
}

// seal checkpoints the tree: the head over the first Size leaves. Replay
// on Open recomputes and compares every seal, so any in-place edit of a
// sealed entry (or of a seal itself) is detected as tampering.
type seal struct {
	Size uint64 `json:"size"`
	Root string `json:"root"`
}

// Ledger is the append-only results ledger. Open one per daemon; all
// methods are safe for concurrent use.
type Ledger struct {
	mu     sync.Mutex
	f      *os.File // nil for an in-memory ledger
	batch  int
	leaves [][hashSize]byte
	// entries is dense by leaf index (entries[i].Seq == i+1).
	entries []Entry
	// latest maps key+"\x00"+engine to the newest leaf index for it.
	latest   map[string]int
	unsealed int
}

// Open opens (or creates) the ledger at path, replaying and verifying the
// existing records. An empty path opens an in-memory ledger — same
// semantics, nothing persisted. batch <= 0 selects DefaultBatch.
func Open(path string, batch int) (*Ledger, error) {
	if batch <= 0 {
		batch = DefaultBatch
	}
	l := &Ledger{batch: batch, latest: make(map[string]int)}
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := l.replay(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	l.f = f
	return l, nil
}

// replay rebuilds the tree from the file and verifies every seal.
func (l *Ledger) replay(f *os.File) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("ledger: line %d: %w", line, err)
		}
		switch {
		case rec.Entry != nil:
			e := *rec.Entry
			if e.Seq != uint64(len(l.leaves))+1 {
				return fmt.Errorf("ledger: line %d: entry seq %d, want %d (truncated or reordered file)",
					line, e.Seq, len(l.leaves)+1)
			}
			l.append(e)
		case rec.Seal != nil:
			s := *rec.Seal
			if s.Size == 0 || s.Size > uint64(len(l.leaves)) {
				return fmt.Errorf("ledger: line %d: seal over %d entries, have %d", line, s.Size, len(l.leaves))
			}
			root := merkleRoot(l.leaves[:s.Size])
			if got := hex.EncodeToString(root[:]); got != s.Root {
				return fmt.Errorf("ledger: line %d: seal root mismatch over %d entries — ledger tampered or corrupt (have %s, sealed %s)",
					line, s.Size, got, s.Root)
			}
			l.unsealed = len(l.leaves) - int(s.Size)
		default:
			return fmt.Errorf("ledger: line %d: record is neither entry nor seal", line)
		}
	}
	return sc.Err()
}

// append adds the entry to the in-memory tree (no file I/O).
func (l *Ledger) append(e Entry) {
	idx := len(l.leaves)
	l.leaves = append(l.leaves, leafHash(e.leafData()))
	l.entries = append(l.entries, e)
	l.latest[e.Key+"\x00"+e.Engine] = idx
	l.unsealed++
}

// writeRecord appends one JSONL line to the file (no-op in memory).
func (l *Ledger) writeRecord(rec record) error {
	if l.f == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = l.f.Write(append(b, '\n'))
	return err
}

// Append records a completed result and returns its 1-based sequence and
// the tree head after the append. Re-appending the latest identical
// (key, engine, resultSHA) is a no-op returning the existing sequence —
// recomputations after a cache eviction are byte-identical by the
// engine's determinism guarantee and need no second entry.
func (l *Ledger) Append(key, engine, resultSHA string) (seq uint64, root string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if idx, ok := l.latest[key+"\x00"+engine]; ok && l.entries[idx].ResultSHA == resultSHA {
		head := merkleRoot(l.leaves)
		return l.entries[idx].Seq, hex.EncodeToString(head[:]), nil
	}
	e := Entry{Seq: uint64(len(l.leaves)) + 1, Key: key, Engine: engine, ResultSHA: resultSHA}
	if err := l.writeRecord(record{Entry: &e}); err != nil {
		return 0, "", err
	}
	l.append(e)
	head := merkleRoot(l.leaves)
	if l.unsealed >= l.batch {
		if err := l.sealLocked(head); err != nil {
			return 0, "", err
		}
	}
	return e.Seq, hex.EncodeToString(head[:]), nil
}

// sealLocked writes a seal over the current tree and syncs the file.
func (l *Ledger) sealLocked(head [hashSize]byte) error {
	s := seal{Size: uint64(len(l.leaves)), Root: hex.EncodeToString(head[:])}
	if err := l.writeRecord(record{Seal: &s}); err != nil {
		return err
	}
	l.unsealed = 0
	if l.f != nil {
		return l.f.Sync()
	}
	return nil
}

// Size reports the number of ledger entries.
func (l *Ledger) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.leaves))
}

// Root returns the current tree size and head (empty root at size 0).
func (l *Ledger) Root() (size uint64, root string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.leaves) == 0 {
		return 0, ""
	}
	head := merkleRoot(l.leaves)
	return uint64(len(l.leaves)), hex.EncodeToString(head[:])
}

// Proof returns an inclusion proof for the newest entry recorded under
// (key, engine), against the current tree head.
func (l *Ledger) Proof(key, engine string) (Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx, ok := l.latest[key+"\x00"+engine]
	if !ok {
		return Proof{}, fmt.Errorf("ledger: no entry for options %s under engine %s", shortKey(key), engine)
	}
	e := l.entries[idx]
	head := merkleRoot(l.leaves)
	path := inclusionPath(l.leaves, idx)
	hexPath := make([]string, len(path))
	for i, p := range path {
		hexPath[i] = hex.EncodeToString(p[:])
	}
	return Proof{
		Key:       e.Key,
		Engine:    e.Engine,
		ResultSHA: e.ResultSHA,
		Seq:       e.Seq,
		TreeSize:  uint64(len(l.leaves)),
		Root:      hex.EncodeToString(head[:]),
		Path:      hexPath,
	}, nil
}

// Close seals any unsealed tail and closes the file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.unsealed > 0 && len(l.leaves) > 0 {
		if err := l.sealLocked(merkleRoot(l.leaves)); err != nil {
			return err
		}
	}
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Proof is a self-contained inclusion proof: everything a client needs to
// check that a result was recorded, without access to the ledger file.
type Proof struct {
	Key       string `json:"key"`
	Engine    string `json:"engine"`
	ResultSHA string `json:"result_sha"`
	// Seq is the entry's 1-based append position (leaf index Seq-1).
	Seq      uint64 `json:"seq"`
	TreeSize uint64 `json:"tree_size"`
	// Root is the hex tree head the proof folds to.
	Root string `json:"root"`
	// Path is the hex audit path, leaf-adjacent sibling first.
	Path []string `json:"path"`
}

// Verify recomputes the leaf from the proof's entry fields and folds the
// path, checking it lands on Root. A proof over a tampered result (or a
// forged path) fails.
func (p Proof) Verify() error {
	if p.Seq == 0 {
		return fmt.Errorf("ledger: proof has no sequence")
	}
	leaf := leafHash(Entry{Key: p.Key, Engine: p.Engine, ResultSHA: p.ResultSHA}.leafData())
	root, err := hexHash(p.Root)
	if err != nil {
		return fmt.Errorf("ledger: bad proof root: %w", err)
	}
	path := make([][hashSize]byte, len(p.Path))
	for i, s := range p.Path {
		if path[i], err = hexHash(s); err != nil {
			return fmt.Errorf("ledger: bad proof path element %d: %w", i, err)
		}
	}
	return VerifyInclusion(leaf, p.Seq-1, p.TreeSize, path, root)
}

// hexHash decodes a hex-encoded sha256 digest.
func hexHash(s string) ([hashSize]byte, error) {
	var out [hashSize]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != hashSize {
		return out, fmt.Errorf("digest is %d bytes, want %d", len(b), hashSize)
	}
	copy(out[:], b)
	return out, nil
}

// shortKey abbreviates an options hash for error text.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
