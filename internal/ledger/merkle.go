// Package ledger is an append-only, Merkle-batched results ledger: every
// completed sweep appends one entry keyed by (options hash, engine
// version) with the SHA-256 of its canonical result JSON, and any entry's
// membership can later be proven with an RFC 6962-style inclusion proof —
// so a cached or cluster-merged result can be audited back to the engine
// run that produced it without trusting the serving daemon.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// hashSize is sha256.Size, named for the wire checks.
const hashSize = sha256.Size

// Domain-separation prefixes (RFC 6962): leaves and interior nodes hash
// differently, so a leaf can never be confused for a subtree root.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// leafHash hashes one entry's canonical encoding as a tree leaf.
func leafHash(data []byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out [hashSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// nodeHash hashes two child roots into their parent.
func nodeHash(l, r [hashSize]byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out [hashSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2) — the left-subtree size of RFC 6962's Merkle tree head.
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// merkleRoot computes the tree head over leaf hashes (MTH). The caller
// guarantees len(leaves) >= 1.
func merkleRoot(leaves [][hashSize]byte) [hashSize]byte {
	if len(leaves) == 1 {
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
}

// inclusionPath returns the audit path for leaf m (0-based) in the tree
// over leaves — the sibling hashes bottom-up that VerifyInclusion folds
// back into the root.
func inclusionPath(leaves [][hashSize]byte, m int) [][hashSize]byte {
	if len(leaves) <= 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if m < k {
		return append(inclusionPath(leaves[:k], m), merkleRoot(leaves[k:]))
	}
	return append(inclusionPath(leaves[k:], m-k), merkleRoot(leaves[:k]))
}

// VerifyInclusion checks an RFC 6962 inclusion proof: that leaf sits at
// index in a tree of size whose head is root. It is self-contained so
// clients (blitzctl -verify) can run it without the ledger file.
func VerifyInclusion(leaf [hashSize]byte, index, size uint64, path [][hashSize]byte, root [hashSize]byte) error {
	if index >= size {
		return fmt.Errorf("ledger: leaf index %d outside tree of size %d", index, size)
	}
	fn, sn := index, size-1
	r := leaf
	for _, p := range path {
		if sn == 0 {
			return fmt.Errorf("ledger: proof longer than the tree is deep")
		}
		if fn%2 == 1 || fn == sn {
			r = nodeHash(p, r)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return fmt.Errorf("ledger: proof shorter than the tree is deep")
	}
	if r != root {
		return fmt.Errorf("ledger: proof folds to root %s, want %s",
			hex.EncodeToString(r[:]), hex.EncodeToString(root[:]))
	}
	return nil
}
