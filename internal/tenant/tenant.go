// Package tenant makes blitzd multi-tenant: API-key authentication from a
// static key file (keys stored hashed), per-tenant token-bucket rate
// limits and windowed byte/compute quotas, and priority-class admission
// control over the daemon's bounded worker pool.
//
// The trust model is deliberately simple: blitzd deployments own their
// key file, keys are opaque bearer strings, and the file stores only
// SHA-256 digests so a leaked config does not leak credentials. An
// optional anonymous tier serves keyless clients under its own limits;
// with no key file at all the registry is "open" and every request maps
// to one unlimited anonymous tenant — exactly the pre-tenancy behavior.
package tenant

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Class is an admission priority class. Lower values dequeue first.
type Class uint8

const (
	// ClassInteractive is the default, latency-sensitive class.
	ClassInteractive Class = iota
	// ClassBatch yields to interactive work whenever both are queued.
	ClassBatch
	// NumClasses bounds per-class arrays.
	NumClasses
)

// String names the class as it appears in configs and metric labels.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	}
	return fmt.Sprintf("class-%d", uint8(c))
}

// ParseClass maps a config string to a Class; empty means interactive.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	}
	return ClassInteractive, fmt.Errorf("tenant: unknown priority class %q (want interactive or batch)", s)
}

// Sentinel errors the serving layer maps to HTTP statuses.
var (
	// ErrUnauthenticated maps to 401: no key where one is required, or a
	// key the registry does not know.
	ErrUnauthenticated = errors.New("tenant: unauthenticated")
	// ErrRateLimited maps to 429: the tenant's token bucket is empty.
	ErrRateLimited = errors.New("tenant: rate limit exceeded")
	// ErrQuotaExhausted maps to 429: a windowed byte or sweep quota is
	// spent for the current window.
	ErrQuotaExhausted = errors.New("tenant: quota exhausted")
)

// Config is one tenant's entry in the key file. Zero limits mean
// unlimited in that dimension.
type Config struct {
	// Name labels the tenant in logs and /metrics. Required, unique.
	Name string `json:"name"`
	// KeySHA256 is the hex SHA-256 of the tenant's API key — the
	// recommended form, so the key file never stores credentials.
	KeySHA256 string `json:"key_sha256,omitempty"`
	// Key is the plaintext API key, hashed at load time. Convenient for
	// smoke tests and local setups; prefer KeySHA256.
	Key string `json:"key,omitempty"`
	// RatePerSec and Burst shape the token bucket: sustained requests per
	// second and the bucket capacity. Burst defaults to max(1, ceil(rate)).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	// QuotaSweeps bounds how many uncached sweep computations the tenant
	// may trigger per quota window; QuotaBytes bounds result bytes served
	// (cached or computed) per window.
	QuotaSweeps int64 `json:"quota_sweeps,omitempty"`
	QuotaBytes  int64 `json:"quota_bytes,omitempty"`
	// QuotaWindowSecs is the quota reset period. Default 3600 (one hour).
	QuotaWindowSecs int `json:"quota_window_secs,omitempty"`
	// Priority is the admission class: "interactive" (default) or "batch".
	Priority string `json:"priority,omitempty"`
}

// KeyFile is the on-disk registry shape: named tenants plus an optional
// anonymous tier for keyless clients.
type KeyFile struct {
	Tenants []Config `json:"tenants"`
	// Anonymous, when present, admits keyless requests under its limits
	// (its Key/KeySHA256 fields are ignored). Absent means keyless
	// requests are rejected with 401.
	Anonymous *Config `json:"anonymous,omitempty"`
}

// Counters are one tenant's serving counters, exported on /metrics.
type Counters struct {
	Requests      uint64
	CacheHits     uint64
	Sweeps        uint64
	BytesServed   uint64
	RejectRate    uint64
	RejectQuota   uint64
	RejectedQueue uint64
}

// Tenant is one authenticated principal's runtime state: identity,
// admission class, token bucket, quota window, and counters. All methods
// are safe for concurrent use and safe on a nil receiver (a nil tenant
// is unlimited and uncounted — internal paths like cluster shard
// execution use it).
type Tenant struct {
	// Name and Class are immutable after construction.
	Name  string
	Class Class

	mu  sync.Mutex
	now func() time.Time

	// Token bucket: tokens refill at rate/sec up to burst. rate 0 means
	// unlimited.
	rate   float64
	burst  float64
	tokens float64
	last   time.Time

	// Quota window: used counters reset when the window rolls over.
	window      time.Duration
	windowStart time.Time
	quotaSweeps int64
	quotaBytes  int64
	usedSweeps  int64
	usedBytes   int64

	c Counters
}

// newTenant builds the runtime state for one config entry.
func newTenant(cfg Config) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, errors.New("tenant: config entry without a name")
	}
	class, err := ParseClass(cfg.Priority)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", cfg.Name, err)
	}
	if cfg.RatePerSec < 0 || cfg.Burst < 0 || cfg.QuotaSweeps < 0 || cfg.QuotaBytes < 0 || cfg.QuotaWindowSecs < 0 {
		return nil, fmt.Errorf("tenant %q: negative limit", cfg.Name)
	}
	burst := float64(cfg.Burst)
	if cfg.RatePerSec > 0 && burst == 0 {
		burst = cfg.RatePerSec
		if burst < 1 {
			burst = 1
		}
	}
	window := time.Duration(cfg.QuotaWindowSecs) * time.Second
	if window == 0 {
		window = time.Hour
	}
	return &Tenant{
		Name:        cfg.Name,
		Class:       class,
		now:         time.Now,
		rate:        cfg.RatePerSec,
		burst:       burst,
		tokens:      burst,
		window:      window,
		quotaSweeps: cfg.QuotaSweeps,
		quotaBytes:  cfg.QuotaBytes,
	}, nil
}

// refillLocked advances the token bucket and rolls the quota window.
func (t *Tenant) refillLocked(now time.Time) {
	if t.rate > 0 {
		if t.last.IsZero() {
			t.last = now
		}
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.last = now
	}
	if t.windowStart.IsZero() {
		t.windowStart = now
	}
	if now.Sub(t.windowStart) >= t.window {
		// Windows are anchored to first use, not wall-clock hours; a long
		// idle gap simply starts a fresh window.
		t.windowStart = now
		t.usedSweeps = 0
		t.usedBytes = 0
	}
}

// windowRetryLocked is how long until the current quota window resets.
func (t *Tenant) windowRetryLocked(now time.Time) time.Duration {
	d := t.windowStart.Add(t.window).Sub(now)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// AllowRequest admits or rejects one request at the edge: it consumes a
// rate-limit token and rejects when the byte quota is already spent.
// On rejection it returns how long the client should wait (the
// Retry-After value) and a sentinel error.
func (t *Tenant) AllowRequest() (time.Duration, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.refillLocked(now)
	if t.quotaBytes > 0 && t.usedBytes >= t.quotaBytes {
		t.c.RejectQuota++
		return t.windowRetryLocked(now), fmt.Errorf("%w: %d of %d quota bytes used this window", ErrQuotaExhausted, t.usedBytes, t.quotaBytes)
	}
	if t.rate > 0 {
		if t.tokens < 1 {
			t.c.RejectRate++
			wait := time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
			if wait < time.Second {
				wait = time.Second
			}
			return wait, fmt.Errorf("%w: %.3g requests/sec sustained", ErrRateLimited, t.rate)
		}
		t.tokens--
	}
	t.c.Requests++
	return 0, nil
}

// AllowSweep consumes one unit of the sweep quota — called when a request
// misses every cache tier and is about to trigger (or join) a real
// computation. Cache hits never consume sweep quota: serving stored
// results cheaply is the point of the tiered store.
func (t *Tenant) AllowSweep() (time.Duration, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.refillLocked(now)
	if t.quotaSweeps > 0 && t.usedSweeps >= t.quotaSweeps {
		t.c.RejectQuota++
		return t.windowRetryLocked(now), fmt.Errorf("%w: %d of %d sweep executions used this window", ErrQuotaExhausted, t.usedSweeps, t.quotaSweeps)
	}
	t.usedSweeps++
	t.c.Sweeps++
	return 0, nil
}

// ChargeBytes records result bytes served to the tenant; the next
// AllowRequest rejects once the window's byte quota is spent.
func (t *Tenant) ChargeBytes(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.usedBytes += int64(n)
	t.c.BytesServed += uint64(n)
	t.mu.Unlock()
}

// CountHit records a cache-tier hit (memory or disk).
func (t *Tenant) CountHit() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.c.CacheHits++
	t.mu.Unlock()
}

// CountQueueReject records an admission-queue-full rejection.
func (t *Tenant) CountQueueReject() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.c.RejectedQueue++
	t.mu.Unlock()
}

// PriorityClass is the tenant's admission class; a nil tenant (an
// internal, unauthenticated path) admits as interactive.
func (t *Tenant) PriorityClass() Class {
	if t == nil {
		return ClassInteractive
	}
	return t.Class
}

// Snapshot returns a copy of the tenant's counters.
func (t *Tenant) Snapshot() Counters {
	if t == nil {
		return Counters{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.c
}

// setNow injects a clock for tests.
func (t *Tenant) setNow(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Registry resolves API keys to tenants. Immutable after construction
// (only tenant counters mutate), so lookups take no registry lock.
type Registry struct {
	byHash map[string]*Tenant
	anon   *Tenant
	// open marks the no-key-file registry: every request, keyed or not,
	// maps to the unlimited anonymous tenant.
	open    bool
	ordered []*Tenant

	mu     sync.Mutex
	unauth uint64
}

// Open returns the registry blitzd uses without a key file: one
// unlimited anonymous tenant that every request maps to.
func Open() *Registry {
	anon, _ := newTenant(Config{Name: "anonymous"})
	return &Registry{
		byHash:  map[string]*Tenant{},
		anon:    anon,
		open:    true,
		ordered: []*Tenant{anon},
	}
}

// New builds a registry from a parsed key file.
func New(kf KeyFile) (*Registry, error) {
	r := &Registry{byHash: make(map[string]*Tenant, len(kf.Tenants))}
	seen := make(map[string]bool, len(kf.Tenants))
	for _, cfg := range kf.Tenants {
		t, err := newTenant(cfg)
		if err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		hash := cfg.KeySHA256
		if hash == "" {
			if cfg.Key == "" {
				return nil, fmt.Errorf("tenant %q: neither key nor key_sha256 set", t.Name)
			}
			hash = HashKey(cfg.Key)
		}
		if len(hash) != sha256.Size*2 {
			return nil, fmt.Errorf("tenant %q: key_sha256 must be %d hex chars", t.Name, sha256.Size*2)
		}
		if _, err := hex.DecodeString(hash); err != nil {
			return nil, fmt.Errorf("tenant %q: key_sha256 is not hex: %w", t.Name, err)
		}
		if _, dup := r.byHash[hash]; dup {
			return nil, fmt.Errorf("tenant %q: key already registered to another tenant", t.Name)
		}
		r.byHash[hash] = t
		r.ordered = append(r.ordered, t)
	}
	if kf.Anonymous != nil {
		cfg := *kf.Anonymous
		if cfg.Name == "" {
			cfg.Name = "anonymous"
		}
		cfg.Key, cfg.KeySHA256 = "", ""
		anon, err := newTenant(cfg)
		if err != nil {
			return nil, err
		}
		if seen[anon.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", anon.Name)
		}
		r.anon = anon
		r.ordered = append(r.ordered, anon)
	}
	sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].Name < r.ordered[j].Name })
	return r, nil
}

// Load reads and parses a key file.
func Load(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: reading key file: %w", err)
	}
	var kf KeyFile
	if err := json.Unmarshal(b, &kf); err != nil {
		return nil, fmt.Errorf("tenant: parsing key file %s: %w", path, err)
	}
	if len(kf.Tenants) == 0 && kf.Anonymous == nil {
		return nil, fmt.Errorf("tenant: key file %s declares no tenants", path)
	}
	return New(kf)
}

// HashKey returns the hex SHA-256 of an API key — the form key files
// store and the registry indexes by.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Authenticate resolves an API key (empty for keyless requests) to a
// tenant. An unknown non-empty key is always rejected — it is a
// misconfigured client, not an anonymous one — except in open mode,
// where keys are ignored entirely.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	if r.open {
		return r.anon, nil
	}
	if key == "" {
		if r.anon != nil {
			return r.anon, nil
		}
		return nil, fmt.Errorf("%w: no API key supplied and anonymous access is disabled", ErrUnauthenticated)
	}
	if t, ok := r.byHash[HashKey(key)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("%w: unknown API key", ErrUnauthenticated)
}

// Tenants returns the registry's tenants in stable name order.
func (r *Registry) Tenants() []*Tenant { return r.ordered }

// CountUnauthenticated records a 401.
func (r *Registry) CountUnauthenticated() {
	r.mu.Lock()
	r.unauth++
	r.mu.Unlock()
}

// Unauthenticated returns the 401 counter.
func (r *Registry) Unauthenticated() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.unauth
}

// SetNowFunc injects a clock into every tenant (tests only).
func (r *Registry) SetNowFunc(now func() time.Time) {
	for _, t := range r.ordered {
		t.setNow(now)
	}
}

// ctxKey is the context key type for the authenticated tenant.
type ctxKey struct{}

// NewContext attaches the authenticated tenant to a request context.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the authenticated tenant, or nil (unlimited,
// uncounted) when the path was not authenticated.
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}
