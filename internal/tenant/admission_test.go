package tenant

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionImmediateWhenFree(t *testing.T) {
	a := NewAdmission(2, 4)
	ctx := context.Background()
	if err := a.Acquire(ctx, ClassBatch); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.Acquire(ctx, ClassInteractive); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	a.Release()
	a.Release()
	if got := a.QueueTotal(); got != 0 {
		t.Errorf("queue total = %d, want 0", got)
	}
}

// TestAdmissionPriorityOrder queues a batch waiter before an interactive
// one and asserts the interactive waiter is granted first on release.
func TestAdmissionPriorityOrder(t *testing.T) {
	a := NewAdmission(1, 4)
	ctx := context.Background()
	if err := a.Acquire(ctx, ClassInteractive); err != nil {
		t.Fatalf("occupy slot: %v", err)
	}

	order := make(chan Class, 2)
	var started sync.WaitGroup
	launch := func(c Class) {
		started.Add(1)
		go func() {
			started.Done()
			if err := a.Acquire(ctx, c); err != nil {
				t.Errorf("acquire %v: %v", c, err)
				return
			}
			order <- c
		}()
	}

	launch(ClassBatch)
	waitDepth(t, a, ClassBatch, 1)
	launch(ClassInteractive)
	waitDepth(t, a, ClassInteractive, 1)
	started.Wait()

	a.Release() // must grant the interactive waiter despite batch queuing first
	if got := <-order; got != ClassInteractive {
		t.Fatalf("first grant went to %v, want interactive", got)
	}
	a.Release()
	if got := <-order; got != ClassBatch {
		t.Fatalf("second grant went to %v, want batch", got)
	}
	a.Release()
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx, ClassInteractive); err != nil {
		t.Fatalf("occupy slot: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, ClassInteractive) }()
	waitDepth(t, a, ClassInteractive, 1)

	// The interactive queue is at its bound; the batch queue is separate.
	if err := a.Acquire(ctx, ClassInteractive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound acquire: got %v, want ErrQueueFull", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := a.Acquire(cancelled, ClassBatch); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch acquire on dead ctx: got %v", err)
	}

	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release()
}

func TestAdmissionCancelledWaiterReleasesSlot(t *testing.T) {
	a := NewAdmission(1, 4)
	ctx := context.Background()
	if err := a.Acquire(ctx, ClassInteractive); err != nil {
		t.Fatalf("occupy slot: %v", err)
	}
	wctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- a.Acquire(wctx, ClassInteractive) }()
	waitDepth(t, a, ClassInteractive, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v", err)
	}
	a.Release()
	// The slot must be acquirable again — the cancelled waiter left no
	// residue.
	if err := a.Acquire(ctx, ClassBatch); err != nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
	a.Release()
}

// TestAdmissionConcurrent hammers the controller from many goroutines
// under -race: every grant is eventually released, no slot is leaked, and
// the controller ends idle.
func TestAdmissionConcurrent(t *testing.T) {
	const slots, goroutines, rounds = 3, 16, 50
	a := NewAdmission(slots, goroutines*rounds)
	var inside, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		class := Class(g % int(NumClasses))
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := a.Acquire(context.Background(), class); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := inside.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inside.Add(-1)
				a.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Errorf("concurrency peak %d exceeded %d slots", p, slots)
	}
	if got := a.QueueTotal(); got != 0 {
		t.Errorf("queue total after drain = %d", got)
	}
	// All slots must be free again.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for i := 0; i < slots; i++ {
		if err := a.Acquire(ctx, ClassInteractive); err != nil {
			t.Fatalf("slot %d not returned: %v", i, err)
		}
	}
}

// waitDepth polls until the class queue reaches depth n (the waiter
// goroutine has parked) or the test times out.
func waitDepth(t *testing.T, a *Admission, c Class, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Depths()[c] >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("class %v queue never reached depth %d", c, n)
}
