package tenant

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic limiter tests.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func mustRegistry(t *testing.T, kf KeyFile) *Registry {
	t.Helper()
	r, err := New(kf)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestAuthenticate(t *testing.T) {
	r := mustRegistry(t, KeyFile{
		Tenants: []Config{
			{Name: "alice", Key: "alice-key"},
			{Name: "bob", KeySHA256: HashKey("bob-key")},
		},
	})

	for _, key := range []string{"alice-key", "bob-key"} {
		if _, err := r.Authenticate(key); err != nil {
			t.Errorf("Authenticate(%q): %v", key, err)
		}
	}
	if _, err := r.Authenticate(""); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("keyless without anonymous tier: got %v, want ErrUnauthenticated", err)
	}
	if _, err := r.Authenticate("wrong"); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("unknown key: got %v, want ErrUnauthenticated", err)
	}

	alice, _ := r.Authenticate("alice-key")
	if alice.Name != "alice" {
		t.Errorf("Authenticate(alice-key).Name = %q", alice.Name)
	}
}

func TestAnonymousTier(t *testing.T) {
	r := mustRegistry(t, KeyFile{
		Tenants:   []Config{{Name: "alice", Key: "alice-key"}},
		Anonymous: &Config{RatePerSec: 1},
	})
	anon, err := r.Authenticate("")
	if err != nil {
		t.Fatalf("keyless with anonymous tier: %v", err)
	}
	if anon.Name != "anonymous" {
		t.Errorf("anonymous tenant name = %q", anon.Name)
	}
	// A wrong key is still a 401 even when anonymous access exists.
	if _, err := r.Authenticate("wrong"); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("unknown key with anonymous tier: got %v, want ErrUnauthenticated", err)
	}
}

func TestOpenRegistryIgnoresKeys(t *testing.T) {
	r := Open()
	for _, key := range []string{"", "anything"} {
		tn, err := r.Authenticate(key)
		if err != nil || tn == nil {
			t.Fatalf("open registry Authenticate(%q) = %v, %v", key, tn, err)
		}
		if retry, err := tn.AllowRequest(); err != nil || retry != 0 {
			t.Fatalf("open tenant AllowRequest = %v, %v", retry, err)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := []KeyFile{
		{Tenants: []Config{{Name: "", Key: "k"}}},                                 // nameless
		{Tenants: []Config{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}}},        // duplicate name
		{Tenants: []Config{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}},         // duplicate key
		{Tenants: []Config{{Name: "a"}}},                                          // no key at all
		{Tenants: []Config{{Name: "a", KeySHA256: "abc"}}},                        // short hash
		{Tenants: []Config{{Name: "a", Key: "k", RatePerSec: -1}}},                // negative limit
		{Tenants: []Config{{Name: "a", Key: "k", Priority: "urgent"}}},            // bad class
		{Tenants: []Config{{Name: "a", Key: "k"}}, Anonymous: &Config{Name: "a"}}, // anon name collision
		{Tenants: []Config{{Name: "a", KeySHA256: "zz" + HashKey("x")[2:]}}},      // non-hex hash
	}
	for i, kf := range cases {
		if _, err := New(kf); err == nil {
			t.Errorf("case %d: New accepted invalid key file", i)
		}
	}
}

func TestRateLimit(t *testing.T) {
	clock := newFakeClock()
	r := mustRegistry(t, KeyFile{Tenants: []Config{{Name: "a", Key: "k", RatePerSec: 2, Burst: 2}}})
	r.SetNowFunc(clock.now)
	tn, _ := r.Authenticate("k")

	for i := 0; i < 2; i++ {
		if _, err := tn.AllowRequest(); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	retry, err := tn.AllowRequest()
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst exceeded: got %v, want ErrRateLimited", err)
	}
	if retry < time.Second {
		t.Errorf("retry-after %v, want >= 1s", retry)
	}

	// Half a second refills one token at 2/sec.
	clock.advance(500 * time.Millisecond)
	if _, err := tn.AllowRequest(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	snap := tn.Snapshot()
	if snap.Requests != 3 || snap.RejectRate != 1 {
		t.Errorf("counters = %+v, want 3 requests / 1 rate reject", snap)
	}
}

func TestByteQuota(t *testing.T) {
	clock := newFakeClock()
	r := mustRegistry(t, KeyFile{Tenants: []Config{{Name: "a", Key: "k", QuotaBytes: 100, QuotaWindowSecs: 60}}})
	r.SetNowFunc(clock.now)
	tn, _ := r.Authenticate("k")

	if _, err := tn.AllowRequest(); err != nil {
		t.Fatalf("first request: %v", err)
	}
	tn.ChargeBytes(150)
	retry, err := tn.AllowRequest()
	if !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("over byte quota: got %v, want ErrQuotaExhausted", err)
	}
	if retry <= 0 || retry > time.Minute {
		t.Errorf("retry-after %v, want within the 60s window", retry)
	}

	// The window rolls over and usage resets.
	clock.advance(61 * time.Second)
	if _, err := tn.AllowRequest(); err != nil {
		t.Fatalf("after window reset: %v", err)
	}
}

func TestSweepQuota(t *testing.T) {
	clock := newFakeClock()
	r := mustRegistry(t, KeyFile{Tenants: []Config{{Name: "a", Key: "k", QuotaSweeps: 2, QuotaWindowSecs: 60}}})
	r.SetNowFunc(clock.now)
	tn, _ := r.Authenticate("k")

	for i := 0; i < 2; i++ {
		if _, err := tn.AllowSweep(); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if _, err := tn.AllowSweep(); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("third sweep: got %v, want ErrQuotaExhausted", err)
	}
	// Plain requests (cache hits) are unaffected by the sweep quota.
	if _, err := tn.AllowRequest(); err != nil {
		t.Fatalf("request with sweeps exhausted: %v", err)
	}
	clock.advance(61 * time.Second)
	if _, err := tn.AllowSweep(); err != nil {
		t.Fatalf("sweep after window reset: %v", err)
	}
}

func TestNilTenantIsUnlimited(t *testing.T) {
	var tn *Tenant
	if _, err := tn.AllowRequest(); err != nil {
		t.Errorf("nil AllowRequest: %v", err)
	}
	if _, err := tn.AllowSweep(); err != nil {
		t.Errorf("nil AllowSweep: %v", err)
	}
	tn.ChargeBytes(10)
	tn.CountHit()
	tn.CountQueueReject()
	if snap := tn.Snapshot(); snap != (Counters{}) {
		t.Errorf("nil Snapshot = %+v", snap)
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"": ClassInteractive, "interactive": ClassInteractive, "batch": ClassBatch} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("ParseClass accepted unknown class")
	}
}
