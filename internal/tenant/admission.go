package tenant

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull maps to 503 + Retry-After: the priority class's admission
// queue is at its bound, so accepting the request would only grow an
// unbounded backlog.
var ErrQueueFull = errors.New("tenant: admission queue full")

// waiter is one queued acquisition; grant closes ready exactly once.
type waiter struct {
	ready chan struct{}
}

// Admission is the daemon's priority admission controller: a counting
// semaphore over worker slots fronted by one bounded FIFO queue per
// priority class. Releases grant the head of the highest-priority
// non-empty queue, so interactive work overtakes any amount of queued
// batch work without starving work already running.
type Admission struct {
	mu     sync.Mutex
	free   int
	bound  int
	queues [NumClasses][]*waiter
}

// NewAdmission builds an admission controller over `slots` concurrent
// executions with at most `queueBound` waiters per class (minimums 1).
func NewAdmission(slots, queueBound int) *Admission {
	if slots < 1 {
		slots = 1
	}
	if queueBound < 1 {
		queueBound = 1
	}
	return &Admission{free: slots, bound: queueBound}
}

// Acquire obtains one execution slot at the given priority class,
// blocking until one frees, the class queue is full (ErrQueueFull,
// immediately), or ctx ends. Every successful Acquire must be paired
// with exactly one Release.
func (a *Admission) Acquire(ctx context.Context, c Class) error {
	if c >= NumClasses {
		c = ClassBatch
	}
	a.mu.Lock()
	if a.free > 0 {
		// Invariant: free > 0 implies every queue is empty (releases grant
		// waiters before returning a slot to the pool), so taking the slot
		// directly cannot overtake a queued higher-priority waiter.
		a.free--
		a.mu.Unlock()
		return nil
	}
	if len(a.queues[c]) >= a.bound {
		a.mu.Unlock()
		return ErrQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	a.queues[c] = append(a.queues[c], w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if !a.removeLocked(c, w) {
			// Lost the race: a release granted us between ctx.Done firing
			// and the lock. Pass the slot on instead of leaking it.
			a.releaseLocked()
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot, granting it to the longest-waiting acquirer of
// the highest-priority non-empty class.
func (a *Admission) Release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *Admission) releaseLocked() {
	for c := range a.queues {
		if len(a.queues[c]) > 0 {
			w := a.queues[c][0]
			a.queues[c] = a.queues[c][1:]
			close(w.ready)
			return
		}
	}
	a.free++
}

// removeLocked unlinks a waiter that gave up; false means it was already
// granted.
func (a *Admission) removeLocked(c Class, w *waiter) bool {
	for i, q := range a.queues[c] {
		if q == w {
			a.queues[c] = append(a.queues[c][:i], a.queues[c][i+1:]...)
			return true
		}
	}
	return false
}

// Depths returns the per-class queue depths, for the
// blitzd_admission_queue_depth gauges.
func (a *Admission) Depths() [NumClasses]int {
	var d [NumClasses]int
	a.mu.Lock()
	for c := range a.queues {
		d[c] = len(a.queues[c])
	}
	a.mu.Unlock()
	return d
}

// QueueTotal returns the total number of queued waiters across classes.
func (a *Admission) QueueTotal() int64 {
	var total int64
	for _, d := range a.Depths() {
		total += int64(d)
	}
	return total
}
