// Package scaling implements the analytical extension to larger SoCs of
// Sec. V-E (Equations 5.1-5.3) and the projections of Figs. 1 and 21.
//
// For a given accelerator-level workload phase duration Tw, the average
// interval between SoC-level activity changes is Tw/N, so a power-management
// scheme with response time T(N) supports at most the N where
// T(N) = Tw/N. With response-time laws
//
//	T_CRR(N)  = N * tau_CRR     =>  Nmax = (Tw/tau)^(1/2)
//	T_BCC(N)  = N * tau_BCC     =>  Nmax = (Tw/tau)^(1/2)
//	T_BC(N)   = sqrt(N) * tau_BC =>  Nmax = (Tw/tau)^(2/3)
//
// the scaling constants tau are fitted from measured responses of the
// simulated and fabricated SoCs (the paper obtains tau_BC = 0.20 us,
// tau_BCC = 0.66 us, tau_CRR = 0.96 us, tau_TS = 0.22 us).
package scaling

import (
	"fmt"
	"math"
)

// Law is the asymptotic response-time law of a scheme.
type Law int

const (
	// Linear: T(N) = tau * N (centralized controllers, ring token passing).
	Linear Law = iota
	// Sqrt: T(N) = tau * sqrt(N) (BlitzCoin's parallel mesh diffusion).
	Sqrt
)

// String names the law.
func (l Law) String() string {
	if l == Linear {
		return "O(N)"
	}
	return "O(sqrt(N))"
}

// Point is one measured (N, response) observation.
type Point struct {
	N        float64
	Response float64 // microseconds
}

// Model is a fitted response-time law for one scheme.
type Model struct {
	Name string
	Law  Law
	// Tau is the scaling constant in microseconds.
	Tau float64
}

// Fit least-squares fits tau through the origin for the given law:
// tau = sum(x*y)/sum(x^2) with x = N or sqrt(N).
func Fit(name string, law Law, points []Point) Model {
	if len(points) == 0 {
		panic("scaling: no points to fit")
	}
	var num, den float64
	for _, p := range points {
		if p.N <= 0 || p.Response <= 0 {
			panic(fmt.Sprintf("scaling: invalid point %+v", p))
		}
		x := p.N
		if law == Sqrt {
			x = math.Sqrt(p.N)
		}
		num += x * p.Response
		den += x * x
	}
	return Model{Name: name, Law: law, Tau: num / den}
}

// Response returns T(N) in microseconds.
func (m Model) Response(n float64) float64 {
	if n <= 0 {
		panic("scaling: non-positive N")
	}
	if m.Law == Sqrt {
		return m.Tau * math.Sqrt(n)
	}
	return m.Tau * n
}

// NMax returns the largest supported accelerator count for workload phase
// duration twMicros: the N solving T(N) = Tw/N (Eqs. 5.1-5.3).
func (m Model) NMax(twMicros float64) float64 {
	if twMicros <= 0 {
		panic("scaling: non-positive Tw")
	}
	if m.Law == Sqrt {
		return math.Pow(twMicros/m.Tau, 2.0/3.0)
	}
	return math.Sqrt(twMicros / m.Tau)
}

// OverheadFraction returns the share of wall-clock time consumed by power
// management for an N-accelerator SoC at phase duration twMicros: N/Tw
// decisions per microsecond, each costing T(N) (Fig. 21 right). Values
// above 1 mean power management cannot keep up (N > Nmax).
func (m Model) OverheadFraction(n, twMicros float64) float64 {
	return m.Response(n) * n / twMicros
}

// PaperModels returns the models with the scaling constants the paper fits
// from its measured SoCs (Sec. VI-D): tau_BC = 0.20 us, tau_BCC = 0.66 us,
// tau_CRR = 0.96 us, tau_TS = 0.22 us, plus the software-centralized
// controller of Fig. 1 (about 1 ms for a small SoC, scaling linearly) and
// the hardware-scaled price-theory scheme.
func PaperModels() map[string]Model {
	return map[string]Model{
		"BC":   {Name: "BC", Law: Sqrt, Tau: 0.20},
		"BC-C": {Name: "BC-C", Law: Linear, Tau: 0.66},
		"C-RR": {Name: "C-RR", Law: Linear, Tau: 0.96},
		"TS":   {Name: "TS", Law: Linear, Tau: 0.22},
		// PT after the 2.5-orders-of-magnitude HW scaling of Sec. VI-D:
		// 6.62-11.4 ms at N=256 scales to about 30 us => tau ~ 0.12, but
		// hierarchical topology gives it a sqrt-like law with a larger
		// constant than BC.
		"PT": {Name: "PT", Law: Sqrt, Tau: 1.9},
		// Software daemon on a host core: ~1 ms at N=6.
		"SW": {Name: "SW", Law: Linear, Tau: 170},
	}
}

// PhaseInterval returns the mean SoC-level activity-change interval Tw/N in
// microseconds — the dashed curves of Fig. 1.
func PhaseInterval(twMicros, n float64) float64 { return twMicros / n }

// Supported reports whether the scheme keeps up at (N, Tw): T(N) < Tw/N.
func (m Model) Supported(n, twMicros float64) bool {
	return m.Response(n) < PhaseInterval(twMicros, n)
}
