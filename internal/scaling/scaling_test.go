package scaling

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitRecoversExactLaw(t *testing.T) {
	// Points generated from T = 0.5*sqrt(N) must fit tau = 0.5 exactly.
	var pts []Point
	for _, n := range []float64{4, 16, 64, 256} {
		pts = append(pts, Point{N: n, Response: 0.5 * math.Sqrt(n)})
	}
	m := Fit("x", Sqrt, pts)
	if !almost(m.Tau, 0.5, 1e-12) {
		t.Fatalf("tau = %v, want 0.5", m.Tau)
	}
	pts = pts[:0]
	for _, n := range []float64{4, 16, 64} {
		pts = append(pts, Point{N: n, Response: 0.7 * n})
	}
	m = Fit("y", Linear, pts)
	if !almost(m.Tau, 0.7, 1e-12) {
		t.Fatalf("tau = %v, want 0.7", m.Tau)
	}
}

func TestNMaxFormulas(t *testing.T) {
	// Eq. 5.3: Nmax = (Tw/tau)^(2/3) for the sqrt law.
	bc := Model{Name: "BC", Law: Sqrt, Tau: 0.20}
	if got := bc.NMax(7000); !almost(got, math.Pow(7000/0.20, 2.0/3.0), 1e-9) {
		t.Fatalf("sqrt NMax = %v", got)
	}
	// Paper claim: BC supports about 1000 accelerators at Tw >= 7 ms.
	if got := bc.NMax(7000); got < 900 || got > 1200 {
		t.Fatalf("BC NMax(7ms) = %.0f, want about 1000", got)
	}
	// And about 100 accelerators at Tw >= 0.2 ms.
	if got := bc.NMax(200); got < 80 || got > 120 {
		t.Fatalf("BC NMax(0.2ms) = %.0f, want about 100", got)
	}
}

func TestNMaxAtIntersection(t *testing.T) {
	// At N = NMax, T(N) equals Tw/N by construction.
	f := func(tau8, tw8 uint8) bool {
		tau := 0.1 + float64(tau8)/64
		tw := 100 + float64(tw8)*50
		for _, law := range []Law{Linear, Sqrt} {
			m := Model{Law: law, Tau: tau}
			n := m.NMax(tw)
			if !almost(m.Response(n), PhaseInterval(tw, n), 1e-6*tw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPaperScalingClaims(t *testing.T) {
	m := PaperModels()
	// Fig. 21: BC supports 5.7-13.3x more accelerators than BC-C and C-RR.
	for _, tw := range []float64{200, 1000, 7000, 10000} {
		rBCC := m["BC"].NMax(tw) / m["BC-C"].NMax(tw)
		rCRR := m["BC"].NMax(tw) / m["C-RR"].NMax(tw)
		if rBCC < 4 || rBCC > 15 {
			t.Fatalf("Tw=%v: BC/BC-C NMax ratio %.1f outside the paper's band", tw, rBCC)
		}
		if rCRR < rBCC {
			t.Fatalf("C-RR should allow fewer accelerators than BC-C")
		}
		// And 3.2-6.2x more than TS.
		rTS := m["BC"].NMax(tw) / m["TS"].NMax(tw)
		if rTS < 2.5 || rTS > 8 {
			t.Fatalf("Tw=%v: BC/TS NMax ratio %.1f outside the paper's band", tw, rTS)
		}
	}
}

func TestOverheadFractionFig21Right(t *testing.T) {
	// Fig. 21 right at Tw = 10 ms, N = 100: C-RR 96%, BC-C 66%, TS 21%,
	// BC 2.0%.
	m := PaperModels()
	tw := 10000.0 // 10 ms in us
	if got := m["C-RR"].OverheadFraction(100, tw); !almost(got, 0.96, 1e-9) {
		t.Fatalf("C-RR overhead = %v, want 0.96", got)
	}
	if got := m["BC-C"].OverheadFraction(100, tw); !almost(got, 0.66, 1e-9) {
		t.Fatalf("BC-C overhead = %v, want 0.66", got)
	}
	if got := m["TS"].OverheadFraction(100, tw); !almost(got, 0.22, 1e-9) {
		t.Fatalf("TS overhead = %v, want 0.22", got)
	}
	if got := m["BC"].OverheadFraction(100, tw); !almost(got, 0.020, 1e-3) {
		t.Fatalf("BC overhead = %v, want 0.020", got)
	}
}

func TestSupported(t *testing.T) {
	bc := Model{Law: Sqrt, Tau: 0.20}
	nmax := bc.NMax(1000)
	if !bc.Supported(nmax*0.9, 1000) {
		t.Fatal("N below NMax should be supported")
	}
	if bc.Supported(nmax*1.1, 1000) {
		t.Fatal("N above NMax should not be supported")
	}
}

func TestMonotoneNMaxInTw(t *testing.T) {
	bc := PaperModels()["BC"]
	prev := 0.0
	for tw := 100.0; tw <= 100000; tw *= 2 {
		n := bc.NMax(tw)
		if n <= prev {
			t.Fatalf("NMax not increasing at Tw=%v", tw)
		}
		prev = n
	}
}

func TestFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty fit did not panic")
		}
	}()
	Fit("x", Linear, nil)
}

func TestLawString(t *testing.T) {
	if Linear.String() != "O(N)" || Sqrt.String() != "O(sqrt(N))" {
		t.Fatal("law names wrong")
	}
}
