// Package rng provides a small, fast, deterministic pseudo-random number
// generator for the BlitzCoin simulators.
//
// All Monte Carlo experiments in the paper (Figs. 3-8) average over many runs
// with random initializations. To make every experiment reproducible
// bit-for-bit, simulation components never use math/rand's global state;
// they take an explicit *rng.Source seeded from the experiment seed. Derived
// streams (one per tile, one per trial) are split off with Split so that
// changing the number of draws in one component does not perturb another.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference implementations by Blackman and Vigna. It is not cryptographic.
package rng

import "math"

// Source is a deterministic xoshiro256** PRNG. The zero value is invalid;
// use New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns the next output. It is used
// both to expand seeds into full xoshiro state and to derive child seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child Source. The child's stream is a
// deterministic function of the parent's state at the time of the call, and
// the parent advances by one draw, so repeated Splits yield distinct
// children.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Int63n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n)) // small bias acceptable off hot path
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, as in
// math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns a fair random boolean.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Range returns a uniformly random float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
