package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want about 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}

func TestRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestInt63n(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1000003)
		if v < 0 || v >= 1000003 {
			t.Fatalf("Int63n out of bounds: %v", v)
		}
	}
}
