// Package noc models the multi-plane 2D-mesh network-on-chip that carries
// BlitzCoin's coin-exchange messages.
//
// The evaluated SoCs (Sec. IV-B) use a six-plane NoC: three planes for
// coherence, two for accelerator DMA, and plane 5 for memory-mapped register
// access and interrupts. The paper adds a new message type to plane 5 for
// coin-based power management, with a round-robin arbiter controlling access
// to the plane within each tile. The NoC runs at a fixed voltage and
// frequency (800 MHz) and guarantees one-cycle-per-hop throughput
// (Sec. IV-C).
//
// This model is packet-level and cycle-accurate in the sense that matters to
// the power-management experiments: XY (dimension-ordered) routing, one
// cycle per hop, per-link-per-plane serialization (one flit per cycle), and
// a per-tile injection arbiter on the PM plane. It is driven by the
// discrete-event kernel, so all latencies — including contention stalls —
// land on exact cycles.
package noc

import (
	"fmt"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/sim"
)

// Plane identifies one of the six NoC planes.
type Plane int

// The six planes of the ESP-style NoC. PlanePM is plane 5, which carries
// register accesses, interrupts, and the new coin-exchange message class.
const (
	PlaneCoherence0 Plane = iota
	PlaneCoherence1
	PlaneCoherence2
	PlaneDMA0
	PlaneDMA1
	PlanePM
	NumPlanes
)

// Kind classifies a packet's message type.
type Kind int

// Message kinds. The coin kinds implement Algorithms 1 and 2; RegAccess and
// Interrupt are the plane-5 messages PM traffic arbitrates against.
const (
	KindCoinRequest Kind = iota // 4-way: center asks a neighbor for status
	KindCoinStatus              // reply or unsolicited status: (has, max)
	KindCoinUpdate              // new coin count pushed to a neighbor
	KindRegAccess               // memory-mapped CSR read/write
	KindInterrupt
	KindOther
	numKinds
)

// String returns a short name for the message kind.
func (k Kind) String() string {
	switch k {
	case KindCoinRequest:
		return "coin-req"
	case KindCoinStatus:
		return "coin-status"
	case KindCoinUpdate:
		return "coin-update"
	case KindRegAccess:
		return "reg"
	case KindInterrupt:
		return "irq"
	case KindOther:
		return "other"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// CoinMsg is the payload of the three coin-exchange message kinds, stored
// inline in the Packet so the PM hot path never boxes a payload into an
// interface. The fields mirror the few-dozen-bit hardware message: coin
// state (Has, Max), a coin movement (Delta), protocol flags, and the
// exchange sequence number used to pair replies with requests.
type CoinMsg struct {
	Has   int64  // sender's coin count (status)
	Max   int64  // sender's max additional coins it can absorb (status)
	Delta int64  // coins moved, positive toward the receiver (update)
	Seq   uint64 // exchange sequence number
	Reply bool   // status sent in response to a request
	Nack  bool   // status declines the exchange (locked/busy)
	Ack   bool   // update acknowledges a received update
}

// Packet is a single-flit NoC message. PM messages are a few dozen bits
// (two 7-bit coin fields plus headers) and fit one flit.
type Packet struct {
	ID       uint64
	Plane    Plane
	Kind     Kind
	Src, Dst int
	// Coin carries the payload of coin-exchange kinds inline; Payload is the
	// escape hatch for every other message class.
	Coin      CoinMsg
	Payload   interface{}
	Injected  sim.Cycles // time Send was called
	Departed  sim.Cycles // time the packet won injection arbitration
	Delivered sim.Cycles // time the destination handler ran
	Hops      int
	// Dup marks a fault-injected duplicate delivery of an earlier packet.
	// Receivers that keep in-flight accounting must not double-count it;
	// protocol state machines still process it (that is the fault).
	Dup bool
	// pooled marks packets owned by the network's free list (SendCoin);
	// deliver returns them to the pool after the handler runs, so handlers
	// must not retain them.
	pooled bool
}

// Latency returns the injection-to-delivery latency in cycles.
func (p *Packet) Latency() sim.Cycles { return p.Delivered - p.Injected }

// Handler consumes a delivered packet at its destination tile.
type Handler func(*Packet)

// Stats aggregates network activity for one run.
type Stats struct {
	Sent          uint64
	Delivered     uint64
	TotalHops     uint64
	TotalLatency  uint64 // cycles, summed over delivered packets
	PerPlaneSent  [NumPlanes]uint64
	PerKindSent   [numKinds]uint64
	MaxLatency    sim.Cycles
	ContentionCyc uint64 // cycles spent waiting for busy links/ports

	// Fault-injection effects (zero on a healthy fabric).
	Dropped         uint64 // packets lost to any injected fault
	PerPlaneDropped [NumPlanes]uint64
	Duplicated      uint64 // extra deliveries injected by duplication faults
	Delayed         uint64 // deliveries postponed by delay faults
}

// MeanLatency returns the average delivery latency in cycles.
func (s *Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// Config sets the network's timing knobs.
type Config struct {
	// HopLatency is the per-hop traversal time. The fabricated SoC
	// guarantees one cycle per hop.
	HopLatency sim.Cycles
	// RouterLatency is an additional fixed cost paid once at injection
	// (the tile-to-NoC synchronizer crossing; Sec. IV-B notes each message
	// needs exactly two boundary crossings, folded into this constant).
	RouterLatency sim.Cycles
}

// DefaultConfig matches the fabricated SoC: 1 cycle/hop plus a 2-cycle
// injection cost for the voltage/frequency boundary crossings.
func DefaultConfig() Config {
	return Config{HopLatency: 1, RouterLatency: 2}
}

// Network is the simulated NoC. Create with New, register per-tile handlers,
// then Send packets; deliveries arrive as kernel events.
type Network struct {
	kernel *sim.Kernel
	mesh   mesh.Mesh
	cfg    Config

	// links[plane][from*NumDirections+dir] is the first cycle at which the
	// directed link out of tile `from` through port `dir` is free. One flit
	// per cycle per plane; a flat slice because every send touches it.
	links [NumPlanes][]sim.Cycles
	// inject[plane][tile] is the injection port's next free cycle: the
	// per-tile round-robin arbiter serializes sources within a tile.
	inject [NumPlanes][]sim.Cycles
	// eject[plane][tile] serializes deliveries into a tile.
	eject [NumPlanes][]sim.Cycles

	handlers [NumPlanes][]Handler
	nextID   uint64
	stats    Stats
	faults   *fault.Injector

	// Deliveries travel the kernel as typed (opDeliver, dst, slot) events:
	// slots holds each in-flight packet under a small integer index, so the
	// event itself is pointer-free and no per-packet closure or interface
	// boxing exists anywhere on the send path.
	opDeliver sim.OpCode
	slots     []*Packet
	freeSlots []int32
	// pool recycles packets created by SendCoin, refilled a slab at a time.
	pool []*Packet
}

// poolBatch is how many packets one pool refill allocates (as a single
// slab): the exchange workload keeps a few hundred packets in flight at
// peak, so warming the pool costs a handful of allocations, not one per
// packet.
const poolBatch = 64

// New builds a network over the given mesh using kernel for timing.
func New(k *sim.Kernel, m mesh.Mesh, cfg Config) *Network {
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	n := &Network{kernel: k, mesh: m, cfg: cfg}
	for p := Plane(0); p < NumPlanes; p++ {
		n.links[p] = make([]sim.Cycles, m.N()*mesh.NumDirections)
		n.inject[p] = make([]sim.Cycles, m.N())
		n.eject[p] = make([]sim.Cycles, m.N())
		n.handlers[p] = make([]Handler, m.N())
	}
	n.opDeliver = k.RegisterOp(func(_ int32, x uint64) {
		p := n.slots[x]
		n.slots[x] = nil
		n.freeSlots = append(n.freeSlots, int32(x))
		n.deliver(p)
	})
	return n
}

// schedDeliver parks p in the slot table and schedules its delivery event.
func (n *Network) schedDeliver(t sim.Cycles, p *Packet) {
	var slot int32
	if k := len(n.freeSlots) - 1; k >= 0 {
		slot = n.freeSlots[k]
		n.freeSlots = n.freeSlots[:k]
		n.slots[slot] = p
	} else {
		n.slots = append(n.slots, p)
		slot = int32(len(n.slots) - 1)
	}
	n.kernel.AtOp(t, n.opDeliver, int32(p.Dst), uint64(slot))
}

// Mesh returns the topology the network routes over.
func (n *Network) Mesh() mesh.Mesh { return n.mesh }

// Stats returns a snapshot of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler registers the delivery callback for (tile, plane). Passing nil
// drops packets silently, which models a tile with that service disabled.
func (n *Network) SetHandler(tile int, plane Plane, h Handler) {
	n.handlers[plane][tile] = h
}

// AttachFaults connects a fault injector; every subsequent Send consults it.
// Attach before any traffic flows so the fault schedule is reproducible.
func (n *Network) AttachFaults(in *fault.Injector) { n.faults = in }

// Faults returns the attached injector, or nil on a healthy fabric.
func (n *Network) Faults() *fault.Injector { return n.faults }

// Send injects a packet. The packet's Src, Dst, Plane, and Kind must be set;
// the network assigns ID and timing fields. Delivery happens via the
// destination handler after routing latency, including any contention.
//
// The return value reports whether the packet will be delivered: false means
// an injected fault discarded it in the fabric. It exists for conservation
// accounting only — a real tile cannot observe an in-fabric drop, so protocol
// logic must recover via timeouts, never by branching on this result.
func (n *Network) Send(p *Packet) bool {
	if p.Src == p.Dst {
		panic("noc: packet addressed to its own tile")
	}
	if p.Plane < 0 || p.Plane >= NumPlanes {
		panic(fmt.Sprintf("noc: invalid plane %d", p.Plane))
	}
	n.nextID++
	p.ID = n.nextID
	p.Injected = n.kernel.Now()
	n.stats.Sent++
	n.stats.PerPlaneSent[p.Plane]++
	if p.Kind >= 0 && p.Kind < numKinds {
		n.stats.PerKindSent[p.Kind]++
	}

	// The route is only materialized when a fault injector needs to inspect
	// it; the healthy path walks hops with NextHopXY and allocates nothing.
	var v fault.Verdict
	if n.faults != nil {
		v = n.faults.PacketVerdict(int(p.Plane), p.Src, p.Dst, n.mesh.XYRoute(p.Src, p.Dst))
	}

	// Injection arbitration: the port accepts one packet per cycle.
	depart := p.Injected + n.cfg.RouterLatency
	if free := n.inject[p.Plane][p.Src]; free > depart {
		n.stats.ContentionCyc += uint64(free - depart)
		depart = free
	}
	n.inject[p.Plane][p.Src] = depart + 1
	p.Departed = depart

	// Reserve each link along the XY route in order. Because reservations
	// are made at send time in event order, two packets contending for a
	// link serialize deterministically. Doomed packets still reserve links:
	// they occupy the fabric up to wherever they die.
	t := depart
	links := n.links[p.Plane]
	for cur := p.Src; cur != p.Dst; {
		next, dir := n.mesh.NextHopXY(cur, p.Dst)
		li := cur*mesh.NumDirections + int(dir)
		if free := links[li]; free > t {
			n.stats.ContentionCyc += uint64(free - t)
			t = free
		}
		links[li] = t + 1
		t += n.cfg.HopLatency
		p.Hops++
		cur = next
	}

	if v.Drop {
		n.stats.Dropped++
		n.stats.PerPlaneDropped[p.Plane]++
		return false
	}
	if v.ExtraDelay > 0 {
		n.stats.Delayed++
		t += v.ExtraDelay
	}

	// Ejection port serialization at the destination.
	if free := n.eject[p.Plane][p.Dst]; free > t {
		n.stats.ContentionCyc += uint64(free - t)
		t = free
	}
	n.eject[p.Plane][p.Dst] = t + 1

	n.schedDeliver(t, p)

	if v.Dup {
		// The duplicate trails the original through the ejection port with
		// the same payload; receivers see the message twice.
		n.stats.Duplicated++
		dup := *p
		dup.Dup = true
		td := t + 1
		if free := n.eject[p.Plane][p.Dst]; free > td {
			td = free
		}
		n.eject[p.Plane][p.Dst] = td + 1
		n.schedDeliver(td, &dup)
	}
	return true
}

// SendCoin injects a coin-exchange packet drawn from the network's free
// list; the packet is recycled automatically once the destination handler
// returns (or immediately if a fault drops it), so the per-packet allocation
// of Send disappears from the exchange hot path. The return value matches
// Send's: false means an injected fault discarded the packet.
func (n *Network) SendCoin(plane Plane, kind Kind, src, dst int, msg CoinMsg) bool {
	p := n.getPooled()
	p.Plane, p.Kind, p.Src, p.Dst, p.Coin = plane, kind, src, dst, msg
	ok := n.Send(p)
	if !ok {
		n.pool = append(n.pool, p)
	}
	return ok
}

// SendData injects a pooled packet with an interface payload — the same
// recycling discipline as SendCoin for non-coin traffic like DMA flits, whose
// per-flit packets would otherwise dominate the SoC runner's allocations.
// Handlers must not retain the packet (the payload may be).
func (n *Network) SendData(plane Plane, kind Kind, src, dst int, payload interface{}) bool {
	p := n.getPooled()
	p.Plane, p.Kind, p.Src, p.Dst, p.Payload = plane, kind, src, dst, payload
	ok := n.Send(p)
	if !ok {
		n.pool = append(n.pool, p)
	}
	return ok
}

// getPooled returns a zeroed pooled packet, refilling the free list by slab
// when it runs dry.
func (n *Network) getPooled() *Packet {
	var p *Packet
	if k := len(n.pool) - 1; k >= 0 {
		p = n.pool[k]
		n.pool[k] = nil
		n.pool = n.pool[:k]
		*p = Packet{}
	} else {
		batch := make([]Packet, poolBatch)
		p = &batch[0]
		for i := range batch[1:] {
			n.pool = append(n.pool, &batch[1+i])
		}
	}
	p.pooled = true
	return p
}

func (n *Network) deliver(p *Packet) {
	p.Delivered = n.kernel.Now()
	n.stats.Delivered++
	n.stats.TotalHops += uint64(p.Hops)
	n.stats.TotalLatency += uint64(p.Latency())
	if p.Latency() > n.stats.MaxLatency {
		n.stats.MaxLatency = p.Latency()
	}
	if h := n.handlers[p.Plane][p.Dst]; h != nil {
		h(p)
	}
	if p.pooled {
		n.pool = append(n.pool, p)
	}
}

// UnicastLatencyLowerBound returns the zero-contention latency between two
// tiles: boundary crossing plus hop traversal. Useful for response-time
// models and test oracles.
func (n *Network) UnicastLatencyLowerBound(src, dst int) sim.Cycles {
	return n.cfg.RouterLatency + sim.Cycles(n.mesh.HopDistance(src, dst))*n.cfg.HopLatency
}
