package noc

import (
	"testing"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/sim"
)

func newNet(w, h int, torus bool) (*sim.Kernel, *Network) {
	k := &sim.Kernel{}
	return k, New(k, mesh.New(w, h, torus), DefaultConfig())
}

func TestSingleHopLatency(t *testing.T) {
	k, n := newNet(3, 3, false)
	var got *Packet
	n.SetHandler(1, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	k.Drain()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// RouterLatency(2) + 1 hop = 3 cycles.
	if got.Latency() != 3 || got.Hops != 1 {
		t.Fatalf("latency=%d hops=%d, want 3 and 1", got.Latency(), got.Hops)
	}
}

func TestMultiHopLatencyMatchesLowerBoundWithoutContention(t *testing.T) {
	k, n := newNet(5, 5, false)
	var got *Packet
	n.SetHandler(24, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinUpdate, Src: 0, Dst: 24})
	k.Drain()
	want := n.UnicastLatencyLowerBound(0, 24)
	if got.Latency() != want {
		t.Fatalf("latency = %d, want %d", got.Latency(), want)
	}
	if got.Hops != 8 {
		t.Fatalf("hops = %d, want 8", got.Hops)
	}
}

func TestInjectionPortSerialization(t *testing.T) {
	// Two packets injected the same cycle from the same tile on the same
	// plane must serialize: one flit per cycle.
	k, n := newNet(3, 1, false)
	var times []sim.Cycles
	n.SetHandler(1, PlanePM, func(p *Packet) { times = append(times, p.Delivered) })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	k.Drain()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if times[1] != times[0]+1 {
		t.Fatalf("deliveries at %v, want 1 cycle apart", times)
	}
	if n.Stats().ContentionCyc == 0 {
		t.Fatal("expected contention to be recorded")
	}
}

func TestPlanesDoNotContend(t *testing.T) {
	// The same physical path on different planes is independent.
	k, n := newNet(3, 1, false)
	var times []sim.Cycles
	n.SetHandler(1, PlanePM, func(p *Packet) { times = append(times, p.Delivered) })
	n.SetHandler(1, PlaneDMA0, func(p *Packet) { times = append(times, p.Delivered) })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlaneDMA0, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("deliveries %v, want simultaneous on separate planes", times)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Tiles 0 and 1 both send to tile 2 on a 3x1 mesh: the 1->2 link is
	// shared, so one packet stalls.
	k, n := newNet(3, 1, false)
	count := 0
	n.SetHandler(2, PlanePM, func(p *Packet) { count++ })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 2})
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 1, Dst: 2})
	k.Drain()
	if count != 2 {
		t.Fatalf("delivered %d", count)
	}
	st := n.Stats()
	if st.ContentionCyc == 0 {
		t.Fatal("shared link should have recorded contention")
	}
}

func TestTorusTakesShortWay(t *testing.T) {
	k, n := newNet(4, 4, true)
	var got *Packet
	n.SetHandler(3, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 3})
	k.Drain()
	if got.Hops != 1 {
		t.Fatalf("torus route took %d hops, want 1 (wrap)", got.Hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every (src, dst) pair delivers exactly once with sane latency.
	k, n := newNet(4, 3, false)
	delivered := map[[2]int]int{}
	for i := 0; i < 12; i++ {
		i := i
		n.SetHandler(i, PlanePM, func(p *Packet) { delivered[[2]int{p.Src, p.Dst}]++ })
	}
	sent := 0
	for s := 0; s < 12; s++ {
		for d := 0; d < 12; d++ {
			if s == d {
				continue
			}
			n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: s, Dst: d})
			sent++
		}
	}
	k.Drain()
	if len(delivered) != sent {
		t.Fatalf("delivered %d distinct pairs, want %d", len(delivered), sent)
	}
	for pair, c := range delivered {
		if c != 1 {
			t.Fatalf("pair %v delivered %d times", pair, c)
		}
	}
	st := n.Stats()
	if st.Sent != uint64(sent) || st.Delivered != uint64(sent) {
		t.Fatalf("stats sent=%d delivered=%d want %d", st.Sent, st.Delivered, sent)
	}
	if st.MeanLatency() <= 0 {
		t.Fatal("mean latency not recorded")
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, n := newNet(2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.Send(&Packet{Plane: PlanePM, Src: 1, Dst: 1})
}

func TestNilHandlerDropsSilently(t *testing.T) {
	k, n := newNet(2, 2, false)
	n.Send(&Packet{Plane: PlanePM, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	if n.Stats().Delivered != 1 {
		t.Fatal("packet should count as delivered even without handler")
	}
}

func TestStatsPerPlaneAndKind(t *testing.T) {
	k, n := newNet(2, 2, false)
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinRequest, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlaneDMA1, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	st := n.Stats()
	if st.PerPlaneSent[PlanePM] != 1 || st.PerPlaneSent[PlaneDMA1] != 1 {
		t.Fatalf("per-plane = %v", st.PerPlaneSent)
	}
	if st.PerKindSent[KindCoinRequest] != 1 {
		t.Fatalf("per-kind = %v", st.PerKindSent)
	}
}

func TestKindString(t *testing.T) {
	for k := KindCoinRequest; k <= KindOther; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

// --- fault-injection behavior ------------------------------------------------

func TestLinkFailureDropsAndCounts(t *testing.T) {
	// 3x1 line: fail link 1<->2, then send 0->2 (routes across it) and 0->1
	// (does not). The crossing packet must be reported dropped, not silently
	// delivered, and the drop must be charged to its plane.
	k, n := newNet(3, 1, false)
	inj := fault.NewInjector(fault.Config{LinkFails: []fault.LinkFault{{A: 1, B: 2, At: 0}}})
	n.AttachFaults(inj)
	inj.Arm(k)
	k.Run(1)

	deliveries := 0
	n.SetHandler(2, PlanePM, func(p *Packet) { deliveries++ })
	n.SetHandler(1, PlanePM, func(p *Packet) { deliveries++ })
	if ok := n.Send(&Packet{Plane: PlanePM, Kind: KindCoinUpdate, Src: 0, Dst: 2}); ok {
		t.Fatal("Send across failed link reported delivered")
	}
	if ok := n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1}); !ok {
		t.Fatal("Send on healthy link reported dropped")
	}
	// Reverse direction across the failed link is dead too.
	if ok := n.Send(&Packet{Plane: PlaneDMA0, Kind: KindOther, Src: 2, Dst: 0}); ok {
		t.Fatal("reverse direction of failed link reported delivered")
	}
	k.Drain()
	if deliveries != 1 {
		t.Fatalf("delivered %d packets, want 1", deliveries)
	}
	st := n.Stats()
	if st.Sent != 3 || st.Delivered != 1 || st.Dropped != 2 {
		t.Fatalf("sent=%d delivered=%d dropped=%d", st.Sent, st.Delivered, st.Dropped)
	}
	if st.PerPlaneDropped[PlanePM] != 1 || st.PerPlaneDropped[PlaneDMA0] != 1 {
		t.Fatalf("per-plane drops = %v", st.PerPlaneDropped)
	}
}

func TestDropRateDropsOnTargetPlaneOnly(t *testing.T) {
	k, n := newNet(4, 4, true)
	inj := fault.NewInjector(fault.Config{Seed: 11, DropRate: 1.0})
	n.AttachFaults(inj)
	inj.Arm(k)

	if ok := n.Send(&Packet{Plane: PlanePM, Kind: KindCoinUpdate, Src: 0, Dst: 5}); ok {
		t.Fatal("PM packet survived a 100% drop rate")
	}
	if ok := n.Send(&Packet{Plane: PlaneDMA0, Kind: KindOther, Src: 0, Dst: 5}); !ok {
		t.Fatal("non-PM packet dropped by a plane-5 fault")
	}
	k.Drain()
	st := n.Stats()
	if st.PerPlaneDropped[PlanePM] != 1 || st.PerPlaneDropped[PlaneDMA0] != 0 {
		t.Fatalf("per-plane drops = %v", st.PerPlaneDropped)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	k, n := newNet(3, 1, false)
	inj := fault.NewInjector(fault.Config{Seed: 3, DupRate: 1.0})
	n.AttachFaults(inj)
	inj.Arm(k)

	var got []*Packet
	n.SetHandler(1, PlanePM, func(p *Packet) { got = append(got, p) })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinUpdate, Src: 0, Dst: 1})
	k.Drain()
	if len(got) != 2 {
		t.Fatalf("delivered %d times, want 2", len(got))
	}
	if got[0].Dup || !got[1].Dup {
		t.Fatalf("Dup flags = %v %v, want original then duplicate", got[0].Dup, got[1].Dup)
	}
	if got[0].ID != got[1].ID {
		t.Fatalf("duplicate changed ID: %d vs %d", got[0].ID, got[1].ID)
	}
	if got[1].Delivered <= got[0].Delivered {
		t.Fatalf("duplicate at %d not after original at %d", got[1].Delivered, got[0].Delivered)
	}
	st := n.Stats()
	if st.Duplicated != 1 || st.Delivered != 2 || st.Sent != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDelayPostponesDelivery(t *testing.T) {
	k, n := newNet(3, 1, false)
	inj := fault.NewInjector(fault.Config{Seed: 5, DelayRate: 1.0, DelayMax: 16})
	n.AttachFaults(inj)
	inj.Arm(k)

	var got *Packet
	n.SetHandler(1, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	k.Drain()
	if got == nil {
		t.Fatal("delayed packet never delivered")
	}
	base := n.UnicastLatencyLowerBound(0, 1)
	if got.Latency() <= base {
		t.Fatalf("latency %d not above fault-free bound %d", got.Latency(), base)
	}
	if n.Stats().Delayed != 1 {
		t.Fatalf("stats %+v", n.Stats())
	}
}

func TestDeadTileSwallowsTraffic(t *testing.T) {
	k, n := newNet(3, 3, true)
	inj := fault.NewInjector(fault.Config{TileKills: []fault.TileFault{{Tile: 4, At: 0}}})
	n.AttachFaults(inj)
	inj.Arm(k)
	k.Run(1)

	n.SetHandler(4, PlanePM, func(p *Packet) { t.Fatal("dead tile received a packet") })
	if ok := n.Send(&Packet{Plane: PlanePM, Kind: KindCoinRequest, Src: 0, Dst: 4}); ok {
		t.Fatal("packet to dead tile reported delivered")
	}
	k.Drain()
	if n.Stats().Dropped != 1 {
		t.Fatalf("stats %+v", n.Stats())
	}
}

func TestFaultFreeSendIdenticalWithNilInjector(t *testing.T) {
	// Attaching no injector and attaching a zero-fault injector must produce
	// identical traffic timing — the hardening must not perturb healthy runs.
	run := func(attach bool) Stats {
		k, n := newNet(4, 4, true)
		if attach {
			inj := fault.NewInjector(fault.Config{Seed: 9})
			n.AttachFaults(inj)
			inj.Arm(k)
		}
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s != d {
					n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: s, Dst: d})
				}
			}
		}
		k.Drain()
		return n.Stats()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("stats diverged:\nnil injector: %+v\nzero-fault:   %+v", a, b)
	}
}
