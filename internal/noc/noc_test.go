package noc

import (
	"testing"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/sim"
)

func newNet(w, h int, torus bool) (*sim.Kernel, *Network) {
	k := &sim.Kernel{}
	return k, New(k, mesh.New(w, h, torus), DefaultConfig())
}

func TestSingleHopLatency(t *testing.T) {
	k, n := newNet(3, 3, false)
	var got *Packet
	n.SetHandler(1, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	k.Drain()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// RouterLatency(2) + 1 hop = 3 cycles.
	if got.Latency() != 3 || got.Hops != 1 {
		t.Fatalf("latency=%d hops=%d, want 3 and 1", got.Latency(), got.Hops)
	}
}

func TestMultiHopLatencyMatchesLowerBoundWithoutContention(t *testing.T) {
	k, n := newNet(5, 5, false)
	var got *Packet
	n.SetHandler(24, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinUpdate, Src: 0, Dst: 24})
	k.Drain()
	want := n.UnicastLatencyLowerBound(0, 24)
	if got.Latency() != want {
		t.Fatalf("latency = %d, want %d", got.Latency(), want)
	}
	if got.Hops != 8 {
		t.Fatalf("hops = %d, want 8", got.Hops)
	}
}

func TestInjectionPortSerialization(t *testing.T) {
	// Two packets injected the same cycle from the same tile on the same
	// plane must serialize: one flit per cycle.
	k, n := newNet(3, 1, false)
	var times []sim.Cycles
	n.SetHandler(1, PlanePM, func(p *Packet) { times = append(times, p.Delivered) })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	k.Drain()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if times[1] != times[0]+1 {
		t.Fatalf("deliveries at %v, want 1 cycle apart", times)
	}
	if n.Stats().ContentionCyc == 0 {
		t.Fatal("expected contention to be recorded")
	}
}

func TestPlanesDoNotContend(t *testing.T) {
	// The same physical path on different planes is independent.
	k, n := newNet(3, 1, false)
	var times []sim.Cycles
	n.SetHandler(1, PlanePM, func(p *Packet) { times = append(times, p.Delivered) })
	n.SetHandler(1, PlaneDMA0, func(p *Packet) { times = append(times, p.Delivered) })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlaneDMA0, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("deliveries %v, want simultaneous on separate planes", times)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Tiles 0 and 1 both send to tile 2 on a 3x1 mesh: the 1->2 link is
	// shared, so one packet stalls.
	k, n := newNet(3, 1, false)
	count := 0
	n.SetHandler(2, PlanePM, func(p *Packet) { count++ })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 2})
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 1, Dst: 2})
	k.Drain()
	if count != 2 {
		t.Fatalf("delivered %d", count)
	}
	st := n.Stats()
	if st.ContentionCyc == 0 {
		t.Fatal("shared link should have recorded contention")
	}
}

func TestTorusTakesShortWay(t *testing.T) {
	k, n := newNet(4, 4, true)
	var got *Packet
	n.SetHandler(3, PlanePM, func(p *Packet) { got = p })
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: 0, Dst: 3})
	k.Drain()
	if got.Hops != 1 {
		t.Fatalf("torus route took %d hops, want 1 (wrap)", got.Hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every (src, dst) pair delivers exactly once with sane latency.
	k, n := newNet(4, 3, false)
	delivered := map[[2]int]int{}
	for i := 0; i < 12; i++ {
		i := i
		n.SetHandler(i, PlanePM, func(p *Packet) { delivered[[2]int{p.Src, p.Dst}]++ })
	}
	sent := 0
	for s := 0; s < 12; s++ {
		for d := 0; d < 12; d++ {
			if s == d {
				continue
			}
			n.Send(&Packet{Plane: PlanePM, Kind: KindCoinStatus, Src: s, Dst: d})
			sent++
		}
	}
	k.Drain()
	if len(delivered) != sent {
		t.Fatalf("delivered %d distinct pairs, want %d", len(delivered), sent)
	}
	for pair, c := range delivered {
		if c != 1 {
			t.Fatalf("pair %v delivered %d times", pair, c)
		}
	}
	st := n.Stats()
	if st.Sent != uint64(sent) || st.Delivered != uint64(sent) {
		t.Fatalf("stats sent=%d delivered=%d want %d", st.Sent, st.Delivered, sent)
	}
	if st.MeanLatency() <= 0 {
		t.Fatal("mean latency not recorded")
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, n := newNet(2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.Send(&Packet{Plane: PlanePM, Src: 1, Dst: 1})
}

func TestNilHandlerDropsSilently(t *testing.T) {
	k, n := newNet(2, 2, false)
	n.Send(&Packet{Plane: PlanePM, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	if n.Stats().Delivered != 1 {
		t.Fatal("packet should count as delivered even without handler")
	}
}

func TestStatsPerPlaneAndKind(t *testing.T) {
	k, n := newNet(2, 2, false)
	n.Send(&Packet{Plane: PlanePM, Kind: KindCoinRequest, Src: 0, Dst: 1})
	n.Send(&Packet{Plane: PlaneDMA1, Kind: KindOther, Src: 0, Dst: 1})
	k.Drain()
	st := n.Stats()
	if st.PerPlaneSent[PlanePM] != 1 || st.PerPlaneSent[PlaneDMA1] != 1 {
		t.Fatalf("per-plane = %v", st.PerPlaneSent)
	}
	if st.PerKindSent[KindCoinRequest] != 1 {
		t.Fatalf("per-kind = %v", st.PerKindSent)
	}
}

func TestKindString(t *testing.T) {
	for k := KindCoinRequest; k <= KindOther; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}
