package soc

import (
	"strings"
	"testing"

	"blitzcoin/internal/workload"
)

func run3x3(t *testing.T, scheme Scheme, budget float64, g *workload.Graph) Result {
	t.Helper()
	r := New(SoC3x3(budget, scheme, 7))
	res := r.Run(g)
	if !res.Completed {
		t.Fatalf("%v did not complete: %+v", scheme, res.String())
	}
	return res
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{
		SoC3x3(120, SchemeBC, 1),
		SoC4x4(450, SchemeBC, 1),
		SoC6x6(200, SchemeBC, 1),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestSoC3x3Composition(t *testing.T) {
	cfg := SoC3x3(120, SchemeBC, 1)
	if got := len(cfg.AccelTiles()); got != 6 {
		t.Fatalf("3x3 managed accelerators = %d, want 6", got)
	}
	if got := cfg.CombinedPMaxMW(); got < 395 || got > 405 {
		t.Fatalf("3x3 combined Pmax = %.1f, want about 400 (so 120 mW is 30%%)", got)
	}
}

func TestSoC4x4Composition(t *testing.T) {
	cfg := SoC4x4(450, SchemeBC, 1)
	if got := len(cfg.AccelTiles()); got != 13 {
		t.Fatalf("4x4 managed accelerators = %d, want 13", got)
	}
	frac := 450 / cfg.CombinedPMaxMW()
	if frac < 0.30 || frac > 0.38 {
		t.Fatalf("450 mW fraction = %.3f, want about 1/3", frac)
	}
}

func TestSoC6x6Composition(t *testing.T) {
	cfg := SoC6x6(200, SchemeBC, 1)
	if got := len(cfg.Tiles); got != 36 {
		t.Fatalf("6x6 tile count = %d", got)
	}
	if got := len(cfg.AccelTiles()); got != 10 {
		t.Fatalf("PM cluster size = %d, want 10", got)
	}
}

func TestAllSchemesCompleteAndEnforceCap(t *testing.T) {
	g := workload.AutonomousVehicleParallel()
	for _, scheme := range []Scheme{SchemeBC, SchemeBCC, SchemeCRR, SchemeTS, SchemePT, SchemeStatic} {
		res := run3x3(t, scheme, 120, g)
		// The steady-state cap must hold; transient actuation excursions
		// while one tile ramps down and another ramps up are tolerated
		// (the paper's traces show overshoot at activity edges too).
		if res.CapExceeded(0.35) {
			t.Fatalf("%v: peak %.1f mW far above 120 mW budget", scheme, res.PeakPowerMW)
		}
		if res.ExecCycles == 0 || res.AvgPowerMW <= 0 {
			t.Fatalf("%v: degenerate result %s", scheme, res.String())
		}
	}
}

func TestBlitzCoinFastestResponse(t *testing.T) {
	// Fig. 17 (right): BC's response time is roughly an order of magnitude
	// below the centralized schemes.
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 2)
	bc := run3x3(t, SchemeBC, 120, g)
	bcc := run3x3(t, SchemeBCC, 120, g)
	crr := run3x3(t, SchemeCRR, 120, g)
	if bc.MeanResponseMicros() <= 0 {
		t.Fatal("BC recorded no responses")
	}
	if bc.MeanResponseMicros() >= bcc.MeanResponseMicros() {
		t.Fatalf("BC response %.2fus not faster than BC-C %.2fus",
			bc.MeanResponseMicros(), bcc.MeanResponseMicros())
	}
	if bc.MeanResponseMicros() >= crr.MeanResponseMicros() {
		t.Fatalf("BC response %.2fus not faster than C-RR %.2fus",
			bc.MeanResponseMicros(), crr.MeanResponseMicros())
	}
}

func TestBlitzCoinSubMicrosecondResponse(t *testing.T) {
	// Sec. VI-C / Fig. 20: BlitzCoin responds in under a microsecond to a
	// few microseconds on small SoCs.
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 2)
	bc := run3x3(t, SchemeBC, 120, g)
	if us := bc.MeanResponseMicros(); us > 3 {
		t.Fatalf("BC mean response %.2f us, want about 1 us", us)
	}
}

func TestBlitzCoinBeatsCentralizedThroughput(t *testing.T) {
	// Fig. 17: BC executes faster than BC-C, which executes faster than
	// C-RR, on the autonomous-vehicle workload.
	g := workload.Repeat(workload.AutonomousVehicleDependent(), 2)
	bc := run3x3(t, SchemeBC, 60, g)
	crr := run3x3(t, SchemeCRR, 60, g)
	if bc.ExecCycles >= crr.ExecCycles {
		t.Fatalf("BC exec %.1fus not faster than C-RR %.1fus",
			bc.ExecMicros(), crr.ExecMicros())
	}
}

func TestBlitzCoinBeatsStatic(t *testing.T) {
	// Sec. VI-C: BlitzCoin improves throughput over static allocation.
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 2)
	bc := run3x3(t, SchemeBC, 120, g)
	st := run3x3(t, SchemeStatic, 120, g)
	if bc.ExecCycles >= st.ExecCycles {
		t.Fatalf("BC exec %.1fus not faster than Static %.1fus",
			bc.ExecMicros(), st.ExecMicros())
	}
}

func TestRPFasterThanAP(t *testing.T) {
	// Sec. VI-A: the relative-proportional allocation beats the
	// absolute-proportional one (by 3.0-4.1% in the paper).
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 2)
	mk := func(s Strategy) Result {
		cfg := SoC3x3(120, SchemeBC, 7)
		cfg.Strategy = s
		r := New(cfg)
		return r.Run(g)
	}
	rp := mk(RelativeProportional)
	ap := mk(AbsoluteProportional)
	if !rp.Completed || !ap.Completed {
		t.Fatal("runs incomplete")
	}
	if rp.ExecCycles >= ap.ExecCycles {
		t.Fatalf("RP exec %.1fus not faster than AP %.1fus", rp.ExecMicros(), ap.ExecMicros())
	}
}

func TestHighBudgetFasterThanLow(t *testing.T) {
	g := workload.AutonomousVehicleParallel()
	hi := run3x3(t, SchemeBC, 120, g)
	lo := run3x3(t, SchemeBC, 60, g)
	if hi.ExecCycles >= lo.ExecCycles {
		t.Fatalf("120 mW exec %.1fus not faster than 60 mW %.1fus",
			hi.ExecMicros(), lo.ExecMicros())
	}
}

func TestBudgetUtilizationHigh(t *testing.T) {
	// Fig. 19: BlitzCoin utilizes nearly the full budget (97% measured)
	// while a workload saturates the SoC.
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 3)
	bc := run3x3(t, SchemeBC, 60, g)
	if got := bc.UtilizationPct(); got < 70 || got > 115 {
		t.Fatalf("BC utilization %.1f%%, want high (near 100)", got)
	}
}

func TestFourByFourRuns(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBC, SchemeBCC, SchemeCRR} {
		r := New(SoC4x4(450, scheme, 3))
		res := r.Run(workload.ComputerVisionParallel())
		if !res.Completed {
			t.Fatalf("%v on 4x4 did not complete", scheme)
		}
		if res.CapExceeded(0.25) {
			t.Fatalf("%v on 4x4: peak %.1f over 450 budget", scheme, res.PeakPowerMW)
		}
	}
}

func TestSiliconWorkloadOn6x6(t *testing.T) {
	r := New(SoC6x6(200, SchemeBC, 5))
	res := r.Run(workload.SevenAcceleratorSilicon())
	if !res.Completed {
		t.Fatal("silicon workload did not complete")
	}
	if res.MeanResponseMicros() <= 0 || res.MeanResponseMicros() > 5 {
		t.Fatalf("silicon BC response %.2f us, want about 1 us", res.MeanResponseMicros())
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := workload.AutonomousVehicleParallel()
	a := run3x3(t, SchemeBC, 120, g)
	b := run3x3(t, SchemeBC, 120, g)
	if a.ExecCycles != b.ExecCycles || a.AvgPowerMW != b.AvgPowerMW {
		t.Fatalf("same seed diverged: %s vs %s", a.String(), b.String())
	}
}

func TestPowerTraceRecorded(t *testing.T) {
	g := workload.AutonomousVehicleParallel()
	res := run3x3(t, SchemeBC, 120, g)
	names := res.Recorder.Names()
	if len(names) != 6 {
		t.Fatalf("trace series = %v, want 6 accelerator tiles", names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "t") {
			t.Fatalf("unexpected series name %q", n)
		}
	}
	if res.Total.At(res.ExecCycles/2) <= 0 {
		t.Fatal("total power trace empty mid-run")
	}
}

func TestRunTwicePanics(t *testing.T) {
	r := New(SoC3x3(120, SchemeBC, 1))
	r.Run(workload.AutonomousVehicleParallel())
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	r.Run(workload.AutonomousVehicleParallel())
}

func TestMissingAcceleratorPanics(t *testing.T) {
	r := New(SoC3x3(120, SchemeBC, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("missing accelerator type did not panic")
		}
	}()
	r.Run(workload.ComputerVisionParallel()) // needs GEMM etc., absent on 3x3
}

func TestSchemeAndStrategyStrings(t *testing.T) {
	if SchemeBC.String() != "BC" || SchemeCRR.String() != "C-RR" {
		t.Fatal("scheme names wrong")
	}
	if AbsoluteProportional.String() != "AP" || RelativeProportional.String() != "RP" {
		t.Fatal("strategy names wrong")
	}
	if TileCPU.String() != "CPU" || TileAccel.String() != "ACC" {
		t.Fatal("tile kind names wrong")
	}
}
