package soc

import (
	"fmt"
	"math"

	"blitzcoin/internal/controller"
	"blitzcoin/internal/core"
	"blitzcoin/internal/fault"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/power"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/trace"
	"blitzcoin/internal/workload"
)

// accelTile is the runtime state of one managed accelerator tile.
type accelTile struct {
	idx   int // mesh index
	accel string
	curve *power.Curve
	pm    *core.TilePM

	series       string  // cached power-trace series name ("tNN-accel")
	freqMHz      float64 // effective clock, piecewise constant
	pendFreq     float64 // frequency the latest actuation will settle to
	freqEpoch    int     // guards stale actuation events
	active       bool    // a task occupies the tile (including DMA phases)
	computing    bool    // the compute phase is running (work progresses)
	taskID       int
	remaining    float64 // work cycles left in the running task
	lastProgress sim.Cycles
	compEpoch    int  // guards stale completion events
	memTile      int  // nearest memory tile, for DMA
	dead         bool // fail-stopped by an injected fault
}

// dmaTransfer tracks one DMA burst; the last delivered flit fires done.
// ESP's loosely-coupled accelerators fetch inputs and write results back
// through the memory tiles over the dedicated DMA planes (Sec. IV-B), so
// every task is bracketed by NoC bursts that contend like real traffic.
type dmaTransfer struct {
	remaining int
	done      func()
}

// dmaWorkPerFlit sets DMA volume: one flit per this many work cycles.
const dmaWorkPerFlit = 256

// Runner executes workloads on a configured SoC under one PM scheme.
type Runner struct {
	cfg    Config
	kernel *sim.Kernel
	net    *noc.Network
	ctrl   controller.Controller
	src    *rng.Source
	rec    *trace.Recorder

	// tiles is dense over mesh indices (nil for unmanaged tiles), so the
	// typed event handlers resolve a tile id with one indexed load.
	tiles     []*accelTile
	tileOrder []int // sorted mesh indices for deterministic iteration
	byAccel   map[string][]int

	// UVFR settle and task completion travel the kernel as typed
	// (op, tile, epoch) events — no per-event closures on the SoC hot path.
	opSettle, opComplete sim.OpCode

	graph           *workload.Graph
	done            map[int]bool
	finished        int
	execEnd         sim.Cycles
	activityChanges int
	ran             bool

	injector      *fault.Injector
	tilesKilled   int
	tasksRequeued int
}

// New builds a Runner for the configuration. It panics on invalid configs
// (configurations are produced by this package's constructors; failure is a
// programming error, matching the package style).
func New(cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.CoinRefreshInterval == 0 {
		cfg.CoinRefreshInterval = 32
	}
	if cfg.ConvergenceThreshold == 0 {
		cfg.ConvergenceThreshold = 1.0
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 80_000_000 // 100 ms
	}
	k := &sim.Kernel{}
	net := noc.New(k, cfg.Mesh, noc.DefaultConfig())
	src := rng.New(cfg.Seed)
	r := &Runner{
		cfg:     cfg,
		kernel:  k,
		net:     net,
		src:     src,
		rec:     trace.NewRecorder(),
		tiles:   make([]*accelTile, cfg.Mesh.N()),
		byAccel: make(map[string][]int),
	}
	r.rec.Attach(cfg.Stream)
	r.opSettle = k.RegisterOp(func(tile int32, x uint64) { r.settleDone(int(tile), int(x)) })
	r.opComplete = k.RegisterOp(func(tile int32, x uint64) { r.completionDue(int(tile), int(x)) })
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		r.injector = fault.NewInjector(*cfg.Faults)
		net.AttachFaults(r.injector)
	}

	catalog := power.Catalog()
	var specs []controller.TileSpec
	mwPerCoinRef := 0.0
	for _, idx := range cfg.AccelTiles() {
		c := catalog[cfg.Tiles[idx].Accel]
		specs = append(specs, controller.TileSpec{
			Tile:   idx,
			PMaxMW: c.PMax(),
			PMinMW: c.PMin(),
		})
		if c.PMax() > mwPerCoinRef {
			mwPerCoinRef = c.PMax()
		}
	}
	mwPerCoin := mwPerCoinRef / 63

	// Memory tiles serve DMA; each accelerator pairs with its nearest one.
	var memTiles []int
	for i, tc := range cfg.Tiles {
		if tc.Kind == TileMem {
			memTiles = append(memTiles, i)
		}
	}
	nearestMem := func(idx int) int {
		best, bestD := -1, 1<<30
		for _, m := range memTiles {
			if d := cfg.Mesh.HopDistance(idx, m); d < bestD {
				best, bestD = m, d
			}
		}
		return best
	}

	for _, idx := range cfg.AccelTiles() {
		c := catalog[cfg.Tiles[idx].Accel]
		t := &accelTile{
			idx:     idx,
			accel:   cfg.Tiles[idx].Accel,
			series:  fmt.Sprintf("t%02d-%s", idx, cfg.Tiles[idx].Accel),
			curve:   c,
			pm:      core.NewTilePM(c, mwPerCoin),
			taskID:  -1,
			memTile: nearestMem(idx),
		}
		t.freqMHz = t.pm.FreqMHz() // regulator reset state: minimum V point
		r.tiles[idx] = t
		r.tileOrder = append(r.tileOrder, idx)
		r.byAccel[t.accel] = append(r.byAccel[t.accel], idx)
	}

	// DMA flits demux by transfer (payload pointer), so one handler per
	// (tile, plane) suffices for all concurrent bursts.
	dmaHandler := func(p *noc.Packet) {
		tr := p.Payload.(*dmaTransfer)
		tr.remaining--
		if tr.remaining == 0 {
			tr.done()
		}
	}
	for _, plane := range []noc.Plane{noc.PlaneDMA0, noc.PlaneDMA1} {
		for i := range cfg.Tiles {
			net.SetHandler(i, plane, dmaHandler)
		}
	}

	switch cfg.Scheme {
	case SchemeBC:
		r.ctrl = newBCAdapter(k, net, specs, cfg.BudgetMW, src.Split(),
			cfg.CoinRefreshInterval, cfg.ConvergenceThreshold)
	case SchemeBCC:
		r.ctrl = controller.NewBCC(k, net, specs, cfg.BudgetMW,
			controller.BCCConfig{CtrlTile: cfg.CPUTile()})
	case SchemeCRR:
		r.ctrl = controller.NewCRR(k, net, specs, cfg.BudgetMW,
			controller.CRRConfig{CtrlTile: cfg.CPUTile()})
	case SchemeTS:
		r.ctrl = controller.NewTokenSmart(k, net, specs, cfg.BudgetMW, controller.TSConfig{})
	case SchemePT:
		r.ctrl = controller.NewPriceTheory(k, net, specs, cfg.BudgetMW,
			controller.PTConfig{MarketTile: cfg.CPUTile()})
	case SchemeStatic:
		r.ctrl = controller.NewStatic(k, specs, cfg.BudgetMW)
	default:
		panic(fmt.Sprintf("soc: unknown scheme %v", cfg.Scheme))
	}
	r.ctrl.OnAllocation(r.onAllocation)
	if r.injector != nil {
		// Harden the coin fabric first (it registers its own kill reaction),
		// then hook the harness-level consequences of a tile kill.
		if bc, ok := r.ctrl.(*bcAdapter); ok {
			bc.attachFaults(r.injector)
		}
		r.injector.OnTileKill(r.killTile)
	}
	return r
}

// killTile fail-stops a managed accelerator tile mid-run: the PM datapath
// dies (power drops to zero, the fault CSR latches), any pending actuation
// and completion events are cancelled, and a task caught on the tile is
// re-queued so a surviving tile of the same accelerator type picks it up.
// Kills addressed at unmanaged tiles only affect the NoC (the fault layer
// already swallows their traffic).
func (r *Runner) killTile(idx int) {
	t := r.tiles[idx]
	if t == nil || t.dead {
		return
	}
	now := r.kernel.Now()
	r.progressTo(t, now)
	t.dead = true
	r.tilesKilled++
	t.pm.Kill()
	t.freqEpoch++ // cancel in-flight actuation
	t.compEpoch++ // cancel in-flight completion and DMA callbacks
	t.freqMHz = 0
	t.computing = false
	if t.active {
		t.active = false
		t.taskID = -1
		t.remaining = 0
		r.tasksRequeued++
		r.activityChanges++
	}
	// Release the tile's power claim. Under BlitzCoin the emulator ignores
	// the dead tile and the audit re-mints its stranded coins; centralized
	// schemes get told directly so they can reallocate.
	r.ctrl.SetTarget(t.idx, 0)
	r.recordPower(t)
	r.dispatch()
}

// Controller exposes the PM scheme, mainly for tests.
func (r *Runner) Controller() controller.Controller { return r.ctrl }

// Kernel exposes the simulation clock.
func (r *Runner) Kernel() *sim.Kernel { return r.kernel }

// targetMW returns the tile's power target under the configured allocation
// strategy (Sec. V-B): AP gives every tile the same target; RP gives each
// tile a target proportional to its power at Fmax.
func (r *Runner) targetMW(t *accelTile) float64 {
	if r.cfg.Strategy == AbsoluteProportional {
		return r.cfg.CombinedPMaxMW() / float64(len(r.tileOrder))
	}
	return t.curve.PMax()
}

// progressTo banks task progress at the current effective frequency. Work
// cycles complete at freqMHz per microsecond, i.e. freq/800 per NoC cycle.
// Progress only accrues during the compute phase, not while DMA brackets
// the task.
func (r *Runner) progressTo(t *accelTile, now sim.Cycles) {
	if t.computing && now > t.lastProgress {
		t.remaining -= float64(now-t.lastProgress) * t.freqMHz / 800.0
	}
	t.lastProgress = now
}

// startDMA launches a burst of flits between a tile and its memory tile,
// invoking done when the last flit lands. Bursts alternate between the two
// DMA planes, as ESP splits accelerator DMA across planes.
func (r *Runner) startDMA(t *accelTile, toMem bool, flits int, done func()) {
	if t.memTile < 0 || flits <= 0 {
		r.kernel.Schedule(1, done)
		return
	}
	src, dst := t.memTile, t.idx
	if toMem {
		src, dst = t.idx, t.memTile
	}
	tr := &dmaTransfer{remaining: flits, done: done}
	for i := 0; i < flits; i++ {
		plane := noc.PlaneDMA0
		if i%2 == 1 {
			plane = noc.PlaneDMA1
		}
		r.net.SendData(plane, noc.KindOther, src, dst, tr)
	}
}

// recordPower appends the tile's current draw to its trace series.
func (r *Runner) recordPower(t *accelTile) {
	var p float64
	switch {
	case t.dead:
		p = 0
	case t.active:
		p = t.curve.PowerAt(t.freqMHz)
	default:
		p = t.curve.IdlePowerMW()
	}
	r.rec.Series(t.series).Record(r.kernel.Now(), p)
}

// onAllocation handles a power-allocation change from the PM scheme: it
// retargets the tile's regulator and applies the new effective frequency
// after the UVFR settling delay.
func (r *Runner) onAllocation(tileIdx int, mw float64) {
	t := r.tiles[tileIdx]
	if t == nil || t.dead {
		return
	}
	now := r.kernel.Now()
	r.progressTo(t, now)

	t.pm.SetPowerMW(mw)
	settle, _ := t.pm.Reg.SettleCycles(512)

	// Epoch-guard the actuation: only the newest settle event applies, and
	// pendFreq is exactly the frequency that event was armed with.
	t.pendFreq = t.pm.FreqMHz()
	t.freqEpoch++
	r.kernel.ScheduleOp(settle, r.opSettle, int32(t.idx), uint64(t.freqEpoch))
}

// settleDone applies a UVFR actuation once the regulator settles, unless a
// newer retarget superseded it.
func (r *Runner) settleDone(idx, epoch int) {
	t := r.tiles[idx]
	if t.freqEpoch != epoch {
		return
	}
	r.progressTo(t, r.kernel.Now())
	t.freqMHz = t.pendFreq
	r.recordPower(t)
	if t.computing {
		r.scheduleCompletion(t)
	}
}

// scheduleCompletion (re)arms the task-completion event at the current
// frequency.
func (r *Runner) scheduleCompletion(t *accelTile) {
	t.compEpoch++
	if t.freqMHz <= 0 {
		panic("soc: tile clock stalled with an active task")
	}
	eta := sim.Cycles(math.Ceil(t.remaining*800.0/t.freqMHz)) + 1
	r.kernel.ScheduleOp(eta, r.opComplete, int32(t.idx), uint64(t.compEpoch))
}

// completionDue fires when the task armed at this epoch should have finished
// at the frequency then in effect; a frequency change re-arms it instead.
func (r *Runner) completionDue(idx, epoch int) {
	t := r.tiles[idx]
	if t.compEpoch != epoch || !t.computing {
		return
	}
	r.progressTo(t, r.kernel.Now())
	if t.remaining <= 0.5 {
		r.completeTask(t)
	} else {
		r.scheduleCompletion(t)
	}
}

// startTask dispatches a ready task onto an idle tile: request power, fetch
// inputs over DMA, then compute.
func (r *Runner) startTask(taskID int, t *accelTile) {
	task := r.graph.Tasks[taskID]
	t.active = true
	t.computing = false
	t.taskID = taskID
	t.remaining = task.WorkCycles
	r.activityChanges++
	r.recordPower(t)
	r.ctrl.SetTarget(t.idx, r.targetMW(t))
	// Input DMA overlaps the power-allocation ramp; compute starts when
	// the data is in.
	epoch := t.compEpoch
	r.startDMA(t, false, int(task.WorkCycles/dmaWorkPerFlit), func() {
		if t.taskID != taskID || t.compEpoch != epoch {
			return
		}
		t.computing = true
		t.lastProgress = r.kernel.Now()
		r.scheduleCompletion(t)
	})
}

// completeTask finishes the compute phase: write results back over DMA,
// then release the tile's power target and dispatch unblocked work.
func (r *Runner) completeTask(t *accelTile) {
	taskID := t.taskID
	task := r.graph.Tasks[taskID]
	t.computing = false
	epoch := t.compEpoch
	r.startDMA(t, true, int(task.WorkCycles/dmaWorkPerFlit), func() {
		if t.taskID != taskID || t.compEpoch != epoch {
			return
		}
		r.done[taskID] = true
		t.active = false
		t.taskID = -1
		t.remaining = 0
		r.finished++
		r.activityChanges++
		r.recordPower(t)
		r.ctrl.SetTarget(t.idx, 0)
		if r.finished == len(r.graph.Tasks) {
			r.execEnd = r.kernel.Now()
			return
		}
		r.dispatch()
	})
}

// dispatch assigns every ready task to an idle tile of the matching
// accelerator type, in task-ID order.
func (r *Runner) dispatch() {
	for _, id := range r.graph.Ready(r.done) {
		if r.taskRunning(id) {
			continue
		}
		tile := r.idleTileFor(r.graph.Tasks[id].Accel)
		if tile == nil {
			continue
		}
		r.startTask(id, tile)
	}
}

func (r *Runner) taskRunning(id int) bool {
	for _, idx := range r.tileOrder {
		if t := r.tiles[idx]; t.active && t.taskID == id {
			return true
		}
	}
	return false
}

func (r *Runner) idleTileFor(accel string) *accelTile {
	for _, idx := range r.byAccel[accel] {
		if t := r.tiles[idx]; !t.active && !t.dead {
			return t
		}
	}
	return nil
}

// Run executes the workload to completion (or the MaxCycles bound) and
// returns the measured result.
func (r *Runner) Run(g *workload.Graph) Result {
	if r.ran {
		panic("soc: Runner.Run called twice; build a fresh Runner per run")
	}
	r.ran = true
	if err := g.Validate(); err != nil {
		panic(err)
	}
	for _, task := range g.Tasks {
		if len(r.byAccel[task.Accel]) == 0 {
			panic(fmt.Sprintf("soc: workload %s needs accelerator %q, absent from %s",
				g.Name, task.Accel, r.cfg.Name))
		}
	}
	r.graph = g
	r.done = make(map[int]bool)

	r.ctrl.Start()
	if r.injector != nil {
		r.injector.Arm(r.kernel)
	}
	for _, idx := range r.tileOrder {
		r.recordPower(r.tiles[idx])
	}
	r.kernel.Schedule(1, r.dispatch)

	deadline := r.cfg.MaxCycles
	r.kernel.RunUntil(func() bool {
		return r.finished == len(g.Tasks) || r.kernel.Now() >= deadline
	}, 0)

	completed := r.finished == len(g.Tasks)
	end := r.execEnd
	if !completed {
		end = r.kernel.Now()
	}
	return r.buildResult(g, end, completed)
}
