package soc

import (
	"math"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/controller"
	"blitzcoin/internal/fault"
	"blitzcoin/internal/noc"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/sim"
)

// bcAdapter exposes the distributed coin-exchange emulator through the
// controller.Controller interface so the SoC harness treats BlitzCoin and
// the centralized baselines uniformly. Every tile of the mesh participates
// in the exchange fabric; non-accelerator tiles keep max = 0 permanently,
// matching the fixed allocation the paper reserves for them (Sec. IV-C).
type bcAdapter struct {
	emu       *coin.Emulator
	specs     []controller.TileSpec
	byTile    map[int]int
	budget    float64
	mWPerCoin float64
	pool      int64

	onAlloc   func(tile int, mw float64)
	responses []sim.Cycles
	started   bool
}

var _ controller.Controller = (*bcAdapter)(nil)

// newBCAdapter builds the adapter over a shared kernel and network. The
// coin value is sized so the hungriest tile's full power fits in the 6-bit
// counter (63 coins), and the pool quantizes the budget at that value.
func newBCAdapter(k *sim.Kernel, net *noc.Network, specs []controller.TileSpec,
	budgetMW float64, src *rng.Source, refresh sim.Cycles, threshold float64) *bcAdapter {

	var maxP float64
	for _, s := range specs {
		if s.PMaxMW > maxP {
			maxP = s.PMaxMW
		}
	}
	cv := maxP / 63
	pool := int64(budgetMW/cv + 0.5)

	cfg := coin.Config{
		Mesh:            net.Mesh(),
		Mode:            coin.OneWay,
		RefreshInterval: refresh,
		DynamicTiming:   true,
		RandomPairing:   true,
		Threshold:       threshold,
		// Hardware semantics: 6-bit coin registers, and convergence is
		// judged on allocation deficits — surplus coins parked on idle
		// tiles are not a power-allocation error.
		CoinCap:     63,
		DeficitOnly: true,
	}
	a := &bcAdapter{
		emu:       coin.NewEmulatorOn(k, net, cfg, src),
		specs:     specs,
		byTile:    make(map[int]int, len(specs)),
		budget:    budgetMW,
		mWPerCoin: cv,
		pool:      pool,
	}
	for i, s := range specs {
		a.byTile[s.Tile] = i
	}
	a.emu.SetOnConverged(func(resp sim.Cycles) {
		a.responses = append(a.responses, resp)
	})
	return a
}

func (a *bcAdapter) Name() string      { return "BC" }
func (a *bcAdapter) BudgetMW() float64 { return a.budget }

// Start initializes the exchange fabric: all tiles idle (max 0) with the
// coin pool parked evenly on the managed tiles, ready to flow to whichever
// tile activates first.
func (a *bcAdapter) Start() {
	if a.started {
		return
	}
	a.started = true
	meshN := a.meshN()
	maxes := make([]int64, meshN)
	has := make([]int64, meshN)
	per := a.pool / int64(len(a.specs))
	rem := a.pool - per*int64(len(a.specs))
	for i, s := range a.specs {
		has[s.Tile] = per
		if int64(i) < rem {
			has[s.Tile]++
		}
	}
	a.emu.SetOnChange(func(tile int, coins int64) {
		if a.onAlloc == nil {
			return
		}
		if _, ok := a.byTile[tile]; ok {
			a.onAlloc(tile, float64(coins)*a.mWPerCoin)
		}
	})
	a.emu.Init(coin.Assignment{Max: maxes, Has: has})
}

// meshN returns the emulator's tile count (the full SoC mesh).
func (a *bcAdapter) meshN() int {
	has, _ := a.emu.Snapshot()
	return len(has)
}

// SetTarget converts the power target to a coin target and injects the
// activity change into the exchange fabric.
func (a *bcAdapter) SetTarget(tile int, mw float64) {
	if _, ok := a.byTile[tile]; !ok {
		panic("soc: SetTarget on unmanaged tile")
	}
	coins := int64(math.Round(mw / a.mWPerCoin))
	if coins > 63 {
		coins = 63
	}
	if coins < 0 {
		coins = 0
	}
	a.emu.SetMax(tile, coins)
}

// AllocationMW returns the tile's current coin holding in mW.
func (a *bcAdapter) AllocationMW(tile int) float64 {
	if _, ok := a.byTile[tile]; !ok {
		panic("soc: AllocationMW on unmanaged tile")
	}
	return float64(a.emu.Has(tile)) * a.mWPerCoin
}

func (a *bcAdapter) OnAllocation(fn func(tile int, mw float64)) { a.onAlloc = fn }

func (a *bcAdapter) LastResponseCycles() sim.Cycles {
	if len(a.responses) == 0 {
		return 0
	}
	return a.responses[len(a.responses)-1]
}

func (a *bcAdapter) ResponseSamples() []sim.Cycles { return a.responses }

// MWPerCoin exposes the coin value for the harness's LUT construction.
func (a *bcAdapter) MWPerCoin() float64 { return a.mWPerCoin }

// attachFaults hardens the exchange fabric against the runner's fault
// injector: the emulator registers its kill/stuck/slow reactions and enables
// its timeout, watchdog, and audit machinery. Must be called before Start.
func (a *bcAdapter) attachFaults(in *fault.Injector) { a.emu.AttachFaults(in) }

// Emulator exposes the underlying coin emulator for degraded-mode inspection
// (pool conservation, per-tile liveness) by tests and experiments.
func (a *bcAdapter) Emulator() *coin.Emulator { return a.emu }
