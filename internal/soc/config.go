// Package soc assembles full BlitzCoin-enabled systems-on-chip and runs
// workloads on them — the Go equivalent of the paper's full-SoC RTL
// simulations (Sec. V) and silicon measurements (Sec. VI-C).
//
// A SoC is a mesh of tiles (CPU, memory, I/O, and accelerator tiles, as in
// the ESP architecture of Fig. 12), a multi-plane NoC, one power-management
// scheme (BlitzCoin or a baseline controller), and per-accelerator-tile
// datapaths (coin LUT + UVFR regulator). The harness executes a workload
// DAG, driving activity changes into the PM scheme and integrating each
// tile's time-varying frequency into task progress and power traces.
package soc

import (
	"fmt"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/power"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/trace"
)

// TileKind classifies a tile in the grid (the four ESP tile types of
// Sec. IV-B, plus the scratchpad and unmanaged-accelerator tiles of the
// fabricated 6x6 SoC).
type TileKind int

// Tile kinds.
const (
	TileEmpty TileKind = iota
	TileCPU
	TileMem
	TileIO
	TileAccel     // accelerator under BlitzCoin power management
	TileAccelNoPM // accelerator outside the PM cluster (runs at nominal)
	TileSPM       // scratchpad memory tile
)

// String names the tile kind.
func (k TileKind) String() string {
	switch k {
	case TileEmpty:
		return "empty"
	case TileCPU:
		return "CPU"
	case TileMem:
		return "MEM"
	case TileIO:
		return "IO"
	case TileAccel:
		return "ACC"
	case TileAccelNoPM:
		return "ACC-noPM"
	case TileSPM:
		return "SPM"
	}
	return fmt.Sprintf("TileKind(%d)", int(k))
}

// TileConfig describes one grid position.
type TileConfig struct {
	Kind  TileKind
	Accel string // accelerator type for TileAccel/TileAccelNoPM
}

// Scheme selects the power-management scheme under test.
type Scheme int

// The evaluated schemes.
const (
	SchemeBC Scheme = iota // BlitzCoin: fully decentralized coin exchange
	SchemeBCC
	SchemeCRR
	SchemeTS
	SchemePT
	SchemeStatic
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeBC:
		return "BC"
	case SchemeBCC:
		return "BC-C"
	case SchemeCRR:
		return "C-RR"
	case SchemeTS:
		return "TS"
	case SchemePT:
		return "PT"
	case SchemeStatic:
		return "Static"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Strategy selects the power-allocation strategy (Sec. V-B).
type Strategy int

const (
	// AbsoluteProportional (AP) assigns every tile the same power target.
	AbsoluteProportional Strategy = iota
	// RelativeProportional (RP) assigns each tile a target proportional to
	// its power at Fmax — the workload-aware strategy the paper adopts
	// after showing it beats AP by 3.0-4.1% (Sec. VI-A).
	RelativeProportional
)

// String names the strategy.
func (s Strategy) String() string {
	if s == AbsoluteProportional {
		return "AP"
	}
	return "RP"
}

// Config describes one SoC-plus-experiment configuration.
type Config struct {
	Name  string
	Mesh  mesh.Mesh
	Tiles []TileConfig // len == Mesh.N()

	// BudgetMW is the accelerator power budget the scheme enforces.
	BudgetMW float64
	// Scheme is the PM scheme under test.
	Scheme Scheme
	// Strategy is the allocation strategy (AP or RP).
	Strategy Strategy
	// Seed drives all randomized behavior.
	Seed uint64

	// CoinRefreshInterval overrides BlitzCoin's base exchange interval
	// (cycles); zero selects 32.
	CoinRefreshInterval sim.Cycles
	// ConvergenceThreshold overrides BlitzCoin's Err threshold; zero
	// selects 1.0.
	ConvergenceThreshold float64
	// MaxCycles bounds a run; zero selects 80M cycles (100 ms).
	MaxCycles sim.Cycles

	// Faults, when non-nil and enabled, injects the given fault model into
	// the SoC: NoC-level packet faults plus tile kills that fail-stop both
	// the tile's PM datapath and its running task (the task is re-queued
	// onto a surviving tile of the same accelerator type). Under SchemeBC
	// the coin-exchange fabric is hardened as well, so the survivors'
	// budget is re-enforced by the audit; the centralized baselines have no
	// recovery machinery and degrade as their protocols allow.
	Faults *fault.Config

	// Stream, when active, mirrors the runner's power-trace recordings
	// onto a trace bus as live series points. The zero Stream is inert and
	// costs one nil check per Record — the run itself is unaffected either
	// way.
	Stream trace.Stream
}

// Validate checks structural consistency.
func (c *Config) Validate() error {
	if c.Mesh.N() == 0 {
		return fmt.Errorf("soc %s: empty mesh", c.Name)
	}
	if len(c.Tiles) != c.Mesh.N() {
		return fmt.Errorf("soc %s: %d tile configs for %d positions", c.Name, len(c.Tiles), c.Mesh.N())
	}
	if c.BudgetMW <= 0 {
		return fmt.Errorf("soc %s: non-positive budget", c.Name)
	}
	catalog := power.Catalog()
	accels := 0
	for i, t := range c.Tiles {
		if t.Kind == TileAccel || t.Kind == TileAccelNoPM {
			if _, ok := catalog[t.Accel]; !ok {
				return fmt.Errorf("soc %s: tile %d has unknown accelerator %q", c.Name, i, t.Accel)
			}
			if t.Kind == TileAccel {
				accels++
			}
		}
	}
	if accels == 0 {
		return fmt.Errorf("soc %s: no managed accelerator tiles", c.Name)
	}
	return nil
}

// AccelTiles returns the mesh indices of managed accelerator tiles in
// index order.
func (c *Config) AccelTiles() []int {
	var out []int
	for i, t := range c.Tiles {
		if t.Kind == TileAccel {
			out = append(out, i)
		}
	}
	return out
}

// CPUTile returns the first CPU tile's index (the controller location for
// centralized schemes), or 0 if none.
func (c *Config) CPUTile() int {
	for i, t := range c.Tiles {
		if t.Kind == TileCPU {
			return i
		}
	}
	return 0
}

// CombinedPMaxMW returns the summed maximum power of the managed
// accelerator tiles — the reference the paper's budget percentages are
// quoted against.
func (c *Config) CombinedPMaxMW() float64 {
	catalog := power.Catalog()
	var total float64
	for _, t := range c.Tiles {
		if t.Kind == TileAccel {
			total += catalog[t.Accel].PMax()
		}
	}
	return total
}

// SoC3x3 returns the 3x3-tile autonomous-vehicle SoC of Fig. 12: 3 FFT, 2
// Viterbi, and 1 NVDLA accelerator tiles plus CPU, memory, and I/O tiles.
// The budget (120 or 60 mW in the paper) is supplied by the caller.
func SoC3x3(budgetMW float64, scheme Scheme, seed uint64) Config {
	return Config{
		Name: "soc-3x3",
		Mesh: mesh.New(3, 3, true),
		Tiles: []TileConfig{
			{Kind: TileCPU},
			{Kind: TileAccel, Accel: "FFT"},
			{Kind: TileAccel, Accel: "FFT"},
			{Kind: TileAccel, Accel: "Viterbi"},
			{Kind: TileAccel, Accel: "NVDLA"},
			{Kind: TileAccel, Accel: "Viterbi"},
			{Kind: TileMem},
			{Kind: TileAccel, Accel: "FFT"},
			{Kind: TileIO},
		},
		BudgetMW: budgetMW,
		Scheme:   scheme,
		Strategy: RelativeProportional,
		Seed:     seed,
	}
}

// SoC4x4 returns the 4x4-tile computer-vision SoC of Fig. 12: 13
// accelerator tiles (4 Vision, 5 GEMM, 4 Conv2D) plus CPU, memory, and I/O.
// The paper evaluates budgets of 450 and 900 mW.
func SoC4x4(budgetMW float64, scheme Scheme, seed uint64) Config {
	tiles := []TileConfig{
		{Kind: TileCPU},
		{Kind: TileAccel, Accel: "Vision"},
		{Kind: TileAccel, Accel: "GEMM"},
		{Kind: TileAccel, Accel: "Conv2D"},
		{Kind: TileAccel, Accel: "GEMM"},
		{Kind: TileAccel, Accel: "Vision"},
		{Kind: TileAccel, Accel: "Conv2D"},
		{Kind: TileAccel, Accel: "GEMM"},
		{Kind: TileMem},
		{Kind: TileAccel, Accel: "Conv2D"},
		{Kind: TileAccel, Accel: "Vision"},
		{Kind: TileAccel, Accel: "GEMM"},
		{Kind: TileAccel, Accel: "Conv2D"},
		{Kind: TileAccel, Accel: "Vision"},
		{Kind: TileAccel, Accel: "GEMM"},
		{Kind: TileIO},
	}
	return Config{
		Name:     "soc-4x4",
		Mesh:     mesh.New(4, 4, true),
		Tiles:    tiles,
		BudgetMW: budgetMW,
		Scheme:   scheme,
		Strategy: RelativeProportional,
		Seed:     seed,
	}
}

// SoC6x6 returns the fabricated 64 mm^2 silicon prototype (Sec. V-D,
// Fig. 15): a 6x6 grid with a 10-tile PM cluster (1 NVDLA, 3 FFT, 6
// Viterbi) running BlitzCoin, 4 CVA6 CPU tiles, 1 I/O tile, 4 memory tiles,
// 4 scratchpad tiles, 8 unmanaged accelerator tiles, and an FFT tile
// without power management that serves as the overhead baseline.
func SoC6x6(budgetMW float64, scheme Scheme, seed uint64) Config {
	tiles := make([]TileConfig, 36)
	// PM cluster occupies the top-left 10 positions (rows 0-1 plus two).
	pm := []TileConfig{
		{Kind: TileAccel, Accel: "NVDLA"},
		{Kind: TileAccel, Accel: "FFT"},
		{Kind: TileAccel, Accel: "FFT"},
		{Kind: TileAccel, Accel: "FFT"},
		{Kind: TileAccel, Accel: "Viterbi"},
		{Kind: TileAccel, Accel: "Viterbi"},
		{Kind: TileAccel, Accel: "Viterbi"},
		{Kind: TileAccel, Accel: "Viterbi"},
		{Kind: TileAccel, Accel: "Viterbi"},
		{Kind: TileAccel, Accel: "Viterbi"},
	}
	copy(tiles, pm)
	// The rest of the chip.
	rest := []TileConfig{
		{Kind: TileCPU}, {Kind: TileCPU}, {Kind: TileCPU}, {Kind: TileCPU},
		{Kind: TileIO},
		{Kind: TileMem}, {Kind: TileMem}, {Kind: TileMem}, {Kind: TileMem},
		{Kind: TileSPM}, {Kind: TileSPM}, {Kind: TileSPM}, {Kind: TileSPM},
		{Kind: TileAccelNoPM, Accel: "FFT"}, // the FFT No-PM baseline tile
		{Kind: TileAccelNoPM, Accel: "GEMM"},
		{Kind: TileAccelNoPM, Accel: "Conv2D"},
		{Kind: TileAccelNoPM, Accel: "Vision"},
		{Kind: TileAccelNoPM, Accel: "GEMM"},
		{Kind: TileAccelNoPM, Accel: "Conv2D"},
		{Kind: TileAccelNoPM, Accel: "Vision"},
		{Kind: TileAccelNoPM, Accel: "GEMM"},
		{Kind: TileSPM}, {Kind: TileSPM},
		{Kind: TileMem}, {Kind: TileMem},
		{Kind: TileCPU},
	}
	copy(tiles[10:], rest)
	return Config{
		Name:     "soc-6x6-silicon",
		Mesh:     mesh.New(6, 6, true),
		Tiles:    tiles,
		BudgetMW: budgetMW,
		Scheme:   scheme,
		Strategy: RelativeProportional,
		Seed:     seed,
	}
}
