package soc

import (
	"fmt"

	"blitzcoin/internal/noc"
	"blitzcoin/internal/sim"
	"blitzcoin/internal/stats"
	"blitzcoin/internal/trace"
	"blitzcoin/internal/workload"
)

// Result summarizes one SoC workload run — the quantities Figs. 16-20
// report: execution time, PM response time, and the power trace with its
// budget utilization.
type Result struct {
	SoC      string
	Scheme   string
	Strategy string
	Workload string

	// Completed reports whether every task finished within MaxCycles.
	Completed bool
	// ExecCycles is the workload makespan.
	ExecCycles sim.Cycles

	// Responses are the PM response times of every activity change the
	// scheme completed a reallocation for.
	Responses []sim.Cycles

	// Power statistics over the execution window.
	AvgPowerMW  float64
	PeakPowerMW float64
	BudgetMW    float64

	// ActivityChanges counts task starts and ends.
	ActivityChanges int

	// Fault-injection outcome (zero on a healthy run).
	TilesKilled   int // managed accelerator tiles fail-stopped mid-run
	TasksRequeued int // tasks whose tile died and that were re-dispatched

	// Recorder holds the per-tile power traces (Fig. 16-style).
	Recorder *trace.Recorder
	// Total is the SoC-level accelerator power trace.
	Total *trace.Series
	// NoC summarizes network activity: PM-plane coin traffic plus the DMA
	// bursts bracketing every task.
	NoC noc.Stats
}

// ExecMicros returns the makespan in microseconds.
func (r Result) ExecMicros() float64 { return sim.CyclesToMicros(r.ExecCycles) }

// MeanResponseMicros returns the average PM response time in microseconds,
// or 0 with no samples.
func (r Result) MeanResponseMicros() float64 {
	if len(r.Responses) == 0 {
		return 0
	}
	var s stats.Sample
	for _, c := range r.Responses {
		s.Add(sim.CyclesToMicros(c))
	}
	return s.Mean()
}

// MedianResponseMicros returns the median PM response time in microseconds,
// or 0 with no samples. The median matches how the paper reports a single
// representative transition (Fig. 20) better than the mean, which long-haul
// coin-transport outliers skew.
func (r Result) MedianResponseMicros() float64 {
	if len(r.Responses) == 0 {
		return 0
	}
	var s stats.Sample
	for _, c := range r.Responses {
		s.Add(sim.CyclesToMicros(c))
	}
	return s.Median()
}

// MaxResponseMicros returns the worst PM response time in microseconds.
func (r Result) MaxResponseMicros() float64 {
	var m float64
	for _, c := range r.Responses {
		if us := sim.CyclesToMicros(c); us > m {
			m = us
		}
	}
	return m
}

// UtilizationPct returns average power as a percentage of the budget — the
// P_avg/P_budget metric the silicon measurements report at 97% (Fig. 19).
func (r Result) UtilizationPct() float64 {
	if r.BudgetMW == 0 {
		return 0
	}
	return 100 * r.AvgPowerMW / r.BudgetMW
}

// CapExceeded reports whether the instantaneous accelerator power ever
// exceeded the budget by more than tolFrac (e.g. 0.05 for 5%). Transient
// excursions within the tolerance are expected while actuation settles.
func (r Result) CapExceeded(tolFrac float64) bool {
	return r.PeakPowerMW > r.BudgetMW*(1+tolFrac)
}

// LongestCapExcursion returns the longest contiguous span of cycles during
// which the SoC power trace exceeded the budget by more than tolFrac. This
// is the degraded-mode metric: faults may cause overshoot, but the recovery
// machinery must pull the survivors back under the cap within a bounded
// window — a permanent excursion means a tile's allocation leaked.
func (r Result) LongestCapExcursion(tolFrac float64) sim.Cycles {
	if r.Total == nil {
		return 0
	}
	limit := r.BudgetMW * (1 + tolFrac)
	var longest, start sim.Cycles
	above := false
	closeSpan := func(at sim.Cycles) {
		if above && at-start > longest {
			longest = at - start
		}
		above = false
	}
	for _, p := range r.Total.Points {
		at := sim.Cycles(p.Cycle)
		if at >= r.ExecCycles {
			break
		}
		if p.Value > limit {
			if !above {
				start, above = at, true
			}
		} else {
			closeSpan(at)
		}
	}
	closeSpan(r.ExecCycles)
	return longest
}

// String renders the one-line summary the CLI tools print.
func (r Result) String() string {
	return fmt.Sprintf("%s %s %s %s: exec=%.1fus resp(mean)=%.2fus resp(max)=%.2fus avgP=%.1fmW util=%.1f%% changes=%d",
		r.SoC, r.Scheme, r.Strategy, r.Workload,
		r.ExecMicros(), r.MeanResponseMicros(), r.MaxResponseMicros(),
		r.AvgPowerMW, r.UtilizationPct(), r.ActivityChanges)
}

// buildResult assembles the Result from the run state.
func (r *Runner) buildResult(g *workload.Graph, end sim.Cycles, completed bool) Result {
	total := r.rec.TotalSeries("total")
	res := Result{
		SoC:             r.cfg.Name,
		Scheme:          r.ctrl.Name(),
		Strategy:        r.cfg.Strategy.String(),
		Workload:        g.Name,
		Completed:       completed,
		ExecCycles:      end,
		Responses:       append([]sim.Cycles(nil), r.ctrl.ResponseSamples()...),
		BudgetMW:        r.ctrl.BudgetMW(),
		ActivityChanges: r.activityChanges,
		TilesKilled:     r.tilesKilled,
		TasksRequeued:   r.tasksRequeued,
		Recorder:        r.rec,
		Total:           total,
		NoC:             r.net.Stats(),
	}
	if end > 0 {
		res.AvgPowerMW = total.Mean(0, end)
		res.PeakPowerMW = total.Max(0, end)
	}
	return res
}
