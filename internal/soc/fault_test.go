package soc

import (
	"testing"

	"blitzcoin/internal/fault"
	"blitzcoin/internal/workload"
)

// Acceptance criterion: killing 3 of the 9 tiles of the 3x3 SoC mid-workload
// must never leave the surviving tiles' total power above the cap beyond a
// bounded window. The killed set (two FFTs and a Viterbi) leaves at least one
// tile of every accelerator type alive, so the re-queued tasks can finish.
func TestDegradedModeKillThreeOfNine(t *testing.T) {
	cfg := SoC3x3(120, SchemeBC, 7)
	cfg.Faults = &fault.Config{
		TileKills: []fault.TileFault{
			{Tile: 1, At: 60_000},  // FFT
			{Tile: 3, At: 100_000}, // Viterbi
			{Tile: 7, At: 100_000}, // FFT
		},
	}
	r := New(cfg)
	g := workload.Repeat(workload.AutonomousVehicleParallel(), 4)
	res := r.Run(g)

	if res.TilesKilled != 3 {
		t.Fatalf("TilesKilled=%d, want 3 (%s)", res.TilesKilled, res.String())
	}
	if !res.Completed {
		t.Fatalf("survivors did not finish the workload: %s", res.String())
	}
	// The budget must be re-enforced within a bounded window. The tolerance
	// band matters: under full occupancy the harness's idle-power floor plus
	// UVFR ramp overlap keeps even healthy runs >5% over budget for long
	// stretches, so the cap criterion lives at the 20%/35% bands the healthy
	// tests also use. There, any excursion must die within roughly one audit
	// period (256 cycles) plus regulator settling (<=512 cycles).
	const boundCycles = 2_000 // ~2.5 us at 800 MHz, generous margin
	if exc := res.LongestCapExcursion(0.20); exc > boundCycles {
		t.Fatalf("power stayed >20%% above cap for %d cycles, bound %d", exc, boundCycles)
	}
	if exc := res.LongestCapExcursion(0.35); exc > boundCycles/2 {
		t.Fatalf("power stayed >35%% above cap for %d cycles", exc)
	}
	// Dead tiles draw nothing from the moment they die.
	for _, name := range []string{"t01-FFT", "t03-Viterbi", "t07-FFT"} {
		if p := res.Recorder.Series(name).Last(); p != 0 {
			t.Fatalf("killed tile %s still draws %.2f mW", name, p)
		}
	}
	// The kill propagated into the coin fabric, not just the harness.
	emu := r.Controller().(*bcAdapter).Emulator()
	for _, idx := range []int{1, 3, 7} {
		if !emu.TileDead(idx) {
			t.Fatalf("coin fabric does not know tile %d died", idx)
		}
	}
	if res.TasksRequeued == 0 {
		t.Fatal("kills at 60k/100k cycles should have caught running tasks")
	}
}

// A lossy PM plane (1% drops) must not break the SoC harness: the hardened
// exchange retries through the loss and the workload completes under the cap.
func TestDegradedModePlaneDrops(t *testing.T) {
	cfg := SoC3x3(120, SchemeBC, 7)
	cfg.Faults = &fault.Config{Seed: 3, DropRate: 0.01}
	r := New(cfg)
	res := r.Run(workload.Repeat(workload.AutonomousVehicleParallel(), 2))
	if !res.Completed {
		t.Fatalf("did not complete under 1%% drops: %s", res.String())
	}
	if res.CapExceeded(0.35) {
		t.Fatalf("cap broken under drops: peak %.1f mW", res.PeakPowerMW)
	}
	if res.NoC.Dropped == 0 {
		t.Fatal("fault model injected no drops")
	}
}

// Degraded-mode runs are as deterministic as healthy ones: the same fault
// seed reproduces the same schedule, makespan, and power profile.
func TestDegradedModeDeterministic(t *testing.T) {
	run := func() Result {
		cfg := SoC3x3(120, SchemeBC, 7)
		cfg.Faults = &fault.Config{
			Seed:      9,
			DropRate:  0.005,
			TileKills: []fault.TileFault{{Tile: 5, At: 50_000}},
		}
		return New(cfg).Run(workload.Repeat(workload.AutonomousVehicleParallel(), 2))
	}
	a, b := run(), run()
	if a.ExecCycles != b.ExecCycles || a.AvgPowerMW != b.AvgPowerMW ||
		a.TilesKilled != b.TilesKilled || a.TasksRequeued != b.TasksRequeued {
		t.Fatalf("same fault seed diverged:\n%s\n%s", a.String(), b.String())
	}
	if a.TilesKilled != 1 {
		t.Fatalf("kill did not fire: %s", a.String())
	}
}

// A zero-fault config must not perturb a healthy run: the injector draws from
// its own RNG stream and an empty schedule arms nothing.
func TestZeroFaultConfigMatchesHealthySoC(t *testing.T) {
	g := workload.AutonomousVehicleParallel()
	healthy := New(SoC3x3(120, SchemeBC, 7)).Run(g)
	cfg := SoC3x3(120, SchemeBC, 7)
	cfg.Faults = &fault.Config{}
	faulted := New(cfg).Run(g)
	if healthy.ExecCycles != faulted.ExecCycles || healthy.AvgPowerMW != faulted.AvgPowerMW {
		t.Fatalf("empty fault config perturbed the run:\n%s\n%s",
			healthy.String(), faulted.String())
	}
}
