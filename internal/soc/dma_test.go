package soc

import (
	"testing"

	"blitzcoin/internal/noc"
	"blitzcoin/internal/power"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/workload"
)

func TestDMATrafficFlowsOnDMAPlanes(t *testing.T) {
	r := New(SoC3x3(120, SchemeBC, 1))
	res := r.Run(workload.AutonomousVehicleParallel())
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	d0 := res.NoC.PerPlaneSent[noc.PlaneDMA0]
	d1 := res.NoC.PerPlaneSent[noc.PlaneDMA1]
	if d0 == 0 || d1 == 0 {
		t.Fatalf("DMA planes unused: %d/%d", d0, d1)
	}
	// Every task moves WorkCycles/256 flits in and out, split across the
	// two planes.
	var wantFlits uint64
	for _, task := range workload.AutonomousVehicleParallel().Tasks {
		wantFlits += 2 * uint64(task.WorkCycles/256)
	}
	if got := d0 + d1; got != wantFlits {
		t.Fatalf("DMA flits = %d, want %d", got, wantFlits)
	}
	// PM coin traffic is also present on plane 5.
	if res.NoC.PerPlaneSent[noc.PlanePM] == 0 {
		t.Fatal("no PM traffic recorded")
	}
}

func TestDMALengthensExecutionRealistically(t *testing.T) {
	// DMA brackets add time proportional to data volume: the makespan
	// must exceed the pure-compute critical path at Fmax, but not wildly.
	g := workload.AutonomousVehicleParallel()
	r := New(SoC3x3(400, SchemeBC, 2)) // ample budget: compute at ~Fmax
	res := r.Run(g)
	cp := g.CriticalPathWork() / power.NVDLA().FMax() // us, worst-clock bound
	if res.ExecMicros() < cp {
		t.Fatalf("exec %.1fus below the compute-only bound %.1fus", res.ExecMicros(), cp)
	}
	if res.ExecMicros() > cp*2 {
		t.Fatalf("exec %.1fus more than doubles the compute bound %.1fus — DMA model runaway",
			res.ExecMicros(), cp)
	}
}

func TestRandomDAGStress(t *testing.T) {
	// Property-style stress: random workloads over the 3x3 accelerator
	// set always complete under every scheme, conserve the cap, and keep
	// the harness invariants.
	accels := []string{"FFT", "Viterbi", "NVDLA"}
	for seed := uint64(0); seed < 6; seed++ {
		src := rng.New(1000 + seed)
		g := workload.RandomDAG(src, 12, accels, 10e3, 60e3, 3)
		for _, scheme := range []Scheme{SchemeBC, SchemeCRR} {
			r := New(SoC3x3(120, scheme, seed))
			res := r.Run(g)
			if !res.Completed {
				t.Fatalf("seed %d scheme %v: random DAG incomplete", seed, scheme)
			}
			// C-RR's multi-microsecond polling delay leaves stale grants
			// running while new ones ramp, so its transient overshoot on
			// bursty random churn is larger — exactly the "periods of
			// suboptimal operation" Sec. II-B attributes to centralized
			// control.
			tol := 0.40
			if scheme == SchemeCRR {
				tol = 0.80
			}
			if res.CapExceeded(tol) {
				t.Fatalf("seed %d scheme %v: peak %.1f mW far over budget",
					seed, scheme, res.PeakPowerMW)
			}
		}
	}
}

func TestRandomDAGValidAndDeterministic(t *testing.T) {
	a := workload.RandomDAG(rng.New(5), 40, []string{"FFT", "GEMM"}, 1e3, 9e3, 4)
	b := workload.RandomDAG(rng.New(5), 40, []string{"FFT", "GEMM"}, 1e3, 9e3, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Tasks {
		if a.Tasks[i].WorkCycles != b.Tasks[i].WorkCycles || a.Tasks[i].Accel != b.Tasks[i].Accel {
			t.Fatalf("nondeterministic task %d", i)
		}
	}
}

func TestRandomDAGPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	workload.RandomDAG(rng.New(1), 0, []string{"FFT"}, 1, 2, 1)
}
