package uvfr

import (
	"math"
	"testing"

	"blitzcoin/internal/power"
	"blitzcoin/internal/sim"
)

func newReg() *Regulator {
	return NewRegulator(DefaultConfig(800, 0.5, 1.0))
}

func TestRingOscillatorMonotone(t *testing.T) {
	ro := RingOscillator{Vt: 0.3, Alpha: 1.3, FNomMHz: 800, VNom: 1.0}
	prev := -1.0
	for v := 0.2; v <= 1.0; v += 0.05 {
		f := ro.FreqMHz(v)
		if f < prev {
			t.Fatalf("RO frequency decreased at V=%.2f", v)
		}
		prev = f
	}
	if ro.FreqMHz(0.2) != 0 {
		t.Fatal("RO should stall below threshold")
	}
	if got := ro.FreqMHz(1.0); math.Abs(got-800) > 1e-9 {
		t.Fatalf("RO at VNom = %v, want 800", got)
	}
}

func TestLDOCodeVoltageMapping(t *testing.T) {
	l := LDO{VinV: 1.05, VMin: 0.5, VMax: 1.0, Bits: 8, SlewCodes: 255}
	l.SetCode(0)
	if got := l.Vout(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("code 0 -> %v V, want 0.5", got)
	}
	l.SetCode(255)
	if got := l.Vout(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("code 255 -> %v V, want 1.0", got)
	}
}

func TestLDOSlewLimit(t *testing.T) {
	l := LDO{VinV: 1.05, VMin: 0.5, VMax: 1.0, Bits: 8, SlewCodes: 16}
	got := l.SetCode(255)
	if got != 16 {
		t.Fatalf("slew-limited code = %d, want 16", got)
	}
	got = l.SetCode(0)
	if got != 0 {
		t.Fatalf("downward slew code = %d, want 0", got)
	}
}

func TestLDODropoutClamp(t *testing.T) {
	l := LDO{VinV: 0.8, VMin: 0.5, VMax: 1.0, Bits: 8, SlewCodes: 255}
	l.SetCode(255)
	if got := l.Vout(); got > 0.75+1e-9 {
		t.Fatalf("Vout %v exceeds Vin - dropout", got)
	}
}

func TestTDCQuantization(t *testing.T) {
	d := TDC{WindowCycles: 16}
	// 800 MHz over a 16-cycle window of the 800 MHz reference: 16 counts.
	if got := d.Count(800); got != 16 {
		t.Fatalf("TDC(800MHz) = %d, want 16", got)
	}
	if got := d.MHzPerCount(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("MHz/count = %v, want 50", got)
	}
	if d.Count(49) != 0 {
		t.Fatal("sub-resolution frequency should read 0")
	}
}

func TestRegulatorSettlesToTarget(t *testing.T) {
	r := newReg()
	r.SetTargetMHz(600)
	cycles, ok := r.SettleCycles(500)
	if !ok {
		t.Fatalf("did not settle; freq %.1f", r.FreqMHz())
	}
	if cycles == 0 {
		t.Fatal("settling took zero cycles")
	}
	tol := r.cfg.TDC.MHzPerCount() * 2
	if math.Abs(r.FreqMHz()-600) > tol {
		t.Fatalf("settled at %.1f MHz, want 600 +/- %.0f", r.FreqMHz(), tol)
	}
}

func TestRegulatorTracksSequenceOfTargets(t *testing.T) {
	r := newReg()
	for _, target := range []float64{400, 750, 200, 640} {
		r.SetTargetMHz(target)
		if _, ok := r.SettleCycles(1000); !ok {
			t.Fatalf("did not settle at %v MHz", target)
		}
		tol := r.cfg.TDC.MHzPerCount() * 2
		if math.Abs(r.FreqMHz()-target) > tol {
			t.Fatalf("freq %.1f after targeting %v", r.FreqMHz(), target)
		}
	}
}

func TestSettleLatencyMicrosecondScale(t *testing.T) {
	// The UVFR transition should land in the sub-microsecond-to-few-
	// microsecond range at 800 MHz, matching the measured LDO transition
	// of Fig. 19.
	r := newReg()
	r.SetTargetMHz(780)
	cycles, ok := r.SettleCycles(2000)
	if !ok {
		t.Fatal("did not settle")
	}
	us := sim.CyclesToMicros(cycles)
	if us <= 0 || us > 10 {
		t.Fatalf("settle latency %.3f us, want within (0, 10]", us)
	}
}

func TestDroopSlowsClockImmediately(t *testing.T) {
	// The UVFR property (Sec. II-C, IV-A): a voltage droop stretches the
	// clock instead of breaking timing.
	r := newReg()
	r.SetTargetMHz(700)
	r.SettleCycles(1000)
	before := r.FreqMHz()
	r.InjectDroop(0.08)
	after := r.FreqMHz()
	if after >= before {
		t.Fatalf("droop did not slow the clock: %.1f -> %.1f", before, after)
	}
	// The loop recovers.
	if _, ok := r.SettleCycles(1000); !ok {
		t.Fatal("did not recover from droop")
	}
	tol := r.cfg.TDC.MHzPerCount() * 2
	if math.Abs(r.FreqMHz()-700) > tol {
		t.Fatalf("post-droop freq %.1f, want about 700", r.FreqMHz())
	}
}

func TestInjectDroopPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative droop did not panic")
		}
	}()
	newReg().InjectDroop(-0.1)
}

func TestConfigForCurveTracksAccelerator(t *testing.T) {
	for name, c := range power.Catalog() {
		cfg := ConfigForCurve(c)
		r := NewRegulator(cfg)
		mid := (c.FMin() + c.FMax()) / 2
		r.SetTargetMHz(mid)
		if _, ok := r.SettleCycles(2000); !ok {
			t.Fatalf("%s: regulator did not settle at %.0f MHz", name, mid)
		}
		tol := cfg.TDC.MHzPerCount() * 2
		if math.Abs(r.FreqMHz()-mid) > tol {
			t.Fatalf("%s: settled at %.1f, want %.1f", name, r.FreqMHz(), mid)
		}
	}
}

func TestPIDReset(t *testing.T) {
	p := PID{KP: 1, KI: 1}
	p.Step(10)
	p.Step(10)
	p.Reset()
	if out := p.Step(0); out != 0 {
		t.Fatalf("post-reset output %v, want 0", out)
	}
}

func TestPIDIntegratorWindupClamp(t *testing.T) {
	p := PID{KP: 0, KI: 1}
	var out float64
	for i := 0; i < 1000; i++ {
		out = p.Step(100)
	}
	if out > 64+1e-9 {
		t.Fatalf("integrator wound up to %v", out)
	}
}

func TestNewRegulatorPanicsOnIncompleteConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete config did not panic")
		}
	}()
	NewRegulator(Config{})
}

func TestStepsCounter(t *testing.T) {
	r := newReg()
	r.SetTargetMHz(500)
	r.Step()
	r.Step()
	if r.Steps() != 2 {
		t.Fatalf("steps = %d", r.Steps())
	}
}
