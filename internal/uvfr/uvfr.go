// Package uvfr models the Unified Voltage and Frequency Regulation scheme of
// Sec. IV-A (Fig. 9, right).
//
// Conventional per-tile DVFS uses two control loops: a voltage regulator
// locking Vlogic to a target voltage, and a PLL locking Flogic to a target
// frequency. The UVFR collapses them into one loop around a frequency
// target:
//
//   - a free-running Ring Oscillator (RO), supplied by the tile voltage Vi
//     and tuned as a Critical Path Replica (CPR), generates the tile clock;
//     its frequency inherently tracks Vi, so voltage droops stretch the
//     clock instead of violating timing;
//   - a counter-based Time-to-Digital Converter (TDC) in the tile domain
//     produces a digital readout of the current clock frequency;
//   - an LDO controller in the NoC domain compares the readout against
//     Ftarget (from the coin LUT) and adjusts the LDO code with a PID
//     controller; the LDO sets Vi from the fixed input rail.
//
// The models here are behavioral — the paper itself simulates the RO as a
// time-annotated block — but they preserve the loop structure, quantization
// (8-bit LDO code, counter TDC), slew limits, and settling dynamics that the
// SoC-level experiments observe (e.g. the LDO transition of Fig. 19).
package uvfr

import (
	"fmt"
	"math"

	"blitzcoin/internal/power"
	"blitzcoin/internal/sim"
)

// RingOscillator is a critical-path-replica clock source: for any supply
// voltage it oscillates near the tile's maximum safe frequency at that
// voltage, following the alpha-power law.
type RingOscillator struct {
	Vt      float64 // threshold voltage (V)
	Alpha   float64 // velocity-saturation exponent
	FNomMHz float64 // frequency at VNom
	VNom    float64 // nominal (maximum) supply
}

// FreqMHz returns the oscillation frequency at supply v. Below threshold
// the oscillator stalls (0 MHz).
func (r RingOscillator) FreqMHz(v float64) float64 {
	if v <= r.Vt {
		return 0
	}
	return r.FNomMHz * math.Pow((v-r.Vt)/(r.VNom-r.Vt), r.Alpha)
}

// LDO is a digital low-drop-out regulator: an 8-bit code selects the output
// voltage between VMin and VMax, subject to a per-step slew limit. The
// fully-synthesizable LDO of the paper costs 0.01-0.03% of a 1 mm^2 tile.
type LDO struct {
	VinV       float64 // fixed input rail
	VMin, VMax float64 // output range
	Bits       int     // code width (8 in the implementation)
	SlewCodes  int     // max code movement per control step

	code int
}

// MaxCode returns the largest code value.
func (l *LDO) MaxCode() int { return 1<<l.Bits - 1 }

// Code returns the current code.
func (l *LDO) Code() int { return l.code }

// SetCode requests a new code; movement is clamped to the slew limit and
// the valid range. It returns the code actually reached.
func (l *LDO) SetCode(c int) int {
	if c < 0 {
		c = 0
	}
	if c > l.MaxCode() {
		c = l.MaxCode()
	}
	d := c - l.code
	if l.SlewCodes > 0 {
		if d > l.SlewCodes {
			d = l.SlewCodes
		}
		if d < -l.SlewCodes {
			d = -l.SlewCodes
		}
	}
	l.code += d
	return l.code
}

// Vout returns the regulated output voltage for the current code, clamped
// below the input rail minus dropout.
func (l *LDO) Vout() float64 {
	v := l.VMin + (l.VMax-l.VMin)*float64(l.code)/float64(l.MaxCode())
	const dropout = 0.05
	if max := l.VinV - dropout; v > max {
		v = max
	}
	return v
}

// TDC is a counter-based time-to-digital converter: it counts tile-clock
// edges within a measurement window of the fixed NoC clock, yielding a
// quantized frequency readout. This is the simple digital comparator that
// makes UVFR cheap (0.49% area including the coin logic).
type TDC struct {
	WindowCycles int // measurement window in NoC cycles
}

// Count returns the readout for a tile clock of fMHz.
func (t TDC) Count(fMHz float64) int {
	return int(fMHz * float64(t.WindowCycles) / (sim.NoCFrequencyHz / 1e6))
}

// CountsFor returns the target readout corresponding to a frequency target.
func (t TDC) CountsFor(fTargetMHz float64) int { return t.Count(fTargetMHz) }

// MHzPerCount returns the quantization step of the readout.
func (t TDC) MHzPerCount() float64 {
	return (sim.NoCFrequencyHz / 1e6) / float64(t.WindowCycles)
}

// PID is the discrete controller adjusting the LDO code from the TDC error.
type PID struct {
	KP, KI, KD float64

	integ, prevErr float64
	primed         bool
}

// Step consumes the current error (in TDC counts) and returns the code
// adjustment. The integrator is clamped to avoid windup across large
// frequency steps.
func (p *PID) Step(err float64) float64 {
	p.integ += err
	const windup = 16
	if p.integ > windup {
		p.integ = windup
	}
	if p.integ < -windup {
		p.integ = -windup
	}
	var d float64
	if p.primed {
		d = err - p.prevErr
	}
	p.prevErr = err
	p.primed = true
	return p.KP*err + p.KI*p.integ + p.KD*d
}

// Reset clears controller state (used when a tile is power-managed off).
func (p *PID) Reset() {
	p.integ, p.prevErr, p.primed = 0, 0, false
}

// Config parameterizes a Regulator.
type Config struct {
	RO  RingOscillator
	LDO LDO
	TDC TDC
	PID PID
	// PeriodCycles is the control-loop period in NoC cycles.
	PeriodCycles sim.Cycles
	// SettleCounts is the TDC-error tolerance considered "settled".
	SettleCounts int
	// SettleSteps is how many consecutive in-tolerance steps settle needs.
	SettleSteps int
}

// DefaultConfig returns a regulator configuration for an accelerator whose
// maximum frequency/voltage operating point is (fMaxMHz, vMax) with minimum
// voltage vMin, typical of the paper's 12 nm tiles.
func DefaultConfig(fMaxMHz, vMin, vMax float64) Config {
	return Config{
		RO:           RingOscillator{Vt: 0.30, Alpha: 1.3, FNomMHz: fMaxMHz, VNom: vMax},
		LDO:          LDO{VinV: vMax + 0.05, VMin: vMin, VMax: vMax, Bits: 8, SlewCodes: 16},
		TDC:          TDC{WindowCycles: 16},
		PID:          PID{KP: 6, KI: 0.4, KD: 0.5},
		PeriodCycles: 16,
		SettleCounts: 1,
		SettleSteps:  3,
	}
}

// ConfigForCurve derives a regulator configuration from an accelerator's
// power/frequency characterization, so the RO tracks that tile's critical
// path.
func ConfigForCurve(c *power.Curve) Config {
	vMin := c.Points[0].V
	vMax := c.Points[len(c.Points)-1].V
	return DefaultConfig(c.FMax(), vMin, vMax)
}

// Regulator is one tile's UVFR instance.
type Regulator struct {
	cfg Config

	targetMHz float64
	droopV    float64 // transient rail droop, decays each step
	settled   int     // consecutive in-tolerance steps
	steps     uint64
}

// NewRegulator builds a regulator. It panics on degenerate configuration.
func NewRegulator(cfg Config) *Regulator {
	if cfg.PeriodCycles == 0 || cfg.TDC.WindowCycles == 0 || cfg.LDO.Bits == 0 {
		panic(fmt.Sprintf("uvfr: incomplete config %+v", cfg))
	}
	return &Regulator{cfg: cfg}
}

// SetTargetMHz changes the frequency target (from the coin LUT). The loop
// starts slewing at the next Step.
func (r *Regulator) SetTargetMHz(f float64) {
	r.targetMHz = f
	r.settled = 0
}

// TargetMHz returns the current target.
func (r *Regulator) TargetMHz() float64 { return r.targetMHz }

// Vout returns the tile supply voltage including any transient droop.
func (r *Regulator) Vout() float64 { return r.cfg.LDO.Vout() - r.droopV }

// FreqMHz returns the current tile clock frequency: the RO output at the
// present (possibly drooped) supply. This is UVFR's defining property — the
// clock tracks the voltage with no explicit re-programming.
func (r *Regulator) FreqMHz() float64 { return r.cfg.RO.FreqMHz(r.Vout()) }

// Readout returns the TDC count for the current frequency.
func (r *Regulator) Readout() int { return r.cfg.TDC.Count(r.FreqMHz()) }

// PeriodCycles returns the control period.
func (r *Regulator) PeriodCycles() sim.Cycles { return r.cfg.PeriodCycles }

// Settled reports whether the loop has been within tolerance for the
// required number of consecutive steps.
func (r *Regulator) Settled() bool { return r.settled >= r.cfg.SettleSteps }

// Steps returns how many control steps have run.
func (r *Regulator) Steps() uint64 { return r.steps }

// InjectDroop applies a transient supply droop (V), e.g. from a sudden
// activity change on a shared rail. The RO immediately slows, protecting
// timing; the droop decays over subsequent control steps.
func (r *Regulator) InjectDroop(dv float64) {
	if dv < 0 {
		panic("uvfr: negative droop")
	}
	r.droopV += dv
}

// Step runs one control period: read the TDC, run the PID, move the LDO
// code, and decay any transient droop. It returns the new tile frequency.
func (r *Regulator) Step() float64 {
	r.steps++
	errCounts := float64(r.cfg.TDC.CountsFor(r.targetMHz) - r.Readout())
	delta := r.cfg.PID.Step(errCounts)
	code := r.cfg.LDO.Code() + int(math.Round(delta))
	r.cfg.LDO.SetCode(code)
	// Droop recovery: the package/board network restores the rail with a
	// time constant of a few control periods.
	r.droopV *= 0.5
	if r.droopV < 1e-4 {
		r.droopV = 0
	}
	if math.Abs(errCounts) <= float64(r.cfg.SettleCounts) {
		r.settled++
	} else {
		r.settled = 0
	}
	return r.FreqMHz()
}

// SettleCycles steps the loop until settled or maxSteps, returning the
// simulated cycles consumed and whether it settled. This is the actuation
// latency the SoC harness charges for a DVFS transition.
func (r *Regulator) SettleCycles(maxSteps int) (sim.Cycles, bool) {
	for i := 0; i < maxSteps; i++ {
		r.Step()
		if r.Settled() {
			return sim.Cycles(i+1) * r.cfg.PeriodCycles, true
		}
	}
	return sim.Cycles(maxSteps) * r.cfg.PeriodCycles, false
}
