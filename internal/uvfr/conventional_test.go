package uvfr

import (
	"math"
	"testing"
)

func newConv() *Conventional {
	return NewConventional(800, 0.5, 1.0, 0.05)
}

func TestConventionalHoldsCommandedFrequency(t *testing.T) {
	c := newConv()
	c.SetTargetMHz(600)
	if c.FreqMHz() != 600 {
		t.Fatalf("freq = %v", c.FreqMHz())
	}
}

func TestConventionalVoltageIncludesGuardband(t *testing.T) {
	c := newConv()
	c.SetTargetMHz(600)
	need := c.voltageFor(600)
	if got := c.Vout(); math.Abs(got-(need+0.05)) > 1e-9 {
		t.Fatalf("Vout = %v, want timing voltage %v + 50mV guardband", got, need)
	}
}

func TestConventionalRelockDeadTime(t *testing.T) {
	c := newConv()
	if dead := c.SetTargetMHz(700); dead != 2000 {
		t.Fatalf("relock = %d cycles, want 2000", dead)
	}
}

func TestConventionalDroopDoesNotSlowClock(t *testing.T) {
	// The defining contrast with UVFR: under droop the PLL clock keeps
	// running at full speed, so a large droop breaches the margin.
	c := newConv()
	c.SetTargetMHz(700)
	before := c.FreqMHz()
	c.InjectDroop(0.03)
	if c.FreqMHz() != before {
		t.Fatal("conventional clock should not track the rail")
	}
	if c.TimingViolated() {
		t.Fatal("30mV droop is inside the 50mV guardband")
	}
	c.InjectDroop(0.04) // total 70mV > guardband
	if !c.TimingViolated() {
		t.Fatal("droop beyond the guardband must violate timing")
	}
	// Recovery restores the margin.
	for i := 0; i < 20; i++ {
		c.RecoverDroop()
	}
	if c.TimingViolated() {
		t.Fatal("margin not restored after recovery")
	}
}

func TestUVFRSurvivesDroopThatBreaksConventional(t *testing.T) {
	// Same droop on both actuators: UVFR's clock stretches (no timing
	// violation by construction); the conventional design violates.
	conv := newConv()
	conv.SetTargetMHz(700)
	conv.InjectDroop(0.08)
	if !conv.TimingViolated() {
		t.Fatal("80mV droop should break a 50mV guardband")
	}

	r := NewRegulator(DefaultConfig(800, 0.5, 1.0))
	r.SetTargetMHz(700)
	r.SettleCycles(1000)
	fBefore := r.FreqMHz()
	r.InjectDroop(0.08)
	if r.FreqMHz() >= fBefore {
		t.Fatal("UVFR clock should stretch under droop")
	}
	// The stretched clock always matches what the drooped voltage can
	// sustain — that is the CPR property.
}

func TestGuardbandPowerPenalty(t *testing.T) {
	c := newConv()
	c.SetTargetMHz(700)
	p := c.GuardbandPowerPenalty()
	if p <= 0 || p > 0.3 {
		t.Fatalf("guardband penalty = %v, want a small positive fraction", p)
	}
	// A larger guardband costs more power.
	big := NewConventional(800, 0.5, 1.0, 0.10)
	big.SetTargetMHz(700)
	if big.GuardbandPowerPenalty() <= p {
		t.Fatal("larger guardband should cost more")
	}
	// UVFR's equivalent penalty is zero: it runs at the exact timing
	// voltage for the delivered frequency.
}

func TestConventionalVoltageClamps(t *testing.T) {
	c := newConv()
	c.SetTargetMHz(0)
	if v := c.Vout(); v < c.VMin {
		t.Fatalf("voltage %v below VMin", v)
	}
	c.SetTargetMHz(10000) // beyond Fmax
	if v := c.Vout(); v > c.VMax+c.GuardbandV+1e-9 {
		t.Fatalf("voltage %v above VMax+guardband", v)
	}
}

func TestConventionalNegativeDroopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative droop did not panic")
		}
	}()
	newConv().InjectDroop(-0.01)
}
