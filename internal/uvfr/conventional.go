package uvfr

import (
	"math"

	"blitzcoin/internal/sim"
)

// Conventional models the dual-loop actuator of Fig. 9 (left) that UVFR
// replaces: a voltage regulator locks Vlogic to a commanded voltage, and a
// PLL locks the clock to a commanded frequency, each loop independent.
// Because the clock does not track the rail, the operating voltage must
// carry a static guardband against transient IR droop — the margin UVFR
// eliminates by construction (Sec. II-C, IV-A). The PLL relock also costs a
// fixed dead time per retarget.
type Conventional struct {
	RO RingOscillator // device model: gives Fmax(V) for the tile's logic

	// GuardbandV is the extra supply margin held against droop; typical
	// values are tens of millivolts.
	GuardbandV float64
	// RelockCycles is the PLL relock dead time per frequency change.
	RelockCycles sim.Cycles
	// VMin and VMax bound the commanded voltage.
	VMin, VMax float64

	targetMHz float64
	voltage   float64
	droopV    float64
}

// NewConventional builds a conventional actuator for a tile whose maximum
// frequency/voltage point is (fMaxMHz, vMax), with the given droop
// guardband.
func NewConventional(fMaxMHz, vMin, vMax, guardbandV float64) *Conventional {
	return &Conventional{
		RO:           RingOscillator{Vt: 0.30, Alpha: 1.3, FNomMHz: fMaxMHz, VNom: vMax},
		GuardbandV:   guardbandV,
		RelockCycles: 2000, // 2.5 us PLL relock at 800 MHz
		VMin:         vMin,
		VMax:         vMax,
		voltage:      vMin,
	}
}

// voltageFor inverts the alpha-power law: the minimum supply at which the
// logic closes timing at fMHz.
func (c *Conventional) voltageFor(fMHz float64) float64 {
	if fMHz <= 0 {
		return c.VMin
	}
	frac := fMHz / c.RO.FNomMHz
	v := c.RO.Vt + (c.RO.VNom-c.RO.Vt)*math.Pow(frac, 1/c.RO.Alpha)
	if v < c.VMin {
		v = c.VMin
	}
	if v > c.VMax {
		v = c.VMax
	}
	return v
}

// SetTargetMHz retargets both loops and returns the actuation dead time:
// the PLL relock, during which the tile must run at the slower of the old
// and new frequencies to stay safe.
func (c *Conventional) SetTargetMHz(f float64) sim.Cycles {
	c.targetMHz = f
	// Command the timing-closure voltage plus the droop guardband.
	c.voltage = c.voltageFor(f) + c.GuardbandV
	if c.voltage > c.VMax+c.GuardbandV {
		c.voltage = c.VMax + c.GuardbandV
	}
	return c.RelockCycles
}

// FreqMHz returns the clock output: the PLL holds the commanded frequency
// regardless of the rail, which is precisely why the guardband must exist.
func (c *Conventional) FreqMHz() float64 { return c.targetMHz }

// Vout returns the operating voltage including guardband and any transient
// droop.
func (c *Conventional) Vout() float64 { return c.voltage - c.droopV }

// InjectDroop applies a transient rail droop. Unlike UVFR, the clock does
// NOT slow down; TimingViolated reports whether the margin was breached.
func (c *Conventional) InjectDroop(dv float64) {
	if dv < 0 {
		panic("uvfr: negative droop")
	}
	c.droopV += dv
}

// RecoverDroop decays the transient (called once per control interval).
func (c *Conventional) RecoverDroop() {
	c.droopV *= 0.5
	if c.droopV < 1e-4 {
		c.droopV = 0
	}
}

// TimingViolated reports whether the current voltage (after droop) is below
// what the commanded frequency needs: a potential timing failure the
// guardband exists to prevent.
func (c *Conventional) TimingViolated() bool {
	return c.Vout() < c.voltageFor(c.targetMHz)
}

// GuardbandPowerPenalty returns the relative dynamic-power overhead of
// running at the guardbanded voltage instead of the exact timing-closure
// voltage for the current target: power scales with V^2, so the penalty is
// (V+g)^2/V^2 - 1.
func (c *Conventional) GuardbandPowerPenalty() float64 {
	v := c.voltageFor(c.targetMHz)
	if v <= 0 {
		return 0
	}
	g := c.voltage / v
	return g*g - 1
}
