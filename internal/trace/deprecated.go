package trace

import "io"

// Pre-bus entry points, kept as thin aliases over the Bus/Subscription
// surface so existing callers keep compiling and emitting byte-identical
// output.

// WriteCSV emits "cycle,<series...>" rows at every change point, matching
// the artifact's exported-waveform format.
//
// Deprecated: replay Events through a CSVExporter (or subscribe one to a
// Bus) instead. This alias does exactly that and produces the same bytes
// it always has.
func (r *Recorder) WriteCSV(w io.Writer) error {
	e := NewCSVExporter()
	for _, ev := range r.Events() {
		e.Consume(ev)
	}
	return e.WriteCSV(w)
}
