package trace

import (
	"bytes"
	"sync"
	"testing"
)

// TestBusFanOut: every subscriber with a matching key sees every event,
// in publish order; a foreign-key subscriber sees none.
func TestBusFanOut(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe("k", 16)
	s2 := b.Subscribe("k", 16)
	other := b.Subscribe("other", 16)
	all := b.Subscribe("", 16)
	defer func() {
		for _, s := range []*Subscription{s1, s2, other, all} {
			s.Close()
		}
	}()

	st := NewStream(b, "k")
	st.TrialStart(0, 3)
	st.TrialDone(0, 3, true, 12.5)
	st.SweepDone(3)

	for _, s := range []*Subscription{s1, s2, all} {
		types := []EventType{EventTrialStart, EventTrialDone, EventSweepDone}
		for i, want := range types {
			ev := <-s.Events()
			if ev.Type != want {
				t.Fatalf("event %d: got %v want %v", i, ev.Type, want)
			}
			if ev.Key != "k" {
				t.Fatalf("event %d: key %q", i, ev.Key)
			}
		}
	}
	select {
	case ev := <-other.Events():
		t.Fatalf("foreign-key subscriber received %v", ev.Type)
	default:
	}
}

// TestBusZeroSubscriberPublishAllocs: the zero-subscriber hot path must
// not allocate (it runs inside the SoC power-recording loop).
func TestBusZeroSubscriberPublishAllocs(t *testing.T) {
	b := NewBus()
	st := NewStream(b, "k")
	allocs := testing.AllocsPerRun(1000, func() {
		st.Point("p0", 1, 2.0)
	})
	if allocs != 0 {
		t.Fatalf("zero-subscriber publish allocates %.1f per op", allocs)
	}
}

// TestBusSlowSubscriberDropsOldest: a full buffer drops the oldest
// events, keeps the newest, counts the losses, and never blocks the
// publisher.
func TestBusSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe("k", 4)
	defer sub.Close()

	st := NewStream(b, "k")
	const n = 100
	for i := 0; i < n; i++ {
		st.Point("p", uint64(i), float64(i))
	}
	if got := sub.Dropped(); got != n-4 {
		t.Fatalf("dropped %d events, want %d", got, n-4)
	}
	// The survivors are the newest 4, still in order.
	want := uint64(n - 4)
	for i := 0; i < 4; i++ {
		ev := <-sub.Events()
		if ev.Cycle != want {
			t.Fatalf("survivor %d: cycle %d, want %d", i, ev.Cycle, want)
		}
		want++
	}
}

// TestBusConcurrentPublishSubscribe hammers the bus from many publishers
// while subscribers come and go — the -race workout behind the hub
// fan-out guarantee.
func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := NewStream(b, "k")
			for i := 0; i < 500; i++ {
				st.Point("p", uint64(i), float64(i))
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe("k", 8)
			for i := 0; i < 50; i++ {
				select {
				case <-sub.Events():
				default:
				}
			}
			sub.Close()
			// Reads after Close must terminate (channel closed).
			for range sub.Events() { //nolint:revive // drain
			}
		}()
	}
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers left registered", n)
	}
}

// TestCSVExporterMatchesRecorder: replaying a recorder through the CSV
// subscriber emits byte-identical CSV to the deprecated direct path, and
// out-of-order ingest (parallel-trial interleaving) converges to the same
// bytes.
func TestCSVExporterMatchesRecorder(t *testing.T) {
	r := NewRecorder()
	r.Series("p0").Record(0, 1.5)
	r.Series("p1").Record(10, 2)
	r.Series("p0").Record(20, 0.5)

	var direct bytes.Buffer
	if err := r.WriteCSV(&direct); err != nil {
		t.Fatal(err)
	}

	events := r.Events()
	// Reverse ingest order: the exporter must sort per series.
	ex := NewCSVExporter()
	// Seed first-seen series order to match the recorder's creation order
	// (the header is order-sensitive by design).
	for _, name := range r.Names() {
		ex.Consume(Event{Type: EventSeriesPoint, Series: name,
			Cycle: r.byName[name].Points[0].Cycle, Value: r.byName[name].Points[0].Value})
	}
	for i := len(events) - 1; i >= 0; i-- {
		ex.Consume(events[i])
	}
	var viaBus bytes.Buffer
	if err := ex.WriteCSV(&viaBus); err != nil {
		t.Fatal(err)
	}
	if direct.String() != viaBus.String() {
		t.Fatalf("CSV drift:\ndirect:\n%s\nvia bus:\n%s", direct.String(), viaBus.String())
	}
}

// TestRecorderAttachPublishesPoints: an attached recorder mirrors every
// Record call onto the bus.
func TestRecorderAttachPublishesPoints(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe("run", 16)
	defer sub.Close()

	r := NewRecorder()
	r.Series("pre") // created before Attach; must still publish after
	r.Attach(NewStream(b, "run"))
	r.Series("pre").Record(1, 10)
	r.Series("post").Record(2, 20)

	ev := <-sub.Events()
	if ev.Type != EventSeriesPoint || ev.Series != "pre" || ev.Cycle != 1 || ev.Value != 10 {
		t.Fatalf("first event %+v", ev)
	}
	ev = <-sub.Events()
	if ev.Series != "post" || ev.Value != 20 {
		t.Fatalf("second event %+v", ev)
	}
}
