package trace

import (
	"sync"
	"sync/atomic"
)

// BusVersion names the event-bus API surface (event taxonomy, delivery
// and backpressure semantics). Bumped on incompatible changes so
// subscribers crossing a process boundary (the SSE stream) can detect
// drift.
const BusVersion = 1

// EventType discriminates bus events.
type EventType uint8

// The event taxonomy. Series points carry live signal samples; trial and
// shard events mark sweep progress; sweep events bracket a whole request.
const (
	// EventSeriesPoint is one sample of a named step-wise signal (the
	// live form of a Recorder point).
	EventSeriesPoint EventType = iota + 1
	// EventTrialStart and EventTrialDone bracket one Monte-Carlo trial;
	// Trial/Total locate it on the request's flattened trial axis.
	EventTrialStart
	EventTrialDone
	// EventConvergence marks a trial whose error crossed the threshold;
	// Value is the convergence time in microseconds.
	EventConvergence
	// EventShardDispatch and EventShardDone are coordinator-side shard
	// lifecycle: Lo/Hi is the trial range, Worker the URL it ran on.
	EventShardDispatch
	EventShardDone
	// EventSweepStart, EventSweepDone, and EventSweepFailed bracket a
	// whole request; Total is its unit count.
	EventSweepStart
	EventSweepDone
	EventSweepFailed
)

// String names the event type (also the SSE event name).
func (t EventType) String() string {
	switch t {
	case EventSeriesPoint:
		return "series-point"
	case EventTrialStart:
		return "trial-start"
	case EventTrialDone:
		return "trial-done"
	case EventConvergence:
		return "convergence"
	case EventShardDispatch:
		return "shard-dispatch"
	case EventShardDone:
		return "shard-done"
	case EventSweepStart:
		return "sweep-start"
	case EventSweepDone:
		return "sweep-done"
	case EventSweepFailed:
		return "sweep-failed"
	}
	return "unknown"
}

// Event is one typed bus message. It is a flat value struct — no pointers
// beyond the strings — so publishing moves it through a channel without
// allocating. Which fields are meaningful depends on Type; the rest stay
// zero.
type Event struct {
	Type EventType
	// Seq is the bus-assigned publish sequence (1-based, per bus).
	Seq uint64
	// Key identifies the sweep the event belongs to: the canonical
	// options hash subscribers filter on.
	Key string
	// Series names the signal of a series point.
	Series string
	// Worker is the worker URL of a shard event.
	Worker string
	// Cycle is the simulation time of a series point.
	Cycle uint64
	// Value is the sample value, convergence time (micros), or shard
	// service time (seconds), per Type.
	Value float64
	// Trial/Total locate trial events on the flattened trial axis;
	// Total also carries the unit count of sweep events.
	Trial int
	Total int
	// Lo/Hi is the trial range of a shard event.
	Lo int
	Hi int
	// OK reports trial convergence or shard success.
	OK bool
}

// Bus is a fan-out hub for trace events: recorders publish, any number of
// subscribers consume through bounded per-subscriber buffers. Delivery is
// non-blocking with drop-oldest backpressure, so a slow subscriber loses
// events (counted on its Subscription) but can never stall a simulation.
// The zero-subscriber publish path is one atomic load — no locks, no
// allocation — which keeps instrumented hot paths free when nobody is
// watching.
type Bus struct {
	nsubs atomic.Int64
	seq   atomic.Uint64

	// mu guards subs. Publishers deliver under the read lock, so
	// Subscribe/Close (write lock) are excluded from in-flight sends and
	// closing a subscription's channel is safe.
	mu   sync.RWMutex
	subs []*Subscription
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{}
}

// defaultBus is the process-wide bus Execute and the blitzd daemon share.
var defaultBus = NewBus()

// Default returns the process-wide bus.
func Default() *Bus { return defaultBus }

// Publish fans an event out to every matching subscriber. With no
// subscribers it returns after one atomic load. Safe for concurrent use.
func (b *Bus) Publish(e Event) {
	if b == nil || b.nsubs.Load() == 0 {
		return
	}
	b.publishSlow(e)
}

func (b *Bus) publishSlow(e Event) {
	e.Seq = b.seq.Add(1)
	b.mu.RLock()
	for _, sub := range b.subs {
		if sub.key == "" || sub.key == e.Key {
			sub.deliver(e)
		}
	}
	b.mu.RUnlock()
}

// Subscribe registers a subscriber for events whose Key equals key (every
// event when key is empty). buffer bounds the subscriber's ring; values
// below 1 select 256. The caller must eventually Close the subscription.
func (b *Bus) Subscribe(key string, buffer int) *Subscription {
	if buffer < 1 {
		buffer = 256
	}
	s := &Subscription{bus: b, key: key, ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.nsubs.Store(int64(len(b.subs)))
	b.mu.Unlock()
	return s
}

// Subscribers reports the current subscriber count.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return int(b.nsubs.Load())
}

// Subscription is one subscriber's bounded view of a bus. Read Events
// until it closes; Close detaches and closes the channel.
type Subscription struct {
	bus     *Bus
	key     string
	ch      chan Event
	dropped atomic.Uint64
	once    sync.Once
}

// Events returns the subscription's channel. It closes after Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Key returns the key filter the subscription was created with.
func (s *Subscription) Key() string { return s.key }

// Dropped reports how many events backpressure discarded so far.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the bus and closes its channel.
// Idempotent.
func (s *Subscription) Close() {
	s.once.Do(func() {
		b := s.bus
		b.mu.Lock()
		for i, x := range b.subs {
			if x == s {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				break
			}
		}
		b.nsubs.Store(int64(len(b.subs)))
		b.mu.Unlock()
		// The write lock excluded every in-flight deliver, so nobody can
		// send on ch anymore.
		close(s.ch)
	})
}

// deliver enqueues without ever blocking the publisher: when the buffer
// is full the oldest buffered event is evicted (and counted as dropped)
// to make room. The retry cap only matters if a concurrent publisher
// keeps refilling the freed slot; then this event is the one dropped.
func (s *Subscription) deliver(e Event) {
	for i := 0; i < 4; i++ {
		select {
		case s.ch <- e:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
		default:
			// A reader drained concurrently; the send should now fit.
		}
	}
	s.dropped.Add(1)
}
