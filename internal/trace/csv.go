package trace

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// CSVExporter is the CSV face of the bus API: a subscriber that
// accumulates series-point events and renders them in the artifact's
// exported-waveform format ("cycle,<series...>" rows at every change
// point). Feeding it a Recorder's Events replay produces bytes identical
// to the pre-bus Recorder.WriteCSV, which is what keeps existing figure
// drivers' CSVs stable.
type CSVExporter struct {
	byName map[string][]Point
	order  []string
}

// NewCSVExporter returns an empty exporter.
func NewCSVExporter() *CSVExporter {
	return &CSVExporter{byName: make(map[string][]Point)}
}

// Consume ingests one event; everything but series points is ignored.
// Unlike Series.Record it tolerates out-of-order cycles — live events
// from parallel trials interleave — by sorting at write time.
func (e *CSVExporter) Consume(ev Event) {
	if ev.Type != EventSeriesPoint || ev.Series == "" {
		return
	}
	if _, ok := e.byName[ev.Series]; !ok {
		e.order = append(e.order, ev.Series)
	}
	e.byName[ev.Series] = append(e.byName[ev.Series], Point{Cycle: ev.Cycle, Value: ev.Value})
}

// WriteCSV renders the accumulated points. Per series, points are stably
// sorted by cycle and same-cycle duplicates collapse to the last arrival
// — the same semantics Series.Record applies on ingest.
func (e *CSVExporter) WriteCSV(w io.Writer) error {
	r := NewRecorder()
	for _, name := range e.order {
		pts := append([]Point(nil), e.byName[name]...)
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].Cycle < pts[j].Cycle })
		s := r.Series(name)
		for _, p := range pts {
			s.Record(p.Cycle, p.Value)
		}
	}
	return r.writeCSV(w)
}

// writeCSV emits "cycle,<series...>" rows at every change point, matching
// the artifact's exported-waveform format.
func (r *Recorder) writeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"cycle"}, r.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range r.changeCycles() {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatUint(c, 10))
		for _, name := range r.order {
			row = append(row, strconv.FormatFloat(r.byName[name].At(c), 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Events replays the recorder's accumulated points as bus events (series
// by creation order, points by cycle), so a post-hoc consumer — the CSV
// exporter, a late stream subscriber — sees exactly what live publishing
// would have delivered.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, name := range r.order {
		for _, p := range r.byName[name].Points {
			out = append(out, Event{Type: EventSeriesPoint, Series: name, Cycle: p.Cycle, Value: p.Value})
		}
	}
	return out
}
