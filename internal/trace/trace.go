// Package trace records time series from the SoC simulations — per-tile
// power, tile frequencies, coin counts, activity — and publishes them as
// typed events on a subscribable Bus. A CSVExporter subscriber renders the
// paper artifact's exported-waveform CSV (Xcelium waveforms exported to
// CSV and plotted, e.g. Fig. 16, 19, 20); the blitzd daemon streams the
// same events live over SSE.
package trace

import (
	"fmt"
	"sort"
)

// Point is one observation of one signal.
type Point struct {
	Cycle uint64
	Value float64
}

// Series is a named step-wise signal: the value holds from one point's cycle
// until the next point.
type Series struct {
	Name   string
	Points []Point

	// stream, when active, mirrors every recorded point onto the bus as a
	// live series-point event.
	stream Stream
}

// Record appends an observation. Out-of-order appends panic — recorders are
// driven by the simulation clock, so disorder indicates a harness bug.
func (s *Series) Record(cycle uint64, v float64) {
	if n := len(s.Points); n > 0 && cycle < s.Points[n-1].Cycle {
		panic(fmt.Sprintf("trace: %s: out-of-order record at %d after %d",
			s.Name, cycle, s.Points[n-1].Cycle))
	}
	// Collapse same-cycle updates to the final value at that cycle.
	if n := len(s.Points); n > 0 && s.Points[n-1].Cycle == cycle {
		s.Points[n-1].Value = v
		s.stream.Point(s.Name, cycle, v)
		return
	}
	s.Points = append(s.Points, Point{Cycle: cycle, Value: v})
	s.stream.Point(s.Name, cycle, v)
}

// At returns the signal value at the given cycle (step-hold semantics);
// before the first point it returns 0.
func (s *Series) At(cycle uint64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Cycle > cycle })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].Value
}

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Integral computes the time integral of the signal from cycle a to b
// (value x cycles), using step-hold semantics. Used to turn power traces
// into energy and average power.
func (s *Series) Integral(a, b uint64) float64 {
	if b <= a || len(s.Points) == 0 {
		return 0
	}
	var total float64
	cur := s.At(a)
	t := a
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Cycle > a })
	for ; i < len(s.Points) && s.Points[i].Cycle < b; i++ {
		total += cur * float64(s.Points[i].Cycle-t)
		t = s.Points[i].Cycle
		cur = s.Points[i].Value
	}
	total += cur * float64(b-t)
	return total
}

// Mean returns the time-weighted average of the signal over [a, b).
func (s *Series) Mean(a, b uint64) float64 {
	if b <= a {
		return 0
	}
	return s.Integral(a, b) / float64(b-a)
}

// Max returns the largest recorded value over [a, b) including the held
// value entering the window; 0 if the series is empty.
func (s *Series) Max(a, b uint64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.At(a)
	for _, p := range s.Points {
		if p.Cycle >= a && p.Cycle < b && p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Recorder groups the named series of one simulation run.
type Recorder struct {
	byName map[string]*Series
	order  []string
	stream Stream
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{byName: make(map[string]*Series)}
}

// Attach mirrors every point recorded from now on — in existing and
// future series — onto the stream as live series-point events. An inert
// (zero) stream detaches. Recording stays allocation-free either way:
// with no bus subscribers a mirrored publish is one atomic load.
func (r *Recorder) Attach(s Stream) {
	r.stream = s
	for _, name := range r.order {
		r.byName[name].stream = s
	}
}

// Series returns the series with the given name, creating it on first use.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := &Series{Name: name, stream: r.stream}
	r.byName[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SumAt returns the sum over all series of their value at the given cycle —
// the instantaneous SoC power when every series is one tile's power.
func (r *Recorder) SumAt(cycle uint64) float64 {
	var sum float64
	for _, name := range r.order {
		sum += r.byName[name].At(cycle)
	}
	return sum
}

// changeCycles returns the sorted set of cycles at which any series changes.
func (r *Recorder) changeCycles() []uint64 {
	set := map[uint64]struct{}{}
	for _, name := range r.order {
		for _, p := range r.byName[name].Points {
			set[p.Cycle] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalSeries returns a synthetic series that is the sum of all recorded
// series at every change point — the SoC-level power trace of Fig. 16.
func (r *Recorder) TotalSeries(name string) *Series {
	total := &Series{Name: name}
	for _, c := range r.changeCycles() {
		total.Record(c, r.SumAt(c))
	}
	return total
}
