package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestStepHoldSemantics(t *testing.T) {
	var s Series
	s.Record(10, 1.0)
	s.Record(20, 3.0)
	if s.At(5) != 0 {
		t.Fatalf("At(5) = %v, want 0 before first point", s.At(5))
	}
	if s.At(10) != 1 || s.At(15) != 1 {
		t.Fatalf("At(10..15) = %v,%v want 1", s.At(10), s.At(15))
	}
	if s.At(20) != 3 || s.At(1000) != 3 {
		t.Fatalf("At(>=20) wrong")
	}
	if s.Last() != 3 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSameCycleCollapse(t *testing.T) {
	var s Series
	s.Record(10, 1)
	s.Record(10, 2)
	if len(s.Points) != 1 || s.At(10) != 2 {
		t.Fatalf("same-cycle collapse failed: %+v", s.Points)
	}
}

func TestOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Record(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order record did not panic")
		}
	}()
	s.Record(5, 2)
}

func TestIntegralAndMean(t *testing.T) {
	var s Series
	s.Record(0, 2)
	s.Record(10, 4)
	s.Record(20, 0)
	// [0,10): 2*10=20; [10,20): 4*10=40; [20,30): 0.
	if got := s.Integral(0, 30); got != 60 {
		t.Fatalf("Integral = %v, want 60", got)
	}
	if got := s.Mean(0, 30); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	// Partial window crossing a step.
	if got := s.Integral(5, 15); got != 2*5+4*5 {
		t.Fatalf("partial Integral = %v, want 30", got)
	}
	if got := s.Integral(30, 10); got != 0 {
		t.Fatalf("inverted window Integral = %v, want 0", got)
	}
}

func TestMaxWindow(t *testing.T) {
	var s Series
	s.Record(0, 1)
	s.Record(10, 5)
	s.Record(20, 2)
	if got := s.Max(0, 30); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if got := s.Max(12, 30); got != 5 { // held value entering window is 5
		t.Fatalf("Max holding = %v", got)
	}
	if got := s.Max(20, 30); got != 2 {
		t.Fatalf("Max tail = %v", got)
	}
}

func TestRecorderSumAndTotal(t *testing.T) {
	r := NewRecorder()
	r.Series("a").Record(0, 1)
	r.Series("b").Record(5, 2)
	r.Series("a").Record(10, 3)
	if got := r.SumAt(7); got != 3 {
		t.Fatalf("SumAt(7) = %v, want 3", got)
	}
	total := r.TotalSeries("sum")
	if total.At(0) != 1 || total.At(5) != 3 || total.At(10) != 5 {
		t.Fatalf("total series wrong: %+v", total.Points)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Series("p0").Record(0, 1.5)
	r.Series("p1").Record(10, 2)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "cycle,p0,p1" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1.5,0" || lines[2] != "10,1.5,2" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.At(100) != 0 || s.Last() != 0 || s.Integral(0, 10) != 0 || s.Max(0, 10) != 0 {
		t.Fatal("empty series should read as zero")
	}
}
