package trace

import "context"

// Stream binds a bus to one sweep's key (its canonical options hash): the
// publishing half of the bus API that simulation code holds. The zero
// value is inert — every publish on it is a no-op — so un-instrumented
// callers (direct library use, benchmarks) pay nothing.
type Stream struct {
	bus *Bus
	key string
}

// NewStream returns a stream publishing to b under key.
func NewStream(b *Bus, key string) Stream {
	return Stream{bus: b, key: key}
}

// Active reports whether publishes go anywhere at all.
func (s Stream) Active() bool { return s.bus != nil && s.key != "" }

// Key returns the stream's sweep key.
func (s Stream) Key() string { return s.key }

// publish stamps the key and hands the event to the bus.
func (s Stream) publish(e Event) {
	if s.bus == nil || s.key == "" {
		return
	}
	e.Key = s.key
	s.bus.Publish(e)
}

// Point publishes one live sample of a named series.
func (s Stream) Point(series string, cycle uint64, v float64) {
	s.publish(Event{Type: EventSeriesPoint, Series: series, Cycle: cycle, Value: v})
}

// TrialStart marks trial (of total) beginning.
func (s Stream) TrialStart(trial, total int) {
	s.publish(Event{Type: EventTrialStart, Trial: trial, Total: total})
}

// TrialDone marks trial (of total) finished; converged and its time in
// microseconds describe the outcome.
func (s Stream) TrialDone(trial, total int, converged bool, micros float64) {
	s.publish(Event{Type: EventTrialDone, Trial: trial, Total: total, OK: converged, Value: micros})
}

// Convergence marks a trial whose error crossed the threshold after
// micros microseconds.
func (s Stream) Convergence(trial int, micros float64) {
	s.publish(Event{Type: EventConvergence, Trial: trial, Value: micros})
}

// SweepStart marks a sweep of units trial units beginning.
func (s Stream) SweepStart(units int) {
	s.publish(Event{Type: EventSweepStart, Total: units})
}

// SweepDone marks the sweep completing successfully.
func (s Stream) SweepDone(units int) {
	s.publish(Event{Type: EventSweepDone, Total: units, OK: true})
}

// SweepFailed marks the sweep ending in an error.
func (s Stream) SweepFailed() {
	s.publish(Event{Type: EventSweepFailed})
}

// ShardDispatch marks shard [lo, hi) handed to worker.
func (s Stream) ShardDispatch(lo, hi int, worker string) {
	s.publish(Event{Type: EventShardDispatch, Lo: lo, Hi: hi, Worker: worker})
}

// ShardDone marks shard [lo, hi) finishing on worker after seconds of
// service time; ok is false for a failed dispatch attempt.
func (s Stream) ShardDone(lo, hi int, worker string, seconds float64, ok bool) {
	s.publish(Event{Type: EventShardDone, Lo: lo, Hi: hi, Worker: worker, Value: seconds, OK: ok})
}

// ctxKey keys the stream in a context.
type ctxKey struct{}

// NewContext returns ctx carrying s, for plumbing a stream through the
// Execute/ExecuteShard call tree without widening every signature.
func NewContext(ctx context.Context, s Stream) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the stream carried by ctx, or an inert zero Stream.
func FromContext(ctx context.Context) Stream {
	if ctx == nil {
		return Stream{}
	}
	s, _ := ctx.Value(ctxKey{}).(Stream)
	return s
}
