// Package cpuproxy extends BlitzCoin toward CPU tiles, the case Sec. IV-C
// discusses but excludes from the silicon implementation: unlike
// fixed-function accelerators, a CPU's power at a given frequency varies
// widely with the workload it runs, so the static coin-to-frequency LUT
// must become dynamic. The paper points to activity counters and power
// proxies (Floyd et al. [18], Huang et al. [75]) as the established
// solution; this package implements that approach:
//
//   - Counters models the per-window activity events a core exposes;
//   - Proxy turns counter deltas into a power estimate via a weighted
//     linear model, smoothed with an exponential moving average;
//   - DynamicCurve scales a CPU's maximum power/frequency characterization
//     by the observed activity factor, yielding the effective P(F) curve
//     the coin LUT should be rebuilt from;
//   - Manager ties it together: it periodically re-derives the tile's coin
//     target (max) from the activity estimate, so a mostly-idle core stops
//     hoarding budget that accelerators could use.
package cpuproxy

import (
	"fmt"
	"math"

	"blitzcoin/internal/power"
)

// Counters is one sampling window of core activity events.
type Counters struct {
	Cycles     uint64
	Instr      uint64
	MemOps     uint64
	FPOps      uint64
	BranchMiss uint64
}

// Weights converts events to energy: picojoules per event, the linear
// power-proxy formulation of [75].
type Weights struct {
	PerInstrPJ      float64
	PerMemOpPJ      float64
	PerFPOpPJ       float64
	PerBranchMissPJ float64
	// BasePJPerCycle is the clock-tree and pipeline-idle energy per cycle.
	BasePJPerCycle float64
}

// DefaultWeights returns 12nm-class application-core coefficients.
func DefaultWeights() Weights {
	return Weights{
		PerInstrPJ:      8,
		PerMemOpPJ:      22,
		PerFPOpPJ:       15,
		PerBranchMissPJ: 30,
		BasePJPerCycle:  3,
	}
}

// Proxy estimates a core's dynamic power from activity counters.
type Proxy struct {
	W Weights
	// Alpha is the EWMA smoothing factor in (0, 1]; 1 means no smoothing.
	Alpha float64

	estMW  float64
	primed bool
}

// NewProxy builds a proxy with the given weights and smoothing.
func NewProxy(w Weights, alpha float64) *Proxy {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("cpuproxy: alpha %v out of (0,1]", alpha))
	}
	return &Proxy{W: w, Alpha: alpha}
}

// Observe folds one counter window at the given clock into the estimate and
// returns the instantaneous (unsmoothed) power in mW. Energy per window is
// the weighted event sum; power is energy divided by the window's wall
// time (Cycles / fMHz microseconds).
func (p *Proxy) Observe(c Counters, fMHz float64) float64 {
	if c.Cycles == 0 || fMHz <= 0 {
		return p.estMW
	}
	energyPJ := float64(c.Instr)*p.W.PerInstrPJ +
		float64(c.MemOps)*p.W.PerMemOpPJ +
		float64(c.FPOps)*p.W.PerFPOpPJ +
		float64(c.BranchMiss)*p.W.PerBranchMissPJ +
		float64(c.Cycles)*p.W.BasePJPerCycle
	windowUs := float64(c.Cycles) / fMHz
	// pJ/us = 1e-12 J / 1e-6 s = 1 uW; convert to mW.
	instMW := energyPJ / windowUs * 1e-3
	if !p.primed {
		p.estMW = instMW
		p.primed = true
	} else {
		p.estMW = p.Alpha*instMW + (1-p.Alpha)*p.estMW
	}
	return instMW
}

// EstimateMW returns the smoothed power estimate at the observed clock.
func (p *Proxy) EstimateMW() float64 { return p.estMW }

// ActivityFactor returns the estimate relative to the core's maximum power
// at the same frequency, clamped to [minFactor, 1]. This is the scaling
// the dynamic LUT applies.
func (p *Proxy) ActivityFactor(curve *power.Curve, fMHz, minFactor float64) float64 {
	max := curve.PowerAt(fMHz)
	if max <= 0 {
		return minFactor
	}
	af := p.estMW / max
	if af < minFactor {
		af = minFactor
	}
	if af > 1 {
		af = 1
	}
	return af
}

// DynamicCurve wraps a CPU's worst-case characterization with a
// time-varying activity factor: the effective power at a frequency is the
// leakage share plus the dynamic share scaled by activity. The coin LUT
// rebuilt from this curve lets a low-activity core hit its frequency target
// with fewer coins.
type DynamicCurve struct {
	Base *power.Curve
	// LeakFrac is the leakage fraction of the base curve's power, which
	// activity cannot reduce.
	LeakFrac float64

	activity float64
}

// NewDynamicCurve wraps base; activity starts at 1 (worst case).
func NewDynamicCurve(base *power.Curve, leakFrac float64) *DynamicCurve {
	if leakFrac < 0 || leakFrac >= 1 {
		panic(fmt.Sprintf("cpuproxy: leak fraction %v out of [0,1)", leakFrac))
	}
	return &DynamicCurve{Base: base, LeakFrac: leakFrac, activity: 1}
}

// SetActivity updates the activity factor in (0, 1].
func (d *DynamicCurve) SetActivity(af float64) {
	if af <= 0 || af > 1 {
		panic(fmt.Sprintf("cpuproxy: activity %v out of (0,1]", af))
	}
	d.activity = af
}

// Activity returns the current factor.
func (d *DynamicCurve) Activity() float64 { return d.activity }

// PowerAt returns the effective power at fMHz under the current activity.
func (d *DynamicCurve) PowerAt(fMHz float64) float64 {
	base := d.Base.PowerAt(fMHz)
	return base * (d.LeakFrac + (1-d.LeakFrac)*d.activity)
}

// FreqAtPower inverts PowerAt: the highest frequency sustainable within an
// allocation of mw at the current activity.
func (d *DynamicCurve) FreqAtPower(mw float64) float64 {
	scale := d.LeakFrac + (1-d.LeakFrac)*d.activity
	if scale <= 0 {
		return d.Base.FMin()
	}
	return d.Base.FreqAtPower(mw / scale)
}

// Manager periodically re-derives a CPU tile's coin target from observed
// activity and pushes it into the exchange fabric through the provided
// callback (the SoC harness wires this to Emulator.SetMax). Hysteresis
// avoids churning the coin distribution on small activity wiggles.
type Manager struct {
	Proxy *Proxy
	Curve *DynamicCurve
	// MWPerCoin is the SoC's coin value.
	MWPerCoin float64
	// HysteresisCoins suppresses target updates smaller than this.
	HysteresisCoins int64
	// SetMax pushes a new coin target for the tile.
	SetMax func(coins int64)

	lastCoins int64
}

// Sample processes one counter window at the current clock: update the
// proxy, refresh the dynamic curve, and (if it moved enough) retarget the
// tile's max coins to the power the core would draw at full frequency
// under its present activity.
func (m *Manager) Sample(c Counters, fMHz float64) int64 {
	m.Proxy.Observe(c, fMHz)
	af := m.Proxy.ActivityFactor(m.Curve.Base, fMHz, 0.05)
	m.Curve.SetActivity(af)
	wantMW := m.Curve.PowerAt(m.Curve.Base.FMax())
	coins := int64(math.Round(wantMW / m.MWPerCoin))
	if coins > 63 {
		coins = 63
	}
	if coins < 0 {
		coins = 0
	}
	if abs := coins - m.lastCoins; abs < 0 {
		if -abs <= m.HysteresisCoins {
			return m.lastCoins
		}
	} else if abs <= m.HysteresisCoins {
		return m.lastCoins
	}
	m.lastCoins = coins
	if m.SetMax != nil {
		m.SetMax(coins)
	}
	return coins
}

// CVA6 returns a worst-case power/frequency characterization for the
// RISC-V CVA6 application core of the evaluated SoCs (Sec. IV-B), in the
// same alpha-power form as the accelerator curves.
func CVA6() *power.Curve {
	return power.Synthesize(power.ModelParams{
		Name: "CVA6", VMin: 0.5, VMax: 1.0, FMaxMHz: 800, PMaxmW: 75,
	})
}
