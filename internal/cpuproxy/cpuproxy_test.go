package cpuproxy

import (
	"math"
	"testing"
	"testing/quick"

	"blitzcoin/internal/power"
)

// busyWindow is a compute-heavy counter window at the given cycle count.
func busyWindow(cycles uint64) Counters {
	return Counters{
		Cycles: cycles, Instr: cycles * 2, MemOps: cycles / 4,
		FPOps: cycles / 4, BranchMiss: cycles / 100,
	}
}

// idleWindow is a stalled window: few instructions retire.
func idleWindow(cycles uint64) Counters {
	return Counters{Cycles: cycles, Instr: cycles / 50}
}

func TestProxyBusyVsIdle(t *testing.T) {
	busy := NewProxy(DefaultWeights(), 1)
	idle := NewProxy(DefaultWeights(), 1)
	busy.Observe(busyWindow(100000), 800)
	idle.Observe(idleWindow(100000), 800)
	if busy.EstimateMW() <= idle.EstimateMW() {
		t.Fatalf("busy %.2f mW not above idle %.2f mW", busy.EstimateMW(), idle.EstimateMW())
	}
	if idle.EstimateMW() <= 0 {
		t.Fatal("idle estimate should still include base clock power")
	}
}

func TestProxyEstimatePlausibleForCVA6(t *testing.T) {
	// A fully busy CVA6 at 800 MHz should estimate within the same order
	// as the curve's worst case (75 mW).
	p := NewProxy(DefaultWeights(), 1)
	p.Observe(busyWindow(1_000_000), 800)
	if est := p.EstimateMW(); est < 10 || est > 150 {
		t.Fatalf("busy estimate %.1f mW implausible for a 75 mW core", est)
	}
}

func TestProxyEWMASmoothing(t *testing.T) {
	p := NewProxy(DefaultWeights(), 0.25)
	p.Observe(busyWindow(100000), 800)
	after := p.EstimateMW()
	p.Observe(idleWindow(100000), 800)
	// With alpha 0.25 the estimate moves only a quarter of the way down.
	if p.EstimateMW() >= after || p.EstimateMW() < after/4 {
		t.Fatalf("smoothing off: %.2f -> %.2f", after, p.EstimateMW())
	}
}

func TestProxyScalesWithFrequencyProperty(t *testing.T) {
	// The same per-cycle activity at a higher clock is more power (same
	// energy per cycle, less time per cycle).
	f := func(clkA, clkB uint8) bool {
		fa := 200 + float64(clkA)*2
		fb := 200 + float64(clkB)*2
		pa := NewProxy(DefaultWeights(), 1)
		pb := NewProxy(DefaultWeights(), 1)
		pa.Observe(busyWindow(100000), fa)
		pb.Observe(busyWindow(100000), fb)
		if fa == fb {
			return pa.EstimateMW() == pb.EstimateMW()
		}
		return (fa > fb) == (pa.EstimateMW() > pb.EstimateMW())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProxyIgnoresEmptyWindows(t *testing.T) {
	p := NewProxy(DefaultWeights(), 1)
	p.Observe(busyWindow(100000), 800)
	before := p.EstimateMW()
	p.Observe(Counters{}, 800)
	if p.EstimateMW() != before {
		t.Fatal("empty window changed the estimate")
	}
}

func TestNewProxyPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha 0 did not panic")
		}
	}()
	NewProxy(DefaultWeights(), 0)
}

func TestActivityFactorClamped(t *testing.T) {
	p := NewProxy(DefaultWeights(), 1)
	curve := CVA6()
	// No observations: estimate 0 -> clamps to the floor.
	if af := p.ActivityFactor(curve, 800, 0.05); af != 0.05 {
		t.Fatalf("unprimed factor = %v, want floor", af)
	}
	// Enormous estimate clamps to 1.
	p.Observe(Counters{Cycles: 1000, Instr: 1 << 30}, 800)
	if af := p.ActivityFactor(curve, 800, 0.05); af != 1 {
		t.Fatalf("saturated factor = %v, want 1", af)
	}
}

func TestDynamicCurveScalesPower(t *testing.T) {
	d := NewDynamicCurve(CVA6(), 0.12)
	full := d.PowerAt(800)
	d.SetActivity(0.5)
	half := d.PowerAt(800)
	if half >= full {
		t.Fatal("lower activity should lower power")
	}
	// Leakage floor: even at the minimum activity the curve keeps the
	// leak share.
	d.SetActivity(0.05)
	if d.PowerAt(800) < CVA6().PowerAt(800)*0.12 {
		t.Fatal("activity scaling removed leakage")
	}
}

func TestDynamicCurveInverseConsistent(t *testing.T) {
	d := NewDynamicCurve(CVA6(), 0.12)
	d.SetActivity(0.4)
	base := d.Base
	for _, f := range []float64{base.FMin() + 1, 400, base.FMax() - 1} {
		mw := d.PowerAt(f)
		back := d.FreqAtPower(mw)
		if math.Abs(back-f) > 1e-6*base.FMax() {
			t.Fatalf("inverse mismatch at %v MHz: %v", f, back)
		}
	}
}

func TestDynamicCurveLowActivityNeedsFewerCoins(t *testing.T) {
	// The point of the extension: at half activity the core reaches Fmax
	// within a much smaller allocation.
	d := NewDynamicCurve(CVA6(), 0.12)
	fullCost := d.PowerAt(d.Base.FMax())
	d.SetActivity(0.3)
	lowCost := d.PowerAt(d.Base.FMax())
	if lowCost >= fullCost*0.6 {
		t.Fatalf("low-activity cost %.1f not far below %.1f", lowCost, fullCost)
	}
}

func TestDynamicCurvePanics(t *testing.T) {
	d := NewDynamicCurve(CVA6(), 0.12)
	for _, af := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("activity %v did not panic", af)
				}
			}()
			d.SetActivity(af)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("bad leak fraction did not panic")
		}
	}()
	NewDynamicCurve(CVA6(), 1.0)
}

func TestManagerRetargetsOnActivitySwing(t *testing.T) {
	var pushed []int64
	m := &Manager{
		Proxy:           NewProxy(DefaultWeights(), 1),
		Curve:           NewDynamicCurve(CVA6(), 0.12),
		MWPerCoin:       power.NVDLA().PMax() / 63,
		HysteresisCoins: 2,
		SetMax:          func(c int64) { pushed = append(pushed, c) },
	}
	busy := m.Sample(busyWindow(100000), 800)
	idle := m.Sample(idleWindow(100000), 800)
	if idle >= busy {
		t.Fatalf("idle target %d not below busy %d", idle, busy)
	}
	if len(pushed) != 2 {
		t.Fatalf("SetMax pushes = %d, want 2", len(pushed))
	}
	if busy > 63 || idle < 0 {
		t.Fatalf("targets out of register range: %d, %d", busy, idle)
	}
}

func TestManagerHysteresisSuppressesJitter(t *testing.T) {
	var pushes int
	m := &Manager{
		Proxy:           NewProxy(DefaultWeights(), 1),
		Curve:           NewDynamicCurve(CVA6(), 0.12),
		MWPerCoin:       1.5,
		HysteresisCoins: 4,
		SetMax:          func(int64) { pushes++ },
	}
	m.Sample(busyWindow(100000), 800)
	first := pushes
	// Nearly identical windows must not retarget.
	for i := 0; i < 5; i++ {
		m.Sample(busyWindow(100001+uint64(i)), 800)
	}
	if pushes != first {
		t.Fatalf("hysteresis failed: %d extra pushes", pushes-first)
	}
}

func TestCVA6CurveShape(t *testing.T) {
	c := CVA6()
	if c.PMax() != c.PowerAt(c.FMax()) {
		t.Fatal("curve inconsistent")
	}
	if c.PMax() < 50 || c.PMax() > 100 {
		t.Fatalf("CVA6 PMax %.1f out of the plausible band", c.PMax())
	}
}
