package sweep

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// The result slice must be identical at every parallelism level when fn
// depends only on the trial index — the property the experiment figures
// rely on.
func TestMapOrderedAndParallelismInvariant(t *testing.T) {
	fn := func(i int) int { return i*i + 7 }
	want := Map(100, 1, fn)
	for _, p := range []int{2, 3, 4, 8, 16, 200} {
		got := Map(100, p, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapRunsEveryTrialOnce(t *testing.T) {
	var calls [64]atomic.Int32
	Map(len(calls), 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("trial %d ran %d times, want 1", i, n)
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	if got := Map(0, 4, func(int) int { return 1 }); got != nil {
		t.Fatalf("Map(0, ...) = %v, want nil", got)
	}
}

// A trial panic must surface on the caller after the pool drains, not kill
// the process from a worker goroutine.
func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "trial 5 exploded" {
			t.Fatalf("recovered %v, want the trial's panic value", r)
		}
	}()
	Map(16, 4, func(i int) int {
		if i == 5 {
			panic("trial 5 exploded")
		}
		return i
	})
	t.Fatal("Map returned instead of panicking")
}

func TestDefaultParallelism(t *testing.T) {
	defer SetDefaultParallelism(0)
	SetDefaultParallelism(0)
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultParallelism(3)
	if got := DefaultParallelism(); got != 3 {
		t.Fatalf("after Set(3): default = %d, want 3", got)
	}
	SetDefaultParallelism(-1)
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("after Set(-1): default = %d, want GOMAXPROCS", got)
	}
}
