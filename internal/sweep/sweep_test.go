package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

var bg = context.Background()

// The result slice must be identical at every parallelism level when fn
// depends only on the trial index — the property the experiment figures
// rely on.
func TestMapOrderedAndParallelismInvariant(t *testing.T) {
	fn := func(i int) int { return i*i + 7 }
	want := Map(bg, 100, 1, fn)
	for _, p := range []int{2, 3, 4, 8, 16, 200} {
		got := Map(bg, 100, p, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapRunsEveryTrialOnce(t *testing.T) {
	var calls [64]atomic.Int32
	Map(bg, len(calls), 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("trial %d ran %d times, want 1", i, n)
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	if got := Map(bg, 0, 4, func(int) int { return 1 }); got != nil {
		t.Fatalf("Map(0, ...) = %v, want nil", got)
	}
}

func TestMapNilContext(t *testing.T) {
	got := Map(nil, 4, 2, func(i int) int { return i })
	for i := range got {
		if got[i] != i {
			t.Fatalf("nil ctx: result[%d] = %d", i, got[i])
		}
	}
}

// A trial panic must surface on the caller after the pool drains, not kill
// the process from a worker goroutine.
func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "trial 5 exploded" {
			t.Fatalf("recovered %v, want the trial's panic value", r)
		}
	}()
	Map(bg, 16, 4, func(i int) int {
		if i == 5 {
			panic("trial 5 exploded")
		}
		return i
	})
	t.Fatal("Map returned instead of panicking")
}

// Cancelling the context mid-sweep stops the dispatch of new trials: the
// trials that ran before the cancellation keep their results, running
// trials finish, and the rest of the slice stays zero.
func TestMapCancellationStopsDispatch(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	var once sync.Once
	out := Map(ctx, n, 4, func(i int) int {
		ran.Add(1)
		// The first trial to run cancels the sweep; everything still in
		// flight completes, nothing new is dispatched.
		once.Do(cancel)
		return i + 1
	})
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	if got := int(ran.Load()); got >= n {
		t.Fatalf("all %d trials ran despite cancellation", got)
	}
	if len(out) != n {
		t.Fatalf("len(out) = %d, want %d (zero-padded)", len(out), n)
	}
	// Completed trials hold fn's value; undispatched slots hold the zero
	// value, and their count matches the dispatch counter.
	nonzero := 0
	for i, v := range out {
		if v != 0 && v != i+1 {
			t.Fatalf("slot %d holds %d, want 0 or %d", i, v, i+1)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != int(ran.Load()) {
		t.Fatalf("%d filled slots, %d trials ran", nonzero, ran.Load())
	}
}

// A context cancelled before the sweep starts yields an all-zero slice:
// serial and parallel paths both refuse to dispatch.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		out := Map(ctx, 8, p, func(i int) int { return i + 1 })
		for i, v := range out {
			if v != 0 {
				t.Fatalf("parallelism %d: slot %d = %d, want 0", p, i, v)
			}
		}
	}
}

func TestDefaultParallelism(t *testing.T) {
	defer SetDefaultParallelism(0)
	SetDefaultParallelism(0)
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultParallelism(3)
	if got := DefaultParallelism(); got != 3 {
		t.Fatalf("after Set(3): default = %d, want 3", got)
	}
	SetDefaultParallelism(-1)
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("after Set(-1): default = %d, want GOMAXPROCS", got)
	}
}
