// Package sweep is the parallel experiment engine: it fans the independent
// trials of a Monte Carlo experiment across a worker pool.
//
// The paper's evaluation (Figs. 3-8, 16-21) is embarrassingly parallel at
// the trial level — every (config, seed) trial owns a private kernel,
// network, and RNG — but a naive parallel loop would make results depend on
// scheduling. The engine avoids that by construction:
//
//   - Each trial derives its own seed from the trial index alone (the
//     callers' existing seed-derivation formulas, e.g. seed + t*7919), never
//     from a shared RNG stream, so trial t computes the same result no
//     matter which worker runs it or in what order.
//   - Map writes each trial's result into its index slot and the caller
//     accumulates statistics by walking the slice in index order, so the
//     reduction is bit-identical to the serial loop at any parallelism.
//
// Together these make a sweep's output rows byte-for-byte identical at
// Parallelism 1, 4, 8, or GOMAXPROCS — the property the determinism tests
// in internal/experiments pin down.
//
// Sweeps are cancellable: Map takes a context and stops dispatching trials
// once it is done, so a long sweep aborts promptly when a CLI catches
// SIGINT or a server request is dropped. Trials already running finish
// (they own private state and cannot be preempted mid-simulation);
// undispatched slots are left as zero values and the caller detects the
// truncation via ctx.Err().
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultParallelism is the worker count used when Map is called with
// parallelism 0; 0 here means "use GOMAXPROCS". It is a process-wide knob
// (set from the CLIs' -parallel flag) so experiment code never threads a
// parallelism parameter through every figure function.
var defaultParallelism atomic.Int64

// SetDefaultParallelism sets the worker count Map uses for parallelism 0.
// p <= 0 restores the GOMAXPROCS default.
func SetDefaultParallelism(p int) {
	if p < 0 {
		p = 0
	}
	defaultParallelism.Store(int64(p))
}

// DefaultParallelism returns the effective default worker count.
func DefaultParallelism() int {
	if p := int(defaultParallelism.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across a pool of parallelism
// goroutines and returns the results in index order. parallelism 0 uses the
// process default (GOMAXPROCS unless overridden); parallelism 1 runs inline
// with no goroutines at all. fn must derive any randomness from i alone —
// then the returned slice is identical at every parallelism level, and a
// serial index-order reduction over it is bit-identical to the serial loop.
//
// When ctx is cancelled, Map stops dispatching new trials: trials already
// running complete, the remaining index slots stay zero values, and the
// caller observes the truncation through ctx.Err(). A nil ctx means
// context.Background().
//
// A panic in any trial is re-raised on the calling goroutine after the pool
// drains, like a serial loop's panic but without leaking workers.
func Map[T any](ctx context.Context, n, parallelism int, fn func(trial int) T) []T {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if parallelism <= 0 {
		parallelism = DefaultParallelism()
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := range out {
			if ctx.Err() != nil {
				break
			}
			out[i] = fn(i)
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// MapRange runs fn(i) for every i in [lo, hi) and returns the hi-lo results
// in index order: the shard-range form of Map that distributed sweeps are
// built on. A shard executing MapRange(ctx, lo, hi, p, fn) computes exactly
// the slots [lo, hi) of Map(ctx, n, p, fn) for any n >= hi, because fn still
// receives the global trial index — so concatenating shard outputs in range
// order is byte-identical to one local Map over the full range.
//
// Cancellation and panic semantics match Map. An empty or inverted range
// returns nil.
func MapRange[T any](ctx context.Context, lo, hi, parallelism int, fn func(trial int) T) []T {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return nil
	}
	return Map(ctx, hi-lo, parallelism, func(j int) T { return fn(lo + j) })
}
