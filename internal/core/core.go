// Package core models the hardware embodiment of BlitzCoin inside one tile
// (Sec. IV-A, Fig. 10-11): the coin counter with its 6-bit precision and
// sign bit, the lookup table converting a coin count into a frequency
// target, the control/status registers of the NoC-domain socket, and the
// per-tile power-management unit that chains
//
//	coins -> LUT -> Ftarget -> UVFR (LDO+RO+TDC) -> tile clock.
//
// The distributed exchange protocol itself lives in package coin; this
// package provides the per-tile datapath the SoC simulator instantiates.
package core

import (
	"fmt"

	"blitzcoin/internal/power"
	"blitzcoin/internal/uvfr"
)

// CoinBits is the coin counter precision: 6 bits yield the 64 power levels
// per tile the implementation supports — far finer than the 2-5 levels of
// prior designs (Sec. IV-A).
const CoinBits = 6

// CoinLevels is the number of distinct non-negative coin counts.
const CoinLevels = 1 << CoinBits // 64

// MaxCoins is the largest representable coin count.
const MaxCoins = CoinLevels - 1 // 63

// MinCoins is the most negative transient count. The register carries a
// sign bit to absorb underflow when a delayed request arrives after the
// tile already gave its coins to another neighbor; steady-state counts are
// always non-negative.
const MinCoins = -CoinLevels // -64

// Counter is the 7-bit (sign + 6-bit) saturating coin register.
type Counter struct {
	v          int16
	saturated  uint64
	underflows uint64
}

// Get returns the current count.
func (c *Counter) Get() int64 { return int64(c.v) }

// Set loads a value, saturating at the register bounds.
func (c *Counter) Set(v int64) {
	switch {
	case v > MaxCoins:
		c.v = MaxCoins
		c.saturated++
	case v < MinCoins:
		c.v = MinCoins
		c.saturated++
	default:
		c.v = int16(v)
	}
	if c.v < 0 {
		c.underflows++
	}
}

// Add applies a signed delta with saturation, the single-cycle update the
// FSM performs on a coin exchange.
func (c *Counter) Add(delta int64) { c.Set(int64(c.v) + delta) }

// Negative reports whether the register currently holds a transient
// negative count.
func (c *Counter) Negative() bool { return c.v < 0 }

// Saturations returns how many updates hit the register bounds.
func (c *Counter) Saturations() uint64 { return c.saturated }

// Underflows returns how many updates left the register negative; this must
// only ever be a transient convergence artifact.
func (c *Counter) Underflows() uint64 { return c.underflows }

// FreqLUT is the 64-entry lookup table converting a coin count into the
// tile's target frequency, built from the tile's power pre-characterization
// and the SoC's coin value (mW per coin). Negative transient counts map to
// the minimum frequency.
type FreqLUT struct {
	entries [CoinLevels]float64
}

// BuildLUT constructs the table: entry k is the highest frequency
// sustainable within a power allocation of k coins.
func BuildLUT(curve *power.Curve, mWPerCoin float64) *FreqLUT {
	if mWPerCoin <= 0 {
		panic(fmt.Sprintf("core: invalid coin value %v mW", mWPerCoin))
	}
	var l FreqLUT
	for k := 0; k < CoinLevels; k++ {
		l.entries[k] = curve.FreqAtPower(float64(k) * mWPerCoin)
	}
	return &l
}

// Lookup returns the frequency target for a coin count, clamping transients
// into the table domain.
func (l *FreqLUT) Lookup(coins int64) float64 {
	if coins < 0 {
		coins = 0
	}
	if coins > MaxCoins {
		coins = MaxCoins
	}
	return l.entries[coins]
}

// CSR addresses of the NoC-domain socket's register file (Fig. 11). The
// socket also hosts the ring-oscillator configuration and the BlitzCoin
// unit's configuration registers.
const (
	CSREnable       = 0x00 // 1 = BlitzCoin unit active
	CSRMaxCoins     = 0x04 // target coin count (max)
	CSRHasCoins     = 0x08 // current coin count (read-only mirror)
	CSRRefreshCount = 0x0C // base exchange interval
	CSRFTarget      = 0x10 // current LUT output, MHz (read-only)
	CSRROTrim       = 0x14 // ring-oscillator trim code
	CSRStatus       = 0x18 // bit0: negative transient; bit1: saturated
	CSRFaultStatus  = 0x1C // bit0: fail-stopped; bits 8..: exchange retries
)

// CSRFile is the memory-mapped register file reachable over NoC plane 5.
type CSRFile struct {
	regs map[uint32]uint32
}

// NewCSRFile returns an empty register file.
func NewCSRFile() *CSRFile { return &CSRFile{regs: make(map[uint32]uint32)} }

// Write stores a register value.
func (f *CSRFile) Write(addr, v uint32) { f.regs[addr] = v }

// Read returns a register value (0 when never written).
func (f *CSRFile) Read(addr uint32) uint32 { return f.regs[addr] }

// TilePM is the per-tile power-management datapath: coin counter, LUT, CSRs
// and the UVFR regulator. The SoC harness feeds coin updates in (from the
// distributed exchange) and reads the resulting tile frequency out.
type TilePM struct {
	Counter Counter
	LUT     *FreqLUT
	CSRs    *CSRFile
	Reg     *uvfr.Regulator

	curve   *power.Curve
	dead    bool
	retries uint32
}

// NewTilePM wires a PM unit for an accelerator with the given
// characterization at the given coin value.
func NewTilePM(curve *power.Curve, mWPerCoin float64) *TilePM {
	t := &TilePM{
		LUT:   BuildLUT(curve, mWPerCoin),
		CSRs:  NewCSRFile(),
		Reg:   uvfr.NewRegulator(uvfr.ConfigForCurve(curve)),
		curve: curve,
	}
	t.CSRs.Write(CSREnable, 1)
	return t
}

// SetCoins loads a new coin count (from an exchange) and retargets the
// regulator through the LUT — steps (1), (2) and (4) of the Sec. IV-A
// control flow.
func (t *TilePM) SetCoins(coins int64) {
	if t.dead {
		return
	}
	t.Counter.Set(coins)
	f := t.LUT.Lookup(t.Counter.Get())
	t.Reg.SetTargetMHz(f)
	t.CSRs.Write(CSRHasCoins, uint32(uint16(t.Counter.Get())))
	t.CSRs.Write(CSRFTarget, uint32(f))
	var status uint32
	if t.Counter.Negative() {
		status |= 1
	}
	if t.Counter.Saturations() > 0 {
		status |= 2
	}
	t.CSRs.Write(CSRStatus, status)
}

// SetPowerMW retargets the regulator for a direct power allocation in mW,
// bypassing the coin quantization. The SoC harness uses this path for the
// centralized baselines, whose controllers compute allocations in watts; the
// decentralized path goes through SetCoins and the LUT.
func (t *TilePM) SetPowerMW(mw float64) {
	if t.dead {
		return
	}
	f := t.curve.FreqAtPower(mw)
	t.Reg.SetTargetMHz(f)
	t.CSRs.Write(CSRFTarget, uint32(f))
}

// Coins returns the current coin count.
func (t *TilePM) Coins() int64 { return t.Counter.Get() }

// FTargetMHz returns the LUT output for the current coin count.
func (t *TilePM) FTargetMHz() float64 { return t.Reg.TargetMHz() }

// FreqMHz returns the current (settling or settled) tile clock frequency.
func (t *TilePM) FreqMHz() float64 { return t.Reg.FreqMHz() }

// PowerMW returns the tile's current power draw at its present frequency,
// per the tile's characterization curve; an idle tile (coins at or below
// zero and a zero target) draws the deep-idle power. A fail-stopped tile
// draws nothing.
func (t *TilePM) PowerMW(active bool) float64 {
	if t.dead {
		return 0
	}
	if !active {
		return t.curve.IdlePowerMW()
	}
	return t.curve.PowerAt(t.FreqMHz())
}

// Kill fail-stops the tile's PM unit: the regulator collapses to zero, the
// CSR fault bit latches, and all later coin updates are ignored. Used by
// fault-injection experiments; there is no un-kill.
func (t *TilePM) Kill() {
	if t.dead {
		return
	}
	t.dead = true
	t.Reg.SetTargetMHz(0)
	t.CSRs.Write(CSREnable, 0)
	t.CSRs.Write(CSRFaultStatus, t.CSRs.Read(CSRFaultStatus)|1)
}

// Alive reports whether the PM unit is still running.
func (t *TilePM) Alive() bool { return !t.dead }

// RecordRetry counts one abandoned-and-retried exchange into the fault CSR,
// mirroring the emulator's timeout machinery into the tile's register file.
func (t *TilePM) RecordRetry() {
	t.retries++
	t.CSRs.Write(CSRFaultStatus, t.CSRs.Read(CSRFaultStatus)&0xFF|t.retries<<8)
}

// Curve exposes the tile's characterization.
func (t *TilePM) Curve() *power.Curve { return t.curve }
