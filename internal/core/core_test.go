package core

import (
	"math"
	"testing"
	"testing/quick"

	"blitzcoin/internal/power"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Set(10)
	if c.Get() != 10 || c.Negative() {
		t.Fatalf("get = %d", c.Get())
	}
	c.Add(-15)
	if c.Get() != -5 || !c.Negative() {
		t.Fatalf("transient = %d", c.Get())
	}
	if c.Underflows() == 0 {
		t.Fatal("underflow not counted")
	}
	c.Add(5)
	if c.Negative() {
		t.Fatal("recovered count still negative")
	}
}

func TestCounterSaturation(t *testing.T) {
	var c Counter
	c.Set(1000)
	if c.Get() != MaxCoins {
		t.Fatalf("saturated high = %d, want %d", c.Get(), MaxCoins)
	}
	c.Set(-1000)
	if c.Get() != MinCoins {
		t.Fatalf("saturated low = %d, want %d", c.Get(), MinCoins)
	}
	if c.Saturations() != 2 {
		t.Fatalf("saturations = %d", c.Saturations())
	}
}

func TestCounterRangeProperty(t *testing.T) {
	f := func(vals []int16) bool {
		var c Counter
		for _, v := range vals {
			c.Add(int64(v))
			if c.Get() > MaxCoins || c.Get() < MinCoins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSixtyFourLevels(t *testing.T) {
	if CoinLevels != 64 || MaxCoins != 63 || MinCoins != -64 {
		t.Fatalf("coin register constants wrong: %d %d %d", CoinLevels, MaxCoins, MinCoins)
	}
}

func TestLUTMonotone(t *testing.T) {
	lut := BuildLUT(power.FFT(), 1.0)
	prev := -1.0
	for k := int64(0); k < CoinLevels; k++ {
		f := lut.Lookup(k)
		if f < prev {
			t.Fatalf("LUT not monotone at %d", k)
		}
		prev = f
	}
}

func TestLUTClampsTransients(t *testing.T) {
	lut := BuildLUT(power.FFT(), 1.0)
	if lut.Lookup(-5) != lut.Lookup(0) {
		t.Fatal("negative transient should map to minimum entry")
	}
	if lut.Lookup(1000) != lut.Lookup(MaxCoins) {
		t.Fatal("overflow should map to maximum entry")
	}
}

func TestLUTRespectsCoinValue(t *testing.T) {
	// A larger coin value (mW/coin) reaches Fmax with fewer coins.
	c := power.NVDLA()
	small := BuildLUT(c, 1.0)
	big := BuildLUT(c, 8.0)
	if big.Lookup(20) <= small.Lookup(20) {
		t.Fatal("larger coin value should allow higher frequency at same count")
	}
}

func TestBuildLUTPanicsOnBadCoinValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero coin value did not panic")
		}
	}()
	BuildLUT(power.FFT(), 0)
}

func TestCSRFile(t *testing.T) {
	f := NewCSRFile()
	if f.Read(CSRMaxCoins) != 0 {
		t.Fatal("unwritten register should read 0")
	}
	f.Write(CSRMaxCoins, 42)
	if f.Read(CSRMaxCoins) != 42 {
		t.Fatal("register readback failed")
	}
}

func TestTilePMChain(t *testing.T) {
	// SetCoins must flow through LUT to the regulator target, and the
	// regulator must then settle near that frequency.
	pm := NewTilePM(power.FFT(), 1.0)
	pm.SetCoins(40)
	want := pm.LUT.Lookup(40)
	if pm.FTargetMHz() != want {
		t.Fatalf("target %v, want LUT output %v", pm.FTargetMHz(), want)
	}
	if _, ok := pm.Reg.SettleCycles(2000); !ok {
		t.Fatal("regulator did not settle")
	}
	if math.Abs(pm.FreqMHz()-want) > 110 {
		t.Fatalf("freq %.1f after settling, want about %.1f", pm.FreqMHz(), want)
	}
	if pm.CSRs.Read(CSREnable) != 1 {
		t.Fatal("PM unit not enabled")
	}
	if got := pm.CSRs.Read(CSRFTarget); got != uint32(want) {
		t.Fatalf("CSRFTarget = %d, want %d", got, uint32(want))
	}
}

func TestTilePMPower(t *testing.T) {
	pm := NewTilePM(power.Viterbi(), 0.5)
	pm.SetCoins(63)
	pm.Reg.SettleCycles(2000)
	active := pm.PowerMW(true)
	idle := pm.PowerMW(false)
	if active <= idle {
		t.Fatalf("active %v <= idle %v", active, idle)
	}
	if idle >= pm.Curve().PMin() {
		t.Fatal("idle power should be below the minimum operating point")
	}
}

func TestTilePMNegativeStatusBit(t *testing.T) {
	pm := NewTilePM(power.FFT(), 1.0)
	pm.SetCoins(-3)
	if pm.CSRs.Read(CSRStatus)&1 == 0 {
		t.Fatal("negative transient not reflected in status CSR")
	}
	pm.SetCoins(5)
	if pm.CSRs.Read(CSRStatus)&1 != 0 {
		t.Fatal("status bit stuck after recovery")
	}
}
