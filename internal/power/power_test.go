package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"FFT", "Viterbi", "NVDLA", "GEMM", "Conv2D", "Vision"} {
		c, ok := cat[name]
		if !ok {
			t.Fatalf("missing accelerator %q", name)
		}
		if c.Name != name {
			t.Fatalf("curve name %q under key %q", c.Name, name)
		}
	}
}

func TestCurvesMonotone(t *testing.T) {
	for name, c := range Catalog() {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].FMHz <= c.Points[i-1].FMHz {
				t.Fatalf("%s: frequency not strictly increasing at %d", name, i)
			}
			if c.Points[i].PmW <= c.Points[i-1].PmW {
				t.Fatalf("%s: power not strictly increasing with frequency at %d", name, i)
			}
			if c.Points[i].V <= c.Points[i-1].V {
				t.Fatalf("%s: voltage not increasing with frequency at %d", name, i)
			}
		}
	}
}

func TestPaperVoltageRanges(t *testing.T) {
	// Fig. 13: FFT/Viterbi 0.5-1.0 V, NVDLA 0.6-1.0 V, GEMM/Conv2D/Vision
	// 0.6-0.9 V.
	ranges := map[string][2]float64{
		"FFT": {0.5, 1.0}, "Viterbi": {0.5, 1.0}, "NVDLA": {0.6, 1.0},
		"GEMM": {0.6, 0.9}, "Conv2D": {0.6, 0.9}, "Vision": {0.6, 0.9},
	}
	for name, want := range ranges {
		c := Catalog()[name]
		lo := c.Points[0].V
		hi := c.Points[len(c.Points)-1].V
		if math.Abs(lo-want[0]) > 1e-9 || math.Abs(hi-want[1]) > 1e-9 {
			t.Fatalf("%s voltage range [%v,%v], want %v", name, lo, hi, want)
		}
	}
}

func TestSoCBudgetFractions(t *testing.T) {
	// The 3x3 SoC budget of 120 mW must be 30% of the combined max power
	// of 3 FFT + 2 Viterbi + 1 NVDLA (Sec. VI-A).
	combined3x3 := 3*FFT().PMax() + 2*Viterbi().PMax() + NVDLA().PMax()
	if math.Abs(combined3x3-400) > 1 {
		t.Fatalf("3x3 combined max = %.1f mW, want 400", combined3x3)
	}
	// C-RR must be able to grant even the largest accelerator under the
	// paper's high 3x3 budget (120 mW), or the discrete max/min policy
	// degenerates.
	if NVDLA().PMax() > 120 {
		t.Fatalf("NVDLA PMax %.1f exceeds the 120 mW budget", NVDLA().PMax())
	}
	// The 4x4 SoC: 450 mW is about 33%, 900 about 66% of the combined max
	// (Sec. VI-B).
	combined4x4 := 4*Vision().PMax() + 5*GEMM().PMax() + 4*Conv2D().PMax()
	if frac := 450 / combined4x4; frac < 0.30 || frac > 0.36 {
		t.Fatalf("4x4 450 mW fraction = %.3f, want about 0.33", frac)
	}
	if frac := 900 / combined4x4; frac < 0.60 || frac > 0.72 {
		t.Fatalf("4x4 900 mW fraction = %.3f, want about 0.66", frac)
	}
}

func TestTenXPowerSpread(t *testing.T) {
	// Sec. II-A: up to 10x power spread across heterogeneous accelerators.
	lo, hi := math.Inf(1), 0.0
	for _, c := range Catalog() {
		if c.PMax() < lo {
			lo = c.PMax()
		}
		if c.PMax() > hi {
			hi = c.PMax()
		}
	}
	if spread := hi / lo; spread < 5 || spread > 12 {
		t.Fatalf("power spread %.1fx, want order of 10x", spread)
	}
}

func TestPowerFreqInverseConsistency(t *testing.T) {
	// FreqAtPower(PowerAt(f)) == f within interpolation error for any f in
	// range, for all curves (monotone bijection).
	for name, c := range Catalog() {
		c := c
		f := func(x float64) bool {
			frac := math.Abs(x) - math.Floor(math.Abs(x)) // in [0,1)
			fr := c.FMin() + frac*(c.FMax()-c.FMin())
			back := c.FreqAtPower(c.PowerAt(fr))
			return math.Abs(back-fr) < 1e-6*c.FMax()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestClamping(t *testing.T) {
	c := FFT()
	if got := c.PowerAt(0); got != c.PMin() {
		t.Fatalf("below-range power = %v, want PMin %v", got, c.PMin())
	}
	if got := c.PowerAt(1e6); got != c.PMax() {
		t.Fatalf("above-range power = %v, want PMax %v", got, c.PMax())
	}
	if got := c.FreqAtPower(0); got != c.FMin() {
		t.Fatalf("below-range freq = %v, want FMin %v", got, c.FMin())
	}
	if got := c.FreqAtPower(1e6); got != c.FMax() {
		t.Fatalf("above-range freq = %v, want FMax %v", got, c.FMax())
	}
}

func TestIdlePower(t *testing.T) {
	// Sec. V-A: idle tiles save 7.5x below the Vmin operating point,
	// making power gating unnecessary.
	for name, c := range Catalog() {
		if got := c.IdlePowerMW(); math.Abs(got-c.PMin()/7.5) > 1e-12 {
			t.Fatalf("%s idle power %v, want PMin/7.5", name, got)
		}
		if c.IdlePowerMW() >= c.PMin() {
			t.Fatalf("%s idle power not below PMin", name)
		}
	}
}

func TestVoltageAt(t *testing.T) {
	c := NVDLA()
	if v := c.VoltageAt(c.FMax()); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("VoltageAt(FMax) = %v, want 1.0", v)
	}
	if v := c.VoltageAt(c.FMin()); math.Abs(v-0.6) > 1e-9 {
		t.Fatalf("VoltageAt(FMin) = %v, want 0.6", v)
	}
	mid := (c.FMin() + c.FMax()) / 2
	v := c.VoltageAt(mid)
	if v <= 0.6 || v >= 1.0 {
		t.Fatalf("mid voltage %v out of range", v)
	}
}

func TestSuperlinearPowerVsFrequency(t *testing.T) {
	// DVFS premise: halving frequency saves more than half the power.
	for name, c := range Catalog() {
		half := c.PowerAt(c.FMax() / 2)
		if half >= c.PMax()/2 {
			t.Fatalf("%s: P(F/2) = %.2f not < PMax/2 = %.2f", name, half, c.PMax()/2)
		}
	}
}

func TestSynthesizePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	Synthesize(ModelParams{Name: "bad", VMin: 0.2, VMax: 0.1, FMaxMHz: 100, PMaxmW: 10})
}
