// Package power models the power/frequency characterization of the
// accelerators evaluated in the paper (Fig. 13).
//
// The paper characterizes six accelerators: FFT, Viterbi, and NVDLA from
// ASIC measurements of the 12 nm prototype (0.5-1.0 V; NVDLA 0.6-1.0 V), and
// GEMM, Conv2D, and Vision from post-synthesis Cadence Joules simulation
// (0.6-0.9 V). Since neither the silicon nor the proprietary PDK is
// available here, each curve is synthesized from a standard alpha-power
// device model fit to the paper's reported ranges:
//
//	F(V) = Fmax * ((V-Vt)/(Vmax-Vt))^alpha          (alpha-power law)
//	P(V) = Pdyn * (V/Vmax)^2 * (F/Fmax) + Pleak * (V/Vmax)^3
//
// The BlitzCoin machinery consumes only the monotone P(F) relation and its
// inverse, which this model preserves: power grows superlinearly with
// frequency, and reducing frequency further at the minimum voltage yields
// the large idle savings the paper reports (7.5x below the Vmin operating
// point).
package power

import (
	"fmt"
	"math"
	"sort"
)

// Point is one DVFS operating point of an accelerator.
type Point struct {
	V    float64 // supply voltage (V)
	FMHz float64 // maximum frequency at V (MHz)
	PmW  float64 // power at (V, FMHz) (mW)
}

// Curve is a monotone power/frequency characterization, the per-tile
// pre-characterization the coin-to-frequency LUT is built from (Sec. IV-A).
type Curve struct {
	Name string
	// Points are sorted by ascending frequency.
	Points []Point
	// IdleFactor is the additional power reduction available by frequency
	// scaling at the minimum voltage when a tile is idle; the paper
	// measures 7.5x.
	IdleFactor float64
}

// ModelParams are the inputs to the alpha-power synthesis.
type ModelParams struct {
	Name       string
	VMin, VMax float64
	FMaxMHz    float64 // frequency at VMax
	PMaxmW     float64 // total power at (VMax, FMax)
	LeakFrac   float64 // fraction of PMax that is leakage
	Vt         float64 // threshold voltage
	Alpha      float64 // velocity-saturation exponent
	NumPoints  int     // operating points across [VMin, VMax]
}

// defaults fills unset model fields with 12nm-class values.
func (p ModelParams) defaults() ModelParams {
	if p.Vt == 0 {
		p.Vt = 0.30
	}
	if p.Alpha == 0 {
		p.Alpha = 1.3
	}
	if p.LeakFrac == 0 {
		p.LeakFrac = 0.12
	}
	if p.NumPoints == 0 {
		p.NumPoints = 11
	}
	return p
}

// Synthesize builds a Curve from the alpha-power model.
func Synthesize(p ModelParams) *Curve {
	p = p.defaults()
	if p.VMin <= p.Vt || p.VMax <= p.VMin || p.FMaxMHz <= 0 || p.PMaxmW <= 0 {
		panic(fmt.Sprintf("power: invalid model params %+v", p))
	}
	c := &Curve{Name: p.Name, IdleFactor: 7.5}
	fOf := func(v float64) float64 {
		return p.FMaxMHz * math.Pow((v-p.Vt)/(p.VMax-p.Vt), p.Alpha)
	}
	pdyn := p.PMaxmW * (1 - p.LeakFrac)
	pleak := p.PMaxmW * p.LeakFrac
	for i := 0; i < p.NumPoints; i++ {
		v := p.VMin + (p.VMax-p.VMin)*float64(i)/float64(p.NumPoints-1)
		f := fOf(v)
		pw := pdyn*(v/p.VMax)*(v/p.VMax)*(f/p.FMaxMHz) + pleak*math.Pow(v/p.VMax, 3)
		c.Points = append(c.Points, Point{V: v, FMHz: f, PmW: pw})
	}
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].FMHz < c.Points[j].FMHz })
	return c
}

// FMax returns the maximum operating frequency in MHz.
func (c *Curve) FMax() float64 { return c.Points[len(c.Points)-1].FMHz }

// FMin returns the minimum characterized operating frequency in MHz.
func (c *Curve) FMin() float64 { return c.Points[0].FMHz }

// PMax returns the power at FMax in mW.
func (c *Curve) PMax() float64 { return c.Points[len(c.Points)-1].PmW }

// PMin returns the power at the minimum operating point in mW.
func (c *Curve) PMin() float64 { return c.Points[0].PmW }

// IdlePowerMW returns the power of an idle tile: frequency scaled far down
// at the minimum voltage, the paper's preferred alternative to power gating
// (Sec. V-A).
func (c *Curve) IdlePowerMW() float64 { return c.PMin() / c.IdleFactor }

// PowerAt returns the power in mW when running at fMHz, interpolating
// linearly between characterized points and clamping to the curve's range.
func (c *Curve) PowerAt(fMHz float64) float64 {
	pts := c.Points
	if fMHz <= pts[0].FMHz {
		return pts[0].PmW
	}
	if fMHz >= pts[len(pts)-1].FMHz {
		return pts[len(pts)-1].PmW
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].FMHz >= fMHz })
	a, b := pts[i-1], pts[i]
	t := (fMHz - a.FMHz) / (b.FMHz - a.FMHz)
	return a.PmW + t*(b.PmW-a.PmW)
}

// FreqAtPower returns the highest frequency in MHz sustainable within a
// power allocation of pmW, the inverse lookup the coin-to-frequency LUT
// implements. Allocations below PMin clamp to FMin; above PMax to FMax.
func (c *Curve) FreqAtPower(pmW float64) float64 {
	pts := c.Points
	if pmW <= pts[0].PmW {
		return pts[0].FMHz
	}
	if pmW >= pts[len(pts)-1].PmW {
		return pts[len(pts)-1].FMHz
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].PmW >= pmW })
	a, b := pts[i-1], pts[i]
	t := (pmW - a.PmW) / (b.PmW - a.PmW)
	return a.FMHz + t*(b.FMHz-a.FMHz)
}

// VoltageAt returns the supply voltage for frequency fMHz (the UVFR
// operating point), interpolated and clamped like PowerAt.
func (c *Curve) VoltageAt(fMHz float64) float64 {
	pts := c.Points
	if fMHz <= pts[0].FMHz {
		return pts[0].V
	}
	if fMHz >= pts[len(pts)-1].FMHz {
		return pts[len(pts)-1].V
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].FMHz >= fMHz })
	a, b := pts[i-1], pts[i]
	t := (fMHz - a.FMHz) / (b.FMHz - a.FMHz)
	return a.V + t*(b.V-a.V)
}

// The six accelerators of the evaluated SoCs (Fig. 12, Fig. 13). The peak
// powers are chosen so each SoC's combined maximum matches the paper's
// budget fractions: the 3x3 SoC's budgets of 120/60 mW are 30%/15% of the
// combined 400 mW (3 FFT + 2 Viterbi + 1 NVDLA), and the 4x4 SoC's budgets
// of 450/900 mW are roughly 33%/66% of the combined ~1390 mW.

// FFT returns the Fast Fourier Transform accelerator curve (depth
// estimation in the autonomous-vehicle workload); ASIC-measured 0.5-1.0 V.
func FFT() *Curve {
	return Synthesize(ModelParams{Name: "FFT", VMin: 0.5, VMax: 1.0, FMaxMHz: 800, PMaxmW: 64})
}

// Viterbi returns the Viterbi decoder curve (vehicle-to-vehicle
// communication); ASIC-measured 0.5-1.0 V.
func Viterbi() *Curve {
	return Synthesize(ModelParams{Name: "Viterbi", VMin: 0.5, VMax: 1.0, FMaxMHz: 800, PMaxmW: 59})
}

// NVDLA returns the NVIDIA Deep Learning Accelerator curve (object
// detection); ASIC-measured 0.6-1.0 V, an order of magnitude more power
// than the small accelerators — the 10x spread Sec. II-A cites.
func NVDLA() *Curve {
	return Synthesize(ModelParams{Name: "NVDLA", VMin: 0.6, VMax: 1.0, FMaxMHz: 700, PMaxmW: 90})
}

// GEMM returns the dense matrix-multiply accelerator curve (CNN inference);
// Joules-characterized 0.6-0.9 V.
func GEMM() *Curve {
	return Synthesize(ModelParams{Name: "GEMM", VMin: 0.6, VMax: 0.9, FMaxMHz: 750, PMaxmW: 150})
}

// Conv2D returns the 2D-convolution accelerator curve (CNN inference);
// Joules-characterized 0.6-0.9 V.
func Conv2D() *Curve {
	return Synthesize(ModelParams{Name: "Conv2D", VMin: 0.6, VMax: 0.9, FMaxMHz: 750, PMaxmW: 120})
}

// Vision returns the computer-vision accelerator curve (noise filtering,
// histogram equalization, DWT); Joules-characterized 0.6-0.9 V.
func Vision() *Curve {
	return Synthesize(ModelParams{Name: "Vision", VMin: 0.6, VMax: 0.9, FMaxMHz: 600, PMaxmW: 20})
}

// Catalog returns all accelerator curves by name.
func Catalog() map[string]*Curve {
	return map[string]*Curve{
		"FFT":     FFT(),
		"Viterbi": Viterbi(),
		"NVDLA":   NVDLA(),
		"GEMM":    GEMM(),
		"Conv2D":  Conv2D(),
		"Vision":  Vision(),
	}
}
