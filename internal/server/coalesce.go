package server

import "sync"

// flight is one in-progress computation shared by every request that asked
// for the same canonical hash while it ran. done closes when bytes/err are
// final.
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// flightGroup coalesces concurrent identical requests: the first caller
// for a key becomes the leader and computes; everyone else waits on the
// leader's flight. This is the singleflight pattern, hand-rolled because
// the repo is stdlib-only.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// lease returns the flight for key and whether the caller is its leader.
// The leader must call complete exactly once.
func (g *flightGroup) lease(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the leader's outcome and retires the flight: later
// requests for the key start fresh (and will hit the cache instead).
func (g *flightGroup) complete(key string, f *flight, b []byte, err error) {
	f.bytes, f.err = b, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
