package server

import (
	"context"
	"sync"
)

// flight is one in-progress computation shared by every request that asked
// for the same canonical hash while it ran. done closes when bytes/err are
// final.
//
// Shard flights (leaseShard) additionally carry a cancellable context and
// a waiter count: when every attached request has abandoned the flight —
// a speculation race was lost, or the coordinator cancelled the sweep —
// the computation itself is cancelled so the worker slot frees up, instead
// of burning a pool slot on rows nobody will read. Sweep flights (lease)
// keep the opposite policy: they run detached so the result still lands
// in the cache for the next asker.
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error

	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
}

// flightGroup coalesces concurrent identical requests: the first caller
// for a key becomes the leader and computes; everyone else waits on the
// leader's flight. This is the singleflight pattern, hand-rolled because
// the repo is stdlib-only.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// lease returns the flight for key and whether the caller is its leader.
// The leader must call complete exactly once. The computation is
// detached: it cannot be cancelled by departing waiters.
func (g *flightGroup) lease(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// leaseShard is lease for cancellable shard computations: the returned
// flight carries a context derived from base that abandon cancels once
// the last waiter departs. Every caller must call abandon exactly once if
// it stops waiting before the flight completes.
func (g *flightGroup) leaseShard(key string, base context.Context) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		return f, false
	}
	ctx, cancel := context.WithCancel(base)
	f := &flight{done: make(chan struct{}), ctx: ctx, cancel: cancel, waiters: 1}
	g.m[key] = f
	return f, true
}

// abandon detaches one waiter from a shard flight; the last departure
// cancels the computation.
func (g *flightGroup) abandon(f *flight) {
	g.mu.Lock()
	f.waiters--
	last := f.waiters <= 0
	g.mu.Unlock()
	if last && f.cancel != nil {
		f.cancel()
	}
}

// active reports whether any flight is computing for the canonical hash:
// the sweep flight keyed by the hash itself, or any shard flight keyed by
// the hash extended with a trial range. The SSE drain path uses it to
// decide whether a subscriber still has a completion to wait for.
func (g *flightGroup) active(hash string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.m[hash]; ok {
		return true
	}
	for k := range g.m {
		if len(k) > len(hash) && k[:len(hash)] == hash && k[len(hash)] == ':' {
			return true
		}
	}
	return false
}

// complete publishes the leader's outcome and retires the flight: later
// requests for the key start fresh (and will hit the cache instead).
func (g *flightGroup) complete(key string, f *flight, b []byte, err error) {
	f.bytes, f.err = b, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	if f.cancel != nil {
		f.cancel()
	}
	close(f.done)
}
