package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"blitzcoin"
	"blitzcoin/internal/trace"
)

// streamEvent is the SSE data payload of one trace event: the flat wire
// form of trace.Event plus the synthetic fields the server adds (a cached
// sweep reports done without replaying its run).
type streamEvent struct {
	Type   string  `json:"type"`
	Seq    uint64  `json:"seq,omitempty"`
	Key    string  `json:"key"`
	Series string  `json:"series,omitempty"`
	Worker string  `json:"worker,omitempty"`
	Cycle  uint64  `json:"cycle,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Trial  int     `json:"trial"`
	Total  int     `json:"total,omitempty"`
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi,omitempty"`
	OK     bool    `json:"ok"`
	// Cached marks a synthetic sweep-done for a result that was already in
	// the cache when the subscriber attached.
	Cached bool `json:"cached,omitempty"`
}

// wireEvent flattens a bus event for the SSE payload.
func wireEvent(ev trace.Event) streamEvent {
	return streamEvent{
		Type:   ev.Type.String(),
		Seq:    ev.Seq,
		Key:    ev.Key,
		Series: ev.Series,
		Worker: ev.Worker,
		Cycle:  ev.Cycle,
		Value:  ev.Value,
		Trial:  ev.Trial,
		Total:  ev.Total,
		Lo:     ev.Lo,
		Hi:     ev.Hi,
		OK:     ev.OK,
	}
}

// writeSSE writes one server-sent event frame: event name, id, and a JSON
// data line.
func writeSSE(w http.ResponseWriter, se streamEvent) error {
	data, err := json.Marshal(se)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", se.Type, se.Seq, data)
	return err
}

// handleStream serves GET /v1/stream?hash=...: a server-sent-event stream
// of the sweep's live events — trial progress, convergence markers, power
// series points, and (in coordinator mode) shard lifecycle — ending with
// the sweep-done or sweep-failed event. A hash already in the result
// cache gets an immediate synthetic sweep-done. Subscribers are
// backpressured by a bounded ring: a client that reads too slowly loses
// its oldest events (counted in blitzd_stream_dropped_total), never the
// sweep result itself.
//
// Drain: new subscriptions are refused with 503 while draining; streams
// already open when the drain begins keep following any sweep that is
// still in flight and end as soon as nothing is computing for their hash.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	hash := r.URL.Query().Get("hash")
	if hash == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"missing hash query parameter"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{"server draining"})
		return
	}

	// Subscribe before the cache check: if the sweep completes between the
	// two, either the cache has it (synthetic done below) or its
	// sweep-done event is already queued in the subscription.
	sub := s.bus.Subscribe(hash, s.streamBuf)
	defer func() {
		sub.Close()
		s.metrics.addStreamDropped(sub.Dropped())
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	if _, ok := s.cache.get(hash); ok {
		if err := writeSSE(w, streamEvent{Type: "sweep-done", Key: hash, OK: true, Cached: true}); err != nil {
			return // client gone before the synthetic done; nothing to flush
		}
		fl.Flush()
		return
	}
	fl.Flush()

	keepalive := time.NewTicker(10 * time.Second)
	defer keepalive.Stop()
	drainCh := s.drainCh
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			s.metrics.addStreamEvents(1)
			if err := writeSSE(w, wireEvent(ev)); err != nil {
				return
			}
			fl.Flush()
			if ev.Type == trace.EventSweepDone || ev.Type == trace.EventSweepFailed {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-drainCh:
			// Drain began. If nothing is computing for this hash anymore,
			// no completion event will ever arrive — end the stream so
			// http.Server.Shutdown can finish. Otherwise keep following
			// the in-flight sweep to its done/failed event.
			if !s.flights.active(hash) {
				return
			}
			drainCh = nil
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// handleLedgerProof serves GET /v1/ledger/proof?hash=...[&engine=...]: a
// self-contained inclusion proof for the newest ledgered result of the
// given options hash. engine defaults to the serving engine's version.
// Reads stay available through a drain — verification is how clients
// audit results they already hold.
func (s *Server) handleLedgerProof(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no ledger configured (start blitzd with -ledger)"})
		return
	}
	hash := r.URL.Query().Get("hash")
	if hash == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"missing hash query parameter"})
		return
	}
	engine := r.URL.Query().Get("engine")
	if engine == "" {
		engine = blitzcoin.EngineVersion
	}
	p, err := s.ledger.Proof(hash, engine)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// ledgerRootBody is the body of GET /v1/ledger/root.
type ledgerRootBody struct {
	Size          uint64 `json:"size"`
	Root          string `json:"root"`
	EngineVersion string `json:"engine_version"`
}

// handleLedgerRoot serves GET /v1/ledger/root: the current tree size and
// head, for clients that pin a trusted root out of band.
func (s *Server) handleLedgerRoot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"no ledger configured (start blitzd with -ledger)"})
		return
	}
	size, root := s.ledger.Root()
	writeJSON(w, http.StatusOK, ledgerRootBody{Size: size, Root: root, EngineVersion: blitzcoin.EngineVersion})
}
