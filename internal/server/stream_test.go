package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blitzcoin"
	"blitzcoin/internal/ledger"
)

// hashOf computes the canonical hash of a request body the way the
// server will.
func hashOf(t *testing.T, body string) string {
	t.Helper()
	var req blitzcoin.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	h, err := req.Normalized().CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// sseEvent is one parsed frame of an SSE response.
type sseEvent struct {
	event string
	data  streamEvent
}

// readSSE parses frames until the stream ends, the terminal sweep event
// arrives, or the limit is hit.
func readSSE(t *testing.T, body *bufio.Scanner, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	event := ""
	for body.Scan() && len(out) < limit {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var se streamEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &se); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			out = append(out, sseEvent{event, se})
			if event == "sweep-done" || event == "sweep-failed" {
				return out
			}
		}
	}
	return out
}

// TestStreamFollowsSweep: a subscriber attached before the sweep sees its
// trial progress and the terminal sweep-done event.
func TestStreamFollowsSweep(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"trials": 3, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "seed": 41}}`
	hash := hashOf(t, body)

	resp, err := ts.Client().Get(ts.URL + "/v1/stream?hash=" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("content type %q", got)
	}

	post, env := postSweep(t, ts, body)
	if post.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", post.StatusCode)
	}
	if env.RequestHash != hash {
		t.Fatalf("hash drift: client %s, server %s", hash, env.RequestHash)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	events := readSSE(t, sc, 1000)
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	byType := map[string]int{}
	for _, ev := range events {
		byType[ev.event]++
		if ev.data.Key != hash {
			t.Fatalf("foreign event key %q", ev.data.Key)
		}
	}
	if byType["trial-start"] != 3 || byType["trial-done"] != 3 {
		t.Fatalf("trial events %v, want 3 starts and 3 dones", byType)
	}
	if byType["sweep-start"] != 1 || byType["sweep-done"] != 1 {
		t.Fatalf("lifecycle events %v", byType)
	}
	last := events[len(events)-1]
	if last.event != "sweep-done" || !last.data.OK || last.data.Cached {
		t.Fatalf("terminal event %+v", last)
	}
}

// TestStreamCachedHashAnswersImmediately: a hash already in the cache
// gets one synthetic sweep-done instead of an open-ended stream.
func TestStreamCachedHashAnswersImmediately(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := postSweep(t, ts, tinyExchange); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	hash := hashOf(t, tinyExchange)

	resp, err := ts.Client().Get(ts.URL + "/v1/stream?hash=" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	events := readSSE(t, sc, 10)
	if len(events) != 1 {
		t.Fatalf("got %d events, want the synthetic done", len(events))
	}
	if ev := events[0]; ev.event != "sweep-done" || !ev.data.Cached || !ev.data.OK {
		t.Fatalf("synthetic event %+v", ev)
	}
}

// TestStreamDrain: new subscriptions are refused with 503+Retry-After
// once the drain begins, while a stream that was already following an
// in-flight sweep still receives its completion.
func TestStreamDrain(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{
		Logger:  quiet,
		Workers: 2,
		Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
			<-release
			return blitzcoin.Execute(ctx, req)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"trials": 2, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "seed": 43}}`
	hash := hashOf(t, body)

	// Attach a subscriber, then start the sweep and wait until its flight
	// is registered.
	resp, err := ts.Client().Get(ts.URL + "/v1/stream?hash=" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		postSweep(t, ts, body)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.flights.active(hash) {
		if time.Now().After(deadline) {
			t.Fatal("flight never became active")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()

	// New subscriptions are refused.
	refused, err := ts.Client().Get(ts.URL + "/v1/stream?hash=" + hash)
	if err != nil {
		t.Fatal(err)
	}
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable || refused.Header.Get("Retry-After") == "" {
		t.Fatalf("draining subscription: status %d, Retry-After %q",
			refused.StatusCode, refused.Header.Get("Retry-After"))
	}

	// The in-flight sweep finishes and the open stream sees it through.
	close(release)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	events := readSSE(t, sc, 1000)
	if len(events) == 0 || events[len(events)-1].event != "sweep-done" {
		t.Fatalf("drained stream ended without sweep-done (%d events)", len(events))
	}
	<-sweepDone
}

// TestStreamRejectsBadRequests: non-GET and missing hash are 4xx.
func TestStreamRejectsBadRequests(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/stream", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST stream: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing hash: %d", resp.StatusCode)
	}
}

// TestLedgerStampingAndProof: with a ledger configured, served results
// carry ledger provenance, the proof endpoint returns a verifying
// inclusion proof bound to the canonical result SHA, and the cached copy
// is byte-identical on re-serve.
func TestLedgerStampingAndProof(t *testing.T) {
	led, err := ledger.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Logger: quiet, Workers: 2, Ledger: led})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, env := postSweep(t, ts, tinyExchange)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var res blitzcoin.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	meta := res.Meta()
	if meta == nil || meta.LedgerSeq != 1 || meta.LedgerRoot == "" {
		t.Fatalf("result not stamped: %+v", meta)
	}

	sha, err := blitzcoin.CanonicalResultSHA(env.Result)
	if err != nil {
		t.Fatal(err)
	}
	proofResp, err := ts.Client().Get(ts.URL + "/v1/ledger/proof?hash=" + env.RequestHash)
	if err != nil {
		t.Fatal(err)
	}
	defer proofResp.Body.Close()
	if proofResp.StatusCode != http.StatusOK {
		t.Fatalf("proof status %d", proofResp.StatusCode)
	}
	var p ledger.Proof
	if err := json.NewDecoder(proofResp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Key != env.RequestHash || p.Engine != blitzcoin.EngineVersion || p.ResultSHA != sha {
		t.Fatalf("proof binds (%s, %s, %s); served (%s, %s, %s)",
			p.Key, p.Engine, p.ResultSHA, env.RequestHash, blitzcoin.EngineVersion, sha)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("proof: %v", err)
	}
	if p.Root != meta.LedgerRoot {
		t.Fatalf("stamped root %s, proof root %s", meta.LedgerRoot, p.Root)
	}

	// The cached re-serve is byte-identical, stamp included.
	resp2, env2 := postSweep(t, ts, tinyExchange)
	if resp2.StatusCode != http.StatusOK || !env2.Cached {
		t.Fatalf("reserve: status %d cached %v", resp2.StatusCode, env2.Cached)
	}
	if string(env2.Result) != string(env.Result) {
		t.Fatal("cached result bytes drifted from the stamped original")
	}

	rootResp, err := ts.Client().Get(ts.URL + "/v1/ledger/root")
	if err != nil {
		t.Fatal(err)
	}
	defer rootResp.Body.Close()
	var rb ledgerRootBody
	if err := json.NewDecoder(rootResp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	if rb.Size != 1 || rb.Root != p.Root {
		t.Fatalf("ledger root %+v, proof root %s", rb, p.Root)
	}
}

// TestLedgerEndpointsWithoutLedger: both endpoints 404 when blitzd runs
// without -ledger.
func TestLedgerEndpointsWithoutLedger(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/ledger/proof?hash=x", "/v1/ledger/root"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
