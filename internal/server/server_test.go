package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blitzcoin"
)

// quiet drops log output in tests.
var quiet = slog.New(slog.NewTextHandler(io.Discard, nil))

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, Response) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Response
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("bad envelope %q: %v", raw, err)
		}
	}
	return resp, env
}

const tinyExchange = `{"trials": 2, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "seed": 1}}`

func TestCoalescingSharesOneComputation(t *testing.T) {
	var executions atomic.Int64
	release := make(chan struct{})
	srv := New(Config{
		Logger:  quiet,
		Workers: 4,
		Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
			executions.Add(1)
			<-release
			return blitzcoin.Execute(ctx, req)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	envs := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, env := postSweep(t, ts, tinyExchange)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: HTTP %d", i, resp.StatusCode)
			}
			envs[i] = env
		}(i)
	}
	// Release the single computation only once every request has joined
	// the flight, so coalescing is actually exercised.
	deadline := time.After(10 * time.Second)
	for srv.Inflight() < n {
		select {
		case <-deadline:
			t.Fatalf("only %d requests in flight", srv.Inflight())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("%d executions for %d identical requests, want 1", got, n)
	}
	coalesced := 0
	for i := 1; i < n; i++ {
		if !bytes.Equal(envs[i].Result, envs[0].Result) {
			t.Fatalf("request %d result differs", i)
		}
		if envs[i].Coalesced {
			coalesced++
		}
	}
	if envs[0].Coalesced {
		coalesced++
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, n-1)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postSweep(t, ts, tinyExchange)
	if first.Cached {
		t.Fatal("first request claims cached")
	}
	if first.RequestHash == "" || first.EngineVersion != blitzcoin.EngineVersion {
		t.Fatalf("envelope underspecified: %+v", first)
	}

	// Same request, spelled with the defaults elided differently — the
	// canonical hash must still hit.
	respelled := `{"kind": "exchange", "trials": 2, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "mode": "1-way", "seed": 1}}`
	_, second := postSweep(t, ts, respelled)
	if !second.Cached {
		t.Fatal("second request missed the cache")
	}
	if second.RequestHash != first.RequestHash {
		t.Fatalf("hash drifted: %s vs %s", second.RequestHash, first.RequestHash)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Fatal("cached result not byte-identical")
	}

	// The cached rows really are the computation's rows.
	var res blitzcoin.Result
	if err := json.Unmarshal(second.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Exchange == nil || len(res.Exchange.Rows) != 2 {
		t.Fatalf("cached result shape: %+v", res)
	}
}

func TestCacheEviction(t *testing.T) {
	srv := New(Config{Logger: quiet, CacheEntries: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postSweep(t, ts, tinyExchange)
	postSweep(t, ts, `{"trials": 1, "exchange": {"dim": 4, "seed": 9}}`)
	_, again := postSweep(t, ts, tinyExchange)
	if again.Cached {
		t.Fatal("evicted entry served from cache")
	}
	_, _, evictions, entries, _ := srv.cache.stats()
	if evictions == 0 || entries != 1 {
		t.Fatalf("evictions=%d entries=%d", evictions, entries)
	}
}

func TestMetricsAfterRequest(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postSweep(t, ts, tinyExchange)
	postSweep(t, ts, tinyExchange)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`blitzd_requests_total{kind="exchange",status="ok"} 2`,
		"blitzd_cache_hits_total 1",
		"blitzd_cache_misses_total 1",
		"blitzd_cache_entries 1",
		"blitzd_sweep_rows_total 2",
		"blitzd_request_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "blitzd_cache_bytes 0\n") {
		t.Error("cache bytes gauge stayed zero")
	}
}

func TestValidationErrors(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"empty":         `{}`,
		"bad json":      `{"exchange": `,
		"unknown field": `{"exchange": {"dimension": 4}}`,
		"bad options":   `{"exchange": {"dim": 1}}`,
		"two payloads":  `{"exchange": {}, "soc": {}}`,
	} {
		resp, _ := postSweep(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: HTTP %d, want 405", resp.StatusCode)
	}
}

func TestEngineErrorIs500(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Validates (names are known) but panics inside the engine: the 3x3
	// platform lacks the CV accelerators.
	resp, _ := postSweep(t, ts, `{"soc": {"soc": "3x3", "workload": "cv-parallel", "repeat": 1}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500", resp.StatusCode)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		Logger: quiet,
		Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
			close(started)
			<-release
			return blitzcoin.Execute(ctx, req)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan Response, 1)
	go func() {
		_, env := postSweep(t, ts, tinyExchange)
		done <- env
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// While draining, new sweeps are refused.
	for srv.draining.Load() == false {
		time.Sleep(time.Millisecond)
	}
	resp, _ := postSweep(t, ts, `{"trials": 1, "exchange": {"dim": 4, "seed": 3}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: HTTP %d, want 503", resp.StatusCode)
	}

	// The in-flight sweep still completes.
	close(release)
	env := <-done
	if len(env.Result) == 0 {
		t.Fatal("draining server dropped the in-flight result")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Cached entries survive the drain and stay servable.
	resp, env = postSweep(t, ts, tinyExchange)
	if resp.StatusCode != http.StatusOK || !env.Cached {
		t.Fatalf("post-drain cache read: HTTP %d cached=%v", resp.StatusCode, env.Cached)
	}
}

func TestHealthAndFigures(t *testing.T) {
	srv := New(Config{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var figs []struct{ Name, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&figs); err != nil {
		t.Fatal(err)
	}
	if len(figs) < 15 {
		t.Fatalf("figure registry too small: %d", len(figs))
	}
}

func TestClientDisconnectKeepsComputationWarm(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		Logger: quiet,
		Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
			close(started)
			<-release
			return blitzcoin.Execute(ctx, req)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fire a request with a context we cancel mid-computation.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(tinyExchange))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled client got a response")
	}
	close(release)

	// The detached computation still lands in the cache.
	deadline := time.After(10 * time.Second)
	for {
		if hits, _, _, entries, _ := srv.cache.stats(); entries == 1 && hits >= 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("abandoned computation never cached")
		case <-time.After(time.Millisecond):
		}
	}
	_, env := postSweep(t, ts, tinyExchange)
	if !env.Cached {
		t.Fatal("follow-up request missed the cache")
	}
}
