// Package server implements blitzd, the batched, cached sweep-serving
// daemon: an HTTP front end over the unified blitzcoin.Request API with a
// bounded worker pool, request coalescing, a content-addressed result
// cache, and Prometheus-style observability.
package server

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached result: the marshaled blitzcoin.Result bytes
// under the request's canonical hash. The bytes are immutable once stored;
// every hit serves the same slice, which is what makes cached responses
// byte-identical to the first computation.
type cacheEntry struct {
	key   string
	kind  string
	bytes []byte
}

// cache is an LRU over canonical request hashes, bounded both by entry
// count and by total result bytes. All methods are safe for concurrent
// use.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits      uint64
	misses    uint64
	evictions uint64
}

// newCache builds a cache bounded to maxEntries results and maxBytes total
// result bytes; either bound <= 0 disables that dimension (but not both:
// zero entries with zero bytes means unbounded entries, bounded only by
// what fits).
func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, if present, and promotes the entry.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).bytes, true
}

// put stores the bytes under key and evicts from the LRU tail until both
// bounds hold again. Re-putting an existing key refreshes it.
func (c *cache) put(key, kind string, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(b)) - int64(len(e.bytes))
		e.bytes = b
		e.kind = kind
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, kind: kind, bytes: b})
		c.items[key] = el
		c.bytes += int64(len(b))
	}
	for c.over() {
		tail := c.ll.Back()
		if tail == nil || tail == c.ll.Front() {
			break // never evict the entry just stored
		}
		e := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.bytes))
		c.evictions++
	}
}

// over reports whether either bound is exceeded.
func (c *cache) over() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

// stats returns the counters and gauges for /metrics.
func (c *cache) stats() (hits, misses, evictions uint64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len(), c.bytes
}
