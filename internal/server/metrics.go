package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"blitzcoin/internal/ledger"
	"blitzcoin/internal/store"
	"blitzcoin/internal/tenant"
	"blitzcoin/internal/trace"
)

// durationBuckets are the upper bounds (seconds) of the per-endpoint
// blitzd_request_duration_seconds histogram. Spans cached hits (sub-ms)
// through multi-minute figure sweeps.
var durationBuckets = []float64{0.005, 0.02, 0.1, 0.5, 2.5, 10, 60}

// histogram accumulates one endpoint's latency distribution. counts[i]
// holds observations that landed in (buckets[i-1], buckets[i]]; overflow
// observations only appear in count (the +Inf bucket).
type histogram struct {
	counts [8]uint64 // len(durationBuckets)+1, last slot is overflow
	sum    float64
	count  uint64
}

func (h *histogram) observe(seconds float64) {
	slot := len(durationBuckets)
	for i, ub := range durationBuckets {
		if seconds <= ub {
			slot = i
			break
		}
	}
	h.counts[slot]++
	h.sum += seconds
	h.count++
}

// metrics is a hand-rolled Prometheus text-exposition registry: counters
// the handler path increments plus gauges sampled from the cache and pool
// at scrape time. Stdlib-only by design.
type metrics struct {
	mu sync.Mutex
	// requests[kind][status] counts finished requests.
	requests map[string]map[string]uint64
	// reqSecondsSum/reqSecondsCount back a summary of request latency.
	reqSecondsSum   float64
	reqSecondsCount uint64
	// durations[endpoint] is the request-duration histogram of one HTTP
	// endpoint (every mux route except pprof).
	durations map[string]*histogram
	coalesced uint64
	sweepRows uint64
	inflight  int64
	// streamEvents/streamDropped count SSE events forwarded to and dropped
	// behind /v1/stream subscribers; ledgerAppends times ledger appends
	// (canonical SHA + Merkle re-root + fsync'd seal).
	streamEvents  uint64
	streamDropped uint64
	ledgerAppends histogram
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]map[string]uint64),
		durations: make(map[string]*histogram),
	}
}

func (m *metrics) observeDuration(endpoint string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.durations[endpoint]
	if h == nil {
		h = &histogram{}
		m.durations[endpoint] = h
	}
	h.observe(seconds)
}

func (m *metrics) observeRequest(kind, status string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[kind]
	if byStatus == nil {
		byStatus = make(map[string]uint64)
		m.requests[kind] = byStatus
	}
	byStatus[status]++
	m.reqSecondsSum += seconds
	m.reqSecondsCount++
}

func (m *metrics) addCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *metrics) addSweepRows(n int) {
	m.mu.Lock()
	m.sweepRows += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) addStreamEvents(n uint64) {
	m.mu.Lock()
	m.streamEvents += n
	m.mu.Unlock()
}

func (m *metrics) addStreamDropped(n uint64) {
	m.mu.Lock()
	m.streamDropped += n
	m.mu.Unlock()
}

func (m *metrics) observeLedgerAppend(seconds float64) {
	m.mu.Lock()
	m.ledgerAppends.observe(seconds)
	m.mu.Unlock()
}

func (m *metrics) enter() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

func (m *metrics) exit() {
	m.mu.Lock()
	m.inflight--
	m.mu.Unlock()
}

func (m *metrics) inflightNow() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight
}

// write renders the catalog in Prometheus text exposition format, in a
// deterministic order. bus, led, st, and reg are sampled at scrape time;
// led and st may be nil (not configured — their sections read zero or are
// omitted).
func (m *metrics) write(w io.Writer, c *cache, p *pool, bus *trace.Bus, led *ledger.Ledger, st *store.Store, reg *tenant.Registry) {
	m.mu.Lock()
	type labeled struct {
		kind, status string
		n            uint64
	}
	var reqs []labeled
	for kind, byStatus := range m.requests {
		for status, n := range byStatus {
			reqs = append(reqs, labeled{kind, status, n})
		}
	}
	sum, count := m.reqSecondsSum, m.reqSecondsCount
	coalesced, sweepRows, inflight := m.coalesced, m.sweepRows, m.inflight
	streamEvents, streamDropped := m.streamEvents, m.streamDropped
	ledgerAppends := m.ledgerAppends
	endpoints := make([]string, 0, len(m.durations))
	for ep := range m.durations {
		endpoints = append(endpoints, ep)
	}
	hists := make(map[string]histogram, len(m.durations))
	for ep, h := range m.durations {
		hists[ep] = *h
	}
	m.mu.Unlock()
	sort.Strings(endpoints)
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].kind != reqs[j].kind {
			return reqs[i].kind < reqs[j].kind
		}
		return reqs[i].status < reqs[j].status
	})

	hits, misses, evictions, entries, bytes := c.stats()

	fmt.Fprintln(w, "# HELP blitzd_requests_total Finished sweep requests by kind and status.")
	fmt.Fprintln(w, "# TYPE blitzd_requests_total counter")
	for _, r := range reqs {
		fmt.Fprintf(w, "blitzd_requests_total{kind=%q,status=%q} %d\n", r.kind, r.status, r.n)
	}
	fmt.Fprintln(w, "# HELP blitzd_request_seconds Wall-clock request latency.")
	fmt.Fprintln(w, "# TYPE blitzd_request_seconds summary")
	fmt.Fprintf(w, "blitzd_request_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "blitzd_request_seconds_count %d\n", count)
	fmt.Fprintln(w, "# HELP blitzd_request_duration_seconds Request latency by HTTP endpoint.")
	fmt.Fprintln(w, "# TYPE blitzd_request_duration_seconds histogram")
	for _, ep := range endpoints {
		h := hists[ep]
		var cum uint64
		for i, ub := range durationBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "blitzd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, fmt.Sprintf("%g", ub), cum)
		}
		fmt.Fprintf(w, "blitzd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "blitzd_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "blitzd_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
	fmt.Fprintln(w, "# HELP blitzd_cache_hits_total Requests served from the result cache.")
	fmt.Fprintln(w, "# TYPE blitzd_cache_hits_total counter")
	fmt.Fprintf(w, "blitzd_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP blitzd_cache_misses_total Requests that had to compute.")
	fmt.Fprintln(w, "# TYPE blitzd_cache_misses_total counter")
	fmt.Fprintf(w, "blitzd_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP blitzd_cache_evictions_total Results evicted by the LRU bounds.")
	fmt.Fprintln(w, "# TYPE blitzd_cache_evictions_total counter")
	fmt.Fprintf(w, "blitzd_cache_evictions_total %d\n", evictions)
	fmt.Fprintln(w, "# HELP blitzd_cache_entries Results currently cached.")
	fmt.Fprintln(w, "# TYPE blitzd_cache_entries gauge")
	fmt.Fprintf(w, "blitzd_cache_entries %d\n", entries)
	fmt.Fprintln(w, "# HELP blitzd_cache_bytes Result bytes currently cached.")
	fmt.Fprintln(w, "# TYPE blitzd_cache_bytes gauge")
	fmt.Fprintf(w, "blitzd_cache_bytes %d\n", bytes)
	fmt.Fprintln(w, "# HELP blitzd_coalesced_total Requests that shared another request's computation.")
	fmt.Fprintln(w, "# TYPE blitzd_coalesced_total counter")
	fmt.Fprintf(w, "blitzd_coalesced_total %d\n", coalesced)
	fmt.Fprintln(w, "# HELP blitzd_sweep_rows_total Result rows/lines computed (not served from cache).")
	fmt.Fprintln(w, "# TYPE blitzd_sweep_rows_total counter")
	fmt.Fprintf(w, "blitzd_sweep_rows_total %d\n", sweepRows)
	fmt.Fprintln(w, "# HELP blitzd_inflight_requests Requests currently being handled.")
	fmt.Fprintln(w, "# TYPE blitzd_inflight_requests gauge")
	fmt.Fprintf(w, "blitzd_inflight_requests %d\n", inflight)
	fmt.Fprintln(w, "# HELP blitzd_queue_depth Computations waiting for a worker slot.")
	fmt.Fprintln(w, "# TYPE blitzd_queue_depth gauge")
	fmt.Fprintf(w, "blitzd_queue_depth %d\n", p.queuedNow())
	fmt.Fprintln(w, "# HELP blitzd_admission_queue_depth Waiting computations by admission class.")
	fmt.Fprintln(w, "# TYPE blitzd_admission_queue_depth gauge")
	depths := p.queueDepths()
	for class, depth := range depths {
		fmt.Fprintf(w, "blitzd_admission_queue_depth{class=%q} %d\n", tenant.Class(class).String(), depth)
	}
	fmt.Fprintln(w, "# HELP blitzd_workers_busy Worker slots currently computing.")
	fmt.Fprintln(w, "# TYPE blitzd_workers_busy gauge")
	fmt.Fprintf(w, "blitzd_workers_busy %d\n", p.busy.Load())
	fmt.Fprintln(w, "# HELP blitzd_stream_subscribers Open /v1/stream subscriptions.")
	fmt.Fprintln(w, "# TYPE blitzd_stream_subscribers gauge")
	subs := 0
	if bus != nil {
		subs = bus.Subscribers()
	}
	fmt.Fprintf(w, "blitzd_stream_subscribers %d\n", subs)
	fmt.Fprintln(w, "# HELP blitzd_stream_events_total Events forwarded to stream subscribers.")
	fmt.Fprintln(w, "# TYPE blitzd_stream_events_total counter")
	fmt.Fprintf(w, "blitzd_stream_events_total %d\n", streamEvents)
	fmt.Fprintln(w, "# HELP blitzd_stream_dropped_total Events dropped behind slow stream subscribers.")
	fmt.Fprintln(w, "# TYPE blitzd_stream_dropped_total counter")
	fmt.Fprintf(w, "blitzd_stream_dropped_total %d\n", streamDropped)
	fmt.Fprintln(w, "# HELP blitzd_ledger_entries Results recorded in the ledger.")
	fmt.Fprintln(w, "# TYPE blitzd_ledger_entries gauge")
	var entriesNow uint64
	if led != nil {
		entriesNow = led.Size()
	}
	fmt.Fprintf(w, "blitzd_ledger_entries %d\n", entriesNow)
	fmt.Fprintln(w, "# HELP blitzd_ledger_append_seconds Ledger append latency (hash, re-root, seal).")
	fmt.Fprintln(w, "# TYPE blitzd_ledger_append_seconds histogram")
	var cumLedger uint64
	for i, ub := range durationBuckets {
		cumLedger += ledgerAppends.counts[i]
		fmt.Fprintf(w, "blitzd_ledger_append_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), cumLedger)
	}
	fmt.Fprintf(w, "blitzd_ledger_append_seconds_bucket{le=\"+Inf\"} %d\n", ledgerAppends.count)
	fmt.Fprintf(w, "blitzd_ledger_append_seconds_sum %g\n", ledgerAppends.sum)
	fmt.Fprintf(w, "blitzd_ledger_append_seconds_count %d\n", ledgerAppends.count)

	writeStoreMetrics(w, st)
	writeTenantMetrics(w, reg)
}

// writeStoreMetrics renders the disk-tier section; nil means no store is
// configured and the section is omitted entirely (absent, not zero, so
// dashboards can tell "no disk tier" from "idle disk tier").
func writeStoreMetrics(w io.Writer, st *store.Store) {
	if st == nil {
		return
	}
	s := st.Stats()
	warmed := 0
	if s.Warmed {
		warmed = 1
	}
	fmt.Fprintln(w, "# HELP blitzd_store_hits_total Results served from the disk tier.")
	fmt.Fprintln(w, "# TYPE blitzd_store_hits_total counter")
	fmt.Fprintf(w, "blitzd_store_hits_total %d\n", s.Hits)
	fmt.Fprintln(w, "# HELP blitzd_store_misses_total Disk-tier lookups that found nothing.")
	fmt.Fprintln(w, "# TYPE blitzd_store_misses_total counter")
	fmt.Fprintf(w, "blitzd_store_misses_total %d\n", s.Misses)
	fmt.Fprintln(w, "# HELP blitzd_store_writes_total Results persisted to the disk tier.")
	fmt.Fprintln(w, "# TYPE blitzd_store_writes_total counter")
	fmt.Fprintf(w, "blitzd_store_writes_total %d\n", s.Writes)
	fmt.Fprintln(w, "# HELP blitzd_store_evictions_total Blobs evicted by the size bound.")
	fmt.Fprintln(w, "# TYPE blitzd_store_evictions_total counter")
	fmt.Fprintf(w, "blitzd_store_evictions_total %d\n", s.Evictions)
	fmt.Fprintln(w, "# HELP blitzd_store_corrupt_total Blobs dropped for failing checksum verification.")
	fmt.Fprintln(w, "# TYPE blitzd_store_corrupt_total counter")
	fmt.Fprintf(w, "blitzd_store_corrupt_total %d\n", s.Corrupt)
	fmt.Fprintln(w, "# HELP blitzd_store_errors_total Disk-tier I/O failures (reads and writes).")
	fmt.Fprintln(w, "# TYPE blitzd_store_errors_total counter")
	fmt.Fprintf(w, "blitzd_store_errors_total %d\n", s.Errors)
	fmt.Fprintln(w, "# HELP blitzd_store_entries Blobs currently indexed in the disk tier.")
	fmt.Fprintln(w, "# TYPE blitzd_store_entries gauge")
	fmt.Fprintf(w, "blitzd_store_entries %d\n", s.Entries)
	fmt.Fprintln(w, "# HELP blitzd_store_bytes Blob bytes currently indexed in the disk tier.")
	fmt.Fprintln(w, "# TYPE blitzd_store_bytes gauge")
	fmt.Fprintf(w, "blitzd_store_bytes %d\n", s.Bytes)
	fmt.Fprintln(w, "# HELP blitzd_store_warmed Whether the boot index scan has completed.")
	fmt.Fprintln(w, "# TYPE blitzd_store_warmed gauge")
	fmt.Fprintf(w, "blitzd_store_warmed %d\n", warmed)
}

// writeTenantMetrics renders the per-tenant serving counters.
func writeTenantMetrics(w io.Writer, reg *tenant.Registry) {
	if reg == nil {
		return
	}
	tenants := reg.Tenants()
	snaps := make([]tenant.Counters, len(tenants))
	for i, t := range tenants {
		snaps[i] = t.Snapshot()
	}
	fmt.Fprintln(w, "# HELP blitzd_tenant_requests_total Admitted requests by tenant.")
	fmt.Fprintln(w, "# TYPE blitzd_tenant_requests_total counter")
	for i, t := range tenants {
		fmt.Fprintf(w, "blitzd_tenant_requests_total{tenant=%q} %d\n", t.Name, snaps[i].Requests)
	}
	fmt.Fprintln(w, "# HELP blitzd_tenant_cache_hits_total Requests served from a cache tier, by tenant.")
	fmt.Fprintln(w, "# TYPE blitzd_tenant_cache_hits_total counter")
	for i, t := range tenants {
		fmt.Fprintf(w, "blitzd_tenant_cache_hits_total{tenant=%q} %d\n", t.Name, snaps[i].CacheHits)
	}
	fmt.Fprintln(w, "# HELP blitzd_tenant_sweeps_total Uncached sweep computations charged, by tenant.")
	fmt.Fprintln(w, "# TYPE blitzd_tenant_sweeps_total counter")
	for i, t := range tenants {
		fmt.Fprintf(w, "blitzd_tenant_sweeps_total{tenant=%q} %d\n", t.Name, snaps[i].Sweeps)
	}
	fmt.Fprintln(w, "# HELP blitzd_tenant_bytes_total Result bytes served, by tenant.")
	fmt.Fprintln(w, "# TYPE blitzd_tenant_bytes_total counter")
	for i, t := range tenants {
		fmt.Fprintf(w, "blitzd_tenant_bytes_total{tenant=%q} %d\n", t.Name, snaps[i].BytesServed)
	}
	fmt.Fprintln(w, "# HELP blitzd_tenant_rejects_total Rejected requests by tenant and reason.")
	fmt.Fprintln(w, "# TYPE blitzd_tenant_rejects_total counter")
	for i, t := range tenants {
		fmt.Fprintf(w, "blitzd_tenant_rejects_total{tenant=%q,reason=\"rate\"} %d\n", t.Name, snaps[i].RejectRate)
		fmt.Fprintf(w, "blitzd_tenant_rejects_total{tenant=%q,reason=\"quota\"} %d\n", t.Name, snaps[i].RejectQuota)
		fmt.Fprintf(w, "blitzd_tenant_rejects_total{tenant=%q,reason=\"queue\"} %d\n", t.Name, snaps[i].RejectedQueue)
	}
	fmt.Fprintln(w, "# HELP blitzd_unauthenticated_total Requests rejected with 401.")
	fmt.Fprintln(w, "# TYPE blitzd_unauthenticated_total counter")
	fmt.Fprintf(w, "blitzd_unauthenticated_total %d\n", reg.Unauthenticated())
}
