package server

import (
	"context"
	"sync"
	"sync/atomic"

	"blitzcoin/internal/tenant"
)

// pool bounds how many sweep computations run at once. Admission is a
// priority controller from the tenant package: each class (interactive,
// batch) has its own bounded wait queue, releases grant interactive
// waiters first, and a class at its queue bound rejects immediately
// (surfaced as 503 + Retry-After) instead of growing an unbounded
// backlog. queued and busy are exported as gauges so /metrics shows
// back-pressure building before latency does.
type pool struct {
	adm  *tenant.Admission
	busy atomic.Int64
	wg   sync.WaitGroup
}

func newPool(workers, queueBound int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueBound < 1 {
		queueBound = 1
	}
	return &pool{adm: tenant.NewAdmission(workers, queueBound)}
}

// acquire blocks until a worker slot frees or ctx ends; a class queue at
// its bound fails fast with tenant.ErrQueueFull.
func (p *pool) acquire(ctx context.Context, class tenant.Class) error {
	if err := p.adm.Acquire(ctx, class); err != nil {
		return err
	}
	p.busy.Add(1)
	return nil
}

// release frees the slot taken by acquire.
func (p *pool) release() {
	p.busy.Add(-1)
	p.adm.Release()
}

// queuedNow is the total number of computations waiting for a slot.
func (p *pool) queuedNow() int64 { return p.adm.QueueTotal() }

// queueDepths is the per-class waiter count for the admission gauges.
func (p *pool) queueDepths() [tenant.NumClasses]int { return p.adm.Depths() }

// track registers a computation goroutine for drain.
func (p *pool) track() func() {
	p.wg.Add(1)
	return p.wg.Done
}

// drain waits until every tracked computation finished or ctx ends.
func (p *pool) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
