package server

import (
	"context"
	"sync"
	"sync/atomic"
)

// pool bounds how many sweep computations run at once. Admission is a
// counting semaphore; queued and busy are exported as gauges so /metrics
// shows back-pressure building before latency does.
type pool struct {
	sem    chan struct{}
	queued atomic.Int64
	busy   atomic.Int64
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{sem: make(chan struct{}, workers)}
}

// acquire blocks until a worker slot frees or ctx ends.
func (p *pool) acquire(ctx context.Context) error {
	p.queued.Add(1)
	defer p.queued.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.busy.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the slot taken by acquire.
func (p *pool) release() {
	p.busy.Add(-1)
	<-p.sem
}

// track registers a computation goroutine for drain.
func (p *pool) track() func() {
	p.wg.Add(1)
	return p.wg.Done
}

// drain waits until every tracked computation finished or ctx ends.
func (p *pool) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
