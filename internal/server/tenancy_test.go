package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"blitzcoin"
	"blitzcoin/internal/ledger"
	"blitzcoin/internal/store"
	"blitzcoin/internal/tenant"
)

// postSweepKey is postSweep with an API key attached.
func postSweepKey(t *testing.T, ts *httptest.Server, body, key string) (*http.Response, Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Response
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("bad envelope %q: %v", raw, err)
		}
	}
	return resp, env
}

// registry builds a test registry, failing the test on config errors.
func registry(t *testing.T, kf tenant.KeyFile) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(kf)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestAuthRequired(t *testing.T) {
	reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{{Name: "alice", Key: "alice-key"}}})
	srv := New(Config{Logger: quiet, Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postSweepKey(t, ts, tinyExchange, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless request: HTTP %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	resp, _ = postSweepKey(t, ts, tinyExchange, "wrong-key")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: HTTP %d, want 401", resp.StatusCode)
	}
	resp, env := postSweepKey(t, ts, tinyExchange, "alice-key")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good key: HTTP %d, want 200", resp.StatusCode)
	}
	if len(env.Result) == 0 {
		t.Fatal("empty result for authenticated sweep")
	}
	if n := reg.Unauthenticated(); n != 2 {
		t.Errorf("unauthenticated counter = %d, want 2", n)
	}
}

func TestAnonymousTierServesKeyless(t *testing.T) {
	reg := registry(t, tenant.KeyFile{
		Tenants:   []tenant.Config{{Name: "alice", Key: "alice-key"}},
		Anonymous: &tenant.Config{},
	})
	srv := New(Config{Logger: quiet, Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postSweepKey(t, ts, tinyExchange, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyless request with anonymous tier: HTTP %d, want 200", resp.StatusCode)
	}
	// A wrong key is still a misconfigured client, not an anonymous one.
	resp, _ = postSweepKey(t, ts, tinyExchange, "wrong-key")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key with anonymous tier: HTTP %d, want 401", resp.StatusCode)
	}
}

// exchangeBody returns a distinct tiny request per seed, so tests can
// force fresh computations.
func exchangeBody(seed int) string {
	return fmt.Sprintf(`{"trials": 2, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "seed": %d}}`, seed)
}

// wantRetryAfter asserts the response carries an integral Retry-After of
// at least one second.
func wantRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatalf("HTTP %d without Retry-After", resp.StatusCode)
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", h)
	}
}

// TestRetryAfterOnEveryRejection drives each 429 and 503 path the daemon
// has and asserts every one tells the client when to come back.
func TestRetryAfterOnEveryRejection(t *testing.T) {
	cases := []struct {
		name string
		want int
		do   func(t *testing.T) *http.Response
	}{
		{"rate limit", http.StatusTooManyRequests, func(t *testing.T) *http.Response {
			reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{
				{Name: "bob", Key: "k", RatePerSec: 0.0001, Burst: 1},
			}})
			ts := httptest.NewServer(New(Config{Logger: quiet, Tenants: reg}).Handler())
			defer ts.Close()
			if resp, _ := postSweepKey(t, ts, tinyExchange, "k"); resp.StatusCode != http.StatusOK {
				t.Fatalf("first request: HTTP %d", resp.StatusCode)
			}
			resp, _ := postSweepKey(t, ts, tinyExchange, "k")
			return resp
		}},
		{"byte quota", http.StatusTooManyRequests, func(t *testing.T) *http.Response {
			reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{
				{Name: "bob", Key: "k", QuotaBytes: 1},
			}})
			ts := httptest.NewServer(New(Config{Logger: quiet, Tenants: reg}).Handler())
			defer ts.Close()
			if resp, _ := postSweepKey(t, ts, tinyExchange, "k"); resp.StatusCode != http.StatusOK {
				t.Fatalf("first request: HTTP %d", resp.StatusCode)
			}
			resp, _ := postSweepKey(t, ts, tinyExchange, "k")
			return resp
		}},
		{"sweep quota", http.StatusTooManyRequests, func(t *testing.T) *http.Response {
			reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{
				{Name: "bob", Key: "k", QuotaSweeps: 1},
			}})
			ts := httptest.NewServer(New(Config{Logger: quiet, Tenants: reg}).Handler())
			defer ts.Close()
			if resp, _ := postSweepKey(t, ts, exchangeBody(1), "k"); resp.StatusCode != http.StatusOK {
				t.Fatalf("first sweep: HTTP %d", resp.StatusCode)
			}
			// The second *distinct* sweep needs a computation the quota no
			// longer covers; re-asking the first stays a free cache hit.
			if resp, _ := postSweepKey(t, ts, exchangeBody(1), "k"); resp.StatusCode != http.StatusOK {
				t.Fatalf("cached re-ask: HTTP %d, want 200 (hits are quota-exempt)", resp.StatusCode)
			}
			resp, _ := postSweepKey(t, ts, exchangeBody(2), "k")
			return resp
		}},
		{"drain sweep", http.StatusServiceUnavailable, func(t *testing.T) *http.Response {
			srv := New(Config{Logger: quiet})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			srv.BeginDrain()
			resp, _ := postSweepKey(t, ts, tinyExchange, "")
			return resp
		}},
		{"drain shard", http.StatusServiceUnavailable, func(t *testing.T) *http.Response {
			srv := New(Config{Logger: quiet})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			srv.BeginDrain()
			body := `{"request": ` + tinyExchange + `, "lo": 0, "hi": 1}`
			resp, err := ts.Client().Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}},
		{"drain stream", http.StatusServiceUnavailable, func(t *testing.T) *http.Response {
			srv := New(Config{Logger: quiet})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			srv.BeginDrain()
			resp, err := ts.Client().Get(ts.URL + "/v1/stream?hash=deadbeef")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}},
		{"admission queue full", http.StatusServiceUnavailable, func(t *testing.T) *http.Response {
			release := make(chan struct{})
			srv := New(Config{
				Logger:     quiet,
				Workers:    1,
				QueueDepth: 1,
				Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
					<-release
					return blitzcoin.Execute(ctx, req)
				},
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			// Saturate: one computation holds the only slot, a second waits
			// in the interactive queue (filling its bound of 1).
			var wg sync.WaitGroup
			defer wg.Wait()      // after release: both saturating sweeps finish
			defer close(release) // unblocks the held computations first
			for i := 1; i <= 2; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					postSweepKey(t, ts, exchangeBody(i), "")
				}(i)
			}
			deadline := time.After(10 * time.Second)
			for srv.pool.queuedNow() < 1 {
				select {
				case <-deadline:
					t.Fatal("second computation never queued")
				case <-time.After(time.Millisecond):
				}
			}
			resp, _ := postSweepKey(t, ts, exchangeBody(3), "")
			return resp
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do(t)
			if resp.StatusCode != tc.want {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.want)
			}
			wantRetryAfter(t, resp)
		})
	}
}

// TestThrottledTenantDoesNotStarveOthers is the isolation property the
// whole subsystem exists for: one tenant hitting its limits keeps being
// rejected while another tenant's requests keep succeeding.
func TestThrottledTenantDoesNotStarveOthers(t *testing.T) {
	reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{
		{Name: "alice", Key: "alice-key"},
		{Name: "bob", Key: "bob-key", RatePerSec: 0.0001, Burst: 1},
	}})
	srv := New(Config{Logger: quiet, Tenants: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := postSweepKey(t, ts, tinyExchange, "bob-key"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's first request: HTTP %d", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		if resp, _ := postSweepKey(t, ts, tinyExchange, "bob-key"); resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("bob over rate: HTTP %d, want 429", resp.StatusCode)
		}
		if resp, _ := postSweepKey(t, ts, tinyExchange, "alice-key"); resp.StatusCode != http.StatusOK {
			t.Fatalf("alice while bob throttled: HTTP %d, want 200", resp.StatusCode)
		}
	}
}

// TestStoreServesAcrossRestart is the durability acceptance test: a
// result computed before a restart is served byte-identically after it,
// from disk, with zero engine executions.
func TestStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")

	st1, err := store.Open(dir, blitzcoin.EngineVersion, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	led1, err := ledger.Open(ledgerPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Logger: quiet, Store: st1, Ledger: led1})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, first := postSweep(t, ts1, tinyExchange)
	if resp.StatusCode != http.StatusOK || first.Cached {
		t.Fatalf("first serve: HTTP %d cached=%v", resp.StatusCode, first.Cached)
	}
	firstSHA, err := blitzcoin.CanonicalResultSHA(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1.Close()
	if err := led1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store over the same directory, fresh server whose
	// engine counts executions — the count must stay zero.
	var executions int64
	var mu sync.Mutex
	st2, err := store.Open(dir, blitzcoin.EngineVersion, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := New(Config{
		Logger: quiet,
		Store:  st2,
		Run: func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error) {
			mu.Lock()
			executions++
			mu.Unlock()
			return blitzcoin.Execute(ctx, req)
		},
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, second := postSweep(t, ts2, tinyExchange)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart serve: HTTP %d", resp.StatusCode)
	}
	if !second.Cached || second.Tier != "disk" {
		t.Fatalf("post-restart serve: cached=%v tier=%q, want a disk hit", second.Cached, second.Tier)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Fatal("post-restart result differs from the pre-restart bytes")
	}
	if second.RequestHash != first.RequestHash {
		t.Fatalf("options hash changed across restart: %s -> %s", first.RequestHash, second.RequestHash)
	}
	secondSHA, err := blitzcoin.CanonicalResultSHA(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if secondSHA != firstSHA {
		t.Fatalf("canonical result SHA changed across restart: %s -> %s", firstSHA, secondSHA)
	}
	mu.Lock()
	n := executions
	mu.Unlock()
	if n != 0 {
		t.Fatalf("%d engine executions after restart, want 0 (disk should serve)", n)
	}

	// A memory re-ask now hits the promoted in-memory copy.
	_, third := postSweep(t, ts2, tinyExchange)
	if third.Tier != "memory" {
		t.Errorf("re-ask tier = %q, want memory (disk hit should promote)", third.Tier)
	}
}

func TestMetricsExposeTenantsStoreAndAdmission(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, blitzcoin.EngineVersion, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := registry(t, tenant.KeyFile{Tenants: []tenant.Config{
		{Name: "alice", Key: "alice-key"},
		{Name: "bob", Key: "bob-key", RatePerSec: 0.0001, Burst: 1},
	}})
	srv := New(Config{Logger: quiet, Tenants: reg, Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postSweepKey(t, ts, tinyExchange, "alice-key") // compute + store write
	postSweepKey(t, ts, tinyExchange, "alice-key") // memory hit
	postSweepKey(t, ts, tinyExchange, "bob-key")   // bob's one token
	postSweepKey(t, ts, tinyExchange, "bob-key")   // rate-limited
	postSweepKey(t, ts, tinyExchange, "")          // 401

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`blitzd_tenant_requests_total{tenant="alice"} 2`,
		`blitzd_tenant_cache_hits_total{tenant="alice"} 1`,
		`blitzd_tenant_sweeps_total{tenant="alice"} 1`,
		`blitzd_tenant_rejects_total{tenant="bob",reason="rate"} 1`,
		`blitzd_unauthenticated_total 1`,
		`blitzd_admission_queue_depth{class="interactive"} 0`,
		`blitzd_admission_queue_depth{class="batch"} 0`,
		`blitzd_store_writes_total 1`,
		`blitzd_store_entries 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestShardServedFromSharedStore covers the cluster-facing half of the
// disk tier: a shard computed by one server life is served from the store
// by the next without re-execution.
func TestShardServedFromSharedStore(t *testing.T) {
	dir := t.TempDir()
	postShardTo := func(ts *httptest.Server) ShardResponse {
		t.Helper()
		body := `{"request": ` + tinyExchange + `, "lo": 0, "hi": 2}`
		resp, err := ts.Client().Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard: HTTP %d: %s", resp.StatusCode, raw)
		}
		var env ShardResponse
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		return env
	}

	st1, err := store.Open(dir, blitzcoin.EngineVersion, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Logger: quiet, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	first := postShardTo(ts1)
	if first.Cached {
		t.Fatal("first shard claims cached")
	}
	ts1.Close()
	st1.Close()

	st2, err := store.Open(dir, blitzcoin.EngineVersion, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := New(Config{Logger: quiet, Store: st2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	second := postShardTo(ts2)
	if !second.Cached {
		t.Fatal("restarted worker re-executed a stored shard")
	}
	if !bytes.Equal(second.Shard, first.Shard) {
		t.Fatal("stored shard bytes differ across restart")
	}
}
