package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"blitzcoin"
)

func postShard(t *testing.T, ts *httptest.Server, body string) (*http.Response, ShardResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ShardResponse
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("bad shard envelope %q: %v", raw, err)
		}
	}
	return resp, env
}

const tinyShard = `{"request": ` + tinyExchange + `, "lo": 0, "hi": 1}`

func TestShardEndpointMatchesLocalExecution(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, env := postShard(t, ts, tinyShard)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if env.Kind != "exchange" || env.Lo != 0 || env.Hi != 1 || env.Cached {
		t.Fatalf("envelope = %+v", env)
	}

	var req blitzcoin.Request
	if err := json.Unmarshal([]byte(tinyExchange), &req); err != nil {
		t.Fatal(err)
	}
	want, err := blitzcoin.ExecuteShard(context.Background(), req, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the wire payload the way the coordinator does (the envelope
	// encoder re-indents embedded JSON, so compare canonical marshals).
	var got blitzcoin.ShardResult
	if err := json.Unmarshal(env.Shard, &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("shard bytes differ\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

func TestShardEndpointCachesPerRange(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postShard(t, ts, tinyShard)
	_, second := postShard(t, ts, tinyShard)
	if !second.Cached {
		t.Error("repeat of the same range should be served from cache")
	}
	if string(first.Shard) != string(second.Shard) {
		t.Error("cached shard bytes differ")
	}
	_, other := postShard(t, ts, `{"request": `+tinyExchange+`, "lo": 1, "hi": 2}`)
	if other.Cached {
		t.Error("a different range must not hit the first range's cache entry")
	}
}

func TestShardEndpointValidation(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]struct {
		body string
		want int
	}{
		"range outside units": {`{"request": ` + tinyExchange + `, "lo": 0, "hi": 99}`, http.StatusBadRequest},
		"empty range":         {`{"request": ` + tinyExchange + `, "lo": 1, "hi": 1}`, http.StatusBadRequest},
		"invalid request":     {`{"request": {}, "lo": 0, "hi": 1}`, http.StatusBadRequest},
		"unknown field":       {`{"request": ` + tinyExchange + `, "lo": 0, "hi": 1, "bogus": 1}`, http.StatusBadRequest},
		"hash mismatch":       {`{"request": ` + tinyExchange + `, "lo": 0, "hi": 1, "options_hash": "deadbeef"}`, http.StatusConflict},
	}
	for name, tc := range cases {
		resp, _ := postShard(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/shard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestDrainSetsRetryAfter checks the drain contract on both compute
// endpoints: refused requests carry a Retry-After hint, while cached
// results are still served.
func TestDrainSetsRetryAfter(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the caches, then drain.
	if resp, _ := postSweep(t, ts, tinyExchange); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: %d", resp.StatusCode)
	}
	if resp, _ := postShard(t, ts, tinyShard); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm shard: %d", resp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	uncachedSweep := `{"trials": 2, "exchange": {"dim": 4, "torus": true, "random_pairing": true, "seed": 77}}`
	resp, _ := postSweep(t, ts, uncachedSweep)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining sweep: missing Retry-After header")
	}
	resp, _ = postShard(t, ts, `{"request": `+uncachedSweep+`, "lo": 0, "hi": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining shard: missing Retry-After header")
	}

	// Cached results are still served while draining.
	if resp, env := postSweep(t, ts, tinyExchange); resp.StatusCode != http.StatusOK || !env.Cached {
		t.Errorf("draining cached sweep: status %d cached %v", resp.StatusCode, env.Cached)
	}
	if resp, env := postShard(t, ts, tinyShard); resp.StatusCode != http.StatusOK || !env.Cached {
		t.Errorf("draining cached shard: status %d cached %v", resp.StatusCode, env.Cached)
	}
}

// TestRequestDurationHistogram checks the per-endpoint histogram appears
// in /metrics with coherent bucket counts.
func TestRequestDurationHistogram(t *testing.T) {
	srv := New(Config{Logger: quiet, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postSweep(t, ts, tinyExchange)
	if _, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE blitzd_request_duration_seconds histogram",
		`blitzd_request_duration_seconds_bucket{endpoint="sweep",le="+Inf"} 1`,
		`blitzd_request_duration_seconds_bucket{endpoint="healthz",le="+Inf"} 1`,
		`blitzd_request_duration_seconds_count{endpoint="sweep"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// fakeCluster is a minimal ClusterBackend for mount-plumbing tests.
type fakeCluster struct{}

func (fakeCluster) HandleJoin(w http.ResponseWriter, r *http.Request)   { w.WriteHeader(http.StatusOK) }
func (fakeCluster) HandleStatus(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
func (fakeCluster) Readiness() ClusterReadiness {
	return ClusterReadiness{Ready: true, AliveWorkers: 1}
}
func (fakeCluster) WriteMetrics(w io.Writer) {
	io.WriteString(w, "blitzd_cluster_fake_metric 1\n") //nolint:errcheck
}

func TestClusterBackendMounting(t *testing.T) {
	// Without a backend the cluster endpoints don't exist.
	bare := httptest.NewServer(New(Config{Logger: quiet}).Handler())
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bare status: %d, want 404", resp.StatusCode)
	}

	// With a backend they are routed and /metrics folds the cluster section.
	ts := httptest.NewServer(New(Config{Logger: quiet, Cluster: fakeCluster{}}).Handler())
	defer ts.Close()
	resp, err = ts.Client().Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mounted status: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/cluster/join", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mounted join: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "blitzd_cluster_fake_metric 1") {
		t.Error("metrics missing the cluster section")
	}
}
