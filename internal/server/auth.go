package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"blitzcoin/internal/tenant"
)

// apiKey extracts the client's API key from a request: the standard
// `Authorization: Bearer <key>` form, or the `X-API-Key` header for
// clients that cannot set Authorization. Empty means keyless.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// authed wraps a tenant-facing handler with the multi-tenancy middleware
// chain: API-key authentication (401), then — when limited — the
// tenant's token-bucket rate limit and windowed byte quota (429 +
// Retry-After). The resolved tenant rides the request context so the
// handler can charge bytes, count hits, and admission-queue at the
// tenant's priority class.
func (s *Server) authed(limited bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenants.Authenticate(apiKey(r))
		if err != nil {
			s.tenants.CountUnauthenticated()
			w.Header().Set("WWW-Authenticate", `Bearer realm="blitzd"`)
			writeJSON(w, http.StatusUnauthorized, errorBody{err.Error()})
			s.metrics.observeRequest(endpointKind(r), "unauthenticated", 0)
			s.log.Warn("request rejected", "status", http.StatusUnauthorized, "remote", r.RemoteAddr, "error", err)
			return
		}
		if limited {
			if retry, err := t.AllowRequest(); err != nil {
				s.throttle(w, r, t, retry, err)
				return
			}
		}
		h(w, r.WithContext(tenant.NewContext(r.Context(), t)))
	}
}

// throttle writes a 429 with its Retry-After hint — the rate-limit and
// quota rejection path.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, retry time.Duration, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds(retry))
	writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	s.metrics.observeRequest(endpointKind(r), "throttled", 0)
	s.log.Warn("request throttled",
		"tenant", t.Name, "status", http.StatusTooManyRequests,
		"retry_after", retry, "remote", r.RemoteAddr, "error", err)
}

// retryAfterSeconds renders a wait as the integral seconds form of the
// Retry-After header, with a one-second floor so clients never busy-spin.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// endpointKind labels middleware-level rejections for the request
// counter, where no request body has been decoded yet.
func endpointKind(r *http.Request) string {
	if i := strings.LastIndexByte(r.URL.Path, '/'); i >= 0 && i+1 < len(r.URL.Path) {
		return r.URL.Path[i+1:]
	}
	return r.URL.Path
}
