package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"blitzcoin"
	"blitzcoin/internal/ledger"
	"blitzcoin/internal/store"
	"blitzcoin/internal/tenant"
	"blitzcoin/internal/trace"
)

// RunFunc computes a validated request; it is blitzcoin.Execute in
// production, a cluster coordinator's Run in -coordinator mode, and
// injectable in tests.
type RunFunc func(ctx context.Context, req blitzcoin.Request) (*blitzcoin.Result, error)

// ClusterBackend is the coordinator face a Server mounts in -coordinator
// mode: the worker-registry endpoints plus the cluster section of
// /metrics. It is an interface so the server package never imports the
// cluster package (the coordinator already imports the server's wire
// types for shard dispatch).
type ClusterBackend interface {
	// HandleJoin serves POST /v1/cluster/join (worker self-registration,
	// idempotent, doubles as a keepalive).
	HandleJoin(w http.ResponseWriter, r *http.Request)
	// HandleStatus serves GET /v1/cluster/status (worker table and shard
	// counters for operators and blitzctl -cluster).
	HandleStatus(w http.ResponseWriter, r *http.Request)
	// Readiness reports scheduling state for the /readyz endpoint.
	Readiness() ClusterReadiness
	// WriteMetrics appends the cluster's Prometheus text section.
	WriteMetrics(w io.Writer)
}

// ClusterReadiness is the coordinator section of the /readyz body: queue
// depth and per-worker inflight so an autoscaler can add workers under
// backlog and drain idle ones.
type ClusterReadiness struct {
	Ready           bool           `json:"ready"`
	AliveWorkers    int            `json:"alive_workers"`
	DrainingWorkers int            `json:"draining_workers"`
	QueueDepth      int64          `json:"queue_depth"`
	RunningShards   int64          `json:"running_shards"`
	WorkerInflight  map[string]int `json:"worker_inflight,omitempty"`
}

// readyBody is the body of GET /readyz. Distinct from /healthz: liveness
// says the process is up, readiness says it should receive new work.
type readyBody struct {
	Status        string            `json:"status"`
	EngineVersion string            `json:"engine_version"`
	Draining      bool              `json:"draining"`
	QueuedSweeps  int64             `json:"queued_sweeps"`
	BusySweeps    int64             `json:"busy_sweeps"`
	Cluster       *ClusterReadiness `json:"cluster,omitempty"`
}

// Config configures a Server. The zero value is completed with the
// defaults noted per field.
type Config struct {
	// Workers bounds concurrent sweep computations (each computation
	// additionally fans its trials out over the sweep package's own
	// worker pool). Default 2.
	Workers int
	// CacheEntries and CacheBytes bound the result cache. Defaults 256
	// entries, 64 MiB. Non-positive values disable the respective bound.
	CacheEntries int
	CacheBytes   int64
	// Logger receives one structured line per finished request. Default:
	// slog.Default().
	Logger *slog.Logger
	// Run computes requests. Default: blitzcoin.Execute.
	Run RunFunc
	// Cluster, when non-nil, mounts the coordinator endpoints
	// (/v1/cluster/join, /v1/cluster/status) and folds the cluster metric
	// section into /metrics.
	Cluster ClusterBackend
	// Bus is the trace bus GET /v1/stream subscribes to. Default: the
	// process-wide trace.Default() bus, which Execute publishes to.
	Bus *trace.Bus
	// Ledger, when non-nil, records every computed result (by options hash,
	// engine version, and canonical result SHA) and mounts the
	// /v1/ledger/proof and /v1/ledger/root endpoints. Nil disables both:
	// results are served unstamped and the endpoints 404.
	Ledger *ledger.Ledger
	// StreamBuffer is the per-subscriber event-ring capacity of /v1/stream;
	// a subscriber that falls further behind loses its oldest events.
	// Default 256.
	StreamBuffer int
	// Tenants authenticates and limits API clients. Default: an open
	// registry (every request maps to one unlimited anonymous tenant),
	// which is byte-for-byte the pre-tenancy behavior.
	Tenants *tenant.Registry
	// Store, when non-nil, is the disk tier beneath the in-memory result
	// cache: computed results (sweeps and shards) are persisted there and
	// a memory miss consults it before computing, so the cache survives
	// restarts and can be shared across cluster workers. Nil disables the
	// tier.
	Store *store.Store
	// QueueDepth bounds each admission class's wait queue; an over-full
	// class is refused with 503 + Retry-After instead of queueing without
	// bound. Default 64.
	QueueDepth int
}

// Server is the blitzd request engine: coalescing, caching, bounded
// execution, and the HTTP surface over them. Create with New, serve
// Handler, stop with Shutdown.
type Server struct {
	log     *slog.Logger
	run     RunFunc
	cache   *cache
	flights *flightGroup
	pool    *pool
	metrics *metrics
	cluster ClusterBackend
	bus     *trace.Bus
	ledger  *ledger.Ledger
	tenants *tenant.Registry
	store   *store.Store

	streamBuf int

	// baseCtx outlives any single request: computations run under it so
	// a disconnecting client cannot cancel work other clients (or the
	// cache) will still want. Shutdown cancels it after the drain.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	// drainCh closes when the drain begins; open SSE streams use it to
	// decide between finishing their in-flight sweep and ending early.
	drainCh   chan struct{}
	drainOnce sync.Once
}

// Response is the envelope of POST /v1/sweep. Result carries the marshaled
// blitzcoin.Result verbatim from the cache, so two responses for the same
// canonical request are byte-identical in everything but the serving
// annotations (cached, coalesced, elapsed).
type Response struct {
	Version       string `json:"version"`
	Kind          string `json:"kind"`
	RequestHash   string `json:"request_hash"`
	EngineVersion string `json:"engine_version"`
	Cached        bool   `json:"cached"`
	// Tier names the cache tier a hit was served from: "memory" or
	// "disk". Empty on computed (uncached) responses.
	Tier          string          `json:"tier,omitempty"`
	Coalesced     bool            `json:"coalesced"`
	ElapsedMicros int64           `json:"elapsed_micros"`
	Result        json.RawMessage `json:"result"`
}

// errorBody is the JSON error shape of non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Run == nil {
		cfg.Run = blitzcoin.Execute
	}
	if cfg.Bus == nil {
		cfg.Bus = trace.Default()
	}
	if cfg.StreamBuffer == 0 {
		cfg.StreamBuffer = 256
	}
	if cfg.Tenants == nil {
		cfg.Tenants = tenant.Open()
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	// The server's base context is the one deliberate root in this package:
	// sweep computations outlive the requests that trigger them (a client
	// disconnect must not waste a half-done sweep), so they run under the
	// server's lifetime, cancelled only by Shutdown.
	ctx, cancel := context.WithCancel(context.Background()) //blitzlint:allow C002 server lifetime root: computations are detached from requests by design and cancelled by Shutdown
	return &Server{
		log:        cfg.Logger,
		run:        cfg.Run,
		cache:      newCache(cfg.CacheEntries, cfg.CacheBytes),
		flights:    newFlightGroup(),
		pool:       newPool(cfg.Workers, cfg.QueueDepth),
		metrics:    newMetrics(),
		cluster:    cfg.Cluster,
		bus:        cfg.Bus,
		ledger:     cfg.Ledger,
		tenants:    cfg.Tenants,
		store:      cfg.Store,
		streamBuf:  cfg.StreamBuffer,
		baseCtx:    ctx,
		baseCancel: cancel,
		drainCh:    make(chan struct{}),
	}
}

// instrument wraps a handler with the per-endpoint duration histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.metrics.observeDuration(endpoint, time.Since(start).Seconds())
	}
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/sweep          — execute or serve a blitzcoin.Request
//	POST /v1/shard          — execute one trial-range shard of a request
//	GET  /v1/figures        — list the figure registry
//	GET  /v1/stream         — follow a sweep's live events over SSE (?hash=...)
//	GET  /v1/ledger/proof   — inclusion proof for a ledgered result (?hash=...)
//	GET  /v1/ledger/root    — current ledger size and tree head
//	POST /v1/cluster/join   — worker self-registration (coordinator mode)
//	GET  /v1/cluster/status — worker table (coordinator mode)
//	GET  /healthz           — liveness (process up, engine version)
//	GET  /readyz            — readiness (drain state, queue depth, cluster backlog)
//	GET  /metrics           — Prometheus text exposition
//	     /debug/pprof       — the standard profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Tenant-facing endpoints run behind the auth middleware: /v1/sweep
	// with the full rate-limit + quota chain, /v1/stream with auth only
	// (subscriptions are long-lived, not per-request work). /v1/shard and
	// /v1/cluster/* are cluster-internal — workers sit behind the
	// deployment's trust boundary and authenticate tenants at the
	// coordinator's edge — and observability endpoints stay open.
	mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.authed(true, s.handleSweep)))
	mux.HandleFunc("/v1/shard", s.instrument("shard", s.handleShard))
	mux.HandleFunc("/v1/figures", s.instrument("figures", s.handleFigures))
	mux.HandleFunc("/v1/stream", s.instrument("stream", s.authed(false, s.handleStream)))
	mux.HandleFunc("/v1/ledger/proof", s.instrument("ledger-proof", s.handleLedgerProof))
	mux.HandleFunc("/v1/ledger/root", s.instrument("ledger-root", s.handleLedgerRoot))
	if s.cluster != nil {
		mux.HandleFunc("/v1/cluster/join", s.instrument("cluster-join", s.cluster.HandleJoin))
		mux.HandleFunc("/v1/cluster/status", s.instrument("cluster-status", s.cluster.HandleStatus))
	}
	mux.HandleFunc("/healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "engine_version": blitzcoin.EngineVersion})
	}))
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReady))
	mux.HandleFunc("/metrics", s.instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.write(w, s.cache, s.pool, s.bus, s.ledger, s.store, s.tenants)
		if s.cluster != nil {
			s.cluster.WriteMetrics(w)
		}
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleReady serves GET /readyz: 200 while the daemon should receive
// new work, 503 while draining or (in coordinator mode) while no live
// worker can take shards. /healthz stays 200 through both — a draining
// process is alive, just not accepting.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	body := readyBody{
		Status:        "ready",
		EngineVersion: blitzcoin.EngineVersion,
		Draining:      s.draining.Load(),
		QueuedSweeps:  s.pool.queuedNow(),
		BusySweeps:    s.pool.busy.Load(),
	}
	ready := !body.Draining
	if s.cluster != nil {
		cr := s.cluster.Readiness()
		body.Cluster = &cr
		ready = ready && cr.Ready
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		body.Status = "unready"
		if body.Draining {
			body.Status = "draining"
		}
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, status, body)
}

// BeginDrain flips the server into draining mode without waiting: new
// sweeps and new stream subscriptions are refused with 503, and open SSE
// streams are told to finish their in-flight sweep and end. blitzd calls
// it before http.Server.Shutdown — Shutdown blocks on open connections,
// and an SSE stream that never learned about the drain would hold one
// open for its client's lifetime.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Shutdown drains the server: new sweeps are refused with 503, in-flight
// computations get until ctx ends to finish, then the base context is
// cancelled so stragglers stop dispatching trials.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	err := s.pool.drain(ctx)
	s.baseCancel()
	return err
}

// Inflight reports the requests currently inside the handler (used by
// tests to synchronize with coalescing).
func (s *Server) Inflight() int64 { return s.metrics.inflightNow() }

// handleSweep is the daemon's one workhorse endpoint.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST a blitzcoin.Request"})
		return
	}
	s.metrics.enter()
	defer s.metrics.exit()
	start := time.Now()

	var req blitzcoin.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.finish(w, r, start, "", http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	norm := req.Normalized()
	if err := norm.Validate(); err != nil {
		s.finish(w, r, start, string(norm.Kind), http.StatusBadRequest, err)
		return
	}
	hash, err := norm.CanonicalHash()
	if err != nil {
		s.finish(w, r, start, string(norm.Kind), http.StatusBadRequest, err)
		return
	}
	kind := string(norm.Kind)
	t := tenant.FromContext(r.Context())

	if b, ok := s.cache.get(hash); ok {
		t.CountHit()
		t.ChargeBytes(len(b))
		s.respond(w, r, start, norm, hash, b, true, false, "memory")
		return
	}
	// The disk tier sits beneath the memory cache and, like it, is
	// consulted before the drain check: serving already-computed bytes is
	// cheap and a draining daemon keeps doing it until Shutdown. A disk
	// hit is promoted into memory so the next asker skips the read.
	if s.store != nil {
		if b, ok := s.store.Get(hash); ok {
			s.cache.put(hash, kind, b)
			t.CountHit()
			t.ChargeBytes(len(b))
			s.respond(w, r, start, norm, hash, b, true, false, "disk")
			return
		}
	}
	if s.draining.Load() {
		s.finish(w, r, start, kind, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}
	// Past every cache tier: this request triggers (or joins) a real
	// computation, which is what the sweep quota meters. Hits above never
	// reach this line, so cached serving stays free.
	if retry, err := t.AllowSweep(); err != nil {
		s.throttle(w, r, t, retry, err)
		return
	}

	f, leader := s.flights.lease(hash)
	if leader {
		// The computation runs under the server's base context, detached
		// from this request: if the client disconnects mid-sweep, the
		// result still lands in the cache for the next asker.
		done := s.pool.track()
		class := t.PriorityClass()
		go func() {
			defer done()
			b, err := s.compute(s.baseCtx, hash, norm, class)
			s.flights.complete(hash, f, b, err)
		}()
	} else {
		s.metrics.addCoalesced()
	}

	select {
	case <-f.done:
	case <-r.Context().Done():
		// Client gave up; the leader's computation continues.
		s.finish(w, r, start, kind, 499, r.Context().Err())
		return
	}
	if f.err != nil {
		status := http.StatusInternalServerError
		if errors.Is(f.err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(f.err, tenant.ErrQueueFull) {
			// The admission queue for the tenant's class is at its bound —
			// shed load now rather than let the backlog grow. finish sets
			// Retry-After on every 503.
			status = http.StatusServiceUnavailable
			t.CountQueueReject()
		}
		s.finish(w, r, start, kind, status, f.err)
		return
	}
	t.ChargeBytes(len(f.bytes))
	s.respond(w, r, start, norm, hash, f.bytes, false, !leader, "")
}

// ShardResponse is the envelope of POST /v1/shard: a marshaled
// blitzcoin.ShardResult plus the same serving annotations as Response.
type ShardResponse struct {
	Version       string          `json:"version"`
	Kind          string          `json:"kind"`
	RequestHash   string          `json:"request_hash"`
	EngineVersion string          `json:"engine_version"`
	Lo            int             `json:"lo"`
	Hi            int             `json:"hi"`
	Cached        bool            `json:"cached"`
	Coalesced     bool            `json:"coalesced"`
	ElapsedMicros int64           `json:"elapsed_micros"`
	Shard         json.RawMessage `json:"shard"`
}

// handleShard executes one trial-range shard of a request — the worker
// half of a distributed sweep. It shares the sweep endpoint's machinery:
// shards are cached under the request hash extended with the trial range,
// coalesced per range, computed on the bounded pool under the base
// context, and refused with 503 while draining.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST a blitzcoin.ShardRequest"})
		return
	}
	s.metrics.enter()
	defer s.metrics.exit()
	start := time.Now()

	var sr blitzcoin.ShardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		s.finish(w, r, start, "shard", http.StatusBadRequest, fmt.Errorf("decoding shard request: %w", err))
		return
	}
	norm := sr.Request.Normalized()
	if err := norm.Validate(); err != nil {
		s.finish(w, r, start, "shard", http.StatusBadRequest, err)
		return
	}
	hash, err := norm.CanonicalHash()
	if err != nil {
		s.finish(w, r, start, "shard", http.StatusBadRequest, err)
		return
	}
	if sr.OptionsHash != "" && sr.OptionsHash != hash {
		// The coordinator hashed different canonical options — usually a
		// mixed-version cluster. Refuse rather than merge foreign rows.
		s.finish(w, r, start, "shard", http.StatusConflict,
			fmt.Errorf("options hash mismatch: coordinator %s, worker %s (engine %s)",
				short(sr.OptionsHash), short(hash), blitzcoin.EngineVersion))
		return
	}
	units, err := norm.ShardUnits()
	if err != nil {
		s.finish(w, r, start, "shard", http.StatusBadRequest, err)
		return
	}
	if sr.Lo < 0 || sr.Hi > units || sr.Lo >= sr.Hi {
		s.finish(w, r, start, "shard", http.StatusBadRequest,
			fmt.Errorf("shard range [%d,%d) outside [0,%d)", sr.Lo, sr.Hi, units))
		return
	}
	key := fmt.Sprintf("%s:%d-%d", hash, sr.Lo, sr.Hi)

	if b, ok := s.cache.get(key); ok {
		s.respondShard(w, r, start, norm, hash, sr.Lo, sr.Hi, b, true, false)
		return
	}
	// Workers sharing a store directory consult it before executing: a
	// shard another worker (or a previous life of this one) already
	// computed is served from disk instead of re-run.
	if s.store != nil {
		if b, ok := s.store.Get(key); ok {
			s.cache.put(key, string(norm.Kind)+"-shard", b)
			s.respondShard(w, r, start, norm, hash, sr.Lo, sr.Hi, b, true, false)
			return
		}
	}
	if s.draining.Load() {
		s.finish(w, r, start, "shard", http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}

	// Shard flights are cancellable, unlike sweep flights: the coordinator
	// cancels the losing copy of every speculation race, and keeping the
	// loser running would burn a pool slot on rows the winner already
	// produced byte-identically.
	f, leader := s.flights.leaseShard(key, s.baseCtx)
	if leader {
		done := s.pool.track()
		go func() {
			defer done()
			b, err := s.computeShard(f.ctx, key, norm, sr.Lo, sr.Hi)
			s.flights.complete(key, f, b, err)
		}()
	} else {
		s.metrics.addCoalesced()
	}

	select {
	case <-f.done:
	case <-r.Context().Done():
		s.flights.abandon(f)
		s.finish(w, r, start, "shard", 499, r.Context().Err())
		return
	}
	if f.err != nil {
		status := http.StatusInternalServerError
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, tenant.ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		s.finish(w, r, start, "shard", status, f.err)
		return
	}
	s.respondShard(w, r, start, norm, hash, sr.Lo, sr.Hi, f.bytes, false, !leader)
}

// computeShard runs one validated shard on the bounded pool and caches its
// marshaled ShardResult under the range-extended key. ctx is the flight
// context: it dies with the last interested client.
func (s *Server) computeShard(ctx context.Context, key string, norm blitzcoin.Request, lo, hi int) ([]byte, error) {
	if err := s.pool.acquire(ctx, tenant.ClassInteractive); err != nil {
		return nil, err
	}
	defer s.pool.release()
	res, err := blitzcoin.ExecuteShard(ctx, norm, lo, hi)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("encoding shard result: %w", err)
	}
	s.cache.put(key, string(norm.Kind)+"-shard", b)
	s.storePut(key, string(norm.Kind)+"-shard", b)
	return b, nil
}

// respondShard writes the shard success envelope and its log line.
func (s *Server) respondShard(w http.ResponseWriter, r *http.Request, start time.Time, norm blitzcoin.Request, hash string, lo, hi int, shard []byte, cached, coalesced bool) {
	elapsed := time.Since(start)
	writeJSON(w, http.StatusOK, ShardResponse{
		Version:       blitzcoin.APIVersion,
		Kind:          string(norm.Kind),
		RequestHash:   hash,
		EngineVersion: blitzcoin.EngineVersion,
		Lo:            lo,
		Hi:            hi,
		Cached:        cached,
		Coalesced:     coalesced,
		ElapsedMicros: elapsed.Microseconds(),
		Shard:         shard,
	})
	s.metrics.observeRequest("shard", "ok", elapsed.Seconds())
	s.log.Info("shard",
		"kind", norm.Kind,
		"hash", short(hash),
		"range", fmt.Sprintf("[%d,%d)", lo, hi),
		"status", http.StatusOK,
		"cached", cached,
		"coalesced", coalesced,
		"elapsed", elapsed,
		"remote", r.RemoteAddr,
	)
}

// compute runs one validated request on the bounded pool and caches its
// marshaled result, appending it to the ledger (and stamping the ledger
// provenance into the cached bytes) when one is configured. Callers choose
// the lifetime: handleSweep passes s.baseCtx to detach the computation from
// the triggering request.
func (s *Server) compute(ctx context.Context, hash string, norm blitzcoin.Request, class tenant.Class) ([]byte, error) {
	if err := s.pool.acquire(ctx, class); err != nil {
		return nil, err
	}
	defer s.pool.release()
	res, err := s.run(ctx, norm)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	b = s.stampLedger(hash, b)
	s.metrics.addSweepRows(resultRows(res))
	s.cache.put(hash, string(norm.Kind), b)
	s.storePut(hash, string(norm.Kind), b)
	return b, nil
}

// storePut persists computed bytes to the disk tier. Persistence failures
// degrade to memory-only caching — a full or broken disk never fails the
// sweep that produced the result.
func (s *Server) storePut(key, kind string, b []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(key, kind, b); err != nil {
		s.log.Warn("store put failed", "key", short(key), "error", err)
	}
}

// stampLedger appends the result to the ledger and returns the bytes with
// ledger provenance (sequence + tree head) stamped into the meta. The SHA
// appended is CanonicalResultSHA of the bytes — the same function a
// verifying client applies to the stamped response, so both sides hash
// the same canonical form. Ledger failures never fail the sweep: the
// result is served unstamped and the error logged.
func (s *Server) stampLedger(hash string, b []byte) []byte {
	if s.ledger == nil {
		return b
	}
	start := time.Now()
	sha, err := blitzcoin.CanonicalResultSHA(b)
	if err != nil {
		s.log.Warn("ledger skip", "hash", short(hash), "error", err)
		return b
	}
	seq, root, err := s.ledger.Append(hash, blitzcoin.EngineVersion, sha)
	if err != nil {
		s.log.Warn("ledger append failed", "hash", short(hash), "error", err)
		return b
	}
	var res blitzcoin.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return b
	}
	res.SetLedgerProvenance(seq, root)
	stamped, err := json.Marshal(&res)
	if err != nil {
		return b
	}
	s.metrics.observeLedgerAppend(time.Since(start).Seconds())
	return stamped
}

// resultRows counts the rows/lines a computation produced, for the
// blitzd_sweep_rows_total counter.
func resultRows(res *blitzcoin.Result) int {
	switch {
	case res == nil:
		return 0
	case res.Exchange != nil:
		return len(res.Exchange.Rows)
	case res.Figure != nil:
		return len(res.Figure.Lines)
	case res.SoC != nil:
		return 1
	}
	return 0
}

// respond writes the success envelope and the structured log line. tier
// names the cache tier that served a hit ("memory" or "disk"); empty for
// freshly computed results.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, start time.Time, norm blitzcoin.Request, hash string, result []byte, cached, coalesced bool, tier string) {
	elapsed := time.Since(start)
	resp := Response{
		Version:       blitzcoin.APIVersion,
		Kind:          string(norm.Kind),
		RequestHash:   hash,
		EngineVersion: blitzcoin.EngineVersion,
		Cached:        cached,
		Tier:          tier,
		Coalesced:     coalesced,
		ElapsedMicros: elapsed.Microseconds(),
		Result:        result,
	}
	writeJSON(w, http.StatusOK, resp)
	s.metrics.observeRequest(string(norm.Kind), "ok", elapsed.Seconds())
	s.log.Info("sweep",
		"kind", norm.Kind,
		"hash", short(hash),
		"status", http.StatusOK,
		"cached", cached,
		"tier", tier,
		"coalesced", coalesced,
		"elapsed", elapsed,
		"remote", r.RemoteAddr,
	)
}

// finish writes an error response and the structured log line.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, start time.Time, kind string, status int, err error) {
	elapsed := time.Since(start)
	if kind == "" {
		kind = "invalid"
	}
	label := "error"
	switch {
	case status == http.StatusBadRequest:
		label = "invalid"
	case status == http.StatusConflict:
		label = "mismatch"
	case status == 499:
		label = "cancelled"
	case status == http.StatusServiceUnavailable:
		label = "unavailable"
		// Tell well-behaved clients (and the cluster coordinator) when to
		// come back: the drain window is seconds, not minutes.
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, status, errorBody{err.Error()})
	s.metrics.observeRequest(kind, label, elapsed.Seconds())
	s.log.Warn("sweep failed",
		"kind", kind,
		"status", status,
		"error", err,
		"elapsed", elapsed,
		"remote", r.RemoteAddr,
	)
}

// handleFigures lists the figure registry so clients can discover names.
func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
		return
	}
	type entry struct {
		Name  string `json:"name"`
		Title string `json:"title"`
	}
	var out []entry
	for _, name := range blitzcoin.FigureNames() {
		title, _ := blitzcoin.FigureTitle(name)
		out = append(out, entry{name, title})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //blitzlint:allow R001 response encode: the only failure mode is a disconnected client, which the request handler cannot act on
}

// short abbreviates a hash for log lines.
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
