package sim

import "testing"

// AtCall/ScheduleCall events must interleave with plain At/Schedule events
// in (time, sequence) order — they share one queue, not two.
func TestAtCallInterleavesWithSchedule(t *testing.T) {
	var k Kernel
	var got []int
	push := func(a any) { got = append(got, a.(int)) }
	k.Schedule(10, func() { got = append(got, 2) })
	k.ScheduleCall(5, push, 1)
	k.AtCall(10, push, 3) // same time as the Schedule(10): FIFO by seq
	k.Schedule(20, func() { got = append(got, 4) })
	k.Drain()
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		if i >= len(got) || got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAtCallPastPanics(t *testing.T) {
	var k Kernel
	k.Schedule(10, func() {})
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("AtCall in the past did not panic")
		}
	}()
	k.AtCall(5, func(any) {}, nil)
}

// The steady-state schedule/execute cycle must not allocate: the event heap
// reuses its slice capacity and ScheduleCall's pointer arg boxes without
// allocation. This is the property that removes the per-packet event cost
// from the emulator hot path.
func TestScheduleCallSteadyStateDoesNotAllocate(t *testing.T) {
	var k Kernel
	fn := func(any) {}
	arg := &struct{ x int }{}
	// Warm the heap capacity.
	for i := 0; i < 64; i++ {
		k.ScheduleCall(Cycles(i), fn, arg)
	}
	k.Drain()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.ScheduleCall(Cycles(i+1), fn, arg)
		}
		k.Drain()
	})
	if avg != 0 {
		t.Fatalf("steady-state ScheduleCall+Drain allocates %v per run, want 0", avg)
	}
}
