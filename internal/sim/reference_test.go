package sim

import (
	"testing"

	"blitzcoin/internal/rng"
)

// refSched is the unbatched reference scheduler: a plain sorted insert on
// (time, arrival sequence) with one closure per event, exactly the semantics
// the calendar-queue kernel batches away. It exists only to pin the kernel's
// observable behavior — execution order and count — independent of the ring
// buckets, the occupancy bitmap, and the spill heap.
type refSched struct {
	now   Cycles
	seq   uint64
	count uint64
	queue []refEv
}

type refEv struct {
	at  Cycles
	seq uint64
	fn  func()
}

func (r *refSched) schedule(delay Cycles, fn func()) {
	if delay < 1 {
		delay = 1
	}
	e := refEv{at: r.now + delay, seq: r.seq, fn: fn}
	r.seq++
	// Insert keeping (at, seq) order; the slice stays sorted because seq is
	// monotone, so the insertion point is the first entry with a later time.
	i := len(r.queue)
	for i > 0 && r.queue[i-1].at > e.at {
		i--
	}
	r.queue = append(r.queue, refEv{})
	copy(r.queue[i+1:], r.queue[i:])
	r.queue[i] = e
	_ = e.seq
}

func (r *refSched) run() {
	for len(r.queue) > 0 {
		e := r.queue[0]
		r.queue = r.queue[1:]
		r.now = e.at
		r.count++
		e.fn()
	}
}

// workload drives one scheduler implementation through a deterministic
// self-expanding event cascade and returns the execution log. Each executed
// event logs (id, now) and may schedule up to two children with delays drawn
// from a dedicated rng stream — including delays past the kernel's 1024-cycle
// ring horizon, so the spill heap and bucket migration are exercised, and
// same-cycle fan-out (delay resolution to the same target cycle from
// different parents), so intra-cycle FIFO order is exercised.
func workload(schedule func(Cycles, func()), getNow func() Cycles, seeds []uint64) *[]uint64 {
	log := new([]uint64)
	src := rng.New(12345)
	nextID := uint64(0)

	var spawn func(id uint64, depth int)
	spawn = func(id uint64, depth int) {
		*log = append(*log, id<<32|uint64(getNow()&0xffffffff))
		if depth >= 5 {
			return
		}
		kids := int(src.Uint64() % 3) // 0, 1, or 2 children
		for c := 0; c < kids; c++ {
			// Mix short delays (same-cycle collisions), mid delays, and
			// beyond-horizon delays that land in the spill heap.
			var d Cycles
			switch src.Uint64() % 4 {
			case 0:
				d = Cycles(1 + src.Uint64()%3)
			case 1:
				d = Cycles(1 + src.Uint64()%100)
			case 2:
				d = Cycles(900 + src.Uint64()%300) // straddles the horizon
			default:
				d = Cycles(2000 + src.Uint64()%5000) // deep spill
			}
			nextID++
			cid := nextID
			cdepth := depth + 1
			schedule(d, func() { spawn(cid, cdepth) })
		}
	}

	for _, s := range seeds {
		nextID++
		id := nextID
		schedule(Cycles(1+s%700), func() { spawn(id, 0) })
	}
	return log
}

// TestKernelMatchesReferenceScheduler is the batching property test: the
// calendar-queue kernel must execute the exact event sequence — same events,
// same order, same timestamps, same Executed() count — as the naive
// one-event-at-a-time reference scheduler, for a cascade that exercises
// same-cycle ordering, horizon wrap, and the spill heap.
func TestKernelMatchesReferenceScheduler(t *testing.T) {
	seeds := make([]uint64, 40)
	for i := range seeds {
		seeds[i] = uint64(i) * 17
	}

	ref := &refSched{}
	wantLog := workload(ref.schedule, func() Cycles { return ref.now }, seeds)
	ref.run()

	var k Kernel
	gotLog := workload(k.Schedule, k.Now, seeds)
	k.Drain()

	if k.Executed() != ref.count {
		t.Fatalf("Executed() = %d, reference executed %d", k.Executed(), ref.count)
	}
	got, want := *gotLog, *wantLog
	if len(got) != len(want) {
		t.Fatalf("kernel logged %d events, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: kernel ran (id=%d, t=%d), reference ran (id=%d, t=%d)",
				i, got[i]>>32, got[i]&0xffffffff, want[i]>>32, want[i]&0xffffffff)
		}
	}
	if k.Executed() == 0 || len(want) < 100 {
		t.Fatalf("degenerate cascade: %d events", len(want))
	}
}

// TestKernelOpsMatchClosures pins the typed-op path to the closure path: the
// same cascade scheduled via ScheduleOp must interleave identically with
// closure events, because ops and closures share one (time, seq) order.
func TestKernelOpsMatchClosures(t *testing.T) {
	run := func(useOps bool) ([]uint64, uint64) {
		var k Kernel
		var log []uint64
		var op OpCode
		if useOps {
			op = k.RegisterOp(func(tile int32, x uint64) {
				log = append(log, uint64(tile)<<32|x)
			})
		}
		emit := func(d Cycles, tile int32, x uint64) {
			if useOps {
				k.ScheduleOp(d, op, tile, x)
			} else {
				k.Schedule(d, func() { log = append(log, uint64(tile)<<32|x) })
			}
		}
		src := rng.New(777)
		for i := int32(0); i < 300; i++ {
			emit(Cycles(1+src.Uint64()%3000), i, src.Uint64()&0xffff)
		}
		// Closure events interleave with the op stream in both runs.
		for i := 0; i < 50; i++ {
			d := Cycles(1 + src.Uint64()%3000)
			k.Schedule(d, func() { log = append(log, 1<<63|uint64(d)) })
		}
		k.Drain()
		return log, k.Executed()
	}

	opLog, opN := run(true)
	clLog, clN := run(false)
	if opN != clN {
		t.Fatalf("Executed(): ops=%d closures=%d", opN, clN)
	}
	if len(opLog) != len(clLog) {
		t.Fatalf("log length: ops=%d closures=%d", len(opLog), len(clLog))
	}
	for i := range opLog {
		if opLog[i] != clLog[i] {
			t.Fatalf("event %d differs: op-path=%x closure-path=%x", i, opLog[i], clLog[i])
		}
	}
}
