package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var k Kernel
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same time: FIFO by seq
	k.Schedule(20, func() { got = append(got, 4) })
	k.Drain()
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("Now = %d, want 20", k.Now())
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	var k Kernel
	var order []string
	k.Schedule(3, func() {
		order = append(order, "a")
		k.Schedule(0, func() { order = append(order, "b") })
	})
	k.Schedule(3, func() { order = append(order, "c") })
	k.Drain()
	// "b" is scheduled during "a" at time 3 and must run after "c",
	// which was scheduled earlier for the same cycle.
	if len(order) != 3 || order[0] != "a" || order[1] != "c" || order[2] != "b" {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %d", k.Now())
	}
}

func TestRunStopsAtBound(t *testing.T) {
	var k Kernel
	ran := 0
	for i := Cycles(1); i <= 10; i++ {
		k.Schedule(i*10, func() { ran++ })
	}
	n := k.Run(35)
	if n != 3 || ran != 3 {
		t.Fatalf("Run executed %d events (cb %d), want 3", n, ran)
	}
	if k.Now() != 35 {
		t.Fatalf("Now = %d, want 35 (clamped)", k.Now())
	}
	k.Run(1000)
	if ran != 10 {
		t.Fatalf("total ran = %d, want 10", ran)
	}
}

func TestAtPastPanics(t *testing.T) {
	var k Kernel
	k.Schedule(10, func() {})
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestRunUntilStopsOnPredicate(t *testing.T) {
	var k Kernel
	count := 0
	var rec func()
	rec = func() {
		count++
		k.Schedule(1, rec)
	}
	k.Schedule(1, rec)
	k.RunUntil(func() bool { return count >= 7 }, 0)
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	k.RunUntil(nil, 5)
	if count != 12 {
		t.Fatalf("count after maxEvents run = %d, want 12", count)
	}
}

func TestConversionRoundTrip(t *testing.T) {
	if got := CyclesToMicros(800); got != 1.0 {
		t.Fatalf("800 cycles = %v us, want 1", got)
	}
	if got := MicrosToCycles(1.0); got != 800 {
		t.Fatalf("1us = %v cycles, want 800", got)
	}
	f := func(c uint32) bool {
		cy := Cycles(c)
		return MicrosToCycles(CyclesToMicros(cy)) == cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventsExecuteInTimeOrderProperty(t *testing.T) {
	// Property: for any set of delays, execution times are non-decreasing.
	f := func(delays []uint16) bool {
		var k Kernel
		var times []Cycles
		for _, d := range delays {
			k.Schedule(Cycles(d), func() { times = append(times, k.Now()) })
		}
		k.Drain()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExecutedAndPendingCounters(t *testing.T) {
	var k Kernel
	for i := 0; i < 5; i++ {
		k.Schedule(Cycles(i), func() {})
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	k.Step()
	k.Step()
	if k.Executed() != 2 || k.Pending() != 3 {
		t.Fatalf("Executed=%d Pending=%d", k.Executed(), k.Pending())
	}
}
