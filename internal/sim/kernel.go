// Package sim implements the discrete-event simulation kernel that underlies
// every timed model in this repository: the coin-exchange emulator, the
// network-on-chip, the UVFR actuators, and the full-SoC harness.
//
// The kernel advances a cycle counter (the paper expresses all timing in NoC
// cycles at 800 MHz) and executes scheduled events in (time, sequence) order,
// so simultaneous events run in the order they were scheduled. This makes
// every simulation deterministic for a given seed, which the Monte Carlo
// experiments (Figs. 3-8) rely on.
//
// The event queue is a hand-rolled binary heap over a value slice: pushing an
// event allocates nothing in steady state (the slice's capacity is reused),
// which matters because the emulator schedules one event per packet and per
// exchange tick. ScheduleCall/AtCall carry a callback argument through the
// event, so hot callers can use a single long-lived closure instead of
// allocating a fresh one per event.
package sim

// Cycles is a simulated time stamp or duration, counted in NoC clock cycles.
type Cycles = uint64

// NoCFrequencyHz is the fixed NoC clock of the evaluated SoCs (Sec. V-A):
// the CPU and NoC run at 800 MHz, the maximum NoC frequency of the
// fabricated prototype.
const NoCFrequencyHz = 800e6

// CyclesToMicros converts a cycle count at the 800 MHz NoC clock into
// microseconds.
func CyclesToMicros(c Cycles) float64 {
	return float64(c) / NoCFrequencyHz * 1e6
}

// MicrosToCycles converts microseconds into NoC cycles, rounding to nearest.
func MicrosToCycles(us float64) Cycles {
	return Cycles(us*NoCFrequencyHz/1e6 + 0.5)
}

// event is a pending callback: either a plain thunk (fn) or an
// argument-carrying callback (afn, arg). Exactly one of fn/afn is set.
type event struct {
	at  Cycles
	seq uint64
	fn  func()
	afn func(any)
	arg any
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now    Cycles
	seq    uint64
	events []event // binary min-heap ordered by (at, seq)
	// executed counts events run, exposed for tests and runaway detection.
	executed uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() Cycles { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn after delay cycles (delay 0 runs it later in the current
// cycle, after all previously scheduled events for this cycle).
func (k *Kernel) Schedule(delay Cycles, fn func()) {
	k.At(k.now+delay, fn)
}

// ScheduleCall runs fn(arg) after delay cycles. It exists for hot paths: a
// caller that would otherwise close over a per-event value can instead keep
// one long-lived fn and pass the value through arg, avoiding a closure
// allocation per event. Pointer-shaped args do not allocate when boxed.
func (k *Kernel) ScheduleCall(delay Cycles, fn func(any), arg any) {
	k.AtCall(k.now+delay, fn, arg)
}

// At runs fn at absolute time t. Scheduling in the past panics: it always
// indicates a model bug, and silently reordering would corrupt causality.
func (k *Kernel) At(t Cycles, fn func()) {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, fn: fn})
}

// AtCall runs fn(arg) at absolute time t; the argument-carrying sibling of
// At, with the same past-scheduling rule.
func (k *Kernel) AtCall(t Cycles, fn func(any), arg any) {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	k.push(event{at: t, seq: k.seq, afn: fn, arg: arg})
}

// less orders the heap by (time, insertion sequence).
func (k *Kernel) less(i, j int) bool {
	if k.events[i].at != k.events[j].at {
		return k.events[i].at < k.events[j].at
	}
	return k.events[i].seq < k.events[j].seq
}

// push appends e and restores the heap invariant (sift-up).
func (k *Kernel) push(e event) {
	k.events = append(k.events, e)
	i := len(k.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(i, parent) {
			break
		}
		k.events[i], k.events[parent] = k.events[parent], k.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event (sift-down).
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure/arg references held by the vacated slot
	k.events = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && k.less(r, l) {
			c = r
		}
		if !k.less(c, i) {
			break
		}
		k.events[i], k.events[c] = k.events[c], k.events[i]
		i = c
	}
	return top
}

// Step executes the next pending event and advances time to it. It reports
// whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.pop()
	k.now = e.at
	k.executed++
	if e.afn != nil {
		e.afn(e.arg)
	} else {
		e.fn()
	}
	return true
}

// Run executes events until the queue is empty or the next event is after
// until; time ends clamped to until if the queue drained earlier events.
// It returns the number of events executed by this call.
func (k *Kernel) Run(until Cycles) uint64 {
	var n uint64
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
		n++
	}
	if k.now < until {
		k.now = until
	}
	return n
}

// RunUntil executes events until stop returns true (checked after each
// event), the queue drains, or maxEvents events have run. It returns the
// number of events executed. A maxEvents of 0 means no limit.
func (k *Kernel) RunUntil(stop func() bool, maxEvents uint64) uint64 {
	var n uint64
	for len(k.events) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		k.Step()
		n++
		if stop != nil && stop() {
			break
		}
	}
	return n
}

// Drain executes all pending events to completion and returns how many ran.
// Use only in models guaranteed to quiesce.
func (k *Kernel) Drain() uint64 {
	var n uint64
	for k.Step() {
		n++
	}
	return n
}
