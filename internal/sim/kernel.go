// Package sim implements the discrete-event simulation kernel that underlies
// every timed model in this repository: the coin-exchange emulator, the
// network-on-chip, the UVFR actuators, and the full-SoC harness.
//
// The kernel advances a cycle counter (the paper expresses all timing in NoC
// cycles at 800 MHz) and executes scheduled events in (time, sequence) order,
// so simultaneous events run in the order they were scheduled. This makes
// every simulation deterministic for a given seed, which the Monte Carlo
// experiments (Figs. 3-8) rely on.
package sim

import "container/heap"

// Cycles is a simulated time stamp or duration, counted in NoC clock cycles.
type Cycles = uint64

// NoCFrequencyHz is the fixed NoC clock of the evaluated SoCs (Sec. V-A):
// the CPU and NoC run at 800 MHz, the maximum NoC frequency of the
// fabricated prototype.
const NoCFrequencyHz = 800e6

// CyclesToMicros converts a cycle count at the 800 MHz NoC clock into
// microseconds.
func CyclesToMicros(c Cycles) float64 {
	return float64(c) / NoCFrequencyHz * 1e6
}

// MicrosToCycles converts microseconds into NoC cycles, rounding to nearest.
func MicrosToCycles(us float64) Cycles {
	return Cycles(us*NoCFrequencyHz/1e6 + 0.5)
}

// event is a pending callback.
type event struct {
	at  Cycles
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now    Cycles
	seq    uint64
	events eventHeap
	// executed counts events run, exposed for tests and runaway detection.
	executed uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() Cycles { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn after delay cycles (delay 0 runs it later in the current
// cycle, after all previously scheduled events for this cycle).
func (k *Kernel) Schedule(delay Cycles, fn func()) {
	k.At(k.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it always
// indicates a model bug, and silently reordering would corrupt causality.
func (k *Kernel) At(t Cycles, fn func()) {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// Step executes the next pending event and advances time to it. It reports
// whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	k.executed++
	e.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// until; time ends clamped to until if the queue drained earlier events.
// It returns the number of events executed by this call.
func (k *Kernel) Run(until Cycles) uint64 {
	var n uint64
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
		n++
	}
	if k.now < until {
		k.now = until
	}
	return n
}

// RunUntil executes events until stop returns true (checked after each
// event), the queue drains, or maxEvents events have run. It returns the
// number of events executed. A maxEvents of 0 means no limit.
func (k *Kernel) RunUntil(stop func() bool, maxEvents uint64) uint64 {
	var n uint64
	for len(k.events) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		k.Step()
		n++
		if stop != nil && stop() {
			break
		}
	}
	return n
}

// Drain executes all pending events to completion and returns how many ran.
// Use only in models guaranteed to quiesce.
func (k *Kernel) Drain() uint64 {
	var n uint64
	for k.Step() {
		n++
	}
	return n
}
