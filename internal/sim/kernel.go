// Package sim implements the discrete-event simulation kernel that underlies
// every timed model in this repository: the coin-exchange emulator, the
// network-on-chip, the UVFR actuators, and the full-SoC harness.
//
// The kernel advances a cycle counter (the paper expresses all timing in NoC
// cycles at 800 MHz) and executes scheduled events in (time, sequence) order,
// so simultaneous events run in the order they were scheduled. This makes
// every simulation deterministic for a given seed, which the Monte Carlo
// experiments (Figs. 3-8) rely on.
//
// # Queue layout and batching
//
// The queue is a calendar: a ring of per-cycle buckets covering the next
// bucketCount cycles, with a small spill min-heap for events scheduled
// beyond that horizon. Nearly every event a simulation schedules lands
// within the horizon (hop latencies are 1-3 cycles, exchange intervals a few
// hundred), so push is an append and "pop" is a batch: when the clock
// advances to a cycle, that cycle's whole bucket is drained into a reused
// execution buffer and run front to back. Bucket append order is exactly
// schedule order, so intra-cycle execution order is byte-identical to the
// old binary heap's (time, sequence) order; spill events carry an explicit
// sequence number and migrate into buckets in that order as the horizon
// advances, before any newer event can target their cycle.
//
// Events are 16 bytes and pointer-free. Hot paths use typed events: a model
// registers an op handler once (RegisterOp) and schedules (op, tile, x)
// triples (ScheduleOp/AtOp) with no closure, no interface boxing, and no GC
// write barriers when events move between buckets and the run buffer.
// Closure events (Schedule/At/ScheduleCall/AtCall) park their function in a
// freelist-backed side store and travel through the queue as a slot index.
package sim

import "math/bits"

// Cycles is a simulated time stamp or duration, counted in NoC clock cycles.
type Cycles = uint64

// NoCFrequencyHz is the fixed NoC clock of the evaluated SoCs (Sec. V-A):
// the CPU and NoC run at 800 MHz, the maximum NoC frequency of the
// fabricated prototype.
const NoCFrequencyHz = 800e6

// CyclesToMicros converts a cycle count at the 800 MHz NoC clock into
// microseconds.
func CyclesToMicros(c Cycles) float64 {
	return float64(c) / NoCFrequencyHz * 1e6
}

// MicrosToCycles converts microseconds into NoC cycles, rounding to nearest.
func MicrosToCycles(us float64) Cycles {
	return Cycles(us*NoCFrequencyHz/1e6 + 0.5)
}

// bucketCount is the calendar horizon in cycles (a power of two). Exchange
// intervals back off to at most a few hundred cycles and NoC hops are
// single-digit, so in practice only long SoC completions and audit periods
// spill past it.
const (
	bucketCount = 1024
	bucketMask  = bucketCount - 1
)

// OpCode identifies a typed-event handler registered with RegisterOp.
type OpCode = int32

// opClosure is the reserved op for closure events; ev.tile then holds the
// side-store slot index instead of a model tile id.
const opClosure OpCode = 0

// ev is one queued event: 16 bytes, no pointers. Its execution time is
// implied by the bucket it sits in (buckets hold exactly one cycle's events
// inside the horizon), so it does not carry a timestamp.
type ev struct {
	x    uint64
	tile int32
	op   OpCode
}

// node is one arena slot: an event plus the intrusive list link. Buckets
// are (head, tail) index pairs into the arena, so neither pushing an event
// nor rotating the ring ever allocates once the arena has grown to the
// simulation's peak outstanding-event count.
type node struct {
	ev   ev
	next int32
}

// bucket is one calendar cycle's event list: arena indices, -1 when empty.
type bucket struct {
	head, tail int32
}

// spillEv is an event beyond the calendar horizon, parked in the spill heap
// with its timestamp and a sequence number that restores schedule order when
// it migrates into a bucket.
type spillEv struct {
	at  Cycles
	seq uint64
	ev  ev
}

// closure is a parked Schedule/ScheduleCall callback. Exactly one of fn/afn
// is set.
type closure struct {
	fn  func()
	afn func(any)
	arg any
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now Cycles
	// executed counts events run, exposed for tests and runaway detection.
	executed uint64
	// pending counts scheduled-but-not-yet-executed events across the
	// buckets, the spill heap, and the unexecuted tail of the run buffer.
	pending int

	// buckets[t&bucketMask] lists the events for cycle t, t in
	// [now, now+bucketCount), in schedule order, linked through arena.
	// Allocated on first push. occ mirrors bucket non-emptiness as a
	// bitmap so finding the next pending cycle is a few word scans, not a
	// walk of the ring.
	buckets []bucket
	occ     [bucketCount / 64]uint64
	// arena backs every queued event; freeHead chains vacant slots through
	// node.next.
	arena    []node
	freeHead int32
	// spill holds events at or beyond now+bucketCount, as a min-heap on
	// (at, seq).
	spill []spillEv
	seq   uint64 // feeds spill sequence numbers

	// cur[curPos:] is the batch being executed: the current cycle's bucket
	// drained into one contiguous, reused buffer.
	cur    []ev
	curPos int

	// ops is the typed-event dispatch table; index 0 is the closure op.
	ops []func(tile int32, x uint64)
	// closures is the side store for parked closure events; free lists the
	// vacant slots.
	closures []closure
	free     []int32
}

// Now returns the current simulation time.
func (k *Kernel) Now() Cycles { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting to run.
func (k *Kernel) Pending() int { return k.pending }

// RegisterOp adds fn to the typed-event dispatch table and returns its op
// code for ScheduleOp/AtOp. Models register their handlers once at
// construction; the two event arguments are a tile id and one extra word
// (a sequence number, a slot index — whatever the op needs).
func (k *Kernel) RegisterOp(fn func(tile int32, x uint64)) OpCode {
	if k.ops == nil {
		k.ops = make([]func(int32, uint64), 1, 8) // slot 0: closure op
	}
	k.ops = append(k.ops, fn)
	return OpCode(len(k.ops) - 1)
}

// Schedule runs fn after delay cycles (delay 0 runs it later in the current
// cycle, after all previously scheduled events for this cycle).
func (k *Kernel) Schedule(delay Cycles, fn func()) {
	k.At(k.now+delay, fn)
}

// ScheduleCall runs fn(arg) after delay cycles. It exists for hot paths: a
// caller that would otherwise close over a per-event value can instead keep
// one long-lived fn and pass the value through arg, avoiding a closure
// allocation per event. Pointer-shaped args do not allocate when boxed.
func (k *Kernel) ScheduleCall(delay Cycles, fn func(any), arg any) {
	k.AtCall(k.now+delay, fn, arg)
}

// ScheduleOp runs the registered op with (tile, x) after delay cycles: the
// zero-allocation, zero-indirection form hot models schedule their events
// through.
func (k *Kernel) ScheduleOp(delay Cycles, op OpCode, tile int32, x uint64) {
	k.AtOp(k.now+delay, op, tile, x)
}

// At runs fn at absolute time t. Scheduling in the past panics: it always
// indicates a model bug, and silently reordering would corrupt causality.
func (k *Kernel) At(t Cycles, fn func()) {
	k.push(t, ev{op: opClosure, tile: k.park(closure{fn: fn})})
}

// AtCall runs fn(arg) at absolute time t; the argument-carrying sibling of
// At, with the same past-scheduling rule.
func (k *Kernel) AtCall(t Cycles, fn func(any), arg any) {
	k.push(t, ev{op: opClosure, tile: k.park(closure{afn: fn, arg: arg})})
}

// AtOp runs the registered op with (tile, x) at absolute time t; the typed
// sibling of At, with the same past-scheduling rule.
func (k *Kernel) AtOp(t Cycles, op OpCode, tile int32, x uint64) {
	k.push(t, ev{op: op, tile: tile, x: x})
}

// park stores c in the closure side store and returns its slot.
func (k *Kernel) park(c closure) int32 {
	if n := len(k.free) - 1; n >= 0 {
		slot := k.free[n]
		k.free = k.free[:n]
		k.closures[slot] = c
		return slot
	}
	k.closures = append(k.closures, c)
	return int32(len(k.closures) - 1)
}

// push enqueues e at absolute time t.
func (k *Kernel) push(t Cycles, e ev) {
	if t < k.now {
		panic("sim: event scheduled in the past")
	}
	if k.buckets == nil {
		k.buckets = make([]bucket, bucketCount)
		for i := range k.buckets {
			k.buckets[i] = bucket{head: -1, tail: -1}
		}
		k.freeHead = -1
	}
	k.pending++
	if t-k.now < bucketCount {
		k.link(t&bucketMask, e)
		return
	}
	k.seq++
	k.spill = append(k.spill, spillEv{at: t, seq: k.seq, ev: e})
	// Sift up on (at, seq).
	s := k.spill
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !spillLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// link appends e to bucket idx's event list, drawing an arena slot from the
// free chain (or growing the arena, amortized), and marks the bucket occupied.
func (k *Kernel) link(idx Cycles, e ev) {
	slot := k.freeHead
	if slot >= 0 {
		k.freeHead = k.arena[slot].next
	} else {
		k.arena = append(k.arena, node{})
		slot = int32(len(k.arena) - 1)
	}
	k.arena[slot] = node{ev: e, next: -1}
	b := &k.buckets[idx]
	if b.tail >= 0 {
		k.arena[b.tail].next = slot
	} else {
		b.head = slot
		k.occ[idx>>6] |= 1 << (idx & 63)
	}
	b.tail = slot
}

func spillLess(a, b spillEv) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// migrate moves spill events now inside the calendar horizon into their
// buckets. It pops in (at, seq) order, so per-bucket append order remains
// schedule order; it runs exactly when the clock advances, before any newer
// push can target the migrated cycles.
func (k *Kernel) migrate() {
	horizon := k.now + bucketCount
	s := k.spill
	for len(s) > 0 && s[0].at < horizon {
		top := s[0]
		n := len(s) - 1
		s[0] = s[n]
		s[n] = spillEv{}
		s = s[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			if l >= n {
				break
			}
			c := l
			if r < n && spillLess(s[r], s[l]) {
				c = r
			}
			if !spillLess(s[c], s[i]) {
				break
			}
			s[i], s[c] = s[c], s[i]
			i = c
		}
		k.link(top.at&bucketMask, top.ev)
	}
	k.spill = s
}

// nextTime returns the time of the earliest pending event. Bucket events
// always precede spill events (the spill holds only beyond-horizon times),
// so the occupancy bitmap is consulted first: a cyclic scan of its words
// starting at now's bit, mapping the first set bit back to an absolute time.
// Ring index order from now is exactly time order, because each index holds
// exactly one cycle of [now, now+bucketCount).
func (k *Kernel) nextTime() (Cycles, bool) {
	if k.curPos < len(k.cur) {
		return k.now, true
	}
	if k.pending == 0 {
		return 0, false
	}
	i0 := k.now & bucketMask
	w := int(i0 >> 6)
	word := k.occ[w] &^ (1<<(i0&63) - 1)
	for n := 0; n <= len(k.occ); n++ {
		if word != 0 {
			idx := Cycles(w<<6 | bits.TrailingZeros64(word))
			return k.now + (idx-i0)&bucketMask, true
		}
		w = (w + 1) & (len(k.occ) - 1)
		word = k.occ[w]
	}
	return k.spill[0].at, true
}

// advance moves the clock to the next pending cycle and drains its bucket
// into the run buffer, returning the freed slots to the arena's free chain.
// It reports false when nothing is pending.
func (k *Kernel) advance() bool {
	t, ok := k.nextTime()
	if !ok {
		return false
	}
	if t != k.now {
		k.now = t
		k.migrate()
	}
	idx := t & bucketMask
	b := &k.buckets[idx]
	cur := k.cur[:0]
	for s := b.head; s >= 0; {
		n := &k.arena[s]
		cur = append(cur, n.ev)
		next := n.next
		n.next = k.freeHead
		k.freeHead = s
		s = next
	}
	b.head, b.tail = -1, -1
	k.occ[idx>>6] &^= 1 << (idx & 63)
	k.cur = cur
	k.curPos = 0
	return len(cur) > 0
}

// exec runs one event.
func (k *Kernel) exec(e ev) {
	k.executed++
	if e.op != opClosure {
		k.ops[e.op](e.tile, e.x)
		return
	}
	c := k.closures[e.tile]
	k.closures[e.tile] = closure{} // release callback/arg references
	k.free = append(k.free, e.tile)
	if c.afn != nil {
		c.afn(c.arg)
	} else {
		c.fn()
	}
}

// Step executes the next pending event and advances time to it. It reports
// whether an event was executed.
func (k *Kernel) Step() bool {
	if k.curPos >= len(k.cur) && !k.advance() {
		return false
	}
	e := k.cur[k.curPos]
	k.curPos++
	k.pending--
	k.exec(e)
	return true
}

// Run executes events until the queue is empty or the next event is after
// until; time ends clamped to until if the queue drained earlier events.
// It returns the number of events executed by this call.
func (k *Kernel) Run(until Cycles) uint64 {
	var n uint64
	for {
		if k.curPos < len(k.cur) { // batch events run at the current cycle
			e := k.cur[k.curPos]
			k.curPos++
			k.pending--
			k.exec(e)
			n++
			continue
		}
		t, ok := k.nextTime()
		if !ok || t > until {
			break
		}
		k.Step()
		n++
	}
	if k.now < until {
		k.now = until
		if k.buckets != nil {
			k.migrate()
		}
	}
	return n
}

// RunUntil executes events until stop returns true (checked after each
// event), the queue drains, or maxEvents events have run. It returns the
// number of events executed. A maxEvents of 0 means no limit.
func (k *Kernel) RunUntil(stop func() bool, maxEvents uint64) uint64 {
	var n uint64
	for k.pending > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		if !k.Step() {
			break
		}
		n++
		if stop != nil && stop() {
			break
		}
	}
	return n
}

// Drain executes all pending events to completion and returns how many ran.
// Use only in models guaranteed to quiesce.
func (k *Kernel) Drain() uint64 {
	var n uint64
	for k.Step() {
		n++
	}
	return n
}
