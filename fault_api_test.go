package blitzcoin

import "testing"

// The hardened exchange survives a lossy plane plus a mid-run tile kill:
// it still converges, and after audit repair the pool is conserved on the
// survivors.
func TestSimulateExchangeWithFaults(t *testing.T) {
	run := func() ExchangeResult {
		return SimulateExchange(ExchangeOptions{
			Dim:           10,
			Torus:         true,
			RandomPairing: true,
			Faults: &FaultOptions{
				Seed:      2,
				DropRate:  0.01,
				KillTiles: []TileFaultAt{{Tile: 7, AtCycle: 1000}},
			},
			Seed: 1,
		})
	}
	r := run()
	if !r.Converged {
		t.Fatalf("did not converge under faults: %+v", r)
	}
	if !r.CoinsConserved || r.PoolViolation != 0 {
		t.Fatalf("pool not conserved: violation=%d", r.PoolViolation)
	}
	if r.Dropped == 0 || r.Retries == 0 {
		t.Fatalf("fault counters empty: dropped=%d retries=%d", r.Dropped, r.Retries)
	}
	if r.TilesDead != 1 {
		t.Fatalf("TilesDead=%d, want 1", r.TilesDead)
	}
	// Same options, same seed: bit-identical fault schedule and outcome.
	if r2 := run(); r != r2 {
		t.Fatalf("faulted run not deterministic:\n%+v\n%+v", r, r2)
	}
}

// A healthy run reports zero on every fault counter, with or without a nil
// fault model.
func TestSimulateExchangeHealthyCountersZero(t *testing.T) {
	r := SimulateExchange(ExchangeOptions{Dim: 6, Seed: 1, RandomPairing: true})
	if r.Dropped != 0 || r.Retries != 0 || r.TilesDead != 0 || r.AuditRepairs != 0 {
		t.Fatalf("healthy run has fault counters: %+v", r)
	}
	if !r.CoinsConserved {
		t.Fatal("healthy run not conserved")
	}
}

// RunSoC with a tile kill completes on the survivors and re-enforces the
// cap within the recovery bound.
func TestRunSoCWithFaults(t *testing.T) {
	r := RunSoC(SoCOptions{
		SoC:    "3x3",
		Scheme: BC,
		Repeat: 2,
		Faults: &FaultOptions{
			Seed:      3,
			DropRate:  0.005,
			KillTiles: []TileFaultAt{{Tile: 1, AtCycle: 60_000}},
		},
		Seed: 7,
	})
	if !r.Completed {
		t.Fatalf("degraded run did not complete: %s", r)
	}
	if r.TilesKilled != 1 {
		t.Fatalf("TilesKilled=%d, want 1", r.TilesKilled)
	}
	if r.TasksRequeued == 0 {
		t.Fatal("kill at 60k cycles should have caught a running task")
	}
	if exc := r.LongestCapExcursionCycles(0.20); exc > 2_000 {
		t.Fatalf(">20%% cap excursion for %d cycles", exc)
	}
}
